"""Tests for the content-addressed schedule registry (:mod:`repro.registry`).

Round trips (register → load → byte-identical entry → validation PASS) on
every optimize-able graph, digest stability pinned across freshly spawned
interpreters, recovery from corrupted and truncated entry files, and the
atomic-write guarantee under a concurrent register/validate hammer.
"""

from __future__ import annotations

import json
import subprocess
import sys
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.configsel.selector import select_configurations
from repro.engine import clear_sweep_memo
from repro.fusion import apply_paper_fusion
from repro.hardware.cost_model import COST_MODEL_VERSION, CostModel
from repro.ir.dims import bert_large_dims
from repro.registry import (
    REGISTRY_ENV_VAR,
    RegistryError,
    ScheduleEntry,
    ScheduleRegistry,
    build_entry,
    get_schedule_registry,
    register_selection,
    schedule_digest,
    set_schedule_registry,
)
from repro.registry import registry as registry_module
from repro.transformer.graph_builder import (
    build_encoder_graph,
    build_gpt_decoder_graph,
    build_mha_graph,
)
from repro.validation import validate_entry

ENV = bert_large_dims()
COST = CostModel()
CAP = 48


@pytest.fixture(autouse=True)
def _cold_memo():
    clear_sweep_memo()
    yield
    clear_sweep_memo()


@pytest.fixture(autouse=True)
def _no_active_registry(monkeypatch):
    """Isolate the process-active registry/store globals from every test."""
    monkeypatch.setattr(registry_module, "_ACTIVE", registry_module._UNSET)
    monkeypatch.setattr(registry_module, "_DERIVED", None)
    monkeypatch.delenv(REGISTRY_ENV_VAR, raising=False)
    monkeypatch.setattr("repro.engine.store._ACTIVE", None)


def _mha_graph():
    return build_mha_graph(qkv_fusion="qkv", include_backward=False)


def _register_one(tmp_path, graph=None, cap=CAP):
    registry = ScheduleRegistry(tmp_path / "registry")
    graph = graph or _mha_graph()
    sel = select_configurations(graph, ENV, COST, cap=cap)
    entry = register_selection(registry, graph, ENV, COST, sel, cap=cap)
    return registry, graph, sel, entry


# ---------------------------------------------------------------------------
# The digest
# ---------------------------------------------------------------------------

class TestScheduleDigest:
    def test_digest_depends_on_every_knob(self):
        g = _mha_graph()
        base = schedule_digest(g, ENV, COST.gpu, cap=CAP, seed=1)
        assert schedule_digest(g, ENV, COST.gpu, cap=CAP, seed=2) != base
        assert schedule_digest(g, ENV, COST.gpu, cap=CAP + 1, seed=1) != base
        assert (
            schedule_digest(g, ENV, COST.gpu, cap=CAP, seed=1, source="y") != base
        )
        assert (
            schedule_digest(g, ENV, COST.gpu, cap=CAP, seed=1, version=99) != base
        )

    def test_digest_depends_on_graph_and_env(self):
        fwd = schedule_digest(_mha_graph(), ENV, COST.gpu, cap=CAP, seed=1)
        both = schedule_digest(
            build_mha_graph(qkv_fusion="qkv", include_backward=True),
            ENV,
            COST.gpu,
            cap=CAP,
            seed=1,
        )
        assert fwd != both
        small = bert_large_dims(batch=2, seq=64)
        assert (
            schedule_digest(_mha_graph(), small, COST.gpu, cap=CAP, seed=1) != fwd
        )

    def test_digest_stable_across_fresh_interpreters(self):
        """Two spawned interpreters agree with each other and with us.

        The digest is the registry's address space: any dependence on hash
        randomization, dict order, or process state would orphan every
        previously registered schedule.
        """
        script = (
            "import sys; sys.path.insert(0, 'src')\n"
            "from repro.hardware.cost_model import CostModel\n"
            "from repro.ir.dims import bert_large_dims\n"
            "from repro.registry import schedule_digest\n"
            "from repro.transformer.graph_builder import build_mha_graph\n"
            "g = build_mha_graph(qkv_fusion='qkv', include_backward=False)\n"
            f"print(schedule_digest(g, bert_large_dims(), CostModel().gpu, "
            f"cap={CAP}, seed=7))\n"
        )
        runs = [
            subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                check=True,
                cwd="/root/repo",
            ).stdout.strip()
            for _ in range(2)
        ]
        local = schedule_digest(_mha_graph(), ENV, COST.gpu, cap=CAP, seed=7)
        assert runs[0] == runs[1] == local


# ---------------------------------------------------------------------------
# Round trips
# ---------------------------------------------------------------------------

def _round_trip_graphs():
    yield "mha", build_mha_graph(qkv_fusion="qkv", include_backward=False)
    yield "encoder-unfused", build_encoder_graph(
        qkv_fusion="qkv", include_backward=False
    )
    yield "encoder-fused", apply_paper_fusion(
        build_encoder_graph(qkv_fusion="qkv", include_backward=False), ENV
    )
    yield "decoder", build_gpt_decoder_graph(include_backward=False)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "label,graph", list(_round_trip_graphs()), ids=lambda v: v if isinstance(v, str) else ""
    )
    def test_register_load_validate(self, tmp_path, label, graph):
        registry, graph, sel, entry = _register_one(tmp_path, graph, cap=40)
        assert entry.digest in registry

        loaded = registry.load(entry.digest)
        assert loaded is not None
        assert loaded.to_bytes() == entry.to_bytes()
        assert loaded.total_us == sel.total_us

        # The typed views reconstruct the exact selection.
        chosen = loaded.chosen_measurements()
        assert list(chosen) == list(sel.chosen)  # assignment order survives
        for name, m in sel.chosen.items():
            assert chosen[name].config == m.config
            assert chosen[name].time == m.time

        report = validate_entry(loaded)
        assert report.ok, report.summary()
        assert report.validators == ["structural", "cost", "staleness"]

    def test_entry_records_problem_and_provenance(self, tmp_path):
        registry, graph, sel, entry = _register_one(tmp_path)
        assert entry.cost_model_version == COST_MODEL_VERSION
        assert entry.knobs == {"cap": CAP, "seed": 0x5EED, "source": "x"}
        configured = {op.name for op in graph.ops if not op.is_view}
        assert set(entry.provenance["sweeps"]) == configured
        assert entry.provenance["registered_at"] > 0
        # The recorded env covers exactly the dims the graph uses.
        assert set(entry.env) <= set(ENV)

    def test_reregistering_same_problem_is_idempotent(self, tmp_path):
        registry, graph, sel, entry = _register_one(tmp_path)
        again = register_selection(registry, graph, ENV, COST, sel, cap=CAP)
        assert again.digest == entry.digest
        assert registry.digests() == [entry.digest]
        assert registry.stats()["registered"] == 2

    def test_miss_returns_none(self, tmp_path):
        registry = ScheduleRegistry(tmp_path / "registry")
        assert registry.load("0" * 64) is None
        assert registry.digests() == []
        assert registry.stats()["misses"] == 1


# ---------------------------------------------------------------------------
# Corruption recovery
# ---------------------------------------------------------------------------

class TestCorruptionRecovery:
    def test_truncated_file_raises_registry_error(self, tmp_path):
        registry, _, _, entry = _register_one(tmp_path)
        path = registry.path_for(entry.digest)
        path.write_bytes(path.read_bytes()[: len(path.read_bytes()) // 2])
        with pytest.raises(RegistryError):
            registry.load(entry.digest)
        assert registry.stats()["rejected"] == 1

    def test_garbage_json_raises_registry_error(self, tmp_path):
        registry, _, _, entry = _register_one(tmp_path)
        registry.path_for(entry.digest).write_text("not json {")
        with pytest.raises(RegistryError, match="not valid JSON"):
            registry.load(entry.digest)

    def test_missing_fields_raise_registry_error(self, tmp_path):
        registry, _, _, entry = _register_one(tmp_path)
        wire = entry.to_wire()
        del wire["selection"]
        registry.path_for(entry.digest).write_text(json.dumps(wire))
        with pytest.raises(RegistryError, match="missing required fields"):
            registry.load(entry.digest)

    def test_tampered_problem_tuple_fails_hash_verification(self, tmp_path):
        """Editing anything the digest covers makes the file unloadable."""
        registry, _, _, entry = _register_one(tmp_path)
        wire = json.loads(entry.to_bytes())
        wire["knobs"]["seed"] = 12345
        registry.path_for(entry.digest).write_bytes(
            json.dumps(wire).encode()
        )
        with pytest.raises(RegistryError, match="does not hash to its address"):
            registry.load(entry.digest)

    def test_renamed_file_fails_declared_digest_check(self, tmp_path):
        registry, _, _, entry = _register_one(tmp_path)
        bogus = "f" * 64
        registry.path_for(entry.digest).rename(registry.path_for(bogus))
        with pytest.raises(RegistryError, match="declares digest"):
            registry.load(bogus)

    def test_entries_scan_survives_a_corrupt_entry(self, tmp_path):
        """One bad file must not hide the rest of the registry."""
        registry, graph, sel, good = _register_one(tmp_path)
        bad_digest = "b" * 64
        registry.path_for(bad_digest).write_text("torn")
        seen = dict(registry.entries())
        assert isinstance(seen[bad_digest], RegistryError)
        assert isinstance(seen[good.digest], ScheduleEntry)


# ---------------------------------------------------------------------------
# Concurrency: the daemon registering while the CLI validates
# ---------------------------------------------------------------------------

class TestConcurrency:
    def test_concurrent_register_and_validate_never_torn(self, tmp_path):
        """Writers re-register while readers load + validate, in parallel.

        The atomic temp-file + ``os.replace`` write means a reader sees
        either the previous complete entry or the new complete one; a
        ``RegistryError`` (torn read) or a failed validation here would be
        the race the fix closed.
        """
        registry, graph, sel, entry = _register_one(tmp_path)
        digest = entry.digest
        failures: list[str] = []

        def writer(_):
            for _ in range(10):
                register_selection(registry, graph, ENV, COST, sel, cap=CAP)

        def reader(_):
            for _ in range(10):
                try:
                    loaded = registry.load(digest)
                except RegistryError as exc:
                    failures.append(f"torn read: {exc}")
                    continue
                if loaded is None:
                    failures.append("entry vanished mid-race")
                    continue
                report = validate_entry(loaded)
                if not report.ok:
                    failures.append(report.summary())

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(writer, range(4)))
            list(pool.map(reader, range(4)))
            writes = [pool.submit(writer, i) for i in range(4)]
            reads = [pool.submit(reader, i) for i in range(4)]
            for f in writes + reads:
                f.result()
        assert failures == []
        assert not list(registry.root.glob("*.tmp"))  # no leaked temp files


# ---------------------------------------------------------------------------
# The process-active registry and the selection hook
# ---------------------------------------------------------------------------

class TestActiveRegistry:
    def test_resolution_order(self, tmp_path, monkeypatch):
        # Nothing configured: no registry.
        assert get_schedule_registry() is None

        # Env var names one.
        monkeypatch.setattr(registry_module, "_ACTIVE", registry_module._UNSET)
        monkeypatch.setenv(REGISTRY_ENV_VAR, str(tmp_path / "from-env"))
        from_env = get_schedule_registry()
        assert from_env is not None
        assert from_env.root == tmp_path / "from-env"

        # Explicit set wins over everything and is returned as-is.
        explicit = set_schedule_registry(tmp_path / "explicit")
        assert get_schedule_registry() is explicit

        # Explicit None disables, even with the env var present.
        set_schedule_registry(None)
        assert get_schedule_registry() is None

    def test_derived_from_sweep_store(self, tmp_path, monkeypatch):
        from repro.engine import set_sweep_store

        monkeypatch.setattr(registry_module, "_ACTIVE", registry_module._UNSET)
        store = set_sweep_store(tmp_path / "store")
        try:
            derived = get_schedule_registry()
            assert derived is not None
            assert derived.root == store.root / "registry"
            # Memoized: repeated lookups share the instance (stable counters).
            assert get_schedule_registry() is derived
        finally:
            set_sweep_store(None)

    def test_select_configurations_registers_when_asked(self, tmp_path):
        registry = ScheduleRegistry(tmp_path / "registry")
        graph = _mha_graph()
        sel = select_configurations(graph, ENV, COST, cap=CAP, register=registry)
        assert sel.registered_digest is not None
        loaded = registry.load(sel.registered_digest)
        assert loaded is not None
        assert loaded.total_us == sel.total_us
        assert loaded.provenance["registrar"] == "select_configurations"

    def test_select_configurations_skips_when_unconfigured(self):
        graph = _mha_graph()
        sel = select_configurations(graph, ENV, COST, cap=CAP, register=True)
        assert sel.registered_digest is None  # no active registry: a no-op

    def test_build_schedule_registers_selected_mode(self, tmp_path):
        from repro.baselines.policy import OURS
        from repro.baselines.schedule import build_schedule

        registry = ScheduleRegistry(tmp_path / "registry")
        graph = apply_paper_fusion(
            build_mha_graph(qkv_fusion="qkv", include_backward=False), ENV
        )
        schedule = build_schedule(
            graph, OURS, ENV, COST, cap=CAP, register=registry
        )
        digests = registry.digests()
        assert len(digests) == 1
        loaded = registry.load(digests[0])
        report = validate_entry(loaded)
        assert report.ok, report.summary()
        # The registered total is the selection's, before per-kernel overhead.
        overhead = OURS.per_kernel_overhead_us * len(loaded.selection["chosen"])
        assert schedule.total_us == pytest.approx(loaded.total_us + overhead)
