"""Smoke test of the real daemon process: ``python -m repro serve``.

The in-process tests (``tests/test_service.py``) cover the service logic;
this file covers the *deployment surface*: a spawned daemon subprocess, the
``repro query`` CLI against it, concurrent clients coalescing through real
sockets, the shared on-disk sweep store, and a clean SIGTERM shutdown.
This is the test the CI service-smoke job runs.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

from repro.ir.dims import bert_large_dims
from repro.service import TuningClient
from repro.transformer.graph_builder import build_mha_graph

REPO = Path(__file__).resolve().parent.parent
CAP = 60

# Deselected from tier-1: the dedicated CI service-smoke job (and the
# nightly run) are the sole runners, so pushes don't pay for the daemon
# subprocess twice.
pytestmark = pytest.mark.slow


def _spawn_daemon(store_dir, *, fault_spec=None, extra_args=()):
    """Start one ``repro serve`` subprocess; returns (proc, client)."""
    env = dict(
        os.environ,
        PYTHONPATH=str(REPO / "src"),
        PYTHONUNBUFFERED="1",
    )
    env.pop("REPRO_FAULT_SPEC", None)
    if fault_spec:
        env["REPRO_FAULT_SPEC"] = fault_spec
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0",  # ephemeral: parallel CI jobs must not collide
            "--sweep-store", str(store_dir),
            *extra_args,
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    banner = proc.stdout.readline()
    match = re.search(r"http://[\d.]+:(\d+)", banner)
    assert match, f"no listen address in banner: {banner!r}"
    return proc, TuningClient(f"http://127.0.0.1:{match.group(1)}")


@pytest.fixture
def daemon(tmp_path):
    """A live ``repro serve`` subprocess; yields (proc, client, store_dir)."""
    store_dir = tmp_path / "sweep-store"
    proc, client = _spawn_daemon(store_dir)
    try:
        client.wait_until_ready(timeout=30)
        yield proc, client, store_dir
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)


def test_daemon_serves_coalesces_and_shuts_down_cleanly(daemon):
    proc, client, store_dir = daemon

    health = client.healthz()
    assert health["status"] == "ok"
    assert health["store"] is not None  # --sweep-store is active
    assert health["store"]["saves"] == 0

    # Concurrent identical sweeps: one evaluation, identical bytes, and the
    # evaluation lands in the daemon's on-disk store.
    op = build_mha_graph(qkv_fusion="unfused", include_backward=False).op(
        "softmax"
    )
    env = bert_large_dims()
    with ThreadPoolExecutor(8) as pool:
        bodies = set(
            pool.map(lambda _: client.sweep_raw(op, env, cap=CAP), range(8))
        )
    assert len(bodies) == 1
    metrics = client.metrics()
    tiers = metrics["resolve_tiers"]
    assert tiers["computed"] == 1
    assert tiers["coalesced"] + tiers["l1"] == 7
    assert metrics["store"]["saves"] == 1
    assert list(store_dir.glob("*.npz"))  # the sweep is on disk

    # The query CLI against the same daemon.
    cli_env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
    out = subprocess.run(
        [
            sys.executable, "-m", "repro", "query",
            "--url", client.base_url, "--health",
        ],
        env=cli_env,
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert out.returncode == 0
    assert json.loads(out.stdout)["status"] == "ok"

    out = subprocess.run(
        [
            sys.executable, "-m", "repro", "query",
            "--url", client.base_url,
            "--model", "mha", "--cap", str(CAP),
        ],
        env=cli_env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert out.returncode == 0
    assert "kernels" in out.stdout

    # Clean shutdown on SIGTERM: exit code 0 and the shutdown banner.
    proc.send_signal(signal.SIGTERM)
    assert proc.wait(timeout=30) == 0
    assert "clean shutdown" in proc.stdout.read()


def test_daemon_liveness_precedes_readiness(daemon):
    """A spawned daemon is live immediately but ready only after warm-up."""
    proc, client, _ = daemon
    assert client.healthz()["status"] == "ok"  # liveness: already up
    detail = client.wait_until_ready(timeout=60, readiness=True)
    checks = detail["checks"]
    assert checks["warm"] is True
    assert checks["store"] is True
    assert checks["draining"] is False
    assert client.healthz()["ready"] is True


def test_sigterm_finishes_in_flight_requests(tmp_path):
    """SIGTERM mid-request: the response still completes, then exit 0.

    The daemon hangs its first ``/metrics`` request for 2 s (fault
    injection — a stand-in for any slow in-flight request).  SIGTERM
    arrives while that request is being served; the drain path must let
    it finish with a valid response before the process exits cleanly.
    """
    proc, client = _spawn_daemon(
        tmp_path / "sweep-store",
        fault_spec="hang:path=/metrics:delay=2:count=1",
    )
    try:
        client.wait_until_ready(timeout=60, readiness=True)
        with ThreadPoolExecutor(1) as pool:
            future = pool.submit(client.metrics)
            time.sleep(0.5)  # the request is now stalled server-side
            proc.send_signal(signal.SIGTERM)
            metrics = future.result(timeout=30)
        assert "resolve_tiers" in metrics  # a complete, valid response
        assert proc.wait(timeout=30) == 0
        out = proc.stdout.read()
        assert "clean shutdown" in out
        assert "drain deadline" not in out  # it finished, not got cut off
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)


def test_version_flag():
    out = subprocess.run(
        [sys.executable, "-m", "repro", "--version"],
        env=dict(os.environ, PYTHONPATH=str(REPO / "src")),
        capture_output=True,
        text=True,
        timeout=60,
    )
    from repro import __version__

    assert out.returncode == 0
    assert __version__ in out.stdout
    assert "cost model" in out.stdout
