"""Smoke test of the real daemon process: ``python -m repro serve``.

The in-process tests (``tests/test_service.py``) cover the service logic;
this file covers the *deployment surface*: a spawned daemon subprocess, the
``repro query`` CLI against it, concurrent clients coalescing through real
sockets, the shared on-disk sweep store, and a clean SIGTERM shutdown.
This is the test the CI service-smoke job runs.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

from repro.ir.dims import bert_large_dims
from repro.service import TuningClient
from repro.transformer.graph_builder import build_mha_graph

REPO = Path(__file__).resolve().parent.parent
CAP = 60

# Deselected from tier-1: the dedicated CI service-smoke job (and the
# nightly run) are the sole runners, so pushes don't pay for the daemon
# subprocess twice.
pytestmark = pytest.mark.slow


@pytest.fixture
def daemon(tmp_path):
    """A live ``repro serve`` subprocess; yields (proc, client, store_dir)."""
    store_dir = tmp_path / "sweep-store"
    env = dict(
        os.environ,
        PYTHONPATH=str(REPO / "src"),
        PYTHONUNBUFFERED="1",
    )
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0",  # ephemeral: parallel CI jobs must not collide
            "--sweep-store", str(store_dir),
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        banner = proc.stdout.readline()
        match = re.search(r"http://[\d.]+:(\d+)", banner)
        assert match, f"no listen address in banner: {banner!r}"
        client = TuningClient(f"http://127.0.0.1:{match.group(1)}")
        client.wait_until_ready(timeout=30)
        yield proc, client, store_dir
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)


def test_daemon_serves_coalesces_and_shuts_down_cleanly(daemon):
    proc, client, store_dir = daemon

    health = client.healthz()
    assert health["status"] == "ok"
    assert health["store"] is not None  # --sweep-store is active
    assert health["store"]["saves"] == 0

    # Concurrent identical sweeps: one evaluation, identical bytes, and the
    # evaluation lands in the daemon's on-disk store.
    op = build_mha_graph(qkv_fusion="unfused", include_backward=False).op(
        "softmax"
    )
    env = bert_large_dims()
    with ThreadPoolExecutor(8) as pool:
        bodies = set(
            pool.map(lambda _: client.sweep_raw(op, env, cap=CAP), range(8))
        )
    assert len(bodies) == 1
    metrics = client.metrics()
    tiers = metrics["resolve_tiers"]
    assert tiers["computed"] == 1
    assert tiers["coalesced"] + tiers["l1"] == 7
    assert metrics["store"]["saves"] == 1
    assert list(store_dir.glob("*.npz"))  # the sweep is on disk

    # The query CLI against the same daemon.
    cli_env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
    out = subprocess.run(
        [
            sys.executable, "-m", "repro", "query",
            "--url", client.base_url, "--health",
        ],
        env=cli_env,
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert out.returncode == 0
    assert json.loads(out.stdout)["status"] == "ok"

    out = subprocess.run(
        [
            sys.executable, "-m", "repro", "query",
            "--url", client.base_url,
            "--model", "mha", "--cap", str(CAP),
        ],
        env=cli_env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert out.returncode == 0
    assert "kernels" in out.stdout

    # Clean shutdown on SIGTERM: exit code 0 and the shutdown banner.
    proc.send_signal(signal.SIGTERM)
    assert proc.wait(timeout=30) == 0
    assert "clean shutdown" in proc.stdout.read()


def test_version_flag():
    out = subprocess.run(
        [sys.executable, "-m", "repro", "--version"],
        env=dict(os.environ, PYTHONPATH=str(REPO / "src")),
        capture_output=True,
        text=True,
        timeout=60,
    )
    from repro import __version__

    assert out.returncode == 0
    assert __version__ in out.stdout
    assert "cost model" in out.stdout
