"""Unit tests for TensorSpec, IterationSpace, OpSpec, and dtypes."""

import numpy as np
import pytest

from repro.ir.dims import DimEnv, bert_large_dims
from repro.ir.dtypes import FP16, FP32, FP64, DType
from repro.ir.iteration_space import Compatibility, IterationSpace
from repro.ir.operator import OpClass, OpSpec, Stage
from repro.ir.tensor import TensorSpec
from repro.ir.views import view_spec

ENV = DimEnv({"a": 4, "b": 6, "c": 8, "r": 16})


class TestDTypes:
    def test_widths(self):
        assert FP16.itemsize == 2
        assert FP32.itemsize == 4
        assert FP64.itemsize == 8

    def test_bytes_for(self):
        assert FP16.bytes_for(10) == 20
        with pytest.raises(ValueError):
            FP16.bytes_for(-1)

    def test_invalid_itemsize(self):
        with pytest.raises(ValueError):
            DType("bad", 0, np.dtype(np.float32))


class TestTensorSpec:
    def test_volume_bytes_shape(self):
        t = TensorSpec("x", ("a", "b"))
        assert t.volume(ENV) == 24
        assert t.nbytes(ENV) == 48  # fp16
        assert t.shape(ENV) == (4, 6)
        assert t.rank == 2

    def test_fp32_bytes(self):
        t = TensorSpec("x", ("a",), dtype=FP32)
        assert t.nbytes(ENV) == 16

    def test_rejects_repeated_dims(self):
        with pytest.raises(ValueError):
            TensorSpec("x", ("a", "a"))

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            TensorSpec("", ("a",))

    def test_grad_spec(self):
        t = TensorSpec("w", ("a", "b"), is_param=True)
        g = t.grad()
        assert g.name == "dw"
        assert g.dims == t.dims
        assert not g.is_param

    def test_renamed(self):
        t = TensorSpec("x", ("a", "b"))
        assert t.renamed("y").name == "y"
        assert t.renamed("y").dims == t.dims


class TestIterationSpace:
    def test_basic_sizes(self):
        s = IterationSpace(("a", "b"), ("r",))
        assert s.size(ENV) == 4 * 6 * 16
        assert s.parallel_size(ENV) == 24
        assert s.has_reduction
        assert s.all_dims == ("a", "b", "r")

    def test_overlap_rejected(self):
        with pytest.raises(ValueError):
            IterationSpace(("a",), ("a",))

    def test_identical_compatibility(self):
        s = IterationSpace(("a", "b"))
        assert s.compatibility(IterationSpace(("a", "b"))) is Compatibility.IDENTICAL

    def test_reduction_extension(self):
        map_ = IterationSpace(("a", "b"))
        red = IterationSpace(("a", "b"), ("r",))
        assert map_.compatibility(red) is Compatibility.REDUCTION_EXTENSION
        assert red.compatibility(map_) is Compatibility.REDUCTION_EXTENSION

    def test_two_different_reductions_incompatible(self):
        s1 = IterationSpace(("a",), ("b",))
        s2 = IterationSpace(("a",), ("r",))
        assert s1.compatibility(s2) is Compatibility.INCOMPATIBLE

    def test_partial_shares_outer_prefix(self):
        s1 = IterationSpace(("a", "b"))
        s2 = IterationSpace(("a", "c"))
        assert s1.compatibility(s2) is Compatibility.PARTIAL

    def test_no_shared_prefix_incompatible(self):
        s1 = IterationSpace(("b", "a"))
        s2 = IterationSpace(("c", "a"))
        assert s1.compatibility(s2) is Compatibility.INCOMPATIBLE

    def test_fuse_identical(self):
        s = IterationSpace(("a",), ("r",))
        assert s.fuse(s) == s

    def test_fuse_reduction_extension(self):
        fused = IterationSpace(("a",)).fuse(IterationSpace(("a",), ("r",)))
        assert fused == IterationSpace(("a",), ("r",))

    def test_fuse_partial_merges_inner(self):
        fused = IterationSpace(("a", "b")).fuse(IterationSpace(("a", "c")))
        assert fused.independent == ("a", "b", "c")

    def test_fuse_incompatible_raises(self):
        with pytest.raises(ValueError):
            IterationSpace(("a",), ("b",)).fuse(IterationSpace(("a",), ("r",)))


class TestOpSpec:
    def _op(self, **kw):
        defaults = dict(
            name="op",
            op_class=OpClass.ELEMENTWISE,
            inputs=(TensorSpec("x", ("a", "b")),),
            outputs=(TensorSpec("y", ("a", "b")),),
            ispace=IterationSpace(("a", "b")),
            flop_per_point=1.0,
        )
        defaults.update(kw)
        return OpSpec(**defaults)

    def test_flop_and_io(self):
        op = self._op()
        assert op.flops(ENV) == 24
        assert op.input_words(ENV) == 24
        assert op.output_words(ENV) == 24
        assert op.io_bytes(ENV) == 96  # 48 in + 48 out at fp16

    def test_contraction_requires_einsum(self):
        with pytest.raises(ValueError):
            self._op(op_class=OpClass.TENSOR_CONTRACTION)

    def test_view_has_zero_cost(self):
        v = view_spec("v", TensorSpec("x", ("a", "b")), TensorSpec("xv", ("a", "b")))
        assert v.flops(ENV) == 0
        assert v.io_bytes(ENV) == 0
        assert v.is_view

    def test_members_flop_sums(self):
        m1 = self._op(name="m1")
        m2 = self._op(name="m2", flop_per_point=2.0)
        fused = self._op(name="f", members=(m1, m2))
        assert fused.flops(ENV) == 24 + 48

    def test_movement_class_thresholds(self):
        # 1 flop/point, 2 words moved per point -> ratio 0.5 -> IO > flop
        assert self._op().movement_class(ENV) == "IO > flop"
        heavy = self._op(flop_per_point=100.0)
        assert heavy.movement_class(ENV) == "IO < flop"

    def test_stage_flags(self):
        assert not Stage.FORWARD.is_backward
        assert Stage.BACKWARD_DX.is_backward
        assert Stage.BACKWARD_DW.is_backward

    def test_markers(self):
        assert OpClass.TENSOR_CONTRACTION.marker == "△"
        assert OpClass.STAT_NORMALIZATION.marker == "⬜"
        assert OpClass.ELEMENTWISE.marker == "○"

    def test_negative_flop_rejected(self):
        with pytest.raises(ValueError):
            self._op(flop_per_point=-1.0)

    def test_no_outputs_rejected(self):
        with pytest.raises(ValueError):
            self._op(outputs=())
