"""In-process fleet tests: hash ring, faults, registry, retry, coordinator.

The chaos suite (``tests/test_fleet_faults.py``, slow) proves the same
failure semantics against real subprocesses; this file pins the mechanics
fast enough for tier-1: ring determinism and minimal rebalancing, the
``REPRO_FAULT_SPEC`` grammar, worker leases and quarantine, client-side
transport retry, and the coordinator's byte-identity + graceful
degradation with in-process workers behind real sockets.
"""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro.ir.dims import bert_large_dims
from repro.service.client import ServiceError, TuningClient
from repro.service.fleet.coordinator import FleetService, make_fleet_server
from repro.service.fleet.faults import (
    KILL_EXIT_CODE,
    FaultInjector,
    FaultSpecError,
    parse_fault_spec,
)
from repro.service.fleet.hashring import HashRing
from repro.service.fleet.registry import WorkerRegistry
from repro.service.protocol import (
    ProtocolError,
    fleet_register_wire,
    parse_fleet_heartbeat,
    parse_fleet_register,
)
from repro.service.server import TuningService, serve_background

ENV = bert_large_dims()
CAP = 60

KEYS = [f"{i:064x}" for i in range(200)]  # digest-shaped ring keys


def _storeless(**kwargs) -> TuningService:
    return TuningService(store=None, registry=None, **kwargs)


def _fleet(**kwargs) -> FleetService:
    kwargs.setdefault("store", None)
    kwargs.setdefault("registry", None)
    kwargs.setdefault("ttl_s", 10.0)
    kwargs.setdefault("backoff_s", 0.01)
    kwargs.setdefault("backoff_cap_s", 0.05)
    return FleetService(**kwargs)


def _batch_raw(client: TuningClient) -> bytes:
    return client.optimize_batch_raw(
        model="mha", include_backward=False, env=ENV, cap=CAP
    )


@pytest.fixture(scope="module")
def single_node_bytes() -> bytes:
    """The ``/v1/optimize`` response every fleet answer must equal."""
    with serve_background(_storeless()) as url:
        return TuningClient(url).optimize_raw(
            model="mha", include_backward=False, env=ENV, cap=CAP
        )


# ---------------------------------------------------------------------------
# hash ring
# ---------------------------------------------------------------------------

class TestHashRing:
    def test_membership_order_never_matters(self):
        a = HashRing(["w1", "w2", "w3"])
        b = HashRing(["w3", "w1", "w2"])
        assert [a.node_for(k) for k in KEYS] == [b.node_for(k) for k in KEYS]

    def test_every_node_owns_keys(self):
        ring = HashRing(["w1", "w2", "w3"])
        owners = {ring.node_for(k) for k in KEYS}
        assert owners == {"w1", "w2", "w3"}

    def test_removal_only_remaps_the_removed_nodes_keys(self):
        ring = HashRing(["w1", "w2", "w3"])
        before = {k: ring.node_for(k) for k in KEYS}
        ring.remove("w2")
        for k, owner in before.items():
            if owner == "w2":
                assert ring.node_for(k) != "w2"
            else:
                assert ring.node_for(k) == owner

    def test_exclusion_equals_removal(self):
        """Walk-time exclusion == rebuilding the ring without the node —
        the property quarantine re-routing depends on."""
        full = HashRing(["w1", "w2", "w3"])
        rebuilt = HashRing(["w1", "w3"])
        for k in KEYS:
            assert full.node_for(k, exclude={"w2"}) == rebuilt.node_for(k)

    def test_preference_is_distinct_and_complete(self):
        ring = HashRing(["w1", "w2", "w3"])
        for k in KEYS[:20]:
            pref = ring.preference(k)
            assert sorted(pref) == ["w1", "w2", "w3"]
            assert ring.node_for(k, exclude={pref[0]}) == pref[1]

    def test_add_remove_roundtrip_restores_ownership(self):
        ring = HashRing(["w1", "w2", "w3"])
        before = {k: ring.node_for(k) for k in KEYS}
        ring.remove("w2")
        ring.add("w2")
        assert {k: ring.node_for(k) for k in KEYS} == before

    def test_empty_and_exhausted_ring(self):
        assert HashRing().node_for("k") is None
        ring = HashRing(["w1"])
        assert ring.node_for("k", exclude={"w1"}) is None

    def test_distribution_is_roughly_even(self):
        ring = HashRing(["w1", "w2", "w3"])
        counts = {"w1": 0, "w2": 0, "w3": 0}
        for k in KEYS:
            counts[ring.node_for(k)] += 1
        # 64 vnodes/worker: no worker should own a wildly lopsided share.
        assert all(c >= len(KEYS) * 0.15 for c in counts.values()), counts


# ---------------------------------------------------------------------------
# fault-injection harness
# ---------------------------------------------------------------------------

class TestFaultSpec:
    def test_grammar(self):
        clauses = parse_fault_spec(
            "kill:path=/v1/sweep:after=2, hang:delay=1.5:count=0, corrupt"
        )
        kill, hang, corrupt = clauses
        assert (kill.kind, kill.path, kill.after, kill.count) == (
            "kill", "/v1/sweep", 2, 1,
        )
        assert (hang.kind, hang.delay, hang.count) == ("hang", 1.5, 0)
        assert (corrupt.kind, corrupt.path) == ("corrupt", "/v1/")

    @pytest.mark.parametrize(
        "spec",
        [
            "explode",
            "kill:after=zero",
            "kill:after=0",
            "hang:delay=-1",
            "kill:path",
            "kill:nonsense=1",
        ],
    )
    def test_malformed_specs_fail_loud(self, spec):
        with pytest.raises(FaultSpecError):
            parse_fault_spec(spec)

    def test_empty_spec_means_no_injector(self):
        assert FaultInjector.from_spec(None) is None
        assert FaultInjector.from_spec("") is None
        assert FaultInjector.from_spec("  , ") is None
        assert KILL_EXIT_CODE != 0

    def test_after_and_count_windows(self):
        inj = FaultInjector(parse_fault_spec("hang:after=2:count=2:delay=0"))
        clause = inj.clauses[0]
        fired = []
        for _ in range(5):
            inj.before("/v1/sweep")
            fired.append(clause.fired)
        # Fires on matches 2 and 3, then exhausted.
        assert fired == [0, 1, 2, 2, 2]
        assert clause.matched == 5

    def test_path_filter(self):
        inj = FaultInjector(parse_fault_spec("corrupt:path=/v1/sweep"))
        inj.before("/healthz")  # no kill/hang clause: no-op
        assert inj.clauses[0].matched == 0

        class Reply:
            body = b"0123456789abcdef"
            stream = None
            stream_len = 0

        reply = Reply()
        inj.mangle_reply("/metrics", reply)
        assert reply.body == b"0123456789abcdef"  # path filter spared it
        inj.mangle_reply("/v1/sweep", reply)
        assert reply.body != b"0123456789abcdef"
        assert len(reply.body) == 16  # Content-Length stays true


# ---------------------------------------------------------------------------
# worker registry
# ---------------------------------------------------------------------------

class TestWorkerRegistry:
    def test_lease_expiry_distinguishes_live_from_registered(self):
        reg = WorkerRegistry(ttl_s=0.2)
        reg.register("w1", "http://h:1", ready=True)
        assert set(reg.eligible()) == {"w1"}
        time.sleep(0.3)
        assert reg.eligible() == {}  # lease expired: live=False
        assert reg.counts()["registered"] == 1  # still registered
        reg.heartbeat("w1", ready=True)
        assert set(reg.eligible()) == {"w1"}  # one beat revives it

    def test_ready_flag_gates_eligibility(self):
        reg = WorkerRegistry(ttl_s=10)
        reg.register("w1", "http://h:1", ready=False)
        assert reg.eligible() == {}
        reg.heartbeat("w1", ready=True)
        assert set(reg.eligible()) == {"w1"}

    def test_unknown_heartbeat_returns_none(self):
        reg = WorkerRegistry(ttl_s=10)
        assert reg.heartbeat("ghost", ready=True) is None

    def test_quarantine_and_reregistration_clears_it(self):
        reg = WorkerRegistry(ttl_s=10)
        reg.register("w1", "http://h:1", ready=True)
        reg.quarantine("w1", 60, "corrupt")
        assert reg.eligible() == {}
        snap = reg.snapshot()["w1"]
        assert snap["quarantined"] and snap["quarantine_reason"] == "corrupt"
        assert snap["counters"]["quarantines"] == 1
        # Overlapping quarantine extends, but counts once.
        reg.quarantine("w1", 120, "timeout")
        assert reg.snapshot()["w1"]["counters"]["quarantines"] == 1
        reg.register("w1", "http://h:1", ready=True)  # recovery path
        assert set(reg.eligible()) == {"w1"}

    def test_generation_tracks_membership_not_health(self):
        reg = WorkerRegistry(ttl_s=10)
        g0 = reg.membership()[0]
        reg.register("w1", "http://h:1")
        g1 = reg.membership()[0]
        assert g1 != g0
        reg.quarantine("w1", 60, "error")
        reg.heartbeat("w1", ready=True)
        assert reg.membership()[0] == g1  # health never rebuilds the ring
        reg.deregister("w1")
        assert reg.membership()[0] != g1

    def test_counters_and_unknown_event(self):
        reg = WorkerRegistry(ttl_s=10)
        reg.register("w1", "http://h:1")
        reg.record("w1", "dispatched")
        reg.record("w1", "timeout")
        counters = reg.snapshot()["w1"]["counters"]
        assert counters["dispatched"] == 1 and counters["timeout"] == 1
        with pytest.raises(ValueError):
            reg.record("w1", "exploded")


# ---------------------------------------------------------------------------
# protocol: fleet membership wire forms
# ---------------------------------------------------------------------------

class TestFleetProtocol:
    def test_register_roundtrip_and_validation(self):
        wid, url, ready, version = parse_fleet_register(
            {"worker_id": "w1", "url": "http://h:1/", "ready": True}
        )
        assert (wid, url, ready, version) == ("w1", "http://h:1", True, None)
        wire = fleet_register_wire(worker_id="w1", url="http://h:1")
        assert parse_fleet_register(wire)[3] == wire["cost_model_version"]
        with pytest.raises(ProtocolError):
            parse_fleet_register({"worker_id": "", "url": "http://h:1"})
        with pytest.raises(ProtocolError):
            parse_fleet_register({"worker_id": "w1", "url": "ftp://h:1"})
        with pytest.raises(ProtocolError):
            parse_fleet_register({"url": "http://h:1"})

    def test_heartbeat_roundtrip(self):
        assert parse_fleet_heartbeat({"worker_id": "w1"}) == ("w1", False, None)
        with pytest.raises(ProtocolError):
            parse_fleet_heartbeat({"ready": True})


# ---------------------------------------------------------------------------
# client transport retry
# ---------------------------------------------------------------------------

class _FlakyServer:
    """Accepts TCP connections, kills the first ``failures``, then serves
    a canned HTTP response — a daemon restarting under the client."""

    def __init__(self, failures: int) -> None:
        self.failures = failures
        self.connections = 0
        self._sock = socket.socket()
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(8)
        self.port = self._sock.getsockname()[1]
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self) -> None:
        body = b'{"status":"ok"}'
        response = (
            b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n"
            b"Content-Length: %d\r\nConnection: close\r\n\r\n%s"
            % (len(body), body)
        )
        while True:
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return
            self.connections += 1
            if self.connections <= self.failures:
                # RST instead of FIN: the client sees a reset connection.
                conn.setsockopt(
                    socket.SOL_SOCKET, socket.SO_LINGER,
                    b"\x01\x00\x00\x00\x00\x00\x00\x00",
                )
                conn.close()
                continue
            try:
                conn.recv(65536)
                conn.sendall(response)
            finally:
                conn.close()

    def close(self) -> None:
        self._sock.close()


class TestClientRetry:
    def test_transient_failures_are_retried_on_gets(self):
        server = _FlakyServer(failures=2)
        try:
            client = TuningClient(
                f"http://127.0.0.1:{server.port}", retries=3, backoff_s=0.01
            )
            assert client.healthz() == {"status": "ok"}
            assert server.connections == 3  # 2 resets + 1 success
        finally:
            server.close()

    def test_retries_exhausted_raises_service_error(self):
        server = _FlakyServer(failures=100)
        try:
            client = TuningClient(
                f"http://127.0.0.1:{server.port}", retries=2, backoff_s=0.01
            )
            with pytest.raises(ServiceError, match="3 attempt"):
                client.healthz()
        finally:
            server.close()

    def test_non_idempotent_posts_are_never_retried(self):
        server = _FlakyServer(failures=100)
        try:
            client = TuningClient(
                f"http://127.0.0.1:{server.port}", retries=3, backoff_s=0.01
            )
            with pytest.raises(ServiceError, match="1 attempt"):
                client.register_entry({"anything": 1})
            assert server.connections == 1  # /v1/register: one shot only
        finally:
            server.close()

    def test_retries_zero_disables_the_loop(self):
        server = _FlakyServer(failures=100)
        try:
            client = TuningClient(
                f"http://127.0.0.1:{server.port}", retries=0
            )
            with pytest.raises(ServiceError, match="1 attempt"):
                client.healthz()
            assert server.connections == 1
        finally:
            server.close()


# ---------------------------------------------------------------------------
# liveness vs. readiness
# ---------------------------------------------------------------------------

class TestReadiness:
    def test_cold_daemon_is_live_but_not_ready(self):
        service = _storeless(warm=False)
        with serve_background(service) as url:
            client = TuningClient(url)
            assert client.healthz()["status"] == "ok"  # liveness
            assert client.healthz()["ready"] is False
            ok, checks = client.readyz()
            assert not ok and checks["checks"]["warm"] is False
            service.start_warmup()
            detail = client.wait_until_ready(timeout=60, readiness=True)
            assert detail["checks"]["warm"] is True
            assert client.healthz()["ready"] is True

    def test_draining_daemon_flips_unready(self):
        service = _storeless()
        with serve_background(service) as url:
            client = TuningClient(url)
            assert client.readyz()[0]
            service.begin_drain()
            ok, detail = client.readyz()
            assert not ok and detail["checks"]["draining"] is True
            assert client.healthz()["status"] == "ok"  # still live


# ---------------------------------------------------------------------------
# the coordinator, end to end (in-process daemons, real sockets)
# ---------------------------------------------------------------------------

class TestCoordinator:
    def _register(self, client, **workers):
        for wid, url in workers.items():
            client.fleet_register(worker_id=wid, url=url, ready=True)

    def test_fault_free_batch_is_byte_identical(self, single_node_bytes):
        coord = _fleet()
        with serve_background(_storeless()) as u1, \
                serve_background(_storeless()) as u2, \
                serve_background(coord, factory=make_fleet_server) as cu:
            client = TuningClient(cu)
            self._register(client, w1=u1, w2=u2)
            assert _batch_raw(client) == single_node_bytes
            events = client.metrics()["fleet"]["events"]
            assert events["batch"] == 1
            assert events["job_remote"] > 0
            assert events["job_local_fallback"] == 0
            assert events["quarantine"] == 0
            # Both workers actually served jobs (the ring spread them).
            status = client.fleet_status()
            served = {
                wid: info["counters"]["ok"]
                for wid, info in status["workers"].items()
            }
            assert all(n > 0 for n in served.values()), served

    def test_corrupt_worker_is_quarantined_and_bytes_survive(
        self, single_node_bytes
    ):
        bad = _storeless(
            faults=FaultInjector.from_spec("corrupt:path=/v1/sweep:count=0")
        )
        coord = _fleet()
        with serve_background(bad) as u1, \
                serve_background(_storeless()) as u2, \
                serve_background(coord, factory=make_fleet_server) as cu:
            client = TuningClient(cu)
            self._register(client, bad=u1, good=u2)
            assert _batch_raw(client) == single_node_bytes
            status = client.fleet_status()
            bad_info = status["workers"]["bad"]
            assert bad_info["quarantined"] is True
            assert bad_info["quarantine_reason"] == "corrupt"
            assert bad_info["counters"]["corrupt"] > 0
            assert bad_info["counters"]["ok"] == 0
            assert bad_info["counters"]["quarantines"] == 1
            events = client.metrics()["fleet"]["events"]
            assert events["quarantine"] > 0
            assert events["job_local_fallback"] == 0  # 'good' covered it

    def test_hung_worker_times_out_and_bytes_survive(self, single_node_bytes):
        hang = _storeless(
            faults=FaultInjector.from_spec(
                "hang:path=/v1/sweep:delay=5:count=0"
            )
        )
        coord = _fleet(deadline_s=0.8)
        with serve_background(hang) as u1, \
                serve_background(_storeless()) as u2, \
                serve_background(coord, factory=make_fleet_server) as cu:
            client = TuningClient(cu)
            self._register(client, hang=u1, good=u2)
            assert _batch_raw(client) == single_node_bytes
            info = client.fleet_status()["workers"]["hang"]
            assert info["counters"]["timeout"] > 0
            assert info["quarantine_reason"] == "timeout"

    def test_zero_workers_degrades_to_local_engine(self, single_node_bytes):
        coord = _fleet()
        with serve_background(coord, factory=make_fleet_server) as cu:
            client = TuningClient(cu)
            assert _batch_raw(client) == single_node_bytes  # never a 5xx
            events = client.metrics()["fleet"]["events"]
            assert events["job_remote"] == 0
            assert events["job_local_fallback"] > 0

    def test_unready_workers_receive_no_traffic(self, single_node_bytes):
        coord = _fleet()
        with serve_background(_storeless()) as u1, \
                serve_background(coord, factory=make_fleet_server) as cu:
            client = TuningClient(cu)
            client.fleet_register(worker_id="cold", url=u1, ready=False)
            assert _batch_raw(client) == single_node_bytes
            status = client.fleet_status()
            assert status["workers"]["cold"]["counters"]["dispatched"] == 0
            assert client.metrics()["fleet"]["events"]["job_local_fallback"] > 0

    def test_heartbeat_lifecycle_over_http(self):
        coord = _fleet(ttl_s=5.0)
        with serve_background(coord, factory=make_fleet_server) as cu:
            client = TuningClient(cu)
            reply = client.fleet_register(
                worker_id="w1", url="http://127.0.0.1:1", ready=True
            )
            assert reply["ttl_s"] == 5.0
            assert reply["heartbeat_s"] == pytest.approx(5.0 / 3.0)
            beat = client.fleet_heartbeat(worker_id="w1", ready=True)
            assert beat["ready"] is True
            with pytest.raises(ServiceError) as err:
                client.fleet_heartbeat(worker_id="ghost", ready=True)
            assert err.value.status == 404  # the re-register signal
            assert client.fleet_deregister(worker_id="w1")["deregistered"]
            counts = client.fleet_status()["counts"]
            assert counts["registered"] == 0
