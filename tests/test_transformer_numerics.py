"""Finite-difference validation of the MHA and encoder backward passes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.transformer.encoder import encoder_backward, encoder_forward
from repro.transformer.mha import mha_backward, mha_forward
from repro.transformer.params import (
    ModelDims,
    init_encoder_params,
    init_mha_params,
)

DIMS = ModelDims.tiny()
RTOL = 2e-3
ATOL = 2e-4


def _numeric_grad(f, x: np.ndarray, eps: float = 1e-3) -> np.ndarray:
    """Central-difference gradient of scalar-valued ``f`` w.r.t. array ``x``."""
    g = np.zeros_like(x, dtype=np.float64)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        fp = f()
        x[idx] = orig - eps
        fm = f()
        x[idx] = orig
        g[idx] = (fp - fm) / (2 * eps)
        it.iternext()
    return g


def _rand(shape, rng):
    return rng.normal(0, 1.0, shape).astype(np.float64)


@pytest.fixture(scope="module")
def mha_setup():
    rng = np.random.default_rng(7)
    params = init_mha_params(DIMS, rng, std=0.3)
    # float64 for finite differences
    for name, arr in params.named():
        setattr(params, name, arr.astype(np.float64))
    i, b, j = DIMS.embed, DIMS.batch, DIMS.seq
    q = _rand((i, b, j), rng)
    k = _rand((i, b, j), rng)
    v = _rand((i, b, j), rng)
    return params, q, k, v


class TestMHAGradients:
    """Gradcheck every MHA parameter and input (dropout disabled)."""

    def _loss_weights(self, shape, seed=3):
        return np.random.default_rng(seed).normal(0, 1, shape)

    def _run(self, params, q, k, v):
        acts = mha_forward(params, q, k, v, dropout_p=0.0)
        lw = self._loss_weights(acts.out.shape)
        loss = float((acts.out * lw).sum())
        grads = mha_backward(params, acts, lw)
        return loss, grads, lw

    @pytest.mark.parametrize("pname", ["wq", "bq", "wk", "bk", "wv", "bv", "wo", "bo"])
    def test_param_grad(self, mha_setup, pname):
        params, q, k, v = mha_setup
        _, grads, lw = self._run(params, q, k, v)

        target = getattr(params, pname)

        def loss_fn():
            acts = mha_forward(params, q, k, v, dropout_p=0.0)
            return float((acts.out * lw).sum())

        num = _numeric_grad(loss_fn, target)
        ana = getattr(grads.params, pname)
        np.testing.assert_allclose(ana, num, rtol=RTOL, atol=ATOL)

    @pytest.mark.parametrize("which", ["q", "k", "v"])
    def test_input_grad(self, mha_setup, which):
        params, q, k, v = mha_setup
        _, grads, lw = self._run(params, q, k, v)
        arrs = {"q": q, "k": k, "v": v}

        def loss_fn():
            acts = mha_forward(params, q, k, v, dropout_p=0.0)
            return float((acts.out * lw).sum())

        num = _numeric_grad(loss_fn, arrs[which])
        ana = {"q": grads.dq, "k": grads.dk, "v": grads.dv}[which]
        np.testing.assert_allclose(ana, num, rtol=RTOL, atol=ATOL)

    def test_self_attention_input_grad_sums(self, mha_setup):
        """For self-attention (q=k=v=x), dx must be dq+dk+dv."""
        params, q, _, _ = mha_setup
        x = q.copy()
        acts = mha_forward(params, x, x, x, dropout_p=0.0)
        lw = self._loss_weights(acts.out.shape)
        grads = mha_backward(params, acts, lw)

        def loss_fn():
            a = mha_forward(params, x, x, x, dropout_p=0.0)
            return float((a.out * lw).sum())

        num = _numeric_grad(loss_fn, x)
        np.testing.assert_allclose(grads.dq + grads.dk + grads.dv, num, rtol=RTOL, atol=ATOL)


class TestEncoderGradients:
    """Gradcheck the full encoder layer (dropout disabled)."""

    @pytest.fixture(scope="class")
    def setup(self):
        rng = np.random.default_rng(11)
        params = init_encoder_params(DIMS, rng, std=0.3)
        for name, arr in params.mha.named():
            setattr(params.mha, name, arr.astype(np.float64))
        for name in ["ln1_g", "ln1_b", "w1", "b1", "w2", "b2", "ln2_g", "ln2_b"]:
            setattr(params, name, getattr(params, name).astype(np.float64))
        x = _rand((DIMS.embed, DIMS.batch, DIMS.seq), rng)
        lw = np.random.default_rng(5).normal(0, 1, x.shape)
        return params, x, lw

    def _loss(self, params, x, lw) -> float:
        acts = encoder_forward(params, x, dropout_p=0.0)
        return float((acts.ln2_out * lw).sum())

    def test_input_grad(self, setup):
        params, x, lw = setup
        acts = encoder_forward(params, x, dropout_p=0.0)
        _, dx = encoder_backward(params, acts, lw)
        num = _numeric_grad(lambda: self._loss(params, x, lw), x)
        np.testing.assert_allclose(dx, num, rtol=RTOL, atol=ATOL)

    @pytest.mark.parametrize(
        "pname", ["ln1_g", "ln1_b", "w1", "b1", "w2", "b2", "ln2_g", "ln2_b"]
    )
    def test_param_grad(self, setup, pname):
        params, x, lw = setup
        acts = encoder_forward(params, x, dropout_p=0.0)
        grads, _ = encoder_backward(params, acts, lw)
        num = _numeric_grad(lambda: self._loss(params, x, lw), getattr(params, pname))
        np.testing.assert_allclose(getattr(grads, pname), num, rtol=RTOL, atol=ATOL)

    @pytest.mark.parametrize("pname", ["wq", "bq", "wk", "bk", "wv", "bv", "wo", "bo"])
    def test_mha_param_grad(self, setup, pname):
        params, x, lw = setup
        acts = encoder_forward(params, x, dropout_p=0.0)
        grads, _ = encoder_backward(params, acts, lw)
        num = _numeric_grad(
            lambda: self._loss(params, x, lw), getattr(params.mha, pname)
        )
        np.testing.assert_allclose(getattr(grads.mha, pname), num, rtol=RTOL, atol=ATOL)

    def test_dropout_path_shapes(self, setup):
        """With dropout on, backward still produces correctly-shaped grads."""
        params, x, lw = setup
        acts = encoder_forward(params, x, dropout_p=0.3, rng=np.random.default_rng(0))
        grads, dx = encoder_backward(params, acts, lw)
        assert dx.shape == x.shape
        for (name, got), (_, ref) in zip(grads.named(), params.named()):
            assert got.shape == ref.shape, name


class TestGeluEncoder:
    """Gradcheck the GELU-activation variant of the encoder FFN."""

    def test_gelu_encoder_gradcheck(self):
        rng = np.random.default_rng(21)
        params = init_encoder_params(DIMS, rng, std=0.3)
        for name, arr in params.mha.named():
            setattr(params.mha, name, arr.astype(np.float64))
        for name in ["ln1_g", "ln1_b", "w1", "b1", "w2", "b2", "ln2_g", "ln2_b"]:
            setattr(params, name, getattr(params, name).astype(np.float64))
        x = _rand((DIMS.embed, DIMS.batch, DIMS.seq), rng)
        lw = np.random.default_rng(8).normal(0, 1, x.shape)

        def loss():
            acts = encoder_forward(params, x, dropout_p=0.0, activation="gelu")
            return float((acts.ln2_out * lw).sum())

        acts = encoder_forward(params, x, dropout_p=0.0, activation="gelu")
        grads, dx = encoder_backward(params, acts, lw)
        num = _numeric_grad(loss, x)
        np.testing.assert_allclose(dx, num, rtol=RTOL, atol=ATOL)
        num_w1 = _numeric_grad(loss, params.w1)
        np.testing.assert_allclose(grads.w1, num_w1, rtol=RTOL, atol=ATOL)

    def test_unknown_activation_rejected(self):
        rng = np.random.default_rng(1)
        params = init_encoder_params(DIMS, rng)
        x = _rand((DIMS.embed, DIMS.batch, DIMS.seq), rng)
        with pytest.raises(ValueError, match="activation"):
            encoder_forward(params, x, activation="swish")
