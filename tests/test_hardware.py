"""Unit tests for the simulated GPU substrate (spec, efficiency, cost, MUE)."""

import pytest

from repro.hardware.cost_model import CostModel, KernelTime
from repro.hardware.efficiency import (
    Efficiency,
    best_algorithm,
    contraction_efficiency,
    heuristic_algorithm,
    kernel_efficiency,
)
from repro.hardware.mue import mue, op_mue
from repro.hardware.spec import A100, GPUSpec, V100
from repro.ir.dims import bert_large_dims
from repro.ir.tensor import TensorSpec
from repro.layouts.config import NUM_GEMM_ALGORITHMS, OpConfig
from repro.layouts.configspace import contraction_configs, default_config, kernel_configs
from repro.layouts.gemm_mapping import GemmShape
from repro.ops.contraction import contraction_spec
from repro.ops.elementwise import bias_spec
from repro.ops.softmax import softmax_spec

ENV = bert_large_dims()


class TestGPUSpec:
    def test_v100_matches_paper(self):
        """Sec. III-D: 125 Tflop/s tensor-core peak, 31.4 Tflop/s FP16 peak."""
        assert V100.tensor_core_flops == 125e12
        assert V100.fp16_flops == 31.4e12
        assert V100.mem_bandwidth == 900e9

    def test_peak_selection(self):
        assert V100.peak_flops(tensor_cores=True) == 125e12
        assert V100.peak_flops(tensor_cores=False) == 31.4e12
        assert V100.peak_flops(tensor_cores=True, fp32=True) == 15.7e12

    def test_a100_is_faster(self):
        assert A100.tensor_core_flops > V100.tensor_core_flops
        assert A100.mem_bandwidth > V100.mem_bandwidth

    def test_validation(self):
        with pytest.raises(ValueError):
            GPUSpec("bad", -1, 1, 1, 1)
        with pytest.raises(ValueError):
            GPUSpec("bad", 1, 1, 1, 0)


class TestKernelTime:
    def test_total_is_launch_plus_roofline_max(self):
        kt = KernelTime(compute_us=10, memory_us=30, launch_us=5)
        assert kt.total_us == 35
        assert kt.bound == "memory"

    def test_compute_bound(self):
        assert KernelTime(50, 10, 5).bound == "compute"

    def test_launch_bound(self):
        assert KernelTime(1, 2, 5).bound == "launch"

    def test_addition(self):
        a = KernelTime(1, 2, 3)
        b = KernelTime(10, 20, 30)
        c = a + b
        assert (c.compute_us, c.memory_us, c.launch_us) == (11, 22, 33)


class TestContractionEfficiency:
    def _qkv(self):
        return contraction_spec("qkv", "cphi,ibj->cphbj", ("w", "x"), "out")

    def test_large_gemm_reaches_paper_range(self):
        """Table III: tuned contractions hit ~50-70% of tensor-core peak."""
        op = self._qkv()
        best = 0.0
        for config in contraction_configs(op, ENV):
            eff = contraction_efficiency(op, config, ENV)
            if eff and eff.tensor_cores:
                best = max(best, eff.compute)
        assert 0.5 <= best <= 0.75

    def test_small_dim_underutilizes_tensor_cores(self):
        """Sec. IV-B: QKT's small dims leave tensor cores underutilized."""
        qkt = contraction_spec("qkt", "phbk,phbj->hbjk", ("kk", "qq"), "beta")
        best = 0.0
        for config in contraction_configs(qkt, ENV):
            eff = contraction_efficiency(qkt, config, ENV)
            if eff and eff.tensor_cores:
                best = max(best, eff.compute)
        assert best < 0.35

    def test_infeasible_layout_returns_none(self):
        from repro.layouts.layout import Layout

        # A two-dim M group (a, m) split apart by the K dim b cannot form a
        # single strided matrix: no GEMM mapping exists.
        op = contraction_spec("mm", "amb,bc->amc", ("x", "y"), "z")
        env = ENV.with_sizes(a=8, m=8, b=64, c=64)
        bad = OpConfig(
            op_name="mm",
            input_layouts=(Layout(("a", "b", "m")), Layout(("b", "c"))),
            output_layouts=(Layout(("a", "m", "c")),),
        )
        assert contraction_efficiency(op, bad, env) is None

    def test_fp16_mode_slower_than_tc_for_large(self):
        op = self._qkv()
        cfg_tc = default_config(op)
        eff_tc = contraction_efficiency(op, cfg_tc, ENV)
        from dataclasses import replace

        cfg_fp = replace(cfg_tc, use_tensor_cores=False)
        eff_fp = contraction_efficiency(op, cfg_fp, ENV)
        # Per-peak efficiencies are similar but the TC peak is 4x higher:
        # absolute flop/s must be much higher with tensor cores.
        assert eff_tc.tensor_cores and not eff_fp.tensor_cores
        assert eff_tc.compute * 125e12 > 2 * eff_fp.compute * 31.4e12

    def test_deterministic(self):
        op = self._qkv()
        cfg = default_config(op)
        e1 = contraction_efficiency(op, cfg, ENV)
        e2 = contraction_efficiency(op, cfg, ENV)
        assert e1 == e2

    def test_algorithms_differ(self):
        """Sec. V-A: algorithm choice changes performance measurably."""
        op = self._qkv()
        from dataclasses import replace

        base = default_config(op)
        effs = {
            contraction_efficiency(op, replace(base, algorithm=a), ENV).compute
            for a in range(NUM_GEMM_ALGORITHMS)
        }
        assert len(effs) > 1
        spread = max(effs) / min(effs)
        assert 1.0 < spread < 1.25  # paper: heuristic up to 14.24% off best

    def test_heuristic_vs_best_algorithm(self):
        shape = GemmShape(m=4096, n=1024, k=1024, batch=1, trans_a=False, trans_b=False)
        h = heuristic_algorithm(shape)
        b = best_algorithm(shape)
        assert 0 <= h < NUM_GEMM_ALGORITHMS
        assert 0 <= b < NUM_GEMM_ALGORITHMS


class TestKernelEfficiency:
    def _bias(self):
        x = TensorSpec("qq", ("p", "h", "b", "j"))
        return bias_spec("aib", x, ("p", "h"), "out")

    def test_vectorized_beats_strided(self):
        op = self._bias()
        configs = list(kernel_configs(op, ENV, cap=None))
        effs = [kernel_efficiency(op, c, ENV).memory for c in configs]
        assert max(effs) > 0.8
        assert min(effs) < 0.1  # Fig. 5's catastrophic long tails

    def test_contraction_rejected(self):
        op = contraction_spec("mm", "ab,bc->ac", ("x", "y"), "z")
        with pytest.raises(ValueError):
            kernel_efficiency(op, default_config(op), ENV)

    def test_warp_reduce_register_bonus(self):
        """Sec. V-B: matching reduce and vector dims saves registers.

        The per-config jitter (~±10%) swamps the bonus on any single
        configuration, so compare means over many layouts.
        """
        import statistics

        x = TensorSpec("beta", ("h", "b", "j", "k"))
        op = softmax_spec("sm", x, "alpha", axis_dim="k")
        from dataclasses import replace

        same, diff = [], []
        for cfg in kernel_configs(op, ENV, cap=300):
            if cfg.vector_dim != "k":
                continue
            c_same = replace(cfg, warp_reduce_dim="k")
            c_diff = replace(cfg, warp_reduce_dim=None)
            same.append(kernel_efficiency(op, c_same, ENV).memory)
            diff.append(kernel_efficiency(op, c_diff, ENV).memory)
        assert statistics.mean(same) > statistics.mean(diff)

    def test_efficiency_bounds(self):
        op = self._bias()
        for c in kernel_configs(op, ENV, cap=200):
            eff = kernel_efficiency(op, c, ENV)
            assert 0.0 < eff.memory <= 0.95
            assert 0.0 < eff.compute <= 1.0


class TestCostModel:
    def test_memory_bound_bias_near_bandwidth(self):
        """Fused AIB-like bias: Table III shows ~66-90 us for 50 MB."""
        x = TensorSpec("qq", ("p", "h", "b", "j"))
        op = bias_spec("bias", x, ("p", "h"), "out")
        cm = CostModel(V100)
        best = min(
            (cm.time_op(op, c, ENV).total_us for c in kernel_configs(op, ENV, cap=None)),
        )
        assert 15 < best < 45  # one tensor (1/3 of AIB) at high bandwidth

    def test_contraction_compute_bound(self):
        cm = CostModel(V100)
        op = contraction_spec("lin", "ui,ibj->ubj", ("w", "x"), "y")
        kt = cm.time_op(op, default_config(op), ENV)
        assert kt.bound == "compute"

    def test_transpose_time_scales_with_bytes(self):
        cm = CostModel(V100)
        small = TensorSpec("s", ("p", "h"))
        big = TensorSpec("b", ("h", "b", "j", "k"))
        assert cm.time_transpose(big, ENV).total_us > cm.time_transpose(small, ENV).total_us

    def test_percent_of_peak_uses_class_peak(self):
        cm = CostModel(V100)
        op = contraction_spec("lin", "ui,ibj->ubj", ("w", "x"), "y")
        pct_tc = cm.percent_of_peak(op, 125e12, 1e6)  # 125 Tflop in 1 s
        assert pct_tc == pytest.approx(100.0)
        x = TensorSpec("x", ("i", "b", "j"))
        bop = bias_spec("b", x, ("i",), "y")
        pct_fp = cm.percent_of_peak(bop, 31.4e12, 1e6)
        assert pct_fp == pytest.approx(100.0)

    def test_a100_is_faster_for_same_op(self):
        op = contraction_spec("lin", "ui,ibj->ubj", ("w", "x"), "y")
        t_v100 = CostModel(V100).time_op(op, default_config(op), ENV).total_us
        t_a100 = CostModel(A100).time_op(op, default_config(op), ENV).total_us
        assert t_a100 < t_v100

    def test_extra_overhead_added(self):
        op = contraction_spec("lin", "ui,ibj->ubj", ("w", "x"), "y")
        cm = CostModel(V100)
        base = cm.time_op(op, default_config(op), ENV).total_us
        extra = cm.time_op(op, default_config(op), ENV, extra_overhead_us=7.0).total_us
        assert extra == pytest.approx(base + 7.0)


class TestMUE:
    def test_perfect_implementation_scores_100(self):
        # Q = D = 90 MB moved in exactly bytes/bandwidth seconds.
        q = 90e6
        t_us = 1e6 * q / V100.mem_bandwidth
        assert mue(q, q, t_us, V100) == pytest.approx(100.0)

    def test_redundant_movement_halves_score(self):
        q = 45e6
        d = 90e6
        t_us = 1e6 * d / V100.mem_bandwidth
        assert mue(q, d, t_us, V100) == pytest.approx(50.0)

    def test_d_below_q_rejected(self):
        with pytest.raises(ValueError):
            mue(100.0, 50.0, 1.0, V100)

    def test_op_mue_paper_example(self):
        """Input-bias kernel: paper reports MUE 78 at 66 us (Table III)."""
        x = TensorSpec("qkv_lin", ("c", "p", "h", "b", "j"))
        op = bias_spec("aib", x, ("p", "h"), "out")
        score = op_mue(op, 66.0, ENV, V100)
        assert 60 < score <= 100

    def test_score_capped_at_100(self):
        assert mue(1e9, 1e9, 0.001, V100) == 100.0
