"""Tests for the parallel graph-sweep scheduler.

Determinism (``jobs=1`` vs ``jobs=4`` byte-equal), structural dedup
(identically shaped contractions share one evaluation and one store
entry), cache-tier interplay, and job-count resolution.
"""

from __future__ import annotations

import pytest

import repro.engine.scheduler as sched_mod
from repro.engine import (
    clear_sweep_memo,
    get_sweep_store,
    resolve_jobs,
    set_default_jobs,
    set_sweep_store,
    sweep_graph,
    sweep_op,
)
from repro.engine.store import SweepStore
from repro.hardware.cost_model import CostModel
from repro.ir.dims import bert_large_dims
from repro.ir.graph import DataflowGraph
from repro.ir.tensor import TensorSpec
from repro.ops.contraction import contraction_spec
from repro.transformer.graph_builder import build_mha_graph

ENV = bert_large_dims()
COST = CostModel()
CAP = 60


@pytest.fixture(autouse=True)
def _isolate():
    clear_sweep_memo()
    old = get_sweep_store()
    set_sweep_store(None)
    set_default_jobs(None)
    yield
    set_sweep_store(old)
    set_default_jobs(None)
    clear_sweep_memo()


def _assert_sweeps_equal(a, b):
    assert set(a) == set(b)
    for name in a:
        assert a[name].num_configs == b[name].num_configs, name
        assert a[name].times_us() == b[name].times_us(), name
        for x, y in zip(a[name].measurements, b[name].measurements):
            assert x.config == y.config, name
            assert x.time == y.time, name


def _twin_contraction_graph() -> DataflowGraph:
    """Two structurally identical GEMMs under different op/tensor names."""
    g = DataflowGraph("twins")
    g.add_input(TensorSpec("w1", ("p", "i"), is_param=True))
    g.add_input(TensorSpec("x1", ("i", "b")))
    g.add_input(TensorSpec("w2", ("p", "i"), is_param=True))
    g.add_input(TensorSpec("x2", ("i", "b")))
    g.add_op(contraction_spec("layer1_mm", "pi,ib->pb", ("w1", "x1"), "y1"))
    g.add_op(contraction_spec("layer2_mm", "pi,ib->pb", ("w2", "x2"), "y2"))
    return g


class TestDeterminism:
    def test_jobs_1_vs_jobs_4_byte_equal(self, monkeypatch):
        # Force the pool despite the small cap: the point is byte-equality
        # of the parallel path, not its amortization threshold.
        monkeypatch.setattr(sched_mod, "_MIN_PARALLEL_CONFIGS", 0)
        g = build_mha_graph(qkv_fusion="unfused", include_backward=False)
        serial = sweep_graph(g, ENV, COST, cap=CAP, jobs=1)
        clear_sweep_memo()
        parallel = sweep_graph(g, ENV, COST, cap=CAP, jobs=4)
        _assert_sweeps_equal(serial, parallel)

    def test_scheduler_equals_per_op_serial_path(self, monkeypatch):
        monkeypatch.setattr(sched_mod, "_MIN_PARALLEL_CONFIGS", 0)
        g = build_mha_graph(qkv_fusion="unfused", include_backward=False)
        scheduled = sweep_graph(g, ENV, COST, cap=CAP, jobs=2)
        cold = {
            op.name: sweep_op(op, ENV, COST, cap=CAP, memo=False)
            for op in g.ops
            if not op.is_view
        }
        _assert_sweeps_equal(scheduled, cold)

    def test_memo_false_matches_memoized_results(self):
        g = build_mha_graph(qkv_fusion="unfused", include_backward=False)
        _assert_sweeps_equal(
            sweep_graph(g, ENV, COST, cap=CAP, memo=False),
            sweep_graph(g, ENV, COST, cap=CAP),
        )

    def test_results_keyed_in_graph_order(self):
        g = build_mha_graph(qkv_fusion="unfused", include_backward=False)
        sweeps = sweep_graph(g, ENV, COST, cap=CAP)
        expected = [op.name for op in g.ops if not op.is_view]
        assert list(sweeps) == expected


class TestDedup:
    def test_structural_twins_share_one_store_entry(self, tmp_path):
        g = _twin_contraction_graph()
        store = SweepStore(tmp_path)
        sweeps = sweep_graph(g, ENV, COST, cap=CAP, store=store)
        assert store.stats()["entries"] == 1  # one evaluation for two ops
        assert len(sweeps) == 2

    def test_deduped_sweeps_match_independent_cold_sweeps(self):
        g = _twin_contraction_graph()
        deduped = sweep_graph(g, ENV, COST, cap=CAP)
        cold = {
            op.name: sweep_op(op, ENV, COST, cap=CAP, memo=False)
            for op in g.ops
        }
        _assert_sweeps_equal(deduped, cold)

    def test_dedup_preserves_per_op_config_names(self):
        sweeps = sweep_graph(_twin_contraction_graph(), ENV, COST, cap=CAP)
        assert sweeps["layer1_mm"].best.config.op_name == "layer1_mm"
        assert sweeps["layer2_mm"].best.config.op_name == "layer2_mm"
        assert (
            sweeps["layer1_mm"].best.total_us == sweeps["layer2_mm"].best.total_us
        )


class TestCacheTiers:
    def test_second_call_hits_the_memo(self):
        g = build_mha_graph(qkv_fusion="unfused", include_backward=False)
        first = sweep_graph(g, ENV, COST, cap=CAP)
        second = sweep_graph(g, ENV, COST, cap=CAP)
        for name in first:
            assert first[name] is second[name]

    def test_warm_store_serves_a_cold_process(self, tmp_path):
        g = build_mha_graph(qkv_fusion="unfused", include_backward=False)
        store = SweepStore(tmp_path)
        first = sweep_graph(g, ENV, COST, cap=CAP, store=store)
        saves = store.stats()["saves"]
        assert saves > 0
        clear_sweep_memo()  # new-process simulation
        second = sweep_graph(g, ENV, COST, cap=CAP, store=store)
        assert store.stats()["saves"] == saves  # nothing recomputed
        assert store.stats()["hits"] >= saves
        _assert_sweeps_equal(first, second)

    def test_parallel_cold_run_populates_the_store(self, tmp_path, monkeypatch):
        monkeypatch.setattr(sched_mod, "_MIN_PARALLEL_CONFIGS", 0)
        g = build_mha_graph(qkv_fusion="unfused", include_backward=False)
        store = SweepStore(tmp_path)
        sweep_graph(g, ENV, COST, cap=CAP, jobs=2, store=store)
        n_ops = sum(1 for op in g.ops if not op.is_view)
        assert store.stats()["entries"] == n_ops

    def test_disable_store_sentinel_forces_store_free(self, tmp_path):
        store = SweepStore(tmp_path)
        set_sweep_store(store)
        g = build_mha_graph(qkv_fusion="unfused", include_backward=False)
        sweeps = sweep_graph(g, ENV, COST, cap=CAP, store=sched_mod.DISABLE_STORE)
        assert len(sweeps) > 0
        assert store.stats()["saves"] == 0  # active store untouched

    def test_small_cold_work_stays_serial_even_with_jobs(self, monkeypatch):
        # Below the amortization threshold a pool must never spin up.
        def _boom(*a, **k):
            raise AssertionError("process pool spawned for trivial work")

        monkeypatch.setattr(sched_mod, "ProcessPoolExecutor", _boom)
        g = build_mha_graph(qkv_fusion="unfused", include_backward=False)
        sweeps = sweep_graph(g, ENV, COST, cap=CAP, jobs=4)
        assert len(sweeps) > 0


class TestJobsResolution:
    def test_explicit_argument_wins(self):
        set_default_jobs(7)
        assert resolve_jobs(3) == 3

    def test_default_jobs_then_env(self, monkeypatch):
        monkeypatch.setenv(sched_mod.JOBS_ENV_VAR, "5")
        assert resolve_jobs(None) == 5
        set_default_jobs(2)
        assert resolve_jobs(None) == 2

    def test_serial_without_configuration(self, monkeypatch):
        monkeypatch.delenv(sched_mod.JOBS_ENV_VAR, raising=False)
        assert resolve_jobs(None) == 1

    def test_nonpositive_means_cpu_count(self):
        import os

        assert resolve_jobs(0) == (os.cpu_count() or 1)
        assert resolve_jobs(-1) == (os.cpu_count() or 1)


class TestSerialFallback:
    """Sandboxes without working process pools degrade to serial, warned."""

    def _reference(self, g):
        return {
            op.name: sweep_op(op, ENV, COST, cap=CAP, memo=False)
            for op in g.ops
            if not op.is_view
        }

    def test_pool_construction_oserror_falls_back_to_serial(self, monkeypatch):
        monkeypatch.setattr(sched_mod, "_MIN_PARALLEL_CONFIGS", 0)

        class _NoProcesses:
            def __init__(self, *args, **kwargs):
                raise OSError("[Errno 38] Function not implemented")

        monkeypatch.setattr(sched_mod, "ProcessPoolExecutor", _NoProcesses)
        g = build_mha_graph(qkv_fusion="unfused", include_backward=False)
        with pytest.warns(RuntimeWarning, match="falling back to serial"):
            sweeps = sweep_graph(g, ENV, COST, cap=CAP, jobs=4)
        _assert_sweeps_equal(sweeps, self._reference(g))

    def test_broken_pool_mid_flight_falls_back_to_serial(self, monkeypatch):
        from concurrent.futures.process import BrokenProcessPool

        monkeypatch.setattr(sched_mod, "_MIN_PARALLEL_CONFIGS", 0)

        class _DiesMidFlight:
            def __init__(self, *args, **kwargs):
                pass

            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

            def map(self, fn, args):
                raise BrokenProcessPool("a child process terminated abruptly")

        monkeypatch.setattr(sched_mod, "ProcessPoolExecutor", _DiesMidFlight)
        g = build_mha_graph(qkv_fusion="unfused", include_backward=False)
        with pytest.warns(RuntimeWarning, match="process pool unavailable"):
            sweeps = sweep_graph(g, ENV, COST, cap=CAP, jobs=2)
        _assert_sweeps_equal(sweeps, self._reference(g))

    def test_fallback_still_populates_the_store(self, tmp_path, monkeypatch):
        monkeypatch.setattr(sched_mod, "_MIN_PARALLEL_CONFIGS", 0)

        class _NoProcesses:
            def __init__(self, *args, **kwargs):
                raise OSError("no process pools here")

        monkeypatch.setattr(sched_mod, "ProcessPoolExecutor", _NoProcesses)
        g = build_mha_graph(qkv_fusion="unfused", include_backward=False)
        store = SweepStore(tmp_path)
        with pytest.warns(RuntimeWarning):
            sweep_graph(g, ENV, COST, cap=CAP, jobs=2, store=store)
        n_ops = sum(1 for op in g.ops if not op.is_view)
        assert store.stats()["entries"] == n_ops

    def test_serial_jobs_never_touch_the_pool(self, monkeypatch):
        monkeypatch.setattr(sched_mod, "_MIN_PARALLEL_CONFIGS", 0)

        def _boom(*args, **kwargs):
            raise AssertionError("jobs=1 must not construct a pool")

        monkeypatch.setattr(sched_mod, "ProcessPoolExecutor", _boom)
        g = build_mha_graph(qkv_fusion="unfused", include_backward=False)
        sweeps = sweep_graph(g, ENV, COST, cap=CAP, jobs=1)
        assert len(sweeps) > 0
