"""Tests for chain extraction, SSSP, and global configuration selection."""

import numpy as np
import pytest

from repro.autotuner.tuner import sweep_graph
from repro.configsel.chain import ChainError, primary_chain, project_layout
from repro.configsel.selector import (
    build_chain_matrices,
    select_configurations,
)
from repro.configsel.sssp import (
    ConfigGraph,
    SSSPError,
    shortest_path,
    shortest_path_layered,
    shortest_path_networkx,
)
from repro.fusion.encoder_kernels import apply_paper_fusion
from repro.hardware.cost_model import CostModel
from repro.ir.dims import bert_large_dims
from repro.ir.tensor import TensorSpec
from repro.layouts.layout import Layout
from repro.transformer.graph_builder import build_encoder_graph, build_mha_graph

ENV = bert_large_dims()
COST = CostModel()


@pytest.fixture(scope="module")
def fused_encoder():
    return apply_paper_fusion(build_encoder_graph(qkv_fusion="qkv"), ENV)


@pytest.fixture(scope="module")
def encoder_sweeps(fused_encoder):
    return sweep_graph(fused_encoder, ENV, COST, cap=400)


@pytest.fixture(scope="module")
def selection(fused_encoder, encoder_sweeps):
    return select_configurations(
        fused_encoder, ENV, COST, sweeps=encoder_sweeps, cap=400
    )


class TestProjectLayout:
    def test_identity(self):
        a = TensorSpec("x", ("i", "b", "j"))
        b = TensorSpec("xk", ("i", "b", "k"))
        out = project_layout(Layout(("j", "b", "i")), a, b)
        assert out == Layout(("k", "b", "i"))

    def test_drop_stacking_dim(self):
        base = TensorSpec("qkv", ("c", "p", "h", "b", "j"))
        view = TensorSpec("qq", ("p", "h", "b", "j"))
        out = project_layout(Layout(("c", "b", "j", "p", "h")), base, view)
        assert out == Layout(("b", "j", "p", "h"))

    def test_interleaved_stacking_dim_unprojectable(self):
        base = TensorSpec("qkv", ("c", "p", "h"))
        view = TensorSpec("qq", ("p", "h"))
        # c interleaved between payload dims: projection still drops it and
        # yields a valid permutation of (p, h).
        out = project_layout(Layout(("p", "c", "h")), base, view)
        assert out == Layout(("p", "h"))

    def test_rank_too_small(self):
        base = TensorSpec("q", ("p", "h"))
        view = TensorSpec("big", ("p", "h", "b"))
        assert project_layout(Layout(("p", "h")), base, view) is None


class TestPrimaryChain:
    def test_fused_encoder_chain(self, fused_encoder):
        chain = primary_chain(fused_encoder)
        names = [s.op_name for s in chain]
        assert names == [
            "qkv_proj", "AIB", "qkt", "SM", "gamma", "attn_out",
            "BDRLN1", "linear1", "BRD", "linear2", "BDRLN2",
        ]

    def test_unfused_encoder_chain_passes_through_all_stages(self):
        g = build_encoder_graph(qkv_fusion="unfused")
        names = [s.op_name for s in primary_chain(g)]
        assert names[0] == "q_proj"
        assert names[-1] == "ln2"
        assert "softmax" in names

    def test_mha_chain(self):
        g = apply_paper_fusion(build_mha_graph(qkv_fusion="qkv"), ENV)
        names = [s.op_name for s in primary_chain(g)]
        assert names[0] == "qkv_proj"
        assert names[-1] == "attn_out_bias" or "attn_out" in names

    def test_missing_source_raises(self, fused_encoder):
        with pytest.raises((ChainError, KeyError)):
            primary_chain(fused_encoder, source="nonexistent")

    def test_chain_tensors_connect(self, fused_encoder):
        chain = primary_chain(fused_encoder)
        for step in chain:
            op = fused_encoder.op(step.op_name)
            assert op.inputs[step.in_index].name == step.in_tensor
            assert op.outputs[step.out_index].name == step.out_tensor


class TestSSSP:
    def _diamond(self):
        g = ConfigGraph()
        g.add_edge("s", "a", 1.0)
        g.add_edge("s", "b", 5.0)
        g.add_edge("a", "t", 10.0)
        g.add_edge("b", "t", 1.0)
        return g

    def test_shortest_path_diamond(self):
        cost, path = shortest_path(self._diamond(), "s", "t")
        assert cost == 6.0
        assert path == ["s", "b", "t"]

    def test_matches_networkx(self):
        g = self._diamond()
        own, _ = shortest_path(g, "s", "t")
        nx, _ = shortest_path_networkx(g, "s", "t")
        assert own == pytest.approx(nx)

    def test_parallel_edges_keep_min(self):
        g = ConfigGraph()
        g.add_edge("s", "t", 5.0)
        g.add_edge("s", "t", 2.0)
        cost, _ = shortest_path(g, "s", "t")
        assert cost == 2.0

    def test_unreachable(self):
        g = ConfigGraph()
        g.add_edge("s", "a", 1.0)
        g.add_node("t")
        with pytest.raises(SSSPError, match="unreachable"):
            shortest_path(g, "s", "t")

    def test_cycle_detected(self):
        g = ConfigGraph()
        g.add_edge("a", "b", 1.0)
        g.add_edge("b", "a", 1.0)
        with pytest.raises(SSSPError, match="cycle"):
            shortest_path(g, "a", "b")

    def test_negative_weight_rejected(self):
        g = ConfigGraph()
        with pytest.raises(SSSPError):
            g.add_edge("a", "b", -1.0)

    def test_brute_force_agreement_on_layered_graph(self):
        """DAG relaxation equals exhaustive path enumeration."""
        import itertools
        import random

        rnd = random.Random(0)
        layers = [["s"], ["a0", "a1", "a2"], ["b0", "b1"], ["t"]]
        g = ConfigGraph()
        weights = {}
        for l1, l2 in zip(layers, layers[1:]):
            for u in l1:
                for v in l2:
                    w = rnd.uniform(1, 10)
                    g.add_edge(u, v, w)
                    weights[(u, v)] = w
        best = min(
            weights[("s", a)] + weights[(a, b)] + weights[(b, "t")]
            for a in layers[1]
            for b in layers[2]
        )
        cost, _ = shortest_path(g, "s", "t")
        assert cost == pytest.approx(best)


class TestLayeredSSSP:
    def test_diamond_equivalent(self):
        # Two parallel middle nodes: s -> {a: 1, b: 5} -> t {a: 10, b: 1}.
        layers = [np.array([[1.0, 5.0]]), np.array([[10.0], [1.0]])]
        cost, nodes = shortest_path_layered(layers)
        assert cost == 6.0
        assert nodes == [1, 0]  # b, then the target

    def test_matches_scalar_on_dense_layers(self):
        rng = np.random.default_rng(7)
        sizes = [1, 3, 4, 2, 1]
        layers = [
            rng.uniform(1, 10, size=(a, b)) for a, b in zip(sizes, sizes[1:])
        ]
        g = ConfigGraph()
        for k, m in enumerate(layers):
            for i in range(m.shape[0]):
                for j in range(m.shape[1]):
                    g.add_edge((k, i), (k + 1, j), float(m[i, j]))
        scost, spath = shortest_path(g, (0, 0), (len(sizes) - 1, 0))
        lcost, nodes = shortest_path_layered(layers)
        assert lcost == scost  # same sums, same association order
        assert [(k + 1, j) for k, j in enumerate(nodes)] == spath[1:]

    def test_tie_breaks_match_scalar(self):
        # Integer weights force exact ties; both sides must pick the same
        # (first-in-order) predecessor.
        rng = np.random.default_rng(11)
        sizes = [1, 4, 4, 4, 1]
        layers = [
            rng.integers(1, 3, size=(a, b)).astype(float)
            for a, b in zip(sizes, sizes[1:])
        ]
        g = ConfigGraph()
        for k, m in enumerate(layers):
            for i in range(m.shape[0]):
                for j in range(m.shape[1]):
                    g.add_edge((k, i), (k + 1, j), float(m[i, j]))
        scost, spath = shortest_path(g, (0, 0), (len(sizes) - 1, 0))
        lcost, nodes = shortest_path_layered(layers)
        assert lcost == scost
        assert [(k + 1, j) for k, j in enumerate(nodes)] == spath[1:]

    def test_unreachable(self):
        layers = [np.array([[np.inf, np.inf]]), np.array([[1.0], [1.0]])]
        with pytest.raises(SSSPError, match="unreachable"):
            shortest_path_layered(layers)

    def test_negative_weight_rejected(self):
        with pytest.raises(SSSPError, match="negative"):
            shortest_path_layered([np.array([[-1.0]])])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(SSSPError, match="chain"):
            shortest_path_layered([np.zeros((1, 2)), np.zeros((3, 1))])

    def test_source_and_target_must_be_singletons(self):
        with pytest.raises(SSSPError, match="source"):
            shortest_path_layered([np.zeros((2, 1))])
        with pytest.raises(SSSPError, match="target"):
            shortest_path_layered([np.zeros((1, 2))])


class TestFastPath:
    """The vectorized selection pipeline against the scalar reference."""

    def test_fast_matches_scalar_encoder(self, fused_encoder, encoder_sweeps):
        fast = select_configurations(
            fused_encoder, ENV, COST, sweeps=encoder_sweeps, cap=400, fast=True
        )
        scalar = select_configurations(
            fused_encoder, ENV, COST, sweeps=encoder_sweeps, cap=400, fast=False
        )
        assert fast.chain_cost_us == scalar.chain_cost_us
        assert fast.transposes == scalar.transposes
        assert fast.chosen == scalar.chosen
        assert fast == scalar

    def test_fast_matches_scalar_mha(self):
        g = apply_paper_fusion(build_mha_graph(qkv_fusion="qkv"), ENV)
        sweeps = sweep_graph(g, ENV, COST, cap=200)
        fast = select_configurations(g, ENV, COST, sweeps=sweeps, cap=200, fast=True)
        scalar = select_configurations(
            g, ENV, COST, sweeps=sweeps, cap=200, fast=False
        )
        assert fast == scalar

    def test_env_escape_hatch(self, fused_encoder, encoder_sweeps, monkeypatch):
        from repro.configsel.selector import FAST_ENV_VAR

        monkeypatch.setenv(FAST_ENV_VAR, "0")
        via_env = select_configurations(
            fused_encoder, ENV, COST, sweeps=encoder_sweeps, cap=400
        )
        monkeypatch.setenv(FAST_ENV_VAR, "1")
        via_fast = select_configurations(
            fused_encoder, ENV, COST, sweeps=encoder_sweeps, cap=400
        )
        assert via_env == via_fast

    def test_chain_matrices_match_config_graph(self, fused_encoder, encoder_sweeps):
        """Every finite matrix cell is exactly one scalar-graph edge."""
        from repro.configsel.selector import _SOURCE, _TARGET, build_config_graph

        chain = primary_chain(fused_encoder)
        mats = build_chain_matrices(fused_encoder, chain, encoder_sweeps, ENV, COST)
        cg = build_config_graph(fused_encoder, chain, encoder_sweeps, ENV, COST)
        for idx in range(len(chain)):
            layouts = mats.boundaries[idx]
            m = mats.op_cost[idx]
            for i, lin in enumerate(layouts):
                for j in range(m.shape[1]):
                    src = ("dep", idx, lin.dims)
                    if idx + 1 < len(chain):
                        dst = ("t", idx + 1, mats.boundaries[idx + 1][j].dims)
                    else:
                        dst = _TARGET
                    edge = cg.edges.get((src, dst))
                    if np.isfinite(m[i, j]):
                        assert edge == m[i, j]
                    else:
                        assert edge is None
        # And the layered solve agrees with the scalar walk on cost.
        scalar_cost, _ = shortest_path(cg, _SOURCE, _TARGET)
        from repro.configsel.selector import _solve_chain_fast

        fast_cost, _, _ = _solve_chain_fast(mats, chain)
        assert fast_cost == scalar_cost


class TestSelection:
    def test_covers_every_kernel(self, fused_encoder, selection):
        kernel_ops = [op.name for op in fused_encoder.ops if not op.is_view]
        assert set(selection.chosen) == set(kernel_ops)

    def test_total_within_paper_band_of_per_op_best(self, encoder_sweeps, selection):
        """Sec. VI-A: within 4% of per-op best; our assembly stays under 15%."""
        best_sum = sum(sw.best.total_us for sw in encoder_sweeps.values())
        assert selection.total_us / best_sum < 1.15

    def test_sssp_cross_check(self, fused_encoder, encoder_sweeps):
        from repro.configsel.chain import primary_chain
        from repro.configsel.selector import _SOURCE, _TARGET, build_config_graph

        chain = primary_chain(fused_encoder)
        cg = build_config_graph(fused_encoder, chain, encoder_sweeps, ENV, COST)
        own, _ = shortest_path(cg, _SOURCE, _TARGET)
        nx, _ = shortest_path_networkx(cg, _SOURCE, _TARGET)
        assert own == pytest.approx(nx)

    def test_pinned_layouts_are_consistent(self, fused_encoder, selection):
        """Every chosen config honors the pinned layout of its operands,
        unless an explicit transpose was inserted for that tensor."""
        transposed = {(t.before_op, t.tensor) for t in selection.transposes}
        for name, m in selection.chosen.items():
            op = fused_encoder.op(name)
            for t, l in zip(op.inputs, m.config.input_layouts):
                pin = selection.pinned_layouts.get(t.name)
                if pin is not None and pin != l:
                    assert (name, t.name) in transposed

    def test_forward_faster_than_default_schedule(self, fused_encoder, selection):
        """Global selection beats running everything in default layouts."""
        from repro.layouts.configspace import default_config

        default_total = 0.0
        for op in fused_encoder.ops:
            if op.is_view:
                continue
            kt = COST.time_op(op, default_config(op), ENV)
            assert kt is not None
            default_total += kt.total_us
        assert selection.total_us < default_total

    def test_alternate_dims_selection_works(self):
        """Sec. VI-C: the recipe re-tunes for B=96, L=128."""
        from repro.ir.dims import bert_alternate_dims

        env2 = bert_alternate_dims()
        g = apply_paper_fusion(build_encoder_graph(qkv_fusion="qkv"), env2)
        sel = select_configurations(g, env2, COST, cap=200)
        assert sel.total_us > 0
        assert len(sel.chosen) == sum(1 for op in g.ops if not op.is_view)
