"""Hypothesis property tests: store round-trips are bit-identical.

Randomizes operators, dimension sizes and sampling knobs; every sweep is
saved to an on-disk store, reloaded, and compared against the scalar
``sweep_op_reference`` — same configs, same order, exact float equality on
every ``KernelTime`` component.  The digest is also checked to be stable
under recomputation and under irrelevant environment growth.
"""

from __future__ import annotations

import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autotuner.tuner import sweep_op_reference
from repro.engine.store import SweepStore, compute_payload, sweep_digest
from repro.engine.sweep import sweep_from_payload
from repro.hardware.cost_model import CostModel
from repro.ir.dims import DimEnv
from repro.ir.iteration_space import IterationSpace
from repro.ir.operator import OpClass, OpSpec
from repro.ir.tensor import TensorSpec
from repro.ops.contraction import contraction_spec

COST = CostModel()

_SIZES = st.sampled_from([1, 2, 3, 4, 7, 8, 15, 16, 24, 32, 40, 64])

_EINSUMS = [
    ("mk,kn->mn", ("m", "k"), ("k", "n"), ("m", "n")),
    ("bmk,bkn->bmn", ("b", "m", "k"), ("b", "k", "n"), ("b", "m", "n")),
    ("phb,pwb->hwb", ("p", "h", "b"), ("p", "w", "b"), ("h", "w", "b")),
]

# One store for the whole module: digests are content-addressed, so
# collisions across examples are exactly the sweeps that are identical.
_STORE_DIR = tempfile.TemporaryDirectory(prefix="repro-sweep-store-")
STORE = SweepStore(_STORE_DIR.name)


@st.composite
def kernel_ops(draw):
    """A random memory-bound op: elementwise or normalization w/ reduction."""
    dims = draw(
        st.lists(st.sampled_from("abcde"), min_size=2, max_size=3, unique=True)
    )
    dims = tuple(dims)
    env = DimEnv({d: draw(_SIZES) for d in dims})
    reduce_last = draw(st.booleans())
    if reduce_last and len(dims) > 1:
        ispace = IterationSpace(dims[:-1], (dims[-1],))
        op_class = OpClass.STAT_NORMALIZATION
    else:
        ispace = IterationSpace(dims)
        op_class = OpClass.ELEMENTWISE
    inputs = [TensorSpec("x", dims)]
    if draw(st.integers(min_value=0, max_value=1)):
        inputs.append(TensorSpec("s", (dims[0],)))
    op = OpSpec(
        name="k",
        op_class=op_class,
        inputs=tuple(inputs),
        outputs=(TensorSpec("y", dims),),
        ispace=ispace,
        flop_per_point=draw(st.sampled_from([0.0, 1.0, 2.0])),
    )
    cap = draw(st.sampled_from([None, 5, 17, 50]))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    return op, env, cap, seed


@st.composite
def contraction_ops(draw):
    einsum, da, db, dc = draw(st.sampled_from(_EINSUMS))
    all_dims = sorted(set(da) | set(db) | set(dc))
    env = DimEnv({d: draw(_SIZES) for d in all_dims})
    a = TensorSpec("a", da)
    b = TensorSpec("b", db)
    op = contraction_spec("c", einsum, (a.name, b.name), "y")
    return op, env


def _round_trip(op, env, *, cap, seed):
    digest = sweep_digest(op, env, COST.gpu, cap=cap, seed=seed)
    if STORE.load(digest) is None:
        STORE.save(digest, compute_payload(op, env, COST.gpu, cap=cap, seed=seed))
    return sweep_from_payload(op, STORE.load(digest)), digest


def _assert_bit_identical(ref, loaded):
    assert loaded.num_configs == ref.num_configs
    assert loaded.times_us() == [m.total_us for m in ref.measurements]
    for a, b in zip(ref.measurements, loaded.measurements):
        assert a.config == b.config
        assert a.time.compute_us == b.time.compute_us
        assert a.time.memory_us == b.time.memory_us
        assert a.time.launch_us == b.time.launch_us


@settings(max_examples=25, deadline=None)
@given(kernel_ops())
def test_kernel_store_round_trip_bit_identical(params):
    op, env, cap, seed = params
    ref = sweep_op_reference(op, env, COST, cap=cap, seed=seed)
    loaded, digest = _round_trip(op, env, cap=cap, seed=seed)
    _assert_bit_identical(ref, loaded)
    # The digest is a pure function of content.
    assert digest == sweep_digest(op, env, COST.gpu, cap=cap, seed=seed)


@settings(max_examples=15, deadline=None)
@given(contraction_ops())
def test_contraction_store_round_trip_bit_identical(params):
    op, env = params
    ref = sweep_op_reference(op, env, COST)
    loaded, digest = _round_trip(op, env, cap=2000, seed=0x5EED)
    _assert_bit_identical(ref, loaded)
    # Irrelevant dimensions don't perturb the digest.
    grown = DimEnv({**env.sizes, "zq": 9})
    assert sweep_digest(op, grown, COST.gpu, cap=2000, seed=0x5EED) == digest
