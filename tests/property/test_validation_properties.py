"""Hypothesis property tests: mutations vs. the validator matrix.

The framing invariant of the validation framework: *any* single mutation
of a registered schedule entry is caught by exactly the validator that
owns that layer — a cost edit never surfaces as a structural finding,
layout tampering never as a cost finding, version drift never as either —
and an untouched entry always passes.  Randomizes which field is mutated,
by how much, and where, over one real registered entry.
"""

from __future__ import annotations

import copy

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.configsel.selector import select_configurations
from repro.engine import clear_sweep_memo
from repro.fusion import apply_paper_fusion
from repro.hardware.cost_model import COST_MODEL_VERSION, CostModel
from repro.ir.dims import DimEnv, bert_large_dims
from repro.registry import ScheduleEntry, build_entry, schedule_digest
from repro.transformer.graph_builder import build_mha_graph
from repro.validation import Severity, ValidationContext, validate_entry

ENV = bert_large_dims()
COST = CostModel()
CAP = 40


@pytest.fixture(scope="module")
def seeded():
    """One clean registered entry plus the mutation targets it offers."""
    clear_sweep_memo()
    graph = apply_paper_fusion(
        build_mha_graph(qkv_fusion="qkv", include_backward=False), ENV
    )
    sel = select_configurations(graph, ENV, COST, cap=CAP)
    entry = build_entry(graph, ENV, COST, sel, cap=CAP)
    clear_sweep_memo()

    ctx = ValidationContext(entry)
    # Layouts each tensor is actually accessed in, as structural sees them.
    realized: dict[str, set[tuple[str, ...]]] = {}
    for name, m in ctx.chosen.items():
        op = ctx.graph.op(name)
        for t, layout in zip(
            tuple(op.inputs) + tuple(op.outputs),
            tuple(m.config.input_layouts) + tuple(m.config.output_layouts),
        ):
            realized.setdefault(t.name, set()).add(layout.dims)
    # Pins whose reversal is provably a fresh, unrealized layout: reversing
    # them must trip pin-unrealized (and only structural findings).
    safe_pins = sorted(
        t
        for t, pin in ctx.pinned.items()
        if tuple(reversed(pin.dims)) != pin.dims
        and tuple(reversed(pin.dims)) not in realized.get(t, set())
        and pin.dims in realized.get(t, set())
    )
    assert safe_pins, "fixture graph must offer a reversible pin"
    assert entry.selection["transposes"], "fixture graph must insert a transpose"
    report = validate_entry(entry)
    assert report.ok, report.summary()
    return entry, safe_pins


def _mutations(entry: ScheduleEntry, safe_pins: list[str]):
    """Strategy over (expected validator, wire mutation) pairs."""
    n_chosen = len(entry.selection["chosen"])
    n_trans = len(entry.selection["transposes"])
    delta = st.floats(min_value=0.5, max_value=1e6, allow_nan=False)

    def cost_total(d):
        return "cost", lambda w: w["selection"].__setitem__(
            "total_us", w["selection"]["total_us"] + d
        )

    def cost_kernel(i, f, d):
        return "cost", lambda w: w["selection"]["chosen"][i].__setitem__(
            f, w["selection"]["chosen"][i][f] + d
        )

    def cost_transpose(i, d):
        return "cost", lambda w: w["selection"]["transposes"][i].__setitem__(
            "time_us", w["selection"]["transposes"][i]["time_us"] + d
        )

    def structural_pin(tensor):
        def flip(w):
            pins = w["selection"]["pinned_layouts"]
            pins[tensor] = list(reversed(pins[tensor]))

        return "structural", flip

    def structural_rename(i):
        return "structural", lambda w: w["selection"]["chosen"][i].__setitem__(
            "op", f"ghost-{i}"
        )

    def staleness_version(k):
        return "staleness", lambda w: w.__setitem__(
            "cost_model_version", COST_MODEL_VERSION + k
        )

    return st.one_of(
        st.builds(cost_total, delta),
        st.builds(
            cost_kernel,
            st.integers(0, n_chosen - 1),
            st.sampled_from(("compute_us", "memory_us", "launch_us")),
            delta,
        ),
        st.builds(cost_transpose, st.integers(0, n_trans - 1), delta),
        st.builds(structural_pin, st.sampled_from(safe_pins)),
        st.builds(structural_rename, st.integers(0, n_chosen - 1)),
        st.builds(staleness_version, st.integers(1, 10_000)),
    )


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(data=st.data())
def test_single_mutation_caught_by_exactly_the_right_validator(seeded, data):
    entry, safe_pins = seeded
    expected, mutate = data.draw(_mutations(entry, safe_pins))
    wire = copy.deepcopy(entry.to_wire())
    mutate(wire)
    mutated = ScheduleEntry.from_wire(wire)

    report = validate_entry(mutated)
    assert not report.ok, (expected, report.summary())
    owners = {i.validator for i in report.errors()}
    assert owners == {expected}, (expected, report.summary())
    # The cost validator's deliberate skip under version drift is an INFO,
    # never an error — drift must not be double-reported as tampering.
    if expected == "staleness":
        cost_codes = [i.code for i in report.by_validator("cost")]
        assert cost_codes in ([], ["recompute-skipped"])
        assert all(
            i.severity is Severity.INFO for i in report.by_validator("cost")
        )


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(_=st.integers(0, 3))
def test_untouched_entry_always_passes(seeded, _):
    """Serialization round trips never manufacture a finding."""
    entry, _pins = seeded
    round_tripped = ScheduleEntry.from_bytes(entry.to_bytes())
    report = validate_entry(round_tripped)
    assert report.ok, report.summary()
    assert report.errors() == []


@settings(max_examples=30, deadline=None)
@given(data=st.data())
def test_digest_invariant_under_env_ordering(data):
    """The content digest canonicalizes: dim-size insertion order and
    extra unused dims never split the address space."""
    graph = build_mha_graph(qkv_fusion="qkv", include_backward=False)
    base = schedule_digest(graph, ENV, COST.gpu, cap=CAP, seed=3)
    items = data.draw(st.permutations(sorted(ENV.items())))
    shuffled = DimEnv(dict(items))
    assert schedule_digest(graph, shuffled, COST.gpu, cap=CAP, seed=3) == base
    extra = dict(items)
    extra[data.draw(st.sampled_from(("zz_unused", "qq_unused")))] = data.draw(
        st.integers(1, 4096)
    )
    assert schedule_digest(graph, DimEnv(extra), COST.gpu, cap=CAP, seed=3) == base
