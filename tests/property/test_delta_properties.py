"""Hypothesis property tests: delta re-sweeps are bit-identical to cold.

Randomizes operators, base dimension sizes and *perturbed* sizes; the base
sweep is saved to a store, the perturbed problem is resolved through
:func:`delta_payload_from_store` (reusing the stored structural skeleton),
and the result is compared against a cold scalar ``sweep_op_reference``
sweep at the perturbed sizes — same configs, same order, exact float
equality on every ``KernelTime`` component.  This is the acceptance
property of the delta tier: structural reuse must never change a single
bit of the answer.
"""

from __future__ import annotations

import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autotuner.tuner import sweep_op_reference
from repro.engine.store import (
    SweepStore,
    compute_payload,
    structural_sweep_digest,
    sweep_digest,
)
from repro.engine.sweep import delta_payload_from_store, sweep_from_payload
from repro.hardware.cost_model import CostModel
from repro.ir.dims import DimEnv
from repro.ir.iteration_space import IterationSpace
from repro.ir.operator import OpClass, OpSpec
from repro.ir.tensor import TensorSpec
from repro.ops.contraction import contraction_spec

COST = CostModel()

_SIZES = st.sampled_from([1, 2, 3, 4, 7, 8, 15, 16, 24, 32, 40, 64, 96, 513])

_EINSUMS = [
    ("mk,kn->mn", ("m", "k"), ("k", "n"), ("m", "n")),
    ("bmk,bkn->bmn", ("b", "m", "k"), ("b", "k", "n"), ("b", "m", "n")),
    ("phb,pwb->hwb", ("p", "h", "b"), ("p", "w", "b"), ("h", "w", "b")),
]

# One store for the whole module: structurally identical examples share
# their skeleton entries exactly as a long-lived daemon's store would.
_STORE_DIR = tempfile.TemporaryDirectory(prefix="repro-delta-store-")
STORE = SweepStore(_STORE_DIR.name)


def _perturbed(draw, env: DimEnv) -> DimEnv:
    """A same-named environment with at least one size changed."""
    sizes = {d: draw(_SIZES) for d in env}
    if sizes == dict(env):
        first = next(iter(sizes))
        sizes[first] += 1
    return DimEnv(sizes)


@st.composite
def kernel_cases(draw):
    """A random memory-bound op with base and perturbed sizes."""
    dims = draw(
        st.lists(st.sampled_from("abcde"), min_size=2, max_size=3, unique=True)
    )
    dims = tuple(dims)
    env = DimEnv({d: draw(_SIZES) for d in dims})
    reduce_last = draw(st.booleans())
    if reduce_last and len(dims) > 1:
        ispace = IterationSpace(dims[:-1], (dims[-1],))
        op_class = OpClass.STAT_NORMALIZATION
    else:
        ispace = IterationSpace(dims)
        op_class = OpClass.ELEMENTWISE
    inputs = [TensorSpec("x", dims)]
    if draw(st.integers(min_value=0, max_value=1)):
        inputs.append(TensorSpec("s", (dims[0],)))
    op = OpSpec(
        name="k",
        op_class=op_class,
        inputs=tuple(inputs),
        outputs=(TensorSpec("y", dims),),
        ispace=ispace,
        flop_per_point=draw(st.sampled_from([0.0, 1.0, 2.0])),
    )
    cap = draw(st.sampled_from([None, 5, 17, 50]))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    return op, env, _perturbed(draw, env), cap, seed


@st.composite
def contraction_cases(draw):
    einsum, da, db, dc = draw(st.sampled_from(_EINSUMS))
    all_dims = sorted(set(da) | set(db) | set(dc))
    env = DimEnv({d: draw(_SIZES) for d in all_dims})
    a = TensorSpec("a", da)
    b = TensorSpec("b", db)
    op = contraction_spec("c", einsum, (a.name, b.name), "y")
    return op, env, _perturbed(draw, env)


def _warm_base(op, env, *, cap, seed) -> None:
    digest = sweep_digest(op, env, COST.gpu, cap=cap, seed=seed)
    if digest not in STORE:
        STORE.save(digest, compute_payload(op, env, COST.gpu, cap=cap, seed=seed))


def _assert_bit_identical(ref, loaded):
    assert loaded.num_configs == ref.num_configs
    assert loaded.times_us() == [m.total_us for m in ref.measurements]
    for a, b in zip(ref.measurements, loaded.measurements):
        assert a.config == b.config
        assert a.time.compute_us == b.time.compute_us
        assert a.time.memory_us == b.time.memory_us
        assert a.time.launch_us == b.time.launch_us


@settings(max_examples=25, deadline=None)
@given(kernel_cases())
def test_kernel_delta_resweep_bit_identical_to_cold(params):
    op, base, perturbed, cap, seed = params
    _warm_base(op, base, cap=cap, seed=seed)
    delta = delta_payload_from_store(
        op, perturbed, COST.gpu, cap=cap, seed=seed, store=STORE
    )
    same_structure = structural_sweep_digest(
        op, base, COST.gpu, cap=cap, seed=seed
    ) == structural_sweep_digest(op, perturbed, COST.gpu, cap=cap, seed=seed)
    if not same_structure:
        # Size changes may flip whether ``cap`` binds; then the sampled
        # rows differ and the delta path must refuse, not approximate.
        assert delta is None
        return
    assert delta is not None
    _assert_bit_identical(
        sweep_op_reference(op, perturbed, COST, cap=cap, seed=seed),
        sweep_from_payload(op, delta),
    )
    # The rebuilt payload still names the shared structural key (digests
    # are stamped at save time, under the perturbed problem's exact key).
    assert delta["structural"] == structural_sweep_digest(
        op, perturbed, COST.gpu, cap=cap, seed=seed
    )


@settings(max_examples=15, deadline=None)
@given(contraction_cases())
def test_contraction_delta_resweep_bit_identical_to_cold(params):
    op, base, perturbed = params
    _warm_base(op, base, cap=2000, seed=0x5EED)
    delta = delta_payload_from_store(
        op, perturbed, COST.gpu, cap=2000, seed=0x5EED, store=STORE
    )
    # Contraction sweeps are exhaustive (cap/seed-free), so any same-shape
    # problem is a structural twin: the delta path must always engage.
    assert delta is not None
    _assert_bit_identical(
        sweep_op_reference(op, perturbed, COST),
        sweep_from_payload(op, delta),
    )
