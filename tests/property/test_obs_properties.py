"""Hypothesis property tests: concurrent metric recording never loses counts.

The daemon's handler threads race into the same ``Counter``/``Gauge``/
``Histogram`` children constantly; the whole point of the per-metric lock
is that a scrape always sees exactly the recorded totals, no matter how
the increments interleave.  These tests drive randomized concurrent
workloads through real threads and assert exact conservation — counts in
equals counts rendered, for the JSON values, the Prometheus text, and the
trace ring alike.
"""

from __future__ import annotations

import threading

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer

_PER_THREAD = st.lists(st.integers(1, 50), min_size=1, max_size=8)


def _run_threads(workers) -> None:
    threads = [threading.Thread(target=fn) for fn in workers]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


@settings(deadline=None, max_examples=25)
@given(plan=_PER_THREAD)
def test_concurrent_counter_conserves_every_increment(plan):
    reg = MetricsRegistry()
    counter = reg.counter("hits_total", "hits", ("tier",))

    def worker(n: int):
        def run():
            for i in range(n):
                counter.inc(tier="l1" if i % 2 else "l2")
        return run

    _run_threads([worker(n) for n in plan])
    total = sum(plan)
    assert counter.value(tier="l1") + counter.value(tier="l2") == total
    rendered = {
        line.rsplit(" ", 1)[0]: int(line.rsplit(" ", 1)[1])
        for line in reg.render().splitlines()
        if not line.startswith("#")
    }
    assert (
        rendered.get('hits_total{tier="l1"}', 0)
        + rendered.get('hits_total{tier="l2"}', 0)
        == total
    )


@settings(deadline=None, max_examples=25)
@given(plan=_PER_THREAD, delta=st.integers(1, 5))
def test_concurrent_gauge_inc_dec_balances_to_zero(plan, delta):
    reg = MetricsRegistry()
    gauge = reg.gauge("inflight", "in-flight")

    def worker(n: int):
        def run():
            for _ in range(n):
                gauge.inc(delta)
                gauge.dec(delta)
        return run

    _run_threads([worker(n) for n in plan])
    assert gauge.value() == 0


@settings(deadline=None, max_examples=25)
@given(
    plan=_PER_THREAD,
    values=st.lists(
        st.floats(0.0, 100.0, allow_nan=False), min_size=1, max_size=6
    ),
)
def test_concurrent_histogram_observations_all_land(plan, values):
    reg = MetricsRegistry()
    hist = reg.histogram("lat", "latency", buckets=(0.5, 5.0, 50.0))

    def worker(n: int):
        def run():
            for i in range(n):
                hist.observe(values[i % len(values)])
        return run

    _run_threads([worker(n) for n in plan])
    snap = hist.snapshot_child()
    total = sum(plan)
    assert snap["count"] == total
    assert snap["inf"] == total  # the cumulative +Inf bucket sees everything
    # Cumulative bucket counts are monotone and bounded by the total.
    assert snap["counts"] == sorted(snap["counts"])
    assert all(0 <= c <= total for c in snap["counts"])


@settings(deadline=None, max_examples=15)
@given(plan=st.lists(st.integers(1, 20), min_size=1, max_size=6))
def test_concurrent_span_finishes_all_reach_the_ring(plan):
    tracer = Tracer(buffer_spans=10_000)

    def worker(n: int):
        def run():
            for _ in range(n):
                with tracer.span("op", parent=None):
                    pass
        return run

    _run_threads([worker(n) for n in plan])
    assert len(tracer.finished()) == sum(plan)
