"""Hypothesis property tests: layered min-plus SSSP vs. the scalar walk.

Randomizes layered DAGs — layer widths, integer edge weights (integers
force exact distance ties), and missing edges — and checks that

* :func:`~repro.configsel.sssp.shortest_path_layered` and the scalar
  :func:`~repro.configsel.sssp.shortest_path` agree on the cost **exactly**
  (both associate the per-edge additions the same way) and decode the
  **same path** (argmin's first-minimizer rule equals the scalar decoder's
  first-in-edge rule when edges are inserted in row-major order);
* the decoded path is valid: its edges exist and re-summing them
  left-to-right reproduces the reported cost bit for bit;
* networkx's Dijkstra agrees on the cost;
* unreachable targets raise :class:`~repro.configsel.sssp.SSSPError` from
  both implementations.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.configsel.sssp import (
    ConfigGraph,
    SSSPError,
    shortest_path,
    shortest_path_layered,
    shortest_path_networkx,
)


@st.composite
def layered_dags(draw):
    """A random layered DAG as a list of (n_k, n_{k+1}) weight matrices."""
    widths = [1] + draw(
        st.lists(st.integers(min_value=1, max_value=4), min_size=1, max_size=4)
    ) + [1]
    layers = []
    for a, b in zip(widths, widths[1:]):
        weights = draw(
            st.lists(
                st.lists(
                    # Small integers make equal-cost paths common, which is
                    # exactly where tie-breaking must agree; None = no edge.
                    st.one_of(st.none(), st.integers(min_value=0, max_value=3)),
                    min_size=b,
                    max_size=b,
                ),
                min_size=a,
                max_size=a,
            )
        )
        layers.append(
            np.array(
                [[np.inf if w is None else float(w) for w in row] for row in weights]
            )
        )
    return layers


def _graph_from_layers(layers: list[np.ndarray]) -> ConfigGraph:
    """Expand the matrices into an explicit DAG, row-major edge order."""
    g = ConfigGraph()
    g.add_node((0, 0))
    g.add_node((len(layers), 0))
    for k, m in enumerate(layers):
        for i in range(m.shape[0]):
            for j in range(m.shape[1]):
                if np.isfinite(m[i, j]):
                    g.add_edge((k, i), (k + 1, j), float(m[i, j]))
    return g


def _path_cost(g: ConfigGraph, path: list) -> float:
    total = 0.0
    for u, v in zip(path, path[1:]):
        assert (u, v) in g.edges, f"path uses missing edge {u} -> {v}"
        total = total + g.edges[(u, v)]
    return total


@settings(max_examples=200, deadline=None)
@given(layered_dags())
def test_layered_matches_scalar_and_networkx(layers):
    g = _graph_from_layers(layers)
    source, target = (0, 0), (len(layers), 0)
    try:
        scalar_cost, scalar_path = shortest_path(g, source, target)
    except SSSPError:
        with pytest.raises(SSSPError):
            shortest_path_layered(layers)
        with pytest.raises(SSSPError):
            shortest_path_networkx(g, source, target)
        return
    layered_cost, nodes = shortest_path_layered(layers)
    layered_path = [source] + [(k + 1, j) for k, j in enumerate(nodes)]

    # Exact agreement: same sums in the same order, same tie-breaks.
    assert layered_cost == scalar_cost
    assert layered_path == scalar_path

    # The decoded path is real and re-sums to the reported cost.
    assert _path_cost(g, layered_path) == layered_cost
    assert _path_cost(g, scalar_path) == scalar_cost

    nx_cost, nx_path = shortest_path_networkx(g, source, target)
    assert nx_cost == pytest.approx(scalar_cost)
    assert _path_cost(g, nx_path) == pytest.approx(scalar_cost)
