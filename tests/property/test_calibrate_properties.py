"""Hypothesis property tests: calibration fitting is deterministic.

Two contracts the rollout machinery leans on:

* **Fitting is a pure function of the feedback corpus.**  Any shuffle,
  any duplication pattern, any noise profile — the same multiset of
  records always yields the byte-identical ``CandidateModel`` wire form,
  so two daemons fitting the same store propose the same version tag.
* **Default params are the historical constants.**  With
  ``EfficiencyParams()`` installed (or passed explicitly), every op the
  scalar reference sweep can cost is bit-for-bit what an implicit-params
  ``CostModel`` produces, and the served version stays 1 — calibration
  is invisible until a candidate is actually promoted.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.frameworks import framework_graph
from repro.baselines.policy import OURS
from repro.calibrate import table3_corpus
from repro.calibrate.fit import fit_candidate, score_params
from repro.hardware.cost_model import CostModel
from repro.hardware.params import (
    DEFAULT_PARAMS,
    DEFAULT_VERSION,
    EfficiencyParams,
    active_cost_model_version,
)
from repro.ir.dims import bert_large_dims
from repro.service.protocol import canonical_json_bytes

_CORPUS = table3_corpus(DEFAULT_VERSION)
_ENV = bert_large_dims(2, 128)


@st.composite
def _corpora(draw):
    """A shuffled, noise-perturbed subsample of the Table III corpus."""
    idx = draw(
        st.lists(
            st.integers(min_value=0, max_value=len(_CORPUS) - 1),
            min_size=8,
            max_size=48,
            unique=True,
        )
    )
    noise = draw(
        st.lists(
            st.floats(min_value=0.5, max_value=2.0),
            min_size=len(idx),
            max_size=len(idx),
        )
    )
    return [
        {**_CORPUS[i], "measured_us": _CORPUS[i]["measured_us"] * n}
        for i, n in zip(idx, noise)
    ]


@given(corpus=_corpora(), seed=st.randoms(use_true_random=False))
@settings(max_examples=20, deadline=None)
def test_fit_is_order_insensitive_and_byte_deterministic(corpus, seed):
    reference = canonical_json_bytes(fit_candidate(corpus).to_wire())
    shuffled = list(corpus)
    seed.shuffle(shuffled)
    assert canonical_json_bytes(fit_candidate(shuffled).to_wire()) == reference


@given(seed=st.randoms(use_true_random=False))
@settings(max_examples=10, deadline=None)
def test_score_is_order_insensitive(seed):
    corpus = list(_CORPUS)
    seed.shuffle(corpus)
    assert score_params(DEFAULT_PARAMS, corpus) == score_params(
        DEFAULT_PARAMS, _CORPUS
    )


def test_default_params_reproduce_the_reference_costs_bitwise():
    # The implicit-params model (what every historical sweep used) and an
    # explicitly-constructed default must agree exactly, op by op.
    assert EfficiencyParams() == DEFAULT_PARAMS
    assert active_cost_model_version() == DEFAULT_VERSION
    implicit = CostModel()
    explicit = CostModel(params=DEFAULT_PARAMS)
    graph = framework_graph(OURS, _ENV)
    costed = 0
    for op in graph.ops:
        if op.is_view:
            continue
        a = implicit.time_op(op, None, _ENV)
        b = explicit.time_op(op, None, _ENV)
        if a is None or b is None:
            assert a is b, op
            continue
        assert (a.compute_us, a.memory_us, a.launch_us) == (
            b.compute_us,
            b.memory_us,
            b.launch_us,
        ), op
        costed += 1
    assert costed > 0
