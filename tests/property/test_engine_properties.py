"""Hypothesis property tests: engine/reference bit-identity + invariants.

Randomizes operator shapes, dimension sizes and sampling knobs, and checks

* ``repro.engine`` sweeps are **bit-identical** to the scalar
  ``sweep_op_reference`` (same configs in the same order, same
  ``KernelTime`` components, exact float equality — no tolerances);
* ``SweepResult`` structural invariants hold on engine-built sweeps:
  measurements sorted ascending, ``quantile_us`` monotone in the quantile,
  ``spread >= 1``.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autotuner.tuner import sweep_op_reference
from repro.engine.sweep import sweep_op as engine_sweep_op
from repro.hardware.cost_model import CostModel
from repro.ir.dims import DimEnv
from repro.ir.iteration_space import IterationSpace
from repro.ir.operator import OpClass, OpSpec
from repro.ir.tensor import TensorSpec
from repro.ops.contraction import contraction_spec

COST = CostModel()

# Small-but-varied sizes; multiples of 8 appear so the 128-bit
# vectorization and tensor-core divisibility branches both get exercised.
_SIZES = st.sampled_from([1, 2, 3, 4, 7, 8, 15, 16, 24, 32, 40, 64])

#: Contraction shapes covering plain GEMM, batched GEMM and the paper's
#: rank-4 attention contractions (operand dims differ per einsum).
_EINSUMS = [
    ("mk,kn->mn", ("m", "k"), ("k", "n"), ("m", "n")),
    ("bmk,bkn->bmn", ("b", "m", "k"), ("b", "k", "n"), ("b", "m", "n")),
    ("phb,pwb->hwb", ("p", "h", "b"), ("p", "w", "b"), ("h", "w", "b")),
]


@st.composite
def kernel_ops(draw):
    """A random memory-bound op: elementwise or normalization w/ reduction."""
    dims = draw(
        st.lists(st.sampled_from("abcde"), min_size=2, max_size=3, unique=True)
    )
    dims = tuple(dims)
    env = DimEnv({d: draw(_SIZES) for d in dims})
    reduce_last = draw(st.booleans())
    if reduce_last and len(dims) > 1:
        ispace = IterationSpace(dims[:-1], (dims[-1],))
        op_class = OpClass.STAT_NORMALIZATION
    else:
        ispace = IterationSpace(dims)
        op_class = OpClass.ELEMENTWISE
    n_extra_inputs = draw(st.integers(min_value=0, max_value=1))
    inputs = [TensorSpec("x", dims)]
    if n_extra_inputs:
        # A broadcast (rank-1) side input, like a bias or per-dim scale.
        inputs.append(TensorSpec("s", (dims[0],)))
    op = OpSpec(
        name="k",
        op_class=op_class,
        inputs=tuple(inputs),
        outputs=(TensorSpec("y", dims),),
        ispace=ispace,
        flop_per_point=draw(st.sampled_from([0.0, 1.0, 2.0])),
    )
    cap = draw(st.sampled_from([None, 5, 17, 50]))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    return op, env, cap, seed


@st.composite
def contraction_ops(draw):
    einsum, da, db, dc = draw(st.sampled_from(_EINSUMS))
    all_dims = sorted(set(da) | set(db) | set(dc))
    env = DimEnv({d: draw(_SIZES) for d in all_dims})
    a = TensorSpec("a", da)
    b = TensorSpec("b", db)
    op = contraction_spec("c", einsum, (a.name, b.name), "y")
    return op, env


def _assert_bit_identical(ref, eng):
    assert eng.num_configs == ref.num_configs
    for a, b in zip(ref.measurements, eng.measurements):
        assert a.config == b.config
        # Exact float equality on every component — the bit-identity contract.
        assert a.time.compute_us == b.time.compute_us
        assert a.time.memory_us == b.time.memory_us
        assert a.time.launch_us == b.time.launch_us


def _assert_invariants(sweep):
    times = sweep.times_us()
    assert times == sorted(times)
    if times:
        qs = [sweep.quantile_us(q) for q in (0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0)]
        assert qs == sorted(qs)
        assert qs[0] == sweep.best.total_us
        assert qs[-1] == sweep.worst.total_us
        assert sweep.spread >= 1.0
    assert sweep.num_configs == len(sweep.measurements)


@settings(max_examples=30, deadline=None)
@given(kernel_ops())
def test_kernel_sweeps_bit_identical(params):
    op, env, cap, seed = params
    ref = sweep_op_reference(op, env, COST, cap=cap, seed=seed)
    eng = engine_sweep_op(op, env, COST, cap=cap, seed=seed, memo=False)
    _assert_bit_identical(ref, eng)
    _assert_invariants(eng)
    _assert_invariants(ref)


@settings(max_examples=20, deadline=None)
@given(contraction_ops())
def test_contraction_sweeps_bit_identical(params):
    op, env = params
    ref = sweep_op_reference(op, env, COST)
    eng = engine_sweep_op(op, env, COST, memo=False)
    _assert_bit_identical(ref, eng)
    _assert_invariants(eng)


@settings(max_examples=15, deadline=None)
@given(kernel_ops())
def test_memoized_sweep_is_shared_and_identical(params):
    op, env, cap, seed = params
    first = engine_sweep_op(op, env, COST, cap=cap, seed=seed)
    second = engine_sweep_op(op, env, COST, cap=cap, seed=seed)
    assert first is second  # process-level memo returns the same object
    _assert_bit_identical(sweep_op_reference(op, env, COST, cap=cap, seed=seed), first)
