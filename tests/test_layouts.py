"""Unit tests for layouts, GEMM mapping, and configuration spaces."""

import pytest

from repro.ir.dims import DimEnv, bert_large_dims
from repro.ir.tensor import TensorSpec
from repro.layouts.config import HEURISTIC_ALGORITHM, NUM_GEMM_ALGORITHMS, OpConfig
from repro.layouts.configspace import (
    contraction_configs,
    default_config,
    kernel_configs,
)
from repro.layouts.gemm_mapping import (
    classify_dims,
    default_gemm_shape,
    map_to_gemm,
)
from repro.layouts.layout import Layout, all_layouts, transpose_cost_bytes
from repro.ops.contraction import contraction_spec
from repro.ops.elementwise import bias_spec
from repro.ops.softmax import softmax_spec

ENV = bert_large_dims()


class TestLayout:
    def test_strides_row_major(self):
        env = DimEnv({"a": 2, "b": 3, "c": 4})
        l = Layout(("a", "b", "c"))
        assert l.strides(env) == {"c": 1, "b": 4, "a": 12}

    def test_contiguous_dim(self):
        assert Layout(("a", "b")).contiguous_dim == "b"

    def test_repeated_dims_rejected(self):
        with pytest.raises(ValueError):
            Layout(("a", "a"))

    def test_vectorizable(self):
        env = DimEnv({"a": 16, "b": 7})
        assert Layout(("b", "a")).is_vectorizable_along("a", env)
        assert not Layout(("a", "b")).is_vectorizable_along("a", env)  # not inner
        assert not Layout(("a", "b")).is_vectorizable_along("b", env)  # 7 % 8 != 0

    def test_permutation_from(self):
        a = Layout(("x", "y", "z"))
        b = Layout(("z", "x", "y"))
        perm = b.permutation_from(a)
        assert tuple(a.dims[i] for i in perm) == b.dims

    def test_all_layouts_count(self):
        assert len(list(all_layouts(("a", "b", "c")))) == 6

    def test_is_contiguous_group(self):
        l = Layout(("a", "b", "c", "d"))
        assert l.is_contiguous_group(("b", "c"))
        assert not l.is_contiguous_group(("c", "b"))  # order must match
        assert not l.is_contiguous_group(("a", "c"))

    def test_transpose_cost_is_two_passes(self):
        t = TensorSpec("x", ("i", "b", "j"))
        assert transpose_cost_bytes(t, ENV) == 2 * t.nbytes(ENV)


class TestDimRoles:
    def test_linear_layer_roles(self):
        roles = classify_dims("ui,ibj->ubj")
        assert roles.batch == ()
        assert set(roles.m) == {"u"} or set(roles.n) == {"u"}
        assert roles.k == ("i",)

    def test_batched_attention_roles(self):
        roles = classify_dims("phbk,phbj->hbjk")
        assert set(roles.batch) == {"h", "b"}
        assert roles.k == ("p",)
        assert set(roles.m) | set(roles.n) == {"j", "k"}

    def test_three_operand_rejected(self):
        with pytest.raises(ValueError):
            classify_dims("ab,bc,cd->ad")


class TestGemmMapping:
    def test_default_shapes_match_fig4_labels(self):
        """Fig. 4 tile labels for key contractions."""
        s = default_gemm_shape("cphi,ibj->cphbj", ENV).canonical()
        assert (s.m, s.n, s.k, s.batch) == (4096, 3072, 1024, 1)
        s = default_gemm_shape("phbk,phbj->hbjk", ENV).canonical()
        assert (s.m, s.n, s.k, s.batch) == (512, 512, 64, 128)
        s = default_gemm_shape("ui,ibj->ubj", ENV).canonical()
        assert (s.m, s.n, s.k, s.batch) == (4096, 4096, 1024, 1)
        s = default_gemm_shape("whbk,hbjk->whbj", ENV).canonical()
        assert (s.m, s.n, s.k, s.batch) == (512, 64, 512, 128)

    def test_canonical_swaps_to_m_ge_n(self):
        from repro.layouts.gemm_mapping import GemmShape

        s = GemmShape(m=10, n=20, k=5, batch=1, trans_a=False, trans_b=False)
        c = s.canonical()
        assert c.m == 20 and c.n == 10
        assert c.flops == s.flops

    def test_default_layouts_mappable(self):
        op = contraction_spec("lin", "ui,ibj->ubj", ("w", "x"), "y")
        shape = map_to_gemm(
            "ui,ibj->ubj",
            Layout(("u", "i")),
            Layout(("i", "b", "j")),
            Layout(("u", "b", "j")),
            ENV,
        )
        assert shape is not None

    def test_batch_dim_innermost_is_strided_batched(self):
        """Strided batched GEMM absorbs any block order, including an
        innermost batch dim (the batch stride is then 1)."""
        shape = map_to_gemm(
            "gab,gbc->gac",
            Layout(("g", "a", "b")),
            Layout(("g", "b", "c")),
            Layout(("a", "c", "g")),
            DimEnv({"g": 2, "a": 4, "b": 4, "c": 4}),
        )
        assert shape is not None
        assert shape.batch == 2

    def test_default_attention_layouts_mappable(self):
        """QKT's spec-order layouts (batch dims h,b in the middle) map."""
        shape = map_to_gemm(
            "phbk,phbj->hbjk",
            Layout(("p", "h", "b", "k")),
            Layout(("p", "h", "b", "j")),
            Layout(("h", "b", "j", "k")),
            ENV,
        )
        assert shape is not None
        assert shape.batch == 128

    def test_transposed_operand_detected(self):
        shape = map_to_gemm(
            "ab,bc->ac",
            Layout(("b", "a")),  # A stored K-major: transposed
            Layout(("b", "c")),
            Layout(("a", "c")),
            DimEnv({"a": 4, "b": 5, "c": 6}),
        )
        assert shape is not None
        assert shape.trans_a

    def test_interleaved_groups_not_mappable(self):
        # A's M and K dims interleaved -> not a strided 2-D matrix.
        shape = map_to_gemm(
            "amb,bc->amc",  # m dims a,m? -> dims a,m in A and C; b contracted
            Layout(("a", "b", "m")),
            Layout(("b", "c")),
            Layout(("a", "m", "c")),
            DimEnv({"a": 2, "m": 3, "b": 4, "c": 5}),
        )
        assert shape is None

    def test_flops(self):
        from repro.layouts.gemm_mapping import GemmShape

        s = GemmShape(m=2, n=3, k=4, batch=5, trans_a=False, trans_b=False)
        assert s.flops == 2 * 2 * 3 * 4 * 5


class TestOpConfig:
    def test_key_is_stable_and_unique(self):
        l = Layout(("a", "b"))
        c1 = OpConfig("op", (l,), (l,), vector_dim="b")
        c2 = OpConfig("op", (l,), (l,), vector_dim="a")
        assert c1.key() == c1.key()
        assert c1.key() != c2.key()

    def test_seed_deterministic(self):
        l = Layout(("a", "b"))
        c = OpConfig("op", (l,), (l,))
        assert c.seed() == c.seed()
        assert c.seed("x") != c.seed("y")

    def test_algorithm_range_checked(self):
        l = Layout(("a", "b"))
        with pytest.raises(ValueError):
            OpConfig("op", (l,), (l,), algorithm=NUM_GEMM_ALGORITHMS)
        OpConfig("op", (l,), (l,), algorithm=HEURISTIC_ALGORITHM)  # ok

    def test_layout_of(self):
        lin = Layout(("a", "b"))
        lout = Layout(("b", "a"))
        c = OpConfig("op", (lin,), (lout,))
        assert c.layout_of("x", ("x",), ("y",)) == lin
        assert c.layout_of("y", ("x",), ("y",)) == lout
        with pytest.raises(KeyError):
            c.layout_of("z", ("x",), ("y",))


class TestConfigSpaces:
    def test_contraction_space_feasible_and_bounded(self):
        op = contraction_spec("lin", "ui,ibj->ubj", ("w", "x"), "y")
        configs = list(contraction_configs(op, ENV))
        assert 0 < len(configs) < 2 * 2 * 6 * 6 * 8 * 2

    def test_kernel_space_cap(self):
        x = TensorSpec("qq", ("p", "h", "b", "j"))
        op = bias_spec("aib", x, ("p", "h"), "out")
        capped = list(kernel_configs(op, ENV, cap=50))
        assert len(capped) == 50
        assert len(set(c.key() for c in capped)) == 50  # all distinct

    def test_kernel_space_exhaustive_when_small(self):
        x = TensorSpec("x", ("a", "b"))
        op = bias_spec("b", x, ("a",), "y")
        env = DimEnv({"a": 4, "b": 8})
        configs = list(kernel_configs(op, env, cap=10_000))
        # x has 2 layouts, bias 1, out 2; vector dim 2 choices; no reduction.
        assert len(configs) == 2 * 2 * 2

    def test_cap_includes_default_point(self):
        x = TensorSpec("qq", ("p", "h", "b", "j"))
        op = bias_spec("aib", x, ("p", "h"), "out")
        first = next(iter(kernel_configs(op, ENV, cap=5)))
        assert first.input_layouts[0] == Layout(x.dims)

    def test_cap_deterministic(self):
        x = TensorSpec("qq", ("p", "h", "b", "j"))
        op = bias_spec("aib", x, ("p", "h"), "out")
        a = [c.key() for c in kernel_configs(op, ENV, cap=30, seed=1)]
        b = [c.key() for c in kernel_configs(op, ENV, cap=30, seed=1)]
        assert a == b

    def test_default_config_uses_spec_order(self):
        x = TensorSpec("beta", ("h", "b", "j", "k"))
        op = softmax_spec("sm", x, "alpha", axis_dim="k")
        cfg = default_config(op)
        assert cfg.input_layouts[0] == Layout(x.dims)
        assert cfg.warp_reduce_dim == "k"

    def test_wrong_class_dispatch_errors(self):
        op = contraction_spec("lin", "ui,ibj->ubj", ("w", "x"), "y")
        with pytest.raises(ValueError):
            list(kernel_configs(op, ENV))
        x = TensorSpec("x", ("a", "b"))
        bop = bias_spec("b", x, ("a",), "y")
        with pytest.raises(ValueError):
            list(contraction_configs(bop, ENV))
