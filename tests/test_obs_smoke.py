"""Obs smoke: one traced batch across a real 2-worker fleet, one tree.

The acceptance criterion of the tracing tentpole, end to end with real
daemons: a traced ``POST /v1/optimize_batch`` against a coordinator with
two worker subprocesses must export a **single connected** span tree —
client root, coordinator server span, per-job fan-out spans, and the
worker-side server/sweep spans (shipped via the ``traceparent`` header
and scraped from each worker's ring) whose attributes carry the resolve
tier and the store digest.  The same fleet must serve valid Prometheus
text on ``GET /metrics`` and the merged per-worker view on
``GET /v1/fleet_metrics``.
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro import obs
from repro.obs.export import to_chrome_trace, trace_tree
from repro.ir.dims import bert_large_dims
from repro.service.client import ServiceError, TuningClient

pytestmark = pytest.mark.slow

REPO = Path(__file__).resolve().parent.parent
ENV = bert_large_dims()
BATCH = dict(model="mha", include_backward=False, env=ENV, cap=60)


def _spawn(argv: list[str], *, store_dir: Path) -> tuple[subprocess.Popen, str]:
    """One traced fleet daemon; returns ``(process, base_url)``."""
    env = os.environ.copy()
    env["PYTHONPATH"] = str(REPO / "src")
    env["PYTHONUNBUFFERED"] = "1"
    env["REPRO_TRACE"] = "1"
    env.pop("REPRO_FAULT_SPEC", None)
    cmd = [
        sys.executable, "-m", "repro", "fleet", "serve",
        "--port", "0", "--sweep-store", str(store_dir), *argv,
    ]
    proc = subprocess.Popen(
        cmd, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=env,
    )
    banner = proc.stdout.readline()
    match = re.search(r"listening on (http://[\d.]+:\d+)", banner)
    assert match, f"no banner from {cmd}: {banner!r}"
    return proc, match.group(1)


@pytest.fixture
def traced_fleet(tmp_path):
    """A coordinator plus two workers, every daemon tracing."""
    procs: list[subprocess.Popen] = []
    try:
        coord, url = _spawn(
            ["--role", "coordinator"], store_dir=tmp_path / "coord-store"
        )
        procs.append(coord)
        for worker_id in ("w1", "w2"):
            proc, _ = _spawn(
                [
                    "--role", "worker",
                    "--coordinator-url", url,
                    "--worker-id", worker_id,
                ],
                store_dir=tmp_path / f"{worker_id}-store",
            )
            procs.append(proc)
        client = TuningClient(url)
        client.wait_until_ready(timeout=90.0, readiness=True)
        deadline = time.monotonic() + 90.0
        while time.monotonic() < deadline:
            try:
                counts = client.fleet_status()["counts"]
            except ServiceError:
                counts = {}
            if counts.get("ready", 0) >= 2:
                break
            time.sleep(0.2)
        else:
            raise AssertionError(f"fleet never became ready: {counts}")
        yield client
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)


def _poll(fn, timeout: float = 20.0):
    """Retry ``fn`` until it stops raising: a server span only reaches the
    ring *after* the response bytes go out, so an immediate scrape of
    ``/v1/trace`` or ``/metrics`` can miss the request that just returned."""
    deadline = time.monotonic() + timeout
    while True:
        try:
            return fn()
        except (AssertionError, ServiceError):
            if time.monotonic() > deadline:
                raise
            time.sleep(0.25)


def test_traced_batch_is_one_connected_tree(traced_fleet, tmp_path):
    client = traced_fleet
    obs.set_tracing(True)
    try:
        with obs.span("client.batch", service="test-client") as root:
            client.optimize_batch(**BATCH)
        local = obs.get_tracer().trace(root.trace_id)
    finally:
        obs.set_tracing(None)

    seen = {s["span_id"] for s in local}

    def connected_tree():
        served = client.trace(root.trace_id)
        merged = local + [
            s for s in served["spans"] if s["span_id"] not in seen
        ]
        tree = trace_tree(merged)
        assert tree["connected"] is True, (
            f"{tree['spans']} spans, roots="
            f"{[r['name'] for r in tree['roots']]}, orphans={tree['orphans']}"
        )
        return merged, tree

    spans, tree = _poll(connected_tree)
    assert tree["trace_id"] == root.trace_id

    services = {s["attrs"].get("service") for s in spans}
    workers = {s for s in services if s and s.startswith("worker:")}
    assert workers == {"worker:w1", "worker:w2"}, services
    assert "coordinator" in services

    # The coordinator fanned each distinct digest out as a fleet.job span.
    jobs = [s for s in spans if s["name"] == "fleet.job"]
    assert jobs and all(s["attrs"].get("digest") for s in jobs)

    # Worker-side leaves: each served sweep's span is tagged with the
    # tier that resolved it and the store digest it was served under.
    worker_server_spans = [
        s for s in spans
        if s["name"] == "server/v1/sweep"
        and s["attrs"].get("service") in workers
    ]
    assert worker_server_spans
    for s in worker_server_spans:
        assert s["attrs"].get("resolve.tier") in (
            "l1", "coalesced", "l2", "delta", "computed"
        ), s["attrs"]
        assert re.fullmatch(r"[0-9a-f]{64}", s["attrs"].get("store.digest", ""))
        # Each worker span hangs off a coordinator fleet.job span for the
        # same digest — the cross-process edge of the tree.
        parent = next(
            p for p in spans if p["span_id"] == s["parent_id"]
        )
        assert parent["name"] == "fleet.job"
        assert parent["attrs"]["digest"] == s["attrs"]["store.digest"]

    # And the whole thing exports as Perfetto-loadable JSON.
    doc = to_chrome_trace(spans)
    out = tmp_path / "batch-trace.json"
    out.write_text(json.dumps(doc))
    loaded = json.loads(out.read_text())
    names = {e["args"]["name"] for e in loaded["traceEvents"]
             if e["ph"] == "M" and e["name"] == "process_name"}
    assert {"coordinator", "worker:w1", "worker:w2"} <= names


def test_fleet_serves_valid_prometheus_text(traced_fleet):
    client = traced_fleet
    client.optimize_batch(**BATCH)

    def batch_accounted():
        own = client.metrics_prometheus()
        assert re.search(
            r'^repro_requests_total\{endpoint="/v1/optimize_batch"\} [1-9]\d*$',
            own, re.M,
        )
        return own

    own = _poll(batch_accounted)
    assert "# TYPE repro_requests_total counter" in own
    assert re.search(
        r'^repro_fleet_events_total\{event="batch"\} [1-9]\d*$', own, re.M
    )
    assert re.search(
        r'^repro_request_latency_seconds_bucket\{.*le="\+Inf"\} \d+$',
        own, re.M,
    )

    merged = client.fleet_metrics_prometheus()
    # Every sample line is labeled with its fleet member; HELP/TYPE
    # metadata appears exactly once per metric.
    for worker in ("coordinator", "w1", "w2"):
        assert re.search(
            rf'^repro_requests_total\{{worker="{worker}",', merged, re.M
        ), f"no samples for {worker}"
    assert merged.count("# TYPE repro_requests_total counter") == 1
    for line in merged.splitlines():
        if line.startswith("#") or not line:
            continue
        assert re.match(
            r'^[a-zA-Z_:][a-zA-Z0-9_:]*\{worker="[^"]+"', line
        ), f"unlabeled sample: {line!r}"

    as_json = client.fleet_metrics()
    assert set(as_json["workers"]) == {"w1", "w2"}
    assert as_json["coordinator"]["fleet"]["events"]["batch"] >= 1
