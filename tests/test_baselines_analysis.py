"""Integration tests: framework baselines, tables, figures, savings."""

import pytest

from repro.analysis.figures import fig1_mha_dataflow, fig5_fused_kernels
from repro.analysis.report import (
    format_framework_table,
    format_table1,
    format_table2,
    format_table3,
)
from repro.analysis.savings import estimate_savings
from repro.analysis.tables import (
    data_movement_reduction_report,
    table1,
    table2,
    table3,
    table4,
    table5,
)
from repro.baselines.frameworks import cudnn_mha_times, framework_schedule
from repro.baselines.policy import ALL_FRAMEWORKS, DEEPSPEED, OURS, PYTORCH, TF_XLA
from repro.hardware.cost_model import CostModel
from repro.ir.dims import bert_large_dims
from repro.ir.operator import OpClass

ENV = bert_large_dims()
COST = CostModel()
CAP = 300


@pytest.fixture(scope="module")
def schedules():
    return {
        p.name: framework_schedule(p, ENV, COST, model="encoder", cap=CAP)
        for p in ALL_FRAMEWORKS
    }


class TestSchedules:
    def test_pytorch_launches_more_kernels(self, schedules):
        """PyTorch is unfused: far more kernel launches than the fused ones."""
        assert len(schedules["PyTorch"].kernels) > len(schedules["Ours"].kernels)
        assert len(schedules["PyTorch"].kernels) > len(schedules["DeepSpeed"].kernels)

    def test_ordering(self, schedules):
        totals = {name: s.total_us for name, s in schedules.items()}
        assert totals["Ours"] < totals["DeepSpeed"]
        assert totals["DeepSpeed"] < totals["TF+XLA"]
        assert totals["TF+XLA"] < totals["PyTorch"]

    def test_stage_split_sums_to_total(self, schedules):
        for s in schedules.values():
            fwd = s.stage_us(backward=False)
            bwd = s.stage_us(backward=True)
            assert fwd + bwd == pytest.approx(s.total_us, rel=1e-6)

    def test_kernels_have_metrics(self, schedules):
        for s in schedules.values():
            for k in s.kernels:
                assert k.time_us > 0
                assert 0 <= k.mue <= 100
                assert k.percent_peak >= 0

    def test_class_runtime_sums(self, schedules):
        s = schedules["PyTorch"]
        by_class = s.class_runtime()
        assert sum(by_class.values()) == pytest.approx(
            sum(k.time_us for k in s.kernels)
        )

    def test_kernel_by_name_lookup(self, schedules):
        s = schedules["Ours"]
        assert s.kernel_by_name("qkv_proj").name == "qkv_proj"
        with pytest.raises(KeyError):
            s.kernel_by_name("nope")


class TestCudnn:
    def test_orders_of_magnitude_slower(self):
        c = cudnn_mha_times(ENV, COST)
        assert c.forward_us > 50_000  # paper: 131 ms
        assert c.backward_us > c.forward_us
        assert c.forward_kernels > ENV["b"] * ENV["h"] * ENV["j"]


class TestTables:
    def test_table1_fractions_sum(self):
        rows = table1(ENV, COST)
        assert sum(r.flop_fraction for r in rows) == pytest.approx(1.0)
        assert sum(r.runtime_fraction for r in rows) == pytest.approx(1.0)
        text = format_table1(rows)
        assert "tensor contraction" in text

    def test_table2_structure(self):
        data = table2(ENV, COST)
        assert set(data) == {"forward", "backward"}
        assert set(data["forward"]) == {"unfused", "qk", "qkv"}
        assert "Unfused" in format_table2(data)

    def test_table3_rows_and_render(self):
        rows, totals = table3(ENV, COST, cap=CAP)
        assert len(rows) == 32
        assert all(r.pt_time_us > 0 and r.ours_time_us > 0 for r in rows)
        text = format_table3(rows, totals)
        assert "AIB" in text and "Speedup" in text
        # Overall kernel-level speedup in the paper's band (1.20x +- slack).
        pt = sum(t["pt_us"] for t in totals.values())
        ours = sum(t["ours_us"] for t in totals.values())
        assert 1.05 < pt / ours < 1.6

    def test_table4_includes_cudnn(self):
        data = table4(ENV, COST, cap=CAP)
        assert set(data) == {"PyTorch", "TF+XLA", "DeepSpeed", "Ours", "cuDNN"}
        assert "cuDNN" in format_framework_table(data)

    def test_table5_framework_columns(self):
        data = table5(ENV, COST, cap=CAP)
        for f in ("PyTorch", "TF+XLA", "DeepSpeed", "Ours"):
            assert data[f]["total_ms"] == pytest.approx(
                data[f]["forward_ms"] + data[f]["backward_ms"], rel=1e-6
            )

    def test_data_movement_report(self):
        r = data_movement_reduction_report(ENV)
        assert r["fused_mwords"] < r["unfused_mwords"]
        assert 0.0 < r["reduction_fraction"] < 1.0


class TestFigures:
    def test_fig1_rows(self):
        rows = fig1_mha_dataflow(ENV)
        names = [r.op_name for r in rows]
        assert "q_proj" in names and "softmax" in names and "attn_out" in names

    def test_fig5_kernels_long_tailed(self):
        out = fig5_fused_kernels(ENV, COST, cap=400)
        assert "SM" in out and "AIB" in out
        assert out["SM"].long_tailed


class TestSavings:
    def test_fraction_formula(self):
        est = estimate_savings(1.30, 1000.0)
        assert est.saved_usd == pytest.approx(1000 * (1 - 1 / 1.3))

    def test_energy_optional(self):
        est = estimate_savings(2.0, 100.0)
        assert est.saved_mwh is None
        est2 = estimate_savings(2.0, 100.0, baseline_energy_mwh=10.0)
        assert est2.saved_mwh == pytest.approx(5.0)

    def test_speedup_of_one_saves_nothing(self):
        assert estimate_savings(1.0, 100.0).saved_usd == 0.0

    def test_invalid_speedup(self):
        with pytest.raises(ValueError):
            estimate_savings(0.0, 100.0)
