"""Tests for the calibration audit and the sensitivity sweeps."""

import pytest

from repro.analysis.calibration import PAPER_TABLE3_US, audit_calibration
from repro.analysis.sensitivity import attention_ffn_crossover, sweep_problem_sizes
from repro.hardware.cost_model import CostModel
from repro.ir.dims import bert_large_dims

ENV = bert_large_dims()
COST = CostModel()


class TestCalibration:
    @pytest.fixture(scope="class")
    def report(self):
        return audit_calibration(ENV, COST, cap=250)

    def test_covers_all_table3_rows(self, report):
        assert len(report.rows) == len(PAPER_TABLE3_US) == 32

    def test_median_within_forty_percent(self, report):
        """The model's median row lands within 1.4x of the paper's time,
        on both the PyTorch and the Ours side."""
        assert 1 / 1.4 < report.median_ratio(side="ours") < 1.4
        assert 1 / 1.4 < report.median_ratio(side="pt") < 1.4

    def test_geomean_unbiased(self, report):
        """No large systematic bias: geometric-mean ratio within ~30%."""
        assert 0.7 < report.geometric_mean_ratio(side="ours") < 1.3
        assert 0.7 < report.geometric_mean_ratio(side="pt") < 1.3

    def test_majority_within_2x(self, report):
        assert report.within(2.0, side="ours") > 0.75
        assert report.within(2.0, side="pt") > 0.75

    def test_headline_rows_tight(self, report):
        """The big GEMM rows — the calibration anchors — are within 25%."""
        anchors = {"Q, K, V", "Linear (1)", "Linear (2)", "Q, K, V dX"}
        for row in report.rows:
            if row.label in anchors:
                assert 0.75 < row.ours_ratio < 1.35, (row.label, row.ours_ratio)


class TestSensitivity:
    @pytest.fixture(scope="class")
    def grid(self):
        return sweep_problem_sizes(batches=(2, 8), seqs=(128, 512), cap=120)

    def test_grid_shape(self, grid):
        assert len(grid) == 4
        assert all(p.ours_ms > 0 for p in grid)

    def test_speedup_everywhere(self, grid):
        """The fusion+layout win persists across the (B, L) grid."""
        for p in grid:
            assert p.speedup > 1.1, (p.batch, p.seq)

    def test_bigger_problems_take_longer(self, grid):
        by_key = {(p.batch, p.seq): p.ours_ms for p in grid}
        assert by_key[(8, 512)] > by_key[(2, 512)]
        assert by_key[(8, 512)] > by_key[(8, 128)]

    def test_attention_share_grows_with_sequence(self):
        """Attention is O(L^2); the FFN is O(L): longer sequences shift
        forward time toward attention."""
        points = attention_ffn_crossover(seqs=(128, 512, 1024), cap=100)
        shares = [p.attention_share for p in points]
        assert shares[0] < shares[-1]
        assert shares == sorted(shares)

    def test_memory_bound_share_positive_everywhere(self, grid):
        for p in grid:
            assert 0.05 < p.memory_bound_share < 0.9
