"""Smoke test: every ``examples/`` script runs clean end to end.

The examples are the repo's user-facing documentation; this keeps them from
rotting into dead code paths.  Each script runs in a fresh interpreter with
a small ``REPRO_SWEEP_CAP`` so the whole sweep stays on a CI budget
(``slow``-marked: the nightly job runs it).
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
EXAMPLES = sorted(p.name for p in (REPO / "examples").glob("*.py"))


def test_every_example_is_covered():
    """New example scripts must stay runnable (and land in EXAMPLES)."""
    assert len(EXAMPLES) >= 8


@pytest.mark.slow
@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs_clean(script, tmp_path):
    env = dict(
        os.environ,
        PYTHONPATH=str(REPO / "src"),
        REPRO_SWEEP_CAP="60",  # small sweeps: smoke, not benchmark
    )
    # Isolated cwd: export_dataflow.py writes its artifacts relative to it.
    proc = subprocess.run(
        [sys.executable, str(REPO / "examples" / script)],
        cwd=tmp_path,
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, (
        f"{script} failed:\n--- stdout ---\n{proc.stdout[-2000:]}"
        f"\n--- stderr ---\n{proc.stderr[-2000:]}"
    )
    assert proc.stdout.strip(), f"{script} printed nothing"
