"""Tests for the extension features: encoder/decoder attention with KV
fusion, the memory-footprint estimator, the stacked model, and the CLI."""

import numpy as np
import pytest

from repro.analysis.memory import MemoryFootprint, graph_footprint
from repro.cli import main as cli_main
from repro.hardware.spec import V100
from repro.ir.dims import bert_large_dims
from repro.transformer.general_attention import (
    build_encdec_mha_graph,
    encdec_mha_forward,
)
from repro.transformer.graph_builder import build_encoder_graph
from repro.transformer.mha import mha_forward
from repro.transformer.model import BertModel, estimate_model_time
from repro.transformer.params import ModelDims, init_mha_params

ENV = bert_large_dims()
DIMS = ModelDims.tiny()


class TestEncDecAttention:
    @pytest.mark.parametrize("kv_fusion", ["unfused", "kv"])
    def test_graph_validates(self, kv_fusion):
        g = build_encdec_mha_graph(kv_fusion=kv_fusion)
        g.validate()
        assert "qkt" in g and "gamma" in g

    def test_kv_fusion_reads_encoder_output_once(self):
        """The KV-fused projection reads x_enc once (paper Sec. IV-D)."""
        fused = build_encdec_mha_graph(kv_fusion="kv")
        unfused = build_encdec_mha_graph(kv_fusion="unfused")
        xkv_words = fused.container("xkv").volume(ENV)
        kv_reads_fused = fused.op("kv_proj").input_words(ENV)
        kv_reads_unfused = unfused.op("k_proj").input_words(ENV) + unfused.op(
            "v_proj"
        ).input_words(ENV)
        assert kv_reads_unfused - kv_reads_fused == pytest.approx(xkv_words)

    def test_kv_fused_flop_unchanged(self):
        fused = build_encdec_mha_graph(kv_fusion="kv")
        unfused = build_encdec_mha_graph(kv_fusion="unfused")
        assert fused.total_flops(ENV) == pytest.approx(unfused.total_flops(ENV))

    def test_numerics_match_general_mha(self):
        rng = np.random.default_rng(5)
        params = init_mha_params(DIMS, rng, std=0.3)
        i, b, j = DIMS.embed, DIMS.batch, DIMS.seq
        xq = rng.normal(0, 1, (i, b, j))
        xkv = rng.normal(0, 1, (i, b, j))
        a1 = encdec_mha_forward(params, xq, xkv, dropout_p=0.0)
        a2 = mha_forward(params, xq, xkv, xkv, dropout_p=0.0)
        np.testing.assert_array_equal(a1.out, a2.out)


class TestMemoryFootprint:
    @pytest.fixture(scope="class")
    def footprint(self):
        g = build_encoder_graph(qkv_fusion="qkv")
        return graph_footprint(g, ENV)

    def test_parameter_bytes_match_bert_layer(self, footprint):
        """A BERT-large encoder layer has ~12.6M parameters (fp16 -> ~25 MB)."""
        params = footprint.parameter_bytes / 2  # words
        assert params == pytest.approx(12.6e6, rel=0.02)

    def test_saved_activations_dominate(self, footprint):
        """Training memory is activation-dominated at B=8, L=512."""
        assert footprint.saved_activation_bytes > footprint.parameter_bytes

    def test_total_is_sum(self, footprint):
        assert footprint.total_bytes == (
            footprint.parameter_bytes
            + footprint.gradient_bytes
            + footprint.saved_activation_bytes
            + footprint.transient_activation_bytes
        )

    def test_one_layer_fits_v100(self, footprint):
        assert footprint.fits(V100, model_copies=1)

    def test_many_layers_overflow(self, footprint):
        assert not footprint.fits(V100, model_copies=200)

    def test_fusion_reduces_transients(self):
        from repro.fusion.encoder_kernels import apply_paper_fusion

        g = build_encoder_graph(qkv_fusion="qkv")
        f = apply_paper_fusion(g, ENV)
        before = graph_footprint(g, ENV)
        after = graph_footprint(f, ENV)
        assert after.transient_activation_bytes < before.transient_activation_bytes
        # Saved-for-backward tensors are untouched by fusion.
        assert after.saved_activation_bytes == before.saved_activation_bytes


class TestBertModel:
    def test_forward_backward_shapes(self):
        model = BertModel(DIMS, num_layers=3, rng=np.random.default_rng(0))
        x = np.random.default_rng(1).normal(0, 1, (DIMS.embed, DIMS.batch, DIMS.seq))
        acts = model.forward(x)
        assert len(acts) == 3
        dy = np.ones_like(x)
        grads, dx = model.backward(acts, dy)
        assert len(grads) == 3
        assert dx.shape == x.shape

    def test_stacked_gradcheck_input(self):
        """dX through a 2-layer stack matches finite differences."""
        model = BertModel(DIMS, num_layers=2, rng=np.random.default_rng(2))
        # float64 weights for finite differences
        for layer in model.layers:
            for name, arr in layer.named():
                pass
        rng = np.random.default_rng(3)
        x = rng.normal(0, 1, (DIMS.embed, DIMS.batch, DIMS.seq))
        w = rng.normal(0, 1, x.shape)

        def loss(x_):
            acts = model.forward(x_)
            return float((acts[-1].ln2_out * w).sum())

        acts = model.forward(x)
        _, dx = model.backward(acts, w)
        eps = 1e-4
        for idx in [(0, 0, 0), (3, 1, 2)]:
            x2 = x.copy()
            x2[idx] += eps
            num = (loss(x2) - loss(x)) / eps
            assert dx[idx] == pytest.approx(num, rel=2e-2, abs=1e-4)

    def test_layer_count_validation(self):
        with pytest.raises(ValueError):
            BertModel(DIMS, num_layers=0)

    def test_num_parameters_scales(self):
        m1 = BertModel(DIMS, num_layers=1)
        m3 = BertModel(DIMS, num_layers=3)
        assert m3.num_parameters() == 3 * m1.num_parameters()


class TestModelTimeEstimate:
    def test_bert_large_scaling(self):
        est = estimate_model_time(7100.0, num_layers=24, other_fraction=0.05)
        assert est.total_us == pytest.approx(24 * 7100.0 / 0.95, rel=1e-6)
        assert est.layer_fraction == pytest.approx(0.95)

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_model_time(1.0, num_layers=0)
        with pytest.raises(ValueError):
            estimate_model_time(1.0, other_fraction=1.0)


class TestCLI:
    def test_movement_command(self, capsys):
        assert cli_main(["movement"]) == 0
        out = capsys.readouterr().out
        assert "reduction" in out

    def test_table1_command(self, capsys):
        assert cli_main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "tensor contraction" in out

    def test_table2_command(self, capsys):
        assert cli_main(["table2"]) == 0
        assert "QKV fused" in capsys.readouterr().out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(["nope"])


class TestEncDecExecution:
    """The encoder/decoder attention graph executes correctly (both KV
    variants), matching the NumPy reference."""

    @pytest.mark.parametrize("kv_fusion", ["unfused", "kv"])
    def test_matches_reference(self, kv_fusion):
        from repro.runtime import GraphExecutor, encdec_mha_feeds

        rng = np.random.default_rng(17)
        params = init_mha_params(DIMS, rng, std=0.3)
        i, b, j = DIMS.embed, DIMS.batch, DIMS.seq
        xq = rng.normal(0, 1, (i, b, j))
        xkv = rng.normal(0, 1, (i, b, j))
        g = build_encdec_mha_graph(kv_fusion=kv_fusion)
        env = DIMS.env()
        ctx = GraphExecutor(g, env, dropout_p=0.0).run(
            encdec_mha_feeds(params, xq, xkv, kv_fusion=kv_fusion)
        )
        ref = encdec_mha_forward(params, xq, xkv, dropout_p=0.0)
        np.testing.assert_allclose(ctx["attn_out"], ref.out, atol=1e-6)

    def test_kv_variants_agree(self):
        from repro.runtime import GraphExecutor, encdec_mha_feeds

        rng = np.random.default_rng(18)
        params = init_mha_params(DIMS, rng, std=0.3)
        i, b, j = DIMS.embed, DIMS.batch, DIMS.seq
        xq = rng.normal(0, 1, (i, b, j))
        xkv = rng.normal(0, 1, (i, b, j))
        env = DIMS.env()
        outs = {}
        for kv_fusion in ("unfused", "kv"):
            g = build_encdec_mha_graph(kv_fusion=kv_fusion)
            ctx = GraphExecutor(g, env, dropout_p=0.0).run(
                encdec_mha_feeds(params, xq, xkv, kv_fusion=kv_fusion)
            )
            outs[kv_fusion] = ctx["attn_out"]
        np.testing.assert_allclose(outs["unfused"], outs["kv"], atol=1e-10)

    def test_roofline_command(self, capsys):
        assert cli_main(["roofline"]) == 0
        out = capsys.readouterr().out
        assert "memory" in out and "compute" in out
