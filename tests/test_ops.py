"""Unit tests for the operator library: einsum utils and NumPy kernels."""

import numpy as np
import pytest

from repro.ir.dims import DimEnv, bert_large_dims
from repro.ops.contraction import (
    contraction_forward,
    contraction_grad_specs,
    contraction_grads,
    contraction_spec,
)
from repro.ops.einsum_utils import grad_einsum, parse_einsum
from repro.ops.elementwise import (
    bias_forward,
    bias_grad_param,
    bias_spec,
    dropout_backward,
    dropout_forward,
    gelu_backward,
    gelu_forward,
    relu_backward,
    relu_forward,
    residual_forward,
)
from repro.ops.layernorm import (
    layernorm_backward_dw,
    layernorm_backward_dx,
    layernorm_forward,
    layernorm_spec,
)
from repro.ops.softmax import softmax_backward, softmax_forward, softmax_spec
from repro.ir.tensor import TensorSpec

RNG = np.random.default_rng(42)


class TestEinsumParsing:
    def test_basic(self):
        spec = parse_einsum("ab,bc->ac")
        assert spec.input_subscripts == ("ab", "bc")
        assert spec.output_subscript == "ac"
        assert spec.reduction_dims == ("b",)

    def test_mha_projection(self):
        spec = parse_einsum("phi,ibj->phbj")
        assert spec.reduction_dims == ("i",)
        assert spec.output_dims == ("p", "h", "b", "j")
        space = spec.iteration_space()
        assert space.independent == ("p", "h", "b", "j")
        assert space.reduction == ("i",)

    def test_flops_is_2mnk(self):
        env = DimEnv({"a": 3, "b": 4, "c": 5})
        assert parse_einsum("ab,bc->ac").flops(env) == 2 * 3 * 4 * 5

    def test_requires_explicit_output(self):
        with pytest.raises(ValueError):
            parse_einsum("ab,bc")

    def test_rejects_repeated_subscript(self):
        with pytest.raises(ValueError):
            parse_einsum("aa,ab->ab")

    def test_rejects_unknown_output_dim(self):
        with pytest.raises(ValueError):
            parse_einsum("ab,bc->ad")

    def test_rejects_ellipsis(self):
        with pytest.raises(ValueError):
            parse_einsum("...a,ab->...b")


class TestGradEinsum:
    @pytest.mark.parametrize(
        "spec,wrt,expected",
        [
            ("ab,bc->ac", 0, "ac,bc->ab"),
            ("ab,bc->ac", 1, "ac,ab->bc"),
            ("phi,ibj->phbj", 0, "phbj,ibj->phi"),
            ("phi,ibj->phbj", 1, "phbj,phi->ibj"),
            ("whbk,hbjk->whbj", 1, "whbj,whbk->hbjk"),
        ],
    )
    def test_grad_specs(self, spec, wrt, expected):
        assert grad_einsum(spec, wrt).spec == expected

    def test_out_of_range(self):
        with pytest.raises(IndexError):
            grad_einsum("ab,bc->ac", 2)

    def test_gradients_match_numerics(self):
        a = RNG.normal(size=(3, 4))
        b = RNG.normal(size=(4, 5))
        c = contraction_forward("ab,bc->ac", a, b)
        w = RNG.normal(size=c.shape)
        da, db = contraction_grads("ab,bc->ac", w, a, b)
        eps = 1e-4

        def loss(a_, b_):
            return float((contraction_forward("ab,bc->ac", a_, b_) * w).sum())

        a2 = a.copy()
        a2[1, 2] += eps
        num = (loss(a2, b) - loss(a, b)) / eps
        assert da[1, 2] == pytest.approx(num, rel=1e-2)

    def test_batched_contraction_grads_shapes(self):
        q = RNG.normal(size=(2, 3, 4, 5))  # phbk
        k = RNG.normal(size=(2, 3, 4, 6))  # phbj
        out = contraction_forward("phbk,phbj->hbjk", q, k)
        assert out.shape == (3, 4, 6, 5)
        g1, g2 = contraction_grads("phbk,phbj->hbjk", np.ones_like(out), q, k)
        assert g1.shape == q.shape and g2.shape == k.shape


class TestContractionSpec:
    def test_paper_flop_counts(self):
        """Table III: stacked QKV = 24 binary Gflop, linear1 = 32."""
        env = bert_large_dims()
        qkv = contraction_spec("qkv", "cphi,ibj->cphbj", ("w", "x"), "out")
        assert qkv.flops(env) / 2**30 == pytest.approx(24.0)
        lin = contraction_spec("lin1", "ui,ibj->ubj", ("w", "x"), "out")
        assert lin.flops(env) / 2**30 == pytest.approx(32.0)

    def test_paper_io_counts(self):
        """Table III: QKV inputs 7.3 Mw, outputs 12.5 Mw."""
        env = bert_large_dims()
        qkv = contraction_spec("qkv", "cphi,ibj->cphbj", ("w", "x"), "out")
        assert qkv.input_words(env) / 1e6 == pytest.approx(7.34, abs=0.05)
        assert qkv.output_words(env) / 1e6 == pytest.approx(12.58, abs=0.05)

    def test_param_flag(self):
        op = contraction_spec("q", "phi,ibj->phbj", ("w", "x"), "o", param_inputs=(0,))
        assert op.inputs[0].is_param and not op.inputs[1].is_param

    def test_name_count_mismatch(self):
        with pytest.raises(ValueError):
            contraction_spec("q", "ab,bc->ac", ("w",), "o")


class TestElementwise:
    def test_bias_broadcast_matches_manual(self):
        x = RNG.normal(size=(2, 3, 4))  # dims p,b,j
        b = RNG.normal(size=(2,))  # dims p
        y = bias_forward(x, b, ("p", "b", "j"), ("p",))
        np.testing.assert_allclose(y, x + b[:, None, None])

    def test_bias_2d_broadcast(self):
        x = RNG.normal(size=(2, 3, 4, 5))  # p,h,b,j
        b = RNG.normal(size=(2, 3))  # p,h
        y = bias_forward(x, b, ("p", "h", "b", "j"), ("p", "h"))
        np.testing.assert_allclose(y, x + b[:, :, None, None])

    def test_bias_permuted_dims(self):
        x = RNG.normal(size=(3, 2, 4))  # h,p,j
        b = RNG.normal(size=(2, 3))  # declared (p,h)
        y = bias_forward(x, b, ("h", "p", "j"), ("p", "h"))
        np.testing.assert_allclose(y, x + b.T[:, :, None])

    def test_bias_grad_param_reduces_broadcast_dims(self):
        dy = RNG.normal(size=(2, 3, 4))
        g = bias_grad_param(dy, ("p", "b", "j"), ("p",))
        np.testing.assert_allclose(g, dy.sum(axis=(1, 2)))

    def test_bias_grad_param_permuted(self):
        dy = RNG.normal(size=(3, 2, 4))  # h,p,j
        g = bias_grad_param(dy, ("h", "p", "j"), ("p", "h"))
        np.testing.assert_allclose(g, dy.sum(axis=2).T)

    def test_relu(self):
        x = np.array([-1.0, 0.0, 2.0])
        np.testing.assert_array_equal(relu_forward(x), [0, 0, 2])
        np.testing.assert_array_equal(relu_backward(np.ones(3), x), [0, 0, 1])

    def test_gelu_matches_numeric_grad(self):
        x = RNG.normal(size=(10,))
        eps = 1e-5
        num = (gelu_forward(x + eps) - gelu_forward(x - eps)) / (2 * eps)
        np.testing.assert_allclose(gelu_backward(np.ones(10), x), num, rtol=1e-4)

    def test_dropout_inverted_scaling(self):
        x = np.ones((1000,))
        y, mask = dropout_forward(x, 0.5, np.random.default_rng(0))
        # Inverted dropout: E[y] = x.
        assert y.mean() == pytest.approx(1.0, abs=0.1)
        kept = mask > 0
        np.testing.assert_allclose(y[kept], 2.0)
        np.testing.assert_allclose(y[~kept], 0.0)

    def test_dropout_zero_p_is_identity(self):
        x = RNG.normal(size=(5, 5))
        y, mask = dropout_forward(x, 0.0, np.random.default_rng(0))
        np.testing.assert_array_equal(y, x)
        np.testing.assert_array_equal(mask, np.ones_like(x))

    def test_dropout_invalid_p(self):
        with pytest.raises(ValueError):
            dropout_forward(np.ones(3), 1.0, np.random.default_rng(0))

    def test_dropout_backward_is_mask_multiply(self):
        x = RNG.normal(size=(100,))
        _, mask = dropout_forward(x, 0.3, np.random.default_rng(1))
        dy = RNG.normal(size=(100,))
        np.testing.assert_array_equal(dropout_backward(dy, mask), dy * mask)

    def test_residual(self):
        a, b = RNG.normal(size=(3,)), RNG.normal(size=(3,))
        np.testing.assert_array_equal(residual_forward(a, b), a + b)

    def test_bias_spec_rejects_foreign_dims(self):
        x = TensorSpec("x", ("a", "b"))
        with pytest.raises(ValueError):
            bias_spec("bad", x, ("z",), "y")


class TestSoftmax:
    def test_rows_sum_to_one(self):
        x = RNG.normal(size=(4, 7))
        y = softmax_forward(x, axis=-1)
        np.testing.assert_allclose(y.sum(axis=-1), np.ones(4), rtol=1e-6)

    def test_numerically_stable_for_large_inputs(self):
        x = np.array([[1e4, 1e4 + 1.0]])
        y = softmax_forward(x, axis=-1)
        assert np.isfinite(y).all()

    def test_scale_applied_before_softmax(self):
        x = RNG.normal(size=(3, 5))
        np.testing.assert_allclose(
            softmax_forward(x, scale=0.5), softmax_forward(0.5 * x), rtol=1e-6
        )

    def test_additive_mask(self):
        x = RNG.normal(size=(2, 4))
        mask = np.array([[0, 0, -np.inf, -np.inf]] * 2)
        y = softmax_forward(x, mask=mask)
        np.testing.assert_allclose(y[:, 2:], 0.0)

    def test_backward_matches_numeric(self):
        rng = np.random.default_rng(7)
        x = rng.normal(size=(3, 6))
        scale = 0.7
        w = rng.normal(size=(3, 6))
        y = softmax_forward(x, scale=scale)
        dx = softmax_backward(w, y, scale=scale)
        # softmax_forward computes in float32: eps must stay well above its
        # rounding at unit-scale inputs.
        eps = 1e-4
        for idx in [(1, 3), (0, 0), (2, 5)]:
            x2 = x.copy()
            x2[idx] += eps
            num = ((softmax_forward(x2, scale=scale) - y) * w).sum() / eps
            assert dx[idx] == pytest.approx(num, rel=5e-3, abs=2e-4)

    def test_spec_classification(self):
        x = TensorSpec("beta", ("h", "b", "j", "k"))
        op = softmax_spec("sm", x, "alpha", axis_dim="k")
        assert op.ispace.reduction == ("k",)
        assert op.ispace.independent == ("h", "b", "j")

    def test_spec_rejects_missing_axis(self):
        x = TensorSpec("beta", ("h", "b", "j", "k"))
        with pytest.raises(ValueError):
            softmax_spec("sm", x, "alpha", axis_dim="z")


class TestLayerNorm:
    def test_normalizes_mean_and_var(self):
        x = RNG.normal(2.0, 3.0, size=(16, 4, 5))
        g = np.ones(16)
        b = np.zeros(16)
        y, mean, inv_std = layernorm_forward(x, g, b, axis=0)
        np.testing.assert_allclose(y.mean(axis=0), 0.0, atol=1e-7)
        np.testing.assert_allclose(y.std(axis=0), 1.0, rtol=1e-3)

    def test_scale_bias_applied(self):
        x = RNG.normal(size=(8, 3))
        g = RNG.normal(size=(8,))
        b = RNG.normal(size=(8,))
        y, mean, inv_std = layernorm_forward(x, g, b, axis=0)
        xhat = (x - mean) * inv_std
        np.testing.assert_allclose(y, g[:, None] * xhat + b[:, None], rtol=1e-6)

    def test_backward_dx_matches_numeric(self):
        x = RNG.normal(size=(6, 4)).astype(np.float64)
        g = RNG.normal(size=(6,))
        b = RNG.normal(size=(6,))
        w = RNG.normal(size=(6, 4))
        y, mean, inv_std = layernorm_forward(x, g, b, axis=0)
        dx = layernorm_backward_dx(w, x, g, mean, inv_std, axis=0)
        eps = 1e-6
        x2 = x.copy()
        x2[2, 1] += eps
        y2, _, _ = layernorm_forward(x2, g, b, axis=0)
        num = ((y2 - y) * w).sum() / eps
        assert dx[2, 1] == pytest.approx(num, rel=1e-3)

    def test_backward_dw_matches_numeric(self):
        x = RNG.normal(size=(6, 4))
        g = RNG.normal(size=(6,))
        b = RNG.normal(size=(6,))
        w = RNG.normal(size=(6, 4))
        y, mean, inv_std = layernorm_forward(x, g, b, axis=0)
        dg, db = layernorm_backward_dw(w, x, mean, inv_std, axis=0)
        eps = 1e-6
        g2 = g.copy()
        g2[3] += eps
        y2, _, _ = layernorm_forward(x, g2, b, axis=0)
        assert dg[3] == pytest.approx(((y2 - y) * w).sum() / eps, rel=1e-3)
        np.testing.assert_allclose(db, w.sum(axis=1), rtol=1e-6)

    def test_spec_structure(self):
        x = TensorSpec("resid", ("i", "b", "j"))
        op = layernorm_spec("ln", x, "out", norm_dim="i")
        assert op.ispace.reduction == ("i",)
        assert len(op.inputs) == 3  # x, scale, bias
        assert op.inputs[1].is_param and op.inputs[2].is_param
