"""Detailed unit tests for schedules, policies, and the fused-kernel IO
ledger that the data-movement claims rest on."""

import pytest

from repro.baselines.policy import (
    ALL_FRAMEWORKS,
    DEEPSPEED,
    OURS,
    PYTORCH,
    TF_XLA,
    FrameworkPolicy,
)
from repro.baselines.schedule import build_schedule
from repro.baselines.frameworks import framework_graph, framework_schedule
from repro.fusion.encoder_kernels import apply_paper_fusion
from repro.hardware.cost_model import CostModel
from repro.ir.dims import bert_large_dims
from repro.ir.operator import OpClass
from repro.transformer.graph_builder import build_encoder_graph

ENV = bert_large_dims()
COST = CostModel()


class TestPolicyDefinitions:
    def test_paper_policy_facts(self):
        """Sec. VI-C's description of each framework, encoded as policy."""
        # PyTorch: no kernel fusion, but algebraic fusion and good layouts.
        assert PYTORCH.fusion == "none"
        assert PYTORCH.qkv_fusion == "qkv"
        # TF+XLA: kernel fusion but no algebraic fusion, subpar GEMM layouts.
        assert TF_XLA.fusion == "paper"
        assert TF_XLA.qkv_fusion == "unfused"
        assert TF_XLA.contraction_quantile > PYTORCH.contraction_quantile
        # DeepSpeed: fused and tuned, small remaining gap.
        assert DEEPSPEED.fusion == "paper"
        assert DEEPSPEED.qkv_fusion == "qkv"
        # Ours: global selection.
        assert OURS.layout_mode == "selected"

    def test_validation(self):
        with pytest.raises(ValueError):
            FrameworkPolicy(
                name="bad", fusion="none", qkv_fusion="qkv",
                layout_mode="quantile", contraction_quantile=2.0,
            )
        with pytest.raises(ValueError):
            FrameworkPolicy(
                name="bad", fusion="none", qkv_fusion="qkv",
                layout_mode="quantile", per_kernel_overhead_us=-1.0,
            )


class TestFrameworkGraphs:
    def test_pytorch_graph_is_unfused(self):
        g = framework_graph(PYTORCH, ENV, model="encoder")
        assert not any(op.is_fused for op in g.ops)

    def test_tf_xla_graph_lacks_algebraic_fusion(self):
        g = framework_graph(TF_XLA, ENV, model="encoder")
        assert "q_proj" in g and "k_proj" in g and "v_proj" in g
        assert "qkv_proj" not in g

    def test_ours_graph_has_paper_kernels(self):
        g = framework_graph(OURS, ENV, model="encoder")
        labels = {op.kernel_label for op in g.ops if op.kernel_label}
        assert {"AIB", "SM", "BRD", "BS"} <= labels

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            framework_graph(PYTORCH, ENV, model="resnet")


class TestScheduleConstruction:
    def test_overhead_applied_per_kernel(self):
        g = framework_graph(PYTORCH, ENV, model="mha")
        import dataclasses

        no_ovh = dataclasses.replace(PYTORCH, per_kernel_overhead_us=0.0)
        s0 = build_schedule(g, no_ovh, ENV, COST, cap=100)
        s3 = build_schedule(g, PYTORCH, ENV, COST, cap=100)
        n = len(s0.kernels)
        assert s3.total_us - s0.total_us == pytest.approx(3.0 * n, rel=1e-6)

    def test_quantile_zero_equals_best(self):
        import dataclasses

        g = framework_graph(DEEPSPEED, ENV, model="mha")
        best_policy = dataclasses.replace(
            DEEPSPEED, contraction_quantile=0.0, kernel_quantile=0.0,
            per_kernel_overhead_us=0.0,
        )
        s = build_schedule(g, best_policy, ENV, COST, cap=200)
        from repro.autotuner.tuner import sweep_graph

        sweeps = sweep_graph(g, ENV, COST, cap=200)
        best_sum = sum(sw.best.total_us for sw in sweeps.values())
        assert s.total_us == pytest.approx(best_sum, rel=1e-9)

    def test_worse_quantile_is_slower(self):
        import dataclasses

        g = framework_graph(DEEPSPEED, ENV, model="mha")
        fast = build_schedule(
            g,
            dataclasses.replace(DEEPSPEED, contraction_quantile=0.0, kernel_quantile=0.0),
            ENV, COST, cap=150,
        )
        slow = build_schedule(
            g,
            dataclasses.replace(DEEPSPEED, contraction_quantile=0.5, kernel_quantile=0.5),
            ENV, COST, cap=150,
        )
        assert slow.total_us > fast.total_us


class TestFusedIOLedger:
    """The exact accounting behind the 22.91%-style reduction claim."""

    def test_bdrln_io(self):
        """BDRLN1 = bias+dropout+residual+ln: interior edges are the biased
        and dropped tensors; externally visible are mask, resid1, ln1_out."""
        g = apply_paper_fusion(build_encoder_graph(qkv_fusion="qkv"), ENV)
        op = g.op("BDRLN1")
        out_names = set(op.output_names)
        assert "attn_drop_mask" in out_names
        assert "resid1" in out_names  # saved for LayerNorm backward
        assert "ln1_out" in out_names
        assert "attn_out" not in out_names  # interior: eliminated
        assert "attn_drop" not in out_names  # interior: eliminated

    def test_aib_reads_each_tensor_once(self):
        g = apply_paper_fusion(build_encoder_graph(qkv_fusion="qkv"), ENV)
        op = g.op("AIB")
        names = list(op.input_names)
        assert len(names) == len(set(names))
        # 12.5 Mw in (3 projections) + tiny biases; 12.5 Mw out.
        assert op.input_words(ENV) / 1e6 == pytest.approx(12.6, abs=0.2)
        assert op.output_words(ENV) / 1e6 == pytest.approx(12.6, abs=0.2)

    def test_brd_saves_two_interims(self):
        """BRD = bias+ReLU+dropout over the 16.7 Mw FFN activation: the
        unfused version moves ~100 Mw; fused moves ~59 (paper's Table III
        arithmetic)."""
        unfused = build_encoder_graph(qkv_fusion="qkv")
        member_io = sum(
            unfused.op(n).io_words(ENV)
            for n in ("linear1_bias", "relu", "ffn_dropout")
        )
        fused = apply_paper_fusion(unfused, ENV)
        fused_io = fused.op("BRD").io_words(ENV)
        assert fused_io < 0.65 * member_io

    def test_every_fused_kernel_moves_less(self):
        unfused = build_encoder_graph(qkv_fusion="qkv")
        fused = apply_paper_fusion(unfused, ENV)
        for op in fused.ops:
            if not op.is_fused or len(op.fused_from) < 2:
                continue
            members_io = sum(unfused.op(n).io_words(ENV) for n in op.fused_from)
            assert op.io_words(ENV) <= members_io, op.name
