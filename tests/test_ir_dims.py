"""Unit tests for repro.ir.dims."""

import pytest

from repro.ir.dims import DimEnv, bert_alternate_dims, bert_large_dims, small_test_dims


class TestDimEnv:
    def test_mapping_protocol(self):
        env = DimEnv({"a": 2, "b": 3})
        assert env["a"] == 2
        assert len(env) == 2
        assert set(env) == {"a", "b"}
        assert dict(env) == {"a": 2, "b": 3}

    def test_unknown_dim_raises_with_known_names(self):
        env = DimEnv({"a": 2})
        with pytest.raises(KeyError, match="unknown dimension"):
            env["z"]

    def test_rejects_nonpositive_sizes(self):
        with pytest.raises(ValueError):
            DimEnv({"a": 0})
        with pytest.raises(ValueError):
            DimEnv({"a": -5})

    def test_rejects_bad_names(self):
        with pytest.raises(ValueError):
            DimEnv({"": 2})

    def test_volume_and_shape(self):
        env = DimEnv({"a": 2, "b": 3, "c": 5})
        assert env.volume(("a", "b")) == 6
        assert env.volume(()) == 1
        assert env.shape(("c", "a")) == (5, 2)

    def test_with_sizes_does_not_mutate(self):
        env = DimEnv({"a": 2})
        env2 = env.with_sizes(a=7, b=1)
        assert env["a"] == 2
        assert env2["a"] == 7
        assert env2["b"] == 1

    def test_subset(self):
        env = DimEnv({"a": 2, "b": 3})
        assert dict(env.subset(["b"])) == {"b": 3}

    def test_hashable(self):
        assert hash(DimEnv({"a": 2, "b": 3})) == hash(DimEnv({"b": 3, "a": 2}))


class TestStandardEnvs:
    def test_bert_large_matches_paper(self):
        """Sec. III-D: B=8, L=512, N=1024, H=16, P=64."""
        env = bert_large_dims()
        assert env["b"] == 8
        assert env["j"] == env["k"] == 512
        assert env["h"] == 16
        assert env["p"] == env["w"] == 64
        assert env["i"] == 1024
        assert env["u"] == 4096

    def test_embedding_is_heads_times_projection(self):
        env = bert_large_dims()
        assert env["i"] == env["h"] * env["p"]

    def test_stacking_dims(self):
        env = bert_large_dims()
        assert env["c"] == 3
        assert env["d"] == 2

    def test_alternate_config(self):
        """Sec. VI-C re-tuned configuration: B=96, L=128."""
        env = bert_alternate_dims()
        assert env["b"] == 96
        assert env["j"] == 128
        assert env["i"] == 1024

    def test_small_dims_are_small(self):
        env = small_test_dims()
        assert all(size <= 8 for size in env.sizes.values())
