"""Unit tests for fusion rules, the fuser, the paper kernel set, and
algebraic fusion."""

import pytest

from repro.fusion.algebraic import measure_variant, table2_sweep
from repro.fusion.encoder_kernels import FUSED_KERNEL_NAMES, apply_paper_fusion
from repro.fusion.fuser import FusionError, fuse_greedy, fuse_ops
from repro.fusion.rules import (
    FusionPattern,
    can_fuse_pair,
    classify_pattern,
    shapes_compatible,
)
from repro.ir.dims import DimEnv, bert_large_dims
from repro.ir.graph import DataflowGraph
from repro.ir.iteration_space import IterationSpace
from repro.ir.operator import OpClass, OpSpec
from repro.ir.tensor import TensorSpec
from repro.transformer.graph_builder import build_encoder_graph, build_mha_graph

ENV = bert_large_dims()
SMALL = DimEnv({"a": 4, "b": 8, "r": 16, "q": 8})


def _op(name, ins, outs, *, ispace, op_class=OpClass.ELEMENTWISE, dims=("a", "b")):
    return OpSpec(
        name=name,
        op_class=op_class,
        inputs=tuple(TensorSpec(n, dims) for n in ins),
        outputs=tuple(TensorSpec(n, dims) for n in outs),
        ispace=ispace,
        flop_per_point=1.0,
    )


class TestShapeCompatibility:
    def test_same_independent_shapes(self):
        a = IterationSpace(("a", "b"))
        b = IterationSpace(("a", "q"))  # b and q have equal size 8
        assert shapes_compatible(a, b, SMALL)

    def test_j_k_equivalence(self):
        """Self-attention: spaces over j and k (equal sizes) are fusible."""
        a = IterationSpace(("p", "h", "b", "j"))
        b = IterationSpace(("p", "h", "b", "k"))
        assert shapes_compatible(a, b, ENV)

    def test_different_sizes_incompatible(self):
        a = IterationSpace(("a",))
        b = IterationSpace(("r",))
        assert not shapes_compatible(a, b, SMALL)

    def test_reduction_extension(self):
        m = IterationSpace(("a", "b"))
        r = IterationSpace(("a", "b"), ("r",))
        assert shapes_compatible(m, r, SMALL)
        assert shapes_compatible(r, m, SMALL)

    def test_two_distinct_reductions_incompatible(self):
        r1 = IterationSpace(("a",), ("b",))
        r2 = IterationSpace(("a",), ("r",))
        assert not shapes_compatible(r1, r2, SMALL)

    def test_pattern4_map_with_reduction(self):
        """EBSB: residual over [i,b,j] + layernorm dW reducing [b,j]."""
        residual = IterationSpace(("a", "b", "r"))
        ln_dw = IterationSpace(("a",), ("b", "r"))
        assert shapes_compatible(residual, ln_dw, SMALL)


class TestCanFusePair:
    def test_contraction_never_fuses(self):
        c = OpSpec(
            name="mm",
            op_class=OpClass.TENSOR_CONTRACTION,
            inputs=(TensorSpec("x", ("a", "b")), TensorSpec("w", ("b",))),
            outputs=(TensorSpec("y", ("a",)),),
            ispace=IterationSpace(("a",), ("b",)),
            einsum="ab,b->a",
        )
        e = _op("e", ["y"], ["z"], ispace=IterationSpace(("a",)), dims=("a",))
        assert not can_fuse_pair(c, e, SMALL)

    def test_classify_map_chain(self):
        p = _op("p", ["x"], ["t"], ispace=IterationSpace(("a", "b")))
        c = _op("c", ["t"], ["y"], ispace=IterationSpace(("a", "b")))
        assert classify_pattern(p, c, SMALL) is FusionPattern.MAP_CHAIN

    def test_classify_sibling(self):
        p = _op("p", ["x"], ["t"], ispace=IterationSpace(("a", "b")))
        c = _op("c", ["x2"], ["y"], ispace=IterationSpace(("a", "b")))
        assert classify_pattern(p, c, SMALL) is FusionPattern.SIBLING

    def test_classify_reduction_then_map(self):
        p = _op(
            "p", ["x"], ["t"],
            ispace=IterationSpace(("a",), ("b",)),
            op_class=OpClass.STAT_NORMALIZATION,
        )
        c = _op("c", ["t"], ["y"], ispace=IterationSpace(("a",)), dims=("a",))
        # consumer space [a] vs producer [a]/red[b]: reduction extension.
        assert classify_pattern(p, c, SMALL) is FusionPattern.REDUCTION_THEN_MAP


class TestFuseOps:
    def _graph(self):
        g = DataflowGraph("g")
        g.add_input(TensorSpec("x", ("a", "b")))
        g.add_op(_op("f", ["x"], ["t"], ispace=IterationSpace(("a", "b"))))
        g.add_op(_op("g", ["t"], ["u"], ispace=IterationSpace(("a", "b"))))
        g.add_op(_op("h", ["u"], ["y"], ispace=IterationSpace(("a", "b"))))
        return g

    def test_chain_fusion_removes_interior(self):
        g = fuse_ops(self._graph(), ["f", "g", "h"], "fgh", env=SMALL)
        fused = g.op("fgh")
        assert [t.name for t in fused.inputs] == ["x"]
        assert [t.name for t in fused.outputs] == ["y"]
        assert fused.flops(SMALL) == 3 * 32  # members' flop preserved

    def test_partial_fusion_keeps_externally_used(self):
        g = self._graph()
        g.add_op(_op("ext", ["t"], ["z"], ispace=IterationSpace(("a", "b"))))
        fused = fuse_ops(g, ["f", "g"], "fg", env=SMALL)
        names = [t.name for t in fused.op("fg").outputs]
        assert "t" in names  # t is needed by ext
        assert "u" in names

    def test_io_reduction_measured(self):
        g0 = self._graph()
        g1 = fuse_ops(g0, ["f", "g", "h"], "fgh", env=SMALL)
        assert g1.total_io_words(SMALL) < g0.total_io_words(SMALL)

    def test_cycle_through_outside_op_rejected(self):
        g = DataflowGraph("g")
        g.add_input(TensorSpec("x", ("a", "b")))
        g.add_op(_op("f", ["x"], ["t"], ispace=IterationSpace(("a", "b"))))
        g.add_op(_op("mid", ["t"], ["m"], ispace=IterationSpace(("a", "b"))))
        g.add_op(_op("g", ["m"], ["y"], ispace=IterationSpace(("a", "b"))))
        with pytest.raises(FusionError, match="cycle"):
            fuse_ops(g, ["f", "g"], "fg", env=SMALL)

    def test_contraction_in_group_rejected(self):
        g = DataflowGraph("g")
        g.add_input(TensorSpec("x", ("a", "b")))
        g.add_input(TensorSpec("w", ("b",)))
        g.add_op(
            OpSpec(
                name="mm",
                op_class=OpClass.TENSOR_CONTRACTION,
                inputs=(TensorSpec("x", ("a", "b")), TensorSpec("w", ("b",))),
                outputs=(TensorSpec("y", ("a",)),),
                ispace=IterationSpace(("a",), ("b",)),
                einsum="ab,b->a",
            )
        )
        with pytest.raises(FusionError, match="contraction"):
            fuse_ops(g, ["mm"], "f", env=SMALL)

    def test_incompatible_shapes_rejected(self):
        g = DataflowGraph("g")
        g.add_input(TensorSpec("x", ("a", "b")))
        g.add_op(_op("f", ["x"], ["t"], ispace=IterationSpace(("a", "b"))))
        g.add_op(
            OpSpec(
                name="g2",
                op_class=OpClass.ELEMENTWISE,
                inputs=(TensorSpec("t", ("a", "b")),),
                outputs=(TensorSpec("y", ("r",)),),
                ispace=IterationSpace(("r",)),
            )
        )
        with pytest.raises(FusionError, match="incompatible"):
            fuse_ops(g, ["f", "g2"], "fg", env=SMALL)

    def test_result_is_topologically_valid(self):
        g = self._graph()
        g2 = fuse_ops(g, ["g", "h"], "gh", env=SMALL)
        g2.validate()
        assert g2.op_names.index("f") < g2.op_names.index("gh")


class TestPaperKernels:
    def test_encoder_kernel_set_complete(self):
        g = apply_paper_fusion(build_encoder_graph(qkv_fusion="qkv"), ENV)
        labels = {op.kernel_label for op in g.ops if op.kernel_label}
        assert labels == set(FUSED_KERNEL_NAMES) - {"BLNRD1"} | {"BLNRD1"}
        assert len(labels) == 14

    def test_mha_only_gets_subset(self):
        g = apply_paper_fusion(build_mha_graph(qkv_fusion="qkv"), ENV)
        labels = {op.kernel_label for op in g.ops if op.kernel_label}
        assert "AIB" in labels and "SM" in labels and "BS" in labels
        assert "BRD" not in labels  # FFN kernels absent from MHA

    def test_fusion_reduces_encoder_data_movement(self):
        """Sec. VI-C: ~22.91% data-movement reduction (we accept 15-30%)."""
        unfused = build_encoder_graph(qkv_fusion="qkv")
        fused = apply_paper_fusion(unfused, ENV)
        before = unfused.total_io_words(ENV)
        after = fused.total_io_words(ENV)
        reduction = (before - after) / before
        assert 0.15 < reduction < 0.30

    def test_sm_keeps_backward_outputs(self):
        """Table III: SM's outputs are alpha + mask + saved softmax (100.6 Mw)."""
        g = apply_paper_fusion(build_encoder_graph(qkv_fusion="qkv"), ENV)
        sm = g.op("SM")
        assert sm.output_words(ENV) / 1e6 == pytest.approx(100.6, abs=1.0)

    def test_fused_flop_equals_member_flop(self):
        unfused = build_encoder_graph(qkv_fusion="qkv")
        fused = apply_paper_fusion(unfused, ENV)
        assert fused.total_flops(ENV) == pytest.approx(unfused.total_flops(ENV))

    def test_greedy_finds_chain_fusions(self):
        unfused = build_encoder_graph(qkv_fusion="qkv")
        greedy = fuse_greedy(unfused, ENV)
        curated = apply_paper_fusion(unfused, ENV)
        # Greedy discovers the chains; curated additionally merges siblings.
        assert len(greedy) < len(unfused)
        assert len(curated) <= len(greedy)

    def test_idempotent_on_missing_groups(self):
        fwd_only = build_encoder_graph(qkv_fusion="qkv", include_backward=False)
        g = apply_paper_fusion(fwd_only, ENV)
        labels = {op.kernel_label for op in g.ops if op.kernel_label}
        assert "BS" not in labels  # backward kernels skipped
        assert "SM" in labels


class TestAlgebraicFusion:
    def test_table2_ordering(self):
        """Table II: QKV fused < QK fused < unfused, fwd and bwd."""
        res = table2_sweep(ENV)
        assert res["qkv"].forward_us < res["qk"].forward_us < res["unfused"].forward_us
        assert res["qkv"].backward_us <= res["qk"].backward_us <= res["unfused"].backward_us

    def test_kernel_counts(self):
        assert measure_variant("unfused", ENV).forward_kernels == 3
        assert measure_variant("qkv", ENV).forward_kernels == 1

    def test_magnitudes_near_paper(self):
        """Paper forward: 345 / 294 / 275 us; allow 25% band."""
        res = table2_sweep(ENV)
        assert res["unfused"].forward_us == pytest.approx(345, rel=0.25)
        assert res["qkv"].forward_us == pytest.approx(275, rel=0.25)
