"""Structural tests of the MHA / encoder graph builders against the paper's
published flop and IO figures."""

import pytest

from repro.ir.analysis import class_flop_fractions
from repro.ir.dims import bert_large_dims
from repro.ir.operator import OpClass, Stage
from repro.transformer.graph_builder import build_encoder_graph, build_mha_graph

ENV = bert_large_dims()
GFLOP = 2.0**30


class TestEncoderGraph:
    @pytest.mark.parametrize("variant", ["unfused", "qk", "qkv"])
    def test_validates(self, variant):
        g = build_encoder_graph(qkv_fusion=variant)
        g.validate()

    @pytest.mark.parametrize("variant", ["unfused", "qk", "qkv"])
    def test_total_flop_matches_paper(self, variant):
        """Paper Table III: 312.633 Gflop total (algebraic fusion doesn't
        change the arithmetic)."""
        g = build_encoder_graph(qkv_fusion=variant)
        assert g.total_flops(ENV) / GFLOP == pytest.approx(312.6, rel=0.02)

    def test_flop_class_fractions_match_table1(self):
        g = build_encoder_graph(qkv_fusion="qkv")
        fracs = class_flop_fractions(g, ENV)
        assert fracs[OpClass.TENSOR_CONTRACTION] == pytest.approx(0.998, abs=0.002)
        assert fracs[OpClass.STAT_NORMALIZATION] == pytest.approx(0.0017, abs=0.001)
        assert fracs[OpClass.ELEMENTWISE] < 0.002

    def test_forward_only_graph(self):
        g = build_encoder_graph(qkv_fusion="qkv", include_backward=False)
        assert not g.backward_ops()
        # Forward flop is exactly 104 binary Gflop (24+4+4+8+32+32 + eps).
        assert g.total_flops(ENV) / GFLOP == pytest.approx(104.3, abs=1.0)

    def test_backward_has_dx_and_dw_stages(self):
        g = build_encoder_graph(qkv_fusion="qkv")
        stages = {op.stage for op in g.backward_ops()}
        assert Stage.BACKWARD_DX in stages and Stage.BACKWARD_DW in stages

    def test_per_op_flops_match_table3(self):
        g = build_encoder_graph(qkv_fusion="qkv")
        expected = {
            "qkv_proj": 24.0, "qkt": 4.0, "gamma": 4.0, "attn_out": 8.0,
            "linear1": 32.0, "linear2": 32.0,
            "linear2_dx": 32.0, "linear2_dw": 32.0,
            "linear1_dx": 32.0, "linear1_dw": 32.0,
            "attn_out_dx": 8.0, "attn_out_dw": 8.0,
            "gamma_dx1": 4.0, "gamma_dx2": 4.0, "qkt_dx1": 4.0, "qkt_dx2": 4.0,
            "qkv_proj_dx": 24.0, "qkv_proj_dw": 24.0,
        }
        for name, gflop in expected.items():
            assert g.op(name).flops(ENV) / GFLOP == pytest.approx(gflop, abs=0.1), name

    def test_per_op_io_matches_table3(self):
        g = build_encoder_graph(qkv_fusion="qkv")
        cases = {
            # op: (input Mw, output Mw) from Table III
            "qkt": (8.4, 33.5),
            "linear1": (8.4, 16.8),
            "linear2": (20.9, 4.2),
            "gamma_dx2": (37.7, 4.2),
            "qkt_dx1": (37.7, 4.2),
        }
        for name, (in_mw, out_mw) in cases.items():
            op = g.op(name)
            assert op.input_words(ENV) / 1e6 == pytest.approx(in_mw, rel=0.05), name
            assert op.output_words(ENV) / 1e6 == pytest.approx(out_mw, rel=0.05), name

    def test_dropout_masks_are_saved_for_backward(self):
        g = build_encoder_graph(qkv_fusion="qkv")
        for mask in ("alpha_mask", "ffn_drop_mask", "out_drop_mask", "attn_drop_mask"):
            consumers = g.consumers_of(mask)
            assert consumers, mask
            assert all(g.op(c).stage.is_backward for c in consumers), mask

    def test_view_count_depends_on_variant(self):
        views_qkv = sum(1 for op in build_encoder_graph(qkv_fusion="qkv").ops if op.is_view)
        views_unf = sum(1 for op in build_encoder_graph(qkv_fusion="unfused").ops if op.is_view)
        assert views_qkv > 0 and views_unf > 0

    def test_alternate_dims_flops_scale(self):
        """B=96, L=128: 3x the tokens of B=8, L=512 in the linear layers but
        1/4 sequence -> attention flop shrinks."""
        from repro.ir.dims import bert_alternate_dims

        env2 = bert_alternate_dims()
        g = build_encoder_graph(qkv_fusion="qkv")
        lin = g.op("linear1")
        assert lin.flops(env2) / lin.flops(ENV) == pytest.approx(3.0)
        qkt = g.op("qkt")
        assert qkt.flops(env2) / qkt.flops(ENV) == pytest.approx(3.0 / 4.0)


class TestMHAGraph:
    @pytest.mark.parametrize("variant", ["unfused", "qk", "qkv"])
    def test_validates(self, variant):
        build_mha_graph(qkv_fusion=variant).validate()

    def test_forward_flop(self):
        """Fig. 1b: 3x8G projections + 4G QKT + 4G gamma + 8G out = 40G."""
        g = build_mha_graph(qkv_fusion="unfused", include_backward=False)
        assert g.total_flops(ENV) / GFLOP == pytest.approx(40.1, abs=0.5)

    def test_x_read_once_by_stacked_projection(self):
        """Algebraic fusion's point: the qkv variant reads x once."""
        g = build_mha_graph(qkv_fusion="qkv", include_backward=False)
        qkv = g.op("qkv_proj")
        assert qkv.input_words(ENV) / 1e6 == pytest.approx(7.34, abs=0.05)
        g3 = build_mha_graph(qkv_fusion="unfused", include_backward=False)
        three = sum(
            g3.op(n).input_words(ENV) for n in ("q_proj", "k_proj", "v_proj")
        )
        assert three / 1e6 == pytest.approx(15.7, abs=0.2)  # x read 3 times

    def test_backward_produces_all_grads(self):
        g = build_mha_graph(qkv_fusion="unfused")
        produced = set(g.containers)
        for grad in ("d_wq", "d_wk", "d_wv", "d_wo", "d_bq", "d_bk", "d_bv",
                     "d_bo", "d_x"):
            assert grad in produced, grad
