"""Smoke tests for the report formatting helpers (rendered text quality)."""

import pytest

from repro.analysis.report import (
    format_framework_table,
    format_table1,
    format_table2,
)
from repro.analysis.tables import Table1Row
from repro.ir.operator import OpClass


class TestFormatTable1:
    def test_percentages_rendered(self):
        rows = [
            Table1Row(OpClass.TENSOR_CONTRACTION, 0.998, 0.61),
            Table1Row(OpClass.STAT_NORMALIZATION, 0.0017, 0.255),
            Table1Row(OpClass.ELEMENTWISE, 0.0003, 0.135),
        ]
        text = format_table1(rows)
        assert "99.80" in text
        assert "61.0" in text
        lines = text.splitlines()
        assert len(lines) == 4  # header + 3 classes


class TestFormatTable2:
    def test_rows_and_units(self):
        data = {
            "forward": {"unfused": 345.0, "qk": 294.0, "qkv": 275.0},
            "backward": {"unfused": 342.0, "qk": 312.0, "qkv": 291.0},
        }
        text = format_table2(data)
        assert "345" in text and "291" in text
        assert "(us)" in text


class TestFormatFrameworkTable:
    def test_columns_align_with_frameworks(self):
        data = {
            "PyTorch": {"forward_ms": 3.45, "backward_ms": 5.69},
            "Ours": {"forward_ms": 2.63, "backward_ms": 4.38},
        }
        text = format_framework_table(data)
        assert "PyTorch" in text and "Ours" in text
        assert "forward_ms" in text
        assert "3.45" in text and "4.38" in text

    def test_missing_key_rendered_as_nan(self):
        data = {
            "A": {"x": 1.0},
            "B": {},
        }
        text = format_framework_table(data)
        assert "nan" in text
