"""The observability layer: spans, propagation, exporters, Prometheus.

Covers the tentpole contracts end to end at tier-1 scale:

* traceparent format/parse round trips, with malformed headers treated
  as absent (propagation is advisory — it must never fail a request);
* span-tree reconstruction across contextvar nesting, explicit thread
  re-parenting, and real worker *subprocesses* shipping spans back;
* the traceparent header riding a real client→daemon HTTP hop so both
  sides land in one connected tree;
* Prometheus text exposition parsed line by line, histogram bucket
  boundary semantics (``le`` inclusive), and ``Accept`` negotiation on
  ``GET /metrics``;
* zero-cost-when-off invariants: no contextvar is ever set, the same
  shared ``NullSpan`` is returned everywhere.
"""

from __future__ import annotations

import json
import multiprocessing
import re
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import obs
from repro.obs.export import slowest_spans, to_chrome_trace, trace_tree
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_S,
    MetricsRegistry,
    relabel_exposition,
    wants_prometheus,
)
from repro.obs.trace import (
    BUFFER_SPANS,
    NullSpan,
    NullTracer,
    Tracer,
    format_traceparent,
    parse_traceparent,
)
from repro.service import TuningClient, TuningService
from repro.service.metrics import ServiceMetrics
from repro.service.server import serve_background


@pytest.fixture
def tracer():
    """A fresh enabled process tracer; the env default is restored after."""
    installed = obs.set_tracing(True)
    installed.clear()
    yield installed
    obs.set_tracing(None)


@pytest.fixture
def no_tracing():
    """Tracing explicitly off (whatever the ambient environment says)."""
    obs.set_tracing(False)
    yield
    obs.set_tracing(None)


# ---------------------------------------------------------------------------
# traceparent
# ---------------------------------------------------------------------------

class TestTraceparent:
    def test_round_trip(self):
        trace_id, span_id = "0af7651916cd43dd8448eb211c80319c", "b7ad6b7169203331"
        header = format_traceparent(trace_id, span_id)
        assert header == f"00-{trace_id}-{span_id}-01"
        assert parse_traceparent(header) == (trace_id, span_id)
        assert parse_traceparent("  " + header + " \n") == (trace_id, span_id)

    @pytest.mark.parametrize(
        "header",
        [
            None,
            "",
            "00-abc-def-01",  # wrong field lengths
            "00-" + "0" * 32 + "-b7ad6b7169203331-01",  # all-zero trace id
            "00-0af7651916cd43dd8448eb211c80319c-" + "0" * 16 + "-01",
            "ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
            "00-0af7651916cd43dd8448eb211c80319z-b7ad6b7169203331-01",  # hex
            "0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",  # 3 parts
            "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-xx",
        ],
    )
    def test_malformed_is_absent_not_an_error(self, header):
        assert parse_traceparent(header) is None

    def test_span_on_malformed_parent_starts_a_fresh_root(self, tracer):
        with tracer.span("root", parent="garbage") as sp:
            assert sp.parent_id is None
            assert len(sp.trace_id) == 32


# ---------------------------------------------------------------------------
# span nesting and tree reconstruction
# ---------------------------------------------------------------------------

class TestSpanTree:
    def test_contextvar_nesting(self, tracer):
        with obs.span("root") as root:
            assert obs.current_span() is root
            assert obs.current_traceparent() == root.traceparent()
            with obs.span("child") as child:
                assert child.trace_id == root.trace_id
                assert child.parent_id == root.span_id
                with obs.span("grandchild") as grand:
                    assert grand.parent_id == child.span_id
            assert obs.current_span() is root
        assert obs.current_span() is None

        records = tracer.trace(root.trace_id)
        assert [r["name"] for r in records] == ["grandchild", "child", "root"]
        tree = trace_tree(records)
        assert tree["connected"] is True
        assert tree["roots"][0]["name"] == "root"
        assert tree["roots"][0]["children"][0]["name"] == "child"

    def test_explicit_none_parent_forces_new_root(self, tracer):
        with obs.span("outer") as outer:
            with obs.span("detached", parent=None) as detached:
                assert detached.trace_id != outer.trace_id
                assert detached.parent_id is None

    def test_attrs_events_and_error_status(self, tracer):
        with pytest.raises(RuntimeError):
            with obs.span("failing", endpoint="/x") as sp:
                obs.set_attr("resolve.tier", "l1")
                obs.add_event("retry", worker="w1", attempt=2)
                raise RuntimeError("boom")
        (rec,) = tracer.trace(sp.trace_id)
        assert rec["status"] == "error"
        assert rec["attrs"]["endpoint"] == "/x"
        assert rec["attrs"]["resolve.tier"] == "l1"
        assert "RuntimeError" in rec["attrs"]["error"]
        (event,) = rec["events"]
        assert event["name"] == "retry"
        assert event["attrs"] == {"worker": "w1", "attempt": 2}

    def test_thread_pool_reparenting(self, tracer):
        """Contextvars don't cross executors; explicit parents do."""
        with obs.span("batch") as batch:
            def job(i: int) -> None:
                # No ambient span in the pool thread …
                assert obs.current_span() is None
                # … so re-parent explicitly, the way the coordinator does.
                with obs.span("job", parent=batch, idx=i):
                    pass

            with ThreadPoolExecutor(max_workers=4) as pool:
                list(pool.map(job, range(8)))
        records = tracer.trace(batch.trace_id)
        tree = trace_tree(records)
        assert tree["connected"] is True
        assert tree["spans"] == 9
        assert len(tree["roots"][0]["children"]) == 8

    def test_subprocess_spans_ship_back_and_reconnect(self, tracer):
        """The scheduler contract: worker processes run a private tracer
        whose finished spans the parent ingests into one tree."""
        with obs.span("parent") as parent:
            ctx = obs.current_traceparent()
            mp = multiprocessing.get_context("fork")
            with mp.Pool(2) as pool:
                shipped = pool.map(_subprocess_job, [(ctx, i) for i in range(3)])
        for records in shipped:
            tracer.ingest(records)
        records = tracer.trace(parent.trace_id)
        tree = trace_tree(records)
        assert tree["connected"] is True
        assert tree["spans"] == 1 + 2 * 3  # parent + (job + nested) * 3
        jobs = tree["roots"][0]["children"]
        assert {j["name"] for j in jobs} == {"job"}
        assert all(j["pid"] != tree["roots"][0]["pid"] for j in jobs)
        assert all(j["children"][0]["name"] == "nested" for j in jobs)

    def test_ring_buffer_ages_out_oldest(self):
        small = Tracer(buffer_spans=4)
        for i in range(10):
            with small.span(f"s{i}", parent=None):
                pass
        names = [r["name"] for r in small.finished()]
        assert names == ["s6", "s7", "s8", "s9"]
        assert BUFFER_SPANS >= 1024  # the real ring holds whole batches

    def test_ingest_filters_malformed_records(self, tracer):
        tracer.ingest(
            [
                {"trace_id": "t", "span_id": "s", "name": "ok"},
                {"trace_id": "t"},  # no span id
                "not a dict",
                None,
            ]
        )
        assert [r["name"] for r in tracer.trace("t")] == ["ok"]


def _subprocess_job(args: tuple) -> list[dict]:
    """Pool target for the subprocess shipping test (module-level: picklable)."""
    ctx, idx = args
    from repro.obs import trace as _trace

    tracer = _trace.Tracer()
    previous = _trace.get_tracer()
    _trace._TRACER = tracer
    try:
        with tracer.span("job", parent=ctx, idx=idx):
            with _trace.get_tracer().span("nested"):
                pass
    finally:
        _trace._TRACER = previous
    return tracer.finished()


# ---------------------------------------------------------------------------
# zero-cost-when-off
# ---------------------------------------------------------------------------

class TestDisabled:
    def test_null_singletons_and_no_ambient_span(self, no_tracing):
        assert isinstance(obs.get_tracer(), NullTracer)
        assert obs.tracing_enabled() is False
        sp = obs.span("anything", key="value")
        assert isinstance(sp, NullSpan)
        assert sp is obs.span("something else")  # one shared instance
        with sp:
            # The contextvar is never set: ambient helpers see nothing.
            assert obs.current_span() is None
            assert obs.current_traceparent() is None
            obs.add_event("ignored")
            obs.set_attr("ignored", 1)
        assert sp.traceparent() is None
        assert obs.get_tracer().finished() == []

    def test_reenabling_installs_a_live_tracer(self, no_tracing):
        obs.set_tracing(True)
        try:
            with obs.span("live") as sp:
                pass
            assert obs.get_tracer().trace(sp.trace_id)
        finally:
            obs.set_tracing(False)


# ---------------------------------------------------------------------------
# structured span log
# ---------------------------------------------------------------------------

def test_span_log_writes_one_json_line_per_close(tmp_path):
    log = tmp_path / "spans.jsonl"
    obs.set_tracing(True, log_path=str(log))
    try:
        with obs.span("logged", endpoint="/x") as sp:
            obs.add_event("marker")
    finally:
        obs.set_tracing(None)
    lines = log.read_text().splitlines()
    assert len(lines) == 1
    rec = json.loads(lines[0])
    assert rec["name"] == "logged"
    assert rec["span_id"] == sp.span_id
    assert rec["attrs"] == {"endpoint": "/x"}
    assert rec["events"][0]["name"] == "marker"


# ---------------------------------------------------------------------------
# exporters
# ---------------------------------------------------------------------------

class TestExport:
    def _records(self, tracer):
        with obs.span("root", service="tuningd") as root:
            with obs.span("child"):
                obs.add_event("store.hit", digest="d1")
        return root.trace_id, tracer.trace(root.trace_id)

    def test_trace_tree_flags_orphans_and_dedups(self, tracer):
        trace_id, records = self._records(tracer)
        # A duplicate of the child with a shorter duration: collapsed away.
        dup = dict(records[0], dur_us=0.0)
        tree = trace_tree(records + [dup])
        assert tree["trace_id"] == trace_id
        assert tree["connected"] is True and tree["spans"] == 2

        # Drop the root: the child's parent never arrives -> disconnected.
        orphan_tree = trace_tree([r for r in records if r["name"] == "child"])
        assert orphan_tree["connected"] is False
        assert orphan_tree["orphans"]

    def test_chrome_trace_events(self, tracer):
        _, records = self._records(tracer)
        doc = to_chrome_trace(records)
        events = doc["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        meta = [e for e in events if e["ph"] == "M"]
        assert {e["name"] for e in complete} == {"root", "child"}
        assert all(e["dur"] >= 1 for e in complete)
        assert [i["name"] for i in instants] == ["store.hit"]
        assert any(
            m["name"] == "process_name" and m["args"]["name"] == "tuningd"
            for m in meta
        )
        json.dumps(doc)  # must serialize cleanly for Perfetto

    def test_slowest_spans_ranked_by_duration(self):
        records = [
            {"name": "fast", "dur_us": 10.0, "span_id": "a"},
            {"name": "slow", "dur_us": 5000.0, "span_id": "b"},
            {"name": "mid", "dur_us": 100.0, "span_id": "c"},
        ]
        top = slowest_spans(records, n=2)
        assert [s["name"] for s in top] == ["slow", "mid"]


# ---------------------------------------------------------------------------
# Prometheus exposition
# ---------------------------------------------------------------------------

_SAMPLE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+$"
)


def _parse_exposition(text: str) -> dict[str, float]:
    """Parse line by line, asserting 0.0.4 format shape; name{labels} -> value."""
    samples: dict[str, float] = {}
    typed: set[str] = set()
    for line in text.splitlines():
        assert line == line.strip() and line, f"stray whitespace: {line!r}"
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ")
            assert kind in ("counter", "gauge", "histogram"), line
            typed.add(name)
            continue
        assert _SAMPLE.match(line), f"unparseable sample line: {line!r}"
        key, raw = line.rsplit(" ", 1)
        value = float(raw.replace("+Inf", "inf"))
        assert key not in samples, f"duplicate sample {key!r}"
        samples[key] = value
        base = key.split("{", 1)[0]
        stripped = re.sub(r"_(bucket|sum|count)$", "", base)
        assert base in typed or stripped in typed, f"untyped sample {key!r}"
    return samples


class TestPrometheus:
    def test_registry_renders_all_types(self):
        reg = MetricsRegistry()
        c = reg.counter("jobs_total", "jobs", ("kind",))
        c.inc(3, kind="remote")
        c.preset("local")
        g = reg.gauge("inflight", "in-flight requests")
        g.inc(2)
        g.dec()
        h = reg.histogram("lat_seconds", "latency", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(99.0)
        reg.gauge_callback("uptime_seconds", "uptime", lambda: 12.5)

        samples = _parse_exposition(reg.render())
        assert samples['jobs_total{kind="remote"}'] == 3
        assert samples['jobs_total{kind="local"}'] == 0
        assert samples["inflight"] == 1
        assert samples['lat_seconds_bucket{le="0.1"}'] == 1
        assert samples['lat_seconds_bucket{le="1.0"}'] == 2
        assert samples['lat_seconds_bucket{le="+Inf"}'] == 3
        assert samples["lat_seconds_count"] == 3
        assert samples["lat_seconds_sum"] == pytest.approx(99.55)
        assert samples["uptime_seconds"] == 12.5

    def test_histogram_bucket_boundaries_are_le_inclusive(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", "boundaries", buckets=(1.0, 2.0, 4.0))
        for v in (1.0, 2.0, 4.0):  # exactly on each bound
            h.observe(v)
        snap = h.snapshot_child()
        assert snap["counts"] == [1, 2, 3]  # cumulative; bound-inclusive
        assert snap["inf"] == 3
        h.observe(4.0000001)
        assert h.snapshot_child()["inf"] == 4
        assert h.snapshot_child()["counts"] == [1, 2, 3]

    def test_histogram_rejects_bad_buckets(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.histogram("a", "x", buckets=())
        with pytest.raises(ValueError):
            reg.histogram("b", "x", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            reg.histogram("c", "x", buckets=(1.0, 1.0))

    def test_counter_invariants(self):
        reg = MetricsRegistry()
        c = reg.counter("n_total", "n")
        with pytest.raises(ValueError):
            c.inc(-1)
        c.inc()
        assert c.value() == 1 and isinstance(c.value(), int)
        labeled = reg.counter("m_total", "m", ("tier",))
        with pytest.raises(ValueError):
            labeled.inc(1, wrong="l1")
        with pytest.raises(ValueError):  # type/label conflicts are errors
            reg.gauge("n_total", "not a counter")
        with pytest.raises(ValueError):
            reg.counter("m_total", "m", ("other",))
        with pytest.raises(ValueError):
            reg.counter("bad name", "x")

    @pytest.mark.parametrize(
        ("accept", "expected"),
        [
            (None, False),
            ("", False),
            ("*/*", False),
            ("application/json", False),
            ("text/plain", True),
            ("text/plain; version=0.0.4", True),
            ("application/openmetrics-text; version=1.0.0, */*", True),
            ("application/json, text/plain;q=0.5", True),
            ("TEXT/PLAIN", True),
        ],
    )
    def test_accept_negotiation(self, accept, expected):
        assert wants_prometheus(accept) is expected

    def test_relabel_exposition(self):
        body = (
            "# HELP a_total help\n# TYPE a_total counter\n"
            'a_total{x="1"} 5\nb 2\ngarbage line with spaces only\n'
        )
        out = relabel_exposition(body, worker="w1")
        assert out == 'a_total{worker="w1",x="1"} 5\nb{worker="w1"} 2\n'

    def test_service_metrics_exposition_covers_every_counter(self):
        m = ServiceMetrics()
        m.record_request("/v1/optimize", 0.02)
        m.record_error("/v1/optimize")
        m.record_tier("l1")
        m.record_response("binary")
        m.record_registry("registered")
        m.record_fleet("quarantine")
        m.record_optimize_breakdown(sweep_s=0.1, select_s=0.02)
        samples = _parse_exposition(m.prometheus())

        snap = m.snapshot()
        # Every JSON tier/kind/event count is present in the text form —
        # including untouched vocabulary entries, preset to zero.
        for tier, n in snap["resolve_tiers"].items():
            assert samples[f'repro_resolve_tier_total{{tier="{tier}"}}'] == n
        for kind, n in snap["responses"].items():
            assert samples[f'repro_responses_total{{kind="{kind}"}}'] == n
        for event, n in snap["registry"]["events"].items():
            assert samples[f'repro_registry_events_total{{event="{event}"}}'] == n
        for event, n in snap["fleet"]["events"].items():
            assert samples[f'repro_fleet_events_total{{event="{event}"}}'] == n
        assert (
            samples['repro_requests_total{endpoint="/v1/optimize"}']
            == snap["requests"]["/v1/optimize"]
        )
        assert samples['repro_errors_total{endpoint="/v1/optimize"}'] == 1
        assert samples["repro_optimize_runs_total"] == 1
        assert samples['repro_optimize_phase_ms_total{phase="sweep"}'] == (
            pytest.approx(snap["optimize_breakdown"]["sweep_ms_total"])
        )
        assert samples[
            'repro_request_latency_seconds_bucket{endpoint="/v1/optimize",le="0.025"}'
        ] == 1
        assert samples["repro_inflight_requests"] == 0
        assert samples["repro_uptime_seconds"] >= 0


# ---------------------------------------------------------------------------
# one real HTTP hop: client -> daemon
# ---------------------------------------------------------------------------

class TestTracedHop:
    def test_traceparent_rides_the_wire_and_connects(self, tracer):
        with serve_background(TuningService(store=None, registry=None)) as url:
            client = TuningClient(url)
            with obs.span("client.request", service="test") as root:
                client.healthz()
            served = client.trace(root.trace_id)

        assert served["trace_id"] == root.trace_id
        assert served["connected"] is True
        spans = served["spans"]
        server_span = next(s for s in spans if s["name"] == "server/healthz")
        assert server_span["parent_id"] == root.span_id
        assert server_span["attrs"]["service"] == "tuningd"
        assert server_span["attrs"]["http.status"] == 200

    def test_unknown_trace_is_404(self, tracer):
        from repro.service import ServiceError

        with serve_background(TuningService(store=None, registry=None)) as url:
            client = TuningClient(url)
            with pytest.raises(ServiceError) as excinfo:
                client.trace("f" * 32)
            assert excinfo.value.status == 404

    def test_metrics_accept_negotiation_over_http(self):
        with serve_background(TuningService(store=None, registry=None)) as url:
            client = TuningClient(url)
            client.healthz()
            as_json = client.metrics()
            as_text = client.metrics_prometheus()
        assert isinstance(as_json, dict) and "requests" in as_json
        samples = _parse_exposition(as_text)
        assert samples['repro_requests_total{endpoint="/healthz"}'] >= 1
