"""E2E + chaos: staged cost-model rollout against real daemons.

The CI ``calibration-rollout-smoke`` job runs this file.  It drives a
spawned ``repro serve`` through the full lifecycle — ``repro report``
submits the Table III corpus, ``repro rollout --propose`` fits and
shadow-gates a candidate, live sweep traffic dual-scores the canary, and
promotion flips the served cost-model version — then proves the two
safety claims: a regressing candidate is auto-rolled-back while the
active model answers every request, and a daemon killed mid-promotion
(the ``crash-rollout`` fault, both sides of the commit point) restarts
serving *exactly one* of {prior, promoted}.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
from pathlib import Path

import pytest

from repro.baselines.frameworks import framework_graph
from repro.baselines.policy import OURS
from repro.hardware.params import DEFAULT_PARAMS, DEFAULT_VERSION
from repro.ir.dims import bert_large_dims
from repro.service.client import ServiceError, TuningClient
from repro.service.fleet.faults import KILL_EXIT_CODE

pytestmark = pytest.mark.slow

REPO = Path(__file__).resolve().parent.parent
ENV = bert_large_dims(2, 128)
CAP = 60

#: Non-view ops from the paper's own fused graph: canary traffic.
SWEEP_OPS = [op for op in framework_graph(OURS, ENV).ops if not op.is_view]


def _spawn(
    store_dir,
    *,
    fault_spec=None,
    fraction="1.0",
    min_samples="2",
    max_divergence="0.5",
):
    """One ``repro serve`` with deterministic canary knobs."""
    env = dict(
        os.environ,
        PYTHONPATH=str(REPO / "src"),
        PYTHONUNBUFFERED="1",
        REPRO_CANARY_FRACTION=fraction,
        REPRO_CANARY_MIN_SAMPLES=min_samples,
        REPRO_CANARY_MAX_DIVERGENCE=max_divergence,
    )
    env.pop("REPRO_FAULT_SPEC", None)
    if fault_spec:
        env["REPRO_FAULT_SPEC"] = fault_spec
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0",
            "--sweep-store", str(store_dir),
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    banner = proc.stdout.readline()
    match = re.search(r"http://[\d.]+:(\d+)", banner)
    assert match, f"no listen address in banner: {banner!r}"
    client = TuningClient(f"http://127.0.0.1:{match.group(1)}")
    client.wait_until_ready(timeout=30)
    return proc, client


def _kill(proc):
    if proc.poll() is None:
        proc.kill()
        proc.wait(timeout=10)


def _cli(*argv):
    """Run one ``repro`` CLI command; returns (exit code, output)."""
    env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
    env.pop("REPRO_FAULT_SPEC", None)
    res = subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    return res.returncode, res.stdout + res.stderr


def test_report_fit_canary_promote_end_to_end(tmp_path):
    proc, client = _spawn(tmp_path / "store")
    try:
        # 1. Feed the paper's Table III measurements through the CLI.
        code, out = _cli("report", "--url", client.base_url)
        assert code == 0, out
        assert "accepted 64 record(s)" in out

        # 2. Fit + shadow-gate a candidate through the CLI.
        code, out = _cli("rollout", "--propose", "--url", client.base_url)
        assert code == 0, out
        status = client.rollout_status()["rollout"]
        assert status["phase"] == "canary"
        prov = status["candidate"]["provenance"]
        assert prov["fitted_error"] < prov["base_error"]

        # 3. The active model still serves while the canary is scored.
        health = client.healthz()
        assert health["cost_model_version"] == DEFAULT_VERSION
        assert health["rollout_phase"] == "canary"

        # 4. Live sweeps dual-score the candidate; min_samples=2 promotes.
        for op in SWEEP_OPS:
            client.sweep(op, ENV, cap=CAP)
            if client.healthz()["rollout_phase"] == "idle":
                break
        health = client.healthz()
        assert health["rollout_phase"] == "idle"
        promoted = health["cost_model_version"]
        assert isinstance(promoted, str) and promoted.startswith("1-cal-")

        counts = client.metrics()["calibration"]["events"]
        assert counts["promote"] == 1 and counts["rollback"] == 0
        assert counts["canary_request"] >= 2

        # 5. Post-promotion sweeps carry the promoted version on the wire.
        payload = client.sweep(SWEEP_OPS[0], ENV, cap=CAP)
        assert payload["cost_model_version"] == promoted
    finally:
        _kill(proc)

    # 6. A restart on the same store recovers the promoted model.
    proc, client = _spawn(tmp_path / "store")
    try:
        assert client.healthz()["cost_model_version"] == promoted
    finally:
        _kill(proc)


def test_regressing_candidate_is_auto_rolled_back(tmp_path):
    # min_samples high + tight divergence budget: the bad candidate can
    # only leave canary through the rollback door.
    proc, client = _spawn(
        tmp_path / "store", min_samples="50", max_divergence="0.05"
    )
    try:
        code, out = _cli("report", "--url", client.base_url)
        assert code == 0, out
        # Inject an obviously-wrong candidate, skipping the shadow gate
        # the way an operator pushing hand-edited params would.
        bad = {
            **DEFAULT_PARAMS.to_wire(),
            "gemm_mem_eff": 0.001,
            "vectorized_eff": 0.001,
        }
        client.calibrate_propose(params=bad, force=True)
        assert client.healthz()["rollout_phase"] == "canary"

        for op in SWEEP_OPS:
            client.sweep(op, ENV, cap=CAP)
            health = client.healthz()
            # Invariant: the candidate never serves — the active version
            # answers every request right up to (and after) rollback.
            assert health["cost_model_version"] == DEFAULT_VERSION
            if health["rollout_phase"] == "idle":
                break
        assert client.healthz()["rollout_phase"] == "idle"

        counts = client.metrics()["calibration"]["events"]
        assert counts["rollback"] == 1 and counts["promote"] == 0
        assert counts["canary_regression"] >= 1
        status = client.rollout_status()["rollout"]
        assert status["candidate"] is None
        assert status["served_version"] == DEFAULT_VERSION
    finally:
        _kill(proc)


def _drive_until_crash(client):
    """Send canary traffic until the daemon dies mid-promotion."""
    for op in SWEEP_OPS:
        try:
            client.sweep(op, ENV, cap=CAP)
        except ServiceError:
            return True
    return False


@pytest.mark.parametrize(
    ("fault_spec", "expect_promoted"),
    [
        ("crash-rollout", False),  # default: dies just before the commit
        ("crash-rollout:path=rollout-post-commit", True),
    ],
    ids=["pre-commit", "post-commit"],
)
def test_kill_mid_promotion_recovers_to_exactly_one_side(
    tmp_path, fault_spec, expect_promoted
):
    proc, client = _spawn(
        tmp_path / "store", fault_spec=fault_spec, min_samples="1"
    )
    try:
        code, out = _cli("report", "--url", client.base_url)
        assert code == 0, out
        client.calibrate_propose()
        candidate = client.rollout_status()["rollout"]["candidate"]["version"]
        assert _drive_until_crash(client), "daemon survived the kill fault"
        assert proc.wait(timeout=30) == KILL_EXIT_CODE
    finally:
        _kill(proc)

    # Recovery must land on exactly one side of the commit point: the
    # prior model (crash before the state-file rename) or the promoted
    # one (crash after) — never anything in between.
    proc, client = _spawn(tmp_path / "store")
    try:
        health = client.healthz()
        if expect_promoted:
            assert health["cost_model_version"] == candidate
            assert health["rollout_phase"] == "idle"
        else:
            assert health["cost_model_version"] == DEFAULT_VERSION
            # The canary (and its candidate) survive to finish later.
            assert health["rollout_phase"] == "canary"
            status = client.rollout_status()["rollout"]
            assert status["candidate"]["version"] == candidate
    finally:
        _kill(proc)
