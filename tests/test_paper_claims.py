"""Integration tests for the paper's headline claims (fast CI versions).

The benchmark suite regenerates the full tables; these tests assert the
same qualitative claims with smaller sweep caps so the whole check runs in
tens of seconds.  Every claim references its section in the paper.
"""

import pytest

from repro.analysis.tables import (
    data_movement_reduction_report,
    table1,
    table2,
    table5,
)
from repro.baselines.frameworks import cudnn_mha_times, framework_schedule
from repro.baselines.policy import OURS, PYTORCH
from repro.hardware.cost_model import CostModel
from repro.ir.dims import bert_large_dims
from repro.ir.operator import OpClass

ENV = bert_large_dims()
COST = CostModel()
CAP = 250


@pytest.fixture(scope="module")
def t5():
    return table5(ENV, COST, cap=CAP)


class TestHeadlineClaims:
    def test_training_is_memory_bound(self):
        """Sec. I: contractions are >99% of flop but only ~61% of runtime;
        over a third of the runtime is memory-bound operators."""
        rows = {r.op_class: r for r in table1(ENV, COST)}
        tc = rows[OpClass.TENSOR_CONTRACTION]
        assert tc.flop_fraction > 0.995
        assert tc.runtime_fraction < 0.70
        assert (1 - tc.runtime_fraction) > 1 / 3

    def test_speedup_over_pytorch(self, t5):
        """Sec. I / Table V: at least 1.30x over general-purpose frameworks
        (we accept 1.15-1.6)."""
        s = t5["PyTorch"]["total_ms"] / t5["Ours"]["total_ms"]
        assert 1.15 < s < 1.6

    def test_speedup_over_deepspeed(self, t5):
        """Sec. I / Table V: 1.08x over the manually tuned DeepSpeed."""
        s = t5["DeepSpeed"]["total_ms"] / t5["Ours"]["total_ms"]
        assert 1.0 < s < 1.25

    def test_speedup_over_tf_xla(self, t5):
        """Table V: 1.20x over TensorFlow+XLA."""
        s = t5["TF+XLA"]["total_ms"] / t5["Ours"]["total_ms"]
        assert 1.05 < s < 1.4

    def test_data_movement_reduction(self):
        """Sec. VI-C: data movement reduced by ~22.91% (we accept 15-30%)."""
        r = data_movement_reduction_report(ENV)
        assert 0.15 < r["reduction_fraction"] < 0.30

    def test_algebraic_fusion_ordering(self):
        """Table II: full QKV stacking is the fastest projection scheme."""
        data = table2(ENV, COST)
        assert data["forward"]["qkv"] == min(data["forward"].values())

    def test_cudnn_pathology(self):
        """Sec. VI-B: cuDNN MHA is orders of magnitude slower."""
        c = cudnn_mha_times(ENV, COST)
        ours = framework_schedule(OURS, ENV, COST, model="mha", cap=CAP)
        assert c.forward_us > 30 * ours.total_us / 2

    def test_mue_correlates_with_intensity(self):
        """Sec. IV-B: MUE and the theoretical flop/IO ratio are correlated
        across operators (memory-bound ops score high MUE, GEMMs low)."""
        from repro.hardware.roofline import graph_roofline

        ours = framework_schedule(OURS, ENV, COST, model="encoder", cap=CAP)
        mue_by_name = {k.name: k.mue for k in ours.kernels}
        points = {
            p.op_name: p for p in graph_roofline(ours.graph, ENV)
        }
        mem_bound_mues = [
            mue_by_name[n] for n, p in points.items() if p.memory_bound
            and points[n].op_class is not OpClass.TENSOR_CONTRACTION
        ]
        big_gemm_mues = [
            mue_by_name[n]
            for n, p in points.items()
            if not p.memory_bound
        ]
        # Median memory-bound kernel scores well above the median GEMM.
        mem_bound_mues.sort()
        big_gemm_mues.sort()
        assert mem_bound_mues[len(mem_bound_mues) // 2] > 2 * big_gemm_mues[len(big_gemm_mues) // 2]

    def test_fusion_never_changes_results(self):
        """Sec. II-C: transformations change data movement, not computation.
        (The full bit-identical check lives in test_runtime.py; this is the
        analytic counterpart: flop is invariant, IO strictly drops.)"""
        from repro.fusion.encoder_kernels import apply_paper_fusion
        from repro.transformer.graph_builder import build_encoder_graph

        g = build_encoder_graph(qkv_fusion="qkv")
        f = apply_paper_fusion(g, ENV)
        assert f.total_flops(ENV) == pytest.approx(g.total_flops(ENV))
        assert f.total_io_bytes(ENV) < g.total_io_bytes(ENV)

    def test_pytorch_overheads_are_in_memory_bound_ops(self):
        """Sec. VI-C: 'PyTorch ... has higher overheads for other
        operators' — its gap to Ours concentrates outside contractions."""
        ours = framework_schedule(OURS, ENV, COST, model="encoder", cap=CAP)
        pt = framework_schedule(PYTORCH, ENV, COST, model="encoder", cap=CAP)

        def split(schedule):
            tc = sum(k.time_us for k in schedule.kernels
                     if k.op.op_class is OpClass.TENSOR_CONTRACTION)
            other = sum(k.time_us for k in schedule.kernels
                        if k.op.op_class is not OpClass.TENSOR_CONTRACTION)
            return tc, other

        pt_tc, pt_other = split(pt)
        ours_tc, ours_other = split(ours)
        gap_tc = pt_tc - ours_tc
        gap_other = pt_other - ours_other
        assert gap_other > gap_tc
