"""Tests for the batched sweep engine: memoization, laziness, cache versioning."""

import json

import pytest

from repro.autotuner.cache import CacheMismatch, load_sweep, sweep_from_dict, sweep_to_dict
from repro.autotuner.tuner import (
    ConfigMeasurement,
    SweepResult,
    sweep_graph,
    sweep_op,
    sweep_op_reference,
)
from repro.engine import clear_sweep_memo, sweep_memo_stats
from repro.engine.sweep import PreSortedMeasurements
from repro.engine.sweep import sweep_op as engine_sweep_op
from repro.hardware.cost_model import COST_MODEL_VERSION, CostModel, KernelTime
from repro.ir.dims import bert_large_dims, small_test_dims
from repro.ir.tensor import TensorSpec
from repro.layouts.config import OpConfig
from repro.layouts.layout import Layout
from repro.ops.contraction import contraction_spec
from repro.ops.elementwise import bias_spec
from repro.transformer.graph_builder import build_encoder_graph

ENV = bert_large_dims()
COST = CostModel()


def _bias_op():
    x = TensorSpec("qq", ("p", "h", "b", "j"))
    return bias_spec("aib", x, ("p", "h"), "out")


class TestEngineIdentity:
    def test_kernel_sweep_bit_identical(self):
        op = _bias_op()
        ref = sweep_op_reference(op, ENV, COST, cap=300)
        eng = engine_sweep_op(op, ENV, COST, cap=300, memo=False)
        assert eng.num_configs == ref.num_configs
        for a, b in zip(ref.measurements, eng.measurements):
            assert a.config == b.config
            assert a.time == b.time

    def test_contraction_sweep_bit_identical(self):
        op = contraction_spec("lin", "ui,ibj->ubj", ("w", "x"), "y")
        ref = sweep_op_reference(op, ENV, COST)
        eng = engine_sweep_op(op, ENV, COST, memo=False)
        assert eng.num_configs == ref.num_configs
        for a, b in zip(ref.measurements, eng.measurements):
            assert a.config == b.config
            assert a.time == b.time

    def test_public_sweep_op_routes_through_engine(self):
        op = _bias_op()
        s = sweep_op(op, ENV, COST, cap=100)
        assert isinstance(s.measurements, PreSortedMeasurements)

    def test_sweep_graph_covers_kernels(self):
        g = build_encoder_graph(qkv_fusion="qkv", include_backward=False)
        sweeps = sweep_graph(g, ENV, COST, cap=50)
        assert set(sweeps) == {op.name for op in g.ops if not op.is_view}


class TestMemo:
    def test_memo_returns_same_object(self):
        clear_sweep_memo()
        op = _bias_op()
        first = engine_sweep_op(op, ENV, COST, cap=120)
        second = engine_sweep_op(op, ENV, COST, cap=120)
        assert first is second
        stats = sweep_memo_stats()
        assert stats["hits"] >= 1 and stats["size"] >= 1

    def test_memo_distinguishes_env(self):
        clear_sweep_memo()
        op = _bias_op()
        a = engine_sweep_op(op, ENV, COST, cap=120)
        b = engine_sweep_op(op, small_test_dims(), COST, cap=120)
        assert a is not b

    def test_memo_distinguishes_kernel_cap(self):
        clear_sweep_memo()
        op = _bias_op()
        a = engine_sweep_op(op, ENV, COST, cap=60)
        b = engine_sweep_op(op, ENV, COST, cap=120)
        assert a is not b and a.num_configs != b.num_configs

    def test_contraction_memo_ignores_cap(self):
        clear_sweep_memo()
        op = contraction_spec("lin", "ui,ibj->ubj", ("w", "x"), "y")
        a = engine_sweep_op(op, ENV, COST, cap=60)
        b = engine_sweep_op(op, ENV, COST, cap=2000)
        assert a is b  # contraction sweeps are exhaustive; cap never applies


class TestLaziness:
    def test_best_materializes_one_measurement(self):
        op = _bias_op()
        s = engine_sweep_op(op, ENV, COST, cap=200, memo=False)
        ms = s.measurements
        assert isinstance(ms, PreSortedMeasurements)
        built = lambda: sum(1 for x in ms._items if x is not None)  # noqa: E731
        assert built() == 0
        s.best  # noqa: B018
        assert built() == 1
        s.quantile_us(0.5)
        assert built() <= 2

    def test_times_us_materializes_nothing(self):
        op = _bias_op()
        s = engine_sweep_op(op, ENV, COST, cap=200, memo=False)
        times = s.times_us()
        assert times == sorted(times) and len(times) == s.num_configs
        assert all(x is None for x in s.measurements._items)

    def test_slicing_and_negative_indexing(self):
        op = _bias_op()
        s = engine_sweep_op(op, ENV, COST, cap=50, memo=False)
        head = s.measurements[:5]
        assert [m.total_us for m in head] == s.times_us()[:5]
        assert s.measurements[-1].total_us == s.worst.total_us


class TestCacheVersioning:
    def test_artifacts_carry_version(self):
        s = sweep_op(_bias_op(), ENV, COST, cap=60)
        assert sweep_to_dict(s)["cost_model_version"] == COST_MODEL_VERSION

    def test_version_mismatch_rejected(self):
        op = _bias_op()
        data = sweep_to_dict(sweep_op(op, ENV, COST, cap=60))
        data["cost_model_version"] = COST_MODEL_VERSION + 1
        with pytest.raises(CacheMismatch, match="cost model version"):
            sweep_from_dict(data, op)

    def test_unversioned_legacy_artifact_rejected(self):
        op = _bias_op()
        data = sweep_to_dict(sweep_op(op, ENV, COST, cap=60))
        del data["cost_model_version"]
        with pytest.raises(CacheMismatch):
            sweep_from_dict(data, op)

    def test_version_mismatch_rejected_on_file_load(self, tmp_path):
        op = _bias_op()
        sweep = sweep_op(op, ENV, COST, cap=60)
        data = sweep_to_dict(sweep)
        data["cost_model_version"] = "stale"
        path = tmp_path / "stale.json"
        path.write_text(json.dumps(data))
        with pytest.raises(CacheMismatch):
            load_sweep(path, op)


class TestOperandLayoutQueries:
    def _mixed_arity_sweep(self):
        """Measurements whose configs have different operand arity."""
        op = _bias_op()
        x_layout = Layout(("p", "h", "b", "j"))
        narrow = ConfigMeasurement(
            config=OpConfig(op_name="aib", input_layouts=(x_layout,), output_layouts=()),
            time=KernelTime(1.0, 1.0, 1.0),
        )
        wide = ConfigMeasurement(
            config=OpConfig(
                op_name="aib",
                input_layouts=(x_layout, Layout(("p", "h"))),
                output_layouts=(),
            ),
            time=KernelTime(2.0, 2.0, 2.0),
        )
        return SweepResult(op=op, measurements=[narrow, wide])

    def test_best_with_operand_layout_skips_short_configs(self):
        sweep = self._mixed_arity_sweep()
        # Operand 1 only exists in the slower, wider config: the early
        # return-None bug made this query miss it entirely.
        m = sweep.best_with_operand_layout(1, Layout(("p", "h")))
        assert m is not None
        assert m.config.input_layouts[1] == Layout(("p", "h"))

    def test_best_for_layouts_index_matches_linear_scan(self):
        op = contraction_spec("lin", "ui,ibj->ubj", ("w", "x"), "y")
        sweep = sweep_op(op, ENV, COST)
        seen = set()
        for m in list(sweep.measurements)[:50]:
            key = (m.config.input_layouts, m.config.output_layouts)
            if key in seen:
                continue
            seen.add(key)
            expect_both = min(
                (
                    x
                    for x in sweep.measurements
                    if x.config.input_layouts == key[0]
                    and x.config.output_layouts == key[1]
                ),
                key=lambda x: x.total_us,
            )
            got = sweep.best_for_layouts(key[0], key[1])
            assert got.total_us == expect_both.total_us
            got_in = sweep.best_for_layouts(key[0], None)
            assert got_in.config.input_layouts == key[0]
        assert sweep.best_for_layouts(None, None) is sweep.measurements[0]

    def test_layout_pair_minima_matches_linear_scan(self):
        op = contraction_spec("lin", "ui,ibj->ubj", ("w", "x"), "y")
        sweep = sweep_op(op, ENV, COST)
        minima = sweep.layout_pair_minima(0, 0)
        expect: dict = {}
        for m in sweep.measurements:
            key = (m.config.input_layouts[0].dims, m.config.output_layouts[0].dims)
            if key not in expect or m.total_us < expect[key]:
                expect[key] = m.total_us
        assert minima == expect
        assert sweep.layout_pair_minima(0, 0) is minima  # cached
