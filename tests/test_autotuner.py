"""Tests for the sweep machinery and violin summaries."""

import pytest

from repro.autotuner.tuner import sweep_graph, sweep_op
from repro.autotuner.violin import render_ascii, summarize
from repro.fusion.encoder_kernels import apply_paper_fusion
from repro.hardware.cost_model import CostModel
from repro.ir.dims import bert_large_dims
from repro.ir.tensor import TensorSpec
from repro.layouts.layout import Layout
from repro.ops.contraction import contraction_spec
from repro.ops.elementwise import bias_spec
from repro.transformer.graph_builder import build_encoder_graph

ENV = bert_large_dims()
COST = CostModel()


@pytest.fixture(scope="module")
def bias_sweep():
    x = TensorSpec("qq", ("p", "h", "b", "j"))
    op = bias_spec("aib", x, ("p", "h"), "out")
    return sweep_op(op, ENV, COST, cap=300)


@pytest.fixture(scope="module")
def gemm_sweep():
    op = contraction_spec("lin", "ui,ibj->ubj", ("w", "x"), "y")
    return sweep_op(op, ENV, COST)


class TestSweep:
    def test_sorted_ascending(self, bias_sweep):
        times = bias_sweep.times_us()
        assert times == sorted(times)

    def test_best_worst(self, bias_sweep):
        assert bias_sweep.best.total_us == bias_sweep.times_us()[0]
        assert bias_sweep.worst.total_us == bias_sweep.times_us()[-1]
        assert bias_sweep.spread > 1.0

    def test_quantiles_monotone(self, bias_sweep):
        qs = [bias_sweep.quantile_us(q) for q in (0.0, 0.25, 0.5, 0.75, 1.0)]
        assert qs == sorted(qs)
        assert qs[0] == bias_sweep.best.total_us
        assert qs[-1] == bias_sweep.worst.total_us

    def test_quantile_bounds_checked(self, bias_sweep):
        with pytest.raises(ValueError):
            bias_sweep.quantile_us(1.5)

    def test_gemm_sweep_skips_infeasible(self, gemm_sweep):
        # All recorded measurements were feasible GEMM mappings.
        assert gemm_sweep.num_configs > 0
        for m in gemm_sweep.measurements[:20]:
            assert m.time.total_us > 0

    def test_best_for_layouts_filter(self, gemm_sweep):
        target = gemm_sweep.best.config.input_layouts
        m = gemm_sweep.best_for_layouts(target, None)
        assert m is not None
        assert m.config.input_layouts == target
        assert m.total_us == min(
            x.total_us
            for x in gemm_sweep.measurements
            if x.config.input_layouts == target
        )

    def test_best_with_operand_layout(self, gemm_sweep):
        layout = Layout(("u", "i"))
        m = gemm_sweep.best_with_operand_layout(0, layout)
        if m is not None:
            assert m.config.input_layouts[0] == layout

    def test_sweep_graph_covers_kernels_not_views(self):
        g = apply_paper_fusion(build_encoder_graph(qkv_fusion="qkv"), ENV)
        sweeps = sweep_graph(g, ENV, COST, cap=50)
        kernel_names = {op.name for op in g.ops if not op.is_view}
        assert set(sweeps) == kernel_names


class TestViolin:
    def test_summary_fields(self, bias_sweep):
        s = summarize(bias_sweep)
        assert s.best_us <= s.q25_us <= s.median_us <= s.q75_us <= s.worst_us
        assert sum(s.histogram) == s.num_configs
        assert s.spread == pytest.approx(s.worst_us / s.best_us)

    def test_long_tail_flag(self, bias_sweep):
        s = summarize(bias_sweep)
        assert s.long_tailed  # bias layouts span far more than 10x

    def test_render_contains_stats(self, bias_sweep):
        text = render_ascii(summarize(bias_sweep))
        assert "configs" in text
        assert "#" in text

    def test_degenerate_distribution(self):
        # Single-config sweep: histogram collapses into one bucket.
        from repro.autotuner.tuner import ConfigMeasurement, SweepResult
        from repro.hardware.cost_model import KernelTime
        from repro.layouts.configspace import default_config

        x = TensorSpec("x", ("a", "b"))
        op = bias_spec("b", x, ("a",), "y")
        m = ConfigMeasurement(
            config=default_config(op), time=KernelTime(1.0, 2.0, 0.5)
        )
        s = summarize(SweepResult(op=op, measurements=[m]))
        assert s.num_configs == 1
        assert s.histogram[0] == 1
        assert s.spread == 1.0
