"""The recipe applies unchanged to GPT-style decoder layers (Sec. VIII)."""

import numpy as np
import pytest

from repro.autotuner.tuner import sweep_graph
from repro.configsel.selector import select_configurations
from repro.fusion.encoder_kernels import apply_paper_fusion
from repro.hardware.cost_model import CostModel
from repro.ir.dims import bert_large_dims
from repro.runtime.executor import GraphExecutor
from repro.runtime.feeds import encoder_feeds
from repro.transformer.encoder import encoder_forward
from repro.transformer.graph_builder import build_gpt_decoder_graph
from repro.transformer.params import ModelDims, init_encoder_params

ENV = bert_large_dims()
COST = CostModel()
DIMS = ModelDims.tiny()


class TestDecoderLayer:
    def test_structure_matches_encoder_plus_mask(self):
        g = build_gpt_decoder_graph()
        assert "attn_mask" in g.containers
        assert "softmax" in g
        sm = g.op("softmax")
        assert "attn_mask" in sm.input_names

    def test_recipe_runs_end_to_end(self):
        """Fusion + sweep + selection work identically on the decoder."""
        g = apply_paper_fusion(build_gpt_decoder_graph(), ENV)
        labels = {op.kernel_label for op in g.ops if op.kernel_label}
        assert {"AIB", "SM", "BRD", "BS"} <= labels
        sweeps = sweep_graph(g, ENV, COST, cap=120)
        sel = select_configurations(g, ENV, COST, sweeps=sweeps, cap=120)
        assert sel.total_us > 0

    def test_causal_execution_is_causal(self):
        """With the causal mask, output at position t is independent of
        inputs at positions > t."""
        rng = np.random.default_rng(13)
        params = init_encoder_params(DIMS, rng, std=0.3)
        x = rng.normal(0, 1, (DIMS.embed, DIMS.batch, DIMS.seq))
        j = DIMS.seq
        causal = np.triu(np.full((j, j), -1e9), k=1)
        base = encoder_forward(params, x, dropout_p=0.0, attn_mask=causal)
        # Perturb the final position; earlier positions must not change.
        x2 = x.copy()
        x2[:, :, -1] += 10.0
        pert = encoder_forward(params, x2, dropout_p=0.0, attn_mask=causal)
        np.testing.assert_allclose(
            base.ln2_out[:, :, :-1], pert.ln2_out[:, :, :-1], atol=1e-8
        )
        assert not np.allclose(base.ln2_out[:, :, -1], pert.ln2_out[:, :, -1])

    def test_masked_softmax_io_accounts_mask(self):
        """The SM kernel reads the mask once: IO grows by exactly j*k words."""
        masked = build_gpt_decoder_graph()
        plain_sm = apply_paper_fusion(
            build_gpt_decoder_graph(), ENV
        )
        from repro.transformer.graph_builder import build_encoder_graph

        unmasked_sm = apply_paper_fusion(build_encoder_graph(qkv_fusion="qkv"), ENV)
        diff = plain_sm.op("SM").input_words(ENV) - unmasked_sm.op("SM").input_words(ENV)
        assert diff == ENV["j"] * ENV["k"]
