"""Executor tests: graph execution equals the reference implementation and
fusion never changes results."""

import numpy as np
import pytest

from repro.fusion.encoder_kernels import apply_paper_fusion
from repro.fusion.fuser import fuse_greedy
from repro.runtime.executor import ExecutionError, GraphExecutor
from repro.runtime.feeds import encoder_feeds, mha_feeds
from repro.transformer.encoder import encoder_backward, encoder_forward
from repro.transformer.graph_builder import build_encoder_graph, build_mha_graph
from repro.transformer.mha import mha_backward, mha_forward
from repro.transformer.params import ModelDims, init_encoder_params, init_mha_params

DIMS = ModelDims.tiny()
ENV = DIMS.env()


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(3)
    params = init_encoder_params(DIMS, rng, std=0.3)
    x = rng.normal(0, 1, (DIMS.embed, DIMS.batch, DIMS.seq))
    dy = rng.normal(0, 1, x.shape)
    return params, x, dy


class TestEncoderExecution:
    @pytest.mark.parametrize("variant", ["unfused", "qk", "qkv"])
    def test_matches_reference(self, setup, variant):
        params, x, dy = setup
        g = build_encoder_graph(qkv_fusion=variant)
        ctx = GraphExecutor(g, ENV, dropout_p=0.0).run(
            encoder_feeds(params, x, qkv_fusion=variant, dy=dy)
        )
        ref = encoder_forward(params, x, dropout_p=0.0)
        grads, dx = encoder_backward(params, ref, dy)
        np.testing.assert_allclose(ctx["y"], ref.ln2_out, atol=1e-6)
        np.testing.assert_allclose(ctx["d_x"], dx, atol=1e-6)
        np.testing.assert_allclose(ctx["d_w1"], grads.w1, atol=1e-6)
        np.testing.assert_allclose(ctx["d_ln2_g"], grads.ln2_g, atol=1e-6)
        np.testing.assert_allclose(ctx["d_bo"], grads.mha.bo, atol=1e-6)

    @pytest.mark.parametrize("variant", ["unfused", "qk", "qkv"])
    def test_fused_bit_identical_to_unfused(self, setup, variant):
        """Fusion must not change the computation (Sec. II-C)."""
        params, x, dy = setup
        g = build_encoder_graph(qkv_fusion=variant)
        f = apply_paper_fusion(g, ENV)
        feeds = encoder_feeds(params, x, qkv_fusion=variant, dy=dy)
        a = GraphExecutor(g, ENV, dropout_p=0.0).run(feeds)
        b = GraphExecutor(f, ENV, dropout_p=0.0).run(feeds)
        for key in ("y", "d_x", "d_w1", "d_w2", "d_ln1_g", "d_b1"):
            np.testing.assert_array_equal(a[key], b[key])

    def test_greedy_fusion_also_identical(self, setup):
        params, x, dy = setup
        g = build_encoder_graph(qkv_fusion="qkv")
        f = fuse_greedy(g, ENV)
        feeds = encoder_feeds(params, x, qkv_fusion="qkv", dy=dy)
        a = GraphExecutor(g, ENV, dropout_p=0.0).run(feeds)
        b = GraphExecutor(f, ENV, dropout_p=0.0).run(feeds)
        np.testing.assert_array_equal(a["y"], b["y"])
        np.testing.assert_array_equal(a["d_x"], b["d_x"])

    def test_dropout_deterministic_per_seed(self, setup):
        params, x, dy = setup
        g = build_encoder_graph(qkv_fusion="qkv")
        feeds = encoder_feeds(params, x, qkv_fusion="qkv", dy=dy)
        a = GraphExecutor(g, ENV, dropout_p=0.2, seed=5).run(feeds)
        b = GraphExecutor(g, ENV, dropout_p=0.2, seed=5).run(feeds)
        c = GraphExecutor(g, ENV, dropout_p=0.2, seed=6).run(feeds)
        np.testing.assert_array_equal(a["y"], b["y"])
        assert not np.array_equal(a["y"], c["y"])

    def test_dropout_consistent_across_fusion(self, setup):
        """Fused and unfused schedules draw identical per-op masks."""
        params, x, dy = setup
        g = build_encoder_graph(qkv_fusion="qkv")
        f = apply_paper_fusion(g, ENV)
        feeds = encoder_feeds(params, x, qkv_fusion="qkv", dy=dy)
        a = GraphExecutor(g, ENV, dropout_p=0.3, seed=9).run(feeds)
        b = GraphExecutor(f, ENV, dropout_p=0.3, seed=9).run(feeds)
        np.testing.assert_array_equal(a["y"], b["y"])
        np.testing.assert_array_equal(a["d_x"], b["d_x"])


class TestMHAExecution:
    @pytest.mark.parametrize("variant", ["unfused", "qk", "qkv"])
    def test_matches_reference(self, variant):
        rng = np.random.default_rng(4)
        params = init_mha_params(DIMS, rng, std=0.3)
        x = rng.normal(0, 1, (DIMS.embed, DIMS.batch, DIMS.seq))
        d_out = rng.normal(0, 1, x.shape)
        g = build_mha_graph(qkv_fusion=variant)
        ctx = GraphExecutor(g, ENV, dropout_p=0.0).run(
            mha_feeds(params, x, qkv_fusion=variant, d_attn_out=d_out)
        )
        acts = mha_forward(params, x, x, x, dropout_p=0.0)
        grads = mha_backward(params, acts, d_out)
        np.testing.assert_allclose(ctx["attn_out"], acts.out, atol=1e-6)
        np.testing.assert_allclose(
            ctx["d_x"], grads.dq + grads.dk + grads.dv, atol=1e-6
        )
        np.testing.assert_allclose(ctx["d_bq"], grads.params.bq, atol=1e-6)


class TestExecutorErrors:
    def test_missing_feed(self, setup):
        params, x, dy = setup
        g = build_encoder_graph(qkv_fusion="qkv")
        feeds = encoder_feeds(params, x, qkv_fusion="qkv", dy=dy)
        del feeds["w1"]
        with pytest.raises(ExecutionError, match="missing feed"):
            GraphExecutor(g, ENV).run(feeds)

    def test_wrong_shape_feed(self, setup):
        params, x, dy = setup
        g = build_encoder_graph(qkv_fusion="qkv")
        feeds = encoder_feeds(params, x, qkv_fusion="qkv", dy=dy)
        feeds["x"] = feeds["x"][:, :, :-1]
        with pytest.raises(ExecutionError, match="shape"):
            GraphExecutor(g, ENV).run(feeds)


class TestMaskedAttention:
    def test_masked_encoder_matches_reference(self, setup):
        """Causal masking flows through the graph exactly as in the
        reference implementation."""
        params, x, dy = setup
        j = DIMS.seq
        causal = np.triu(np.full((j, j), -1e9), k=1)
        g = build_encoder_graph(qkv_fusion="qkv", masked=True)
        feeds = encoder_feeds(params, x, qkv_fusion="qkv", dy=dy)
        feeds["attn_mask"] = causal
        ctx = GraphExecutor(g, ENV, dropout_p=0.0).run(feeds)
        ref = encoder_forward(params, x, dropout_p=0.0, attn_mask=causal)
        np.testing.assert_allclose(ctx["y"], ref.ln2_out, atol=1e-6)

    def test_mask_changes_output(self, setup):
        params, x, dy = setup
        j = DIMS.seq
        causal = np.triu(np.full((j, j), -1e9), k=1)
        ref_masked = encoder_forward(params, x, dropout_p=0.0, attn_mask=causal)
        ref_plain = encoder_forward(params, x, dropout_p=0.0)
        assert not np.allclose(ref_masked.ln2_out, ref_plain.ln2_out)

    def test_masked_graph_fuses_and_executes(self, setup):
        """The SM kernel absorbs the mask read; fusion stays bit-exact."""
        params, x, dy = setup
        j = DIMS.seq
        causal = np.triu(np.full((j, j), -1e9), k=1)
        g = build_encoder_graph(qkv_fusion="qkv", masked=True)
        f = apply_paper_fusion(g, ENV)
        feeds = encoder_feeds(params, x, qkv_fusion="qkv", dy=dy)
        feeds["attn_mask"] = causal
        a = GraphExecutor(g, ENV, dropout_p=0.0).run(feeds)
        b = GraphExecutor(f, ENV, dropout_p=0.0).run(feeds)
        np.testing.assert_array_equal(a["y"], b["y"])
        np.testing.assert_array_equal(a["d_x"], b["d_x"])
