"""Property-based tests (hypothesis) on core data structures and invariants."""

from __future__ import annotations

import string

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.configsel.sssp import ConfigGraph, shortest_path, shortest_path_networkx
from repro.hardware.cost_model import CostModel
from repro.hardware.efficiency import kernel_efficiency
from repro.hardware.mue import mue
from repro.hardware.spec import V100
from repro.ir.dims import DimEnv
from repro.ir.iteration_space import Compatibility, IterationSpace
from repro.ir.tensor import TensorSpec
from repro.layouts.config import OpConfig
from repro.layouts.configspace import kernel_configs
from repro.layouts.gemm_mapping import classify_dims, map_to_gemm
from repro.layouts.layout import Layout, all_layouts
from repro.ops.contraction import contraction_forward, contraction_grads
from repro.ops.einsum_utils import grad_einsum, parse_einsum
from repro.ops.elementwise import bias_spec, dropout_forward
from repro.ops.softmax import softmax_backward, softmax_forward

# -- strategies ---------------------------------------------------------------

dim_names = st.lists(
    st.sampled_from(list("abcdefgh")), min_size=1, max_size=4, unique=True
).map(tuple)


@st.composite
def dim_envs(draw, names=None):
    if names is None:
        names = draw(dim_names)
    sizes = {n: draw(st.integers(min_value=1, max_value=16)) for n in names}
    return DimEnv(sizes)


@st.composite
def layouts_of(draw, dims):
    perm = draw(st.permutations(list(dims)))
    return Layout(tuple(perm))


# -- Layout properties -----------------------------------------------------------


class TestLayoutProperties:
    @given(dims=dim_names, data=st.data())
    def test_permutation_roundtrip(self, dims, data):
        """permutation_from is invertible: applying it to the source order
        reproduces the target order."""
        a = data.draw(layouts_of(dims))
        b = data.draw(layouts_of(dims))
        perm = b.permutation_from(a)
        assert tuple(a.dims[i] for i in perm) == b.dims

    @given(dims=dim_names, data=st.data())
    def test_strides_are_consistent_with_volume(self, dims, data):
        env = data.draw(dim_envs(dims))
        layout = data.draw(layouts_of(dims))
        strides = layout.strides(env)
        # The outermost dim's stride times its size equals the volume.
        outer = layout.dims[0]
        assert strides[outer] * env[outer] == env.volume(dims)
        # Innermost is unit stride.
        assert strides[layout.contiguous_dim] == 1

    @given(dims=dim_names)
    def test_all_layouts_are_distinct_permutations(self, dims):
        ls = list(all_layouts(dims))
        assert len(ls) == len(set(l.dims for l in ls))
        for l in ls:
            assert sorted(l.dims) == sorted(dims)


# -- Einsum gradient properties ----------------------------------------------------


class TestEinsumProperties:
    @given(
        m=st.integers(2, 5), n=st.integers(2, 5), k=st.integers(2, 5),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_gemm_gradient_matches_directional_derivative(self, m, n, k, seed):
        rng = np.random.default_rng(seed)
        a = rng.normal(size=(m, k))
        b = rng.normal(size=(k, n))
        w = rng.normal(size=(m, n))
        da, db = contraction_grads("ab,bc->ac", w, a, b)
        # Directional (central) derivative along a random direction.  The
        # forward runs in float32, so eps must stay well above its rounding.
        va = rng.normal(size=a.shape)
        eps = 1e-3
        fp = float((contraction_forward("ab,bc->ac", a + eps * va, b) * w).sum())
        fm = float((contraction_forward("ab,bc->ac", a - eps * va, b) * w).sum())
        assert (da * va).sum() == pytest.approx((fp - fm) / (2 * eps), rel=5e-3, abs=5e-3)

    @given(st.sampled_from([
        "ab,bc->ac", "phi,ibj->phbj", "whbk,hbjk->whbj", "ui,ibj->ubj",
        "cphi,ibj->cphbj", "hbjk,phbk->phbj",
    ]))
    def test_grad_spec_dims_match_operand(self, spec):
        parsed = parse_einsum(spec)
        for i in range(parsed.num_inputs):
            g = grad_einsum(parsed, i)
            assert g.output_subscript == parsed.input_subscripts[i]

    @given(st.sampled_from(["ab,bc->ac", "phi,ibj->phbj", "phbk,phbj->hbjk"]))
    def test_roles_partition_all_dims(self, spec):
        roles = classify_dims(spec)
        parsed = parse_einsum(spec)
        every = set(roles.batch) | set(roles.m) | set(roles.n) | set(roles.k)
        assert every == {d for s in parsed.input_subscripts for d in s} | set(
            parsed.output_subscript
        )


# -- Iteration-space properties ------------------------------------------------------


class TestIterationSpaceProperties:
    @given(dims=dim_names, data=st.data())
    def test_compatibility_identical_is_reflexive(self, dims, data):
        n_red = data.draw(st.integers(0, len(dims) - 1)) if len(dims) > 1 else 0
        space = IterationSpace(dims[: len(dims) - n_red], dims[len(dims) - n_red :])
        assert space.compatibility(space) is Compatibility.IDENTICAL

    @given(dims=dim_names, data=st.data())
    def test_fuse_preserves_dims(self, dims, data):
        """Fusing compatible spaces never loses a dimension."""
        n_red = data.draw(st.integers(0, len(dims) - 1)) if len(dims) > 1 else 0
        a = IterationSpace(dims[: len(dims) - n_red], dims[len(dims) - n_red :])
        b = IterationSpace(a.independent)  # reduction-free companion
        if b.compatibility(a).fusible:
            fused = b.fuse(a)
            assert set(fused.all_dims) >= set(a.all_dims)


# -- GEMM mapping properties -----------------------------------------------------------


class TestGemmMappingProperties:
    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_mapped_flops_invariant_under_layout(self, data):
        """Whatever the layouts, a feasible mapping computes the same flop."""
        env = DimEnv({"a": 4, "b": 6, "c": 8, "g": 2})
        spec = parse_einsum("gab,gbc->gac")
        la = data.draw(layouts_of(("g", "a", "b")))
        lb = data.draw(layouts_of(("g", "b", "c")))
        lc = data.draw(layouts_of(("g", "a", "c")))
        shape = map_to_gemm(spec, la, lb, lc, env)
        if shape is not None:
            assert shape.flops == spec.flops(env)

    @given(data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_canonical_has_m_ge_n(self, data):
        env = DimEnv({"a": 4, "b": 6, "c": 8, "g": 2})
        la = data.draw(layouts_of(("g", "a", "b")))
        lb = data.draw(layouts_of(("g", "b", "c")))
        lc = data.draw(layouts_of(("g", "a", "c")))
        shape = map_to_gemm("gab,gbc->gac", la, lb, lc, env)
        if shape is not None:
            c = shape.canonical()
            assert c.m >= c.n


# -- Cost model / MUE properties ------------------------------------------------------


class TestCostModelProperties:
    ENV = DimEnv({"p": 8, "h": 4, "b": 8, "j": 16})

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_kernel_time_positive_and_deterministic(self, seed):
        x = TensorSpec("x", ("p", "h", "b", "j"))
        op = bias_spec("bias", x, ("p", "h"), "y")
        configs = list(kernel_configs(op, self.ENV, cap=5, seed=seed))
        cm = CostModel(V100)
        for c in configs:
            t1 = cm.time_op(op, c, self.ENV)
            t2 = cm.time_op(op, c, self.ENV)
            assert t1.total_us == t2.total_us
            assert t1.total_us > 0

    @given(
        q=st.floats(min_value=1e3, max_value=1e9),
        extra=st.floats(min_value=1.0, max_value=10.0),
        t=st.floats(min_value=0.1, max_value=1e6),
    )
    def test_mue_bounds_and_monotonicity(self, q, extra, t):
        """MUE is in (0, 100] and never improves with redundant movement at
        fixed bandwidth utilisation."""
        score_min = mue(q, q * extra, t * extra, V100)
        score_opt = mue(q, q, t, V100)
        assert 0 < score_min <= 100
        assert 0 < score_opt <= 100
        # Same achieved bandwidth, but D > Q: lower score.
        assert score_min <= score_opt + 1e-9

    @given(scale=st.floats(min_value=1.1, max_value=8.0))
    def test_more_bytes_never_faster(self, scale):
        """Roofline sanity: scaling all tensor extents up can't reduce time."""
        env_small = DimEnv({"p": 8, "h": 4, "b": 8, "j": 16})
        env_big = DimEnv({"p": 8, "h": 4, "b": 8, "j": int(16 * scale)})
        x = TensorSpec("x", ("p", "h", "b", "j"))
        op = bias_spec("bias", x, ("p", "h"), "y")
        cm = CostModel(V100)
        from repro.layouts.configspace import default_config

        t_small = cm.time_op(op, default_config(op), env_small).total_us
        t_big = cm.time_op(op, default_config(op), env_big).total_us
        assert t_big >= t_small


# -- SSSP properties ----------------------------------------------------------------


class TestSSSPProperties:
    @given(
        n_mid=st.integers(1, 6),
        n_mid2=st.integers(1, 6),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_networkx_on_random_layered_dags(self, n_mid, n_mid2, seed):
        import random

        rnd = random.Random(seed)
        g = ConfigGraph()
        mids = [f"a{i}" for i in range(n_mid)]
        mids2 = [f"b{i}" for i in range(n_mid2)]
        for a in mids:
            g.add_edge("s", a, rnd.uniform(0, 10))
        for a in mids:
            for b in mids2:
                if rnd.random() < 0.8:
                    g.add_edge(a, b, rnd.uniform(0, 10))
        for b in mids2:
            g.add_edge(b, "t", rnd.uniform(0, 10))
        try:
            own, path_own = shortest_path(g, "s", "t")
        except Exception:
            return  # disconnected draw: nothing to compare
        nx_cost, _ = shortest_path_networkx(g, "s", "t")
        assert own == pytest.approx(nx_cost)
        # The reported path's edge weights sum to the reported cost.
        total = sum(
            g.edges[(u, v)] for u, v in zip(path_own, path_own[1:])
        )
        assert total == pytest.approx(own)


# -- NumPy kernel properties -----------------------------------------------------------


class TestKernelProperties:
    @given(
        rows=st.integers(1, 6), cols=st.integers(2, 8), seed=st.integers(0, 9999),
        scale=st.floats(min_value=0.1, max_value=2.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_softmax_simplex(self, rows, cols, seed, scale):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(rows, cols))
        y = softmax_forward(x, scale=scale)
        assert (y >= 0).all()
        np.testing.assert_allclose(y.sum(axis=-1), 1.0, rtol=1e-5)

    @given(rows=st.integers(1, 4), cols=st.integers(2, 6), seed=st.integers(0, 9999))
    @settings(max_examples=30, deadline=None)
    def test_softmax_backward_orthogonal_to_ones(self, rows, cols, seed):
        """d(softmax)/dx maps into the tangent of the simplex: rows of dx
        sum to zero (shifting logits by a constant changes nothing)."""
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(rows, cols))
        dy = rng.normal(size=(rows, cols))
        y = softmax_forward(x)
        dx = softmax_backward(dy, y)
        np.testing.assert_allclose(dx.sum(axis=-1), 0.0, atol=1e-6)

    @given(p=st.floats(min_value=0.0, max_value=0.9), seed=st.integers(0, 9999))
    @settings(max_examples=30, deadline=None)
    def test_dropout_mask_values(self, p, seed):
        x = np.ones(512)
        y, mask = dropout_forward(x, p, np.random.default_rng(seed))
        if p == 0.0:
            np.testing.assert_array_equal(mask, 1.0)
        else:
            kept = mask > 0
            np.testing.assert_allclose(mask[kept], 1.0 / (1.0 - p))
        np.testing.assert_array_equal(y, mask)  # x was ones
