"""Chaos suite: real daemons, real faults, byte-identical answers.

Every scenario here runs ``repro fleet serve`` subprocesses — a
coordinator plus real worker daemons — and injects *genuine* faults via
``REPRO_FAULT_SPEC``: a worker that ``os._exit``\\ s mid-request, one that
stalls past the coordinator's deadline, one that flips bytes in otherwise
well-formed responses.  The acceptance criterion is always the same:
``POST /v1/optimize_batch`` through the wounded fleet returns exactly the
bytes a clean single-node ``POST /v1/optimize`` returns.
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.ir.dims import bert_large_dims
from repro.service.client import ServiceError, TuningClient
from repro.service.fleet.faults import KILL_EXIT_CODE
from repro.service.server import TuningService, serve_background

pytestmark = pytest.mark.slow

REPO = Path(__file__).resolve().parent.parent
ENV = bert_large_dims()
CAP = 60
BATCH = dict(model="mha", include_backward=False, env=ENV, cap=CAP)


@pytest.fixture(scope="module")
def single_node_bytes() -> bytes:
    """What a clean, fleet-free daemon answers for the same request."""
    with serve_background(TuningService(store=None, registry=None)) as url:
        return TuningClient(url).optimize_raw(**BATCH)


def _spawn(
    argv: list[str],
    *,
    store_dir: Path,
    fault_spec: str | None = None,
    env_extra: dict[str, str] | None = None,
) -> tuple[subprocess.Popen, str]:
    """Start one fleet daemon; returns ``(process, base_url)``."""
    env = os.environ.copy()
    env["PYTHONPATH"] = str(REPO / "src")
    env["PYTHONUNBUFFERED"] = "1"
    env["REPRO_FLEET_TTL_S"] = "3"  # fast lease expiry for the suite
    env["REPRO_TRACE"] = "1"  # fault handling must leave a span trail
    env.pop("REPRO_FAULT_SPEC", None)
    if fault_spec:
        env["REPRO_FAULT_SPEC"] = fault_spec
    if env_extra:
        env.update(env_extra)
    cmd = [
        sys.executable, "-m", "repro", "fleet", "serve",
        "--port", "0", "--sweep-store", str(store_dir), *argv,
    ]
    proc = subprocess.Popen(
        cmd,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    banner = proc.stdout.readline()
    match = re.search(r"listening on (http://[\d.]+:\d+)", banner)
    assert match, f"no banner from {cmd}: {banner!r}"
    return proc, match.group(1)


class _Fleet:
    """A coordinator plus named workers, each optionally wounded."""

    def __init__(
        self,
        tmp_path: Path,
        *,
        workers: dict[str, str | None],
        coordinator_env: dict[str, str] | None = None,
    ) -> None:
        self.procs: dict[str, subprocess.Popen] = {}
        coord, url = _spawn(
            ["--role", "coordinator"],
            store_dir=tmp_path / "coord-store",
            env_extra=coordinator_env,
        )
        self.procs["coordinator"] = coord
        self.url = url
        self.client = TuningClient(url)
        for worker_id, fault_spec in workers.items():
            proc, _ = _spawn(
                [
                    "--role", "worker",
                    "--coordinator-url", url,
                    "--worker-id", worker_id,
                ],
                store_dir=tmp_path / f"{worker_id}-store",
                fault_spec=fault_spec,
            )
            self.procs[worker_id] = proc
        self._await_ready(len(workers))

    def _await_ready(self, n: int, timeout: float = 90.0) -> None:
        """Wait until the coordinator is ready and sees ``n`` ready workers."""
        self.client.wait_until_ready(timeout=timeout, readiness=True)
        deadline = time.monotonic() + timeout
        counts: dict = {}
        while time.monotonic() < deadline:
            try:
                counts = self.client.fleet_status()["counts"]
            except ServiceError:
                counts = {}
            if counts.get("ready", 0) >= n:
                return
            time.sleep(0.2)
        raise AssertionError(f"fleet never became ready: {counts}")

    def sigterm(self, name: str, timeout: float = 30.0) -> tuple[int, str]:
        """SIGTERM one daemon; returns ``(exit code, full stdout)``."""
        proc = self.procs[name]
        proc.send_signal(signal.SIGTERM)
        code = proc.wait(timeout=timeout)
        return code, proc.stdout.read()

    def kill_all(self) -> None:
        for proc in self.procs.values():
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)


@pytest.fixture
def fleet_factory(tmp_path):
    fleets: list[_Fleet] = []

    def _make(**kwargs) -> _Fleet:
        fleet = _Fleet(tmp_path, **kwargs)
        fleets.append(fleet)
        return fleet

    yield _make
    for fleet in fleets:
        fleet.kill_all()


def test_fault_free_fleet_is_byte_identical_and_drains_cleanly(
    fleet_factory, single_node_bytes
):
    fleet = fleet_factory(workers={"w1": None, "w2": None})
    assert fleet.client.optimize_batch_raw(**BATCH) == single_node_bytes

    status = fleet.client.fleet_status()
    served = {
        wid: info["counters"]["ok"] for wid, info in status["workers"].items()
    }
    assert all(n > 0 for n in served.values()), served
    events = fleet.client.metrics()["fleet"]["events"]
    assert events["job_remote"] > 0
    assert events["job_local_fallback"] == 0
    assert events["quarantine"] == 0

    # SIGTERM the whole fleet: every daemon drains and exits 0.  Workers
    # first (they deregister from the still-live coordinator on the way
    # out), coordinator last.
    for name in ("w1", "w2", "coordinator"):
        code, out = fleet.sigterm(name)
        assert code == 0, f"{name} exited {code}:\n{out}"
        assert "repro-fleetd: clean shutdown" in out


def test_killed_worker_is_survived_byte_identically(
    fleet_factory, single_node_bytes
):
    from repro import obs

    # w1 genuinely dies (os._exit) on its first sweep request: the client
    # side sees a connection reset with no response bytes.  The batch runs
    # under a client span so the coordinator's fault handling leaves an
    # attributable trail in the trace, not just aggregate counters.
    fleet = fleet_factory(
        workers={"w1": "kill:path=/v1/sweep:after=1", "w2": None}
    )
    obs.set_tracing(True)
    try:
        with obs.span("chaos.batch") as root:
            raw = fleet.client.optimize_batch_raw(**BATCH)
    finally:
        obs.set_tracing(None)
    assert raw == single_node_bytes

    assert fleet.procs["w1"].wait(timeout=10) == KILL_EXIT_CODE
    info = fleet.client.fleet_status()["workers"]["w1"]
    assert info["counters"]["error"] > 0
    assert info["quarantined"] is True
    events = fleet.client.metrics()["fleet"]["events"]
    assert events["quarantine"] > 0
    assert events["job_local_fallback"] == 0  # w2 absorbed every retry

    # The trace names the culprit: the wounded job's span carries `retry`
    # and `quarantine` events whose attributes identify the excluded
    # worker — that is what turns "p99 regressed" into "w1 died".
    spans = fleet.client.trace(root.trace_id)["spans"]
    span_events = [
        (span, event) for span in spans for event in span["events"]
    ]
    retries = [e for _, e in span_events if e["name"] == "retry"]
    quarantines = [e for _, e in span_events if e["name"] == "quarantine"]
    assert any(e["attrs"].get("worker") == "w1" for e in retries), retries
    assert any(
        e["attrs"].get("worker") == "w1" for e in quarantines
    ), quarantines
    wounded = [
        span for span, event in span_events
        if event["name"] == "quarantine" and event["attrs"].get("worker") == "w1"
    ]
    assert all(s["name"] == "fleet.job" for s in wounded)
    assert all(s["trace_id"] == root.trace_id for s in spans)


def test_hung_worker_is_survived_byte_identically(
    fleet_factory, single_node_bytes
):
    # w1 stalls every sweep for 8 s; the coordinator's 1 s deadline cuts
    # each attempt loose and the ring's failover order re-routes to w2.
    fleet = fleet_factory(
        workers={"w1": "hang:path=/v1/sweep:delay=8:count=0", "w2": None},
        coordinator_env={
            "REPRO_FLEET_DEADLINE_S": "1",
            "REPRO_FLEET_BACKOFF_S": "0.01",
        },
    )
    assert fleet.client.optimize_batch_raw(**BATCH) == single_node_bytes

    info = fleet.client.fleet_status()["workers"]["w1"]
    assert info["counters"]["timeout"] > 0
    assert info["quarantine_reason"] == "timeout"
    assert fleet.client.metrics()["fleet"]["events"]["job_local_fallback"] == 0


def test_corrupt_worker_is_survived_byte_identically(
    fleet_factory, single_node_bytes
):
    # w1 answers every sweep with flipped bytes under a truthful
    # Content-Length: only the coordinator's digest verification of the
    # packed payload can notice — and must.
    fleet = fleet_factory(
        workers={"w1": "corrupt:path=/v1/sweep:count=0", "w2": None}
    )
    assert fleet.client.optimize_batch_raw(**BATCH) == single_node_bytes

    info = fleet.client.fleet_status()["workers"]["w1"]
    assert info["counters"]["corrupt"] > 0
    assert info["counters"]["ok"] == 0
    assert info["quarantine_reason"] == "corrupt"
    assert fleet.client.metrics()["fleet"]["events"]["job_local_fallback"] == 0


def test_fully_quarantined_fleet_degrades_to_the_local_engine(
    fleet_factory, single_node_bytes
):
    # Every worker corrupts everything: after retry-with-exclusion
    # exhausts the ring, each job lands on the coordinator's own engine.
    # A computable request is never answered with a 5xx.
    fleet = fleet_factory(
        workers={
            "w1": "corrupt:path=/v1/sweep:count=0",
            "w2": "corrupt:path=/v1/sweep:count=0",
        }
    )
    assert fleet.client.optimize_batch_raw(**BATCH) == single_node_bytes

    events = fleet.client.metrics()["fleet"]["events"]
    assert events["job_remote"] == 0
    assert events["job_local_fallback"] > 0
    counts = fleet.client.fleet_status()["counts"]
    assert counts["quarantined"] == 2
