"""Unit tests for the dataflow graph and its analyses."""

import pytest

from repro.ir.analysis import (
    annotate,
    class_flop_fractions,
    data_movement_reduction,
    unique_io_words,
)
from repro.ir.dims import DimEnv
from repro.ir.graph import DataflowGraph, GraphValidationError
from repro.ir.iteration_space import IterationSpace
from repro.ir.operator import OpClass, OpSpec, Stage
from repro.ir.tensor import TensorSpec

ENV = DimEnv({"a": 4, "b": 8})


def _ew(name, in_names, out_names, *, stage=Stage.FORWARD, flop=1.0,
        op_class=OpClass.ELEMENTWISE):
    return OpSpec(
        name=name,
        op_class=op_class,
        inputs=tuple(TensorSpec(n, ("a", "b")) for n in in_names),
        outputs=tuple(TensorSpec(n, ("a", "b")) for n in out_names),
        ispace=IterationSpace(("a", "b")),
        flop_per_point=flop,
        stage=stage,
    )


def _chain_graph():
    g = DataflowGraph("chain")
    g.add_input(TensorSpec("x", ("a", "b")))
    g.add_op(_ew("f", ["x"], ["t1"]))
    g.add_op(_ew("g", ["t1"], ["t2"]))
    g.add_op(_ew("h", ["t2"], ["y"]))
    return g


class TestConstruction:
    def test_chain_builds_and_validates(self):
        g = _chain_graph()
        g.validate()
        assert len(g) == 3
        assert g.op_names == ("f", "g", "h")

    def test_reading_undefined_container_rejected(self):
        g = DataflowGraph()
        with pytest.raises(GraphValidationError, match="undefined container"):
            g.add_op(_ew("f", ["nope"], ["t"]))

    def test_double_write_rejected(self):
        g = DataflowGraph()
        g.add_input(TensorSpec("x", ("a", "b")))
        g.add_op(_ew("f", ["x"], ["t"]))
        with pytest.raises(GraphValidationError, match="written by both"):
            g.add_op(_ew("g", ["x"], ["t"]))

    def test_duplicate_op_name_rejected(self):
        g = DataflowGraph()
        g.add_input(TensorSpec("x", ("a", "b")))
        g.add_op(_ew("f", ["x"], ["t"]))
        with pytest.raises(GraphValidationError, match="duplicate"):
            g.add_op(_ew("f", ["x"], ["t2"]))

    def test_writing_graph_input_rejected(self):
        g = DataflowGraph()
        g.add_input(TensorSpec("x", ("a", "b")))
        with pytest.raises(GraphValidationError, match="graph input"):
            g.add_op(_ew("f", ["x"], ["x2", "x"]))

    def test_dims_mismatch_on_read_rejected(self):
        g = DataflowGraph()
        g.add_input(TensorSpec("x", ("a", "b")))
        bad = OpSpec(
            name="f",
            op_class=OpClass.ELEMENTWISE,
            inputs=(TensorSpec("x", ("b", "a")),),
            outputs=(TensorSpec("t", ("a", "b")),),
            ispace=IterationSpace(("a", "b")),
        )
        with pytest.raises(GraphValidationError, match="dims"):
            g.add_op(bad)

    def test_redeclaring_input_same_spec_ok(self):
        g = DataflowGraph()
        t = TensorSpec("x", ("a", "b"))
        g.add_input(t)
        g.add_input(t)  # no error
        with pytest.raises(GraphValidationError):
            g.add_input(TensorSpec("x", ("b", "a")))


class TestQueries:
    def test_producer_consumer(self):
        g = _chain_graph()
        assert g.producer_of("t1") == "f"
        assert g.producer_of("x") is None
        assert g.consumers_of("t1") == ("g",)
        assert g.consumers_of("y") == ()

    def test_graph_outputs(self):
        g = _chain_graph()
        assert [t.name for t in g.graph_outputs()] == ["y"]

    def test_edges(self):
        g = _chain_graph()
        edges = list(g.edges())
        assert len(edges) == 6  # 3 ops x (1 read + 1 write)

    def test_stage_partition(self):
        g = DataflowGraph()
        g.add_input(TensorSpec("x", ("a", "b")))
        g.add_op(_ew("f", ["x"], ["t"]))
        g.add_op(_ew("fb", ["t"], ["dt"], stage=Stage.BACKWARD_DX))
        assert [o.name for o in g.forward_ops()] == ["f"]
        assert [o.name for o in g.backward_ops()] == ["fb"]

    def test_subgraph(self):
        g = _chain_graph()
        sub = g.subgraph(["g", "h"])
        assert len(sub) == 2
        assert [t.name for t in sub.graph_inputs] == ["t1"]
        sub.validate()


class TestAnalyses:
    def test_total_flops_and_io(self):
        g = _chain_graph()
        assert g.total_flops(ENV) == 3 * 32
        assert g.total_io_words(ENV) == 3 * 64
        assert g.total_io_bytes(ENV) == 3 * 128

    def test_class_breakdown(self):
        g = DataflowGraph()
        g.add_input(TensorSpec("x", ("a", "b")))
        g.add_op(_ew("e", ["x"], ["t"]))
        g.add_op(_ew("n", ["t"], ["y"], op_class=OpClass.STAT_NORMALIZATION, flop=5.0))
        bd = g.class_breakdown(ENV)
        assert bd[OpClass.ELEMENTWISE].flop == 32
        assert bd[OpClass.STAT_NORMALIZATION].flop == 160

    def test_class_flop_fractions_sum_to_one(self):
        g = _chain_graph()
        fracs = class_flop_fractions(g, ENV)
        assert sum(fracs.values()) == pytest.approx(1.0)

    def test_annotate(self):
        g = _chain_graph()
        anns = annotate(g, ENV)
        assert [a.name for a in anns] == ["f", "g", "h"]
        assert all(a.summary.flop == 32 for a in anns)

    def test_unique_io_words_drops_interior(self):
        g = _chain_graph()
        # Fusing all three ops: t1 and t2 are interior.
        words = unique_io_words(list(g.ops), ENV)
        assert words == 64  # x in + y out

    def test_data_movement_reduction(self):
        g = _chain_graph()
        fused = DataflowGraph("fused")
        fused.add_input(TensorSpec("x", ("a", "b")))
        fused.add_op(_ew("fgh", ["x"], ["y"]))
        red = data_movement_reduction(g, fused, ENV)
        assert red == pytest.approx((192 - 64) / 192)

    def test_replace_ops(self):
        g = _chain_graph()
        merged = _ew("fg", ["x"], ["t2"])
        g2 = g.replace_ops(["f", "g"], [merged])
        g2.validate()
        assert g2.op_names == ("fg", "h")

    def test_describe_contains_all_ops(self):
        text = _chain_graph().describe(ENV)
        for name in ("f", "g", "h"):
            assert name in text
