"""Online calibration: feedback store, fitting, and staged rollout.

Covers the full shadow → canary → promote machine without any daemon
subprocess: adversarial ``/v1/report`` bodies (each a structured 400 that
leaves the feedback store untouched), crash-safe JSONL persistence with
per-record digests, deterministic fitting, and the rollout state machine
including kill-mid-promotion recovery — simulated in-process by driving
``RolloutManager`` against on-disk state files from both sides of the
commit point.
"""

from __future__ import annotations

import json

import pytest

from repro.calibrate import (
    FeedbackError,
    FeedbackStore,
    RolloutError,
    RolloutManager,
    fit_candidate,
    record_digest,
    score_params,
    table3_corpus,
    validate_record,
)
from repro.calibrate.fit import CandidateModel
from repro.calibrate.rollout import JOURNAL_FILE_NAME, STATE_FILE_NAME
from repro.hardware.params import (
    DEFAULT_PARAMS,
    DEFAULT_VERSION,
    ParamsError,
    active_cost_model_version,
    active_params,
    candidate_version,
    install_params,
    params_from_wire,
)
from repro.service.protocol import ProtocolError
from repro.service.server import TuningService


@pytest.fixture(autouse=True)
def _restore_active_params():
    """Every test starts and ends serving the historical defaults."""
    install_params(DEFAULT_PARAMS)
    yield
    install_params(DEFAULT_PARAMS)


def _record(**over) -> dict:
    rec = {
        "label": "QK^T",
        "side": "ours",
        "measured_us": 200.0,
        "cost_model_version": DEFAULT_VERSION,
        "provenance": "test",
    }
    rec.update(over)
    return rec


# ---------------------------------------------------------------------------
# params identity
# ---------------------------------------------------------------------------


def test_default_params_serve_version_one():
    assert active_params() == DEFAULT_PARAMS
    assert active_cost_model_version() == DEFAULT_VERSION == 1


def test_candidate_version_is_tagged_and_stable():
    tweaked = params_from_wire(
        {**DEFAULT_PARAMS.to_wire(), "coalesced_eff": 0.5}
    )
    tag = candidate_version(tweaked)
    assert isinstance(tag, str) and tag.startswith("1-cal-")
    assert tag == candidate_version(tweaked)  # pure function of params
    assert candidate_version(DEFAULT_PARAMS) == DEFAULT_VERSION


def test_install_params_flips_served_version_and_back():
    tweaked = params_from_wire(
        {**DEFAULT_PARAMS.to_wire(), "vectorized_eff": 0.6}
    )
    install_params(tweaked)
    assert active_cost_model_version() == candidate_version(tweaked)
    install_params(DEFAULT_PARAMS)
    assert active_cost_model_version() == DEFAULT_VERSION


# ---------------------------------------------------------------------------
# record validation (adversarial /v1/report bodies)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "broken",
    [
        "not a dict",
        _record(label="No Such Benchmark"),
        _record(side="theirs"),
        _record(measured_us=float("nan")),
        _record(measured_us=float("inf")),
        _record(measured_us=-3.0),
        _record(measured_us=0),
        _record(measured_us=True),
        _record(measured_us="fast"),
        _record(cost_model_version=True),
        _record(cost_model_version=2.5),
        _record(provenance=""),
        _record(provenance=7),
        _record(surprise="field"),
    ],
    ids=[
        "non-dict", "unknown-label", "unknown-side", "nan", "inf",
        "negative", "zero", "bool-timing", "str-timing", "bool-version",
        "float-version", "empty-provenance", "non-str-provenance",
        "unknown-field",
    ],
)
def test_validate_record_rejects(broken):
    with pytest.raises(FeedbackError):
        validate_record(broken)


def test_validate_record_rejects_version_mismatch():
    rec = _record(cost_model_version="1-cal-somethingelse")
    with pytest.raises(FeedbackError, match="cost-model version"):
        validate_record(rec, served_version=DEFAULT_VERSION)
    # ...but matches pass, and unknown versions pass when unpinned.
    validate_record(_record(), served_version=DEFAULT_VERSION)
    validate_record(rec)


def test_handle_report_adversarial_bodies_leave_store_unchanged(tmp_path):
    svc = TuningService(store=None, calibration_dir=tmp_path)
    good = table3_corpus()
    svc.handle_report({"records": good[:4]})
    before = svc.feedback.records()
    assert len(before) == 4

    bad_bodies = [
        "not json object",
        {"records": "not a list"},
        {"records": []},
        {"records": [_record(measured_us=float("nan"))]},
        {"records": [_record(label="No Such Benchmark")]},
        {"records": good[:1] + [_record(side="theirs")]},  # partial batch
        {"records": [_record(cost_model_version="1-cal-bogus000000")]},
    ]
    for body in bad_bodies:
        with pytest.raises(ProtocolError):
            svc.handle_report(body)
        # All-or-nothing: not even the valid prefix of a batch lands.
        assert svc.feedback.records() == before
    # The three malformed-shape bodies fail before record validation; the
    # other four each count one rejected report.
    assert svc.metrics.calibration_counts()["report_rejected"] == 4


def test_report_stamps_served_version_and_digests(tmp_path):
    svc = TuningService(store=None, calibration_dir=tmp_path)
    resp = svc.handle_report({"records": table3_corpus()})
    assert resp["accepted"] == resp["total"] == len(table3_corpus())
    assert resp["cost_model_version"] == DEFAULT_VERSION
    for rec in svc.feedback.records():
        assert rec["digest"] == record_digest(rec)


# ---------------------------------------------------------------------------
# feedback store persistence
# ---------------------------------------------------------------------------


def test_feedback_store_round_trips(tmp_path):
    store = FeedbackStore(tmp_path)
    store.append(table3_corpus())
    again = FeedbackStore(tmp_path)
    assert again.records() == store.records()
    assert again.corpus_digest() == store.corpus_digest()


def test_feedback_store_tolerates_torn_tail(tmp_path):
    store = FeedbackStore(tmp_path)
    store.append(table3_corpus()[:6])
    with open(store.path, "a", encoding="utf-8") as fh:
        fh.write('{"label": "MHA forward", "side"')  # torn mid-write
    assert len(FeedbackStore(tmp_path).records()) == 6


def test_feedback_store_rejects_mid_file_corruption(tmp_path):
    store = FeedbackStore(tmp_path)
    store.append(table3_corpus()[:6])
    lines = store.path.read_text(encoding="utf-8").splitlines()
    doctored = json.loads(lines[2])
    doctored["measured_us"] *= 10  # digest no longer matches
    lines[2] = json.dumps(doctored)
    store.path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    with pytest.raises(FeedbackError, match="digest"):
        FeedbackStore(tmp_path).records()


# ---------------------------------------------------------------------------
# fitting
# ---------------------------------------------------------------------------


def test_fit_is_deterministic_and_improves_table3_error():
    corpus = table3_corpus()
    cand = fit_candidate(corpus)
    again = fit_candidate(list(reversed(corpus)))  # order-insensitive
    assert cand.to_wire() == again.to_wire()
    assert cand.version == candidate_version(cand.params)

    base = score_params(DEFAULT_PARAMS, corpus)
    fitted = score_params(cand.params, corpus)
    assert base["error"] is not None and fitted["error"] is not None
    assert fitted["error"] < base["error"]
    assert cand.provenance["base_error"] == pytest.approx(base["error"])
    assert cand.provenance["fitted_error"] == pytest.approx(fitted["error"])


def test_fit_keeps_efficiencies_physical():
    corpus = [
        # Wildly wrong timings must not push efficiencies past 1 or to 0.
        {**rec, "measured_us": rec["measured_us"] * 1e6}
        for rec in table3_corpus()
    ]
    cand = fit_candidate(corpus)
    for field, value in cand.params.to_wire().items():
        if field.endswith("_eff") or field.endswith("_base"):
            assert 0.0 < value <= 1.0, (field, value)


def test_candidate_from_wire_rejects_forged_version():
    cand = fit_candidate(table3_corpus())
    wire = cand.to_wire()
    wire["version"] = "1-cal-000000000000"
    with pytest.raises(ParamsError, match="version"):
        CandidateModel.from_wire(wire)
    assert CandidateModel.from_wire(cand.to_wire()) == cand


# ---------------------------------------------------------------------------
# rollout state machine
# ---------------------------------------------------------------------------


def _canary_manager(tmp_path=None, **over) -> RolloutManager:
    kw = dict(fraction=1.0, min_samples=3, max_divergence=0.5)
    kw.update(over)
    return RolloutManager(tmp_path, **kw)


def _proposed(tmp_path=None, **over):
    mgr = _canary_manager(tmp_path, **over)
    corpus = table3_corpus()
    cand = fit_candidate(corpus)
    mgr.propose(cand, corpus)
    return mgr, cand


def test_shadow_gate_rejects_regressing_candidate():
    mgr = _canary_manager()
    worse = params_from_wire(
        {**DEFAULT_PARAMS.to_wire(), "gemm_mem_eff": 0.001, "vectorized_eff": 0.001}
    )
    cand = CandidateModel.build(worse)
    with pytest.raises(RolloutError, match="shadow"):
        mgr.propose(cand, table3_corpus())
    assert mgr.status()["phase"] == "idle"
    # force bypasses the gate (how the chaos suite injects regressions)
    mgr.propose(cand, table3_corpus(), force=True)
    assert mgr.status()["phase"] == "canary"


def test_shadow_gate_rejects_noop_and_empty():
    mgr = _canary_manager()
    with pytest.raises(RolloutError):
        mgr.propose(CandidateModel.build(DEFAULT_PARAMS), table3_corpus())
    with pytest.raises(RolloutError):
        mgr.propose(fit_candidate(table3_corpus()), [])


def test_canary_promotes_after_min_samples(tmp_path):
    mgr, cand = _proposed(tmp_path)
    assert mgr.record_canary(0.1) == "canary"
    assert mgr.record_canary(0.2) == "canary"
    assert mgr.record_canary(0.1) == "promoted"
    assert active_cost_model_version() == cand.version
    assert mgr.status()["phase"] == "idle"
    events = [e["event"] for e in mgr.journal_events()]
    assert events[-2:] == ["promote_intent", "promote_committed"]


def test_canary_regression_auto_rolls_back(tmp_path):
    mgr, cand = _proposed(tmp_path)
    mgr.record_canary(0.1)
    assert mgr.record_canary(5.0) == "rolled_back"
    # Not a single served response was scored by the candidate: the active
    # model answered every request, and the regression kills the canary
    # before it can ever promote.
    assert active_cost_model_version() == DEFAULT_VERSION
    assert mgr.status()["phase"] == "idle"
    assert mgr.candidate_params() is None


def test_manual_promote_and_rollback(tmp_path):
    mgr, cand = _proposed(tmp_path)
    mgr.promote()
    assert active_cost_model_version() == cand.version

    install_params(DEFAULT_PARAMS)
    mgr2, _ = _proposed(tmp_path / "second")
    mgr2.rollback()
    assert active_cost_model_version() == DEFAULT_VERSION
    with pytest.raises(RolloutError):
        mgr2.promote()  # nothing in canary anymore


def test_hash_slice_respects_fraction():
    mgr, _ = _proposed(fraction=0.25)
    # Spread the leading 32 bits across the whole hash space.
    digests = [f"{(i * 0x00100001) & 0xFFFFFFFF:08x}{'0' * 56}" for i in range(4096)]
    hits = sum(mgr.should_canary(d) for d in digests)
    assert 0 < hits < len(digests)
    assert hits / len(digests) == pytest.approx(0.25, abs=0.05)
    assert not RolloutManager(None).should_canary(digests[0])  # idle: never


# ---------------------------------------------------------------------------
# crash recovery: exactly one of {prior, promoted}
# ---------------------------------------------------------------------------


def test_recovery_before_commit_serves_prior(tmp_path):
    _proposed(tmp_path)  # state file says canary; promotion never committed
    install_params(DEFAULT_PARAMS)
    mgr = RolloutManager(tmp_path)
    assert active_cost_model_version() == DEFAULT_VERSION
    assert mgr.status()["phase"] == "canary"  # canary survives the crash
    assert [e["event"] for e in mgr.journal_events()][-1] == "recovered"


def test_recovery_after_commit_serves_promoted(tmp_path):
    mgr, cand = _proposed(tmp_path)
    mgr.record_canary(0.1)
    mgr.record_canary(0.1)
    mgr.record_canary(0.1)  # commits + installs
    install_params(DEFAULT_PARAMS)  # simulate fresh process
    mgr2 = RolloutManager(tmp_path)
    assert active_cost_model_version() == cand.version
    assert mgr2.status()["phase"] == "idle"


def test_recovery_rejects_corrupt_state(tmp_path):
    _proposed(tmp_path)
    (tmp_path / STATE_FILE_NAME).write_text("{ nope", encoding="utf-8")
    with pytest.raises(RolloutError, match="state"):
        RolloutManager(tmp_path)


def test_journal_is_append_only_jsonl(tmp_path):
    mgr, _ = _proposed(tmp_path)
    mgr.rollback()
    lines = (tmp_path / JOURNAL_FILE_NAME).read_text(
        encoding="utf-8"
    ).splitlines()
    events = [json.loads(line)["event"] for line in lines]
    assert "shadow_pass" in events and "rollback" in events


# ---------------------------------------------------------------------------
# service wiring
# ---------------------------------------------------------------------------


def test_propose_endpoint_fits_and_enters_canary(tmp_path):
    svc = TuningService(store=None, calibration_dir=tmp_path)
    svc.handle_report({"records": table3_corpus()})
    out = svc.handle_calibrate_propose({})
    assert out["proposed"] and out["rollout"]["phase"] == "canary"
    assert out["candidate_version"].startswith("1-cal-")
    assert svc.handle_rollout_status()["rollout"]["phase"] == "canary"
    # regressing explicit params without force → structured 400
    with pytest.raises(ProtocolError):
        svc.handle_calibrate_propose(
            {"params": {**DEFAULT_PARAMS.to_wire(), "vectorized_eff": 0.001}}
        )


def test_rollout_action_endpoint(tmp_path):
    svc = TuningService(store=None, calibration_dir=tmp_path)
    svc.handle_report({"records": table3_corpus()})
    svc.handle_calibrate_propose({})
    out = svc.handle_rollout_action({"action": "rollback"})
    assert out["rollout"]["phase"] == "idle"
    with pytest.raises(ProtocolError):
        svc.handle_rollout_action({"action": "promote"})
    with pytest.raises(ProtocolError):
        svc.handle_rollout_action({"action": "reboot"})


def test_healthz_reports_served_version_and_phase():
    svc = TuningService(store=None, calibration_dir=None)
    health = svc.healthz()
    assert health["cost_model_version"] == DEFAULT_VERSION
    assert health["rollout_phase"] == "idle"
