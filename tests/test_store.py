"""Unit tests for the persistent sweep store (engine L2).

Round-trip exactness, stable digests, version-mismatch and corruption
rejection (``CacheMismatch``, recompute-and-overwrite, never silent reuse),
and the ``sweep_op`` / active-store integration.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

import repro.engine.store as store_mod
from repro.autotuner.cache import CacheMismatch
from repro.autotuner.tuner import sweep_op_reference
from repro.engine import (
    clear_sweep_memo,
    set_sweep_store,
    sweep_digest,
    sweep_op,
    sweep_store_stats,
)
from repro.engine.store import (
    SweepStore,
    compute_payload,
    get_sweep_store,
)
from repro.engine.sweep import load_or_compute_payload, sweep_from_payload
from repro.hardware.cost_model import CostModel
from repro.hardware.spec import A100
from repro.ir.dims import DimEnv, bert_large_dims
from repro.transformer.graph_builder import build_mha_graph

ENV = bert_large_dims()
COST = CostModel()
GPU = COST.gpu


@pytest.fixture(autouse=True)
def _isolate_store_and_memo():
    """Each test runs with no active store and a cold memo."""
    clear_sweep_memo()
    old = get_sweep_store()
    set_sweep_store(None)
    yield
    set_sweep_store(old)
    clear_sweep_memo()


def _ops():
    g = build_mha_graph(qkv_fusion="unfused", include_backward=False)
    return g.op("q_proj"), g.op("softmax")


def _assert_bit_identical(a, b):
    assert a.num_configs == b.num_configs
    for x, y in zip(a.measurements, b.measurements):
        assert x.config == y.config
        assert x.time.compute_us == y.time.compute_us
        assert x.time.memory_us == y.time.memory_us
        assert x.time.launch_us == y.time.launch_us


class TestRoundTrip:
    def test_contraction_round_trip_bit_identical(self, tmp_path):
        contraction, _ = _ops()
        store = SweepStore(tmp_path)
        digest = sweep_digest(contraction, ENV, GPU, cap=200, seed=1)
        payload = compute_payload(contraction, ENV, GPU, cap=200, seed=1)
        store.save(digest, payload)
        loaded = store.load(digest)
        _assert_bit_identical(
            sweep_op_reference(contraction, ENV, COST, cap=200, seed=1),
            sweep_from_payload(contraction, loaded),
        )

    def test_kernel_round_trip_bit_identical(self, tmp_path):
        _, kernel = _ops()
        store = SweepStore(tmp_path)
        digest = sweep_digest(kernel, ENV, GPU, cap=150, seed=7)
        payload = compute_payload(kernel, ENV, GPU, cap=150, seed=7)
        store.save(digest, payload)
        loaded = store.load(digest)
        _assert_bit_identical(
            sweep_op_reference(kernel, ENV, COST, cap=150, seed=7),
            sweep_from_payload(kernel, loaded),
        )

    def test_missing_entry_is_clean_miss(self, tmp_path):
        store = SweepStore(tmp_path)
        assert store.load("0" * 64) is None
        assert store.stats()["misses"] == 1


class TestDigests:
    def test_contraction_digest_is_name_free(self):
        contraction, _ = _ops()
        import dataclasses

        renamed = dataclasses.replace(contraction, name="other_proj")
        d1 = sweep_digest(contraction, ENV, GPU, cap=100, seed=0)
        d2 = sweep_digest(renamed, ENV, GPU, cap=100, seed=0)
        assert d1 == d2

    def test_kernel_digest_keeps_the_name(self):
        # Kernel jitter is keyed by OpConfig.key(), which embeds the op
        # name, so renamed kernels time differently and must not share.
        _, kernel = _ops()
        import dataclasses

        renamed = dataclasses.replace(kernel, name="other_softmax")
        d1 = sweep_digest(kernel, ENV, GPU, cap=100, seed=0)
        d2 = sweep_digest(renamed, ENV, GPU, cap=100, seed=0)
        assert d1 != d2

    def test_irrelevant_env_dims_do_not_change_the_digest(self):
        contraction, _ = _ops()
        bigger = DimEnv({**ENV.sizes, "zz": 123})
        assert sweep_digest(contraction, ENV, GPU, cap=100, seed=0) == sweep_digest(
            contraction, bigger, GPU, cap=100, seed=0
        )

    def test_relevant_env_dims_change_the_digest(self):
        contraction, _ = _ops()
        assert sweep_digest(contraction, ENV, GPU, cap=100, seed=0) != sweep_digest(
            contraction, bert_large_dims(batch=16), GPU, cap=100, seed=0
        )

    def test_gpu_changes_the_digest(self):
        contraction, _ = _ops()
        assert sweep_digest(contraction, ENV, GPU, cap=100, seed=0) != sweep_digest(
            contraction, ENV, A100, cap=100, seed=0
        )

    def test_contraction_digest_ignores_sampling_knobs(self):
        contraction, _ = _ops()
        assert sweep_digest(contraction, ENV, GPU, cap=50, seed=1) == sweep_digest(
            contraction, ENV, GPU, cap=None, seed=99
        )

    def test_kernel_digest_tracks_binding_knobs_only(self):
        _, kernel = _ops()
        # Binding cap (space is larger than 60): cap and seed matter.
        assert sweep_digest(kernel, ENV, GPU, cap=60, seed=1) != sweep_digest(
            kernel, ENV, GPU, cap=60, seed=2
        )
        # Non-binding caps are all "exhaustive" and share one digest.
        assert sweep_digest(kernel, ENV, GPU, cap=10**9, seed=1) == sweep_digest(
            kernel, ENV, GPU, cap=None, seed=2
        )


class TestRejection:
    def _saved(self, tmp_path):
        contraction, _ = _ops()
        store = SweepStore(tmp_path)
        digest = sweep_digest(contraction, ENV, GPU, cap=100, seed=0)
        store.save(digest, compute_payload(contraction, ENV, GPU, cap=100, seed=0))
        return contraction, store, digest

    def _tamper_meta(self, store, digest, **changes):
        path = store.path_for(digest)
        with np.load(path, allow_pickle=False) as z:
            arrays = {k: z[k] for k in z.files if k != "meta"}
            meta = json.loads(str(z["meta"][()]))
        meta.update(changes)
        np.savez(path, meta=json.dumps(meta), **arrays)

    def test_version_mismatch_raises(self, tmp_path):
        _, store, digest = self._saved(tmp_path)
        self._tamper_meta(store, digest, version=-1)
        with pytest.raises(CacheMismatch, match="cost model version"):
            store.load(digest)
        assert store.stats()["rejected"] == 1

    def test_format_mismatch_raises(self, tmp_path):
        _, store, digest = self._saved(tmp_path)
        self._tamper_meta(store, digest, format=999)
        with pytest.raises(CacheMismatch, match="payload format"):
            store.load(digest)

    def test_digest_mismatch_raises(self, tmp_path):
        # An entry copied under the wrong name never masquerades.
        _, store, digest = self._saved(tmp_path)
        other = "f" * 64
        store.path_for(digest).rename(store.path_for(other))
        with pytest.raises(CacheMismatch, match="digest"):
            store.load(other)

    def test_corrupt_bytes_raise(self, tmp_path):
        _, store, digest = self._saved(tmp_path)
        store.path_for(digest).write_bytes(b"not an npz file at all")
        with pytest.raises(CacheMismatch, match="corrupt"):
            store.load(digest)

    def test_truncated_file_raises(self, tmp_path):
        _, store, digest = self._saved(tmp_path)
        path = store.path_for(digest)
        path.write_bytes(path.read_bytes()[:100])
        with pytest.raises(CacheMismatch):
            store.load(digest)

    def test_inconsistent_arrays_raise(self, tmp_path):
        _, store, digest = self._saved(tmp_path)
        path = store.path_for(digest)
        with np.load(path, allow_pickle=False) as z:
            arrays = {k: z[k] for k in z.files if k != "meta"}
            meta = str(z["meta"][()])
        arrays["F"] = arrays["F"][:, :-1]  # timing arrays shorter than order
        np.savez(path, meta=meta, **arrays)
        with pytest.raises(CacheMismatch, match="inconsistent length"):
            store.load(digest)

    def test_out_of_range_permutation_raises(self, tmp_path):
        _, store, digest = self._saved(tmp_path)
        path = store.path_for(digest)
        with np.load(path, allow_pickle=False) as z:
            arrays = {k: z[k] for k in z.files if k != "meta"}
            meta = str(z["meta"][()])
        arrays["I"][0, 0] = arrays["I"].shape[1] + 5  # corrupt sort order
        np.savez(path, meta=meta, **arrays)
        with pytest.raises(CacheMismatch, match="permutation"):
            store.load(digest)

    def test_negative_triple_index_raises(self, tmp_path):
        # Negative indices would silently index from the end in config_at.
        _, store, digest = self._saved(tmp_path)
        path = store.path_for(digest)
        with np.load(path, allow_pickle=False) as z:
            arrays = {k: z[k] for k in z.files if k != "meta"}
            meta = str(z["meta"][()])
        arrays["I"][1, 0] = -2  # triple_idx row
        np.savez(path, meta=meta, **arrays)
        with pytest.raises(CacheMismatch, match="triple index"):
            store.load(digest)

    def test_corrupt_kernel_knob_index_raises(self, tmp_path):
        _, kernel = _ops()
        store = SweepStore(tmp_path)
        digest = sweep_digest(kernel, ENV, GPU, cap=80, seed=0)
        store.save(digest, compute_payload(kernel, ENV, GPU, cap=80, seed=0))
        path = store.path_for(digest)
        with np.load(path, allow_pickle=False) as z:
            arrays = {k: z[k] for k in z.files if k != "meta"}
            meta = str(z["meta"][()])
        arrays["I"][1, 0] = 10**6  # first knob column, way past its table
        np.savez(path, meta=meta, **arrays)
        with pytest.raises(CacheMismatch, match="knob index"):
            store.load(digest)

    def test_store_root_expands_tilde(self, monkeypatch, tmp_path):
        monkeypatch.setenv("HOME", str(tmp_path))
        store = SweepStore("~/sweeps")
        assert store.root == tmp_path / "sweeps"

    def test_bad_entries_are_recomputed_and_overwritten(self, tmp_path):
        contraction, store, digest = self._saved(tmp_path)
        store.path_for(digest).write_bytes(b"garbage")
        payload = load_or_compute_payload(
            contraction, ENV, GPU, cap=100, seed=0, store=store
        )
        _assert_bit_identical(
            sweep_op_reference(contraction, ENV, COST, cap=100, seed=0),
            sweep_from_payload(contraction, payload),
        )
        # The overwritten entry is valid again.
        assert store.load(digest) is not None


class TestSweepOpIntegration:
    def test_sweep_op_populates_and_reuses_the_store(self, tmp_path):
        contraction, _ = _ops()
        store = SweepStore(tmp_path)
        first = sweep_op(contraction, ENV, COST, cap=100, store=store)
        assert store.stats()["saves"] == 1
        clear_sweep_memo()  # simulate a fresh process: L1 gone, L2 warm
        second = sweep_op(contraction, ENV, COST, cap=100, store=store)
        assert store.stats()["hits"] == 1
        assert second is not first
        _assert_bit_identical(first, second)

    def test_memo_false_bypasses_the_store(self, tmp_path):
        contraction, _ = _ops()
        store = SweepStore(tmp_path)
        set_sweep_store(store)
        sweep_op(contraction, ENV, COST, cap=100, memo=False)
        assert store.stats() == {
            "entries": 0, "hits": 0, "misses": 0, "saves": 0, "rejected": 0,
            "evictions": 0, "delta_hits": 0,
        }

    def test_active_store_resolves_from_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(store_mod.STORE_ENV_VAR, str(tmp_path / "s"))
        store_mod._ACTIVE = store_mod._UNSET
        store = get_sweep_store()
        assert isinstance(store, SweepStore)
        assert store.root == tmp_path / "s"

    def test_stats_without_store_are_zero(self):
        assert sweep_store_stats() == {
            "entries": 0, "hits": 0, "misses": 0, "saves": 0, "rejected": 0,
            "evictions": 0, "delta_hits": 0,
        }


class TestEviction:
    """Size-bounded LRU eviction (``max_bytes``) for long-lived daemons."""

    def _payloads(self, n: int):
        """n distinct (digest, payload) pairs of near-identical size."""
        _, kernel = _ops()
        out = []
        for seed in range(n):
            digest = sweep_digest(kernel, ENV, GPU, cap=40, seed=seed)
            out.append((digest, compute_payload(kernel, ENV, GPU, cap=40, seed=seed)))
        return out

    def _entry_size(self, tmp_path) -> int:
        (digest, payload), = self._payloads(1)
        probe = SweepStore(tmp_path / "probe")
        return probe.save(digest, payload).stat().st_size

    def test_max_bytes_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="max_bytes"):
            SweepStore(tmp_path, max_bytes=0)
        with pytest.raises(ValueError, match="max_bytes"):
            SweepStore(tmp_path, max_bytes=-5)

    def test_oldest_mtime_entry_evicted_over_budget(self, tmp_path):
        import os
        import time

        size = self._entry_size(tmp_path)
        store = SweepStore(tmp_path / "s", max_bytes=2 * size + size // 2)
        (d1, p1), (d2, p2), (d3, p3) = self._payloads(3)
        path1 = store.save(d1, p1)
        path2 = store.save(d2, p2)
        now = time.time()
        os.utime(path1, (now - 300, now - 300))  # d1 is the LRU entry
        os.utime(path2, (now - 100, now - 100))
        store.save(d3, p3)
        assert store.load(d1) is None  # evicted
        assert store.load(d2) is not None
        assert store.load(d3) is not None
        assert store.stats()["evictions"] == 1
        assert store.stats()["entries"] == 2

    def test_load_refreshes_mtime_so_eviction_is_lru(self, tmp_path):
        import os
        import time

        size = self._entry_size(tmp_path)
        store = SweepStore(tmp_path / "s", max_bytes=2 * size + size // 2)
        (d1, p1), (d2, p2), (d3, p3) = self._payloads(3)
        path1 = store.save(d1, p1)
        path2 = store.save(d2, p2)
        now = time.time()
        os.utime(path1, (now - 300, now - 300))
        os.utime(path2, (now - 600, now - 600))  # d2 older than d1 on disk...
        store.load(d2)  # ...but recently *used*: its mtime refreshes to now
        store.save(d3, p3)
        assert store.load(d1) is None  # d1 is the least recently used
        assert store.load(d2) is not None
        assert store.load(d3) is not None

    def test_just_written_entry_survives_even_a_tiny_budget(self, tmp_path):
        store = SweepStore(tmp_path / "s", max_bytes=1)
        (d1, p1), (d2, p2) = self._payloads(2)
        store.save(d1, p1)
        store.save(d2, p2)  # evicts d1, keeps itself despite the budget
        assert store.load(d2) is not None
        assert store.stats()["entries"] == 1
        assert store.stats()["evictions"] == 1

    def test_unbounded_store_never_evicts(self, tmp_path):
        store = SweepStore(tmp_path / "s")
        for digest, payload in self._payloads(3):
            store.save(digest, payload)
        assert store.stats()["entries"] == 3
        assert store.stats()["evictions"] == 0

    def test_eviction_preserves_surviving_payloads(self, tmp_path):
        _, kernel = _ops()
        size = self._entry_size(tmp_path)
        store = SweepStore(tmp_path / "s", max_bytes=size + size // 2)
        import os
        import time

        (d1, p1), (d2, p2) = self._payloads(2)
        path1 = store.save(d1, p1)
        os.utime(path1, (time.time() - 60, time.time() - 60))
        store.save(d2, p2)
        _assert_bit_identical(
            sweep_op_reference(kernel, ENV, COST, cap=40, seed=1),
            sweep_from_payload(kernel, store.load(d2)),
        )


class TestStructuralIndex:
    """The sidecar map from structural digests to exact-digest twins."""

    def _warm(self, store, *, seq=512, cap=100, seed=3):
        contraction, _ = _ops()
        env = bert_large_dims(seq=seq)
        digest = sweep_digest(contraction, env, GPU, cap=cap, seed=seed)
        structural = store_mod.structural_sweep_digest(
            contraction, env, GPU, cap=cap, seed=seed
        )
        store.save(digest, compute_payload(contraction, env, GPU, cap=cap, seed=seed))
        return contraction, env, digest, structural

    def test_save_maintains_the_sidecar(self, tmp_path):
        store = SweepStore(tmp_path)
        _, _, digest, structural = self._warm(store)
        assert json.loads(store.index_path.read_text()) == {structural: digest}

    def test_structural_lookup_never_scans_the_directory(self, tmp_path):
        store = SweepStore(tmp_path)
        _, _, digest, structural = self._warm(store)
        # A fresh store object over the same directory resolves purely
        # through the sidecar file.
        fresh = SweepStore(tmp_path)
        payload = fresh.load_structural(structural)
        assert payload is not None
        assert payload["structural"] == structural
        # Skeleton-only: the base times were not deserialized.
        assert "compute_us" not in payload and "sorted_totals" not in payload

    def test_same_structure_different_sizes_share_one_entry(self, tmp_path):
        store = SweepStore(tmp_path)
        _, _, d512, s512 = self._warm(store, seq=512)
        _, _, d513, s513 = self._warm(store, seq=513)
        assert s512 == s513 and d512 != d513
        # Last writer wins: the sidecar points at the newest twin.
        assert json.loads(store.index_path.read_text()) == {s512: d513}

    def test_eviction_drops_the_sidecar_entry(self, tmp_path):
        store = SweepStore(tmp_path)
        contraction, env, digest, structural = self._warm(store)
        size = store.path_for(digest).stat().st_size
        import os
        import time

        bounded = SweepStore(tmp_path, max_bytes=size)
        os.utime(store.path_for(digest), (time.time() - 300, time.time() - 300))
        # Saving a structurally different op over budget evicts the old npz
        # and must drop its sidecar entry with it.
        _, kernel = _ops()
        kd = sweep_digest(kernel, ENV, GPU, cap=40, seed=0)
        bounded.save(kd, compute_payload(kernel, ENV, GPU, cap=40, seed=0))
        assert not store.path_for(digest).exists()
        assert structural not in json.loads(store.index_path.read_text())
        assert bounded.load_structural(structural) is None

    def test_stale_sidecar_entry_self_heals(self, tmp_path):
        store = SweepStore(tmp_path)
        _, _, digest, structural = self._warm(store)
        store.path_for(digest).unlink()  # pruned externally (nightly CI)
        assert store.load_structural(structural) is None
        # The dangling mapping was dropped, not retried forever.
        assert json.loads(store.index_path.read_text()) == {}

    def test_corrupt_twin_is_dropped_not_served(self, tmp_path):
        store = SweepStore(tmp_path)
        _, _, digest, structural = self._warm(store)
        store.path_for(digest).write_bytes(b"garbage")
        assert store.load_structural(structural) is None
        assert structural not in json.loads(store.index_path.read_text())

    def test_corrupt_sidecar_degrades_to_empty(self, tmp_path):
        store = SweepStore(tmp_path)
        _, _, digest, structural = self._warm(store)
        store.index_path.write_text("{not json")
        fresh = SweepStore(tmp_path)
        assert fresh.load_structural(structural) is None
        # The exact entry is untouched — the index is a pure accelerator.
        assert fresh.load(digest) is not None


class TestDeltaResweep:
    """The delta tier: rebuild a perturbed-size payload from a twin."""

    def test_load_or_compute_uses_the_delta_path(self, tmp_path):
        from repro.engine.sweep import delta_payload_from_store

        contraction, _ = _ops()
        store = SweepStore(tmp_path)
        env512 = bert_large_dims(seq=512)
        env513 = bert_large_dims(seq=513)
        d512 = sweep_digest(contraction, env512, GPU, cap=100, seed=5)
        store.save(d512, compute_payload(contraction, env512, GPU, cap=100, seed=5))
        delta = delta_payload_from_store(
            contraction, env513, GPU, cap=100, seed=5, store=store
        )
        assert delta is not None
        assert store.stats()["delta_hits"] == 1
        # Bit-identical to the cold scalar reference at the new sizes.
        _assert_bit_identical(
            sweep_op_reference(contraction, env513, COST, cap=100, seed=5),
            sweep_from_payload(contraction, delta),
        )

    def test_delta_result_persists_under_the_exact_digest(self, tmp_path):
        contraction, _ = _ops()
        store = SweepStore(tmp_path)
        env512 = bert_large_dims(seq=512)
        env513 = bert_large_dims(seq=513)
        d512 = sweep_digest(contraction, env512, GPU, cap=100, seed=6)
        d513 = sweep_digest(contraction, env513, GPU, cap=100, seed=6)
        store.save(d512, compute_payload(contraction, env512, GPU, cap=100, seed=6))
        load_or_compute_payload(contraction, env513, GPU, cap=100, seed=6, store=store)
        assert store.stats()["delta_hits"] == 1
        assert store.path_for(d513).exists()
        # And round-trips exactly through a plain exact-digest load.
        _assert_bit_identical(
            sweep_op_reference(contraction, env513, COST, cap=100, seed=6),
            sweep_from_payload(contraction, store.load(d513)),
        )

    def test_delta_disabled_by_env_and_override(self, tmp_path, monkeypatch):
        from repro.engine.sweep import (
            DELTA_ENV_VAR,
            delta_enabled,
            delta_payload_from_store,
            set_delta_enabled,
        )

        contraction, _ = _ops()
        store = SweepStore(tmp_path)
        env512 = bert_large_dims(seq=512)
        env513 = bert_large_dims(seq=513)
        d512 = sweep_digest(contraction, env512, GPU, cap=100, seed=8)
        store.save(d512, compute_payload(contraction, env512, GPU, cap=100, seed=8))
        monkeypatch.setenv(DELTA_ENV_VAR, "0")
        assert not delta_enabled()
        assert delta_payload_from_store(
            contraction, env513, GPU, cap=100, seed=8, store=store
        ) is None
        set_delta_enabled(True)  # explicit override beats the env var
        try:
            assert delta_enabled()
            assert delta_payload_from_store(
                contraction, env513, GPU, cap=100, seed=8, store=store
            ) is not None
        finally:
            set_delta_enabled(None)

    def test_knob_change_is_not_a_structural_twin(self, tmp_path):
        from repro.engine.sweep import delta_payload_from_store

        contraction, kernel = _ops()
        store = SweepStore(tmp_path)
        env = bert_large_dims()
        # A capped kernel sweep's sampled rows depend on (cap, seed), so
        # those knobs are structural: changing either is a different
        # problem, not a twin.
        kd = sweep_digest(kernel, env, GPU, cap=40, seed=9)
        store.save(kd, compute_payload(kernel, env, GPU, cap=40, seed=9))
        assert delta_payload_from_store(
            kernel, env, GPU, cap=40, seed=10, store=store
        ) is None
        assert delta_payload_from_store(
            kernel, env, GPU, cap=20, seed=9, store=store
        ) is None
        # The GPU spec is structural for every op class.
        cd = sweep_digest(contraction, env, GPU, cap=100, seed=9)
        store.save(cd, compute_payload(contraction, env, GPU, cap=100, seed=9))
        assert delta_payload_from_store(
            contraction, env, A100, cap=100, seed=9, store=store
        ) is None


class TestEnvBudget:
    def test_env_var_sets_the_budget(self, tmp_path, monkeypatch):
        monkeypatch.setenv(store_mod.MAX_BYTES_ENV_VAR, "12345")
        store = set_sweep_store(tmp_path / "s")
        assert store.max_bytes == 12345

    def test_env_var_resolves_on_first_get(self, tmp_path, monkeypatch):
        monkeypatch.setenv(store_mod.STORE_ENV_VAR, str(tmp_path / "s"))
        monkeypatch.setenv(store_mod.MAX_BYTES_ENV_VAR, "777")
        store_mod._ACTIVE = store_mod._UNSET
        assert get_sweep_store().max_bytes == 777

    def test_nonpositive_env_budget_means_unbounded(self, tmp_path, monkeypatch):
        monkeypatch.setenv(store_mod.MAX_BYTES_ENV_VAR, "0")
        assert set_sweep_store(tmp_path / "s").max_bytes is None

    def test_malformed_env_budget_raises(self, tmp_path, monkeypatch):
        monkeypatch.setenv(store_mod.MAX_BYTES_ENV_VAR, "lots")
        with pytest.raises(ValueError, match=store_mod.MAX_BYTES_ENV_VAR):
            set_sweep_store(tmp_path / "s")
