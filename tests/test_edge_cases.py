"""Edge-case and invariance tests across modules."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.dims import DimEnv, bert_large_dims
from repro.ir.operator import FlopIoSummary
from repro.ir.tensor import TensorSpec
from repro.ir.views import view_spec
from repro.ops.layernorm import layernorm_forward
from repro.ops.softmax import softmax_forward

ENV = bert_large_dims()


class TestFlopIoSummary:
    def test_addition(self):
        a = FlopIoSummary(flop=10, input_words=2, output_words=3, bytes_moved=10)
        b = FlopIoSummary(flop=20, input_words=5, output_words=7, bytes_moved=24)
        c = a + b
        assert c.flop == 30
        assert c.words_moved == 17
        assert c.bytes_moved == 34

    def test_flop_per_word_zero_words(self):
        s = FlopIoSummary(flop=10, input_words=0, output_words=0, bytes_moved=0)
        assert s.flop_per_word == float("inf")


class TestViews:
    def test_view_renames_dims(self):
        base = TensorSpec("x", ("i", "b", "j"))
        view = TensorSpec("xk", ("i", "b", "k"))
        v = view_spec("alias", base, view)
        assert v.is_view
        assert v.inputs[0].name == "x"
        assert v.outputs[0].dims == ("i", "b", "k")

    def test_view_in_graph_is_transparent_to_totals(self):
        from repro.transformer.graph_builder import build_mha_graph

        g = build_mha_graph(qkv_fusion="qkv", include_backward=False)
        views = [op for op in g.ops if op.is_view]
        assert views
        assert all(op.flops(ENV) == 0 and op.io_bytes(ENV) == 0 for op in views)


class TestNormalizationInvariances:
    @given(
        rows=st.integers(4, 12), cols=st.integers(2, 6),
        shift=st.floats(min_value=-5, max_value=5),
        seed=st.integers(0, 999),
    )
    @settings(max_examples=25, deadline=None)
    def test_layernorm_shift_invariance(self, rows, cols, shift, seed):
        """LayerNorm is invariant to constant shifts along the normalized
        axis — the property making the residual-then-normalize structure
        stable."""
        rng = np.random.default_rng(seed)
        x = rng.normal(0, 1, (rows, cols))
        g = rng.normal(1, 0.1, rows)
        b = rng.normal(0, 0.1, rows)
        y1, _, _ = layernorm_forward(x, g, b, axis=0)
        y2, _, _ = layernorm_forward(x + shift, g, b, axis=0)
        np.testing.assert_allclose(y1, y2, atol=1e-6)

    @given(
        rows=st.integers(1, 6), cols=st.integers(2, 8),
        shift=st.floats(min_value=-50, max_value=50),
        seed=st.integers(0, 999),
    )
    @settings(max_examples=25, deadline=None)
    def test_softmax_shift_invariance(self, rows, cols, shift, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(0, 1, (rows, cols))
        y1 = softmax_forward(x)
        y2 = softmax_forward(x + shift)
        np.testing.assert_allclose(y1, y2, atol=1e-5)


class TestDimEnvEdges:
    def test_single_dim(self):
        env = DimEnv({"a": 1})
        assert env.volume(("a",)) == 1
        assert env.shape(("a",)) == (1,)

    def test_empty_volume_is_one(self):
        assert DimEnv({"a": 5}).volume(()) == 1


class TestGraphEdgeCases:
    def test_empty_graph_totals(self):
        from repro.ir.graph import DataflowGraph

        g = DataflowGraph("empty")
        assert g.total_flops(ENV) == 0
        assert g.total_io_bytes(ENV) == 0
        assert len(g) == 0
        assert list(g.edges()) == []

    def test_replace_unknown_op_raises(self):
        from repro.ir.graph import DataflowGraph

        g = DataflowGraph("g")
        with pytest.raises(KeyError):
            g.replace_ops(["nope"], [])

    def test_op_lookup_errors(self):
        from repro.ir.graph import DataflowGraph

        g = DataflowGraph("g")
        with pytest.raises(KeyError):
            g.op("missing")
        with pytest.raises(KeyError):
            g.container("missing")


class TestSweepEdgeCases:
    def test_empty_sweep_best_raises(self):
        from repro.autotuner.tuner import SweepResult
        from repro.ops.elementwise import bias_spec

        x = TensorSpec("x", ("a", "b"))
        op = bias_spec("b", x, ("a",), "y")
        sweep = SweepResult(op=op, measurements=[])
        with pytest.raises(ValueError):
            _ = sweep.best
        with pytest.raises(ValueError):
            sweep.quantile_us(0.5)

    def test_cap_one(self):
        from repro.layouts.configspace import kernel_configs
        from repro.ops.elementwise import bias_spec

        x = TensorSpec("x", ("p", "h", "b", "j"))
        op = bias_spec("b", x, ("p", "h"), "y")
        configs = list(kernel_configs(op, ENV, cap=1))
        assert len(configs) == 1
