"""Unit and integration tests for the tuning service (:mod:`repro.service`).

Protocol round trips (the wire key *is* the store key), single-flight
coalescing, the bounded L1 cache, metrics, and the HTTP daemon end to end —
including the acceptance property that a served response is byte-identical
to one derived from a fresh scalar ``sweep_op_reference`` sweep.
"""

from __future__ import annotations

import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import __version__
from repro.autotuner.tuner import sweep_op_reference
from repro.engine import clear_sweep_memo, sweep_digest
from repro.engine.store import SweepStore, compute_payload
from repro.fusion import apply_paper_fusion
from repro.hardware.cost_model import COST_MODEL_VERSION, CostModel
from repro.hardware.spec import A100, V100
from repro.ir.dims import bert_large_dims
from repro.service import (
    BoundedCache,
    ProtocolError,
    ServiceError,
    SingleFlight,
    TuningClient,
    TuningService,
    canonical_json_bytes,
    op_from_wire,
    op_to_wire,
)
from repro.service.metrics import ServiceMetrics
from repro.service.protocol import (
    gpu_from_wire,
    gpu_to_wire,
    parse_optimize_request,
    parse_sweep_request,
    sweep_request_digest,
    sweep_request_wire,
    sweep_response_from_sweep,
)
from repro.service.server import serve_background
from repro.transformer.graph_builder import build_mha_graph

ENV = bert_large_dims()
COST = CostModel()
GPU = COST.gpu
CAP = 60


@pytest.fixture(autouse=True)
def _cold_memo():
    clear_sweep_memo()
    yield
    clear_sweep_memo()


def _ops():
    g = build_mha_graph(qkv_fusion="unfused", include_backward=False)
    return g.op("q_proj"), g.op("softmax")


def _fused_op():
    g = apply_paper_fusion(
        build_mha_graph(qkv_fusion="qkv", include_backward=False), ENV
    )
    op = g.op("SM")
    assert op.members  # a real fusion product, with member sub-operators
    return op


# ---------------------------------------------------------------------------
# Protocol
# ---------------------------------------------------------------------------

class TestWireRoundTrip:
    @pytest.mark.parametrize("pick", [0, 1])
    def test_digest_survives_the_wire(self, pick):
        """The protocol's central invariant: wire key == store key."""
        op = _ops()[pick]
        rebuilt = op_from_wire(op_to_wire(op))
        assert sweep_digest(rebuilt, ENV, GPU, cap=CAP, seed=1) == sweep_digest(
            op, ENV, GPU, cap=CAP, seed=1
        )

    def test_fused_op_with_members_survives_the_wire(self):
        op = _fused_op()
        rebuilt = op_from_wire(op_to_wire(op))
        assert len(rebuilt.members) == len(op.members)
        assert sweep_digest(rebuilt, ENV, GPU, cap=CAP, seed=1) == sweep_digest(
            op, ENV, GPU, cap=CAP, seed=1
        )

    def test_round_trip_preserves_structure(self):
        op, _ = _ops()
        rebuilt = op_from_wire(op_to_wire(op))
        assert rebuilt.name == op.name
        assert rebuilt.op_class is op.op_class
        assert rebuilt.einsum == op.einsum
        assert [t.dims for t in rebuilt.inputs] == [t.dims for t in op.inputs]
        assert rebuilt.ispace.independent == op.ispace.independent
        assert rebuilt.ispace.reduction == op.ispace.reduction

    def test_gpu_round_trip_and_names(self):
        assert gpu_from_wire(gpu_to_wire(A100)) == A100
        assert gpu_from_wire("V100") == V100
        assert gpu_from_wire(None) == V100
        with pytest.raises(ProtocolError, match="unknown GPU name"):
            gpu_from_wire("H100")

    def test_unknown_op_class_rejected(self):
        wire = op_to_wire(_ops()[0])
        wire["class"] = "quantum annealing"
        with pytest.raises(ProtocolError, match="unknown operator class"):
            op_from_wire(wire)

    def test_unknown_dtype_rejected(self):
        wire = op_to_wire(_ops()[0])
        wire["inputs"][0]["dtype"] = "int4"
        with pytest.raises(ProtocolError, match="unknown dtype"):
            op_from_wire(wire)

    def test_missing_field_names_the_path(self):
        wire = op_to_wire(_ops()[0])
        del wire["inputs"][1]["dims"]
        with pytest.raises(ProtocolError, match=r"op\.inputs\[1\]"):
            op_from_wire(wire)


class TestSweepRequestParsing:
    def _body(self, **overrides):
        body = sweep_request_wire(_ops()[0], ENV, cap=CAP, seed=3, top_k=5)
        body.update(overrides)
        return body

    def test_parse_round_trip(self):
        req = parse_sweep_request(self._body())
        assert req.cap == CAP and req.seed == 3 and req.top_k == 5
        assert req.gpu == V100
        assert sweep_request_digest(req) == sweep_digest(
            req.op, req.env, req.gpu, cap=CAP, seed=3
        )

    def test_protocol_version_checked(self):
        with pytest.raises(ProtocolError, match="unsupported protocol"):
            parse_sweep_request(self._body(protocol=99))

    def test_missing_dim_sizes_rejected(self):
        with pytest.raises(ProtocolError, match="missing sizes"):
            parse_sweep_request(self._body(dims={"b": 8}))

    def test_view_op_rejected(self):
        import dataclasses

        view = dataclasses.replace(_ops()[0], is_view=True)
        with pytest.raises(ProtocolError, match="view operators"):
            parse_sweep_request(self._body(op=op_to_wire(view)))

    @pytest.mark.parametrize("cap", [0, -3, 1.5, "many", True])
    def test_bad_cap_rejected(self, cap):
        with pytest.raises(ProtocolError, match="cap must be"):
            parse_sweep_request(self._body(cap=cap))

    def test_uncapped_sweep_allowed(self):
        assert parse_sweep_request(self._body(cap=None)).cap is None

    @pytest.mark.parametrize("top_k", [0, -1, "all", False])
    def test_bad_top_k_rejected(self, top_k):
        with pytest.raises(ProtocolError, match="top_k must be"):
            parse_sweep_request(self._body(top_k=top_k))

    def test_optimize_request_validation(self):
        assert parse_optimize_request({"model": "mha"}).model == "mha"
        with pytest.raises(ProtocolError, match="unknown model"):
            parse_optimize_request({"model": "resnet"})
        with pytest.raises(ProtocolError, match="unknown qkv_fusion"):
            parse_optimize_request({"qkv_fusion": "qkvqkv"})

    def test_omitted_caps_match_the_client_defaults(self):
        # A hand-written body must land on the same cache keys as a
        # client-built one, so the server-side defaults are the client's.
        from repro.service.protocol import (
            DEFAULT_OPTIMIZE_CAP,
            DEFAULT_SWEEP_CAP,
            optimize_request_wire,
        )

        assert parse_sweep_request(self._body()).cap == CAP
        bare = dict(self._body())
        del bare["cap"]
        assert parse_sweep_request(bare).cap == DEFAULT_SWEEP_CAP
        assert DEFAULT_SWEEP_CAP == sweep_request_wire(_ops()[0], ENV)["cap"]
        assert parse_optimize_request({}).cap == DEFAULT_OPTIMIZE_CAP
        assert DEFAULT_OPTIMIZE_CAP == optimize_request_wire()["cap"]


class TestResponseIdentity:
    def test_engine_and_reference_responses_are_byte_identical(self):
        """Engine-derived and scalar-reference-derived bodies: equal bytes."""
        op, _ = _ops()
        digest = sweep_digest(op, ENV, GPU, cap=CAP, seed=5)
        from repro.engine.sweep import sweep_from_payload

        engine_sweep = sweep_from_payload(
            op, compute_payload(op, ENV, GPU, cap=CAP, seed=5)
        )
        ref_sweep = sweep_op_reference(op, ENV, COST, cap=CAP, seed=5)
        a = canonical_json_bytes(
            sweep_response_from_sweep(engine_sweep, digest=digest, top_k=3)
        )
        b = canonical_json_bytes(
            sweep_response_from_sweep(ref_sweep, digest=digest, top_k=3)
        )
        assert a == b

    def test_response_shape(self):
        op, _ = _ops()
        sweep = sweep_op_reference(op, ENV, COST, cap=CAP, seed=5)
        resp = sweep_response_from_sweep(sweep, digest="d" * 64, top_k=4)
        assert resp["cost_model_version"] == COST_MODEL_VERSION
        assert resp["num_configs"] == sweep.num_configs
        assert len(resp["top"]) == min(4, sweep.num_configs)
        assert resp["best"] == resp["top"][0]
        assert resp["best"]["total_us"] == sweep.best.total_us


# ---------------------------------------------------------------------------
# Coalescing primitives
# ---------------------------------------------------------------------------

class TestSingleFlight:
    def test_concurrent_callers_coalesce_to_one_evaluation(self):
        sf = SingleFlight()
        started, release = threading.Event(), threading.Event()
        calls = []

        def slow():
            calls.append(1)
            started.set()
            release.wait(10)
            return "payload"

        results = []
        threads = [
            threading.Thread(target=lambda: results.append(sf.do("k", slow)))
        ]
        threads[0].start()
        assert started.wait(10)  # the leader is inside fn
        for _ in range(4):
            t = threading.Thread(target=lambda: results.append(sf.do("k", slow)))
            t.start()
            threads.append(t)
        deadline = time.monotonic() + 10
        while sf.coalesced < 4 and time.monotonic() < deadline:
            time.sleep(0.001)  # followers must be parked before release
        release.set()
        for t in threads:
            t.join(10)
        assert len(calls) == 1
        assert sf.led == 1 and sf.coalesced == 4
        assert [v for v, _ in results] == ["payload"] * 5
        assert sum(leader for _, leader in results) == 1
        assert sf.inflight() == 0

    def test_leader_exception_propagates_to_every_waiter(self):
        sf = SingleFlight()
        started, release = threading.Event(), threading.Event()

        def boom():
            started.set()
            release.wait(10)
            raise RuntimeError("sweep failed")

        errors = []

        def call():
            try:
                sf.do("k", boom)
            except RuntimeError as exc:
                errors.append(str(exc))

        threads = [threading.Thread(target=call)]
        threads[0].start()
        assert started.wait(10)
        t = threading.Thread(target=call)
        t.start()
        threads.append(t)
        deadline = time.monotonic() + 10
        while sf.coalesced < 1 and time.monotonic() < deadline:
            time.sleep(0.001)
        release.set()
        for t in threads:
            t.join(10)
        assert errors == ["sweep failed"] * 2
        # The failed flight is retired: the next caller re-evaluates.
        value, leader = sf.do("k", lambda: "recovered")
        assert value == "recovered" and leader

    def test_sequential_callers_each_lead(self):
        sf = SingleFlight()
        assert sf.do("k", lambda: 1) == (1, True)
        assert sf.do("k", lambda: 2) == (2, True)
        assert sf.led == 2 and sf.coalesced == 0

    def test_follower_wait_times_out_instead_of_parking_forever(self):
        sf = SingleFlight()
        started, release = threading.Event(), threading.Event()

        def hung_leader():
            started.set()
            release.wait(10)
            return "late"

        t = threading.Thread(target=lambda: sf.do("k", hung_leader))
        t.start()
        assert started.wait(10)
        with pytest.raises(TimeoutError, match="in-flight evaluation"):
            sf.do("k", lambda: "n/a", timeout=0.05)
        release.set()
        t.join(10)


class TestBoundedCache:
    def test_lru_eviction_order(self):
        cache = BoundedCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh: "b" is now the LRU entry
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert cache.evictions == 1

    def test_put_overwrite_does_not_evict(self):
        cache = BoundedCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)
        assert len(cache) == 2 and cache.evictions == 0
        assert cache.get("a") == 10

    def test_stats_and_validation(self):
        with pytest.raises(ValueError):
            BoundedCache(0)
        cache = BoundedCache(8)
        cache.get("missing")
        cache.put("a", 1)
        cache.get("a")
        assert cache.stats() == {
            "entries": 1, "max_entries": 8, "hits": 1, "misses": 1,
            "evictions": 0,
        }


class TestServiceMetrics:
    def test_latency_percentiles(self):
        m = ServiceMetrics()
        for ms in range(1, 101):  # 1..100 ms
            m.record_request("/v1/sweep", ms / 1e3)
        snap = m.snapshot()["latency_ms"]["/v1/sweep"]
        assert snap["count"] == 100
        assert snap["p50_ms"] == pytest.approx(51.0)
        assert snap["p95_ms"] == pytest.approx(95.0)
        assert snap["p99_ms"] == pytest.approx(99.0)
        assert snap["max_ms"] == pytest.approx(100.0)

    def test_tier_counting_and_validation(self):
        m = ServiceMetrics()
        m.record_tier("l1")
        m.record_tier("computed")
        m.record_tier("l1")
        assert m.tier_counts() == {
            "l1": 2, "coalesced": 0, "l2": 0, "delta": 0, "computed": 1,
        }
        with pytest.raises(ValueError, match="unknown resolve tier"):
            m.record_tier("l7")

    def test_response_kind_counting_and_validation(self):
        m = ServiceMetrics()
        m.record_response("json")
        m.record_response("binary")
        m.record_response("not_modified")
        m.record_response("json")
        assert m.snapshot()["responses"] == {
            "json": 2, "binary": 1, "not_modified": 1,
        }
        with pytest.raises(ValueError, match="unknown response kind"):
            m.record_response("xml")

    def test_window_is_bounded(self):
        from repro.service import metrics as metrics_mod

        m = ServiceMetrics()
        for _ in range(metrics_mod.WINDOW + 50):
            m.record_request("/healthz", 0.001)
        snap = m.snapshot()
        assert snap["latency_ms"]["/healthz"]["count"] == metrics_mod.WINDOW
        assert snap["requests"]["/healthz"] == metrics_mod.WINDOW + 50

    def test_optimize_breakdown_accumulates(self):
        m = ServiceMetrics()
        assert m.snapshot()["optimize_breakdown"] == {
            "computed": 0, "sweep_ms_total": 0.0, "select_ms_total": 0.0,
            "sweep_ms_avg": 0.0, "select_ms_avg": 0.0,
        }
        m.record_optimize_breakdown(0.200, 0.010)
        m.record_optimize_breakdown(0.100, 0.030)
        snap = m.snapshot()["optimize_breakdown"]
        assert snap["computed"] == 2
        assert snap["sweep_ms_total"] == pytest.approx(300.0)
        assert snap["select_ms_total"] == pytest.approx(40.0)
        assert snap["sweep_ms_avg"] == pytest.approx(150.0)
        assert snap["select_ms_avg"] == pytest.approx(20.0)


# ---------------------------------------------------------------------------
# Tiered resolution (service core, HTTP-free)
# ---------------------------------------------------------------------------

class TestTieredResolution:
    def test_computed_then_l1_attribution(self):
        svc = TuningService(store=None)
        calls = []

        def compute():
            calls.append(1)
            return {"x": 1}

        assert svc._resolve("d1", compute) == {"x": 1}
        assert svc.metrics.tier_counts()["computed"] == 1
        assert svc._resolve("d1", compute) == {"x": 1}
        assert svc.metrics.tier_counts()["l1"] == 1
        assert len(calls) == 1

    def test_sweep_resolves_from_l2_across_services(self, tmp_path):
        op, _ = _ops()
        body = sweep_request_wire(op, ENV, cap=CAP, seed=2)
        store = SweepStore(tmp_path)
        svc1 = TuningService(store=store)
        first = svc1.handle_sweep(body)
        assert svc1.metrics.tier_counts()["computed"] == 1
        assert store.stats()["saves"] == 1

        clear_sweep_memo()
        svc2 = TuningService(store=SweepStore(tmp_path))
        second = svc2.handle_sweep(body)
        assert svc2.metrics.tier_counts() == {
            "l1": 0, "coalesced": 0, "l2": 1, "delta": 0, "computed": 0,
        }
        assert canonical_json_bytes(first) == canonical_json_bytes(second)

    def test_storeless_service_ignores_the_active_store(self, tmp_path):
        # An explicitly storeless daemon must not fall back to the
        # process-active store inside sweep_graph.
        from repro.engine import get_sweep_store, set_sweep_store

        old = get_sweep_store()
        global_store = set_sweep_store(tmp_path / "global")
        try:
            svc = TuningService(store=None)
            svc.handle_optimize(
                {"model": "mha", "include_backward": False, "cap": CAP}
            )
            assert global_store.stats()["saves"] == 0
            assert global_store.stats()["entries"] == 0
        finally:
            set_sweep_store(old)

    def test_optimize_response_carries_selection_and_breakdown(self):
        from repro.configsel.selector import select_configurations
        from repro.service.protocol import build_request_graph, parse_optimize_request

        svc = TuningService(store=None)
        body = {"model": "mha", "include_backward": False, "cap": CAP}
        resp = svc.handle_optimize(body)
        sel = resp["selection"]
        assert sel is not None
        assert len(sel["chain"]) > 0
        assert sel["total_us"] > 0
        assert sel["chain_cost_us"] > 0
        assert len(sel["chosen"]) == resp["num_kernels"]
        # The wire selection matches an offline run of the same request.
        req = parse_optimize_request(body)
        graph = build_request_graph(req)
        offline = select_configurations(
            graph, req.env, CostModel(req.gpu), cap=req.cap
        )
        assert sel["chain"] == [s.op_name for s in offline.chain]
        assert sel["chain_cost_us"] == offline.chain_cost_us
        assert sel["total_us"] == offline.total_us
        # Exactly one cold computation was attributed to the two phases.
        breakdown = svc.metrics.snapshot()["optimize_breakdown"]
        assert breakdown["computed"] == 1
        assert breakdown["sweep_ms_total"] > 0
        assert breakdown["select_ms_total"] > 0
        # A warm (L1) replay serves the same body without recomputing.
        assert svc.handle_optimize(body) == resp
        assert svc.metrics.snapshot()["optimize_breakdown"]["computed"] == 1

    def test_engine_memo_stays_bounded(self):
        from repro.engine.memo import sweep_memo_stats

        svc = TuningService(store=None, memo_limit=0)
        svc.handle_optimize({"model": "mha", "include_backward": False, "cap": CAP})
        assert sweep_memo_stats()["size"] == 0  # cleared past the limit

    def test_oversized_sweep_request_rejected_not_attempted(self):
        # The AIB fused kernel's uncapped space is ~1e10 configurations;
        # serving it cold would OOM the daemon.
        svc = TuningService(store=None)
        aib = apply_paper_fusion(
            build_mha_graph(qkv_fusion="qkv", include_backward=False), ENV
        ).op("AIB")
        body = sweep_request_wire(aib, ENV, cap=None)
        with pytest.raises(ProtocolError, match="exceeds the served limit"):
            svc.handle_sweep(body)

    def test_uncapped_or_oversized_optimize_rejected(self):
        svc = TuningService(store=None)
        for cap in (None, 10**6):
            with pytest.raises(ProtocolError, match="cap of at most"):
                svc.handle_optimize(
                    {"model": "mha", "include_backward": False, "cap": cap}
                )


# ---------------------------------------------------------------------------
# The HTTP daemon, end to end
# ---------------------------------------------------------------------------

@pytest.fixture(scope="class")
def live_service(tmp_path_factory):
    """One daemon (with a real on-disk store) shared by a test class."""
    clear_sweep_memo()
    store = SweepStore(tmp_path_factory.mktemp("svc-store"))
    svc = TuningService(store=store, jobs=1)
    with serve_background(svc) as url:
        yield svc, TuningClient(url)
    clear_sweep_memo()


class TestHTTPServer:
    def test_healthz_identity(self, live_service):
        _, client = live_service
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["version"] == __version__
        assert health["cost_model_version"] == COST_MODEL_VERSION
        assert "store" in health and "cache" in health

    def test_sweep_bytes_equal_reference_derived_bytes(self, live_service):
        _, client = live_service
        op, _ = _ops()
        served = client.sweep_raw(op, ENV, cap=CAP, seed=9)
        req = parse_sweep_request(sweep_request_wire(op, ENV, cap=CAP, seed=9))
        expected = canonical_json_bytes(
            sweep_response_from_sweep(
                sweep_op_reference(op, ENV, COST, cap=CAP, seed=9),
                digest=sweep_request_digest(req),
                top_k=3,
            )
        )
        assert served == expected

    def test_concurrent_identical_requests_compute_once(self, live_service):
        svc, client = live_service
        _, op = _ops()  # the kernel op: not shared with other tests
        before = svc.metrics.tier_counts()
        with ThreadPoolExecutor(8) as pool:
            bodies = list(
                pool.map(
                    lambda _: client.sweep_raw(op, ENV, cap=CAP, seed=11),
                    range(8),
                )
            )
        assert len(set(bodies)) == 1  # byte-identical across clients
        after = svc.metrics.tier_counts()
        assert after["computed"] - before["computed"] == 1
        delta = sum(after.values()) - sum(before.values())
        assert delta == 8  # every request attributed to exactly one tier

    def test_optimize_and_repeat_hits_l1(self, live_service):
        svc, client = live_service
        first = client.optimize(model="mha", include_backward=False, cap=CAP)
        assert first["num_kernels"] > 0
        assert first["total_us"] == pytest.approx(
            first["forward_us"] + first["backward_us"]
        )
        before = svc.metrics.tier_counts()["l1"]
        second = client.optimize(model="mha", include_backward=False, cap=CAP)
        assert svc.metrics.tier_counts()["l1"] == before + 1
        assert canonical_json_bytes(first) == canonical_json_bytes(second)

    def test_malformed_body_is_400(self, live_service):
        _, client = live_service
        import urllib.request

        req = urllib.request.Request(
            f"{client.base_url}/v1/sweep",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(Exception) as exc_info:
            urllib.request.urlopen(req)
        assert exc_info.value.code == 400

    @pytest.mark.parametrize("length", ["abc", "-1", str(10**9)])
    def test_bad_content_length_is_400(self, live_service, length):
        # A negative length would otherwise turn rfile.read into
        # read-until-close and pin the handler thread.
        import http.client

        host, port = live_service[1].base_url.removeprefix("http://").split(":")
        conn = http.client.HTTPConnection(host, int(port), timeout=10)
        try:
            conn.putrequest("POST", "/v1/sweep")
            conn.putheader("Content-Type", "application/json")
            conn.putheader("Content-Length", length)
            conn.endheaders()
            resp = conn.getresponse()
            assert resp.status == 400
        finally:
            conn.close()

    def test_protocol_error_is_400_with_detail(self, live_service):
        _, client = live_service
        with pytest.raises(ServiceError) as exc_info:
            client.optimize(model="mha", env=bert_large_dims(), cap=-1)
        assert exc_info.value.status == 400
        assert "cap must be" in str(exc_info.value)

    def test_unknown_route_is_404(self, live_service):
        _, client = live_service
        with pytest.raises(ServiceError) as exc_info:
            client._request_json("/v2/everything")
        assert exc_info.value.status == 404

    def test_metrics_endpoint_shape(self, live_service):
        _, client = live_service
        body = client.metrics()
        assert set(body["resolve_tiers"]) == {
            "l1", "coalesced", "l2", "delta", "computed",
        }
        assert set(body["responses"]) == {"json", "binary", "not_modified"}
        assert {"led", "coalesced", "inflight"} <= set(body["coalescing"])
        assert body["requests"]  # at least the requests this class issued

# ---------------------------------------------------------------------------
# ETag revalidation and the packed binary wire path
# ---------------------------------------------------------------------------

class TestEtagHelpers:
    def test_json_tag_carries_top_k_binary_tag_does_not(self):
        from repro.service.protocol import sweep_etag

        assert sweep_etag("abc") == '"abc"'
        assert sweep_etag("abc", top_k=7) == '"abc.k7"'
        # Different truncations are different representations.
        assert sweep_etag("abc", top_k=3) != sweep_etag("abc", top_k=5)

    @pytest.mark.parametrize(
        "header,matches",
        [
            (None, False),
            ("", False),
            ('"abc.k3"', True),
            ('W/"abc.k3"', True),
            ('"other", "abc.k3"', True),
            ("*", True),
            ('"abc.k5"', False),
            ('"abc"', False),
        ],
    )
    def test_if_none_match_evaluation(self, header, matches):
        from repro.service.protocol import etag_matches

        assert etag_matches(header, '"abc.k3"') is matches

    @pytest.mark.parametrize(
        "accept,packed",
        [
            (None, False),
            ("application/json", False),
            ("application/x-repro-npz", True),
            ("Application/X-Repro-NPZ", True),
            ("application/json, application/x-repro-npz;q=0.9", True),
            ("*/*", False),  # packing is strictly opt-in by exact type
        ],
    )
    def test_accept_negotiation(self, accept, packed):
        from repro.service.protocol import accepts_packed

        assert accepts_packed(accept) is packed


class TestWirePath:
    def test_revalidation_is_304_with_empty_body(self, live_service):
        _, client = live_service
        op, _ = _ops()
        status, etag, body = client.sweep_conditional(op, ENV, cap=CAP, seed=21)
        assert status == 200 and etag and body
        status2, etag2, body2 = client.sweep_conditional(
            op, ENV, cap=CAP, seed=21, etag=etag
        )
        assert (status2, etag2, body2) == (304, etag, b"")

    def test_304_short_circuits_before_resolution(self, live_service):
        svc, client = live_service
        op, _ = _ops()
        _, etag, _ = client.sweep_conditional(op, ENV, cap=CAP, seed=22)
        before = svc.metrics.tier_counts()
        status, _, _ = client.sweep_conditional(op, ENV, cap=CAP, seed=22, etag=etag)
        assert status == 304
        # No tier was consulted: the revalidation never touched resolution.
        assert svc.metrics.tier_counts() == before

    def test_stale_etag_gets_a_full_body(self, live_service):
        _, client = live_service
        op, _ = _ops()
        status, _, body = client.sweep_conditional(
            op, ENV, cap=CAP, seed=23, etag='"not-the-current-tag"'
        )
        assert status == 200 and body

    def test_top_k_is_part_of_the_json_representation(self, live_service):
        _, client = live_service
        op, _ = _ops()
        _, etag3, _ = client.sweep_conditional(op, ENV, cap=CAP, seed=24, top_k=3)
        status, etag5, _ = client.sweep_conditional(
            op, ENV, cap=CAP, seed=24, top_k=5, etag=etag3
        )
        # A tag held for the top-3 body must not validate the top-5 body.
        assert status == 200 and etag5 != etag3

    def test_packed_decodes_to_the_exact_json_measurements(self, live_service):
        from repro.engine.sweep import sweep_from_payload

        _, client = live_service
        op, _ = _ops()
        served = json.loads(client.sweep_raw(op, ENV, cap=CAP, seed=25))
        payload = client.sweep_packed(op, ENV, cap=CAP, seed=25)
        rebuilt = sweep_response_from_sweep(
            sweep_from_payload(op, payload), digest=served["digest"], top_k=3
        )
        assert canonical_json_bytes(rebuilt) == canonical_json_bytes(served)

    def test_packed_bytes_are_the_store_file(self, live_service):
        svc, client = live_service
        op, _ = _ops()
        status, etag, data = client.sweep_packed_raw(op, ENV, cap=CAP, seed=26)
        assert status == 200
        digest = etag.strip('"')
        assert data == svc.store.path_for(digest).read_bytes()

    def test_storeless_pack_matches_streamed_bytes(self, live_service, tmp_path):
        # The in-memory fallback of a storeless daemon produces the same
        # bytes the store-streaming daemon serves (deterministic writer).
        _, client = live_service
        op, _ = _ops()
        _, _, streamed = client.sweep_packed_raw(op, ENV, cap=CAP, seed=27)
        clear_sweep_memo()
        storeless = TuningService(store=None)
        with serve_background(storeless) as url:
            _, _, packed = TuningClient(url).sweep_packed_raw(
                op, ENV, cap=CAP, seed=27
            )
        assert packed == streamed

    def test_corrupt_packed_body_is_rejected_at_decode(self):
        from repro.service.protocol import payload_from_packed

        with pytest.raises(ProtocolError, match="packed sweep response"):
            payload_from_packed(b"PK\x03\x04 definitely not an npz")

    def test_packed_digest_mismatch_is_rejected(self, live_service):
        _, client = live_service
        op, _ = _ops()
        from repro.service.protocol import payload_from_packed

        _, _, data = client.sweep_packed_raw(op, ENV, cap=CAP, seed=28)
        with pytest.raises(ProtocolError, match="failed validation"):
            payload_from_packed(data, digest="0" * 64)

    def test_response_kinds_are_counted(self, live_service):
        svc, client = live_service
        op, _ = _ops()
        before = svc.metrics.snapshot()["responses"]
        client.sweep(op, ENV, cap=CAP, seed=29)
        _, etag, _ = client.sweep_packed_raw(op, ENV, cap=CAP, seed=29)
        client.sweep_packed_raw(op, ENV, cap=CAP, seed=29, etag=etag)
        after = svc.metrics.snapshot()["responses"]
        assert after["json"] - before["json"] == 1
        assert after["binary"] - before["binary"] == 1
        assert after["not_modified"] - before["not_modified"] == 1


class TestDeltaTier:
    def test_structural_twin_resolves_via_delta(self, tmp_path):
        from repro.engine.store import structural_sweep_digest

        op, _ = _ops()
        store = SweepStore(tmp_path)
        svc = TuningService(store=store, registry=None)
        warm = bert_large_dims()
        perturbed = bert_large_dims(seq=513)
        svc.handle_sweep(sweep_request_wire(op, warm, cap=CAP, seed=31))
        assert svc.metrics.tier_counts()["computed"] == 1
        # Same op structure, different sizes: one structural digest.
        assert structural_sweep_digest(
            op, warm, GPU, cap=CAP, seed=31
        ) == structural_sweep_digest(op, perturbed, GPU, cap=CAP, seed=31)
        served = svc.handle_sweep(sweep_request_wire(op, perturbed, cap=CAP, seed=31))
        tiers = svc.metrics.tier_counts()
        assert tiers["delta"] == 1 and tiers["computed"] == 1
        assert store.stats()["delta_hits"] == 1
        # The delta-resolved body is byte-identical to a cold reference.
        req = parse_sweep_request(sweep_request_wire(op, perturbed, cap=CAP, seed=31))
        expected = sweep_response_from_sweep(
            sweep_op_reference(op, perturbed, COST, cap=CAP, seed=31),
            digest=sweep_request_digest(req),
            top_k=3,
        )
        assert canonical_json_bytes(served) == canonical_json_bytes(expected)
        # The delta result persisted under its exact digest: a rerun in a
        # fresh service is a plain L2 hit.
        clear_sweep_memo()
        svc2 = TuningService(store=SweepStore(tmp_path), registry=None)
        svc2.handle_sweep(sweep_request_wire(op, perturbed, cap=CAP, seed=31))
        assert svc2.metrics.tier_counts()["l2"] == 1

    def test_delta_disabled_falls_back_to_cold(self, tmp_path):
        from repro.engine import set_delta_enabled

        op, _ = _ops()
        store = SweepStore(tmp_path)
        svc = TuningService(store=store, registry=None)
        svc.handle_sweep(sweep_request_wire(op, bert_large_dims(), cap=CAP, seed=32))
        set_delta_enabled(False)
        try:
            svc.handle_sweep(
                sweep_request_wire(op, bert_large_dims(seq=513), cap=CAP, seed=32)
            )
        finally:
            set_delta_enabled(None)
        tiers = svc.metrics.tier_counts()
        assert tiers["delta"] == 0 and tiers["computed"] == 2


class TestClientErrorSurfacing:
    def _http_error(self, code: int, body: bytes):
        import io
        import urllib.error

        return urllib.error.HTTPError(
            "http://x/v1/register", code, "Bad Request", {}, io.BytesIO(body)
        )

    def test_json_error_detail_is_surfaced(self):
        exc = TuningClient._service_error(
            "/v1/sweep", self._http_error(400, b'{"error": "cap must be positive"}')
        )
        assert "cap must be positive" in str(exc)
        assert exc.status == 400 and exc.body == {"error": "cap must be positive"}

    def test_validation_report_issues_are_summarized(self):
        body = canonical_json_bytes(
            {
                "error": "schedule x failed validation with 2 error(s)",
                "report": {
                    "ok": False,
                    "issues": [
                        {
                            "severity": "error",
                            "validator": "costs",
                            "code": "total-us",
                            "message": "claimed 1.0us, recomputed 2.0us",
                            "op": None,
                        },
                        {
                            "severity": "error",
                            "validator": "costs",
                            "code": "chain-us",
                            "message": "chain cost disagrees",
                            "op": None,
                        },
                    ],
                },
            }
        )
        exc = TuningClient._service_error("/v1/register", self._http_error(400, body))
        msg = str(exc)
        assert "2 issue(s)" in msg
        assert "costs/total-us: claimed 1.0us, recomputed 2.0us" in msg
        assert exc.body["report"]["issues"]  # full report still attached

    def test_non_json_error_body_is_carried_truncated(self):
        exc = TuningClient._service_error(
            "/v1/sweep", self._http_error(502, b"<html>bad gateway" + b"x" * 1000)
        )
        assert "<html>bad gateway" in str(exc)
        assert len(str(exc)) < 600
        assert exc.body is None


# ---------------------------------------------------------------------------
# The schedule registry endpoints
# ---------------------------------------------------------------------------

@pytest.fixture(scope="class")
def registry_service(tmp_path_factory):
    """A daemon with a sweep store AND a schedule registry attached."""
    from repro.registry import ScheduleRegistry

    clear_sweep_memo()
    store = SweepStore(tmp_path_factory.mktemp("reg-store"))
    registry = ScheduleRegistry(tmp_path_factory.mktemp("reg") / "registry")
    svc = TuningService(store=store, registry=registry, jobs=1)
    with serve_background(svc) as url:
        yield svc, TuningClient(url)
    svc.stop_revalidation()
    clear_sweep_memo()


class TestRegistryEndpoints:
    def _registered(self, client):
        return client.register(
            model="mha", include_backward=False, env=ENV, cap=CAP
        )

    def test_register_then_fetch_round_trip(self, registry_service):
        svc, client = registry_service
        resp = self._registered(client)
        assert resp["registered"] is True
        assert resp["report"]["ok"] is True

        entry_wire = client.schedule(resp["digest"])
        assert entry_wire["digest"] == resp["digest"]
        assert entry_wire["selection"]["total_us"] == resp["total_us"]
        assert entry_wire["provenance"]["registrar"] == "daemon"
        assert resp["digest"] in svc.registry.digests()
        assert svc.metrics.registry_counts()["served"] >= 1
        assert client.healthz()["registry"]["entries"] >= 1

    def test_resubmitting_a_served_entry_verbatim_is_accepted(
        self, registry_service
    ):
        _, client = registry_service
        entry_wire = client.schedule(self._registered(client)["digest"])
        resp = client.register_entry(entry_wire)
        assert resp["registered"] is True
        assert resp["digest"] == entry_wire["digest"]

    def test_adversarial_claimed_cost_is_rejected_with_report(
        self, registry_service
    ):
        """An entry whose claimed cost disagrees with recomputation gets a
        structured 400 — full validation report in the body — and nothing
        is stored; ``/metrics`` counts the rejection."""
        svc, client = registry_service
        clean = self._registered(client)
        entry_wire = client.schedule(clean["digest"])
        tampered = json.loads(json.dumps(entry_wire))
        tampered["selection"]["total_us"] += 3.0

        before = svc.metrics.registry_counts()["rejected"]
        with pytest.raises(ServiceError) as exc_info:
            client.register_entry(tampered)
        err = exc_info.value
        assert err.status == 400
        assert err.body is not None and "report" in err.body

        report = err.body["report"]
        assert report["ok"] is False
        errors = [i for i in report["issues"] if i["severity"] == "error"]
        assert errors, report
        assert all(i["validator"] == "cost" for i in errors)
        assert any(i["code"] == "total-drift" for i in errors)

        # The rejection is counted, and the stored entry is untouched.
        assert svc.metrics.registry_counts()["rejected"] == before + 1
        assert client.metrics()["registry"]["events"]["rejected"] == before + 1
        served = client.schedule(clean["digest"])
        assert served["selection"]["total_us"] == clean["total_us"]

    def test_tampered_problem_tuple_is_rejected_as_digest_mismatch(
        self, registry_service
    ):
        _, client = registry_service
        entry_wire = client.schedule(self._registered(client)["digest"])
        tampered = json.loads(json.dumps(entry_wire))
        tampered["knobs"]["seed"] = 424242
        with pytest.raises(ServiceError) as exc_info:
            client.register_entry(tampered)
        assert exc_info.value.status == 400
        assert "hashes to" in str(exc_info.value)

    def test_unknown_digest_is_404(self, registry_service):
        _, client = registry_service
        with pytest.raises(ServiceError) as exc_info:
            client.schedule("0" * 64)
        assert exc_info.value.status == 404

    def test_malformed_digest_is_400(self, registry_service):
        _, client = registry_service
        with pytest.raises(ServiceError) as exc_info:
            client._request_json("/v1/schedule/..%2Fescape")
        assert exc_info.value.status == 400

    def test_register_cap_guard(self, registry_service):
        _, client = registry_service
        with pytest.raises(ServiceError) as exc_info:
            client.register(
                model="mha", include_backward=False, env=ENV, cap=None
            )
        assert exc_info.value.status == 400
        assert "cap" in str(exc_info.value)

    def test_revalidation_sweep_and_metrics(self, registry_service):
        svc, client = registry_service
        digest = self._registered(client)["digest"]
        summary = svc.revalidate_registry()
        assert summary["checked"] >= 1
        assert summary["failed"] == 0
        last = client.metrics()["registry"]["last_revalidation"]
        assert last["checked"] == summary["checked"]
        assert last["at"] == summary["at"]

        # Corrupt the stored entry on disk: the sweep reports, not crashes.
        path = svc.registry.path_for(digest)
        original = path.read_bytes()
        tampered = json.loads(original)
        tampered["selection"]["total_us"] += 1.0
        path.write_bytes(json.dumps(tampered).encode())
        try:
            summary = svc.revalidate_registry()
            assert summary["failed"] == 1
            assert digest in summary["failures"]
            assert any(
                "total-drift" in line for line in summary["failures"][digest]
            )
            assert svc.metrics.registry_counts()["revalidate_fail"] >= 1
        finally:
            path.write_bytes(original)

    def test_background_revalidation_thread(self, registry_service):
        svc, client = registry_service
        self._registered(client)
        before = svc.metrics.registry_counts()["revalidate_pass"]
        svc.start_revalidation(interval_s=0.05)
        try:
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                if svc.metrics.registry_counts()["revalidate_pass"] > before:
                    break
                time.sleep(0.02)
            assert svc.metrics.registry_counts()["revalidate_pass"] > before
            assert client.metrics()["registry"]["last_revalidation"] is not None
        finally:
            svc.stop_revalidation()


class TestRegistryUnconfigured:
    def test_endpoints_refuse_without_a_registry(self):
        svc = TuningService(store=None, registry=None)
        with serve_background(svc) as url:
            client = TuningClient(url)
            with pytest.raises(ServiceError) as exc_info:
                client.schedule("0" * 64)
            assert exc_info.value.status == 400
            with pytest.raises(ServiceError) as exc_info:
                client.register(
                    model="mha", include_backward=False, env=ENV, cap=CAP
                )
            assert exc_info.value.status == 400
            assert "no schedule registry" in str(exc_info.value)
            assert client.healthz()["registry"] is None
