"""Tests for graph export, roofline analysis, sweep caching, and refinement."""

import json

import pytest

from repro.autotuner.cache import (
    CacheMismatch,
    load_sweep,
    save_sweep,
    sweep_from_dict,
    sweep_to_dict,
)
from repro.autotuner.tuner import sweep_graph, sweep_op
from repro.configsel.refinement import refine_selection
from repro.configsel.selector import select_configurations
from repro.fusion.encoder_kernels import apply_paper_fusion
from repro.hardware.cost_model import CostModel
from repro.hardware.roofline import graph_roofline, op_roofline, ridge_intensity
from repro.hardware.spec import A100, V100
from repro.ir.dims import bert_large_dims
from repro.ir.export import to_dot, to_json
from repro.ir.operator import OpClass
from repro.transformer.graph_builder import build_encoder_graph, build_mha_graph

ENV = bert_large_dims()
COST = CostModel()


class TestExport:
    @pytest.fixture(scope="class")
    def graph(self):
        return build_mha_graph(qkv_fusion="qkv", include_backward=False)

    def test_dot_is_well_formed(self, graph):
        dot = to_dot(graph, ENV)
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        assert dot.count("{") == dot.count("}")

    def test_dot_contains_ops_and_tensors(self, graph):
        dot = to_dot(graph, ENV)
        assert '"op_qkv_proj"' in dot
        assert '"t_beta"' in dot
        assert "Gflop" in dot and "Mw" in dot

    def test_dot_views_excluded_by_default(self, graph):
        assert "slice_qq" not in to_dot(graph, ENV)
        assert "op_slice_qq" in to_dot(graph, ENV, include_views=True)

    def test_json_roundtrips(self, graph):
        data = json.loads(to_json(graph, ENV))
        assert data["name"] == graph.name
        names = [o["name"] for o in data["operators"]]
        assert "qkv_proj" in names and "softmax" in names
        qkv = next(o for o in data["operators"] if o["name"] == "qkv_proj")
        assert qkv["class"] == "tensor contraction"
        assert qkv["flop"] == pytest.approx(graph.op("qkv_proj").flops(ENV))
        assert data["containers"]["beta"]["dims"] == ["h", "b", "j", "k"]


class TestRoofline:
    def test_ridge_points(self):
        """V100 ridge: 125T/900G = ~139 flop/B for TC, ~35 for FP16."""
        assert ridge_intensity(V100, tensor_cores=True) == pytest.approx(138.9, abs=0.5)
        assert ridge_intensity(V100, tensor_cores=False) == pytest.approx(34.9, abs=0.5)

    def test_encoder_diagnosis_matches_paper(self):
        """All normalization/element-wise ops are memory bound; the large
        linear contractions are compute bound."""
        g = build_encoder_graph(qkv_fusion="qkv")
        points = {p.op_name: p for p in graph_roofline(g, ENV)}
        for name, p in points.items():
            if p.op_class is not OpClass.TENSOR_CONTRACTION:
                assert p.memory_bound, name
        assert not points["linear1"].memory_bound
        assert not points["qkv_proj"].memory_bound

    def test_qkt_is_borderline(self):
        """QKT's intensity (~51 flop/B) is well under the TC ridge — the
        paper's 'low in flop/s and MUE' case."""
        g = build_encoder_graph(qkv_fusion="qkv")
        p = op_roofline(g.op("qkt"), ENV)
        assert p.memory_bound
        assert 0.2 < p.headroom < 0.8

    def test_attainable_capped_by_peak(self):
        g = build_encoder_graph(qkv_fusion="qkv")
        p = op_roofline(g.op("linear1"), ENV)
        assert p.attainable_flops == V100.tensor_core_flops

    def test_a100_ridge_higher(self):
        """More compute per byte of bandwidth: the A100 ridge moves right,
        making *more* operators memory bound (Sec. VIII-B)."""
        assert ridge_intensity(A100) > ridge_intensity(V100)


class TestSweepCache:
    @pytest.fixture(scope="class")
    def sweep(self):
        g = build_encoder_graph(qkv_fusion="qkv")
        return sweep_op(g.op("qkt"), ENV, COST)

    def test_roundtrip_dict(self, sweep):
        g = build_encoder_graph(qkv_fusion="qkv")
        rebuilt = sweep_from_dict(sweep_to_dict(sweep), g.op("qkt"))
        assert rebuilt.num_configs == sweep.num_configs
        assert rebuilt.best.total_us == sweep.best.total_us
        assert rebuilt.best.config.key() == sweep.best.config.key()

    def test_roundtrip_file(self, sweep, tmp_path):
        g = build_encoder_graph(qkv_fusion="qkv")
        path = tmp_path / "qkt.json"
        save_sweep(sweep, path)
        rebuilt = load_sweep(path, g.op("qkt"), verify_against=sweep)
        assert rebuilt.worst.total_us == sweep.worst.total_us

    def test_wrong_op_rejected(self, sweep):
        g = build_encoder_graph(qkv_fusion="qkv")
        with pytest.raises(CacheMismatch):
            sweep_from_dict(sweep_to_dict(sweep), g.op("gamma"))

    def test_verification_detects_drift(self, sweep, tmp_path):
        g = build_encoder_graph(qkv_fusion="qkv")
        data = sweep_to_dict(sweep)
        data["measurements"][0]["compute_us"] *= 2  # corrupt the best point
        path = tmp_path / "drift.json"
        path.write_text(json.dumps(data))
        with pytest.raises(CacheMismatch, match="cost model changed"):
            load_sweep(path, g.op("qkt"), verify_against=sweep)


class TestRefinement:
    def test_refinement_is_monotone(self):
        g = apply_paper_fusion(build_encoder_graph(qkv_fusion="qkv"), ENV)
        sweeps = sweep_graph(g, ENV, COST, cap=200)
        sel = select_configurations(g, ENV, COST, sweeps=sweeps, cap=200)
        res = refine_selection(g, sel, sweeps, ENV, COST, max_rounds=2,
                               candidates_per_op=16)
        assert res.refined_total_us <= res.initial_total_us
        assert res.rounds >= 1
        # The refined assignment still covers every kernel.
        kernel_names = {op.name for op in g.ops if not op.is_view}
        assert set(res.selection.chosen) == kernel_names

    def test_refinement_deterministic(self):
        g = apply_paper_fusion(build_encoder_graph(qkv_fusion="qkv"), ENV)
        sweeps = sweep_graph(g, ENV, COST, cap=150)
        sel = select_configurations(g, ENV, COST, sweeps=sweeps, cap=150)
        r1 = refine_selection(g, sel, sweeps, ENV, COST, max_rounds=1,
                              candidates_per_op=8)
        r2 = refine_selection(g, sel, sweeps, ENV, COST, max_rounds=1,
                              candidates_per_op=8)
        assert r1.refined_total_us == r2.refined_total_us
        assert r1.moves == r2.moves
