"""Tests for the layered validation framework (:mod:`repro.validation`).

Every validator class must demonstrably reject a seeded violation — and
*only* the right validator may reject it, so reports stay attributable:
a structural mutation may not surface as a cost finding, version drift may
not masquerade as tampering.  The deep cost check re-runs configuration
selection through both the fast layered pipeline and the retained scalar
reference and demands bit-exact agreement with the entry.
"""

from __future__ import annotations

import copy
import dataclasses

import pytest

from repro.configsel.selector import select_configurations
from repro.engine import clear_sweep_memo
from repro.hardware.cost_model import COST_MODEL_VERSION, CostModel
from repro.ir.dims import bert_large_dims
from repro.registry import ScheduleEntry, ScheduleRegistry, build_entry
from repro.transformer.graph_builder import build_mha_graph
from repro.validation import (
    CostValidator,
    Severity,
    StalenessValidator,
    StructuralValidator,
    ValidationContext,
    validate_entry,
)

ENV = bert_large_dims()
COST = CostModel()
CAP = 48


@pytest.fixture(autouse=True)
def _cold_memo():
    clear_sweep_memo()
    yield
    clear_sweep_memo()


@pytest.fixture(scope="module")
def clean_entry():
    """One well-formed registered entry (fused MHA forward, with a transpose)."""
    from repro.fusion import apply_paper_fusion

    clear_sweep_memo()
    graph = apply_paper_fusion(
        build_mha_graph(qkv_fusion="qkv", include_backward=False), ENV
    )
    sel = select_configurations(graph, ENV, COST, cap=CAP)
    assert sel.transposes  # the seeded violations below need one
    entry = build_entry(graph, ENV, COST, sel, cap=CAP)
    clear_sweep_memo()
    return entry


def _mutate(entry: ScheduleEntry, fn) -> ScheduleEntry:
    """A deep-copied entry with ``fn`` applied to its wire form."""
    wire = copy.deepcopy(entry.to_wire())
    fn(wire)
    return ScheduleEntry.from_wire(wire)


def _error_codes(report, validator: str) -> set[str]:
    return {i.code for i in report.by_validator(validator) if i.severity is Severity.ERROR}


def _error_validators(report) -> set[str]:
    return {i.validator for i in report.errors()}


# ---------------------------------------------------------------------------
# The clean entry
# ---------------------------------------------------------------------------

class TestCleanEntry:
    def test_passes_all_validators(self, clean_entry):
        report = validate_entry(clean_entry)
        assert report.ok, report.summary()
        assert report.errors() == [] and report.warnings() == []
        assert report.validators == ["structural", "cost", "staleness"]

    def test_deep_validation_bit_exact_against_both_pipelines(self, clean_entry):
        """The acceptance bar: full reselection through the fast layered
        path AND the scalar reference reproduces the entry bit for bit."""
        report = validate_entry(clean_entry, deep=True)
        assert report.ok, report.summary()

    def test_report_wire_form(self, clean_entry):
        wire = validate_entry(clean_entry).to_wire()
        assert wire["ok"] is True
        assert wire["digest"] == clean_entry.digest
        assert wire["issues"] == []


# ---------------------------------------------------------------------------
# Structural violations
# ---------------------------------------------------------------------------

class TestStructuralValidator:
    def test_unassigned_op_caught(self, clean_entry):
        def drop_first(wire):
            del wire["selection"]["chosen"][0]
            # keep the totals consistent so cost stays silent
            sel = wire["selection"]
            sel["total_us"] = (
                sum(m["total_us"] for m in sel["chosen"]) + sel["transpose_us"]
            )

        report = validate_entry(_mutate(clean_entry, drop_first))
        assert not report.ok
        assert "unassigned-op" in _error_codes(report, "structural")

    def test_unknown_op_caught_by_structural_only(self, clean_entry):
        def rename(wire):
            wire["selection"]["chosen"][0]["op"] = "ghost_op"

        report = validate_entry(_mutate(clean_entry, rename))
        codes = _error_codes(report, "structural")
        assert {"unknown-op", "unassigned-op"} <= codes
        # The cost validator skips ops it cannot find; totals are unchanged.
        assert _error_validators(report) == {"structural"}

    def test_reassigned_pinned_layout_caught_by_structural_only(self, clean_entry):
        ctx = ValidationContext(clean_entry)
        tensor = next(
            t for t, pin in ctx.pinned.items()
            if len(pin.dims) >= 2 and tuple(reversed(pin.dims)) != pin.dims
        )

        def flip_pin(wire):
            pins = wire["selection"]["pinned_layouts"]
            pins[tensor] = list(reversed(pins[tensor]))

        report = validate_entry(_mutate(clean_entry, flip_pin))
        assert not report.ok
        assert _error_validators(report) == {"structural"}
        assert _error_codes(report, "structural") & {
            "pin-unrealized",
            "edge-incoherent",
        }

    def test_dangling_transpose_caught(self, clean_entry):
        def dangle(wire):
            wire["selection"]["transposes"][0]["before_op"] = "ghost_op"

        report = validate_entry(_mutate(clean_entry, dangle))
        assert "transpose-dangling" in _error_codes(report, "structural")

    def test_transpose_endpoint_mismatch_caught(self, clean_entry):
        def retarget(wire):
            t = wire["selection"]["transposes"][0]
            t["to_layout"], t["from_layout"] = t["from_layout"], t["to_layout"]

        report = validate_entry(_mutate(clean_entry, retarget))
        assert _error_codes(report, "structural") & {
            "transpose-endpoint",
            "edge-incoherent",
        }

    def test_bad_layout_permutation_caught(self, clean_entry):
        def corrupt_layout(wire):
            cfg = wire["selection"]["chosen"][0]["config"]
            cfg["input_layouts"][0] = ["bogus_dim"]

        report = validate_entry(_mutate(clean_entry, corrupt_layout))
        assert "layout-dims" in _error_codes(report, "structural")

    def test_unparseable_selection_is_structural(self, clean_entry):
        def corrupt(wire):
            wire["selection"]["chosen"][0]["config"] = "not a config"

        report = validate_entry(_mutate(clean_entry, corrupt))
        assert _error_codes(report, "structural") == {"selection-unparseable"}
        assert report.by_validator("cost") == []  # cost defers, not double-reports

    def test_unbuildable_graph_is_a_report_not_a_crash(self, clean_entry):
        def corrupt(wire):
            wire["graph"]["ops"][0]["stage"] = "sideways"

        report = validate_entry(_mutate(clean_entry, corrupt))
        assert not report.ok
        assert _error_codes(report, "structural") == {"graph-unbuildable"}


# ---------------------------------------------------------------------------
# Cost violations
# ---------------------------------------------------------------------------

class TestCostValidator:
    def test_edited_total_caught_by_cost_only(self, clean_entry):
        def bump(wire):
            wire["selection"]["total_us"] += 1.0

        report = validate_entry(_mutate(clean_entry, bump))
        assert not report.ok
        assert _error_validators(report) == {"cost"}
        assert _error_codes(report, "cost") == {"total-drift"}

    def test_edited_kernel_split_caught_by_cost_only(self, clean_entry):
        def bump(wire):
            wire["selection"]["chosen"][0]["compute_us"] += 0.5

        report = validate_entry(_mutate(clean_entry, bump))
        assert _error_validators(report) == {"cost"}
        codes = _error_codes(report, "cost")
        assert "kernel-time-drift" in codes
        assert "total-drift" in codes  # the ordered sum moved with it

    def test_edited_transpose_time_caught_by_cost_only(self, clean_entry):
        def bump(wire):
            wire["selection"]["transposes"][0]["time_us"] += 0.25

        report = validate_entry(_mutate(clean_entry, bump))
        assert _error_validators(report) == {"cost"}
        codes = _error_codes(report, "cost")
        assert "transpose-time-drift" in codes
        assert "transpose-total-drift" in codes

    def test_swapped_configuration_time_disagrees(self, clean_entry):
        """A kernel re-timed under a *different* stored configuration: the
        recomputation (fresh scalar-reference ``time_op``) must disagree."""
        ctx = ValidationContext(clean_entry)
        names = list(ctx.chosen)
        a = next(
            n for n in names
            if any(
                ctx.chosen[n].time != ctx.chosen[m].time
                for m in names
                if m != n
            )
        )
        b = next(n for n in names if n != a and ctx.chosen[n].time != ctx.chosen[a].time)

        def swap_times(wire):
            chosen = {m["op"]: m for m in wire["selection"]["chosen"]}
            for f in ("compute_us", "memory_us", "launch_us", "total_us"):
                chosen[a][f], chosen[b][f] = chosen[b][f], chosen[a][f]

        report = validate_entry(_mutate(clean_entry, swap_times))
        assert "kernel-time-drift" in _error_codes(report, "cost")

    def test_deep_reselect_catches_consistent_lies(self, clean_entry):
        """An entry whose parts are internally consistent but describe a
        schedule selection never produced: only ``deep`` catches it."""
        ctx = ValidationContext(clean_entry)
        # Claim different knobs: seed drift means reselection disagrees.
        lied = dataclasses.replace(
            clean_entry,
            knobs={**clean_entry.knobs, "cap": 12},
        )
        lied = dataclasses.replace(lied, digest=lied.recompute_digest())
        shallow = validate_entry(lied)
        assert shallow.ok, shallow.summary()  # the lie is self-consistent
        deep = validate_entry(lied, deep=True)
        if deep.ok:
            pytest.skip("cap=12 selects the same schedule on this graph")
        assert _error_validators(deep) == {"cost"}
        assert _error_codes(deep, "cost") <= {
            "reselect-total-drift",
            "reselect-chain-drift",
            "reselect-config-drift",
        }


# ---------------------------------------------------------------------------
# Staleness
# ---------------------------------------------------------------------------

class TestStalenessValidator:
    def test_version_drift_caught_by_staleness_only(self, clean_entry):
        stale = dataclasses.replace(
            clean_entry, cost_model_version=COST_MODEL_VERSION + 7
        )
        report = validate_entry(stale)
        assert not report.ok
        assert _error_validators(report) == {"staleness"}
        assert _error_codes(report, "staleness") == {"cost-model-version"}

    def test_version_drift_report_is_actionable(self, clean_entry):
        """The report tells the operator what to do, including the fresh
        digest the re-registered schedule will live at."""
        stale = dataclasses.replace(
            clean_entry, cost_model_version=COST_MODEL_VERSION + 7
        )
        report = validate_entry(stale)
        [issue] = [i for i in report.errors() if i.code == "cost-model-version"]
        fresh = clean_entry.recompute_digest()  # recorded version == current
        assert fresh in issue.message  # where to re-register
        assert "re-tune" in issue.message.lower() or "re-register" in issue.message.lower()

    def test_version_drift_suppresses_cost_recompute(self, clean_entry):
        """Stale timings are the staleness validator's finding; the cost
        validator records an INFO skip instead of misreporting tampering."""
        stale = dataclasses.replace(
            clean_entry,
            cost_model_version=COST_MODEL_VERSION + 7,
            selection={**clean_entry.selection, "total_us": 1.0},  # a "lie"
        )
        report = validate_entry(stale)
        cost_issues = report.by_validator("cost")
        assert [i.code for i in cost_issues] == ["recompute-skipped"]
        assert cost_issues[0].severity is Severity.INFO

    def test_registry_format_drift_caught(self, clean_entry):
        odd = dataclasses.replace(clean_entry, registry_format=99)
        report = validate_entry(odd)
        assert "registry-format" in _error_codes(report, "staleness")

    def test_orphaned_provenance_warns(self, clean_entry, tmp_path):
        """Provenance citing sweeps the active store no longer holds is a
        warning — the schedule still validates, but it cannot be re-derived
        from stored sweeps."""
        from repro.engine import set_sweep_store

        store = set_sweep_store(tmp_path / "empty-store")
        try:
            report = validate_entry(clean_entry)
        finally:
            set_sweep_store(None)
        assert report.ok  # warnings do not fail validation
        assert {i.code for i in report.warnings()} == {"provenance-orphaned"}

    def test_missing_provenance_warns(self, clean_entry):
        bare = dataclasses.replace(clean_entry, provenance={})
        report = validate_entry(bare)
        assert report.ok
        assert "provenance-missing" in {i.code for i in report.warnings()}


# ---------------------------------------------------------------------------
# Registry round trips of mutated entries
# ---------------------------------------------------------------------------

class TestSeededViolationsThroughRegistry:
    def test_solution_tampering_loads_but_fails_validation(
        self, clean_entry, tmp_path
    ):
        """The digest covers the *problem*; solution tampering is invisible
        to the hash and must be caught by validation instead."""
        registry = ScheduleRegistry(tmp_path / "registry")
        tampered = _mutate(
            clean_entry, lambda w: w["selection"].__setitem__("total_us", 1.0)
        )
        registry.register(tampered)
        loaded = registry.load(tampered.digest)  # hash still verifies
        report = validate_entry(loaded)
        assert not report.ok
        assert _error_validators(report) == {"cost"}

    def test_each_validator_rejects_its_seeded_violation(self, clean_entry):
        """The acceptance matrix: one seeded violation per validator class,
        each rejected by exactly that class."""
        seeded = {
            "structural": _mutate(
                clean_entry,
                lambda w: w["selection"]["chosen"][0].__setitem__("op", "ghost"),
            ),
            "cost": _mutate(
                clean_entry,
                lambda w: w["selection"].__setitem__(
                    "total_us", w["selection"]["total_us"] * 2
                ),
            ),
            "staleness": dataclasses.replace(
                clean_entry, cost_model_version=COST_MODEL_VERSION + 1
            ),
        }
        for expected, entry in seeded.items():
            report = validate_entry(entry)
            assert not report.ok
            assert _error_validators(report) == {expected}, (
                expected,
                report.summary(),
            )

    def test_custom_validator_stack(self, clean_entry):
        report = validate_entry(
            clean_entry, validators=(StructuralValidator(), StalenessValidator())
        )
        assert report.validators == ["structural", "staleness"]
        assert report.by_validator("cost") == []
        report = validate_entry(clean_entry, validators=(CostValidator(),))
        assert report.validators == ["cost"]
        assert report.ok
