"""Engine acceptance benchmark: bit-identity and wall-clock speedup.

Pins the vectorized sweep engine's two contracts on the paper's full
workload (BERT-large encoder, forward + backward):

* ``sweep_op`` (engine path) produces **bit-identical** ``SweepResult``s to
  ``sweep_op_reference`` for every operator in the graph at ``cap=2000``;
* a full-graph engine sweep is at least 5x faster wall-clock than the
  scalar reference loop, with the process-level memo disabled and each
  sweep consumed the way the figure/selection layers consume it (best
  configuration + full distribution statistics).
"""

from __future__ import annotations

import time

from repro.autotuner.tuner import sweep_op_reference
from repro.autotuner.violin import summarize
from repro.engine import clear_sweep_memo
from repro.engine.sweep import sweep_op as engine_sweep_op
from repro.transformer.graph_builder import build_encoder_graph

CAP = 2000


def _graph_ops():
    graph = build_encoder_graph(qkv_fusion="qkv", include_backward=True)
    return [op for op in graph.ops if not op.is_view]


def test_engine_bit_identical_to_reference(env, cost):
    """Every op in the fwd+bwd encoder graph: same configs, same times."""
    clear_sweep_memo()
    for op in _graph_ops():
        ref = sweep_op_reference(op, env, cost, cap=CAP)
        eng = engine_sweep_op(op, env, cost, cap=CAP, memo=False)
        assert eng.num_configs == ref.num_configs, op.name
        for a, b in zip(ref.measurements, eng.measurements):
            assert a.config == b.config, (op.name, a.config, b.config)
            assert a.time == b.time, (op.name, a.time, b.time)


def test_engine_speedup_full_graph(benchmark, env, cost):
    """>= 5x wall-clock on a cold full-graph sweep at cap=2000."""
    ops = _graph_ops()

    def consume(sweep):
        # What Figs. 4/5 and the selection layer actually read per sweep:
        # the distribution statistics and the winning configuration.
        summarize(sweep)
        return sweep.best.config

    def run_reference():
        sweeps = [sweep_op_reference(op, env, cost, cap=CAP) for op in ops]
        for s in sweeps:
            consume(s)
        return sweeps

    def run_engine():
        clear_sweep_memo()
        sweeps = [engine_sweep_op(op, env, cost, cap=CAP, memo=False) for op in ops]
        for s in sweeps:
            consume(s)
        return sweeps

    t0 = time.perf_counter()
    ref_sweeps = run_reference()
    t_ref = time.perf_counter() - t0

    t0 = time.perf_counter()
    eng_sweeps = benchmark.pedantic(run_engine, rounds=1, iterations=1)
    t_eng = time.perf_counter() - t0

    total_configs = sum(s.num_configs for s in ref_sweeps)
    speedup = t_ref / t_eng
    print(
        f"\n=== Engine speedup (BERT-large encoder fwd+bwd, cap={CAP}) ===\n"
        f"  {len(ref_sweeps)} ops, {total_configs} configs\n"
        f"  reference: {t_ref:6.2f} s\n"
        f"  engine:    {t_eng:6.2f} s  ({speedup:.1f}x)"
    )
    assert [s.num_configs for s in eng_sweeps] == [s.num_configs for s in ref_sweeps]
    assert speedup >= 5.0, f"engine only {speedup:.1f}x faster than reference"
