"""Service load harness: warm-path throughput, coalescing, byte identity.

A closed-loop load generator drives the real daemon (real sockets, one
server thread per connection) and pins the acceptance criteria of the
tuning service:

* **byte identity** — every response any concurrent client receives is
  byte-identical to a payload derived from a fresh scalar
  ``sweep_op_reference`` sweep (the engine's correctness anchor);
* **coalescing** — N concurrent identical cold requests trigger exactly
  one evaluation, asserted via ``/metrics``;
* **throughput** — the warm path (L1-served) sustains at least 20x the
  request rate of the cold single-request path that computes a sweep.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.autotuner.tuner import sweep_op_reference
from repro.engine import clear_sweep_memo, sweep_from_payload
from repro.engine.store import SweepStore
from repro.ir.dims import bert_large_dims
from repro.service import TuningClient, TuningService, canonical_json_bytes
from repro.service.protocol import (
    parse_sweep_request,
    payload_from_packed,
    sweep_request_digest,
    sweep_request_wire,
    sweep_response_from_sweep,
)
from repro.service.server import serve_background
from repro.fusion import apply_paper_fusion
from repro.transformer.graph_builder import build_mha_graph

# Deselected from tier-1: the dedicated CI service-smoke job (and the
# nightly run) are the sole runners, so pushes don't pay for the 200-request
# load harness twice.
pytestmark = pytest.mark.slow

#: Cold-path sweep size.  The AIB fused kernel's full space has ~9e9
#: configurations; a 20k sample is the kind of wide sweep the daemon
#: exists to amortize (and is still sub-second through the engine).
CAP = 20_000
SEED = 0x5EED
#: Closed-loop load shape: CLIENTS workers, REQUESTS_PER_CLIENT each.
CLIENTS = 8
REQUESTS_PER_CLIENT = 25
#: Binary-wire shape: with ``cap == top_k`` (at the protocol's MAX_TOP_K)
#: the JSON body and the packed npz carry the same information — every
#: sampled configuration's predicted times — so the size comparison below
#: is between two honest encodings of one result, not truncation levels.
PACKED_CAP = 50
#: Round trips per latency arm (median taken).
REVALIDATIONS = 30


def _ops():
    """(cold/warm op, herd op): two wide fused kernels, distinct digests."""
    env = bert_large_dims()
    g = apply_paper_fusion(
        build_mha_graph(qkv_fusion="qkv", include_backward=False), env
    )
    return g.op("AIB"), g.op("SM")


def _reference_bytes(op, env, cost) -> bytes:
    """The expected body, derived from a fresh scalar reference sweep."""
    req = parse_sweep_request(sweep_request_wire(op, env, cap=CAP, seed=SEED))
    sweep = sweep_op_reference(op, env, cost, cap=CAP, seed=SEED)
    return canonical_json_bytes(
        sweep_response_from_sweep(
            sweep, digest=sweep_request_digest(req), top_k=3
        )
    )


def test_service_load(env, cost):
    op, herd_op = _ops()
    expected = _reference_bytes(op, env, cost)
    clear_sweep_memo()  # the daemon must do its own cold work

    service = TuningService(store=None, jobs=1)
    with serve_background(service) as url:
        client = TuningClient(url)

        # --- cold single-request path: first request computes the sweep.
        t0 = time.perf_counter()
        first = client.sweep_raw(op, env, cap=CAP, seed=SEED)
        t_cold = time.perf_counter() - t0
        assert first == expected
        assert service.metrics.tier_counts()["computed"] == 1

        # --- thundering herd on a *different* digest (the softmax kernel):
        # all concurrent identical requests coalesce into one evaluation.
        with ThreadPoolExecutor(CLIENTS) as pool:
            herd = list(
                pool.map(
                    lambda _: client.sweep_raw(herd_op, env, cap=CAP, seed=SEED),
                    range(CLIENTS),
                )
            )
        assert len(set(herd)) == 1  # byte-identical across clients
        tiers = client.metrics()["resolve_tiers"]
        assert tiers["computed"] == 2  # one per distinct digest, ever
        assert tiers["coalesced"] + tiers["l1"] == CLIENTS - 1

        # --- closed-loop warm load: every request is L1-served.
        def closed_loop(_worker: int) -> list[bytes]:
            mine = TuningClient(url)  # per-worker connection state
            return [
                mine.sweep_raw(op, env, cap=CAP, seed=SEED)
                for _ in range(REQUESTS_PER_CLIENT)
            ]

        t0 = time.perf_counter()
        with ThreadPoolExecutor(CLIENTS) as pool:
            batches = list(pool.map(closed_loop, range(CLIENTS)))
        t_warm = time.perf_counter() - t0

        total = CLIENTS * REQUESTS_PER_CLIENT
        warm_rps = total / t_warm
        cold_rps = 1.0 / t_cold
        speedup = warm_rps / cold_rps

        bodies = {b for batch in batches for b in batch}
        assert bodies == {expected}  # every warm response: reference bytes

        tiers = client.metrics()["resolve_tiers"]
        assert tiers["computed"] == 2  # the warm storm computed nothing
        latency = client.metrics()["latency_ms"]["/v1/sweep"]

        print(
            f"\n=== Service load (AIB, cap={CAP}, {CLIENTS} clients x "
            f"{REQUESTS_PER_CLIENT} requests) ===\n"
            f"  cold single request:  {t_cold * 1e3:8.1f} ms "
            f"({cold_rps:8.1f} req/s)\n"
            f"  warm closed loop:     {t_warm * 1e3:8.1f} ms total "
            f"({warm_rps:8.1f} req/s, {speedup:.0f}x cold)\n"
            f"  /v1/sweep latency:    p50 {latency['p50_ms']:.2f} ms  "
            f"p95 {latency['p95_ms']:.2f} ms  p99 {latency['p99_ms']:.2f} ms\n"
            f"  resolve tiers:        {tiers}"
        )
        assert speedup >= 20.0, (
            f"warm service path only {speedup:.1f}x the cold single-request "
            f"path (cold {t_cold * 1e3:.1f} ms, warm {1e3 / warm_rps:.2f} "
            "ms/req)"
        )


def _median_rtt(fn, rounds: int) -> float:
    times = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return sorted(times)[rounds // 2]


def test_binary_wire_size_and_revalidation_latency(env, cost, tmp_path):
    """Packed body < information-equal JSON; 304 round trip < full body."""
    op, _ = _ops()
    clear_sweep_memo()

    service = TuningService(store=SweepStore(tmp_path / "store"), jobs=1)
    with serve_background(service) as url:
        client = TuningClient(url)

        # --- size: the packed npz vs the JSON body carrying every config.
        status, etag, packed = client.sweep_packed_raw(
            op, env, cap=PACKED_CAP, seed=SEED
        )
        assert status == 200 and etag
        json_body = client.sweep_raw(
            op, env, cap=PACKED_CAP, seed=SEED, top_k=PACKED_CAP
        )
        assert len(packed) < len(json_body), (
            f"packed body ({len(packed)} B) not smaller than the "
            f"information-equal JSON body ({len(json_body)} B)"
        )

        # The packed bytes decode (through the store's own validating
        # deserializer) to the engine's exact reference measurements.
        payload = payload_from_packed(packed, digest=etag.strip('"'))
        decoded = sweep_from_payload(op, payload)
        reference = sweep_op_reference(op, env, cost, cap=PACKED_CAP, seed=SEED)
        assert decoded.times_us() == [m.total_us for m in reference.measurements]

        # --- latency: warm full-body fetches vs ETag revalidations, on the
        # wide cap=20k sweep where the 304 saves a real transfer (the
        # packed body there is hundreds of KB of measurement arrays).
        s, wide_etag, wide_packed = client.sweep_packed_raw(op, env, cap=CAP, seed=SEED)
        assert s == 200 and wide_etag

        def full_body():
            s, _, body = client.sweep_packed_raw(op, env, cap=CAP, seed=SEED)
            assert s == 200 and body == wide_packed

        def revalidate():
            s, _, body = client.sweep_packed_raw(
                op, env, cap=CAP, seed=SEED, etag=wide_etag
            )
            assert s == 304 and body == b""

        t_full = _median_rtt(full_body, REVALIDATIONS)
        t_304 = _median_rtt(revalidate, REVALIDATIONS)

        kinds = client.metrics()["responses"]
        print(
            f"\n=== Binary wire (fused kernel) ===\n"
            f"  cap={PACKED_CAP}: packed body {len(packed)} B   "
            f"json body (top_k={PACKED_CAP}) {len(json_body)} B\n"
            f"  cap={CAP}: packed body {len(wide_packed)} B\n"
            f"  full-body rtt: {t_full * 1e3:6.2f} ms   "
            f"304 rtt: {t_304 * 1e3:6.2f} ms   (median of {REVALIDATIONS})\n"
            f"  response kinds: {kinds}"
        )
        assert kinds["binary"] == 2 + REVALIDATIONS
        assert kinds["not_modified"] == REVALIDATIONS
        assert t_304 < t_full, (
            f"304 revalidation ({t_304 * 1e3:.2f} ms) not faster than the "
            f"full packed body ({t_full * 1e3:.2f} ms)"
        )
