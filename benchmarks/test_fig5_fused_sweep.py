"""Figure 5 — fused-kernel runtime distributions over all configurations.

Paper: each fused kernel's violin has a very long tail — e.g. AIB spans
0.065 to 5.3 ms (80x), BDRB 0.396 to 45 ms (115x).  Requirements: every
fused kernel's sweep shows a long tail (>10x spread), and the best times
sit in the paper's sub-millisecond range.
"""

from repro.analysis.figures import fig5_fused_kernels
from repro.autotuner.violin import render_ascii

#: Paper Fig. 5 best-case times (ms) for loose magnitude anchoring.
PAPER_BEST_MS = {
    "AIB": 0.065, "BAIB": 0.101, "BAOB": 0.033, "BDRB": 0.396,
    "BDRLN1": 0.037, "BDRLN2": 0.037, "BEI": 0.014, "BLNRD1": 0.071,
    "BLNRD2": 0.071, "BRD": 0.167, "BS": 0.176, "BSB": 0.034,
    "EBSB": 0.078, "SM": 0.402,
}


def test_fig5_fused_sweep(benchmark, env, cost, sweep_cap):
    # 3x the shared cap: 400 (tier-1 default) -> the figure's usual 1200
    # points; REPRO_SWEEP_CAP scales it for fuller nightly sweeps.
    summaries = benchmark.pedantic(
        lambda: fig5_fused_kernels(env, cost, cap=3 * sweep_cap), rounds=1, iterations=1
    )
    print("\n=== Fig. 5 (reproduced): fused kernel layout distributions ===")
    for label, s in sorted(summaries.items()):
        paper = PAPER_BEST_MS.get(label)
        anchor = f" (paper best {paper} ms)" if paper else ""
        print(
            f"  {label:<8s} best {s.best_us / 1000:7.3f} ms  worst "
            f"{s.worst_us / 1000:8.3f} ms  spread {s.spread:6.1f}x "
            f"({s.num_configs} configs){anchor}"
        )

    # All the paper's fused element-wise/normalization kernels are present.
    assert set(summaries) >= {
        "AIB", "SM", "BDRLN1", "BRD", "BDRLN2", "BSB", "BLNRD2", "BDRB",
        "EBSB", "BLNRD1", "BAOB", "BS", "BAIB", "BEI",
    }

    # Long tails on the wide kernels (the paper's central Fig. 5 finding).
    wide = ["AIB", "SM", "BRD", "BDRB", "BS", "BDRLN1", "BDRLN2"]
    for label in wide:
        assert summaries[label].long_tailed, label

    # Best times within a loose factor of the paper's.
    for label, paper_ms in PAPER_BEST_MS.items():
        if label not in summaries:
            continue
        ours_ms = summaries[label].best_us / 1000
        assert ours_ms < 6 * paper_ms + 0.05, (label, ours_ms, paper_ms)

    # Render one violin to prove the text pipeline works end to end.
    print(render_ascii(summaries["SM"]))
