"""Real wall-clock benchmarks of the NumPy kernels (pytest-benchmark).

These complement the simulated-GPU numbers with *actual measured time* on
the host CPU: the same data-movement effects the paper exploits are visible
in NumPy/BLAS — stacked projections beat three separate GEMMs, and a fused
single-pass softmax+dropout beats materializing intermediates.
"""

import numpy as np
import pytest

from repro.ops.softmax import softmax_forward
from repro.runtime.executor import GraphExecutor
from repro.runtime.feeds import encoder_feeds
from repro.transformer.encoder import encoder_backward, encoder_forward
from repro.transformer.graph_builder import build_encoder_graph
from repro.transformer.params import ModelDims, init_encoder_params

DIMS = ModelDims(batch=2, seq=64, heads=4, proj=16, ffn_mult=4)
RNG = np.random.default_rng(0)


@pytest.fixture(scope="module")
def params():
    return init_encoder_params(DIMS, np.random.default_rng(1), std=0.05)


@pytest.fixture(scope="module")
def x():
    return RNG.normal(0, 1, (DIMS.embed, DIMS.batch, DIMS.seq))


def test_encoder_forward_wallclock(benchmark, params, x):
    result = benchmark(lambda: encoder_forward(params, x, dropout_p=0.0))
    assert result.ln2_out.shape == x.shape


def test_encoder_backward_wallclock(benchmark, params, x):
    acts = encoder_forward(params, x, dropout_p=0.0)
    dy = RNG.normal(0, 1, x.shape)
    grads, dx = benchmark(lambda: encoder_backward(params, acts, dy))
    assert dx.shape == x.shape


def test_graph_executor_wallclock(benchmark, params, x):
    env = DIMS.env()
    graph = build_encoder_graph(qkv_fusion="qkv", include_backward=False)
    feeds = encoder_feeds(params, x, qkv_fusion="qkv")
    ctx = benchmark(lambda: GraphExecutor(graph, env).run(feeds))
    assert "y" in ctx


def test_qkv_stacking_wallclock(benchmark, params, x):
    """Algebraic fusion is visible in BLAS too: one (3p·h, i) GEMM vs three
    (p·h, i) GEMMs over the same activation."""
    w = np.stack([params.mha.wq, params.mha.wk, params.mha.wv])  # [3,p,h,i]
    i = DIMS.embed
    w2d = w.reshape(-1, i)
    x2d = np.ascontiguousarray(x.reshape(i, -1))

    def stacked():
        return w2d @ x2d

    out = benchmark(stacked)
    assert out.shape == (3 * DIMS.proj * DIMS.heads, DIMS.batch * DIMS.seq)


def test_qkv_separate_wallclock(benchmark, params, x):
    i = DIMS.embed
    ws = [m.reshape(-1, i) for m in (params.mha.wq, params.mha.wk, params.mha.wv)]
    x2d = np.ascontiguousarray(x.reshape(i, -1))

    def separate():
        return [w @ x2d for w in ws]

    outs = benchmark(separate)
    assert len(outs) == 3


def test_softmax_wallclock(benchmark):
    beta = RNG.normal(0, 1, (DIMS.heads, DIMS.batch, DIMS.seq, DIMS.seq))
    y = benchmark(lambda: softmax_forward(beta, axis=-1, scale=0.125))
    assert y.shape == beta.shape


def test_contiguous_vs_strided_reduction_wallclock(benchmark):
    """The layout effect the paper tunes for, measured on the host: reducing
    over the contiguous axis is faster than over a strided one."""
    a = RNG.normal(0, 1, (512, 512))

    def contiguous():
        return a.sum(axis=1)

    benchmark(contiguous)
