"""Table I — operator-class proportions of flop and runtime under PyTorch.

Paper values: tensor contractions 99.80% flop / 61.0% runtime; statistical
normalizations 0.17% / 25.5%; element-wise 0.03% / 13.5%.  The reproduced
shape must show contractions owning ~99.8% of flop but only ~55-65% of the
runtime — training is memory bound.
"""

from repro.analysis.report import format_table1
from repro.analysis.tables import table1
from repro.ir.operator import OpClass


def test_table1_operator_classes(benchmark, env, cost):
    rows = benchmark.pedantic(lambda: table1(env, cost), rounds=1, iterations=1)
    print("\n=== Table I (reproduced; paper: 99.80/61.0, 0.17/25.5, 0.03/13.5) ===")
    print(format_table1(rows))

    by_class = {r.op_class: r for r in rows}
    tc = by_class[OpClass.TENSOR_CONTRACTION]
    # Contractions dominate flop almost completely ...
    assert tc.flop_fraction > 0.995
    # ... but far from completely dominate runtime (the paper's headline).
    assert 0.50 < tc.runtime_fraction < 0.70
    # Over a third of runtime is in memory-bound operators (Sec. I: 37%).
    memory_bound = 1.0 - tc.runtime_fraction
    assert memory_bound > 1 / 3
