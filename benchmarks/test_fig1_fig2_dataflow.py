"""Figures 1b and 2 — dataflow graphs with flop / flop-per-word annotations.

Fig. 1b annotates MHA forward: the projections are 8 binary Gflop each at
~910 flop/word, QKT/Gamma are 4 Gflop at ~102 flop/word, softmax is
~2.5 flop/word, biases 0.5 flop/word.  Fig. 2 annotates the whole encoder.
"""

import pytest

from repro.analysis.figures import fig1_mha_dataflow, fig2_encoder_dataflow


def test_fig1_mha_dataflow(benchmark, env):
    rows = benchmark.pedantic(lambda: fig1_mha_dataflow(env), rounds=1, iterations=1)
    print("\n=== Fig. 1b (reproduced): MHA forward dataflow ===")
    for r in rows:
        print(
            f"  {r.op_class.marker} {r.op_name:<16s} {r.gflop:7.3f} Gflop  "
            f"{r.flop_per_word:8.1f} flop/word  [{r.movement_class}]"
        )
    by_name = {r.op_name: r for r in rows}

    # Paper: each projection is 8G flop at ~910 flop/word.
    assert by_name["q_proj"].gflop == pytest.approx(8.0, abs=0.1)
    assert by_name["q_proj"].flop_per_word == pytest.approx(910, rel=0.05)
    # QKT / Gamma: 4G at ~102 flop/word.
    assert by_name["qkt"].gflop == pytest.approx(4.0, abs=0.1)
    assert by_name["qkt"].flop_per_word == pytest.approx(102, rel=0.05)
    assert by_name["gamma"].flop_per_word == pytest.approx(102, rel=0.05)
    # Softmax ~2.5 flop/word (IO ~ flop); biases 0.5 (IO > flop).
    assert 1.0 < by_name["softmax"].flop_per_word < 4.0
    assert by_name["input_bias_q"].flop_per_word == pytest.approx(0.5, abs=0.1)
    assert by_name["input_bias_q"].movement_class == "IO > flop"
    assert by_name["q_proj"].movement_class == "IO < flop"


def test_fig2_encoder_dataflow(benchmark, env):
    rows = benchmark.pedantic(lambda: fig2_encoder_dataflow(env), rounds=1, iterations=1)
    print("\n=== Fig. 2 (reproduced): encoder fwd+bwd dataflow ===")
    for r in rows:
        print(
            f"  {r.op_class.marker} {r.op_name:<24s} {r.gflop:7.3f} Gflop  "
            f"{r.flop_per_word:8.1f} flop/word  [{r.movement_class}]"
        )
    by_name = {r.op_name: r for r in rows}

    # Fig. 2 annotations: linear layers 32G at ~1024-1365 flop/word;
    # layernorm ~3.5 flop/word; dropout/residual ~1/3-1/2.
    assert by_name["linear1"].gflop == pytest.approx(32.0, abs=0.2)
    assert 900 < by_name["linear1"].flop_per_word < 1500
    assert 2.0 < by_name["ln1"].flop_per_word < 5.0
    assert by_name["ffn_dropout"].flop_per_word < 1.0
    assert by_name["residual1"].movement_class == "IO > flop"

    # Total: the full training graph is ~312.6 binary Gflop.
    assert sum(r.gflop for r in rows) == pytest.approx(312.6, rel=0.02)
