"""Zero-cost-when-off: disabled tracing must not tax the warm path.

The daemon's warm path serves L1 hits in well under a millisecond; the
tracing tentpole is only acceptable if *disabled* instrumentation (the
default) costs nothing measurable.  This benchmark drives the real warm
request body — ``handle_sweep`` on an L1-cached digest, inside the same
span the HTTP handler opens — under two modes:

* **absent** — every obs hook swapped for a literal no-op, the closest
  executable stand-in for the instrumentation not existing at all;
* **disabled** — the shipped default: ``REPRO_TRACE`` unset, the shared
  ``NullTracer``/``NullSpan`` singletons, no contextvar ever written.

Acceptance: the disabled warm path is within 5% of the absent baseline
(best-of-rounds, both sides measured identically).  Enabled tracing is
measured too, but only reported — recording real spans is allowed to
cost real microseconds.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter

from repro import obs
from repro.ir.dims import bert_large_dims
from repro.service import TuningService
from repro.service.protocol import sweep_request_wire
from repro.transformer.graph_builder import build_mha_graph

ENV = bert_large_dims()
CAP = 60
ROUNDS = 11
ITERS = 40


class _AbsentSpan:
    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_ABSENT = _AbsentSpan()


@contextmanager
def _instrumentation_absent():
    """Swap the obs hooks for no-ops (call sites pay one call, nothing else)."""
    saved = (obs.span, obs.set_attr, obs.add_event, obs.current_traceparent)
    obs.span = lambda name, *, parent=None, **attrs: _ABSENT
    obs.set_attr = lambda key, value: None
    obs.add_event = lambda name, **attrs: None
    obs.current_traceparent = lambda: None
    try:
        yield
    finally:
        obs.span, obs.set_attr, obs.add_event, obs.current_traceparent = saved


def _best_s(fn) -> float:
    """Best per-call seconds over ROUNDS rounds of ITERS calls each."""
    best = float("inf")
    for _ in range(ROUNDS):
        t0 = perf_counter()
        for _ in range(ITERS):
            fn()
        best = min(best, (perf_counter() - t0) / ITERS)
    return best


def test_tracing_disabled_warm_path_within_5pct():
    svc = TuningService(store=None, registry=None)
    op = build_mha_graph(qkv_fusion="unfused", include_backward=False).op(
        "q_proj"
    )
    body = sweep_request_wire(op, ENV, cap=CAP, seed=0)

    def warm_request():
        # The per-request work a warm daemon does minus the socket: the
        # handler's server span around a fully L1-served handle_sweep.
        with obs.span("server/v1/sweep", endpoint="/v1/sweep"):
            obs.set_attr("http.status", 200)
            svc.handle_sweep(body)

    warm_request()  # populate L1 so every measured call is a warm hit

    obs.set_tracing(False)
    try:
        with _instrumentation_absent():
            warm_request()
            absent_s = _best_s(warm_request)
        disabled_s = _best_s(warm_request)

        obs.set_tracing(True)
        enabled_s = _best_s(warm_request)
        obs.get_tracer().clear()
    finally:
        obs.set_tracing(None)

    overhead = disabled_s / absent_s - 1.0
    print(
        "\n=== Tracing overhead on the warm request path ===\n"
        f"  instrumentation absent:  {1e6 * absent_s:8.1f} us/req\n"
        f"  tracing disabled:        {1e6 * disabled_s:8.1f} us/req "
        f"({100 * overhead:+.2f}%)\n"
        f"  tracing enabled:         {1e6 * enabled_s:8.1f} us/req"
    )
    assert disabled_s <= absent_s * 1.05, (
        f"disabled tracing costs {100 * overhead:.2f}% on the warm path "
        "(budget: 5%)"
    )
