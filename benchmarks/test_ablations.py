"""Ablations of the design choices DESIGN.md calls out.

* fusion off / element-wise-chains only (greedy) / full paper kernel set;
* algebraic fusion variants (complementing Table II at the graph level);
* global SSSP selection vs greedy per-op best vs default layouts;
* launch-overhead sensitivity (free launches isolate the data-movement win);
* hardware generation (V100 vs A100): faster compute makes training *more*
  memory bound (Sec. VIII-B's trend argument).
"""

from dataclasses import replace

import pytest

from repro.autotuner.tuner import sweep_graph
from repro.baselines.policy import OURS, PYTORCH
from repro.baselines.frameworks import framework_schedule
from repro.configsel.selector import select_configurations
from repro.fusion.encoder_kernels import apply_paper_fusion
from repro.fusion.fuser import fuse_greedy
from repro.hardware.cost_model import CostModel
from repro.hardware.spec import A100, V100
from repro.layouts.configspace import default_config
from repro.transformer.graph_builder import build_encoder_graph


def _schedule_total(graph, env, cost, *, mode: str, cap: int = 300) -> float:
    """Total µs of a graph under one of three configuration policies."""
    if mode == "default":
        total = 0.0
        for op in graph.ops:
            if op.is_view:
                continue
            kt = cost.time_op(op, default_config(op), env)
            assert kt is not None, op.name
            total += kt.total_us
        return total
    sweeps = sweep_graph(graph, env, cost, cap=cap)
    if mode == "greedy-best":
        return sum(s.best.total_us for s in sweeps.values())
    if mode == "selected":
        sel = select_configurations(graph, env, cost, sweeps=sweeps, cap=cap)
        return sel.total_us
    raise ValueError(mode)


def test_fusion_ablation(benchmark, env, cost):
    """Each fusion level must strictly reduce predicted time and kernels."""

    def run():
        unfused = build_encoder_graph(qkv_fusion="qkv")
        greedy = fuse_greedy(unfused, env)
        paper = apply_paper_fusion(unfused, env)
        return {
            "unfused": (_schedule_total(unfused, env, cost, mode="greedy-best"),
                        sum(1 for o in unfused.ops if not o.is_view)),
            "greedy": (_schedule_total(greedy, env, cost, mode="greedy-best"),
                       sum(1 for o in greedy.ops if not o.is_view)),
            "paper": (_schedule_total(paper, env, cost, mode="greedy-best"),
                      sum(1 for o in paper.ops if not o.is_view)),
        }

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n=== Ablation: fusion level (per-op-best configs) ===")
    for k, (t, n) in res.items():
        print(f"  {k:<8s} {t / 1000:6.2f} ms  ({n} kernels)")
    # Both fusion levels clearly beat the unfused schedule; the curated set
    # additionally reduces kernel count via sibling merges (its predicted
    # time is within noise of greedy's: the merges trade launches for
    # layout coupling).
    assert res["paper"][0] < res["unfused"][0]
    assert res["greedy"][0] < res["unfused"][0]
    assert res["paper"][0] == pytest.approx(res["greedy"][0], rel=0.05)
    assert res["paper"][1] < res["greedy"][1] < res["unfused"][1]


def test_layout_policy_ablation(benchmark, env, cost):
    """Default layouts << tuned; SSSP pays a bounded consistency premium
    over the (physically unrealizable) per-op best."""

    def run():
        fused = apply_paper_fusion(build_encoder_graph(qkv_fusion="qkv"), env)
        return {
            mode: _schedule_total(fused, env, cost, mode=mode)
            for mode in ("default", "greedy-best", "selected")
        }

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n=== Ablation: layout policy ===")
    for k, t in res.items():
        print(f"  {k:<12s} {t / 1000:6.2f} ms")
    assert res["greedy-best"] <= res["selected"] <= res["default"]
    # Tuning matters: default layouts leave >15% on the table.
    assert res["default"] > 1.15 * res["selected"]
    # The consistency premium of a real (layout-consistent) schedule.
    assert res["selected"] < 1.15 * res["greedy-best"]


@pytest.mark.slow
def test_launch_overhead_sensitivity(benchmark, env):
    """With free kernel launches the fusion speedup persists: the win is
    data movement, not launch count."""

    def run():
        out = {}
        for label, gpu in (("5us", V100), ("free", replace(V100, kernel_launch_us=0.0))):
            cost = CostModel(gpu)
            ours = framework_schedule(OURS, env, cost, model="encoder", cap=200)
            pt = framework_schedule(PYTORCH, env, cost, model="encoder", cap=200)
            out[label] = pt.total_us / ours.total_us
        return out

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n=== Ablation: launch overhead ===")
    for k, s in res.items():
        print(f"  launches {k:<5s} speedup vs PyTorch {s:4.2f}x")
    # The central claim: the speedup is a data-movement win, so it is
    # essentially unchanged when kernel launches are free.
    assert res["free"] > 1.15
    assert res["5us"] == pytest.approx(res["free"], rel=0.10)


@pytest.mark.slow
def test_hardware_generation(benchmark, env):
    """A100: more compute AND more bandwidth, but compute grows faster, so
    the memory-bound runtime share grows (Sec. VIII-B)."""

    def run():
        shares = {}
        for gpu in (V100, A100):
            cost = CostModel(gpu)
            s = framework_schedule(OURS, env, cost, model="encoder", cap=200)
            from repro.ir.operator import OpClass

            by_class = s.class_runtime()
            total = sum(by_class.values())
            shares[gpu.name] = 1.0 - by_class[OpClass.TENSOR_CONTRACTION] / total
        return shares

    shares = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n=== Ablation: hardware generation (non-contraction runtime share) ===")
    for name, share in shares.items():
        print(f"  {name:<18s} {100 * share:5.1f}% memory-bound-class runtime")
    assert shares[A100.name] > shares[V100.name]
