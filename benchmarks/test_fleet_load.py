"""Fleet load harness: sharded batch throughput scales with workers.

The claim this pins: ``POST /v1/optimize_batch`` through a coordinator
with 3 worker daemons sustains at least **2x** the batch throughput of the
same coordinator with a single worker — because the per-op sweep jobs
genuinely execute on separate *processes* (separate daemons, separate
GILs, separate cores), not just separate threads.

Methodology: each worker daemon is pinned to its own CPU (``taskset``,
when available), so a worker is a fixed unit of capacity and the 1-vs-3
ratio measures fleet scaling rather than one process's numpy threads
spilling across cores.  The arms serve the same six distinct batch
requests (distinct seeds → distinct digests → genuinely cold jobs, 66 in
total) and every job is asserted to have executed remotely — no silent
local fallback on the coordinator.

Real subprocesses need real cores, so the benchmark skips on machines
with fewer than 4 CPUs (3 workers + a coordinator).
"""

from __future__ import annotations

import os
import re
import shutil
import subprocess
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

from repro.ir.dims import bert_large_dims
from repro.service import TuningClient

pytestmark = [
    pytest.mark.slow,
    pytest.mark.skipif(
        (os.cpu_count() or 1) < 4,
        reason="needs >= 4 CPUs: 3 worker processes + a coordinator",
    ),
]

REPO = Path(__file__).resolve().parent.parent
ENV = bert_large_dims()
#: The widest cap ``/v1/optimize_batch`` accepts: per-job sweep work
#: dominates the coordinator's fixed per-batch costs (selection, response
#: assembly), which both arms pay identically.
CAP = 20_000
#: Concurrent batches per arm, each with a distinct seed → distinct
#: digests: 6 x 11 = 66 genuinely cold jobs spread across the ring.
SEEDS = (101, 202, 303, 404, 505, 606)
BATCH = dict(model="encoder", include_backward=False, env=ENV, cap=CAP)

_TASKSET = shutil.which("taskset")


def _spawn(argv, *, store_dir, cpu=None):
    env = os.environ.copy()
    env["PYTHONPATH"] = str(REPO / "src")
    env["PYTHONUNBUFFERED"] = "1"
    env["REPRO_FLEET_TTL_S"] = "3"  # 1 s heartbeats: fast readiness
    env.pop("REPRO_FAULT_SPEC", None)
    pin = [_TASKSET, "-c", str(cpu)] if _TASKSET and cpu is not None else []
    proc = subprocess.Popen(
        [
            *pin,
            sys.executable, "-m", "repro", "fleet", "serve",
            "--port", "0", "--sweep-store", str(store_dir), *argv,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    banner = proc.stdout.readline()
    match = re.search(r"listening on (http://[\d.]+:\d+)", banner)
    assert match, f"no banner: {banner!r}"
    return proc, match.group(1)


def _run_arm(tmp_path: Path, n_workers: int) -> float:
    """Wall time to serve the seed batches through ``n_workers`` workers."""
    arm_dir = tmp_path / f"arm-{n_workers}"
    n_cpus = os.cpu_count() or 1
    procs = []
    try:
        # The coordinator gets the last CPU; workers get their own, so a
        # worker daemon is one core of capacity in both arms.
        coord, url = _spawn(
            ["--role", "coordinator"],
            store_dir=arm_dir / "coord-store",
            cpu=n_cpus - 1,
        )
        procs.append(coord)
        for i in range(n_workers):
            proc, _ = _spawn(
                [
                    "--role", "worker",
                    "--coordinator-url", url,
                    "--worker-id", f"w{i + 1}",
                ],
                store_dir=arm_dir / f"w{i + 1}-store",
                cpu=i % max(1, n_cpus - 1),
            )
            procs.append(proc)

        client = TuningClient(url, timeout=600.0)
        client.wait_until_ready(timeout=90, readiness=True)
        deadline = time.monotonic() + 90
        while client.fleet_status()["counts"]["ready"] < n_workers:
            assert time.monotonic() < deadline, "workers never became ready"
            time.sleep(0.2)

        t0 = time.perf_counter()
        with ThreadPoolExecutor(len(SEEDS)) as pool:
            responses = list(
                pool.map(
                    lambda seed: client.optimize_batch_raw(seed=seed, **BATCH),
                    SEEDS,
                )
            )
        elapsed = time.perf_counter() - t0

        assert all(responses)
        assert len(set(responses)) == len(SEEDS)  # distinct seeds, distinct work
        events = client.metrics()["fleet"]["events"]
        # Every job went over the wire: the arms measure fleet execution,
        # not silent local fallback on the coordinator.
        assert events["job_local_fallback"] == 0, events
        assert events["job_remote"] > 0
        assert events["quarantine"] == 0, events
        return elapsed
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)


def test_three_workers_double_batch_throughput(tmp_path):
    t_one = _run_arm(tmp_path, 1)
    t_three = _run_arm(tmp_path, 3)
    speedup = t_one / t_three

    batches = len(SEEDS)
    print(
        f"\n=== Fleet load (encoder forward, cap={CAP}, "
        f"{batches} concurrent batches, 66 cold jobs/arm) ===\n"
        f"  1 worker:   {t_one:7.2f} s  "
        f"({batches / t_one:5.2f} batches/s)\n"
        f"  3 workers:  {t_three:7.2f} s  "
        f"({batches / t_three:5.2f} batches/s)\n"
        f"  speedup:    {speedup:.2f}x"
        + ("" if _TASKSET else "   (no taskset: workers unpinned)")
    )
    assert speedup >= 2.0, (
        f"3 workers only {speedup:.2f}x over 1 worker "
        f"({t_one:.2f}s vs {t_three:.2f}s)"
    )
