"""Sweep-store acceptance benchmark: warm-hit speedup and exactness.

Pins the persistent store's two contracts on the paper's full workload
(BERT-large encoder, forward + backward, ``cap=2000``):

* a **warm** whole-graph sweep (every operator served from the on-disk
  store) is at least 5x faster than the **cold** sweep that populated it,
  measured in freshly *spawned* interpreters — the store's motivating
  scenario is exactly that every new process (CLI run, example, nightly
  job) starts with an empty L1 memo and cold structural caches;
* warm results are **bit-identical** to the cold ones, which are
  themselves bit-identical to the store-free engine path (pinned against
  ``sweep_op_reference`` by ``benchmarks/test_engine_speedup.py``).
"""

from __future__ import annotations

import hashlib
import multiprocessing as mp
import time
from concurrent.futures import ProcessPoolExecutor

from repro.engine import clear_sweep_memo, sweep_graph
from repro.engine.store import SweepStore
from repro.transformer.graph_builder import build_encoder_graph

CAP = 2000


def _graph():
    return build_encoder_graph(qkv_fusion="qkv", include_backward=True)


def _fingerprint(sweeps) -> str:
    """Exact content hash of a sweep set: sorted totals + winning configs."""
    import numpy as np

    h = hashlib.sha256()
    for name in sorted(sweeps):
        s = sweeps[name]
        h.update(name.encode())
        h.update(np.asarray(s.times_us(), dtype=np.float64).tobytes())
        h.update(s.best.config.key().encode())
    return h.hexdigest()


def _timed_graph_sweep(store_dir: str):
    """One whole-graph sweep against the store; runs in a spawned child.

    Returns (elapsed seconds, result fingerprint, store stats).  Timing
    starts after graph construction so it covers exactly the sweep +
    consume path a warmed process would re-run.
    """
    store = SweepStore(store_dir)
    from repro.hardware.cost_model import CostModel
    from repro.ir.dims import bert_large_dims

    env = bert_large_dims()
    cost = CostModel()
    graph = _graph()
    t0 = time.perf_counter()
    sweeps = sweep_graph(graph, env, cost, cap=CAP, store=store)
    for s in sweeps.values():
        s.times_us()
        s.best.config
    elapsed = time.perf_counter() - t0
    return elapsed, _fingerprint(sweeps), store.stats()


def _run_in_fresh_process(store_dir: str):
    """Execute one timed sweep in a brand-new (spawned) interpreter."""
    ctx = mp.get_context("spawn")
    with ProcessPoolExecutor(max_workers=1, mp_context=ctx) as pool:
        return pool.submit(_timed_graph_sweep, store_dir).result()


def test_store_round_trip_matches_store_free_path(env, cost, tmp_path):
    """L2-served sweeps == the serial, store-free engine path, exactly."""
    graph = _graph()
    store = SweepStore(tmp_path / "store")
    clear_sweep_memo()
    cold = sweep_graph(graph, env, cost, cap=CAP, store=store)
    clear_sweep_memo()
    warm = sweep_graph(graph, env, cost, cap=CAP, store=store)
    clear_sweep_memo()
    store_free = sweep_graph(graph, env, cost, cap=CAP, memo=False)
    assert store.stats()["rejected"] == 0
    assert _fingerprint(cold) == _fingerprint(warm) == _fingerprint(store_free)
    # Beyond the fingerprint: every measurement of a few full sweeps.
    for name in list(warm)[:6]:
        for x, y in zip(warm[name].measurements, store_free[name].measurements):
            assert x.config == y.config, name
            assert x.time == y.time, name


def test_store_speedup_full_graph(benchmark, tmp_path):
    """>= 5x: warm (store-hit) vs cold whole-graph sweep, fresh processes."""
    store_dir = str(tmp_path / "store")

    t_cold, fp_cold, stats_cold = _run_in_fresh_process(store_dir)
    assert stats_cold["saves"] > 0 and stats_cold["hits"] == 0

    def run_warm():
        run_warm.runs.append(_run_in_fresh_process(store_dir))
        return run_warm.runs[-1]

    run_warm.runs = []
    # Two warm rounds, best taken: the warm leg is ~tens of ms absolute,
    # so a single GC pause or disk hiccup would otherwise halve the ratio.
    benchmark.pedantic(run_warm, rounds=2, iterations=1)
    t_warm, fp_warm, stats_warm = min(run_warm.runs, key=lambda r: r[0])

    speedup = t_cold / t_warm
    print(
        f"\n=== Sweep-store speedup (BERT-large encoder fwd+bwd, cap={CAP}, "
        f"fresh process per run) ===\n"
        f"  cold (evaluate + persist): {t_cold:6.3f} s   {stats_cold}\n"
        f"  warm (store hits):         {t_warm:6.3f} s   {stats_warm}  "
        f"({speedup:.1f}x)"
    )
    assert stats_warm["hits"] == stats_cold["saves"]  # every sweep served
    assert stats_warm["saves"] == 0 and stats_warm["rejected"] == 0
    assert fp_warm == fp_cold  # byte-identical results
    assert speedup >= 5.0, f"warm store only {speedup:.1f}x faster than cold"
