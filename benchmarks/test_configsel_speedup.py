"""Configsel fast-path acceptance: bit-identity and wall-clock speedup.

Pins the vectorized configuration-selection pipeline's two contracts,
mirroring ``benchmarks/test_engine_speedup.py`` for the sweep engine:

* ``select_configurations(fast=True)`` produces a **bit-identical**
  ``SelectedConfiguration`` (chosen configurations, inserted transposes,
  chain cost) to the scalar reference (``fast=False``) on every graph of
  the tier-1 matrix — fused/unfused encoder, fused MHA, the GPT decoder,
  and the Sec. VI-C alternate dims;
* at encoder scale the fast path is at least 5x faster wall-clock than
  the scalar reference, with each side handed *fresh* (unmaterialized)
  engine sweeps the way a cold ``optimize`` run hands them out.
"""

from __future__ import annotations

import time

from repro.configsel.selector import select_configurations
from repro.engine.store import compute_payload
from repro.engine.sweep import sweep_from_payload
from repro.fusion.encoder_kernels import apply_paper_fusion
from repro.ir.dims import bert_alternate_dims, bert_large_dims
from repro.transformer.graph_builder import (
    build_encoder_graph,
    build_gpt_decoder_graph,
    build_mha_graph,
)


def _graph_matrix(env, sweep_cap):
    alt = bert_alternate_dims()
    return [
        (
            "encoder-qkv-fused",
            apply_paper_fusion(build_encoder_graph(qkv_fusion="qkv"), env),
            env,
            sweep_cap,
        ),
        (
            "mha-fused",
            apply_paper_fusion(build_mha_graph(qkv_fusion="qkv"), env),
            env,
            sweep_cap,
        ),
        (
            "decoder-fused",
            apply_paper_fusion(build_gpt_decoder_graph(qkv_fusion="qkv"), env),
            env,
            min(sweep_cap, 200),
        ),
        ("encoder-unfused", build_encoder_graph(qkv_fusion="unfused"), env, 200),
        (
            "encoder-alt-dims",
            apply_paper_fusion(build_encoder_graph(qkv_fusion="qkv"), alt),
            alt,
            200,
        ),
    ]


def _payloads(graph, env, cost, cap):
    """One evaluated payload per non-view op (names kept per op)."""
    return {
        op.name: compute_payload(op, env, cost.gpu, cap=cap, seed=0x5EED)
        for op in graph.ops
        if not op.is_view
    }


def _fresh_sweeps(graph, payloads):
    """Brand-new lazily materialized sweeps — nothing pre-built, no memo."""
    return {
        name: sweep_from_payload(graph.op(name), payload)
        for name, payload in payloads.items()
    }


def test_fast_bit_identical_across_graph_matrix(env, cost, sweep_cap):
    """Fast == scalar on every tier-1 graph: configs, transposes, cost."""
    for label, graph, genv, cap in _graph_matrix(env, sweep_cap):
        payloads = _payloads(graph, genv, cost, cap)
        fast = select_configurations(
            graph, genv, cost, sweeps=_fresh_sweeps(graph, payloads), cap=cap,
            fast=True,
        )
        scalar = select_configurations(
            graph, genv, cost, sweeps=_fresh_sweeps(graph, payloads), cap=cap,
            fast=False,
        )
        assert fast.chain_cost_us == scalar.chain_cost_us, label
        assert fast.transposes == scalar.transposes, label
        assert fast.chosen == scalar.chosen, label
        assert fast.pinned_layouts == scalar.pinned_layouts, label
        assert fast == scalar, label


def test_configsel_speedup_encoder(benchmark, env, cost, sweep_cap):
    """>= 5x wall-clock over the scalar reference at encoder scale."""
    graph = apply_paper_fusion(build_encoder_graph(qkv_fusion="qkv"), env)
    payloads = _payloads(graph, env, cost, sweep_cap)

    def run(fast: bool):
        # Fresh sweeps per run: neither side gets to reuse measurement
        # objects (or array views) materialized by the other.
        sweeps = _fresh_sweeps(graph, payloads)
        return select_configurations(
            graph, env, cost, sweeps=sweeps, cap=sweep_cap, fast=fast
        )

    # Warm shared process-level caches (transpose memo, layout tables) so
    # the measurement compares the two pipelines, not first-touch costs.
    expected = run(fast=False)
    assert run(fast=True) == expected

    t0 = time.perf_counter()
    scalar_sel = run(fast=False)
    t_scalar = time.perf_counter() - t0

    t0 = time.perf_counter()
    fast_sel = benchmark.pedantic(run, args=(True,), rounds=1, iterations=1)
    t_fast = time.perf_counter() - t0

    assert fast_sel == scalar_sel == expected
    speedup = t_scalar / t_fast
    print(
        f"\n=== Configsel speedup (BERT-large encoder, cap={sweep_cap}) ===\n"
        f"  scalar reference: {1e3 * t_scalar:8.1f} ms\n"
        f"  fast path:        {1e3 * t_fast:8.1f} ms  ({speedup:.1f}x)"
    )
    assert speedup >= 5.0, f"fast path only {speedup:.1f}x over the scalar reference"
