"""Figure 4 — tensor-contraction performance over all data layouts.

Each tile is a GEMM shape; the violin spans all feasible layout/algorithm
configurations, tensor cores vs FP16 units.  Shape requirements: tensor
cores win decisively for large GEMMs but come close to the FP16 units when
a dimension is 64 (undersaturation); the layout spread is significant; the
cuBLAS-style heuristic is measurably worse than the best algorithm
(paper: up to 14.24% at fp16).
"""

from dataclasses import replace

from repro.analysis.figures import fig4_contraction_tiles
from repro.hardware.efficiency import best_algorithm, heuristic_algorithm
from repro.layouts.configspace import contraction_configs
from repro.layouts.gemm_mapping import default_gemm_shape
from repro.ops.contraction import contraction_spec


def test_fig4_contraction_sweep(benchmark, env, cost):
    tiles = benchmark.pedantic(lambda: fig4_contraction_tiles(env, cost), rounds=1, iterations=1)
    print("\n=== Fig. 4 (reproduced): contraction layout sweeps ===")
    for t in tiles:
        print(
            f"  {t.label:<42s} TC best {t.tc_best_pct_peak:5.1f}% worst "
            f"{t.tc_worst_pct_peak:5.1f}%  FP16 best {t.fp16_best_pct_peak:5.1f}%  "
            f"({t.num_configs} configs; ops: {', '.join(t.op_names[:3])}...)"
        )

    assert len(tiles) >= 10  # the paper shows 12 tiles

    by_label = {t.label: t for t in tiles}
    big = by_label["M: 4096, N: 4096, K: 1024, B: 1"]  # lin1 / dXlin2
    small = by_label["M: 512, N: 512, K: 64, B: 128"]  # QKT

    # Large GEMMs: tensor cores deliver far more absolute flop/s.
    assert big.tc_best_pct_peak * 125 > 2.5 * big.fp16_best_pct_peak * 31.4

    # 64-wide GEMMs: tensor cores barely beat the FP16 pipeline (Sec. V-A).
    tc_flops = small.tc_best_pct_peak * 125
    fp_flops = small.fp16_best_pct_peak * 31.4
    assert tc_flops < 2.0 * fp_flops

    # Layout choice matters: the worst layout is far below the best.
    for t in tiles:
        assert t.tc_worst_pct_peak < 0.9 * t.tc_best_pct_peak


def test_heuristic_algorithm_gap(benchmark, env, cost):
    """Sec. V-A: the library heuristic is up to ~14% worse than the best."""

    def worst_gap():
        gaps = []
        for einsum in (
            "cphi,ibj->cphbj", "ui,ibj->ubj", "iu,ubj->ibj",
            "phbk,phbj->hbjk", "whbk,hbjk->whbj", "whi,whbj->ibj",
        ):
            op = contraction_spec("op", einsum, ("a", "b"), "c")
            shape = default_gemm_shape(einsum, env)
            base = None
            for config in contraction_configs(op, env):
                kt = cost.time_op(op, config, env)
                if kt is None:
                    continue
                if base is None or kt.total_us < base[0]:
                    base = (kt.total_us, config)
            best_t, best_cfg = base
            heur_cfg = replace(best_cfg, algorithm=-1)
            heur_t = cost.time_op(op, heur_cfg, env).total_us
            gaps.append(heur_t / best_t - 1.0)
        return gaps

    gaps = benchmark.pedantic(worst_gap, rounds=1, iterations=1)
    print("\nheuristic-vs-best gaps:", [f"{100 * g:.1f}%" for g in gaps])
    assert max(gaps) > 0.0  # the heuristic misses the best somewhere
    assert max(gaps) < 0.20  # but is never catastrophically wrong
