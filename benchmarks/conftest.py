"""Shared fixtures for the reproduction benchmarks.

Each benchmark regenerates one table or figure of the paper and prints the
reproduced rows next to the published values.  Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.hardware.cost_model import CostModel
from repro.ir.dims import bert_large_dims


@pytest.fixture(scope="session")
def env():
    """The paper's running configuration: BERT-large, B=8, L=512."""
    return bert_large_dims()


@pytest.fixture(scope="session")
def cost():
    """The simulated V100 (the paper's evaluation GPU)."""
    return CostModel()


@pytest.fixture(scope="session")
def sweep_cap():
    """Sampled-configuration cap for wide fused-kernel spaces."""
    return 400
