"""Shared fixtures for the reproduction benchmarks.

Each benchmark regenerates one table or figure of the paper and prints the
reproduced rows next to the published values.  Run with::

    pytest benchmarks/ --benchmark-only -s

The heaviest full-scale sweeps are marked ``slow`` and deselected by
default (see ``pytest.ini``); run them with ``-m slow`` or clear the
default marker filter.  ``REPRO_SWEEP_CAP`` overrides the sampled-config
cap used by the wide fused-kernel sweeps, e.g.::

    REPRO_SWEEP_CAP=1500 pytest benchmarks/ -m "slow or not slow"
"""

from __future__ import annotations

import os

import pytest

from repro.hardware.cost_model import CostModel
from repro.ir.dims import bert_large_dims


@pytest.fixture(scope="session")
def env():
    """The paper's running configuration: BERT-large, B=8, L=512."""
    return bert_large_dims()


@pytest.fixture(scope="session")
def cost():
    """The simulated V100 (the paper's evaluation GPU)."""
    return CostModel()


@pytest.fixture(scope="session")
def sweep_cap():
    """Sampled-configuration cap for wide fused-kernel spaces.

    Defaults to 400 (the tier-1 budget); override with the
    ``REPRO_SWEEP_CAP`` environment variable for fuller nightly sweeps.
    """
    return int(os.environ.get("REPRO_SWEEP_CAP", "400"))
