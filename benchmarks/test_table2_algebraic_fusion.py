"""Table II — algebraic fusion for the MHA Q/K/V projections (µs).

Paper: forward 345 / 294 / 275, backward 342 / 312 / 291 for
unfused / QK-fused / QKV-fused.  The reproduced ordering must be monotone
(more stacking is faster) with forward magnitudes within ~25%.
"""

import pytest

from repro.analysis.report import format_table2
from repro.analysis.tables import table2


def test_table2_algebraic_fusion(benchmark, env, cost):
    data = benchmark.pedantic(lambda: table2(env, cost), rounds=1, iterations=1)
    print("\n=== Table II (reproduced; paper fwd 345/294/275, bwd 342/312/291) ===")
    print(format_table2(data))

    fwd, bwd = data["forward"], data["backward"]
    assert fwd["qkv"] < fwd["qk"] < fwd["unfused"]
    assert bwd["qkv"] <= bwd["qk"] <= bwd["unfused"]
    assert fwd["unfused"] == pytest.approx(345, rel=0.25)
    assert fwd["qkv"] == pytest.approx(275, rel=0.25)
    assert bwd["unfused"] == pytest.approx(342, rel=0.25)
