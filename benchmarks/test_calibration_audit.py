"""Calibration audit: every Table III kernel time, model vs paper.

Prints the per-row ratios and the aggregate statistics that EXPERIMENTS.md
reports; asserts the cost model is unbiased (geometric mean ~1) and tight
on the compute-bound anchor rows.
"""

import pytest

from repro.analysis.calibration import audit_calibration


def test_calibration_audit(benchmark, env, cost):
    report = benchmark.pedantic(
        lambda: audit_calibration(env, cost, cap=400), rounds=1, iterations=1
    )
    print("\n=== Calibration audit: model / paper time ratios (Table III) ===")
    print(f"{'row':<42s} {'PT model':>9s} {'PT paper':>9s} {'ratio':>6s}   "
          f"{'Ours model':>10s} {'Ours paper':>10s} {'ratio':>6s}")
    for r in report.rows:
        print(
            f"{r.label:<42s} {r.model_pt_us:9.0f} {r.paper_pt_us:9.0f} "
            f"{r.pt_ratio:6.2f}   {r.model_ours_us:10.0f} {r.paper_ours_us:10.0f} "
            f"{r.ours_ratio:6.2f}"
        )
    print(
        f"\nmedian ratio: PT {report.median_ratio(side='pt'):.2f}, "
        f"Ours {report.median_ratio(side='ours'):.2f}; "
        f"geomean: PT {report.geometric_mean_ratio(side='pt'):.2f}, "
        f"Ours {report.geometric_mean_ratio(side='ours'):.2f}; "
        f"within 2x: PT {100 * report.within(2.0, side='pt'):.0f}%, "
        f"Ours {100 * report.within(2.0, side='ours'):.0f}%"
    )

    assert 0.7 < report.geometric_mean_ratio(side="ours") < 1.3
    assert report.within(2.0, side="ours") > 0.75
    assert report.within(2.0, side="pt") > 0.75


@pytest.mark.slow
def test_sensitivity_sweep(benchmark, cost):
    """Beyond the paper's two (B, L) points: the win persists across the grid
    and attention's share grows with sequence length."""
    from repro.analysis.sensitivity import attention_ffn_crossover

    points = benchmark.pedantic(
        lambda: attention_ffn_crossover(seqs=(128, 512, 1024), cap=150),
        rounds=1,
        iterations=1,
    )
    print("\n=== Sequence-length sweep (B=8) ===")
    for p in points:
        print(
            f"  L={p.seq:<5d} ours {p.ours_ms:6.2f} ms  speedup {p.speedup:4.2f}x  "
            f"attention share of fwd {100 * p.attention_share:4.1f}%  "
            f"memory-bound share {100 * p.memory_bound_share:4.1f}%"
        )
    shares = [p.attention_share for p in points]
    assert shares == sorted(shares)
    assert all(p.speedup > 1.1 for p in points)
