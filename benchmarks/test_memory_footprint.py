"""Memory-footprint analysis (extension; supports the paper's Sec. III-D
setting of 16 GB V100s).

Not a paper table — but the activation-dominated footprint is why the
paper's mini-batch is 8 at L=512, and fusion's removal of interior tensors
is measurable here too.
"""

from repro.analysis.memory import graph_footprint
from repro.fusion.encoder_kernels import apply_paper_fusion
from repro.hardware.spec import V100
from repro.transformer.graph_builder import build_encoder_graph


def test_memory_footprint(benchmark, env):
    def run():
        unfused = build_encoder_graph(qkv_fusion="qkv")
        fused = apply_paper_fusion(unfused, env)
        return graph_footprint(unfused, env), graph_footprint(fused, env)

    before, after = benchmark.pedantic(run, rounds=1, iterations=1)
    gib = 2.0**30
    print("\n=== Training memory per encoder layer (B=8, L=512, fp16) ===")
    for label, fp in (("unfused", before), ("fused", after)):
        print(
            f"  {label:<8s} params {fp.parameter_bytes / gib:5.3f} GiB  "
            f"saved acts {fp.saved_activation_bytes / gib:5.3f} GiB  "
            f"transient {fp.transient_activation_bytes / gib:5.3f} GiB"
        )

    # BERT-large: 24 layers of persistent state must fit 16 GB at B=8.
    assert after.fits(V100, model_copies=24)
    # Fusion eliminates interim materialization.
    assert after.transient_activation_bytes < before.transient_activation_bytes
    # Activations dominate parameters at this batch/sequence size.
    assert after.saved_activation_bytes > 2 * after.parameter_bytes
