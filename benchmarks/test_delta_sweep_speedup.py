"""Delta re-sweep acceptance benchmark: structural reuse speedup + exactness.

Pins the delta tier's two contracts on the paper's full workload
(BERT-large encoder, forward + backward) after the canonical "same model,
new sequence length" perturbation (512 -> 513):

* resolving every operator through :func:`delta_payload_from_store`
  (re-timing the stored structural skeleton at the new sizes) is at least
  5x faster than the cold :func:`compute_payload` path that enumerates the
  perturbed problem from scratch, measured in freshly *spawned*
  interpreters — the tier exists for exactly the process that tweaked one
  dimension and starts with an empty L1 memo and cold structural caches;
* delta results are **bit-identical** to the cold ones, which are
  themselves pinned against ``sweep_op_reference`` by
  ``benchmarks/test_store_speedup.py`` / ``test_engine_speedup.py``.

Persistence is deliberately outside the timed region: both tiers save
their result under the exact digest afterwards, so the save cost is a
wash — what the benchmark isolates is the enumeration work the structural
skeleton makes redundant.
"""

from __future__ import annotations

import hashlib
import multiprocessing as mp
import time
from concurrent.futures import ProcessPoolExecutor

import pytest

# Deselected from tier-1: the nightly benchmark job is the sole runner —
# each arm below is a full encoder payload pass in a spawned interpreter.
pytestmark = pytest.mark.slow

#: Wide sweeps are where the tier pays: the cold arm's enumeration +
#: sampling work grows with ``cap`` while the (vectorized) structural
#: re-timing stays flat, so this is a nightly-scale sweep, not tier-1's.
CAP = 4000
SEED = 0x5EED
BASE_SEQ = 512
PERTURBED_SEQ = 513


def _fingerprint(sweeps) -> str:
    """Exact content hash of a sweep set: sorted totals + winning configs."""
    import numpy as np

    h = hashlib.sha256()
    for name in sorted(sweeps):
        s = sweeps[name]
        h.update(name.encode())
        h.update(np.asarray(s.times_us(), dtype=np.float64).tobytes())
        h.update(s.best.config.key().encode())
    return h.hexdigest()


def _setup(seq: int):
    """(ops, env, gpu) for the encoder graph at one sequence length."""
    from repro.hardware.cost_model import CostModel
    from repro.ir.dims import bert_large_dims
    from repro.transformer.graph_builder import build_encoder_graph

    graph = build_encoder_graph(qkv_fusion="qkv", include_backward=True)
    ops = [op for op in graph.ops if not op.is_view]
    return ops, bert_large_dims(seq=seq), CostModel().gpu


def _warm_store(store_dir: str) -> int:
    """Populate the store with every base-problem sweep; spawned child."""
    from repro.engine import SweepStore, compute_payload, sweep_digest

    store = SweepStore(store_dir)
    ops, env, gpu = _setup(BASE_SEQ)
    for op in ops:
        digest = sweep_digest(op, env, gpu, cap=CAP, seed=SEED)
        if digest not in store:
            store.save(digest, compute_payload(op, env, gpu, cap=CAP, seed=SEED))
    return store.stats()["saves"]


def _timed_cold(seq: int):
    """Cold arm: per-op payload computation from scratch; spawned child."""
    from repro.engine import compute_payload, sweep_from_payload

    ops, env, gpu = _setup(seq)
    t0 = time.perf_counter()
    payloads = [compute_payload(op, env, gpu, cap=CAP, seed=SEED) for op in ops]
    elapsed = time.perf_counter() - t0
    sweeps = {o.name: sweep_from_payload(o, p) for o, p in zip(ops, payloads)}
    return elapsed, _fingerprint(sweeps)


def _timed_delta(store_dir: str, seq: int):
    """Delta arm: per-op structural re-sweep from the store; spawned child."""
    from repro.engine import SweepStore, delta_payload_from_store, sweep_from_payload

    store = SweepStore(store_dir)
    ops, env, gpu = _setup(seq)
    t0 = time.perf_counter()
    payloads = [
        delta_payload_from_store(op, env, gpu, cap=CAP, seed=SEED, store=store)
        for op in ops
    ]
    elapsed = time.perf_counter() - t0
    assert all(p is not None for p in payloads)  # every op found its twin
    assert store.stats()["delta_hits"] == len(ops)
    sweeps = {o.name: sweep_from_payload(o, p) for o, p in zip(ops, payloads)}
    return elapsed, _fingerprint(sweeps)


def _spawn(fn, *args):
    """Execute one arm in a brand-new (spawned) interpreter."""
    ctx = mp.get_context("spawn")
    with ProcessPoolExecutor(max_workers=1, mp_context=ctx) as pool:
        return pool.submit(fn, *args).result()


def test_delta_resweep_speedup_after_seq_perturbation(benchmark, tmp_path):
    """>= 5x: delta (structural-twin) vs cold payloads after seq 512 -> 513."""
    store_dir = str(tmp_path / "store")
    saves = _spawn(_warm_store, store_dir)
    assert saves > 0

    # Interleaved rounds, best-of per arm: both legs are sub-second in
    # absolute terms, so a single GC pause or scheduler hiccup in either
    # would otherwise dominate the ratio.
    def run_round():
        run_round.runs.append(
            (
                _spawn(_timed_cold, PERTURBED_SEQ),
                _spawn(_timed_delta, store_dir, PERTURBED_SEQ),
            )
        )
        return run_round.runs[-1]

    run_round.runs = []
    benchmark.pedantic(run_round, rounds=3, iterations=1)
    t_cold, fp_cold = min((c for c, _ in run_round.runs), key=lambda r: r[0])
    t_delta, fp_delta = min((d for _, d in run_round.runs), key=lambda r: r[0])

    speedup = t_cold / t_delta
    print(
        f"\n=== Delta re-sweep speedup (BERT-large encoder fwd+bwd, "
        f"cap={CAP}, seq {BASE_SEQ} -> {PERTURBED_SEQ}, fresh process per "
        f"arm, best of {len(run_round.runs)}) ===\n"
        f"  cold  (enumerate + evaluate): {t_cold * 1e3:7.1f} ms\n"
        f"  delta (structural re-sweep):  {t_delta * 1e3:7.1f} ms  "
        f"({speedup:.1f}x)"
    )
    assert fp_delta == fp_cold  # bit-identical to the cold perturbed sweep
    assert speedup >= 5.0, (
        f"delta re-sweep only {speedup:.1f}x faster than the cold path "
        f"(cold {t_cold * 1e3:.1f} ms, delta {t_delta * 1e3:.1f} ms)"
    )
