"""Figure 6 — the configuration-selection graph and its SSSP solve.

The paper's Fig. 6 shows the layered layout-node graph for a slice of the
network (QKV-fused + AIB) and notes SSSP solves the whole BERT graph in
seconds.  The benchmark builds the full encoder configuration graph,
cross-checks our DAG-relaxation SSSP against networkx Dijkstra, and bounds
the solve time.
"""

import time

from repro.analysis.figures import fig6_config_graph_stats


def test_fig6_config_graph(benchmark, env, cost):
    t0 = time.perf_counter()
    stats = benchmark.pedantic(
        lambda: fig6_config_graph_stats(env, cost, cap=400), rounds=1, iterations=1
    )
    elapsed = time.perf_counter() - t0
    print("\n=== Fig. 6 (reproduced): configuration-selection graph ===")
    for k, v in stats.items():
        print(f"  {k:<24s} {v:,.1f}")
    print(f"  build+solve wall time   {elapsed:.1f} s")

    # The graph is substantial but SSSP is fast ("seconds for BERT").
    assert stats["nodes"] > 100
    assert stats["edges"] > 500
    assert stats["chain_ops"] == 11  # the fused encoder forward chain
    assert elapsed < 120

    # Our DAG shortest path agrees with networkx Dijkstra exactly.
    assert abs(stats["sssp_cost_us"] - stats["sssp_cost_networkx_us"]) < 1e-6

    # The path visits source, one arrival+departure pair per boundary, target.
    assert stats["path_len"] >= stats["chain_ops"] + 2
