"""End-to-end textual claims of Secs. I and VI-C.

* ~22.91% data-movement reduction from fusion;
* global configuration within ~4% of the per-operator optimum (we accept a
  wider band; see EXPERIMENTS.md);
* the B=96 / L=128 re-tuned configuration (paper: PT 18.43 ms,
  DS 16.19 ms, Ours 16.22 ms — Ours matches DS there);
* the $85k / $3.6M + 120 MWh savings arithmetic.
"""

import pytest

from repro.analysis.savings import GPT3_COST_USD, GPT3_ENERGY_MWH, estimate_savings
from repro.analysis.tables import data_movement_reduction_report, table5
from repro.autotuner.tuner import sweep_graph
from repro.configsel.selector import select_configurations
from repro.fusion.encoder_kernels import apply_paper_fusion
from repro.ir.dims import bert_alternate_dims
from repro.transformer.graph_builder import build_encoder_graph


def test_data_movement_reduction(benchmark, env):
    report = benchmark.pedantic(
        lambda: data_movement_reduction_report(env), rounds=1, iterations=1
    )
    print(
        f"\ndata movement: {report['unfused_mwords']:.0f} Mw -> "
        f"{report['fused_mwords']:.0f} Mw "
        f"({100 * report['reduction_fraction']:.2f}% reduction; paper 22.91%)"
    )
    assert 0.15 < report["reduction_fraction"] < 0.30


def test_selection_near_per_op_optimum(benchmark, env, cost):
    graph = apply_paper_fusion(build_encoder_graph(qkv_fusion="qkv"), env)
    sweeps = sweep_graph(graph, env, cost, cap=400)

    def run():
        sel = select_configurations(graph, env, cost, sweeps=sweeps, cap=400)
        best_sum = sum(s.best.total_us for s in sweeps.values())
        return sel.total_us / best_sum

    ratio = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nglobal selection vs per-op best: {ratio:.3f}x (paper: <= 1.04)")
    assert ratio < 1.15


def test_alternate_configuration(benchmark, cost):
    """Sec. VI-C: B=96, L=128 — DeepSpeed and Ours nearly tie there."""
    env2 = bert_alternate_dims()
    data = benchmark.pedantic(lambda: table5(env2, cost, cap=300), rounds=1, iterations=1)
    totals = {f: d["total_ms"] for f, d in data.items()}
    print("\n=== B=96, L=128 (paper: PT 18.43, DS 16.19, Ours 16.22 ms) ===")
    for f, t in totals.items():
        print(f"  {f:<10s} {t:6.2f} ms")
    # Ours still beats PyTorch clearly ...
    assert totals["PyTorch"] / totals["Ours"] > 1.08
    # ... and the Ours-vs-DeepSpeed gap narrows to a rough tie (within 12%).
    assert totals["DeepSpeed"] / totals["Ours"] == pytest.approx(1.0, abs=0.12)
    # Magnitudes: a larger-batch iteration costs in the paper's ~13-22 ms range.
    assert 10.0 < totals["Ours"] < 25.0


def test_cost_savings(benchmark):
    est = benchmark.pedantic(
        lambda: estimate_savings(1.30, GPT3_COST_USD, baseline_energy_mwh=GPT3_ENERGY_MWH),
        rounds=1,
        iterations=1,
    )
    print(
        f"\nGPT-3 at 1.30x: save ${est.saved_usd / 1e6:.2f}M and "
        f"{est.saved_mwh:.0f} MWh (paper: $3.6M, >120 MWh)"
    )
    assert est.saved_usd > 2.0e6
    assert est.saved_mwh > 80.0
