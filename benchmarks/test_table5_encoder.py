"""Table V — full BERT encoder layer performance.

Paper (ms): forward PT 3.45, TF+XLA 3.2, DS 2.8, Ours 2.63;
backward 5.69, 5.2, 4.8, 4.38.  Headline factors: 1.30x over PyTorch,
1.20x over TF+XLA, 1.08x over DeepSpeed.
"""

import pytest

from repro.analysis.report import format_framework_table
from repro.analysis.tables import table5


def test_table5_encoder(benchmark, env, cost):
    data = benchmark.pedantic(lambda: table5(env, cost, cap=400), rounds=1, iterations=1)
    print("\n=== Table V (reproduced; paper fwd 3.45/3.2/2.8/2.63, bwd 5.69/5.2/4.8/4.38) ===")
    print(format_framework_table(data))

    totals = {f: d["total_ms"] for f, d in data.items()}
    # Ranking: Ours < DeepSpeed < TF+XLA < PyTorch.
    assert totals["Ours"] < totals["DeepSpeed"] < totals["TF+XLA"] < totals["PyTorch"]

    # Headline speedups within a generous band of the paper's factors.
    pt = totals["PyTorch"] / totals["Ours"]
    tf = totals["TF+XLA"] / totals["Ours"]
    ds = totals["DeepSpeed"] / totals["Ours"]
    print(f"speedups vs Ours: PT {pt:.2f}x (paper 1.30), TF+XLA {tf:.2f}x (1.20), DS {ds:.2f}x (1.08)")
    assert pt == pytest.approx(1.30, abs=0.15)
    assert tf == pytest.approx(1.20, abs=0.12)
    assert ds == pytest.approx(1.08, abs=0.08)

    # Absolute magnitudes near the paper's.
    assert data["Ours"]["forward_ms"] == pytest.approx(2.63, rel=0.15)
    assert data["Ours"]["backward_ms"] == pytest.approx(4.38, rel=0.15)
