"""Table IV — multi-head attention performance for BERT.

Paper (ms): forward TF+XLA 1.60, PT 1.90, cuDNN 131, Ours 1.25;
backward 2.25, 2.77, 652, 1.86.  Required shape: Ours fastest among the
frameworks; cuDNN two orders of magnitude slower (softmax-launch storm).
"""

from repro.analysis.report import format_framework_table
from repro.analysis.tables import table4


def test_table4_mha(benchmark, env, cost):
    data = benchmark.pedantic(lambda: table4(env, cost, cap=400), rounds=1, iterations=1)
    print("\n=== Table IV (reproduced; paper fwd 1.60/1.90/131/1.25, bwd 2.25/2.77/652/1.86) ===")
    print(format_framework_table(data))

    ours = data["Ours"]
    for name in ("PyTorch", "TF+XLA", "DeepSpeed"):
        assert ours["forward_ms"] < data[name]["forward_ms"] * 1.05
    assert ours["forward_ms"] < data["PyTorch"]["forward_ms"]
    assert ours["backward_ms"] < data["PyTorch"]["backward_ms"]

    # cuDNN's experimental MHA is orders of magnitude slower (Sec. VI-B).
    assert data["cuDNN"]["forward_ms"] > 50 * data["PyTorch"]["forward_ms"]
    assert data["cuDNN"]["backward_ms"] > 50 * data["PyTorch"]["backward_ms"]

    # Absolute magnitudes in the paper's range (1-3 ms per pass).
    assert 0.8 < ours["forward_ms"] < 2.0
    assert 1.2 < ours["backward_ms"] < 3.5
