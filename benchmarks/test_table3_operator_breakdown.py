"""Table III — per-operator flop / IO / time / MUE breakdown, PyTorch vs Ours.

The full table: every encoder operator with its required Gflop (binary),
input/output megawords, PyTorch and Ours kernel times, achieved percent of
peak, MUE, and the per-row speedup with the fused-kernel grouping.

Shape checks: flop totals match the paper's 312.6 binary Gflop; the vast
majority of fused rows speed up; contractions land in the paper's %-peak
band; MUE is high for fused memory-bound kernels and low for compute-bound
GEMMs.
"""

import pytest

from repro.analysis.report import format_table3
from repro.analysis.tables import GFLOP, table3
from repro.ir.operator import OpClass


def test_table3_operator_breakdown(benchmark, env, cost):
    rows, totals = benchmark.pedantic(
        lambda: table3(env, cost, cap=400), rounds=1, iterations=1
    )
    print("\n=== Table III (reproduced) ===")
    print(format_table3(rows, totals))

    # Total required flop: paper reports 312.633 binary Gflop (fwd+bwd).
    total_gflop = sum(r.gflop for r in rows)
    assert total_gflop == pytest.approx(312.6, rel=0.02)

    # The stacked Q/K/V projection row matches the paper's counts exactly.
    qkv = next(r for r in rows if r.label == "Q, K, V")
    assert qkv.gflop == pytest.approx(24.0, abs=0.1)
    assert qkv.input_mwords == pytest.approx(7.3, abs=0.2)
    assert qkv.output_mwords == pytest.approx(12.6, abs=0.2)

    # Fused memory-bound kernels beat PyTorch's unfused sequences.
    fused_rows = [r for r in rows if len(r.label) > 12 and r.marker != "△"]
    sped_up = [r for r in fused_rows if r.speedup > 1.0]
    assert len(sped_up) >= 0.7 * len(fused_rows)

    # Contractions: tuned kernels reach the paper's 20-70% of TC peak band.
    for r in rows:
        if r.marker == "△":
            assert 5.0 < r.ours_percent_peak < 80.0

    # Class-level speedups: every class improves overall (paper: 1.12 / 1.29 / 1.49).
    for cls in OpClass:
        assert totals[cls]["speedup"] > 1.0, cls

    # End-to-end: PT total vs Ours total gives the Table III bottom line
    # (paper: 8110 us vs 6739 us, 1.20x at the kernel level).
    pt_total = sum(t["pt_us"] for t in totals.values())
    ours_total = sum(t["ours_us"] for t in totals.values())
    assert 1.1 < pt_total / ours_total < 1.6
