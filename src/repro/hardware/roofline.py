"""Roofline analysis: operational intensity, ridge points, bound prediction.

The paper's memory-bound diagnosis is a roofline argument; this module makes
it explicit and queryable: for any operator, compute its operational
intensity (flop per byte), place it against a GPU's ridge point, and
predict — *before any measurement* — whether it is compute or memory bound.
The paper uses exactly this pre-measurement reasoning: "This insight aids in
analyzing the bottlenecks of general DNNs and automated tuning of operators,
prior to measuring their performance" (Sec. IV-B).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.dims import DimEnv
from repro.ir.graph import DataflowGraph
from repro.ir.operator import OpClass, OpSpec

from .spec import GPUSpec, V100

__all__ = ["RooflinePoint", "ridge_intensity", "op_roofline", "graph_roofline"]


@dataclass(frozen=True)
class RooflinePoint:
    """One operator placed on the roofline."""

    op_name: str
    op_class: OpClass
    intensity: float  # flop per byte moved
    ridge: float  # the GPU's ridge intensity for this op's peak
    #: attainable flop/s at this intensity (the roofline itself)
    attainable_flops: float

    @property
    def memory_bound(self) -> bool:
        return self.intensity < self.ridge

    @property
    def headroom(self) -> float:
        """How far under / over the ridge the op sits (ratio)."""
        return self.intensity / self.ridge


def ridge_intensity(gpu: GPUSpec = V100, *, tensor_cores: bool = True) -> float:
    """The ridge point: flop/byte where compute and bandwidth peaks meet."""
    return gpu.peak_flops(tensor_cores=tensor_cores) / gpu.mem_bandwidth


def op_roofline(op: OpSpec, env: DimEnv, gpu: GPUSpec = V100) -> RooflinePoint:
    """Place one operator on its class-appropriate roofline."""
    nbytes = op.io_bytes(env)
    flop = op.flops(env)
    tc = op.op_class is OpClass.TENSOR_CONTRACTION
    ridge = ridge_intensity(gpu, tensor_cores=tc)
    intensity = flop / nbytes if nbytes else float("inf")
    peak = gpu.peak_flops(tensor_cores=tc)
    attainable = min(peak, intensity * gpu.mem_bandwidth)
    return RooflinePoint(
        op_name=op.name,
        op_class=op.op_class,
        intensity=intensity,
        ridge=ridge,
        attainable_flops=attainable,
    )


def graph_roofline(
    graph: DataflowGraph, env: DimEnv, gpu: GPUSpec = V100
) -> list[RooflinePoint]:
    """Roofline placement for every kernel of a graph.

    For the BERT encoder this reproduces the paper's diagnosis: every
    statistical-normalization and element-wise operator sits left of the
    ridge (memory bound) while the large contractions sit right of it.
    """
    return [
        op_roofline(op, env, gpu) for op in graph.ops if not op.is_view
    ]
