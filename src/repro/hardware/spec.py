"""GPU machine models.

The paper's experiments ran on NVIDIA V100-SXM2-16GB GPUs (Lassen,
Sec. III-D) with a 125 Tflop/s Tensor Core peak and a 31.4 Tflop/s FP16
peak; HBM2 bandwidth on that part is 900 GB/s.  Since no GPU is available to
this reproduction, these specifications parameterize the analytic roofline
cost model that substitutes for hardware measurements (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GPUSpec", "V100", "A100"]


@dataclass(frozen=True)
class GPUSpec:
    """Peak rates and overheads of one GPU model."""

    name: str
    #: Tensor Core half-precision peak, flop/s.
    tensor_core_flops: float
    #: FP16 FMA (non-TC) peak, flop/s.
    fp16_flops: float
    #: FP32 peak, flop/s.
    fp32_flops: float
    #: Main-memory (HBM) bandwidth, bytes/s.
    mem_bandwidth: float
    #: Fixed cost of launching one kernel, microseconds.
    kernel_launch_us: float = 5.0
    #: Threads per warp (warp-allreduce width, Sec. IV-A).
    warp_size: int = 32
    #: Device memory capacity, bytes.
    mem_capacity: int = 16 * 2**30
    #: Streaming multiprocessors; GEMM tile waves quantize to this.
    sm_count: int = 80
    #: GEMM thread-block output tile (rows x cols) used for wave counting.
    gemm_tile: tuple[int, int] = (256, 128)

    def __post_init__(self) -> None:
        if min(self.tensor_core_flops, self.fp16_flops, self.fp32_flops) <= 0:
            raise ValueError("peak flop rates must be positive")
        if self.mem_bandwidth <= 0:
            raise ValueError("memory bandwidth must be positive")
        if self.kernel_launch_us < 0:
            raise ValueError("launch overhead must be non-negative")

    def peak_flops(self, *, tensor_cores: bool, fp32: bool = False) -> float:
        """Peak flop/s for a kernel's execution mode."""
        if fp32:
            return self.fp32_flops
        return self.tensor_core_flops if tensor_cores else self.fp16_flops


#: The paper's evaluation GPU (Sec. III-D).
V100 = GPUSpec(
    name="V100-SXM2-16GB",
    tensor_core_flops=125e12,
    fp16_flops=31.4e12,
    fp32_flops=15.7e12,
    mem_bandwidth=900e9,
    kernel_launch_us=5.0,
    mem_capacity=16 * 2**30,
)

#: A newer part, for "what changes on different hardware" experiments.
A100 = GPUSpec(
    name="A100-SXM4-40GB",
    tensor_core_flops=312e12,
    fp16_flops=78e12,
    fp32_flops=19.5e12,
    mem_bandwidth=1555e9,
    kernel_launch_us=4.0,
    mem_capacity=40 * 2**30,
    sm_count=108,
)
