"""Memory Usage Efficiency (MUE), Sec. III-C.

``MUE = Q/D · B/B̂ · 100`` where

* ``Q``  — the I/O lower bound of the operation (for our operators: every
  external input read once, every external output written once; the fused
  operator's operand list already reflects what must touch DRAM);
* ``D``  — bytes the *implementation* actually moves (an unfused
  implementation of the same logical operation moves more: every interim
  tensor is written and re-read);
* ``B``  — achieved bandwidth (``D`` / runtime), ``B̂`` — peak bandwidth.

An implementation that both performs minimal I/O and saturates DRAM scores
100.  The paper notes 100% is often unattainable for multi-tensor operators
because peak DRAM bandwidth needs a single highly regular stream.
"""

from __future__ import annotations

from repro.ir.dims import DimEnv
from repro.ir.operator import OpSpec

from .spec import GPUSpec, V100

__all__ = ["mue", "op_mue"]


def mue(q_bytes: float, d_bytes: float, time_us: float, gpu: GPUSpec = V100) -> float:
    """MUE score in [0, 100] for an implementation.

    Raises if the implementation claims to move less than the lower bound.
    """
    if q_bytes <= 0 or d_bytes <= 0:
        raise ValueError("byte counts must be positive")
    if time_us <= 0:
        raise ValueError("time must be positive")
    if d_bytes + 1e-9 < q_bytes:
        raise ValueError(f"implementation moves {d_bytes} B < lower bound {q_bytes} B")
    achieved_bw = d_bytes / (time_us * 1e-6)
    score = (q_bytes / d_bytes) * (achieved_bw / gpu.mem_bandwidth) * 100.0
    return min(100.0, score)


def op_mue(
    op: OpSpec,
    time_us: float,
    env: DimEnv,
    gpu: GPUSpec = V100,
    *,
    implementation_bytes: float | None = None,
) -> float:
    """MUE of an operator executed in ``time_us``.

    ``implementation_bytes`` defaults to the operator's own I/O volume
    (i.e. a fused single-pass implementation with ``D = Q``); pass the summed
    kernel bytes when scoring a multi-kernel (unfused) implementation.
    """
    q = op.io_bytes(env)
    d = implementation_bytes if implementation_bytes is not None else q
    return mue(q, d, time_us, gpu)
