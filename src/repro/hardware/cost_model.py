"""Roofline cost model: the hardware-measurement substitute.

Predicted kernel time is

    ``t = launch_overhead + max(flop / (peak_flops · eff_c),
                                bytes / (peak_bw · eff_m))``

with efficiencies from :mod:`repro.hardware.efficiency`.  The max() is the
roofline: a kernel is *memory bound* when the bandwidth term dominates and
*compute bound* otherwise — exactly the dichotomy the paper's MUE-vs-%peak
analysis draws (Sec. IV-B: "a kernel is memory bound if its MUE is larger
than the achieved peak flop/s").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.dims import DimEnv
from repro.ir.operator import OpClass, OpSpec
from repro.ir.tensor import TensorSpec
from repro.layouts.config import OpConfig
from repro.layouts.configspace import default_config
from repro.layouts.layout import transpose_cost_bytes

from .efficiency import Efficiency, op_efficiency
from .params import DEFAULT_VERSION, EfficiencyParams, active_params
from .spec import GPUSpec, V100

__all__ = ["KernelTime", "CostModel", "COST_MODEL_VERSION"]

#: Version tag of the analytic cost model (roofline formula, efficiency
#: constants, jitter keying, enumeration semantics).  Persisted sweep
#: artifacts and the process-level sweep memo embed the *served* version
#: (:func:`repro.hardware.params.active_cost_model_version`); a mismatch
#: means cached numbers were produced by a different model and must be
#: re-measured, not silently reused.
#:
#: **Bump rule (parameterized models):** this constant is the version of
#: the *default* :class:`~repro.hardware.params.EfficiencyParams` model.
#: Increment it whenever a change alters any predicted kernel time under
#: the default params — efficiency formulas in
#: :mod:`repro.hardware.efficiency`, the default constants in
#: :mod:`repro.hardware.params`, the roofline composition in this module,
#: GPU spec defaults, or the configuration enumeration (ordering changes
#: that re-rank equal-time configs count too).  Pure refactors that keep
#: every sweep bit-identical (the engine/reference contract) must NOT bump
#: it.  *Fitted* parameter sets never bump this constant: an online
#: calibration **promotion is the bump** — the rollout manager serves the
#: candidate under its derived tag (``"1-cal-<digest12>"``), which flows
#: through every digest and wire key exactly as an integer bump would,
#: and rolling back simply restores the prior served version.  Default
#: params never mint a tag and never bump.
COST_MODEL_VERSION = DEFAULT_VERSION


@dataclass(frozen=True)
class KernelTime:
    """Predicted timing decomposition of one kernel launch."""

    compute_us: float
    memory_us: float
    launch_us: float

    @property
    def total_us(self) -> float:
        return self.launch_us + max(self.compute_us, self.memory_us)

    @property
    def bound(self) -> str:
        """Which roofline term dominates: "compute", "memory", or "launch"."""
        body = max(self.compute_us, self.memory_us)
        if self.launch_us > body:
            return "launch"
        return "compute" if self.compute_us >= self.memory_us else "memory"

    def __add__(self, other: "KernelTime") -> "KernelTime":
        """Sequential composition (sums all components; totals add)."""
        return KernelTime(
            compute_us=self.compute_us + other.compute_us,
            memory_us=self.memory_us + other.memory_us,
            launch_us=self.launch_us + other.launch_us,
        )


class CostModel:
    """Predicts kernel times for operators under configurations on a GPU.

    ``params`` pins the efficiency constants for this instance (the canary
    dual-scoring path builds one per candidate); the default ``None``
    resolves the process-active model *at call time*, so long-lived default
    instances — the daemon's, the CLI's — track an online-calibration
    promotion without being rebuilt.
    """

    def __init__(
        self, gpu: GPUSpec = V100, params: EfficiencyParams | None = None
    ) -> None:
        self.gpu = gpu
        self._params = params

    @property
    def params(self) -> EfficiencyParams:
        """The efficiency constants this model predicts under (resolved)."""
        return self._params if self._params is not None else active_params()

    # -- core prediction -----------------------------------------------------
    def time_op(
        self,
        op: OpSpec,
        config: OpConfig | None = None,
        env: DimEnv | None = None,
        *,
        extra_overhead_us: float = 0.0,
    ) -> KernelTime | None:
        """Predicted time of one operator as a single kernel.

        Returns ``None`` for contraction configurations that are not
        GEMM-mappable (infeasible points of the sweep).
        """
        if env is None:
            raise ValueError("env is required")
        if config is None:
            config = default_config(op)
        eff = op_efficiency(op, config, env, self.gpu, self._params)
        if eff is None:
            return None
        return self._time_from_eff(op.flops(env), op.io_bytes(env), eff, op.op_class,
                                   extra_overhead_us)

    def _time_from_eff(
        self,
        flop: float,
        nbytes: float,
        eff: Efficiency,
        op_class: OpClass,
        extra_overhead_us: float = 0.0,
    ) -> KernelTime:
        peak = self.gpu.peak_flops(tensor_cores=eff.tensor_cores)
        compute_us = 1e6 * flop / (peak * eff.compute) if flop > 0 else 0.0
        memory_us = 1e6 * nbytes / (self.gpu.mem_bandwidth * eff.memory)
        return KernelTime(
            compute_us=compute_us,
            memory_us=memory_us,
            launch_us=self.gpu.kernel_launch_us + extra_overhead_us,
        )

    # -- auxiliary kernels ------------------------------------------------------
    def time_transpose(self, spec: TensorSpec, env: DimEnv) -> KernelTime:
        """An out-of-place layout change: a well-coalesced copy kernel.

        Used by the configuration-selection graph, where changing layouts
        between operators costs a transpose (Sec. VI: "the benefit of running
        two operators in different layouts may outweigh the overhead of
        transposing data").
        """
        nbytes = transpose_cost_bytes(spec, env)
        # Dedicated transpose kernels tile through shared memory and reach a
        # high fraction of peak bandwidth.
        eff = Efficiency(compute=0.4, memory=0.80, tensor_cores=False)
        return self._time_from_eff(0.0, nbytes, eff, OpClass.ELEMENTWISE)

    def achieved_bandwidth(self, nbytes: float, time_us: float) -> float:
        """Bytes/s realized by a kernel that moved ``nbytes`` in ``time_us``."""
        if time_us <= 0:
            raise ValueError("time must be positive")
        return nbytes / (time_us * 1e-6)

    def achieved_flops(self, flop: float, time_us: float) -> float:
        if time_us <= 0:
            raise ValueError("time must be positive")
        return flop / (time_us * 1e-6)

    def percent_of_peak(self, op: OpSpec, flop: float, time_us: float,
                        *, tensor_cores: bool | None = None) -> float:
        """Percent of the class-appropriate peak (Table III's "% peak").

        The paper uses the tensor-core peak for contractions and the FP16
        peak for everything else (Sec. III-D).
        """
        if tensor_cores is None:
            tensor_cores = op.op_class is OpClass.TENSOR_CONTRACTION
        peak = self.gpu.peak_flops(tensor_cores=tensor_cores)
        return 100.0 * self.achieved_flops(flop, time_us) / peak
