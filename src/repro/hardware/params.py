"""Parameterized efficiency constants and the process-active cost model.

The analytic efficiency model of :mod:`repro.hardware.efficiency` was born
with its calibrated constants hard-coded at module scope.  Online
calibration (:mod:`repro.calibrate`) needs to *re-fit* those constants
from measured feedback and roll the result out safely, so they live here
as one frozen, hashable :class:`EfficiencyParams` value instead.

Two invariants keep the rest of the system honest:

* :data:`DEFAULT_PARAMS` is bit-identical to the historical constants.
  Under it every sweep reproduces ``sweep_op_reference`` exactly and the
  served cost-model version stays :data:`DEFAULT_VERSION` — the engine /
  reference property suites pin this without modification.
* Any *other* params value serves under a **derived version tag**
  (``"1-cal-<digest12>"``), never under the default integer version.
  Every cache digest, memo key and wire key embeds the served version, so
  installing a candidate atomically orphans all default-model artifacts
  through the existing ``CacheMismatch`` path — and rolling back is
  metadata-only, because the old version's entries were never touched.

The process-active model is a single atomically-swapped reference:
readers (:func:`active_params`, :func:`active_cost_model_version`) never
take the lock, so the hot sweep path pays one attribute load.  Only
:func:`install_params` — the rollout manager's commit step — serializes.
"""

from __future__ import annotations

import hashlib
import json
import math
import threading
from dataclasses import dataclass, fields

__all__ = [
    "DEFAULT_PARAMS",
    "DEFAULT_VERSION",
    "EfficiencyParams",
    "ParamsError",
    "active_cost_model_version",
    "active_params",
    "candidate_version",
    "install_params",
    "params_digest",
    "params_from_wire",
    "reset_active_params",
]

#: The cost-model version served by :data:`DEFAULT_PARAMS`.  This is the
#: value ``repro.hardware.cost_model.COST_MODEL_VERSION`` re-exports; the
#: two must stay one constant.
DEFAULT_VERSION = 1


class ParamsError(ValueError):
    """A malformed or out-of-range params wire form."""


@dataclass(frozen=True)
class EfficiencyParams:
    """Every calibrated constant of the analytic efficiency model.

    Frozen and hashable: a params value participates in ``lru_cache`` keys
    inside :mod:`repro.hardware.efficiency`, so two models never share a
    cached factor.  Field names mirror the historical ``_UPPER_CASE``
    constants; the semantics are documented there.
    """

    # -- tensor contractions (simulated cuBLAS) ------------------------------
    gemm_tc_base: float = 0.72
    gemm_fp16_base: float = 0.80
    gemm_tc_sat_ref: float = 256.0
    gemm_tc_sat_exp: float = 0.9
    gemm_fp16_sat_exp: float = 0.2
    gemm_mem_eff: float = 0.70
    layout_factor_range: tuple[float, float] = (0.80, 1.0)
    algo_factor_range: tuple[float, float] = (0.84, 1.0)

    # -- memory-bound kernels ------------------------------------------------
    vectorized_eff: float = 0.92
    coalesced_eff: float = 0.55
    strided_coef: float = 0.5
    strided_floor: float = 0.015
    register_bonus: float = 1.08
    narrow_warp_penalty: float = 0.7
    kernel_compute_eff: float = 0.40
    jitter: float = 0.10

    def to_wire(self) -> dict:
        """JSON-able form (tuples become lists; canonical for digesting)."""
        out: dict = {}
        for f in fields(self):
            value = getattr(self, f.name)
            out[f.name] = list(value) if isinstance(value, tuple) else value
        return out


#: The historical hand-calibrated model: serves version :data:`DEFAULT_VERSION`.
DEFAULT_PARAMS = EfficiencyParams()

_FIELD_NAMES = tuple(f.name for f in fields(EfficiencyParams))
_RANGE_FIELDS = ("layout_factor_range", "algo_factor_range")
#: Fields that feed an ``Efficiency`` value directly or through products of
#: sub-unit factors: must stay in (0, 1] or the model raises downstream.
_UNIT_FIELDS = (
    "gemm_tc_base",
    "gemm_fp16_base",
    "gemm_mem_eff",
    "vectorized_eff",
    "coalesced_eff",
    "kernel_compute_eff",
)


def params_from_wire(wire: dict, where: str = "params") -> EfficiencyParams:
    """Rebuild and validate params; raises :class:`ParamsError` when bad.

    Strict on purpose: a fitted candidate travels through journals, the
    rollout state file and the wire, and a NaN or out-of-range constant
    must be rejected at the boundary, not crash a sweep later.
    """
    if not isinstance(wire, dict):
        raise ParamsError(f"{where} must be a JSON object")
    unknown = sorted(set(wire) - set(_FIELD_NAMES))
    if unknown:
        raise ParamsError(f"{where} has unknown fields {unknown}")
    kwargs: dict = {}
    for name in _FIELD_NAMES:
        if name not in wire:
            continue
        value = wire[name]
        if name in _RANGE_FIELDS:
            if (
                not isinstance(value, (list, tuple))
                or len(value) != 2
                or not all(isinstance(v, (int, float)) for v in value)
            ):
                raise ParamsError(f"{where}.{name} must be a [lo, hi] pair")
            lo, hi = float(value[0]), float(value[1])
            if not (math.isfinite(lo) and math.isfinite(hi)) or not 0.0 < lo <= hi <= 1.0:
                raise ParamsError(
                    f"{where}.{name} must satisfy 0 < lo <= hi <= 1, got {value!r}"
                )
            kwargs[name] = (lo, hi)
            continue
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ParamsError(f"{where}.{name} must be a number, got {value!r}")
        value = float(value)
        if not math.isfinite(value) or value <= 0.0:
            raise ParamsError(
                f"{where}.{name} must be a positive finite number, got {value!r}"
            )
        if name in _UNIT_FIELDS and value > 1.0:
            raise ParamsError(f"{where}.{name} must be <= 1.0, got {value!r}")
        kwargs[name] = value
    return EfficiencyParams(**kwargs)


def params_digest(params: EfficiencyParams) -> str:
    """SHA-256 over the canonical JSON wire form: the params identity."""
    blob = json.dumps(
        params.to_wire(), sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


def candidate_version(params: EfficiencyParams) -> str:
    """The version tag a non-default params value serves under.

    Derived, not allocated: the same fitted constants always produce the
    same tag, so re-proposing an identical candidate is idempotent across
    daemons and restarts.  :data:`DEFAULT_PARAMS` maps to the plain integer
    :data:`DEFAULT_VERSION` — default params never mint a tag.
    """
    if params == DEFAULT_PARAMS:
        return DEFAULT_VERSION  # type: ignore[return-value]
    return f"{DEFAULT_VERSION}-cal-{params_digest(params)[:12]}"


# ---------------------------------------------------------------------------
# The process-active model
# ---------------------------------------------------------------------------

_lock = threading.Lock()
#: ``(params, served version)`` — swapped atomically, read without the lock.
_active: tuple[EfficiencyParams, int | str] = (DEFAULT_PARAMS, DEFAULT_VERSION)


def active_params() -> EfficiencyParams:
    """The params every efficiency evaluation resolves at call time."""
    return _active[0]


def active_cost_model_version() -> int | str:
    """The *served* cost-model version.

    The integer :data:`DEFAULT_VERSION` under default params; a derived
    string tag (``"1-cal-<hex12>"``) after a candidate promotion.  Every
    memo key, store digest, wire key and registry entry embeds this value,
    which is what makes promotion an atomic whole-cache invalidation.
    """
    return _active[1]


def install_params(
    params: EfficiencyParams, version: int | str | None = None
) -> int | str:
    """Swap the process-active model; returns the served version.

    This is the rollout manager's last step, *after* its journal and state
    file are durable — the in-memory swap must never run ahead of the
    on-disk commit point, or a crash right here would recover to a model
    the process never admitted to serving.
    """
    global _active
    if version is None:
        version = candidate_version(params)
    if params == DEFAULT_PARAMS:
        version = DEFAULT_VERSION
    with _lock:
        _active = (params, version)
    return version


def reset_active_params() -> None:
    """Back to the default model (tests and daemon shutdown hygiene)."""
    global _active
    with _lock:
        _active = (DEFAULT_PARAMS, DEFAULT_VERSION)
