"""Simulated GPU substrate: machine specs, roofline cost model, MUE metric.

This package substitutes for the paper's V100 testbed (see DESIGN.md,
"Substitutions"): all "measurements" of kernel time in the reproduction are
deterministic analytic predictions from these models.
"""

from .cost_model import CostModel, KernelTime
from .efficiency import (
    Efficiency,
    VECTOR_WIDTH_FP16,
    best_algorithm,
    contraction_efficiency,
    heuristic_algorithm,
    kernel_efficiency,
    op_efficiency,
)
from .mue import mue, op_mue
from .roofline import RooflinePoint, graph_roofline, op_roofline, ridge_intensity
from .spec import A100, GPUSpec, V100

__all__ = [
    "A100",
    "RooflinePoint",
    "graph_roofline",
    "op_roofline",
    "ridge_intensity",
    "CostModel",
    "Efficiency",
    "GPUSpec",
    "KernelTime",
    "V100",
    "VECTOR_WIDTH_FP16",
    "best_algorithm",
    "contraction_efficiency",
    "heuristic_algorithm",
    "kernel_efficiency",
    "mue",
    "op_efficiency",
    "op_mue",
]
