"""Layout-dependent efficiency model: the simulated-kernel substitute.

The paper measures real CUDA kernels whose throughput depends on data layout
(vectorized 128-bit accesses, coalescing, warp-reduction dimension, GEMM
algorithm, tensor-core saturation — Secs. IV-A, V).  This module replaces
those measurements with a *deterministic analytic model* mapping
(operator, configuration) to a fraction of peak compute / peak bandwidth.

Model structure (constants calibrated against Table III / Figs. 4–5; see
EXPERIMENTS.md for the calibration audit):

Tensor contractions (simulated cuBLAS):
  ``eff = BASE · sat(M)·sat(N)·sat(K) · layout_factor · algo_factor``
  where ``sat(d) = min(1, d/256)^0.9`` for tensor cores (small GEMM dims
  leave tensor cores underutilized — the paper's QKT/Gamma observation) and
  a flatter ``^0.2`` for the regular FP16 pipeline.  ``layout_factor`` and
  ``algo_factor`` are deterministic per-(shape, layout, algorithm) values in
  [0.80, 1.0] / [0.84, 1.0]; the library "heuristic" resolves to a fixed
  algorithm per shape that is generally good but up to ~16% off best
  (paper: up to 14.24% worse, Sec. V-A).

Memory-bound kernels (statistical normalization / element-wise / fused):
  per-operand efficiency from access-pattern features, weighted by operand
  bytes: a 128-bit-vectorizable innermost access achieves 0.92 of peak;
  coalesced scalar access 0.55; accesses strided by ``s`` decay like
  ``0.5/sqrt(s)`` (the catastrophic long tails of Fig. 5).  Matching the
  warp-reduce and vector dimensions adds the paper's register-pressure bonus.

The constants themselves live in :class:`repro.hardware.params
.EfficiencyParams`; every public entry point takes an optional ``params``
and resolves ``None`` to the process-active model *at call time*, so an
online-calibration promotion takes effect without touching callers.  The
internal ``lru_cache``s key on the resolved params value — two models
never share a cached factor.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.ir.dims import DimEnv
from repro.ir.operator import OpClass, OpSpec
from repro.layouts.config import HEURISTIC_ALGORITHM, NUM_GEMM_ALGORITHMS, OpConfig
from repro.layouts.gemm_mapping import GemmShape, map_to_gemm
from repro.layouts.layout import Layout
from repro.ops.einsum_utils import parse_einsum

from .params import EfficiencyParams, active_params
from .spec import GPUSpec, V100

__all__ = [
    "Efficiency",
    "contraction_efficiency",
    "contraction_layout_units",
    "contraction_shared_factors",
    "contraction_triple_factors",
    "kernel_efficiency",
    "operand_access_eff",
    "op_efficiency",
    "heuristic_algorithm",
    "best_algorithm",
    "VECTOR_WIDTH_FP16",
]

#: 128-bit vector loads hold 8 fp16 words.
VECTOR_WIDTH_FP16 = 8


@dataclass(frozen=True)
class Efficiency:
    """Achievable fractions of peak compute and peak memory bandwidth."""

    compute: float
    memory: float
    tensor_cores: bool

    def __post_init__(self) -> None:
        if not (0.0 < self.compute <= 1.0 and 0.0 < self.memory <= 1.0):
            raise ValueError(f"efficiencies must be in (0, 1]: {self}")


def _unit(*parts: object) -> float:
    """Deterministic pseudo-uniform in [0, 1) keyed by the given parts."""
    key = "|".join(str(p) for p in parts)
    return zlib.crc32(key.encode()) / 2**32


def _in_range(u: float, lo_hi: tuple[float, float]) -> float:
    lo, hi = lo_hi
    return lo + u * (hi - lo)


def heuristic_algorithm(shape: GemmShape) -> int:
    """The library's default algorithm choice for a GEMM shape.

    A fixed, shape-keyed pick: usually decent, sometimes measurably worse
    than the best (the cuBLAS-heuristic gap of Sec. V-A).
    """
    return zlib.crc32(shape.label().encode()) % NUM_GEMM_ALGORITHMS


def best_algorithm(
    shape: GemmShape,
    layouts_key: str = "",
    params: EfficiencyParams | None = None,
) -> int:
    """The algorithm with the highest algo_factor for this shape/layout."""
    p = params if params is not None else active_params()
    return max(
        range(NUM_GEMM_ALGORITHMS),
        key=lambda a: _in_range(_unit("algo", shape.label(), layouts_key, a), p.algo_factor_range),
    )


def _tc_saturation(shape: GemmShape, p: EfficiencyParams) -> float:
    sat = 1.0
    for d in (shape.m, shape.n, shape.k):
        sat *= min(1.0, d / p.gemm_tc_sat_ref) ** p.gemm_tc_sat_exp
    return sat


def _fp16_saturation(shape: GemmShape, p: EfficiencyParams) -> float:
    sat = 1.0
    for d in (shape.m, shape.n, shape.k):
        sat *= min(1.0, d / p.gemm_tc_sat_ref) ** p.gemm_fp16_sat_exp
    return sat


def _wave_quantization(shape: GemmShape, gpu: GPUSpec) -> float:
    """Efficiency loss from tile-wave quantization (dampened).

    A GEMM is executed as output tiles distributed over the SMs; the final
    partial wave leaves SMs idle.  This is the physical effect that makes
    the stacked-QKV projection faster than three small GEMMs (Table II):
    the wider N fills the machine with fewer partial waves.  The square
    root dampens the penalty, reflecting tail overlap in real libraries.
    """
    import math

    tile_m, tile_n = gpu.gemm_tile
    tiles = math.ceil(shape.m / tile_m) * math.ceil(shape.n / tile_n) * shape.batch
    waves = tiles / gpu.sm_count
    if waves <= 0:
        return 1.0
    penalty = math.ceil(waves) / waves
    return min(2.0, penalty**0.5)


def contraction_efficiency(
    op: OpSpec,
    config: OpConfig,
    env: DimEnv,
    gpu: GPUSpec = V100,
    params: EfficiencyParams | None = None,
) -> Efficiency | None:
    """Efficiency of a contraction configuration, or None if not GEMM-mappable."""
    p = params if params is not None else active_params()
    spec = parse_einsum(op.einsum)
    la, lb = config.input_layouts[0], config.input_layouts[1]
    lc = config.output_layouts[0]
    shape = map_to_gemm(spec, la, lb, lc, env)
    if shape is None:
        return None

    tc_legal = (
        config.use_tensor_cores
        and shape.m % 8 == 0
        and shape.n % 8 == 0
        and shape.k % 8 == 0
    )
    layouts_key = f"{la}/{lb}/{lc}"
    algo = config.algorithm
    if algo == HEURISTIC_ALGORITHM:
        algo = heuristic_algorithm(shape)
    layout_factor = _in_range(
        _unit("gemm-layout", op.einsum, layouts_key, shape.trans_a, shape.trans_b),
        p.layout_factor_range,
    )
    algo_factor = _in_range(
        _unit("algo", shape.label(), layouts_key, algo), p.algo_factor_range
    )
    if tc_legal:
        compute = p.gemm_tc_base * _tc_saturation(shape, p) * layout_factor * algo_factor
    else:
        compute = p.gemm_fp16_base * _fp16_saturation(shape, p) * layout_factor * algo_factor
    compute /= _wave_quantization(shape, gpu)
    compute = max(compute, 1e-4)
    return Efficiency(compute=compute, memory=p.gemm_mem_eff, tensor_cores=tc_legal)


@lru_cache(maxsize=4096)
def _shape_factors(
    shape: GemmShape, gpu: GPUSpec, p: EfficiencyParams
) -> tuple[float, float, float, bool, str]:
    """Size-only factors shared by every layout triple mapping to ``shape``.

    Hot in the batched engine: an operator's feasible triples collapse to a
    handful of distinct GEMM shapes, so the saturation/wave transcendentals
    run once per shape instead of once per triple.  Pure value cache keyed
    by the resolved params — identical inputs, identical floats — so
    bit-identity is untouched and a promoted model never reads a stale
    default-model factor.
    """
    return (
        _tc_saturation(shape, p),
        _fp16_saturation(shape, p),
        _wave_quantization(shape, gpu),
        shape.m % 8 == 0 and shape.n % 8 == 0 and shape.k % 8 == 0,
        shape.label(),
    )


#: str(algorithm id) bytes, indexed by id (suffix operand of the rolling CRC).
_ALGO_SUFFIXES = tuple(str(a).encode() for a in range(NUM_GEMM_ALGORITHMS))


def contraction_shared_factors(
    op: OpSpec,
    la: Layout,
    lb: Layout,
    lc: Layout,
    shape: GemmShape,
    gpu: GPUSpec,
    params: EfficiencyParams | None = None,
) -> tuple[float, float, float, bool, tuple[float, ...]]:
    """Per-layout-triple factors shared by every (tc, algo) configuration.

    Returns ``(pre_tc, pre_fp16, wave, tc_divisible, algo_factors)`` where
    ``pre_* = BASE · sat(shape) · layout_factor`` are the partial products of
    :func:`contraction_efficiency` up to (but excluding) the per-algorithm
    factor.  The batched sweep engine hoists these out of its per-config
    loop; the arithmetic — including association order — matches the scalar
    path exactly so engine results stay bit-identical to the reference.

    The per-algorithm units roll the CRC forward from the shared
    ``algo|label|layouts`` prefix instead of re-hashing it per algorithm:
    ``crc32(p + s) == crc32(s, crc32(p))``, so the units — and the factors
    derived from them in :func:`_in_range`'s exact arithmetic — are the
    same bits the one-shot hash produces.
    """
    p = params if params is not None else active_params()
    layouts_key = f"{la}/{lb}/{lc}"
    layout_factor = _in_range(
        _unit("gemm-layout", op.einsum, layouts_key, shape.trans_a, shape.trans_b),
        p.layout_factor_range,
    )
    sat_tc, sat_fp16, wave, tc_divisible, label = _shape_factors(shape, gpu, p)
    pre_tc = p.gemm_tc_base * sat_tc * layout_factor
    pre_fp16 = p.gemm_fp16_base * sat_fp16 * layout_factor
    crc32 = zlib.crc32
    prefix = crc32(f"algo|{label}|{layouts_key}|".encode())
    lo, hi = p.algo_factor_range
    span = hi - lo
    algo_factors = tuple(
        lo + (crc32(suffix, prefix) / 2**32) * span for suffix in _ALGO_SUFFIXES
    )
    return pre_tc, pre_fp16, wave, tc_divisible, algo_factors


def contraction_layout_units(op: OpSpec, triples) -> np.ndarray:
    """Per-triple layout-factor units in [0, 1), enumeration order.

    ``triples`` is a ``(layout_a, layout_b, layout_c, shape)`` sequence.
    The units depend on the einsum, the layout strings and the transpose
    flags — never on dim *sizes* or the calibrated constants — so a delta
    re-sweep reuses the persisted array instead of re-hashing every key.
    ``crc32 / 2**32`` is exact in float64, so the round trip through a
    stored payload is bit-identical.
    """
    units = np.empty(len(triples))
    for i, (la, lb, lc, shape) in enumerate(triples):
        units[i] = _unit(
            "gemm-layout", op.einsum, f"{la}/{lb}/{lc}", shape.trans_a, shape.trans_b
        )
    return units


def contraction_triple_factors(
    op: OpSpec,
    triples,
    gpu: GPUSpec,
    *,
    layout_units: np.ndarray | None = None,
    params: EfficiencyParams | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """:func:`contraction_shared_factors` over a whole triple list, batched.

    Returns ``(pre_tc, pre_fp16, wave, tc_divisible, algo_factors,
    layout_units)`` arrays — ``algo_factors`` of shape
    ``(len(triples), NUM_GEMM_ALGORITHMS)`` — bit-identical to calling the
    scalar helper per triple:

    * the size-only shape factors come from the same :func:`_shape_factors`
      cache;
    * the per-algorithm CRCs roll forward from a per-*label* base
      (``crc32(p + s) == crc32(s, crc32(p))``), hashing each label once per
      distinct GEMM shape instead of once per (triple, algorithm);
    * the factor mixing (``lo + u·span``, ``(BASE · sat) · layout_factor``)
      runs element-wise in float64 with the scalar association order, and
      raw CRC values are exact in float64.

    ``layout_units`` optionally supplies the size-independent units of
    :func:`contraction_layout_units` (e.g. from a stored payload on the
    delta re-sweep path); ``None`` computes them here.
    """
    p = params if params is not None else active_params()
    t = len(triples)
    sat_tc = np.empty(t)
    sat_fp16 = np.empty(t)
    wave = np.empty(t)
    div8 = np.empty(t, dtype=bool)
    algo_crcs = np.empty((t, NUM_GEMM_ALGORITHMS))
    if layout_units is None:
        layout_units = contraction_layout_units(op, triples)
    crc32 = zlib.crc32
    label_base: dict[str, int] = {}
    for i, (la, lb, lc, shape) in enumerate(triples):
        s_tc, s_fp, w, d8, label = _shape_factors(shape, gpu, p)
        sat_tc[i] = s_tc
        sat_fp16[i] = s_fp
        wave[i] = w
        div8[i] = d8
        base = label_base.get(label)
        if base is None:
            base = label_base[label] = crc32(f"algo|{label}|".encode())
        mid = crc32(f"{la}/{lb}/{lc}|".encode(), base)
        row = algo_crcs[i]
        for a, suffix in enumerate(_ALGO_SUFFIXES):
            row[a] = crc32(suffix, mid)
    lo, hi = p.layout_factor_range
    layout_factor = lo + layout_units * (hi - lo)
    pre_tc = (p.gemm_tc_base * sat_tc) * layout_factor
    pre_fp16 = (p.gemm_fp16_base * sat_fp16) * layout_factor
    lo_a, hi_a = p.algo_factor_range
    algo_factors = lo_a + (algo_crcs / 2**32) * (hi_a - lo_a)
    return pre_tc, pre_fp16, wave, div8, algo_factors, layout_units


@lru_cache(maxsize=65536)
def _operand_access_eff(
    layout: Layout, vector_dim: str | None, env: DimEnv, p: EfficiencyParams
) -> float:
    """Memory efficiency of one operand under a kernel's access pattern.

    Threads advance along ``vector_dim``; the operand's stride along that
    dim decides coalescing.  Rank-0/1 operands are negligible and cached.
    """
    if layout.rank <= 1:
        return 0.85
    if vector_dim is None or vector_dim not in layout.dims:
        # Kernel iterates along a dim this operand is broadcast over; the
        # operand is effectively cached after first touch.
        return 0.80
    if layout.contiguous_dim == vector_dim:
        if env[vector_dim] % VECTOR_WIDTH_FP16 == 0:
            return p.vectorized_eff
        return p.coalesced_eff
    strides = layout.strides(env)
    stride = strides[vector_dim]
    return max(p.strided_floor, p.strided_coef / (stride**0.5))


def operand_access_eff(
    layout: Layout,
    vector_dim: str | None,
    env: DimEnv,
    params: EfficiencyParams | None = None,
) -> float:
    """Public name for the per-operand access model (the batched engine
    tabulates it once per (operand, layout, vector-dim) instead of once per
    config).  Cached on the resolved params: the same (layout, vector-dim,
    env, model) cells recur across operators and sweeps, and the function
    is pure — identical inputs, identical float."""
    p = params if params is not None else active_params()
    return _operand_access_eff(layout, vector_dim, env, p)


def kernel_efficiency(
    op: OpSpec,
    config: OpConfig,
    env: DimEnv,
    params: EfficiencyParams | None = None,
) -> Efficiency:
    """Efficiency of a (possibly fused) memory-bound kernel configuration."""
    p = params if params is not None else active_params()
    if op.op_class is OpClass.TENSOR_CONTRACTION:
        raise ValueError(f"{op.name!r} is a contraction; use contraction_efficiency")
    operands = list(op.inputs) + list(op.outputs)
    layouts = list(config.input_layouts) + list(config.output_layouts)
    if len(operands) != len(layouts):
        raise ValueError(
            f"{op.name!r}: {len(operands)} operands but {len(layouts)} layouts"
        )
    total_bytes = 0
    weighted = 0.0
    for spec, layout in zip(operands, layouts):
        nbytes = spec.nbytes(env)
        total_bytes += nbytes
        weighted += nbytes * _operand_access_eff(layout, config.vector_dim, env, p)
    mem = weighted / total_bytes if total_bytes else 0.5

    if op.ispace.reduction and config.warp_reduce_dim:
        if config.warp_reduce_dim == config.vector_dim:
            # Shared reduce/vector dim shrinks per-thread register footprint
            # (paper Sec. V-B: "decreases the number of registers ... from
            # the vector size (eight at FP16) to one").
            mem = min(0.95, mem * p.register_bonus)
        if env[config.warp_reduce_dim] < 32:
            mem *= p.narrow_warp_penalty

    jitter = 1.0 + p.jitter * (2.0 * _unit("kernel", config.key()) - 1.0)
    mem = min(0.95, max(p.strided_floor / 2, mem * jitter))
    return Efficiency(compute=p.kernel_compute_eff, memory=mem, tensor_cores=False)


def op_efficiency(
    op: OpSpec,
    config: OpConfig,
    env: DimEnv,
    gpu: GPUSpec = V100,
    params: EfficiencyParams | None = None,
) -> Efficiency | None:
    """Dispatch on operator class."""
    p = params if params is not None else active_params()
    if op.op_class is OpClass.TENSOR_CONTRACTION:
        return contraction_efficiency(op, config, env, gpu, p)
    return kernel_efficiency(op, config, env, p)
