"""Fit a candidate cost model to retained measurements, deterministically.

The fit deliberately never touches the sweep engine: the engine's memo
and L2 store are keyed by the *served* model version, and scoring a
candidate through them would poison both.  Instead, targets come from
:func:`repro.baselines.frameworks.framework_graph` (graph construction +
fusion only — no sweeps), each predicted by a scalar
:class:`~repro.hardware.cost_model.CostModel` carrying the candidate's
explicit parameters under the untuned default configuration.  That makes
a prediction a pure function of ``(params, gpu, env)`` — same feedback
store in, byte-identical :class:`CandidateModel` out, which the property
suite pins.

The fitting itself is a two-knob roofline correction: records are
classified by which roofline term dominates their operators under the
*base* parameters, and the compute-side / memory-side efficiency groups
are each scaled by the inverse geometric-mean measured/predicted ratio of
their class (clamped to sane efficiency bounds).  Launch-bound records
carry no efficiency signal and are skipped.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.analysis.calibration import PAPER_TABLE3_US
from repro.analysis.tables import TABLE3_ROWS
from repro.hardware.cost_model import CostModel
from repro.hardware.params import (
    EfficiencyParams,
    ParamsError,
    active_params,
    candidate_version,
    params_from_wire,
)
from repro.hardware.spec import V100, GPUSpec
from repro.ir.dims import DimEnv, bert_large_dims
from repro.ir.operator import OpSpec

__all__ = [
    "CandidateModel",
    "CalibrationTarget",
    "calibration_targets",
    "fit_candidate",
    "predict_target",
    "score_params",
]

#: Efficiency fields scaled when compute-bound predictions are off.
_COMPUTE_FIELDS = ("gemm_tc_base", "gemm_fp16_base", "kernel_compute_eff")
#: Efficiency fields scaled when memory-bound predictions are off.
_MEMORY_FIELDS = ("gemm_mem_eff", "vectorized_eff", "coalesced_eff")
#: Correction factors are clamped here: a corpus that suggests a >4x
#: efficiency rewrite is evidence of bad measurements, not a bad model.
_MAX_SCALE = 4.0
#: Efficiencies never fitted below this floor (or above 1.0).
_MIN_EFF = 1e-3


@dataclass(frozen=True)
class CalibrationTarget:
    """One predictable Table III cell: a label, a side, its operators."""

    label: str
    side: str  # "pt" or "ours"
    ops: tuple[OpSpec, ...]


def calibration_targets(env: DimEnv | None = None) -> tuple[CalibrationTarget, ...]:
    """Every Table III cell the model can predict, sweep-free.

    The PyTorch side of a row sums its unfused operators; the "ours" side
    is the single fused kernel.  Rows whose label the paper table does not
    time, or whose operators the builder graphs omit, are skipped.
    """
    from repro.baselines.frameworks import framework_graph
    from repro.baselines.policy import OURS, PYTORCH

    if env is None:
        env = bert_large_dims()
    pt_graph = framework_graph(PYTORCH, env)
    ours_graph = framework_graph(OURS, env)
    targets: list[CalibrationTarget] = []
    for label, pt_ops, ours_kernel in TABLE3_ROWS:
        if label not in PAPER_TABLE3_US:
            continue
        try:
            pt = tuple(pt_graph.op(name) for name in pt_ops)
            ours = (ours_graph.op(ours_kernel),)
        except KeyError:
            continue
        targets.append(CalibrationTarget(label, "pt", pt))
        targets.append(CalibrationTarget(label, "ours", ours))
    return tuple(targets)


def predict_target(
    target: CalibrationTarget,
    env: DimEnv,
    cost: CostModel,
) -> tuple[float, str] | None:
    """``(predicted_us, dominant_bound)`` for one target, or None.

    The bound is the roofline classification of the target's *dominant*
    operator — the one the correction should move.  An un-costable
    operator (no GEMM mapping under the default configuration) makes the
    whole target unpredictable.
    """
    total = 0.0
    dominant: tuple[float, str] | None = None
    for op in target.ops:
        if op.is_view:
            continue
        kt = cost.time_op(op, None, env)
        if kt is None:
            return None
        total += kt.total_us
        if dominant is None or kt.total_us > dominant[0]:
            dominant = (kt.total_us, kt.bound)
    if dominant is None or total <= 0:
        return None
    return total, dominant[1]


def _prediction_table(
    params: EfficiencyParams,
    *,
    env: DimEnv,
    gpu: GPUSpec,
    targets: tuple[CalibrationTarget, ...],
) -> dict[tuple[str, str], tuple[float, str]]:
    cost = CostModel(gpu, params=params)
    table: dict[tuple[str, str], tuple[float, str]] = {}
    for target in targets:
        predicted = predict_target(target, env, cost)
        if predicted is not None:
            table[(target.label, target.side)] = predicted
    return table


def _sorted_records(records: list[dict]) -> list[dict]:
    # Canonical order: the fit must not depend on submission order.
    return sorted(
        records,
        key=lambda r: (
            str(r.get("label")),
            str(r.get("side")),
            float(r.get("measured_us", 0.0)),
            str(r.get("provenance", "")),
        ),
    )


def _geomean(values: list[float]) -> float:
    return math.exp(sum(math.log(v) for v in values) / len(values))


def score_params(
    params: EfficiencyParams,
    records: list[dict],
    *,
    env: DimEnv | None = None,
    gpu: GPUSpec = V100,
    targets: tuple[CalibrationTarget, ...] | None = None,
) -> dict:
    """Calibration error of ``params`` against retained measurements.

    The error is the geometric mean of ``max(r, 1/r)`` over every scorable
    record's measured/predicted ratio — 1.0 is a perfect model, direction-
    blind so over- and under-prediction cannot cancel.
    """
    if env is None:
        env = bert_large_dims()
    if targets is None:
        targets = calibration_targets(env)
    table = _prediction_table(params, env=env, gpu=gpu, targets=targets)
    ratios: list[float] = []
    skipped = 0
    for rec in _sorted_records(records):
        predicted = table.get((rec.get("label"), rec.get("side")))
        if predicted is None:
            skipped += 1
            continue
        r = float(rec["measured_us"]) / predicted[0]
        ratios.append(max(r, 1.0 / r))
    if not ratios:
        return {"error": None, "scored": 0, "skipped": skipped}
    return {
        "error": _geomean(ratios),
        "scored": len(ratios),
        "skipped": skipped,
    }


@dataclass(frozen=True)
class CandidateModel:
    """A proposed cost model: parameters, derived version tag, provenance.

    The version is *always* derived from the parameters
    (:func:`~repro.hardware.params.candidate_version`), so a candidate
    cannot claim an arbitrary tag; :meth:`from_wire` re-derives and
    rejects forgeries.
    """

    params: EfficiencyParams
    version: int | str
    provenance: dict

    def to_wire(self) -> dict:
        return {
            "params": self.params.to_wire(),
            "version": self.version,
            "provenance": dict(self.provenance),
        }

    @classmethod
    def build(cls, params: EfficiencyParams, provenance: dict | None = None):
        return cls(
            params=params,
            version=candidate_version(params),
            provenance=provenance or {},
        )

    @classmethod
    def from_wire(cls, wire: object, where: str = "candidate") -> "CandidateModel":
        if not isinstance(wire, dict):
            raise ParamsError(f"{where} must be an object")
        params = params_from_wire(wire.get("params"), f"{where}.params")
        derived = candidate_version(params)
        version = wire.get("version", derived)
        if version != derived:
            raise ParamsError(
                f"{where}.version {version!r} does not match the version "
                f"derived from its parameters ({derived!r})"
            )
        provenance = wire.get("provenance", {})
        if not isinstance(provenance, dict):
            raise ParamsError(f"{where}.provenance must be an object")
        return cls(params=params, version=derived, provenance=provenance)


def fit_candidate(
    records: list[dict],
    *,
    env: DimEnv | None = None,
    gpu: GPUSpec = V100,
    base: EfficiencyParams | None = None,
) -> CandidateModel:
    """Propose a candidate model from retained measurements.

    Deterministic by construction: records are canonically sorted, the
    corrections are closed-form geometric means, and the provenance
    carries no timestamps — the same feedback corpus always yields the
    byte-identical candidate.
    """
    from .feedback import FeedbackStore

    if not records:
        raise ValueError("cannot fit a candidate from an empty feedback store")
    if env is None:
        env = bert_large_dims()
    if base is None:
        base = active_params()
    targets = calibration_targets(env)
    table = _prediction_table(base, env=env, gpu=gpu, targets=targets)
    by_bound: dict[str, list[float]] = {"compute": [], "memory": []}
    for rec in _sorted_records(records):
        predicted = table.get((rec.get("label"), rec.get("side")))
        if predicted is None:
            continue
        predicted_us, bound = predicted
        if bound not in by_bound:
            continue  # launch-bound: no efficiency signal
        by_bound[bound].append(float(rec["measured_us"]) / predicted_us)

    def _scale(ratios: list[float]) -> float:
        if not ratios:
            return 1.0
        return min(_MAX_SCALE, max(1.0 / _MAX_SCALE, _geomean(ratios)))

    compute_scale = _scale(by_bound["compute"])
    memory_scale = _scale(by_bound["memory"])
    updates: dict[str, float] = {}
    for field_name, scale in (
        *((f, compute_scale) for f in _COMPUTE_FIELDS),
        *((f, memory_scale) for f in _MEMORY_FIELDS),
    ):
        # measured/predicted > 1 → model too fast → lower the efficiency.
        fitted = getattr(base, field_name) / scale
        updates[field_name] = min(1.0, max(_MIN_EFF, fitted))
    params = EfficiencyParams(
        **{
            f: updates.get(f, getattr(base, f))
            for f in EfficiencyParams.__dataclass_fields__
        }
    )
    base_score = score_params(base, records, env=env, gpu=gpu, targets=targets)
    fitted_score = score_params(params, records, env=env, gpu=gpu, targets=targets)
    provenance = {
        "records": len(records),
        "corpus_digest": FeedbackStore().corpus_digest(_sorted_records(records)),
        "base_version": candidate_version(base),
        "base_error": base_score["error"],
        "fitted_error": fitted_score["error"],
        "compute_scale": compute_scale,
        "memory_scale": memory_scale,
    }
    return CandidateModel.build(params, provenance)
