"""Online calibration: measurement feedback, fitting, staged rollout.

The cost model ships with hand-derived efficiency constants
(:data:`repro.hardware.params.DEFAULT_PARAMS`).  This package closes the
loop against reality without ever letting an unvetted model serve:

* :mod:`repro.calibrate.feedback` — a crash-safe JSONL store of measured
  kernel timings (``POST /v1/report`` / ``repro report``), each record
  digest-chained so corruption is detected on load;
* :mod:`repro.calibrate.fit` — fits a :class:`CandidateModel` (new
  parameters + derived version tag + provenance) to the retained
  measurements, deterministically;
* :mod:`repro.calibrate.rollout` — the staged rollout state machine:
  SHADOW (candidate must beat the served model on the retained corpus)
  → CANARY (a deterministic slice of live traffic is dual-scored; the
  active model always serves) → PROMOTE (atomic, journaled, crash-safe)
  or AUTO-ROLLBACK (metadata-only; the active model never changed).
"""

from .feedback import (
    CALIBRATION_DIR_ENV_VAR,
    FeedbackError,
    FeedbackStore,
    record_digest,
    resolve_calibration_root,
    table3_corpus,
    validate_record,
)
from .fit import (
    CandidateModel,
    calibration_targets,
    fit_candidate,
    score_params,
)
from .rollout import (
    ROLLOUT_PHASES,
    RolloutError,
    RolloutManager,
)

__all__ = [
    "CALIBRATION_DIR_ENV_VAR",
    "CandidateModel",
    "FeedbackError",
    "FeedbackStore",
    "ROLLOUT_PHASES",
    "RolloutError",
    "RolloutManager",
    "calibration_targets",
    "fit_candidate",
    "record_digest",
    "resolve_calibration_root",
    "score_params",
    "table3_corpus",
    "validate_record",
]
