"""The staged rollout state machine: shadow → canary → promote/rollback.

A candidate cost model never serves until it has survived two gates:

* **SHADOW** — :meth:`RolloutManager.propose` scores the candidate against
  the retained feedback corpus *offline*; a candidate that does not
  strictly improve calibration error is rejected on the spot.  The served
  model is untouched.
* **CANARY** — a deterministic slice of live sweep requests (selected by
  request digest, so the slice is stable and replayable) is *dual-scored*:
  the active model computes and serves the response as always, and the
  candidate re-predicts the chosen best configuration.  The relative
  divergence is recorded; one divergence beyond the guardrail triggers
  **auto-rollback**, and enough healthy samples trigger promotion.  At no
  point does the candidate's number reach a client.
* **PROMOTE** — the only step that changes what serves, and it is built
  around a single atomic commit point: the journaled intent is written,
  then the new state file lands via temp-file + ``os.replace``, then the
  parameters are installed in-process.  A crash anywhere leaves the disk
  state on exactly one side of the commit — recovery re-reads the state
  file and serves exactly one of {prior, promoted}, which the chaos suite
  kills processes to prove.  Promotion bumps the served version, which
  atomically orphans both cache tiers and every wire/registry artifact
  (they all key on :func:`~repro.hardware.params.active_cost_model_version`).
* **ROLLBACK** — metadata-only: the candidate is discarded and the state
  returns to idle.  Nothing to undo, because nothing was installed.

Every transition is journaled (append + fsync) for the audit trail; the
state *file* is the single recovery authority.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from pathlib import Path

from repro.hardware.params import (
    DEFAULT_PARAMS,
    EfficiencyParams,
    ParamsError,
    active_cost_model_version,
    active_params,
    install_params,
    params_from_wire,
)
from repro.hardware.spec import V100, GPUSpec

from .fit import CandidateModel, calibration_targets, score_params

__all__ = [
    "CANARY_FRACTION_ENV_VAR",
    "CANARY_MAX_DIVERGENCE_ENV_VAR",
    "CANARY_MIN_SAMPLES_ENV_VAR",
    "ROLLOUT_PHASES",
    "RolloutError",
    "RolloutManager",
]

ROLLOUT_PHASES = ("idle", "canary")

STATE_FILE_NAME = "rollout_state.json"
JOURNAL_FILE_NAME = "rollout_journal.jsonl"

#: Fraction of live sweep traffic dual-scored while a canary is active.
CANARY_FRACTION_ENV_VAR = "REPRO_CANARY_FRACTION"
#: Healthy dual-scored samples required before auto-promotion.
CANARY_MIN_SAMPLES_ENV_VAR = "REPRO_CANARY_MIN_SAMPLES"
#: Relative divergence (|candidate - active| / active) that instantly
#: auto-rolls the candidate back.
CANARY_MAX_DIVERGENCE_ENV_VAR = "REPRO_CANARY_MAX_DIVERGENCE"

_FAULT_PRE_COMMIT = "rollout-pre-commit"
_FAULT_POST_COMMIT = "rollout-post-commit"


class RolloutError(ValueError):
    """An invalid rollout transition or a rejected candidate."""


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return float(raw)
    except ValueError:
        raise ValueError(f"{name} must be a number, got {raw!r}") from None


class RolloutManager:
    """Owns the rollout state, its journal, and the served parameters.

    ``root=None`` keeps everything in memory (tests, ephemeral daemons):
    the state machine works identically but does not survive the process.
    """

    def __init__(
        self,
        root: str | Path | None = None,
        *,
        metrics=None,
        faults=None,
        gpu: GPUSpec = V100,
        fraction: float | None = None,
        min_samples: int | None = None,
        max_divergence: float | None = None,
    ) -> None:
        self.root = Path(root).expanduser() if root is not None else None
        self.metrics = metrics
        self.faults = faults
        self.gpu = gpu
        self.fraction = (
            fraction
            if fraction is not None
            else _env_float(CANARY_FRACTION_ENV_VAR, 0.25)
        )
        self.min_samples = (
            min_samples
            if min_samples is not None
            else int(_env_float(CANARY_MIN_SAMPLES_ENV_VAR, 8))
        )
        self.max_divergence = (
            max_divergence
            if max_divergence is not None
            else _env_float(CANARY_MAX_DIVERGENCE_ENV_VAR, 0.5)
        )
        if not (0.0 <= self.fraction <= 1.0):
            raise ValueError("canary fraction must be within [0, 1]")
        if self.min_samples < 1:
            raise ValueError("canary min_samples must be at least 1")
        if self.max_divergence <= 0:
            raise ValueError("canary max_divergence must be positive")
        self._lock = threading.Lock()
        self._journal_memory: list[dict] = []
        self._candidate_params: EfficiencyParams | None = None
        self._state = self._initial_state()
        self._record_state()

    # -- state persistence and recovery -----------------------------------------
    @property
    def state_path(self) -> Path | None:
        return None if self.root is None else self.root / STATE_FILE_NAME

    @property
    def journal_path(self) -> Path | None:
        return None if self.root is None else self.root / JOURNAL_FILE_NAME

    def _initial_state(self) -> dict:
        """Load-or-adopt: the state file is the single recovery authority.

        With a durable state file present, its verdict wins — the recorded
        served parameters are (re)installed, which is exactly how a daemon
        killed *after* the promote commit point comes back serving the
        promoted model, and one killed *before* it comes back on the prior
        model.  Without one, the manager adopts whatever the process
        already serves.
        """
        if self.state_path is not None and self.state_path.exists():
            try:
                state = json.loads(self.state_path.read_bytes())
            except ValueError as exc:
                raise RolloutError(
                    f"corrupt rollout state at {self.state_path}: {exc} "
                    f"(the write path is atomic; this file was edited)"
                ) from exc
            self._install_from_state(state)
            self._journal({"event": "recovered", "phase": state["phase"],
                           "served_version": state["served_version"]})
            return state
        return {
            "phase": "idle",
            "served_version": active_cost_model_version(),
            "served_params": None
            if active_params() == DEFAULT_PARAMS
            else active_params().to_wire(),
            "candidate": None,
            "canary": _fresh_canary(),
            "last_transition": None,
        }

    def _install_from_state(self, state: dict) -> None:
        wire = state.get("served_params")
        if wire is None:
            install_params(DEFAULT_PARAMS)
            return
        try:
            params = params_from_wire(wire, "rollout state served_params")
        except ParamsError as exc:
            raise RolloutError(str(exc)) from exc
        install_params(params, state.get("served_version"))

    def _write_state_locked(self) -> None:
        """Atomically persist the current state (the promote commit point)."""
        if self.root is None:
            return
        self.root.mkdir(parents=True, exist_ok=True)
        blob = json.dumps(self._state, sort_keys=True, indent=1).encode("utf-8")
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(blob)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.state_path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    def _journal(self, event: dict) -> None:
        if self.root is None:
            self._journal_memory.append(event)
            return
        self.root.mkdir(parents=True, exist_ok=True)
        line = json.dumps(event, sort_keys=True) + "\n"
        with open(self.journal_path, "ab") as fh:
            fh.write(line.encode("utf-8"))
            fh.flush()
            os.fsync(fh.fileno())

    def journal_events(self) -> list[dict]:
        if self.root is None:
            return list(self._journal_memory)
        if not self.journal_path.exists():
            return []
        out = []
        for line in self.journal_path.read_bytes().split(b"\n"):
            if not line:
                continue
            try:
                out.append(json.loads(line))
            except ValueError:
                continue  # torn tail from a crash mid-append
        return out

    def _fault(self, point: str) -> None:
        if self.faults is not None:
            self.faults.before(point)

    def _count(self, event: str) -> None:
        if self.metrics is not None:
            self.metrics.record_calibration(event)

    def _record_state(self) -> None:
        if self.metrics is not None:
            self.metrics.record_rollout(self.status())

    # -- observability ----------------------------------------------------------
    def status(self) -> dict:
        with self._lock:
            candidate = self._state.get("candidate")
            return {
                "phase": self._state["phase"],
                "served_version": self._state["served_version"],
                "candidate_version": None
                if candidate is None
                else candidate.get("version"),
                "candidate": None if candidate is None else dict(candidate),
                "canary": dict(self._state["canary"]),
                "last_transition": self._state.get("last_transition"),
                "knobs": {
                    "fraction": self.fraction,
                    "min_samples": self.min_samples,
                    "max_divergence": self.max_divergence,
                },
                "durable": self.root is not None,
            }

    # -- shadow: propose a candidate --------------------------------------------
    def propose(
        self,
        candidate: CandidateModel,
        records: list[dict],
        *,
        force: bool = False,
    ) -> dict:
        """Shadow-score a candidate; on pass, start its canary.

        ``force=True`` skips the shadow gate (the regression-injection
        knob the chaos suite uses) — the canary guardrail still stands
        between a forced candidate and promotion.
        """
        if candidate.version == active_cost_model_version():
            raise RolloutError(
                f"candidate version {candidate.version!r} is already serving"
            )
        shadow: dict = {"forced": force}
        if not force:
            if not records:
                raise RolloutError(
                    "no retained measurements to shadow-score against; "
                    "POST /v1/report (or `repro report`) first"
                )
            targets = calibration_targets()
            base = score_params(
                active_params(), records, gpu=self.gpu, targets=targets
            )
            cand = score_params(
                candidate.params, records, gpu=self.gpu, targets=targets
            )
            shadow.update({"base_error": base["error"], "candidate_error": cand["error"],
                           "scored": cand["scored"]})
            if cand["error"] is None or base["error"] is None:
                self._count("shadow_reject")
                raise RolloutError(
                    "shadow scoring produced no scorable records; the corpus "
                    "does not cover any predictable Table III operator"
                )
            if cand["error"] >= base["error"]:
                with self._lock:
                    self._journal({"event": "shadow_reject", **shadow,
                                   "candidate_version": candidate.version})
                self._count("shadow_reject")
                raise RolloutError(
                    f"candidate {candidate.version!r} does not improve "
                    f"calibration error ({cand['error']:.4f} vs served "
                    f"{base['error']:.4f}); rejected in shadow"
                )
        with self._lock:
            if self._state["phase"] != "idle":
                raise RolloutError(
                    f"a rollout is already in phase {self._state['phase']!r}; "
                    f"promote or roll it back first"
                )
            self._state["candidate"] = candidate.to_wire()
            self._state["canary"] = _fresh_canary()
            self._state["phase"] = "canary"
            self._state["last_transition"] = "shadow_pass"
            self._candidate_params = candidate.params
            self._journal({"event": "shadow_pass", **shadow,
                           "candidate_version": candidate.version})
            self._write_state_locked()
        self._count("shadow_pass")
        self._record_state()
        return self.status()

    # -- canary: dual-score a deterministic slice of live traffic ----------------
    def should_canary(self, digest: str) -> bool:
        """Deterministic slice membership for one request digest."""
        if self._state["phase"] != "canary":
            return False
        try:
            bucket = int(digest[:8], 16) / 2**32
        except (TypeError, ValueError):
            return False
        return bucket < self.fraction

    def candidate_params(self) -> EfficiencyParams | None:
        with self._lock:
            if self._state["phase"] != "canary":
                return None
            if self._candidate_params is None:
                wire = self._state.get("candidate")
                if wire is None:
                    return None
                self._candidate_params = params_from_wire(
                    wire["params"], "rollout candidate params"
                )
            return self._candidate_params

    def record_canary(self, divergence: float) -> str:
        """Fold one dual-score into the canary; returns the outcome:
        ``"canary"`` (still sampling), ``"promoted"``, ``"rolled_back"``,
        or ``"idle"`` (no rollout in flight — a benign race)."""
        promoted = False
        with self._lock:
            if self._state["phase"] != "canary":
                return "idle"
            canary = self._state["canary"]
            canary["samples"] += 1
            canary["max_divergence_seen"] = max(
                canary["max_divergence_seen"], divergence
            )
            if divergence > self.max_divergence:
                canary["regressions"] += 1
                self._journal({
                    "event": "canary_regression",
                    "divergence": divergence,
                    "samples": canary["samples"],
                })
                self._rollback_locked(
                    f"canary divergence {divergence:.4f} exceeded guardrail "
                    f"{self.max_divergence:.4f}"
                )
                outcome = "rolled_back"
            elif canary["samples"] >= self.min_samples:
                self._promote_locked()
                promoted = True
                outcome = "promoted"
            else:
                self._write_state_locked()
                outcome = "canary"
        if outcome == "rolled_back":
            self._count("canary_regression")
            self._count("rollback")
        elif promoted:
            self._count("promote")
        self._record_state()
        return outcome

    # -- promote / rollback ------------------------------------------------------
    def promote(self) -> dict:
        """Manually promote the canary candidate (operator override)."""
        with self._lock:
            if self._state["phase"] != "canary":
                raise RolloutError(
                    "nothing to promote: no candidate is in canary"
                )
            self._promote_locked()
        self._count("promote")
        self._record_state()
        return self.status()

    def _promote_locked(self) -> None:
        """The atomic promotion: journal intent, commit state, install.

        The ``os.replace`` inside :meth:`_write_state_locked` is the
        commit point.  A crash before it (the ``rollout-pre-commit``
        fault) recovers to the prior model; a crash after it (the
        ``rollout-post-commit`` fault) recovers to the promoted model —
        never anything in between.
        """
        wire = self._state["candidate"]
        params = params_from_wire(wire["params"], "rollout candidate params")
        version = wire["version"]
        prior = self._state["served_version"]
        self._journal({"event": "promote_intent", "version": version,
                       "prior_version": prior})
        self._fault(_FAULT_PRE_COMMIT)
        self._state = {
            "phase": "idle",
            "served_version": version,
            "served_params": params.to_wire(),
            "candidate": None,
            "canary": _fresh_canary(),
            "last_transition": "promote",
        }
        self._write_state_locked()  # <-- commit point
        self._fault(_FAULT_POST_COMMIT)
        install_params(params, version)
        self._candidate_params = None
        self._journal({"event": "promote_committed", "version": version,
                       "prior_version": prior})

    def rollback(self, reason: str = "manual") -> dict:
        with self._lock:
            if self._state["phase"] != "canary":
                raise RolloutError(
                    "nothing to roll back: no candidate is in canary"
                )
            self._rollback_locked(reason)
        self._count("rollback")
        self._record_state()
        return self.status()

    def _rollback_locked(self, reason: str) -> None:
        """Metadata-only: the active model never changed, so discarding the
        candidate and returning to idle *is* the whole rollback."""
        candidate = self._state.get("candidate") or {}
        self._journal({
            "event": "rollback",
            "reason": reason,
            "candidate_version": candidate.get("version"),
            "canary": dict(self._state["canary"]),
        })
        self._state["phase"] = "idle"
        self._state["candidate"] = None
        self._state["canary"] = _fresh_canary()
        self._state["last_transition"] = "rollback"
        self._candidate_params = None
        self._write_state_locked()


def _fresh_canary() -> dict:
    return {"samples": 0, "regressions": 0, "max_divergence_seen": 0.0}
