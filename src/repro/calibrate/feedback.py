"""The measurement feedback store: crash-safe JSONL, digest-per-record.

``POST /v1/report`` lands here.  The store holds *measured* kernel wall
times for the operators the paper's Table III names — the ground truth a
calibration fit is scored against.  Contract, mirroring the sweep store's
discipline one more level down:

* **validate-all-before-append-any** — a batch containing one malformed
  record changes nothing; the caller gets a structured rejection and the
  store's bytes are untouched;
* **append is atomic at line granularity** — all accepted records are
  serialized into one buffer and written with a single ``write`` +
  ``flush`` + ``fsync``, so a crash mid-batch leaves at most one torn
  *final* line;
* **torn tails are tolerated, corruption is not** — a final partial line
  (the crash signature) is silently dropped on load; a malformed or
  digest-mismatched line *before* the tail means the file was edited and
  raises :class:`FeedbackError`.

Every record carries the ``cost_model_version`` it was measured against;
the server rejects reports that disagree with the *served* version, so a
fit never mixes measurements from two different models.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import threading
from pathlib import Path

from repro.analysis.calibration import PAPER_TABLE3_US

__all__ = [
    "CALIBRATION_DIR_ENV_VAR",
    "FEEDBACK_FILE_NAME",
    "FeedbackError",
    "FeedbackStore",
    "record_digest",
    "resolve_calibration_root",
    "table3_corpus",
    "validate_record",
]

#: Environment variable naming the calibration directory (feedback store
#: + rollout state/journal).  CLI: ``repro serve --calibration-dir``.
CALIBRATION_DIR_ENV_VAR = "REPRO_CALIBRATION_DIR"

FEEDBACK_FILE_NAME = "feedback.jsonl"

#: The two measurement sides, matching Table III's columns.
RECORD_SIDES = ("pt", "ours")

#: Fields a canonical record carries — exactly these, no more.
_RECORD_FIELDS = ("label", "side", "measured_us", "cost_model_version", "provenance")


class FeedbackError(ValueError):
    """A rejected measurement record or a corrupt feedback file."""


def record_digest(record: dict) -> str:
    """The content digest of one canonical record (``digest`` excluded)."""
    body = {k: record[k] for k in _RECORD_FIELDS}
    blob = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def validate_record(
    wire: object,
    where: str = "record",
    *,
    served_version: int | str | None = None,
) -> dict:
    """Validate one wire record into canonical form, or raise.

    ``served_version`` (when given) pins the record to the model this
    process serves: a measurement taken against any other version is
    rejected rather than silently mixed into the corpus.
    """
    if not isinstance(wire, dict):
        raise FeedbackError(f"{where} must be an object, got {type(wire).__name__}")
    unknown = sorted(set(wire) - set(_RECORD_FIELDS) - {"digest"})
    if unknown:
        raise FeedbackError(f"{where} carries unknown fields {unknown}")
    label = wire.get("label")
    if not isinstance(label, str) or label not in PAPER_TABLE3_US:
        raise FeedbackError(
            f"{where}.label {label!r} is not a Table III operator label"
        )
    side = wire.get("side")
    if side not in RECORD_SIDES:
        raise FeedbackError(
            f"{where}.side must be one of {RECORD_SIDES}, got {side!r}"
        )
    measured = wire.get("measured_us")
    if isinstance(measured, bool) or not isinstance(measured, (int, float)):
        raise FeedbackError(f"{where}.measured_us must be a number")
    measured = float(measured)
    if not math.isfinite(measured) or measured <= 0:
        raise FeedbackError(
            f"{where}.measured_us must be finite and positive, got {measured!r}"
        )
    version = wire.get("cost_model_version")
    if isinstance(version, bool) or not isinstance(version, (int, str)):
        raise FeedbackError(
            f"{where}.cost_model_version must be an int or a version tag"
        )
    if served_version is not None and version != served_version:
        raise FeedbackError(
            f"{where} was measured against cost-model version {version!r}; "
            f"this process serves version {served_version!r} — re-measure "
            f"against the served model"
        )
    provenance = wire.get("provenance", "api")
    if not isinstance(provenance, str) or not provenance:
        raise FeedbackError(f"{where}.provenance must be a non-empty string")
    return {
        "label": label,
        "side": side,
        "measured_us": measured,
        "cost_model_version": version,
        "provenance": provenance,
    }


class FeedbackStore:
    """Retained measurements, on disk (JSONL) or in memory (``root=None``)."""

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root).expanduser() if root is not None else None
        self._lock = threading.Lock()
        self._memory: list[dict] = []

    @property
    def path(self) -> Path | None:
        return None if self.root is None else self.root / FEEDBACK_FILE_NAME

    # -- writing -------------------------------------------------------------
    def append(self, records: list[dict]) -> int:
        """Durably append already-validated canonical records, all-or-nothing.

        Each record gains its content ``digest`` before writing; the whole
        batch is one buffered write + fsync, so a crash can tear only the
        final line — which :meth:`load` tolerates.
        """
        stamped = []
        for record in records:
            rec = dict(record)
            rec["digest"] = record_digest(rec)
            stamped.append(rec)
        with self._lock:
            if self.root is None:
                self._memory.extend(stamped)
                return len(stamped)
            self.root.mkdir(parents=True, exist_ok=True)
            blob = "".join(
                json.dumps(rec, sort_keys=True, separators=(",", ":")) + "\n"
                for rec in stamped
            ).encode("utf-8")
            with open(self.path, "ab") as fh:
                fh.write(blob)
                fh.flush()
                os.fsync(fh.fileno())
        return len(stamped)

    # -- reading -------------------------------------------------------------
    def records(self) -> list[dict]:
        """Every retained record, verified.

        A torn *final* line (no trailing record after a crash mid-append)
        is dropped silently; anything malformed before the tail raises
        :class:`FeedbackError` — the file was edited, not torn.
        """
        with self._lock:
            if self.root is None:
                return [dict(rec) for rec in self._memory]
            path = self.path
            try:
                raw = path.read_bytes()
            except FileNotFoundError:
                return []
        lines = raw.split(b"\n")
        # A file ending in "\n" splits into [..., b""]; anything else in the
        # final slot is a torn tail from a crash mid-append.
        tail_torn = lines and lines[-1] != b""
        body = lines[:-1]
        out: list[dict] = []
        for i, line in enumerate(body):
            where = f"{path}:{i + 1}"
            try:
                rec = json.loads(line)
            except ValueError as exc:
                raise FeedbackError(
                    f"{where}: corrupt feedback record (not valid JSON; "
                    f"mid-file corruption, not a torn tail)"
                ) from exc
            if not isinstance(rec, dict) or "digest" not in rec:
                raise FeedbackError(f"{where}: record carries no digest")
            if record_digest_safe(rec) != rec["digest"]:
                raise FeedbackError(
                    f"{where}: record does not hash to its recorded digest "
                    f"(file edited or truncated mid-record)"
                )
            out.append(rec)
        if tail_torn:
            # Attempt to parse it anyway — a complete-but-unterminated final
            # record is still usable; a genuinely torn one is dropped.
            try:
                rec = json.loads(lines[-1])
                if isinstance(rec, dict) and record_digest_safe(rec) == rec.get(
                    "digest"
                ):
                    out.append(rec)
            except ValueError:
                pass
        return out

    def count(self) -> int:
        return len(self.records())

    def corpus_digest(self, records: list[dict] | None = None) -> str:
        """One digest over the whole corpus (order-sensitive by design)."""
        if records is None:
            records = self.records()
        h = hashlib.sha256()
        for rec in records:
            h.update(rec.get("digest", record_digest_safe(rec) or "").encode())
        return h.hexdigest()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        root = "memory" if self.root is None else str(self.root)
        return f"FeedbackStore({root!r})"


def record_digest_safe(rec: dict) -> str | None:
    """:func:`record_digest` tolerant of missing fields (returns None)."""
    try:
        return record_digest(rec)
    except KeyError:
        return None


def table3_corpus(version: int | str | None = None) -> list[dict]:
    """The paper's Table III measurements as canonical records.

    This is the built-in ground-truth corpus ``repro report`` submits: one
    ``pt`` and one ``ours`` record per Table III row, sorted by (label,
    side) so the resulting store bytes — and therefore the corpus digest
    and every downstream fit — are deterministic.
    """
    if version is None:
        from repro.hardware.params import active_cost_model_version

        version = active_cost_model_version()
    records = []
    for label in sorted(PAPER_TABLE3_US):
        pt_us, ours_us = PAPER_TABLE3_US[label]
        for side, measured in (("ours", ours_us), ("pt", pt_us)):
            records.append(
                {
                    "label": label,
                    "side": side,
                    "measured_us": float(measured),
                    "cost_model_version": version,
                    "provenance": "paper-table3",
                }
            )
    return records


_ACTIVE_STORE = object()


def resolve_calibration_root(
    explicit: str | Path | None = None,
    *,
    store: object = _ACTIVE_STORE,
) -> Path | None:
    """Where calibration state lives: explicit > ``REPRO_CALIBRATION_DIR``
    > alongside the L2 sweep store (``<store>/calibration``) > nowhere
    (in-memory feedback, non-durable rollout).

    ``store`` pins which sweep store the derived default hangs off (a
    daemon constructed with an explicit store must not follow the
    process-active one); by default the process-active store is used, and
    ``store=None`` disables the derivation entirely.
    """
    if explicit is not None:
        return Path(explicit).expanduser()
    env = os.environ.get(CALIBRATION_DIR_ENV_VAR, "").strip()
    if env:
        return Path(env).expanduser()
    if store is _ACTIVE_STORE:
        from repro.engine.store import get_sweep_store

        store = get_sweep_store()
    if store is not None:
        return store.root / "calibration"  # type: ignore[union-attr]
    return None
