"""repro — reproduction of "Data Movement Is All You Need" (MLSys 2021).

A data-centric framework for analyzing and optimizing data movement in
transformer training, built entirely in Python:

* :mod:`repro.ir` — the dataflow IR (the paper's SDFG analog);
* :mod:`repro.ops` — operator library with analytic flop/IO models;
* :mod:`repro.hardware` — simulated V100 roofline cost model and MUE;
* :mod:`repro.layouts` — data layouts, GEMM mapping, configuration spaces;
* :mod:`repro.fusion` — kernel fusion (structural and algebraic);
* :mod:`repro.transformer` — MHA / BERT encoder models and graph builders;
* :mod:`repro.autotuner` — exhaustive configuration sweeps;
* :mod:`repro.configsel` — global SSSP configuration selection;
* :mod:`repro.baselines` — simulated framework baselines;
* :mod:`repro.runtime` — NumPy execution engine (correctness);
* :mod:`repro.analysis` — generators for the paper's tables and figures.

Quickstart::

    from repro import optimize_encoder
    report = optimize_encoder()
    print(report.summary())
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.dims import DimEnv, bert_alternate_dims, bert_large_dims

__version__ = "1.0.0"

__all__ = [
    "DimEnv",
    "OptimizationReport",
    "__version__",
    "bert_alternate_dims",
    "bert_large_dims",
    "optimize_encoder",
]


@dataclass(frozen=True)
class OptimizationReport:
    """Result of running the full recipe on a BERT encoder layer."""

    forward_ms: float
    backward_ms: float
    pytorch_forward_ms: float
    pytorch_backward_ms: float
    data_movement_reduction: float
    num_kernels: int

    @property
    def speedup(self) -> float:
        ours = self.forward_ms + self.backward_ms
        pt = self.pytorch_forward_ms + self.pytorch_backward_ms
        return pt / ours

    def summary(self) -> str:
        return (
            f"encoder layer: {self.forward_ms:.2f} ms forward, "
            f"{self.backward_ms:.2f} ms backward ({self.num_kernels} kernels); "
            f"{self.speedup:.2f}x over the PyTorch baseline, "
            f"{100 * self.data_movement_reduction:.1f}% less data movement"
        )


def optimize_encoder(
    env: DimEnv | None = None, *, cap: int | None = 600
) -> OptimizationReport:
    """Run the paper's four-step recipe on a BERT-large encoder layer.

    Builds the dataflow graph, fuses it into the paper's kernel set, sweeps
    configurations, selects the global layout assignment, and compares
    against the simulated PyTorch baseline.
    """
    from repro.analysis.tables import data_movement_reduction_report
    from repro.baselines import OURS, PYTORCH, framework_schedule
    from repro.hardware import CostModel

    env = env or bert_large_dims()
    cost = CostModel()
    ours = framework_schedule(OURS, env, cost, model="encoder", cap=cap)
    pt = framework_schedule(PYTORCH, env, cost, model="encoder", cap=cap)
    dm = data_movement_reduction_report(env)
    return OptimizationReport(
        forward_ms=ours.stage_us(backward=False) / 1000.0,
        backward_ms=ours.stage_us(backward=True) / 1000.0,
        pytorch_forward_ms=pt.stage_us(backward=False) / 1000.0,
        pytorch_backward_ms=pt.stage_us(backward=True) / 1000.0,
        data_movement_reduction=dm["reduction_fraction"],
        num_kernels=len(ours.kernels),
    )
