"""NumPy execution of dataflow graphs (correctness substrate)."""

from .executor import ExecutionError, GraphExecutor
from .feeds import encdec_mha_feeds, encoder_feeds, mha_feeds

__all__ = ["ExecutionError", "GraphExecutor", "encdec_mha_feeds", "encoder_feeds", "mha_feeds"]
