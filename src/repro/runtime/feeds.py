"""Feed dictionaries: adapt parameter containers to graph inputs.

The graph builders name their inputs (``wq`` / ``wqk`` / ``wqkv`` depending
on the algebraic-fusion variant); this module maps an
:class:`~repro.transformer.params.EncoderParams` or
:class:`~repro.transformer.params.MHAParams` onto those names.
"""

from __future__ import annotations

import numpy as np

from repro.transformer.graph_builder import QKVFusion
from repro.transformer.params import EncoderParams, MHAParams

__all__ = ["mha_feeds", "encoder_feeds", "encdec_mha_feeds"]


def _projection_feeds(p: MHAParams, qkv_fusion: QKVFusion) -> dict[str, np.ndarray]:
    if qkv_fusion == "qkv":
        return {"wqkv": np.stack([p.wq, p.wk, p.wv], axis=0)}
    if qkv_fusion == "qk":
        return {"wqk": np.stack([p.wq, p.wk], axis=0), "wv": p.wv}
    return {"wq": p.wq, "wk": p.wk, "wv": p.wv}


def mha_feeds(
    params: MHAParams,
    x: np.ndarray,
    *,
    qkv_fusion: QKVFusion,
    d_attn_out: np.ndarray | None = None,
) -> dict[str, np.ndarray]:
    """Inputs for a self-attention MHA graph."""
    feeds = {
        "x": x,
        "bq": params.bq,
        "bk": params.bk,
        "bv": params.bv,
        "wo": params.wo,
        "bo": params.bo,
    }
    feeds.update(_projection_feeds(params, qkv_fusion))
    if d_attn_out is not None:
        feeds["d_attn_out"] = d_attn_out
    return feeds


def encoder_feeds(
    params: EncoderParams,
    x: np.ndarray,
    *,
    qkv_fusion: QKVFusion,
    dy: np.ndarray | None = None,
) -> dict[str, np.ndarray]:
    """Inputs for a full encoder-layer graph."""
    feeds = mha_feeds(params.mha, x, qkv_fusion=qkv_fusion)
    feeds.update(
        {
            "ln1_g": params.ln1_g,
            "ln1_b": params.ln1_b,
            "w1": params.w1,
            "b1": params.b1,
            "w2": params.w2,
            "b2": params.b2,
            "ln2_g": params.ln2_g,
            "ln2_b": params.ln2_b,
        }
    )
    if dy is not None:
        feeds["dy"] = dy
    return feeds


def encdec_mha_feeds(
    params: MHAParams,
    xq: np.ndarray,
    xkv: np.ndarray,
    *,
    kv_fusion: str = "kv",
) -> dict[str, np.ndarray]:
    """Inputs for an encoder/decoder attention graph
    (:func:`repro.transformer.general_attention.build_encdec_mha_graph`)."""
    feeds = {
        "xq": xq,
        "xkv": xkv,
        "wq": params.wq,
        "bq": params.bq,
        "bk": params.bk,
        "bv": params.bv,
        "wo": params.wo,
        "bo": params.bo,
    }
    if kv_fusion == "kv":
        feeds["wkv"] = np.stack([params.wk, params.wv], axis=0)
    else:
        feeds["wk"] = params.wk
        feeds["wv"] = params.wv
    return feeds
