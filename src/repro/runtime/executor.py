"""NumPy execution engine for encoder/MHA dataflow graphs.

The cost model predicts *performance*; this executor establishes
*correctness*: it runs any graph the builders/fusion passes produce — fused
or unfused, any algebraic-fusion variant — on real arrays, so tests can
assert bit-level equivalence between transformed and reference schedules
(fusion must never change the computation, Sec. II-C).

Fused operators execute their members in sequence; interior tensors live
only inside the fused "kernel" (here: the Python call), mirroring the
registers/shared-memory residency of the real fused kernels.
"""

from __future__ import annotations

import zlib
from typing import Callable

import numpy as np

from repro.ir.dims import DimEnv
from repro.ir.graph import DataflowGraph
from repro.ir.operator import OpClass, OpSpec
from repro.ops.elementwise import (
    bias_forward,
    bias_grad_param,
    dropout_backward,
    dropout_forward,
    relu_backward,
    relu_forward,
    residual_forward,
)
from repro.ops.layernorm import (
    layernorm_backward_dw,
    layernorm_backward_dx,
    layernorm_forward,
)
from repro.ops.softmax import softmax_backward, softmax_forward

__all__ = ["GraphExecutor", "ExecutionError"]


class ExecutionError(RuntimeError):
    """Raised when the executor cannot interpret or run an operator."""


class GraphExecutor:
    """Interprets a dataflow graph over NumPy arrays.

    Parameters
    ----------
    graph:
        Any graph built by :mod:`repro.transformer.graph_builder`, optionally
        transformed by the fusion passes.
    env:
        Concrete dimension sizes (must match the fed arrays).
    dropout_p:
        Dropout probability.  Masks are generated deterministically per
        operator from ``seed``, so two executors with equal seeds produce
        identical results — the property the fused-vs-unfused tests rely on.
    """

    def __init__(
        self,
        graph: DataflowGraph,
        env: DimEnv,
        *,
        dropout_p: float = 0.0,
        seed: int = 0,
    ) -> None:
        self.graph = graph
        self.env = env
        self.dropout_p = dropout_p
        self.seed = seed

    # -- public API ----------------------------------------------------------
    def run(self, feeds: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        """Execute the graph; returns the full container environment."""
        ctx: dict[str, np.ndarray] = {}
        for t in self.graph.graph_inputs:
            if t.name not in feeds:
                raise ExecutionError(f"missing feed for graph input {t.name!r}")
            arr = np.asarray(feeds[t.name], dtype=np.float64)
            expect = t.shape(self.env)
            if arr.shape != expect:
                raise ExecutionError(
                    f"feed {t.name!r} has shape {arr.shape}, expected {expect}"
                )
            ctx[t.name] = arr
        for op in self.graph.ops:
            self._execute(op, ctx)
        return ctx

    # -- execution ------------------------------------------------------------
    def _execute(self, op: OpSpec, ctx: dict[str, np.ndarray]) -> None:
        if op.members:
            # Recurse: greedy fusion builds nested fusion products.
            for member in op.members:
                self._execute(member, ctx)
            return
        self._execute_primitive(op, ctx)

    def _rng_for(self, op_name: str) -> np.random.Generator:
        return np.random.default_rng((self.seed, zlib.crc32(op_name.encode())))

    def _softmax_scale(self) -> float:
        return 1.0 / np.sqrt(self.env["p"])

    def _execute_primitive(self, op: OpSpec, ctx: dict[str, np.ndarray]) -> None:
        args = [ctx[t.name] for t in op.inputs]
        if op.is_view:
            self._execute_view(op, args, ctx)
            return
        if op.op_class is OpClass.TENSOR_CONTRACTION:
            ctx[op.outputs[0].name] = np.einsum(op.einsum, *args)
            return
        handler = self._handlers().get(self._kind(op.name))
        if handler is None:
            raise ExecutionError(f"no kernel handler for operator {op.name!r}")
        handler(self, op, args, ctx)

    # -- view semantics --------------------------------------------------------
    @staticmethod
    def _slice_index(view_name: str, base_name: str, stack: int) -> int:
        """Which stacked slice a slice view selects.

        QKV stacks order (q, k, v); the QK stack is (q, k); the
        encoder/decoder KV stack is (k, v).
        """
        kv_stack = base_name.startswith("kv")
        table = {
            "slice_qq": 0,
            "slice_kk": 0 if kv_stack else 1,
            "slice_vv": 1 if kv_stack else 2,
        }
        idx = table[view_name]
        if idx >= stack:
            raise ExecutionError(
                f"{view_name}: stacked tensor {base_name!r} has only {stack} slices"
            )
        return idx

    def _execute_view(self, op: OpSpec, args: list[np.ndarray], ctx: dict) -> None:
        name = op.name
        out = op.outputs[0]
        if name.startswith("slice_"):
            idx = self._slice_index(name, op.inputs[0].name, args[0].shape[0])
            ctx[out.name] = args[0][idx]
        elif name.startswith("pack_"):
            ctx[out.name] = np.stack(args, axis=0)
        elif len(args) == 1 and args[0].size == out.volume(self.env):
            # Pure rename/alias (x_as_keys, d_x_alias, ...).
            ctx[out.name] = args[0].reshape(out.shape(self.env))
        else:
            raise ExecutionError(f"cannot interpret view {name!r}")

    # -- kernel kinds ------------------------------------------------------------
    @staticmethod
    def _kind(name: str) -> str:
        """Map an operator name to its kernel family."""
        if name.endswith("_dw") and ("bias" in name or name.startswith(("ln", "attn_out_bias"))):
            if name.startswith(("ln1_dw", "ln2_dw")):
                return "layernorm_dw"
            return "bias_dw"
        if name.endswith("_dx"):
            if name.startswith(("ln1_dx", "ln2_dx")):
                return "layernorm_dx"
            if "dropout" in name:
                return "dropout_dx"
            if name.startswith("relu"):
                return "relu_dx"
            if name.startswith("softmax"):
                return "softmax_dx"
        if "bias" in name and not name.endswith("_dw"):
            return "bias"
        if "dropout" in name:
            return "dropout"
        if name == "relu":
            return "relu"
        if name.startswith("residual") or name.endswith("_grad") or name.endswith("grad_add"):
            return "add"
        if name.startswith("softmax"):
            return "softmax"
        if name.startswith(("ln1", "ln2")):
            return "layernorm"
        return name

    # -- kernel implementations ---------------------------------------------------
    def _k_bias(self, op: OpSpec, args, ctx) -> None:
        x_spec, b_spec = op.inputs[0], op.inputs[1]
        ctx[op.outputs[0].name] = bias_forward(args[0], args[1], x_spec.dims, b_spec.dims)

    def _k_bias_dw(self, op: OpSpec, args, ctx) -> None:
        dy_spec = op.inputs[0]
        ctx[op.outputs[0].name] = bias_grad_param(
            args[0], dy_spec.dims, op.outputs[0].dims
        )

    def _k_relu(self, op: OpSpec, args, ctx) -> None:
        ctx[op.outputs[0].name] = relu_forward(args[0])

    def _k_relu_dx(self, op: OpSpec, args, ctx) -> None:
        ctx[op.outputs[0].name] = relu_backward(args[0], args[1])

    def _k_dropout(self, op: OpSpec, args, ctx) -> None:
        y, mask = dropout_forward(args[0], self.dropout_p, self._rng_for(op.name))
        ctx[op.outputs[0].name] = y
        ctx[op.outputs[1].name] = mask

    def _k_dropout_dx(self, op: OpSpec, args, ctx) -> None:
        ctx[op.outputs[0].name] = dropout_backward(args[0], args[1])

    def _k_add(self, op: OpSpec, args, ctx) -> None:
        acc = args[0]
        for other in args[1:]:
            acc = residual_forward(acc, other)
        ctx[op.outputs[0].name] = acc

    def _k_softmax(self, op: OpSpec, args, ctx) -> None:
        mask = None
        if len(args) == 2:
            # Additive attention mask over (j, k); broadcast to (h, b, j, k).
            mask = args[1]
        ctx[op.outputs[0].name] = softmax_forward(
            args[0], axis=-1, scale=self._softmax_scale(), mask=mask
        )

    def _k_softmax_dx(self, op: OpSpec, args, ctx) -> None:
        dy, y = args[0], args[1]
        ctx[op.outputs[0].name] = softmax_backward(
            dy, y, axis=-1, scale=self._softmax_scale()
        )

    def _k_layernorm(self, op: OpSpec, args, ctx) -> None:
        x, g, b = args[0], args[1], args[2]
        y, _, _ = layernorm_forward(x, g, b, axis=0)
        ctx[op.outputs[0].name] = y

    def _k_layernorm_dx(self, op: OpSpec, args, ctx) -> None:
        dy, x, g = args[0], args[1], args[2]
        mean = x.mean(axis=0, keepdims=True)
        inv_std = 1.0 / np.sqrt(x.var(axis=0, keepdims=True) + 1e-5)
        ctx[op.outputs[0].name] = layernorm_backward_dx(dy, x, g, mean, inv_std, axis=0)

    def _k_layernorm_dw(self, op: OpSpec, args, ctx) -> None:
        dy, x = args[0], args[1]
        mean = x.mean(axis=0, keepdims=True)
        inv_std = 1.0 / np.sqrt(x.var(axis=0, keepdims=True) + 1e-5)
        dg, db = layernorm_backward_dw(dy, x, mean, inv_std, axis=0)
        ctx[op.outputs[0].name] = dg
        ctx[op.outputs[1].name] = db

    @classmethod
    def _handlers(cls) -> dict[str, Callable]:
        return {
            "bias": cls._k_bias,
            "bias_dw": cls._k_bias_dw,
            "relu": cls._k_relu,
            "relu_dx": cls._k_relu_dx,
            "dropout": cls._k_dropout,
            "dropout_dx": cls._k_dropout_dx,
            "add": cls._k_add,
            "softmax": cls._k_softmax,
            "softmax_dx": cls._k_softmax_dx,
            "layernorm": cls._k_layernorm,
            "layernorm_dx": cls._k_layernorm_dx,
            "layernorm_dw": cls._k_layernorm_dw,
        }
