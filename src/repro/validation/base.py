"""The validation framework: issues, reports, and the validator contract.

One :class:`BaseValidator` subclass owns one *class* of invariant —
structural well-formedness, bit-exact cost agreement, version freshness —
and turns violations into :class:`ValidationIssue` values rather than
exceptions.  A corrupt or stale entry must produce an actionable report
(what is wrong, where, and what to do about it), never a stack trace:
``repro validate --all`` has to keep scanning past the first bad entry,
and the daemon's background revalidation has to keep serving.

Severities: ``ERROR`` fails validation; ``WARNING`` passes but flags
something an operator should look at (e.g. provenance citing sweeps the
active store no longer holds); ``INFO`` records a deliberate skip (e.g.
the cost validator declining to recompute under a drifted model version —
that drift is the staleness validator's finding, and double-reporting it
as a cost mismatch would misdiagnose tampering).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.configsel.selector import TransposeInsertion
from repro.hardware.cost_model import CostModel
from repro.ir.dims import DimEnv
from repro.ir.graph import DataflowGraph
from repro.layouts.layout import Layout
from repro.registry.entry import (
    EntryError,
    ScheduleEntry,
    _gpu_from_entry,
    _layout_from_wire,
)

__all__ = [
    "BaseValidator",
    "Severity",
    "ValidationContext",
    "ValidationError",
    "ValidationIssue",
    "ValidationReport",
]


class ValidationError(ValueError):
    """An entry too malformed to even contextualize (no graph to check)."""


class Severity(enum.IntEnum):
    """Issue severities, ordered so ``max()`` picks the worst."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:  # "error", not "Severity.ERROR", in reports
        return self.name.lower()


@dataclass(frozen=True)
class ValidationIssue:
    """One finding: which validator, what rule, where, and the story."""

    severity: Severity
    validator: str
    code: str
    message: str
    op: str | None = None

    def render(self) -> str:
        where = f" [{self.op}]" if self.op else ""
        return f"{self.severity}({self.validator}/{self.code}){where}: {self.message}"


@dataclass
class ValidationReport:
    """Everything the validators found about one entry."""

    digest: str
    issues: list[ValidationIssue] = field(default_factory=list)
    validators: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Valid means *no errors* — warnings and infos don't fail."""
        return all(i.severity is not Severity.ERROR for i in self.issues)

    def errors(self) -> list[ValidationIssue]:
        return [i for i in self.issues if i.severity is Severity.ERROR]

    def warnings(self) -> list[ValidationIssue]:
        return [i for i in self.issues if i.severity is Severity.WARNING]

    def by_validator(self, name: str) -> list[ValidationIssue]:
        return [i for i in self.issues if i.validator == name]

    def extend(self, issues) -> None:
        self.issues.extend(issues)

    def summary(self) -> str:
        """Human-readable multi-line report (the CLI's output body)."""
        verdict = "PASS" if self.ok else "FAIL"
        lines = [
            f"{verdict} {self.digest} "
            f"({len(self.errors())} errors, {len(self.warnings())} warnings; "
            f"validators: {', '.join(self.validators) or 'none'})"
        ]
        lines += [f"  {i.render()}" for i in self.issues]
        return "\n".join(lines)

    def to_wire(self) -> dict:
        """JSON-able form (the service's ``/v1/register`` rejection body)."""
        return {
            "digest": self.digest,
            "ok": self.ok,
            "validators": list(self.validators),
            "issues": [
                {
                    "severity": str(i.severity),
                    "validator": i.validator,
                    "code": i.code,
                    "message": i.message,
                    "op": i.op,
                }
                for i in self.issues
            ],
        }


class ValidationContext:
    """Everything an entry claims, re-materialized once for all validators.

    Parsing happens here — graph, measurements, pins, transposes — so each
    validator checks semantics, not JSON.  A selection too malformed to
    parse surfaces as ``chosen_error`` (the structural validator reports
    it); the *graph* failing to build raises :class:`ValidationError`,
    because no validator can run without one.
    """

    def __init__(self, entry: ScheduleEntry, *, deep: bool = False) -> None:
        self.entry = entry
        self.deep = deep
        try:
            self.graph: DataflowGraph = entry.build_graph()
        except EntryError as exc:
            raise ValidationError(f"entry graph does not build: {exc}") from exc
        self.env = DimEnv({str(k): int(v) for k, v in entry.env.items()})
        try:
            self.cost = CostModel(_gpu_from_entry(entry.gpu))
        except EntryError as exc:
            raise ValidationError(f"entry GPU spec does not parse: {exc}") from exc

        self.chosen: dict = {}
        self.chosen_error: str | None = None
        try:
            self.chosen = entry.chosen_measurements()
        except EntryError as exc:
            self.chosen_error = str(exc)

        self.pinned: dict[str, Layout] = {}
        self.pinned_error: str | None = None
        try:
            for name, dims in entry.selection.get("pinned_layouts", {}).items():
                self.pinned[str(name)] = _layout_from_wire(
                    dims, f"selection.pinned_layouts[{name!r}]"
                )
        except EntryError as exc:
            self.pinned_error = str(exc)

        self.transposes: list[TransposeInsertion] = []
        self.transposes_error: str | None = None
        try:
            for i, w in enumerate(entry.selection.get("transposes", ())):
                where = f"selection.transposes[{i}]"
                if not isinstance(w, dict):
                    raise EntryError(f"{where} must be a JSON object")
                self.transposes.append(
                    TransposeInsertion(
                        tensor=str(w["tensor"]),
                        from_layout=_layout_from_wire(
                            w["from_layout"], f"{where}.from_layout"
                        ),
                        to_layout=_layout_from_wire(
                            w["to_layout"], f"{where}.to_layout"
                        ),
                        time_us=float(w["time_us"]),
                        before_op=str(w["before_op"]),
                    )
                )
        except (EntryError, KeyError, TypeError, ValueError) as exc:
            self.transposes_error = str(exc)


class BaseValidator:
    """One class of invariant; subclasses implement :meth:`validate`.

    ``validate`` returns issues, it never raises: anything a validator
    cannot check (missing fields, unparseable sections) is itself a
    finding.  The ``error``/``warning``/``info`` helpers stamp issues with
    the validator's name so merged reports stay attributable.
    """

    #: Stable identifier used in issue attribution and CLI filtering.
    name = "base"

    def validate(self, ctx: ValidationContext) -> list[ValidationIssue]:
        raise NotImplementedError

    # -- issue constructors --------------------------------------------------
    def error(self, code: str, message: str, *, op: str | None = None) -> ValidationIssue:
        return ValidationIssue(Severity.ERROR, self.name, code, message, op)

    def warning(self, code: str, message: str, *, op: str | None = None) -> ValidationIssue:
        return ValidationIssue(Severity.WARNING, self.name, code, message, op)

    def info(self, code: str, message: str, *, op: str | None = None) -> ValidationIssue:
        return ValidationIssue(Severity.INFO, self.name, code, message, op)
