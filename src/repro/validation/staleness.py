"""Staleness validation: does this entry still describe *this* software?

An entry is a claim about one cost model.  When ``COST_MODEL_VERSION``
bumps, every registered time is a statement about a model that no longer
runs — not corrupt, not wrong when written, just stale.  The paper-recipe
contract for that state (the sweep store's ``CacheMismatch`` discipline)
is: reject for use, report with a remedy, never crash and never silently
reuse.  This validator produces that report: which version the entry
speaks for, which is running, and the exact re-registration that refreshes
it (including the digest the refreshed entry will live under — a version
bump changes the content address, so the stale entry is orphaned, not
overwritten).

Softer drift is warned about rather than failed: provenance citing sweep
digests the active L2 store no longer holds means the schedule outlived
its evidence (still valid — cost validation re-derives everything — but an
operator should know the audit trail is broken).
"""

from __future__ import annotations

from repro.engine.store import get_sweep_store
from repro.hardware.params import active_cost_model_version
from repro.registry.entry import REGISTRY_FORMAT, schedule_digest

from .base import BaseValidator, ValidationContext, ValidationIssue

__all__ = ["StalenessValidator"]


class StalenessValidator(BaseValidator):
    """Version drift → an actionable report, not a crash."""

    name = "staleness"

    def validate(self, ctx: ValidationContext) -> list[ValidationIssue]:
        issues: list[ValidationIssue] = []
        entry = ctx.entry

        if entry.registry_format != REGISTRY_FORMAT:
            issues.append(
                self.error(
                    "registry-format",
                    f"entry uses registry format {entry.registry_format}, this "
                    f"build reads format {REGISTRY_FORMAT}; re-register it",
                )
            )

        served = active_cost_model_version()
        if entry.cost_model_version != served:
            knobs = entry.knobs
            fresh = schedule_digest(
                ctx.graph,
                ctx.env,
                ctx.cost.gpu,
                cap=knobs.get("cap"),
                seed=int(knobs.get("seed", 0)),
                source=str(knobs.get("source", "x")),
            )
            issues.append(
                self.error(
                    "cost-model-version",
                    f"entry was registered under cost-model version "
                    f"{entry.cost_model_version!r}; the served model is version "
                    f"{served!r}, so its claimed times no longer "
                    f"describe this software. Re-tune and re-register this "
                    f"schedule; under the current model it will live at digest "
                    f"{fresh} (the stale entry is orphaned, not overwritten).",
                )
            )

        issues.extend(self._check_provenance(ctx))
        return issues

    def _check_provenance(self, ctx) -> list[ValidationIssue]:
        issues: list[ValidationIssue] = []
        prov = ctx.entry.provenance
        sweeps = prov.get("sweeps")
        if not isinstance(sweeps, dict) or not sweeps:
            issues.append(
                self.warning(
                    "provenance-missing",
                    "entry carries no sweep provenance; the selection cannot "
                    "be traced back to its L2 sweep artifacts",
                )
            )
            return issues
        uncited = sorted(
            op.name
            for op in ctx.graph.ops
            if not op.is_view and op.name not in sweeps
        )
        if uncited:
            issues.append(
                self.warning(
                    "provenance-incomplete",
                    f"provenance cites no sweep digest for {uncited}",
                )
            )
        store = get_sweep_store()
        if store is not None:
            # Stale provenance only matters against a version-matched store:
            # a bumped model orphans every sweep anyway (already reported).
            missing = sorted(
                name
                for name, digest in sweeps.items()
                if isinstance(digest, str) and digest not in store
            )
            if missing:
                issues.append(
                    self.warning(
                        "provenance-orphaned",
                        f"{len(missing)} of {len(sweeps)} cited sweep digests "
                        f"are absent from the active store ({missing[:5]}"
                        f"{'…' if len(missing) > 5 else ''}); the schedule "
                        f"outlived its sweep evidence",
                    )
                )
        return issues
