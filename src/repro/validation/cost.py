"""Cost validation: every claimed microsecond recomputes bit-exactly.

The cost model is deterministic — same operator, configuration, sizes and
GPU always produce the same ``KernelTime``, jitter included — so a stored
time that differs from a fresh :meth:`~repro.hardware.cost_model.CostModel
.time_op` call *at all* means the entry was edited or the model changed
underneath it.  Equality here is ``==`` on floats, never a tolerance: the
selection pipelines are bit-identical by contract, and the registry
inherits that bar.

Three layers, cheapest first:

* **per-kernel**: each chosen configuration's compute/memory/launch splits
  against a fresh scalar-reference ``time_op`` call, and each recorded
  transpose against ``time_transpose``;
* **totals**: the claimed ``total_us``/``transpose_us`` against the
  ordered float sums of the stored parts (assignment order is preserved in
  the entry wire precisely so this sum associates identically);
* **deep** (``deep=True``): configuration selection re-run from scratch —
  through BOTH the vectorized layered path and the retained scalar
  reference — must land on the same chosen configurations, chain cost and
  end-to-end total as the entry claims.

Under a drifted ``COST_MODEL_VERSION`` recomputation is *skipped* with an
INFO issue: the times legitimately describe an older model, which is the
staleness validator's finding — re-deriving them here would misreport
version drift as tampering.
"""

from __future__ import annotations

from repro.hardware.params import active_cost_model_version

from .base import BaseValidator, ValidationContext, ValidationIssue

__all__ = ["CostValidator"]


class CostValidator(BaseValidator):
    """Claimed total == recomputed total, bit-exact."""

    name = "cost"

    def validate(self, ctx: ValidationContext) -> list[ValidationIssue]:
        served = active_cost_model_version()
        if ctx.entry.cost_model_version != served:
            return [
                self.info(
                    "recompute-skipped",
                    f"entry was costed under model version "
                    f"{ctx.entry.cost_model_version!r}, the served model is "
                    f"{served!r}; skipping recomputation (see the "
                    f"staleness report)",
                )
            ]
        if ctx.chosen_error is not None:
            return []  # structural owns unparseable selections
        issues: list[ValidationIssue] = []
        issues.extend(self._check_kernels(ctx))
        issues.extend(self._check_transposes(ctx))
        issues.extend(self._check_totals(ctx))
        if ctx.deep and not issues:
            issues.extend(self._check_reselect(ctx))
        return issues

    # -- per-kernel recomputation ---------------------------------------------
    def _check_kernels(self, ctx) -> list[ValidationIssue]:
        issues: list[ValidationIssue] = []
        for name, m in ctx.chosen.items():
            try:
                op = ctx.graph.op(name)
            except KeyError:
                continue  # structural reports unknown ops
            kt = ctx.cost.time_op(op, m.config, ctx.env)
            if kt is None:
                issues.append(
                    self.error(
                        "config-uncostable",
                        f"the cost model maps no kernel for the stored "
                        f"configuration (not GEMM-mappable?)",
                        op=name,
                    )
                )
                continue
            stored = m.time
            for field in ("compute_us", "memory_us", "launch_us"):
                claimed = getattr(stored, field)
                fresh = getattr(kt, field)
                if claimed != fresh:
                    issues.append(
                        self.error(
                            "kernel-time-drift",
                            f"stored {field} {claimed!r} != recomputed "
                            f"{fresh!r} (scalar reference)",
                            op=name,
                        )
                    )
        return issues

    def _check_transposes(self, ctx) -> list[ValidationIssue]:
        issues: list[ValidationIssue] = []
        if ctx.transposes_error is not None:
            return issues
        for i, t in enumerate(ctx.transposes):
            try:
                spec = ctx.graph.container(t.tensor)
            except KeyError:
                continue
            fresh = ctx.cost.time_transpose(spec, ctx.env).total_us
            if t.time_us != fresh:
                issues.append(
                    self.error(
                        "transpose-time-drift",
                        f"transposes[{i}] of {t.tensor!r} claims "
                        f"{t.time_us!r} us, recomputed {fresh!r} us",
                        op=t.before_op,
                    )
                )
        return issues

    # -- ordered totals -------------------------------------------------------
    def _check_totals(self, ctx) -> list[ValidationIssue]:
        issues: list[ValidationIssue] = []
        sel = ctx.entry.selection
        transpose_sum = sum(t.time_us for t in ctx.transposes)
        claimed_transpose = float(sel.get("transpose_us", 0.0))
        if claimed_transpose != transpose_sum:
            issues.append(
                self.error(
                    "transpose-total-drift",
                    f"claimed transpose_us {claimed_transpose!r} != ordered "
                    f"sum of recorded transposes {transpose_sum!r}",
                )
            )
        # The same association the selector uses: chosen totals in
        # assignment order, then the transpose sum.
        total = sum(m.total_us for m in ctx.chosen.values()) + transpose_sum
        claimed_total = float(sel.get("total_us", 0.0))
        if claimed_total != total:
            issues.append(
                self.error(
                    "total-drift",
                    f"claimed total_us {claimed_total!r} != recomputed ordered "
                    f"sum {total!r}",
                )
            )
        return issues

    # -- deep: full reselection through both pipelines ------------------------
    def _check_reselect(self, ctx) -> list[ValidationIssue]:
        from repro.configsel.selector import select_configurations
        from repro.engine import sweep_graph

        issues: list[ValidationIssue] = []
        knobs = ctx.entry.knobs
        cap = knobs.get("cap")
        seed = int(knobs.get("seed", 0x5EED))
        source = str(knobs.get("source", "x"))
        sweeps = sweep_graph(ctx.graph, ctx.env, ctx.cost, cap=cap, seed=seed)
        for fast, label in ((True, "fast layered"), (False, "scalar reference")):
            sel = select_configurations(
                ctx.graph,
                ctx.env,
                ctx.cost,
                sweeps=sweeps,
                source=source,
                cap=cap,
                fast=fast,
            )
            if sel.total_us != ctx.entry.total_us:
                issues.append(
                    self.error(
                        "reselect-total-drift",
                        f"{label} reselection totals {sel.total_us!r} us, entry "
                        f"claims {ctx.entry.total_us!r} us",
                    )
                )
            claimed_chain = float(ctx.entry.selection.get("chain_cost_us", 0.0))
            if sel.chain_cost_us != claimed_chain:
                issues.append(
                    self.error(
                        "reselect-chain-drift",
                        f"{label} reselection chain cost {sel.chain_cost_us!r} "
                        f"us, entry claims {claimed_chain!r} us",
                    )
                )
            for name, m in sel.chosen.items():
                stored = ctx.chosen.get(name)
                if stored is not None and stored.config != m.config:
                    issues.append(
                        self.error(
                            "reselect-config-drift",
                            f"{label} reselection chooses a different "
                            f"configuration than the entry stores",
                            op=name,
                        )
                    )
        return issues
