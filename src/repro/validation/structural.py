"""Structural validation: the selection is a well-formed schedule.

Checks shape, not time.  A structurally valid entry assigns exactly one
configuration to every computational operator, every assigned layout is a
real permutation of its operand's dims (with vector/warp knobs drawn from
the operator's iteration space), every recorded transpose connects two
distinct layouts of an existing tensor and lands on the layout its
consumer actually runs with, and every operand that departs from its
tensor's pinned layout is paid for by exactly such a transpose — the
pin-coherence rule that makes the schedule executable edge by edge.

The pin is the coherence anchor: selection pins each tensor to one layout
(the SSSP boundary decision for chain inputs, first-come elsewhere) and
records an explicit :class:`~repro.configsel.selector.TransposeInsertion`
whenever a chosen configuration deviates.  So "operand layouts coherent
across every edge" reduces to: *deviating operand ⇒ matching transpose*,
and *every pin is realized by some chosen configuration* (a pin nothing
uses is a mutated or orphaned pin).
"""

from __future__ import annotations

from repro.ir.operator import OpClass, OpSpec
from repro.layouts.config import HEURISTIC_ALGORITHM, NUM_GEMM_ALGORITHMS
from repro.layouts.layout import Layout

from .base import BaseValidator, ValidationContext, ValidationIssue

__all__ = ["StructuralValidator"]


def _operand_layouts(op: OpSpec, config):
    yield from zip(op.inputs, config.input_layouts)
    yield from zip(op.outputs, config.output_layouts)


class StructuralValidator(BaseValidator):
    """Every op assigned, every edge coherent, no dangling transposes."""

    name = "structural"

    def validate(self, ctx: ValidationContext) -> list[ValidationIssue]:
        issues: list[ValidationIssue] = []
        if ctx.chosen_error is not None:
            issues.append(self.error("selection-unparseable", ctx.chosen_error))
            return issues
        if ctx.pinned_error is not None:
            issues.append(self.error("pins-unparseable", ctx.pinned_error))
            return issues
        if ctx.transposes_error is not None:
            issues.append(self.error("transposes-unparseable", ctx.transposes_error))
            return issues

        graph = ctx.graph
        expected = {op.name for op in graph.ops if not op.is_view}
        assigned = set(ctx.chosen)

        for name in sorted(expected - assigned):
            issues.append(
                self.error(
                    "unassigned-op",
                    f"operator {name!r} has no chosen configuration",
                    op=name,
                )
            )
        for name in sorted(assigned - expected):
            view = any(op.name == name and op.is_view for op in graph.ops)
            what = "a view (views take no configuration)" if view else "not in the graph"
            issues.append(
                self.error(
                    "unknown-op",
                    f"selection assigns a configuration to {name!r}, which is {what}",
                    op=name,
                )
            )

        for name in sorted(assigned & expected):
            issues.extend(self._check_assignment(ctx, graph.op(name), ctx.chosen[name]))

        issues.extend(self._check_chain(ctx))
        issues.extend(self._check_transposes(ctx))
        issues.extend(self._check_pins(ctx))
        issues.extend(self._check_edge_coherence(ctx))
        return issues

    # -- per-assignment well-formedness --------------------------------------
    def _check_assignment(self, ctx, op: OpSpec, m) -> list[ValidationIssue]:
        issues: list[ValidationIssue] = []
        cfg = m.config
        if cfg.op_name != op.name:
            issues.append(
                self.error(
                    "config-op-mismatch",
                    f"configuration is named for {cfg.op_name!r}",
                    op=op.name,
                )
            )
        if len(cfg.input_layouts) != len(op.inputs) or len(cfg.output_layouts) != len(
            op.outputs
        ):
            issues.append(
                self.error(
                    "config-arity",
                    f"configuration carries {len(cfg.input_layouts)} input / "
                    f"{len(cfg.output_layouts)} output layouts for an operator "
                    f"with {len(op.inputs)} inputs / {len(op.outputs)} outputs",
                    op=op.name,
                )
            )
            return issues  # operand-wise checks would misalign
        for t, layout in _operand_layouts(op, cfg):
            if not layout.matches(t):
                issues.append(
                    self.error(
                        "layout-dims",
                        f"layout {layout.dims} is not a permutation of operand "
                        f"{t.name!r} dims {t.dims}",
                        op=op.name,
                    )
                )
        if op.op_class is not OpClass.TENSOR_CONTRACTION:
            if cfg.vector_dim is not None and cfg.vector_dim not in op.ispace.all_dims:
                issues.append(
                    self.error(
                        "vector-dim",
                        f"vector dim {cfg.vector_dim!r} is outside the iteration "
                        f"space {tuple(op.ispace.all_dims)}",
                        op=op.name,
                    )
                )
            if (
                cfg.warp_reduce_dim is not None
                and cfg.warp_reduce_dim not in op.ispace.reduction
            ):
                issues.append(
                    self.error(
                        "warp-dim",
                        f"warp-reduce dim {cfg.warp_reduce_dim!r} is not a "
                        f"reduction dim {tuple(op.ispace.reduction)}",
                        op=op.name,
                    )
                )
        if not (
            cfg.algorithm == HEURISTIC_ALGORITHM
            or 0 <= cfg.algorithm < NUM_GEMM_ALGORITHMS
        ):
            issues.append(
                self.error(
                    "algorithm-range",
                    f"GEMM algorithm index {cfg.algorithm} out of range",
                    op=op.name,
                )
            )
        return issues

    # -- the chain ------------------------------------------------------------
    def _check_chain(self, ctx) -> list[ValidationIssue]:
        issues: list[ValidationIssue] = []
        chain = ctx.entry.selection.get("chain", ())
        for name in chain:
            if str(name) not in ctx.chosen:
                issues.append(
                    self.error(
                        "chain-unassigned",
                        f"chain operator {name!r} has no chosen configuration",
                        op=str(name),
                    )
                )
        return issues

    # -- transposes -----------------------------------------------------------
    def _check_transposes(self, ctx) -> list[ValidationIssue]:
        issues: list[ValidationIssue] = []
        for t in ctx.transposes:
            try:
                spec = ctx.graph.container(t.tensor)
            except KeyError:
                issues.append(
                    self.error(
                        "transpose-unknown-tensor",
                        f"transpose names tensor {t.tensor!r}, which the graph "
                        f"does not contain",
                        op=t.before_op,
                    )
                )
                continue
            if t.from_layout == t.to_layout:
                issues.append(
                    self.error(
                        "transpose-identity",
                        f"transpose of {t.tensor!r} maps {t.from_layout.dims} to "
                        f"itself (a dangling no-op kernel)",
                        op=t.before_op,
                    )
                )
            for which, layout in (("from", t.from_layout), ("to", t.to_layout)):
                if not layout.matches(spec):
                    issues.append(
                        self.error(
                            "transpose-layout-dims",
                            f"transpose {which}-layout {layout.dims} is not a "
                            f"permutation of {t.tensor!r} dims {spec.dims}",
                            op=t.before_op,
                        )
                    )
            consumer = ctx.chosen.get(t.before_op)
            if consumer is None:
                issues.append(
                    self.error(
                        "transpose-dangling",
                        f"transpose of {t.tensor!r} is placed before "
                        f"{t.before_op!r}, which has no chosen configuration",
                        op=t.before_op,
                    )
                )
                continue
            try:
                op = ctx.graph.op(t.before_op)
            except KeyError:
                continue  # already reported as unknown-op
            slots = [
                layout
                for spec_t, layout in _operand_layouts(op, consumer.config)
                if spec_t.name == t.tensor
            ]
            if not slots:
                issues.append(
                    self.error(
                        "transpose-dangling",
                        f"transpose of {t.tensor!r} is placed before "
                        f"{t.before_op!r}, which never touches that tensor",
                        op=t.before_op,
                    )
                )
            elif t.to_layout not in slots:
                issues.append(
                    self.error(
                        "transpose-endpoint",
                        f"transpose delivers {t.tensor!r} in layout "
                        f"{t.to_layout.dims}, but {t.before_op!r} runs it in "
                        f"{[s.dims for s in slots]}",
                        op=t.before_op,
                    )
                )
        return issues

    # -- pinned layouts -------------------------------------------------------
    def _check_pins(self, ctx) -> list[ValidationIssue]:
        issues: list[ValidationIssue] = []
        realized: dict[str, set[tuple[str, ...]]] = {}
        for name, m in ctx.chosen.items():
            try:
                op = ctx.graph.op(name)
            except KeyError:
                continue
            for t, layout in _operand_layouts(op, m.config):
                realized.setdefault(t.name, set()).add(layout.dims)
        for tensor, pin in sorted(ctx.pinned.items()):
            try:
                spec = ctx.graph.container(tensor)
            except KeyError:
                issues.append(
                    self.error(
                        "pin-unknown-tensor",
                        f"pinned layout names tensor {tensor!r}, which the graph "
                        f"does not contain",
                    )
                )
                continue
            if not pin.matches(spec):
                issues.append(
                    self.error(
                        "pin-layout-dims",
                        f"pinned layout {pin.dims} is not a permutation of "
                        f"{tensor!r} dims {spec.dims}",
                    )
                )
                continue
            used = realized.get(tensor, set())
            if used and pin.dims not in used:
                issues.append(
                    self.error(
                        "pin-unrealized",
                        f"tensor {tensor!r} is pinned to {pin.dims}, but no "
                        f"chosen configuration runs it in that layout "
                        f"(seen: {sorted(used)})",
                    )
                )
        return issues

    # -- edge coherence -------------------------------------------------------
    def _check_edge_coherence(self, ctx) -> list[ValidationIssue]:
        """Deviating operand ⇒ matching recorded transpose.

        Selection's contract: each tensor's pinned layout is the layout it
        materializes in, and any chosen configuration accessing it in a
        different layout is bridged by an explicit transpose — either a
        consumer-side one delivering the tensor *to* this operator in its
        layout, or a producer-side one carrying this operator's layout
        *back to* the pin (the chain's arrival→consumed transposes, which
        sit before the downstream consumer while it is the upstream
        producer that deviates).  A deviation bridged by neither is an
        incoherent edge — the kernel would read data in an order it was
        never stored in.
        """
        issues: list[ValidationIssue] = []
        by_consumer: dict[tuple[str, str], set[tuple[str, ...]]] = {}
        outbound: dict[str, set[tuple[tuple[str, ...], tuple[str, ...]]]] = {}
        for t in ctx.transposes:
            by_consumer.setdefault((t.tensor, t.before_op), set()).add(
                t.to_layout.dims
            )
            outbound.setdefault(t.tensor, set()).add(
                (t.from_layout.dims, t.to_layout.dims)
            )
        for name, m in sorted(ctx.chosen.items()):
            try:
                op = ctx.graph.op(name)
            except KeyError:
                continue
            if len(m.config.input_layouts) != len(op.inputs) or len(
                m.config.output_layouts
            ) != len(op.outputs):
                continue  # arity already reported; operand zip would misalign
            for t, layout in _operand_layouts(op, m.config):
                pin = ctx.pinned.get(t.name)
                if pin is None or layout == pin:
                    continue
                delivered = layout.dims in by_consumer.get((t.name, name), set())
                carried_back = (layout.dims, pin.dims) in outbound.get(
                    t.name, set()
                )
                if not delivered and not carried_back:
                    issues.append(
                        self.error(
                            "edge-incoherent",
                            f"{name!r} runs {t.name!r} in layout {layout.dims} "
                            f"while the tensor is pinned to {pin.dims}, and no "
                            f"recorded transpose bridges the edge",
                            op=name,
                        )
                    )
        return issues
