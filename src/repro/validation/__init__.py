"""Layered validation of registered schedules: trust nothing, re-derive.

A registry entry is a *claim* — this configuration assignment is
well-formed, costs exactly this much under exactly this cost-model
version.  Each validator re-derives one layer of that claim:

==============  ===========================================================
validator       catches
==============  ===========================================================
``structural``  unassigned/unknown operators, layouts that aren't
                permutations of their operand's dims, out-of-space
                vector/warp knobs, dangling or endpoint-mismatched
                transposes, pinned layouts nothing realizes, operand
                layouts that deviate from their tensor's pin with no
                bridging transpose (incoherent edges)
``cost``        any stored compute/memory/launch split or transpose time
                that differs — bit-exact — from a fresh scalar-reference
                recomputation; claimed totals that aren't the ordered sum
                of their parts; under ``deep=True``, full reselection
                through both the fast layered path and the scalar
                reference disagreeing with the entry
``staleness``   ``COST_MODEL_VERSION`` / registry-format drift (an
                actionable re-register report, never a crash), provenance
                citing sweeps the active L2 store no longer holds
==============  ===========================================================

:func:`validate_entry` runs them all and merges one
:class:`~repro.validation.base.ValidationReport`; issues stay attributed
to their validator, so tests can assert a seeded violation is caught by
exactly the right one.
"""

from __future__ import annotations

from repro.registry.entry import ScheduleEntry

from .base import (
    BaseValidator,
    Severity,
    ValidationContext,
    ValidationError,
    ValidationIssue,
    ValidationReport,
)
from .cost import CostValidator
from .staleness import StalenessValidator
from .structural import StructuralValidator

__all__ = [
    "BaseValidator",
    "CostValidator",
    "DEFAULT_VALIDATORS",
    "Severity",
    "StalenessValidator",
    "StructuralValidator",
    "ValidationContext",
    "ValidationError",
    "ValidationIssue",
    "ValidationReport",
    "validate_entry",
]

#: The standard stack, cheapest first.
DEFAULT_VALIDATORS: tuple[BaseValidator, ...] = (
    StructuralValidator(),
    CostValidator(),
    StalenessValidator(),
)


def validate_entry(
    entry: ScheduleEntry,
    *,
    deep: bool = False,
    validators: tuple[BaseValidator, ...] | None = None,
) -> ValidationReport:
    """Run the validator stack over one entry and merge the findings.

    ``deep=True`` additionally re-runs configuration selection end to end
    (both pipelines) inside the cost validator — expensive, but the
    strongest possible attestation.  An entry whose graph cannot even be
    rebuilt yields a single-error report rather than raising: callers
    (``repro validate --all``, the daemon's revalidation loop) must keep
    scanning.
    """
    stack = DEFAULT_VALIDATORS if validators is None else validators
    report = ValidationReport(digest=entry.digest)
    try:
        ctx = ValidationContext(entry, deep=deep)
    except ValidationError as exc:
        report.validators = [v.name for v in stack]
        report.issues.append(
            ValidationIssue(
                Severity.ERROR, "structural", "graph-unbuildable", str(exc)
            )
        )
        return report
    for v in stack:
        report.validators.append(v.name)
        report.extend(v.validate(ctx))
    return report
