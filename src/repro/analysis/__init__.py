"""Table and figure generators for the paper's evaluation section."""

from .figures import (
    ContractionTile,
    DataflowAnnotation,
    fig1_mha_dataflow,
    fig2_encoder_dataflow,
    fig4_contraction_tiles,
    fig5_fused_kernels,
    fig6_config_graph_stats,
)
from .calibration import (
    CalibrationReport,
    CalibrationRow,
    PAPER_TABLE3_US,
    audit_calibration,
)
from .memory import MemoryFootprint, graph_footprint
from .sensitivity import (
    SensitivityPoint,
    attention_ffn_crossover,
    sweep_problem_sizes,
)
from .report import format_framework_table, format_table1, format_table2, format_table3
from .savings import (
    BERT_AWS_COST_USD,
    GPT3_COST_USD,
    GPT3_ENERGY_MWH,
    SavingsEstimate,
    estimate_savings,
)
from .tables import (
    GFLOP,
    TABLE3_ROWS,
    Table1Row,
    Table3Row,
    data_movement_reduction_report,
    table1,
    table2,
    table3,
    table4,
    table5,
)

__all__ = [
    "BERT_AWS_COST_USD",
    "CalibrationReport",
    "CalibrationRow",
    "MemoryFootprint",
    "PAPER_TABLE3_US",
    "SensitivityPoint",
    "attention_ffn_crossover",
    "audit_calibration",
    "graph_footprint",
    "sweep_problem_sizes",
    "ContractionTile",
    "DataflowAnnotation",
    "GFLOP",
    "GPT3_COST_USD",
    "GPT3_ENERGY_MWH",
    "SavingsEstimate",
    "TABLE3_ROWS",
    "Table1Row",
    "Table3Row",
    "data_movement_reduction_report",
    "estimate_savings",
    "fig1_mha_dataflow",
    "fig2_encoder_dataflow",
    "fig4_contraction_tiles",
    "fig5_fused_kernels",
    "fig6_config_graph_stats",
    "format_framework_table",
    "format_table1",
    "format_table2",
    "format_table3",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
]
