"""Generators for the paper's Tables I-V.

Each function returns plain data structures (dataclasses / dicts) that the
benchmark harness prints in the paper's row format.  Flop is reported in
binary Gflop (2^30) and IO in decimal megawords — the units Table III uses
(e.g. the stacked Q/K/V projection is 25.77e9 flop = 24.0 binary Gflop and
its inputs are 7.34e6 words = "7.3").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.frameworks import cudnn_mha_times, framework_schedule
from repro.baselines.policy import ALL_FRAMEWORKS, OURS, PYTORCH
from repro.baselines.schedule import Schedule
from repro.fusion.algebraic import table2_sweep
from repro.hardware.cost_model import CostModel
from repro.ir.dims import DimEnv
from repro.ir.operator import OpClass

__all__ = [
    "GFLOP",
    "Table1Row",
    "Table3Row",
    "table1",
    "table2",
    "table3",
    "TABLE3_ROWS",
    "table4",
    "table5",
    "data_movement_reduction_report",
]

#: The paper's Gflop unit (Table III numbers match 2^30, not 1e9).
GFLOP = 2.0**30


# ---------------------------------------------------------------------------
# Table I — operator class proportions under PyTorch
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Table1Row:
    op_class: OpClass
    flop_fraction: float
    runtime_fraction: float


def table1(env: DimEnv, cost: CostModel | None = None) -> list[Table1Row]:
    """Proportions of flop and runtime per operator class in PyTorch.

    Paper values: contractions 99.80% flop / 61.0% runtime; statistical
    normalizations 0.17% / 25.5%; element-wise 0.03% / 13.5%.
    """
    cost = cost or CostModel()
    schedule = framework_schedule(PYTORCH, env, cost, model="encoder")
    flop_by_class: dict[OpClass, float] = {}
    for k in schedule.kernels:
        flop_by_class[k.op.op_class] = flop_by_class.get(k.op.op_class, 0.0) + k.flop
    runtime_by_class = schedule.class_runtime()
    total_flop = sum(flop_by_class.values())
    total_runtime = sum(runtime_by_class.values())
    rows = []
    for cls in (OpClass.TENSOR_CONTRACTION, OpClass.STAT_NORMALIZATION, OpClass.ELEMENTWISE):
        rows.append(
            Table1Row(
                op_class=cls,
                flop_fraction=flop_by_class.get(cls, 0.0) / total_flop,
                runtime_fraction=runtime_by_class.get(cls, 0.0) / total_runtime,
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Table II — algebraic fusion of Q/K/V
# ---------------------------------------------------------------------------

def table2(env: DimEnv, cost: CostModel | None = None) -> dict[str, dict[str, float]]:
    """Algebraic-fusion timings in µs, rows 'forward'/'backward'.

    Paper: forward 345 / 294 / 275, backward 342 / 312 / 291 (unfused /
    QK fused / QKV fused).
    """
    res = table2_sweep(env, cost)
    return {
        "forward": {v: r.forward_us for v, r in res.items()},
        "backward": {v: r.backward_us for v, r in res.items()},
    }


# ---------------------------------------------------------------------------
# Table III — per-operator breakdown, PyTorch vs Ours
# ---------------------------------------------------------------------------

#: Table III rows: (label, PyTorch unfused op names, Ours kernel name).
#: Ours kernel names are the fused kernel labels where fusion applies and
#: the original operator names for contractions / singleton kernels.
TABLE3_ROWS: tuple[tuple[str, tuple[str, ...], str], ...] = (
    ("Q, K, V", ("qkv_proj",), "qkv_proj"),
    ("Input bias", ("input_bias_q", "input_bias_k", "input_bias_v"), "AIB"),
    ("QK^T", ("qkt",), "qkt"),
    ("Scaled softmax", ("softmax", "attn_dropout"), "SM"),
    ("Gamma", ("gamma",), "gamma"),
    ("Out", ("attn_out",), "attn_out"),
    (
        "Output bias+Dropout+Residual+LayerNorm",
        ("attn_out_bias", "attn_resid_dropout", "residual1", "ln1"),
        "BDRLN1",
    ),
    ("Linear (1)", ("linear1",), "linear1"),
    ("Bias+ReLU+Dropout", ("linear1_bias", "relu", "ffn_dropout"), "BRD"),
    ("Linear (2)", ("linear2",), "linear2"),
    (
        "Bias+Dropout+Residual+LayerNorm",
        ("linear2_bias", "ffn_resid_dropout", "residual2", "ln2"),
        "BDRLN2",
    ),
    ("LayerNorm dW", ("ln2_dw",), "ln2_dw"),
    ("LayerNorm dX + Dropout dX", ("ln2_dx", "ffn_resid_dropout_dx"), "BLNRD2"),
    ("Linear+Bias dX (2)", ("linear2_dx",), "linear2_dx"),
    ("Linear dW (2)", ("linear2_dw",), "linear2_dw"),
    (
        "Bias dW+Dropout dX+ReLU dX+Bias dW",
        ("linear2_bias_dw", "ffn_dropout_dx", "relu_dx", "linear1_bias_dw"),
        "BDRB",
    ),
    ("Linear+Bias dX (1)", ("linear1_dx",), "linear1_dx"),
    ("Linear dW (1)", ("linear1_dw",), "linear1_dw"),
    ("Residual + LayerNorm dW", ("residual2_grad", "ln1_dw"), "EBSB"),
    ("LayerNorm dX + Dropout dX (1)", ("ln1_dx", "attn_resid_dropout_dx"), "BLNRD1"),
    ("Output bias dW", ("attn_out_bias_dw",), "attn_out_bias_dw"),
    ("Out dX", ("attn_out_dx",), "attn_out_dx"),
    ("Out dW", ("attn_out_dw",), "attn_out_dw"),
    ("Gamma dX1", ("gamma_dx1",), "gamma_dx1"),
    ("Gamma dX2", ("gamma_dx2",), "gamma_dx2"),
    ("Scaled softmax dX", ("attn_dropout_dx", "softmax_dx"), "BS"),
    ("QKT dX1", ("qkt_dx1",), "qkt_dx1"),
    ("QKT dX2", ("qkt_dx2",), "qkt_dx2"),
    ("Q, K, V dX", ("qkv_proj_dx",), "qkv_proj_dx"),
    ("Q, K, V dW", ("qkv_proj_dw",), "qkv_proj_dw"),
    (
        "Input bias dW",
        ("input_bias_q_dw", "input_bias_k_dw", "input_bias_v_dw"),
        "BAIB",
    ),
    ("Residual (encoder input)", ("encoder_input_grad",), "encoder_input_grad"),
)


@dataclass(frozen=True)
class Table3Row:
    label: str
    marker: str
    gflop: float
    input_mwords: float
    output_mwords: float
    pt_time_us: float
    pt_percent_peak: float
    ours_time_us: float
    ours_percent_peak: float
    ours_mue: float
    speedup: float
    kernel: str


def table3(
    env: DimEnv,
    cost: CostModel | None = None,
    *,
    cap: int | None = 600,
) -> tuple[list[Table3Row], dict[OpClass, dict[str, float]]]:
    """Per-operator flop/IO/time/MUE breakdown, PyTorch vs Ours.

    Returns the rows plus per-class totals ``{class: {pt_us, ours_us,
    speedup}}`` (the bottom block of Table III).
    """
    cost = cost or CostModel()
    pt = framework_schedule(PYTORCH, env, cost, model="encoder", cap=cap)
    ours = framework_schedule(OURS, env, cost, model="encoder", cap=cap)
    rows: list[Table3Row] = []
    for label, pt_ops, ours_kernel in TABLE3_ROWS:
        pt_kernels = [pt.kernel_by_name(n) for n in pt_ops]
        ok = ours.kernel_by_name(ours_kernel)
        gflop = sum(k.flop for k in pt_kernels) / GFLOP
        in_words = sum(k.op.input_words(env) for k in pt_kernels) / 1e6
        out_words = sum(k.op.output_words(env) for k in pt_kernels) / 1e6
        pt_time = sum(k.time_us for k in pt_kernels)
        pt_flop = sum(k.flop for k in pt_kernels)
        pt_pct = cost.percent_of_peak(pt_kernels[0].op, pt_flop, pt_time)
        rows.append(
            Table3Row(
                label=label,
                marker=pt_kernels[0].op.op_class.marker,
                gflop=gflop,
                input_mwords=in_words,
                output_mwords=out_words,
                pt_time_us=pt_time,
                pt_percent_peak=pt_pct,
                ours_time_us=ok.time_us,
                ours_percent_peak=ok.percent_peak,
                ours_mue=ok.mue,
                speedup=pt_time / ok.time_us,
                kernel=ok.kernel_label,
            )
        )

    # Class totals.  A fused kernel mixes classes (SM = softmax ⬜ +
    # dropout ○), so its time is attributed to member classes proportionally
    # to member IO — otherwise fusion would *reclassify* work and the
    # per-class speedups (paper: 1.12 / 1.29 / 1.49) would not be
    # like-for-like.
    def class_times(schedule: Schedule) -> dict[OpClass, float]:
        acc: dict[OpClass, float] = {c: 0.0 for c in OpClass}
        for k in schedule.kernels:
            members = k.op.members or (k.op,)
            weights = [max(m.io_bytes(env), 1) for m in members]
            total_w = sum(weights)
            for m, w in zip(members, weights):
                acc[m.op_class] += k.time_us * w / total_w
        return acc

    pt_by_class = class_times(pt)
    ours_by_class = class_times(ours)
    totals: dict[OpClass, dict[str, float]] = {}
    for cls in OpClass:
        pt_us = pt_by_class[cls]
        ours_us = ours_by_class[cls]
        totals[cls] = {
            "pt_us": pt_us,
            "ours_us": ours_us,
            "speedup": pt_us / ours_us if ours_us else float("nan"),
        }
    return rows, totals


# ---------------------------------------------------------------------------
# Tables IV and V — MHA and encoder end-to-end comparisons
# ---------------------------------------------------------------------------

def table4(env: DimEnv, cost: CostModel | None = None, *, cap: int | None = 600) -> dict[str, dict[str, float]]:
    """MHA forward/backward in ms per framework (plus cuDNN).

    Paper: fwd TF+XLA 1.60, PT 1.90, cuDNN 131, Ours 1.25;
           bwd 2.25, 2.77, 652, 1.86.
    """
    cost = cost or CostModel()
    out: dict[str, dict[str, float]] = {}
    for policy in ALL_FRAMEWORKS:
        s = framework_schedule(policy, env, cost, model="mha", cap=cap)
        out[policy.name] = {
            "forward_ms": s.stage_us(backward=False) / 1000.0,
            "backward_ms": s.stage_us(backward=True) / 1000.0,
        }
    c = cudnn_mha_times(env, cost)
    out["cuDNN"] = {
        "forward_ms": c.forward_us / 1000.0,
        "backward_ms": c.backward_us / 1000.0,
    }
    return out


def table5(env: DimEnv, cost: CostModel | None = None, *, cap: int | None = 600) -> dict[str, dict[str, float]]:
    """Encoder-layer forward/backward in ms per framework.

    Paper: fwd PT 3.45, TF+XLA 3.2, DS 2.8, Ours 2.63;
           bwd 5.69, 5.2, 4.8, 4.38.
    """
    cost = cost or CostModel()
    out: dict[str, dict[str, float]] = {}
    for policy in ALL_FRAMEWORKS:
        s = framework_schedule(policy, env, cost, model="encoder", cap=cap)
        out[policy.name] = {
            "forward_ms": s.stage_us(backward=False) / 1000.0,
            "backward_ms": s.stage_us(backward=True) / 1000.0,
            "total_ms": s.total_us / 1000.0,
        }
    return out


# ---------------------------------------------------------------------------
# Data-movement reduction (Sec. VI-C, ~22.91%)
# ---------------------------------------------------------------------------

def data_movement_reduction_report(env: DimEnv) -> dict[str, float]:
    """Words moved before/after fusion and the fractional reduction."""
    from repro.fusion.encoder_kernels import apply_paper_fusion
    from repro.ir.analysis import data_movement_reduction
    from repro.transformer.graph_builder import build_encoder_graph

    unfused = build_encoder_graph(qkv_fusion="qkv")
    fused = apply_paper_fusion(unfused, env)
    reduction = data_movement_reduction(unfused, fused, env)
    return {
        "unfused_mwords": unfused.total_io_words(env) / 1e6,
        "fused_mwords": fused.total_io_words(env) / 1e6,
        "reduction_fraction": reduction,
    }
