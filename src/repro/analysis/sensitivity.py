"""Sensitivity analysis: how the memory-bound picture moves with problem size.

The paper evaluates two (B, L) points — (8, 512) and (96, 128).  This
module sweeps batch size and sequence length to map the whole regime:

* attention cost scales as L² while the FFN scales as L, so the
  attention/FFN crossover moves with sequence length;
* the memory-bound runtime share shrinks as GEMMs grow (bigger batch), but
  never vanishes — the fusion win persists across the sweep.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.frameworks import framework_schedule
from repro.baselines.policy import OURS, PYTORCH
from repro.hardware.cost_model import CostModel
from repro.ir.dims import bert_large_dims
from repro.ir.operator import OpClass

__all__ = ["SensitivityPoint", "sweep_problem_sizes", "attention_ffn_crossover"]

#: Operators belonging to the attention part of the layer (vs the FFN part).
_ATTENTION_OPS = {
    "qkv_proj", "q_proj", "k_proj", "v_proj", "qk_proj", "AIB",
    "input_bias_q", "input_bias_k", "input_bias_v", "qkt", "SM", "softmax",
    "attn_dropout", "gamma", "attn_out", "attn_out_bias",
}


@dataclass(frozen=True)
class SensitivityPoint:
    """End-to-end metrics at one (batch, seq) configuration."""

    batch: int
    seq: int
    ours_ms: float
    pytorch_ms: float
    memory_bound_share: float  # fraction of Ours runtime outside contractions
    attention_share: float  # fraction of Ours *forward* time in attention ops

    @property
    def speedup(self) -> float:
        return self.pytorch_ms / self.ours_ms


def _measure(
    batch: int, seq: int, cost: CostModel, cap: int, jobs: int | None = None
) -> SensitivityPoint:
    env = bert_large_dims(batch=batch, seq=seq)
    ours = framework_schedule(OURS, env, cost, model="encoder", cap=cap, jobs=jobs)
    pt = framework_schedule(PYTORCH, env, cost, model="encoder", cap=cap, jobs=jobs)

    by_class = ours.class_runtime()
    total = sum(by_class.values())
    mem_share = 1.0 - by_class.get(OpClass.TENSOR_CONTRACTION, 0.0) / total

    fwd = [k for k in ours.kernels if not k.op.stage.is_backward]
    fwd_total = sum(k.time_us for k in fwd)
    attn = sum(k.time_us for k in fwd if k.name in _ATTENTION_OPS)
    return SensitivityPoint(
        batch=batch,
        seq=seq,
        ours_ms=ours.total_us / 1000.0,
        pytorch_ms=pt.total_us / 1000.0,
        memory_bound_share=mem_share,
        attention_share=attn / fwd_total if fwd_total else 0.0,
    )


def sweep_problem_sizes(
    *,
    batches: tuple[int, ...] = (2, 8, 32),
    seqs: tuple[int, ...] = (128, 512),
    cost: CostModel | None = None,
    cap: int = 200,
    jobs: int | None = None,
) -> list[SensitivityPoint]:
    """Measure Ours vs PyTorch across a (batch, seq) grid.

    Each grid point sweeps its graphs through the engine scheduler; the
    two-tier sweep cache makes repeated grids cheap and ``jobs``
    parallelizes the cold points' sweeps.
    """
    cost = cost or CostModel()
    return [_measure(b, s, cost, cap, jobs) for b in batches for s in seqs]


def attention_ffn_crossover(
    *,
    batch: int = 8,
    seqs: tuple[int, ...] = (128, 256, 512, 1024),
    cost: CostModel | None = None,
    cap: int = 200,
    jobs: int | None = None,
) -> list[SensitivityPoint]:
    """Sweep sequence length at fixed batch: attention's L² term overtakes
    the FFN's L term as sequences grow."""
    cost = cost or CostModel()
    return [_measure(batch, s, cost, cap, jobs) for s in seqs]
