"""Plain-text rendering of the reproduced tables (shared by benchmarks/examples)."""

from __future__ import annotations

from repro.ir.operator import OpClass

from .tables import Table1Row, Table3Row

__all__ = ["format_table1", "format_table2", "format_table3", "format_framework_table"]


def format_table1(rows: list[Table1Row]) -> str:
    lines = ["Operator class                 % flop   % runtime"]
    for r in rows:
        lines.append(
            f"{r.op_class.marker} {r.op_class.value:<27s}"
            f"{100 * r.flop_fraction:7.2f}  {100 * r.runtime_fraction:9.1f}"
        )
    return "\n".join(lines)


def format_table2(data: dict[str, dict[str, float]]) -> str:
    lines = ["            Unfused   QK fused   QKV fused"]
    for stage in ("forward", "backward"):
        row = data[stage]
        lines.append(
            f"{stage.capitalize():<10s}"
            f"{row['unfused']:9.0f} {row['qk']:10.0f} {row['qkv']:11.0f}  (us)"
        )
    return "\n".join(lines)


def format_table3(rows: list[Table3Row], totals: dict[OpClass, dict[str, float]]) -> str:
    header = (
        f"{'Operator':<40s} {'Gflop':>7s} {'In(Mw)':>7s} {'Out(Mw)':>8s} "
        f"{'PT us':>7s} {'PT %pk':>7s} {'Ours us':>8s} {'%pk':>6s} {'MUE':>5s} "
        f"{'Speedup':>8s}  Kernel"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r.marker} {r.label:<38s} {r.gflop:7.3f} {r.input_mwords:7.1f} "
            f"{r.output_mwords:8.1f} {r.pt_time_us:7.0f} {r.pt_percent_peak:7.1f} "
            f"{r.ours_time_us:8.0f} {r.ours_percent_peak:6.1f} {r.ours_mue:5.0f} "
            f"{r.speedup:8.2f}  {r.kernel}"
        )
    lines.append("-" * len(header))
    for cls, t in totals.items():
        lines.append(
            f"{cls.marker} {cls.value:<38s} "
            f"PT {t['pt_us']:8.0f} us   Ours {t['ours_us']:8.0f} us   "
            f"speedup {t['speedup']:5.2f}"
        )
    return "\n".join(lines)


def format_framework_table(data: dict[str, dict[str, float]], *, unit: str = "ms") -> str:
    frameworks = list(data)
    lines = [" " * 10 + "".join(f"{f:>12s}" for f in frameworks)]
    keys = list(next(iter(data.values())))
    for key in keys:
        row = "".join(f"{data[f].get(key, float('nan')):12.2f}" for f in frameworks)
        lines.append(f"{key:<10s}{row}")
    return "\n".join(lines)
