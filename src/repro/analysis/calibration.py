"""Calibration audit: the cost model against the paper's published times.

DESIGN.md commits the simulated-V100 substitute to reproduce the paper's
*shape*; this module makes that checkable: it stores the Table III
reference kernel times (µs, V100, BERT-large, B=8, L=512) and compares the
model's predictions row by row.  The audit is run by the test suite and its
summary is reported in EXPERIMENTS.md.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from repro.baselines.frameworks import framework_schedule
from repro.baselines.policy import OURS, PYTORCH
from repro.hardware.cost_model import CostModel
from repro.ir.dims import DimEnv

from .tables import TABLE3_ROWS

__all__ = ["PAPER_TABLE3_US", "CalibrationRow", "CalibrationReport", "audit_calibration"]

#: Table III reference times in µs: row label -> (PyTorch, Ours).
#: Transcribed from the paper (fwd block then bwd block).
PAPER_TABLE3_US: dict[str, tuple[float, float]] = {
    "Q, K, V": (333, 306),
    "Input bias": (90, 66),
    "QK^T": (189, 143),
    "Scaled softmax": (453, 433),
    "Gamma": (142, 160),
    "Out": (136, 120),
    "Output bias+Dropout+Residual+LayerNorm": (170, 102),
    "Linear (1)": (451, 402),
    "Bias+ReLU+Dropout": (348, 183),
    "Linear (2)": (449, 369),
    "Bias+Dropout+Residual+LayerNorm": (172, 101),
    "LayerNorm dW": (184, 150),
    "LayerNorm dX + Dropout dX": (112, 71),
    "Linear+Bias dX (2)": (427, 414),
    "Linear dW (2)": (424, 378),
    "Bias dW+Dropout dX+ReLU dX+Bias dW": (380, 362),
    "Linear+Bias dX (1)": (417, 398),
    "Linear dW (1)": (437, 372),
    "Residual + LayerNorm dW": (222, 250),
    "LayerNorm dX + Dropout dX (1)": (114, 69),
    "Output bias dW": (23, 38),
    "Out dX": (131, 119),
    "Out dW": (136, 113),
    "Gamma dX1": (136, 147),
    "Gamma dX2": (188, 123),
    "Scaled softmax dX": (790, 426),
    "QKT dX1": (135, 155),
    "QKT dX2": (139, 115),
    "Q, K, V dX": (344, 274),
    "Q, K, V dW": (329, 293),
    "Input bias dW": (52, 39),
    "Residual (encoder input)": (35, 31),
}


@dataclass(frozen=True)
class CalibrationRow:
    """One Table III row: model prediction vs paper measurement."""

    label: str
    paper_pt_us: float
    model_pt_us: float
    paper_ours_us: float
    model_ours_us: float

    @property
    def pt_ratio(self) -> float:
        return self.model_pt_us / self.paper_pt_us

    @property
    def ours_ratio(self) -> float:
        return self.model_ours_us / self.paper_ours_us


@dataclass(frozen=True)
class CalibrationReport:
    """Aggregate calibration statistics."""

    rows: tuple[CalibrationRow, ...]

    def ratios(self, *, side: str = "ours") -> list[float]:
        return [r.ours_ratio if side == "ours" else r.pt_ratio for r in self.rows]

    def median_ratio(self, *, side: str = "ours") -> float:
        return statistics.median(self.ratios(side=side))

    def geometric_mean_ratio(self, *, side: str = "ours") -> float:
        import math

        rs = self.ratios(side=side)
        return math.exp(sum(math.log(r) for r in rs) / len(rs))

    def within(self, factor: float, *, side: str = "ours") -> float:
        """Fraction of rows whose prediction is within ``factor`` of the
        paper's measurement."""
        rs = self.ratios(side=side)
        return sum(1 for r in rs if 1 / factor <= r <= factor) / len(rs)


def audit_calibration(
    env: DimEnv, cost: CostModel | None = None, *, cap: int | None = 400
) -> CalibrationReport:
    """Predict every Table III row and compare with the paper's numbers."""
    cost = cost or CostModel()
    pt = framework_schedule(PYTORCH, env, cost, model="encoder", cap=cap)
    ours = framework_schedule(OURS, env, cost, model="encoder", cap=cap)
    rows: list[CalibrationRow] = []
    for label, pt_ops, ours_kernel in TABLE3_ROWS:
        if label not in PAPER_TABLE3_US:
            continue
        paper_pt, paper_ours = PAPER_TABLE3_US[label]
        model_pt = sum(pt.kernel_by_name(n).time_us for n in pt_ops)
        model_ours = ours.kernel_by_name(ours_kernel).time_us
        rows.append(
            CalibrationRow(
                label=label,
                paper_pt_us=paper_pt,
                model_pt_us=model_pt,
                paper_ours_us=paper_ours,
                model_ours_us=model_ours,
            )
        )
    return CalibrationReport(rows=tuple(rows))
