"""Training-cost and energy savings estimates (paper Sec. I).

The introduction quantifies the impact of the 1.30x speedup: "a savings of
over $85,000 on AWS" for robustly training BERT (RoBERTa-scale) and, for
GPT-3's estimated $12M training cost, "$3.6M and more than 120 MWh energy".
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SavingsEstimate", "estimate_savings", "BERT_AWS_COST_USD", "GPT3_COST_USD", "GPT3_ENERGY_MWH"]

#: Approximate AWS cost of a robust (RoBERTa-scale) BERT pretraining run in
#: 2020 (1024 V100-days at p3 on-demand pricing).
BERT_AWS_COST_USD = 370_000.0
#: The paper's cited GPT-3 training cost estimate.
GPT3_COST_USD = 12_000_000.0
#: Energy estimate for that run.
GPT3_ENERGY_MWH = 400.0


@dataclass(frozen=True)
class SavingsEstimate:
    """Cost/energy saved by a training-time speedup."""

    speedup: float
    baseline_cost_usd: float
    saved_usd: float
    baseline_energy_mwh: float | None = None
    saved_mwh: float | None = None


def estimate_savings(
    speedup: float,
    baseline_cost_usd: float,
    *,
    baseline_energy_mwh: float | None = None,
) -> SavingsEstimate:
    """Savings from running the same training ``speedup``-times faster.

    A speedup of ``s`` cuts GPU-hours (and thus cost and energy) by a
    factor ``1 - 1/s``.
    """
    if speedup <= 0:
        raise ValueError("speedup must be positive")
    frac = max(0.0, 1.0 - 1.0 / speedup)
    return SavingsEstimate(
        speedup=speedup,
        baseline_cost_usd=baseline_cost_usd,
        saved_usd=baseline_cost_usd * frac,
        baseline_energy_mwh=baseline_energy_mwh,
        saved_mwh=None if baseline_energy_mwh is None else baseline_energy_mwh * frac,
    )
