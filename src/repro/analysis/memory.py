"""Training memory-footprint accounting.

The paper's V100 has 16 GB (Sec. III-D); whether an optimized schedule fits
depends on the parameters, the activations saved for backward, and the
dropout masks — all derivable from the dataflow graph.  Fusion changes the
footprint too: interior tensors of a fused kernel are never materialized.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.spec import GPUSpec, V100
from repro.ir.dims import DimEnv
from repro.ir.graph import DataflowGraph
from repro.ir.operator import Stage

__all__ = ["MemoryFootprint", "graph_footprint"]


@dataclass(frozen=True)
class MemoryFootprint:
    """Byte totals per storage category for one training iteration."""

    parameter_bytes: int
    gradient_bytes: int
    #: forward activations alive until their backward consumer runs
    saved_activation_bytes: int
    #: forward tensors consumed entirely within the forward pass
    transient_activation_bytes: int

    @property
    def total_bytes(self) -> int:
        return (
            self.parameter_bytes
            + self.gradient_bytes
            + self.saved_activation_bytes
            + self.transient_activation_bytes
        )

    def fits(self, gpu: GPUSpec = V100, *, model_copies: int = 1) -> bool:
        """Whether ``model_copies`` stacked layers of this footprint fit.

        Parameters/gradients/saved activations scale with layer count;
        transient buffers are reused across layers.
        """
        persistent = (
            self.parameter_bytes + self.gradient_bytes + self.saved_activation_bytes
        )
        return persistent * model_copies + self.transient_activation_bytes <= gpu.mem_capacity


def graph_footprint(graph: DataflowGraph, env: DimEnv) -> MemoryFootprint:
    """Account every container of a fwd+bwd graph into footprint categories.

    * parameters: graph inputs flagged ``is_param``;
    * gradients: outputs of dW-stage operators;
    * saved activations: forward-produced tensors read by backward operators
      (including dropout masks and softmax outputs);
    * transient: forward-produced tensors with only forward consumers —
      after fusion many of these disappear entirely.
    """
    params = 0
    grads = 0
    saved = 0
    transient = 0
    for name, spec in graph.containers.items():
        producer = graph.producer_of(name)
        nbytes = spec.nbytes(env)
        if producer is None:
            if spec.is_param:
                params += nbytes
            continue
        op = graph.op(producer)
        if op.stage is Stage.BACKWARD_DW:
            grads += nbytes
            continue
        if op.stage.is_backward:
            transient += nbytes  # dX-stage gradients are consumed immediately
            continue
        consumers = graph.consumers_of(name)
        if any(graph.op(c).stage.is_backward for c in consumers):
            saved += nbytes
        else:
            transient += nbytes
    return MemoryFootprint(
        parameter_bytes=params,
        gradient_bytes=grads,
        saved_activation_bytes=saved,
        transient_activation_bytes=transient,
    )
