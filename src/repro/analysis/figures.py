"""Generators for the paper's Figures 1b, 2, 4, 5 and 6.

Each returns the data series behind the figure; the benchmark harness
prints them (no plotting libraries are available offline).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.autotuner.violin import ViolinSummary, summarize
from repro.engine import contraction_time_split, sweep_op
from repro.hardware.cost_model import CostModel
from repro.ir.dims import DimEnv
from repro.ir.graph import DataflowGraph
from repro.ir.operator import OpClass, OpSpec
from repro.layouts.gemm_mapping import default_gemm_shape

__all__ = [
    "DataflowAnnotation",
    "fig1_mha_dataflow",
    "fig2_encoder_dataflow",
    "ContractionTile",
    "fig4_contraction_tiles",
    "fig5_fused_kernels",
    "fig6_config_graph_stats",
]


# ---------------------------------------------------------------------------
# Figs. 1b / 2 — dataflow annotations
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class DataflowAnnotation:
    """One operator's annotation in the dataflow figure."""

    op_name: str
    op_class: OpClass
    gflop: float  # binary Gflop, the paper's unit
    io_mwords: float
    flop_per_word: float
    movement_class: str


def _annotate_graph(graph: DataflowGraph, env: DimEnv) -> list[DataflowAnnotation]:
    rows = []
    for op in graph.ops:
        if op.is_view:
            continue
        s = op.summary(env)
        rows.append(
            DataflowAnnotation(
                op_name=op.name,
                op_class=op.op_class,
                gflop=s.flop / 2.0**30,
                io_mwords=s.words_moved / 1e6,
                flop_per_word=s.flop_per_word,
                movement_class=op.movement_class(env),
            )
        )
    return rows


def fig1_mha_dataflow(env: DimEnv) -> list[DataflowAnnotation]:
    """MHA forward dataflow with flop and flop/IO annotations (Fig. 1b)."""
    from repro.transformer.graph_builder import build_mha_graph

    graph = build_mha_graph(qkv_fusion="unfused", include_backward=False)
    return _annotate_graph(graph, env)


def fig2_encoder_dataflow(env: DimEnv) -> list[DataflowAnnotation]:
    """Encoder fwd+bwd dataflow annotations (Fig. 2)."""
    from repro.transformer.graph_builder import build_encoder_graph

    graph = build_encoder_graph(qkv_fusion="qkv", include_backward=True)
    return _annotate_graph(graph, env)


# ---------------------------------------------------------------------------
# Fig. 4 — tensor contraction layout sweeps
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ContractionTile:
    """One Fig.-4 tile: a GEMM shape with its layout-sweep distributions."""

    label: str  # "M: ..., N: ..., K: ..., B: ..."
    op_names: tuple[str, ...]
    tc_best_pct_peak: float
    tc_worst_pct_peak: float
    fp16_best_pct_peak: float
    fp16_worst_pct_peak: float
    tc_best_ms: float
    tc_worst_ms: float
    num_configs: int


def fig4_contraction_tiles(
    env: DimEnv, cost: CostModel | None = None
) -> list[ContractionTile]:
    """Sweep every encoder contraction; group by canonical GEMM shape.

    The paper's Fig. 4 has 12 tiles, each merging the contractions that
    share a GEMM shape (operand order merged, tiles labeled with M > N).
    """
    from repro.transformer.graph_builder import build_encoder_graph

    cost = cost or CostModel()
    graph = build_encoder_graph(qkv_fusion="qkv", include_backward=True)
    groups: dict[str, list[OpSpec]] = {}
    for op in graph.ops:
        if op.op_class is not OpClass.TENSOR_CONTRACTION:
            continue
        shape = default_gemm_shape(op.einsum, env).canonical()
        groups.setdefault(shape.label(), []).append(op)

    # Algebraic-fusion variants appear in Fig. 4 too (QKV / dXQKV / KV ...).
    from repro.transformer.graph_builder import build_mha_graph

    for variant in ("unfused", "qk"):
        g2 = build_mha_graph(qkv_fusion=variant, include_backward=True)
        for op in g2.ops:
            if op.op_class is not OpClass.TENSOR_CONTRACTION:
                continue
            shape = default_gemm_shape(op.einsum, env).canonical()
            groups.setdefault(shape.label(), [])
            if all(o.name != op.name for o in groups[shape.label()]):
                groups[shape.label()].append(op)

    tiles: list[ContractionTile] = []
    for label, ops in sorted(groups.items()):
        rep = ops[0]
        flop = rep.flops(env)
        # One batched engine evaluation per tile (store-served when an L2
        # is active) instead of the scalar per-config loop; both returned
        # distributions arrive sorted ascending.
        tc_times, fp_times = contraction_time_split(rep, env, cost)
        if not tc_times.size or not fp_times.size:
            continue
        tc_best, tc_worst = float(tc_times[0]), float(tc_times[-1])
        fp_best, fp_worst = float(fp_times[0]), float(fp_times[-1])
        tc_peak = cost.gpu.tensor_core_flops
        fp_peak = cost.gpu.fp16_flops

        def pct(t_us: float, peak: float) -> float:
            return 100.0 * (flop / (t_us * 1e-6)) / peak

        tiles.append(
            ContractionTile(
                label=label,
                op_names=tuple(o.name for o in ops),
                tc_best_pct_peak=pct(tc_best, tc_peak),
                tc_worst_pct_peak=pct(tc_worst, tc_peak),
                fp16_best_pct_peak=pct(fp_best, fp_peak),
                fp16_worst_pct_peak=pct(fp_worst, fp_peak),
                tc_best_ms=tc_best / 1000.0,
                tc_worst_ms=tc_worst / 1000.0,
                num_configs=int(tc_times.size + fp_times.size),
            )
        )
    return tiles


# ---------------------------------------------------------------------------
# Fig. 5 — fused kernel layout sweeps
# ---------------------------------------------------------------------------

def fig5_fused_kernels(
    env: DimEnv, cost: CostModel | None = None, *, cap: int | None = 1500
) -> dict[str, ViolinSummary]:
    """Runtime distributions of the paper's fused kernels (Fig. 5)."""
    from repro.fusion.encoder_kernels import apply_paper_fusion
    from repro.transformer.graph_builder import build_encoder_graph

    cost = cost or CostModel()
    graph = apply_paper_fusion(build_encoder_graph(qkv_fusion="qkv"), env)
    out: dict[str, ViolinSummary] = {}
    for op in graph.ops:
        if not op.kernel_label or op.op_class is OpClass.TENSOR_CONTRACTION:
            continue
        sweep = sweep_op(op, env, cost, cap=cap)
        out[op.kernel_label] = summarize(sweep)
    return out


# ---------------------------------------------------------------------------
# Fig. 6 — configuration-selection graph
# ---------------------------------------------------------------------------

def fig6_config_graph_stats(
    env: DimEnv,
    cost: CostModel | None = None,
    *,
    cap: int | None = 600,
    jobs: int | None = None,
) -> dict[str, float]:
    """Build the Fig.-6 configuration graph and report its shape + SSSP cost."""
    from repro.configsel.chain import primary_chain
    from repro.engine import sweep_graph
    from repro.configsel.selector import _SOURCE, _TARGET, build_config_graph
    from repro.configsel.sssp import shortest_path, shortest_path_networkx
    from repro.fusion.encoder_kernels import apply_paper_fusion
    from repro.transformer.graph_builder import build_encoder_graph

    cost = cost or CostModel()
    graph = apply_paper_fusion(build_encoder_graph(qkv_fusion="qkv"), env)
    chain = primary_chain(graph)
    sweeps = sweep_graph(graph, env, cost, cap=cap, jobs=jobs)
    cg = build_config_graph(graph, chain, sweeps, env, cost)
    cost_own, path = shortest_path(cg, _SOURCE, _TARGET)
    cost_nx, _ = shortest_path_networkx(cg, _SOURCE, _TARGET)
    return {
        "nodes": float(len(cg.nodes)),
        "edges": float(cg.num_edges),
        "chain_ops": float(len(chain)),
        "sssp_cost_us": cost_own,
        "sssp_cost_networkx_us": cost_nx,
        "path_len": float(len(path)),
    }
