"""Global configuration selection (Sec. VI-A) and end-to-end assembly.

Builds the layered configuration DAG over the forward primary chain
(Fig. 6), runs SSSP to pick the globally best layout sequence — allowing
locally suboptimal operators when a layout change downstream pays off
("Sometimes locally suboptimal layouts need to be selected to improve
performance globally", Sec. VI-B) — then infers the configurations of all
remaining operators (backward, dW, residual side chains) from the pinned
activation layouts, inserting explicit transposes where no compatible
configuration exists.

Two selection pipelines produce the same result, mirroring the
``sweep_op`` / ``sweep_op_reference`` contract of the sweep engine:

* the **scalar reference**: explicit :class:`~repro.configsel.sssp.ConfigGraph`
  nodes and edges, node-by-node relaxation, and Python scans over every
  sweep measurement — slow but obviously faithful;
* the **vectorized fast path** (default; disable with
  ``REPRO_CONFIGSEL_FAST=0`` or ``fast=False``): each chain step becomes a
  dense ``(n_layouts_in, n_layouts_out)`` min-plus cost matrix
  (:func:`build_chain_matrices`), the chain is solved with one broadcast
  relaxation per layer (:func:`~repro.configsel.sssp.shortest_path_layered`),
  and remaining-operator inference runs as masked argmins over the sweep's
  array views (:meth:`~repro.autotuner.tuner.SweepResult.totals_array` /
  ``operand_layout_arrays``) instead of per-measurement Python loops.

The fast path is **bit-identical** to the scalar reference: chosen
configurations, inserted transposes and the chain cost are equal object
for object (tier-1 and ``benchmarks/test_configsel_speedup.py`` pin this
across the full graph matrix).  Ties resolve identically because scalar
scans keep the first minimum in sorted-measurement order and ``np.argmin``
does the same, and every floating-point sum is associated in the same
order on both sides.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.autotuner.tuner import ConfigMeasurement, SweepResult
from repro.engine import sweep_graph
from repro.hardware.cost_model import CostModel
from repro.ir.dims import DimEnv
from repro.ir.graph import DataflowGraph
from repro.ir.operator import OpClass, OpSpec
from repro.ir.tensor import TensorSpec
from repro.layouts.layout import Layout, all_layouts

from .chain import ChainStep, primary_chain, project_layout
from .sssp import ConfigGraph, SSSPError, shortest_path, shortest_path_layered

__all__ = [
    "SelectedConfiguration",
    "TransposeInsertion",
    "select_configurations",
    "build_config_graph",
    "build_chain_matrices",
    "ChainMatrices",
    "FAST_ENV_VAR",
]

_SOURCE = ("source",)
_TARGET = ("target",)

#: Environment escape hatch: set to ``0`` to run the scalar reference
#: selection end-to-end (the CLI's ``--no-fast-select`` sets this).
FAST_ENV_VAR = "REPRO_CONFIGSEL_FAST"


def _fast_enabled(fast: bool | None) -> bool:
    if fast is not None:
        return fast
    return os.environ.get(FAST_ENV_VAR, "1").strip().lower() not in (
        "0", "false", "no", "off",
    )


# ---------------------------------------------------------------------------
# Transpose-cost memo
# ---------------------------------------------------------------------------

#: Transpose cost depends only on the tensor's dims/sizes/dtype and the
#: GPU — never on the particular (from, to) layout pair — yet selection
#: re-costs the same tensors across chain steps, penalties and inference.
#: One process-wide memo turns those repeats into dict hits.  Bounded: the
#: daemon optimizes arbitrary client-supplied dims and GPU specs, and a
#: weeks-lived process must not grow with request variety.
_TRANSPOSE_MEMO: dict[tuple, float] = {}
_TRANSPOSE_MEMO_LIMIT = 65536


def _transpose_us(cost: CostModel, spec: TensorSpec, env: DimEnv) -> float:
    key = (cost.gpu, spec.dtype, spec.dims, tuple(env[d] for d in spec.dims))
    cached = _TRANSPOSE_MEMO.get(key)
    if cached is None:
        if len(_TRANSPOSE_MEMO) >= _TRANSPOSE_MEMO_LIMIT:
            _TRANSPOSE_MEMO.clear()
        cached = _TRANSPOSE_MEMO[key] = cost.time_transpose(spec, env).total_us
    return cached


@dataclass(frozen=True)
class TransposeInsertion:
    """An explicit layout-change kernel inserted between two operators."""

    tensor: str
    from_layout: Layout
    to_layout: Layout
    time_us: float
    before_op: str


@dataclass
class SelectedConfiguration:
    """The assembled end-to-end implementation."""

    chain: list[ChainStep]
    chosen: dict[str, ConfigMeasurement]
    pinned_layouts: dict[str, Layout]
    transposes: list[TransposeInsertion] = field(default_factory=list)
    chain_cost_us: float = 0.0
    #: Content digest this selection was registered under (when
    #: ``select_configurations(register=...)`` persisted it), else None.
    registered_digest: str | None = None

    def op_time_us(self, op_name: str) -> float:
        return self.chosen[op_name].total_us

    @property
    def transpose_us(self) -> float:
        return sum(t.time_us for t in self.transposes)

    @property
    def total_us(self) -> float:
        """End-to-end predicted time: all kernels plus inserted transposes."""
        return sum(m.total_us for m in self.chosen.values()) + self.transpose_us

    def stage_total_us(self, graph: DataflowGraph, *, backward: bool) -> float:
        total = 0.0
        for name, m in self.chosen.items():
            op = graph.op(name)
            if op.stage.is_backward == backward:
                total += m.total_us
        for t in self.transposes:
            op = graph.op(t.before_op)
            if op.stage.is_backward == backward:
                total += t.time_us
        return total


# ---------------------------------------------------------------------------
# Chain graph: dense matrices (fast) and explicit DAG (scalar reference)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ChainMatrices:
    """The Fig.-6 layered DAG in dense min-plus form.

    ``boundaries[i]`` enumerates the layouts of chain step ``i``'s input
    tensor (``all_layouts`` order — the row/column order of every matrix);
    ``transpose_us[i]`` is the uniform off-diagonal weight of the boundary's
    transpose block; ``op_cost[i]`` the ``(n_i, n_{i+1})`` operator-edge
    matrix (the final step's matrix has one target column).
    """

    boundaries: list[tuple[Layout, ...]]
    transpose_us: list[float]
    op_cost: list[np.ndarray]


def build_chain_matrices(
    graph: DataflowGraph,
    chain: list[ChainStep],
    sweeps: dict[str, SweepResult],
    env: DimEnv,
    cost: CostModel,
) -> ChainMatrices:
    """Chain-step cost matrices straight from the sweep's array views.

    For each step, every measurement contributes its ``total_us`` to the
    ``(in layout, projected out layout)`` cell it occupies and each cell
    keeps its minimum — the same per-layout-pair minima the scalar
    ``build_config_graph`` derives measurement by measurement, computed
    here with one NumPy gather/scatter per step.
    """
    boundaries = [
        tuple(all_layouts(graph.container(step.in_tensor).dims)) for step in chain
    ]
    positions = [{l.dims: k for k, l in enumerate(b)} for b in boundaries]
    transpose_us = [
        _transpose_us(cost, graph.container(step.in_tensor), env) for step in chain
    ]
    op_cost: list[np.ndarray] = []
    for idx, step in enumerate(chain):
        sweep = sweeps[step.op_name]
        op = graph.op(step.op_name)
        totals = sweep.totals_array()
        vocabs, ids = sweep.operand_layout_arrays()
        slot_out = len(op.inputs) + step.out_index

        rows_of = np.array(
            [
                positions[idx].get(v.dims, -1) if v is not None else -1
                for v in vocabs[step.in_index]
            ],
            dtype=np.int64,
        )
        if idx + 1 < len(chain):
            out_spec = graph.container(step.out_tensor)
            next_spec = graph.container(chain[idx + 1].in_tensor)
            identity = step.out_tensor == chain[idx + 1].in_tensor

            def col_of(v: Layout | None) -> int:
                if v is None:
                    return -1
                projected = v if identity else project_layout(v, out_spec, next_spec)
                if projected is None:
                    return -1
                return positions[idx + 1].get(projected.dims, -1)

            cols_of = np.array([col_of(v) for v in vocabs[slot_out]], dtype=np.int64)
            n_cols = len(boundaries[idx + 1])
        else:
            cols_of = np.zeros(len(vocabs[slot_out]), dtype=np.int64)
            n_cols = 1

        rows = rows_of[ids[step.in_index]]
        cols = cols_of[ids[slot_out]]
        valid = (rows >= 0) & (cols >= 0)
        m = np.full((len(boundaries[idx]), n_cols), np.inf)
        np.minimum.at(m, (rows[valid], cols[valid]), totals[valid])
        if not np.isfinite(m).any():
            raise SSSPError(f"no usable configurations for chain op {step.op_name!r}")
        op_cost.append(m)
    return ChainMatrices(
        boundaries=boundaries, transpose_us=transpose_us, op_cost=op_cost
    )


def build_config_graph(
    graph: DataflowGraph,
    chain: list[ChainStep],
    sweeps: dict[str, SweepResult],
    env: DimEnv,
    cost: CostModel,
) -> ConfigGraph:
    """The layered Fig.-6 DAG: layout nodes per chain boundary, operator
    edges weighted by layout-conditioned minima, and transpose edges.

    This is the scalar reference construction (dict-keyed per-layout-pair
    minima, one edge at a time).  Edges are inserted in ``all_layouts``
    enumeration order so the in-edge order of every node — which is what
    :func:`~repro.configsel.sssp.shortest_path` breaks distance ties with —
    matches the row order of :func:`build_chain_matrices` exactly.
    """
    cg = ConfigGraph()
    cg.add_node(_SOURCE)
    cg.add_node(_TARGET)

    def boundary_layouts(step_idx: int) -> list[Layout]:
        step = chain[step_idx]
        spec = graph.container(step.in_tensor)
        return list(all_layouts(spec.dims))

    # Each boundary is split into an arrival and a departure column so that
    # transpose edges (arrival layout -> departure layout) keep the graph a
    # DAG; operator edges leave departures and enter the next arrival.
    def arr(step_idx: int, layout: Layout):
        return ("t", step_idx, layout.dims)

    def dep(step_idx: int, layout: Layout):
        return ("dep", step_idx, layout.dims)

    # Source: the layer input's layout is free to choose.
    for l in boundary_layouts(0):
        cg.add_edge(_SOURCE, arr(0, l), 0.0)

    for idx, step in enumerate(chain):
        sweep = sweeps[step.op_name]
        out_spec = graph.container(step.out_tensor)
        next_spec = graph.container(chain[idx + 1].in_tensor) if idx + 1 < len(chain) else None

        # Transpose edges within this boundary (0-cost to stay put).
        in_spec = graph.container(step.in_tensor)
        t_time = _transpose_us(cost, in_spec, env)
        layouts = boundary_layouts(idx)
        for a in layouts:
            cg.add_edge(arr(idx, a), dep(idx, a), 0.0)
            for b in layouts:
                if a != b:
                    cg.add_edge(arr(idx, a), dep(idx, b), t_time)

        # Operator edges: (in layout at this boundary) -> (projected out
        # layout at the next boundary), weighted by the layout-conditioned
        # minimum runtime.  The per-(in, out)-layout minima come from the
        # sweep's precomputed index; projection then runs once per distinct
        # layout pair rather than once per measurement.
        grouped: dict[tuple[tuple[str, ...], tuple[str, ...] | None], float] = {}
        for (lin_dims, lout_dims), t_us in sweep.layout_pair_minima(
            step.in_index, step.out_index
        ).items():
            if next_spec is not None:
                lout = Layout(lout_dims)
                projected = (
                    lout
                    if step.out_tensor == chain[idx + 1].in_tensor
                    else project_layout(lout, out_spec, next_spec)
                )
                if projected is None:
                    continue
                key = (lin_dims, projected.dims)
            else:
                key = (lin_dims, None)
            if key not in grouped or t_us < grouped[key]:
                grouped[key] = t_us
        if not grouped:
            raise SSSPError(f"no usable configurations for chain op {step.op_name!r}")
        in_pos = {l.dims: k for k, l in enumerate(layouts)}
        out_pos = (
            {l.dims: k for k, l in enumerate(boundary_layouts(idx + 1))}
            if next_spec is not None
            else {}
        )
        for (lin_dims, lout_dims), w in sorted(
            grouped.items(),
            key=lambda kv: (in_pos[kv[0][0]], out_pos.get(kv[0][1], 0)),
        ):
            src = dep(idx, Layout(lin_dims))
            dst = _TARGET if lout_dims is None else arr(idx + 1, Layout(lout_dims))
            cg.add_edge(src, dst, w)
    return cg


def _decode_path(
    chain: list[ChainStep], path: list
) -> tuple[list[tuple[Layout, Layout | None]], list[tuple[int, Layout, Layout]]]:
    """Decode the SSSP path.

    Returns per-step ``(consumed layout, produced arrival layout or None)``
    plus the chain transposes as ``(step index, from, to)`` triples.
    """
    arrivals: dict[int, Layout] = {}
    departures: dict[int, Layout] = {}
    for nd in path:
        if isinstance(nd, tuple) and len(nd) == 3:
            kind, idx, dims = nd
            if kind == "t":
                arrivals[idx] = Layout(dims)
            elif kind == "dep":
                departures[idx] = Layout(dims)
    steps: list[tuple[Layout, Layout | None]] = []
    transposes: list[tuple[int, Layout, Layout]] = []
    for i in range(len(chain)):
        consumed = departures[i]
        if arrivals[i] != consumed:
            transposes.append((i, arrivals[i], consumed))
        steps.append((consumed, arrivals.get(i + 1)))
    return steps, transposes


def _solve_chain_fast(
    mats: ChainMatrices, chain: list[ChainStep]
) -> tuple[float, list[tuple[Layout, Layout | None]], list[tuple[int, Layout, Layout]]]:
    """Solve the chain on the dense matrices and decode boundary layouts.

    Expands each boundary into its transpose block (0 diagonal, uniform
    off-diagonal) followed by its operator matrix, runs the layered
    min-plus relaxation, and reads the chosen arrival/departure layout per
    boundary from the stored argmins — the exact structure (and tie
    behavior) of the scalar graph walk.
    """
    layers: list[np.ndarray] = [np.zeros((1, len(mats.boundaries[0])))]
    for idx in range(len(chain)):
        n = len(mats.boundaries[idx])
        t = np.full((n, n), mats.transpose_us[idx])
        np.fill_diagonal(t, 0.0)
        layers.append(t)
        layers.append(mats.op_cost[idx])
    chain_cost, nodes = shortest_path_layered(layers)

    steps: list[tuple[Layout, Layout | None]] = []
    transposes: list[tuple[int, Layout, Layout]] = []
    for i in range(len(chain)):
        arrived = mats.boundaries[i][nodes[2 * i]]
        consumed = mats.boundaries[i][nodes[2 * i + 1]]
        if arrived != consumed:
            transposes.append((i, arrived, consumed))
        nxt = (
            mats.boundaries[i + 1][nodes[2 * i + 2]] if i + 1 < len(chain) else None
        )
        steps.append((consumed, nxt))
    return chain_cost, steps, transposes


# ---------------------------------------------------------------------------
# Vectorized per-operator inference (masked argmins over sweep arrays)
# ---------------------------------------------------------------------------

def _operands(op: OpSpec):
    return (*op.inputs, *op.outputs)


def _fast_consistent_mask(
    op: OpSpec, sweep: SweepResult, pinned: dict[str, Layout]
) -> np.ndarray:
    """Boolean per-measurement mask: every pinned operand in its pin."""
    vocabs, ids = sweep.operand_layout_arrays()
    mask: np.ndarray | None = None
    for s, t in enumerate(_operands(op)):
        pin = pinned.get(t.name)
        if pin is None:
            continue
        ok = np.array([v is None or v == pin for v in vocabs[s]], dtype=bool)
        col = ok[ids[s]]
        mask = col if mask is None else mask & col
    if mask is None:
        return np.ones(sweep.totals_array().shape[0], dtype=bool)
    return mask


def _fast_best_consistent(
    op: OpSpec, sweep: SweepResult, pinned: dict[str, Layout]
) -> ConfigMeasurement | None:
    idxs = np.flatnonzero(_fast_consistent_mask(op, sweep, pinned))
    if idxs.size == 0:
        return None
    return sweep.measurements[int(idxs[0])]


def _fast_best_coherent(
    op: OpSpec,
    sweep: SweepResult,
    pinned: dict[str, Layout],
    env: DimEnv,
    cost: CostModel,
    *,
    tolerance: float = 1.5,
) -> ConfigMeasurement | None:
    """Vectorized :func:`_best_coherent`: same minima, same tie-breaks."""
    idxs = np.flatnonzero(_fast_consistent_mask(op, sweep, pinned))
    if idxs.size == 0:
        return None
    totals = sweep.totals_array()
    limit = totals[int(idxs[0])] * tolerance
    cand = idxs[idxs < np.searchsorted(totals, limit, side="right")]
    vocabs, ids = sweep.operand_layout_arrays()
    pen = np.zeros(cand.size)
    for s, t in enumerate(_operands(op)):
        if t.name in pinned or t.rank <= 1:
            continue
        half = 0.5 * _transpose_us(cost, t, env)
        vp = np.array(
            [half if (v is not None and v.dims != t.dims) else 0.0 for v in vocabs[s]]
        )
        pen = pen + vp[ids[s][cand]]
    return sweep.measurements[int(cand[np.argmin(totals[cand] + pen)])]


def _fast_transpose_alt(
    op: OpSpec,
    sweep: SweepResult,
    pinned: dict[str, Layout],
    env: DimEnv,
    cost: CostModel,
) -> tuple[ConfigMeasurement | None, list[TransposeInsertion], float]:
    """Cheapest (kernel + pin-fixing transposes) point of the whole sweep.

    The scalar scans walk the sorted measurements accumulating a
    shrinking bound; the closed form is a plain argmin of
    ``total_us + transpose cost of every pinned mismatch``, which this
    computes with one gather per operand slot.
    """
    totals = sweep.totals_array()
    if totals.size == 0:
        return None, [], float("inf")
    vocabs, ids = sweep.operand_layout_arrays()
    extra = np.zeros(totals.shape[0])
    for s, t in enumerate(_operands(op)):
        pin = pinned.get(t.name)
        if pin is None:
            continue
        full = _transpose_us(cost, t, env)
        vp = np.array([0.0 if (v is None or v == pin) else full for v in vocabs[s]])
        extra = extra + vp[ids[s]]
    cand = totals + extra
    i = int(np.argmin(cand))
    m = sweep.measurements[i]
    return m, _needed_transposes(op, m, pinned, env, cost), float(cand[i])


def _fast_chain_pick(
    op: OpSpec,
    sweep: SweepResult,
    step: ChainStep,
    lin: Layout,
    lnext: Layout | None,
    out_spec: TensorSpec,
    next_spec: TensorSpec | None,
    chain_penalty_vocab,
) -> ConfigMeasurement:
    """Vectorized chain-step pick: boundary match + penalized argmin."""
    totals = sweep.totals_array()
    vocabs, ids = sweep.operand_layout_arrays()
    in_ok = np.array(
        [v is not None and v == lin for v in vocabs[step.in_index]], dtype=bool
    )
    mask = in_ok[ids[step.in_index]]
    if lnext is not None:
        slot_out = len(op.inputs) + step.out_index

        def ok(v: Layout | None) -> bool:
            if v is None:
                return False
            projected = (
                v
                if next_spec is not None and step.out_tensor == next_spec.name
                else project_layout(v, out_spec, next_spec)
            )
            return projected == lnext

        out_ok = np.array([ok(v) for v in vocabs[slot_out]], dtype=bool)
        mask &= out_ok[ids[slot_out]]
    cand = np.flatnonzero(mask)
    if cand.size == 0:
        raise SSSPError(f"decoded path has no configuration for {step.op_name!r}")
    limit = totals[int(cand[0])] * 1.5
    cand = cand[cand < np.searchsorted(totals, limit, side="right")]
    pen = np.zeros(cand.size)
    for s, vp in enumerate(chain_penalty_vocab(vocabs)):
        if vp is not None:
            pen = pen + vp[ids[s][cand]]
    return sweep.measurements[int(cand[np.argmin(totals[cand] + pen)])]


def _needed_transposes(
    op: OpSpec,
    m: ConfigMeasurement,
    pinned: dict[str, Layout],
    env: DimEnv,
    cost: CostModel,
) -> list[TransposeInsertion]:
    """Transposes required to run ``m`` against the current pins."""
    return [
        TransposeInsertion(
            tensor=t.name,
            from_layout=pinned[t.name],
            to_layout=layout,
            time_us=_transpose_us(cost, t, env),
            before_op=op.name,
        )
        for t, layout in _iter_operand_layouts(op, m)
        if t.name in pinned and pinned[t.name] != layout
    ]


# ---------------------------------------------------------------------------
# Selection
# ---------------------------------------------------------------------------

def select_configurations(
    graph: DataflowGraph,
    env: DimEnv,
    cost: CostModel | None = None,
    *,
    sweeps: dict[str, SweepResult] | None = None,
    source: str = "x",
    cap: int | None = 1000,
    seed: int = 0x5EED,
    jobs: int | None = None,
    fast: bool | None = None,
    register=None,
) -> SelectedConfiguration:
    """Run Step 4: global layout selection and full-graph assembly.

    Sweeps route through the engine scheduler (two-tier cache, structural
    dedup); ``jobs`` parallelizes cold sweeps without changing results.
    ``fast`` selects the vectorized pipeline (default; ``None`` defers to
    ``REPRO_CONFIGSEL_FAST``) or the scalar reference — the two are
    bit-identical, so the flag never changes any result.

    ``register`` persists the finished selection as a content-addressed
    :class:`~repro.registry.ScheduleEntry`: pass a
    :class:`~repro.registry.ScheduleRegistry`, or ``True`` to use the
    process-active registry (silently skipped when none is configured).
    The entry's digest lands in ``registered_digest``.  ``seed`` is the
    sampling seed the sweeps — and the registered digest — are keyed by.
    """
    cost = cost or CostModel()
    use_fast = _fast_enabled(fast)
    obs.set_attr("configsel.fast", use_fast)
    if sweeps is None:
        sweeps = sweep_graph(graph, env, cost, cap=cap, seed=seed, jobs=jobs)
    with obs.span(
        "configsel.select", ops=len(sweeps), source=source
    ):
        return _select_configurations_swept(
            graph, env, cost, sweeps=sweeps, source=source, cap=cap,
            seed=seed, fast=use_fast, register=register,
        )


def _select_configurations_swept(
    graph: DataflowGraph,
    env: DimEnv,
    cost: CostModel,
    *,
    sweeps: dict[str, SweepResult],
    source: str,
    cap: int | None,
    seed: int,
    fast: bool,
    register,
) -> SelectedConfiguration:
    use_fast = fast
    chain = primary_chain(graph, source=source)
    if use_fast:
        mats = build_chain_matrices(graph, chain, sweeps, env, cost)
        chain_cost, boundary, chain_transposes = _solve_chain_fast(mats, chain)
    else:
        cg = build_config_graph(graph, chain, sweeps, env, cost)
        chain_cost, path = shortest_path(cg, _SOURCE, _TARGET)
        boundary, chain_transposes = _decode_path(chain, path)

    chosen: dict[str, ConfigMeasurement] = {}
    pinned: dict[str, Layout] = {}
    transposes: list[TransposeInsertion] = []
    for idx, from_l, to_l in chain_transposes:
        spec = graph.container(chain[idx].in_tensor)
        transposes.append(
            TransposeInsertion(
                tensor=spec.name,
                from_layout=from_l,
                to_layout=to_l,
                time_us=_transpose_us(cost, spec, env),
                before_op=chain[idx].op_name,
            )
        )

    # 1. Chain operators: honor the SSSP-selected boundary layouts.  Among
    #    near-tie configurations matching the boundary we prefer default
    #    layouts for the free operands (coherence for later inference).
    for step_idx, (step, (lin, lnext)) in enumerate(zip(chain, boundary)):
        sweep = sweeps[step.op_name]
        op = graph.op(step.op_name)
        out_spec = graph.container(step.out_tensor)
        next_spec = (
            graph.container(chain[step_idx + 1].in_tensor)
            if lnext is not None
            else None
        )

        def chain_penalty(m: ConfigMeasurement) -> float:
            p = 0.0
            for t, l in _iter_operand_layouts(op, m):
                if t.name in pinned:
                    if pinned[t.name] != l:
                        # Mismatching an already-pinned operand needs a real
                        # transpose: charge it in full.
                        p += _transpose_us(cost, t, env)
                elif l.dims != t.dims and t.rank > 1:
                    p += 0.5 * _transpose_us(cost, t, env)
            return p

        if use_fast:

            def chain_penalty_vocab(vocabs):
                # Per-slot vocabulary penalties mirroring chain_penalty:
                # gathered per candidate, accumulated in operand order.
                out = []
                for t, vocab in zip(_operands(op), vocabs):
                    pin = pinned.get(t.name)
                    if pin is not None:
                        full = _transpose_us(cost, t, env)
                        out.append(
                            np.array(
                                [
                                    0.0 if (v is None or v == pin) else full
                                    for v in vocab
                                ]
                            )
                        )
                    elif t.rank > 1:
                        half = 0.5 * _transpose_us(cost, t, env)
                        out.append(
                            np.array(
                                [
                                    half
                                    if (v is not None and v.dims != t.dims)
                                    else 0.0
                                    for v in vocab
                                ]
                            )
                        )
                    else:
                        out.append(None)
                return out

            pick = _fast_chain_pick(
                op, sweep, step, lin, lnext, out_spec, next_spec, chain_penalty_vocab
            )
        else:

            def matches(m: ConfigMeasurement) -> bool:
                if m.config.input_layouts[step.in_index] != lin:
                    return False
                if lnext is not None:
                    lout = m.config.output_layouts[step.out_index]
                    projected = (
                        lout
                        if next_spec is not None and step.out_tensor == next_spec.name
                        else project_layout(lout, out_spec, next_spec)
                    )
                    if projected != lnext:
                        return False
                return True

            best: ConfigMeasurement | None = None
            candidates: list[ConfigMeasurement] = []
            for m in sweep.measurements:
                if best is not None and m.total_us > best.total_us * 1.5:
                    break
                if matches(m):
                    if best is None:
                        best = m
                    candidates.append(m)
            if best is None:
                raise SSSPError(
                    f"decoded path has no configuration for {step.op_name!r}"
                )
            pick = min(candidates, key=lambda m: m.total_us + chain_penalty(m))

        # Flexible chain kernels: also try free operands in default layouts
        # with re-optimized vector/warp dims (the sparse sampled sweep may
        # miss the coherent point entirely).
        if (
            op.op_class is not OpClass.TENSOR_CONTRACTION
            and lnext is not None
            and next_spec is not None
            and step.out_tensor == next_spec.name
        ):
            temp_pins = dict(pinned)
            temp_pins[step.in_tensor] = lin
            temp_pins[step.out_tensor] = lnext
            constructed = _construct_consistent(op, sweep, temp_pins, env, cost)
            if constructed is not None and (
                constructed.total_us + chain_penalty(constructed)
                < pick.total_us + chain_penalty(pick)
            ):
                pick = constructed
        chosen[step.op_name] = pick
        # Record real transposes for operands that were pinned earlier and
        # mismatch (e.g. the residual skip of BDRLN1 reading ``x`` in a
        # different layout than the projection chose).
        for t, l in _iter_operand_layouts(op, pick):
            if t.name in pinned and pinned[t.name] != l:
                transposes.append(
                    TransposeInsertion(
                        tensor=t.name,
                        from_layout=pinned[t.name],
                        to_layout=l,
                        time_us=_transpose_us(cost, t, env),
                        before_op=step.op_name,
                    )
                )
        _pin_config(op, pick, pinned, overwrite=False)
        # The SSSP boundary decision overrides any earlier soft pin.
        pinned[step.in_tensor] = lin

    # 2. Remaining operators, contractions first: the expensive GEMMs get
    #    the layout freedom; the flexible memory-bound kernels then adapt to
    #    whatever layouts are pinned (they accept any combination).
    remaining = [op for op in graph.ops if not op.is_view and op.name not in chosen]
    contractions = [
        op for op in remaining if op.op_class is OpClass.TENSOR_CONTRACTION
    ]
    flexible = [op for op in remaining if op.op_class is not OpClass.TENSOR_CONTRACTION]

    for op in contractions:
        sweep = sweeps[op.name]
        # Running in a different layout plus explicit transposes may beat the
        # best pin-consistent GEMM (the paper's transpose-vs-layout
        # tradeoff).  Scanning all configurations lets the fallback choose
        # *which* operand to transpose — mismatching a small weight-gradient
        # tensor is far cheaper than mismatching a sequence-sized activation.
        if use_fast:
            consistent = _fast_best_coherent(op, sweep, pinned, env, cost)
            best_alt, best_alt_needed, best_alt_cost = _fast_transpose_alt(
                op, sweep, pinned, env, cost
            )
        else:
            consistent = _best_coherent(op, sweep, pinned, env, cost)
            best_alt: ConfigMeasurement | None = None
            best_alt_needed: list[TransposeInsertion] = []
            best_alt_cost = float("inf")
            for m in sweep.measurements:
                if m.total_us >= best_alt_cost:
                    break  # sorted: no later config can win even transpose-free
                needed = _needed_transposes(op, m, pinned, env, cost)
                total = m.total_us + sum(t.time_us for t in needed)
                if total < best_alt_cost:
                    best_alt, best_alt_needed, best_alt_cost = m, needed, total
        if consistent is not None and consistent.total_us <= best_alt_cost:
            chosen[op.name] = consistent
            _pin_config(op, consistent, pinned, overwrite=False)
        else:
            assert best_alt is not None
            chosen[op.name] = best_alt
            transposes.extend(best_alt_needed)
            _pin_config(op, best_alt, pinned, overwrite=False)

    for op in flexible:
        sweep = sweeps[op.name]
        if use_fast:
            match = _fast_best_consistent(op, sweep, pinned)
        else:
            match = _best_consistent(op, sweep, pinned)
        constructed = _construct_consistent(op, sweep, pinned, env, cost)
        if constructed is not None and (
            match is None or constructed.total_us < match.total_us
        ):
            match = constructed
        if match is None:
            match = sweep.best
        # A badly pinned operand can make even the re-optimized consistent
        # kernel slow; transposing some operands and running a faster config
        # may win (the same tradeoff the SSSP transpose edges encode).  The
        # scan picks which operands to transpose.
        if use_fast:
            alt, alt_needed, alt_cost = _fast_transpose_alt(
                op, sweep, pinned, env, cost
            )
            if alt is not None and not alt_cost < match.total_us:
                alt, alt_needed = None, []
        else:
            alt: ConfigMeasurement | None = None
            alt_needed: list[TransposeInsertion] = []
            alt_cost = match.total_us
            for m in sweep.measurements:
                if m.total_us >= alt_cost:
                    break
                needed = _needed_transposes(op, m, pinned, env, cost)
                total = m.total_us + sum(t.time_us for t in needed)
                if total < alt_cost:
                    alt, alt_needed, alt_cost = m, needed, total
        if alt is not None:
            chosen[op.name] = alt
            transposes.extend(alt_needed)
            _pin_config(op, alt, pinned, overwrite=False)
        else:
            chosen[op.name] = match
            _pin_config(op, match, pinned, overwrite=False)

    selected = SelectedConfiguration(
        chain=chain,
        chosen=chosen,
        pinned_layouts=pinned,
        transposes=transposes,
        chain_cost_us=chain_cost,
    )
    if register:
        # Lazy import: the registry package pulls in the service protocol,
        # which this hot module must not load unless registration is asked.
        from repro.registry import get_schedule_registry, register_selection

        registry = register if register is not True else get_schedule_registry()
        if registry is not None:
            entry = register_selection(
                registry,
                graph,
                env,
                cost,
                selected,
                cap=cap,
                seed=seed,
                source=source,
                registrar="select_configurations",
            )
            selected.registered_digest = entry.digest
    return selected


def _iter_operand_layouts(op: OpSpec, m: ConfigMeasurement):
    for t, l in zip(op.inputs, m.config.input_layouts):
        yield t, l
    for t, l in zip(op.outputs, m.config.output_layouts):
        yield t, l


def _pin_config(
    op: OpSpec, m: ConfigMeasurement, pinned: dict[str, Layout], *, overwrite: bool = True
) -> None:
    for t, l in _iter_operand_layouts(op, m):
        if overwrite or t.name not in pinned:
            pinned[t.name] = l


def _best_consistent(
    op: OpSpec, sweep: SweepResult, pinned: dict[str, Layout]
) -> ConfigMeasurement | None:
    for m in sweep.measurements:  # ascending time
        ok = True
        for t, l in _iter_operand_layouts(op, m):
            if t.name in pinned and pinned[t.name] != l:
                ok = False
                break
        if ok:
            return m
    return None


def _best_coherent(
    op: OpSpec,
    sweep: SweepResult,
    pinned: dict[str, Layout],
    env: DimEnv,
    cost: CostModel,
    *,
    tolerance: float = 1.5,
) -> ConfigMeasurement | None:
    """Best pin-consistent config under a layout-externality surrogate.

    GEMM distributions have several near-equal modes (Fig. 4: "many slightly
    different data layouts could be used with little impact on performance"),
    so the choice among them should account for downstream costs: an operand
    left in a non-default layout forces adjacent memory-bound kernels to
    either access it strided or transpose it.  We charge each non-default
    unpinned operand half its transpose cost and minimize the penalized
    time over all consistent configurations within ``tolerance`` of the
    fastest one.  This internalizes the paper's "locally suboptimal layouts
    ... improve performance globally" tradeoff.
    """
    best = _best_consistent(op, sweep, pinned)
    if best is None:
        return None
    limit = best.total_us * tolerance

    def penalty(m: ConfigMeasurement) -> float:
        p = 0.0
        for t, l in _iter_operand_layouts(op, m):
            if t.name not in pinned and l.dims != t.dims and t.rank > 1:
                p += 0.5 * _transpose_us(cost, t, env)
        return p

    winner: ConfigMeasurement | None = None
    winner_score = float("inf")
    for m in sweep.measurements:
        if m.total_us > limit:
            break
        ok = all(
            pinned.get(t.name, l) == l for t, l in _iter_operand_layouts(op, m)
        )
        if not ok:
            continue
        score = m.total_us + penalty(m)
        if score < winner_score:
            winner, winner_score = m, score
    return winner or best


def _coherence(op: OpSpec, m: ConfigMeasurement, pinned: dict[str, Layout]) -> int:
    """How many unpinned operands this config keeps in default layout."""
    score = 0
    for t, l in _iter_operand_layouts(op, m):
        if t.name not in pinned and l.dims == t.dims:
            score += 1
    return score


def _construct_consistent(
    op: OpSpec,
    sweep: SweepResult,
    pinned: dict[str, Layout],
    env: DimEnv,
    cost: CostModel,
) -> ConfigMeasurement | None:
    """Build the best pin-consistent configuration for a flexible kernel.

    Pinned operands keep their pinned layouts; free operands are tried both
    in the sweep-best layouts and in default layouts (coherence); the
    vectorization and warp-reduce dims are re-optimized under each choice.
    Shared verbatim by the scalar and fast pipelines.
    """
    best_cfg = sweep.best.config
    layout_variants: list[tuple[tuple[Layout, ...], tuple[Layout, ...]]] = []
    layout_variants.append(
        (
            tuple(pinned.get(t.name, l) for t, l in zip(op.inputs, best_cfg.input_layouts)),
            tuple(pinned.get(t.name, l) for t, l in zip(op.outputs, best_cfg.output_layouts)),
        )
    )
    layout_variants.append(
        (
            tuple(pinned.get(t.name, Layout(t.dims)) for t in op.inputs),
            tuple(pinned.get(t.name, Layout(t.dims)) for t in op.outputs),
        )
    )
    vec_options: list[str | None] = list(op.ispace.all_dims) or [None]
    warp_options: list[str | None] = list(op.ispace.reduction) or [None]
    best: ConfigMeasurement | None = None
    from repro.layouts.config import OpConfig

    for in_layouts, out_layouts in layout_variants:
        for vec in vec_options:
            for warp in warp_options:
                config = OpConfig(
                    op_name=op.name,
                    input_layouts=in_layouts,
                    output_layouts=out_layouts,
                    vector_dim=vec,
                    warp_reduce_dim=warp,
                )
                kt = cost.time_op(op, config, env)
                if kt is None:
                    continue
                m = ConfigMeasurement(config=config, time=kt)
                if best is None or m.total_us < best.total_us:
                    best = m
    return best
