"""Global configuration selection (Sec. VI-A) and end-to-end assembly.

Builds the layered configuration DAG over the forward primary chain
(Fig. 6), runs SSSP to pick the globally best layout sequence — allowing
locally suboptimal operators when a layout change downstream pays off
("Sometimes locally suboptimal layouts need to be selected to improve
performance globally", Sec. VI-B) — then infers the configurations of all
remaining operators (backward, dW, residual side chains) from the pinned
activation layouts, inserting explicit transposes where no compatible
configuration exists.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.autotuner.tuner import ConfigMeasurement, SweepResult
from repro.engine import sweep_graph
from repro.hardware.cost_model import CostModel
from repro.ir.dims import DimEnv
from repro.ir.graph import DataflowGraph
from repro.ir.operator import OpClass, OpSpec
from repro.layouts.layout import Layout

from .chain import ChainStep, primary_chain, project_layout
from .sssp import ConfigGraph, SSSPError, shortest_path

__all__ = ["SelectedConfiguration", "TransposeInsertion", "select_configurations",
           "build_config_graph"]

_SOURCE = ("source",)
_TARGET = ("target",)


@dataclass(frozen=True)
class TransposeInsertion:
    """An explicit layout-change kernel inserted between two operators."""

    tensor: str
    from_layout: Layout
    to_layout: Layout
    time_us: float
    before_op: str


@dataclass
class SelectedConfiguration:
    """The assembled end-to-end implementation."""

    chain: list[ChainStep]
    chosen: dict[str, ConfigMeasurement]
    pinned_layouts: dict[str, Layout]
    transposes: list[TransposeInsertion] = field(default_factory=list)
    chain_cost_us: float = 0.0

    def op_time_us(self, op_name: str) -> float:
        return self.chosen[op_name].total_us

    @property
    def transpose_us(self) -> float:
        return sum(t.time_us for t in self.transposes)

    @property
    def total_us(self) -> float:
        """End-to-end predicted time: all kernels plus inserted transposes."""
        return sum(m.total_us for m in self.chosen.values()) + self.transpose_us

    def stage_total_us(self, graph: DataflowGraph, *, backward: bool) -> float:
        total = 0.0
        for name, m in self.chosen.items():
            op = graph.op(name)
            if op.stage.is_backward == backward:
                total += m.total_us
        for t in self.transposes:
            op = graph.op(t.before_op)
            if op.stage.is_backward == backward:
                total += t.time_us
        return total


def build_config_graph(
    graph: DataflowGraph,
    chain: list[ChainStep],
    sweeps: dict[str, SweepResult],
    env: DimEnv,
    cost: CostModel,
) -> ConfigGraph:
    """The layered Fig.-6 DAG: layout nodes per chain boundary, operator
    edges weighted by layout-conditioned minima, and transpose edges."""
    cg = ConfigGraph()
    cg.add_node(_SOURCE)
    cg.add_node(_TARGET)

    def boundary_layouts(step_idx: int) -> list[Layout]:
        step = chain[step_idx]
        spec = graph.container(step.in_tensor)
        from repro.layouts.layout import all_layouts

        return list(all_layouts(spec.dims))

    # Each boundary is split into an arrival and a departure column so that
    # transpose edges (arrival layout -> departure layout) keep the graph a
    # DAG; operator edges leave departures and enter the next arrival.
    def arr(step_idx: int, layout: Layout):
        return ("t", step_idx, layout.dims)

    def dep(step_idx: int, layout: Layout):
        return ("dep", step_idx, layout.dims)

    # Source: the layer input's layout is free to choose.
    for l in boundary_layouts(0):
        cg.add_edge(_SOURCE, arr(0, l), 0.0)

    for idx, step in enumerate(chain):
        sweep = sweeps[step.op_name]
        out_spec = graph.container(step.out_tensor)
        next_spec = graph.container(chain[idx + 1].in_tensor) if idx + 1 < len(chain) else None

        # Transpose edges within this boundary (0-cost to stay put).
        in_spec = graph.container(step.in_tensor)
        t_time = cost.time_transpose(in_spec, env).total_us
        layouts = boundary_layouts(idx)
        for a in layouts:
            cg.add_edge(arr(idx, a), dep(idx, a), 0.0)
            for b in layouts:
                if a != b:
                    cg.add_edge(arr(idx, a), dep(idx, b), t_time)

        # Operator edges: (in layout at this boundary) -> (projected out
        # layout at the next boundary), weighted by the layout-conditioned
        # minimum runtime.  The per-(in, out)-layout minima come from the
        # sweep's precomputed index; projection then runs once per distinct
        # layout pair rather than once per measurement.
        grouped: dict[tuple[tuple[str, ...], tuple[str, ...] | None], float] = {}
        for (lin_dims, lout_dims), t_us in sweep.layout_pair_minima(
            step.in_index, step.out_index
        ).items():
            if next_spec is not None:
                lout = Layout(lout_dims)
                projected = (
                    lout
                    if step.out_tensor == chain[idx + 1].in_tensor
                    else project_layout(lout, out_spec, next_spec)
                )
                if projected is None:
                    continue
                key = (lin_dims, projected.dims)
            else:
                key = (lin_dims, None)
            if key not in grouped or t_us < grouped[key]:
                grouped[key] = t_us
        if not grouped:
            raise SSSPError(f"no usable configurations for chain op {step.op_name!r}")
        for (lin_dims, lout_dims), w in grouped.items():
            src = dep(idx, Layout(lin_dims))
            dst = _TARGET if lout_dims is None else arr(idx + 1, Layout(lout_dims))
            cg.add_edge(src, dst, w)
    return cg


def _decode_path(
    chain: list[ChainStep], path: list
) -> tuple[list[tuple[Layout, Layout | None]], list[tuple[int, Layout, Layout]]]:
    """Decode the SSSP path.

    Returns per-step ``(consumed layout, produced arrival layout or None)``
    plus the chain transposes as ``(step index, from, to)`` triples.
    """
    arrivals: dict[int, Layout] = {}
    departures: dict[int, Layout] = {}
    for nd in path:
        if isinstance(nd, tuple) and len(nd) == 3:
            kind, idx, dims = nd
            if kind == "t":
                arrivals[idx] = Layout(dims)
            elif kind == "dep":
                departures[idx] = Layout(dims)
    steps: list[tuple[Layout, Layout | None]] = []
    transposes: list[tuple[int, Layout, Layout]] = []
    for i in range(len(chain)):
        consumed = departures[i]
        if arrivals[i] != consumed:
            transposes.append((i, arrivals[i], consumed))
        steps.append((consumed, arrivals.get(i + 1)))
    return steps, transposes


def select_configurations(
    graph: DataflowGraph,
    env: DimEnv,
    cost: CostModel | None = None,
    *,
    sweeps: dict[str, SweepResult] | None = None,
    source: str = "x",
    cap: int | None = 1000,
    jobs: int | None = None,
) -> SelectedConfiguration:
    """Run Step 4: global layout selection and full-graph assembly.

    Sweeps route through the engine scheduler (two-tier cache, structural
    dedup); ``jobs`` parallelizes cold sweeps without changing results.
    """
    cost = cost or CostModel()
    if sweeps is None:
        sweeps = sweep_graph(graph, env, cost, cap=cap, jobs=jobs)
    chain = primary_chain(graph, source=source)
    cg = build_config_graph(graph, chain, sweeps, env, cost)
    chain_cost, path = shortest_path(cg, _SOURCE, _TARGET)
    boundary, chain_transposes = _decode_path(chain, path)

    chosen: dict[str, ConfigMeasurement] = {}
    pinned: dict[str, Layout] = {}
    transposes: list[TransposeInsertion] = []
    for idx, from_l, to_l in chain_transposes:
        spec = graph.container(chain[idx].in_tensor)
        transposes.append(
            TransposeInsertion(
                tensor=spec.name,
                from_layout=from_l,
                to_layout=to_l,
                time_us=cost.time_transpose(spec, env).total_us,
                before_op=chain[idx].op_name,
            )
        )

    # 1. Chain operators: honor the SSSP-selected boundary layouts.  Among
    #    near-tie configurations matching the boundary we prefer default
    #    layouts for the free operands (coherence for later inference).
    for step, (lin, lnext) in zip(chain, boundary):
        sweep = sweeps[step.op_name]
        op = graph.op(step.op_name)
        out_spec = graph.container(step.out_tensor)
        next_spec = (
            graph.container(chain[chain.index(step) + 1].in_tensor)
            if lnext is not None
            else None
        )

        def matches(m: ConfigMeasurement) -> bool:
            if m.config.input_layouts[step.in_index] != lin:
                return False
            if lnext is not None:
                lout = m.config.output_layouts[step.out_index]
                projected = (
                    lout
                    if next_spec is not None and step.out_tensor == next_spec.name
                    else project_layout(lout, out_spec, next_spec)
                )
                if projected != lnext:
                    return False
            return True

        best: ConfigMeasurement | None = None
        candidates: list[ConfigMeasurement] = []
        for m in sweep.measurements:
            if best is not None and m.total_us > best.total_us * 1.5:
                break
            if matches(m):
                if best is None:
                    best = m
                candidates.append(m)
        if best is None:
            raise SSSPError(f"decoded path has no configuration for {step.op_name!r}")

        def chain_penalty(m: ConfigMeasurement) -> float:
            p = 0.0
            for t, l in _iter_operand_layouts(op, m):
                if t.name in pinned:
                    if pinned[t.name] != l:
                        # Mismatching an already-pinned operand needs a real
                        # transpose: charge it in full.
                        p += cost.time_transpose(t, env).total_us
                elif l.dims != t.dims and t.rank > 1:
                    p += 0.5 * cost.time_transpose(t, env).total_us
            return p

        pick = min(candidates, key=lambda m: m.total_us + chain_penalty(m))
        # Flexible chain kernels: also try free operands in default layouts
        # with re-optimized vector/warp dims (the sparse sampled sweep may
        # miss the coherent point entirely).
        if (
            op.op_class is not OpClass.TENSOR_CONTRACTION
            and lnext is not None
            and next_spec is not None
            and step.out_tensor == next_spec.name
        ):
            temp_pins = dict(pinned)
            temp_pins[step.in_tensor] = lin
            temp_pins[step.out_tensor] = lnext
            constructed = _construct_consistent(op, sweep, temp_pins, env, cost)
            if constructed is not None and (
                constructed.total_us + chain_penalty(constructed)
                < pick.total_us + chain_penalty(pick)
            ):
                pick = constructed
        chosen[step.op_name] = pick
        # Record real transposes for operands that were pinned earlier and
        # mismatch (e.g. the residual skip of BDRLN1 reading ``x`` in a
        # different layout than the projection chose).
        for t, l in _iter_operand_layouts(op, pick):
            if t.name in pinned and pinned[t.name] != l:
                transposes.append(
                    TransposeInsertion(
                        tensor=t.name,
                        from_layout=pinned[t.name],
                        to_layout=l,
                        time_us=cost.time_transpose(t, env).total_us,
                        before_op=step.op_name,
                    )
                )
        _pin_config(op, pick, pinned, overwrite=False)
        # The SSSP boundary decision overrides any earlier soft pin.
        pinned[step.in_tensor] = lin

    # 2. Remaining operators, contractions first: the expensive GEMMs get
    #    the layout freedom; the flexible memory-bound kernels then adapt to
    #    whatever layouts are pinned (they accept any combination).
    remaining = [op for op in graph.ops if not op.is_view and op.name not in chosen]
    contractions = [
        op for op in remaining if op.op_class is OpClass.TENSOR_CONTRACTION
    ]
    flexible = [op for op in remaining if op.op_class is not OpClass.TENSOR_CONTRACTION]

    for op in contractions:
        sweep = sweeps[op.name]
        consistent = _best_coherent(op, sweep, pinned, env, cost)
        # Running in a different layout plus explicit transposes may beat the
        # best pin-consistent GEMM (the paper's transpose-vs-layout
        # tradeoff).  Scanning all configurations lets the fallback choose
        # *which* operand to transpose — mismatching a small weight-gradient
        # tensor is far cheaper than mismatching a sequence-sized activation.
        best_alt: ConfigMeasurement | None = None
        best_alt_needed: list[TransposeInsertion] = []
        best_alt_cost = float("inf")
        for m in sweep.measurements:
            if m.total_us >= best_alt_cost:
                break  # sorted: no later config can win even transpose-free
            needed = [
                TransposeInsertion(
                    tensor=t.name,
                    from_layout=pinned[t.name],
                    to_layout=layout,
                    time_us=cost.time_transpose(t, env).total_us,
                    before_op=op.name,
                )
                for t, layout in _iter_operand_layouts(op, m)
                if t.name in pinned and pinned[t.name] != layout
            ]
            total = m.total_us + sum(t.time_us for t in needed)
            if total < best_alt_cost:
                best_alt, best_alt_needed, best_alt_cost = m, needed, total
        if consistent is not None and consistent.total_us <= best_alt_cost:
            chosen[op.name] = consistent
            _pin_config(op, consistent, pinned, overwrite=False)
        else:
            assert best_alt is not None
            chosen[op.name] = best_alt
            transposes.extend(best_alt_needed)
            _pin_config(op, best_alt, pinned, overwrite=False)

    for op in flexible:
        sweep = sweeps[op.name]
        match = _best_consistent(op, sweep, pinned)
        constructed = _construct_consistent(op, sweep, pinned, env, cost)
        if constructed is not None and (
            match is None or constructed.total_us < match.total_us
        ):
            match = constructed
        if match is None:
            match = sweep.best
        # A badly pinned operand can make even the re-optimized consistent
        # kernel slow; transposing some operands and running a faster config
        # may win (the same tradeoff the SSSP transpose edges encode).  The
        # scan picks which operands to transpose.
        alt: ConfigMeasurement | None = None
        alt_needed: list[TransposeInsertion] = []
        alt_cost = match.total_us
        for m in sweep.measurements:
            if m.total_us >= alt_cost:
                break
            needed = [
                TransposeInsertion(
                    tensor=t.name,
                    from_layout=pinned[t.name],
                    to_layout=layout,
                    time_us=cost.time_transpose(t, env).total_us,
                    before_op=op.name,
                )
                for t, layout in _iter_operand_layouts(op, m)
                if t.name in pinned and pinned[t.name] != layout
            ]
            total = m.total_us + sum(t.time_us for t in needed)
            if total < alt_cost:
                alt, alt_needed, alt_cost = m, needed, total
        if alt is not None:
            chosen[op.name] = alt
            transposes.extend(alt_needed)
            _pin_config(op, alt, pinned, overwrite=False)
        else:
            chosen[op.name] = match
            _pin_config(op, match, pinned, overwrite=False)

    return SelectedConfiguration(
        chain=chain,
        chosen=chosen,
        pinned_layouts=pinned,
        transposes=transposes,
        chain_cost_us=chain_cost,
    )


def _iter_operand_layouts(op: OpSpec, m: ConfigMeasurement):
    for t, l in zip(op.inputs, m.config.input_layouts):
        yield t, l
    for t, l in zip(op.outputs, m.config.output_layouts):
        yield t, l


def _pin_config(
    op: OpSpec, m: ConfigMeasurement, pinned: dict[str, Layout], *, overwrite: bool = True
) -> None:
    for t, l in _iter_operand_layouts(op, m):
        if overwrite or t.name not in pinned:
            pinned[t.name] = l


def _best_consistent(
    op: OpSpec, sweep: SweepResult, pinned: dict[str, Layout]
) -> ConfigMeasurement | None:
    for m in sweep.measurements:  # ascending time
        ok = True
        for t, l in _iter_operand_layouts(op, m):
            if t.name in pinned and pinned[t.name] != l:
                ok = False
                break
        if ok:
            return m
    return None


def _best_coherent(
    op: OpSpec,
    sweep: SweepResult,
    pinned: dict[str, Layout],
    env: DimEnv,
    cost: CostModel,
    *,
    tolerance: float = 1.5,
) -> ConfigMeasurement | None:
    """Best pin-consistent config under a layout-externality surrogate.

    GEMM distributions have several near-equal modes (Fig. 4: "many slightly
    different data layouts could be used with little impact on performance"),
    so the choice among them should account for downstream costs: an operand
    left in a non-default layout forces adjacent memory-bound kernels to
    either access it strided or transpose it.  We charge each non-default
    unpinned operand half its transpose cost and minimize the penalized
    time over all consistent configurations within ``tolerance`` of the
    fastest one.  This internalizes the paper's "locally suboptimal layouts
    ... improve performance globally" tradeoff.
    """
    best = _best_consistent(op, sweep, pinned)
    if best is None:
        return None
    limit = best.total_us * tolerance

    def penalty(m: ConfigMeasurement) -> float:
        p = 0.0
        for t, l in _iter_operand_layouts(op, m):
            if t.name not in pinned and l.dims != t.dims and t.rank > 1:
                p += 0.5 * cost.time_transpose(t, env).total_us
        return p

    winner: ConfigMeasurement | None = None
    winner_score = float("inf")
    for m in sweep.measurements:
        if m.total_us > limit:
            break
        ok = all(
            pinned.get(t.name, l) == l for t, l in _iter_operand_layouts(op, m)
        )
        if not ok:
            continue
        score = m.total_us + penalty(m)
        if score < winner_score:
            winner, winner_score = m, score
    return winner or best


def _coherence(op: OpSpec, m: ConfigMeasurement, pinned: dict[str, Layout]) -> int:
    """How many unpinned operands this config keeps in default layout."""
    score = 0
    for t, l in _iter_operand_layouts(op, m):
        if t.name not in pinned and l.dims == t.dims:
            score += 1
    return score


def _construct_consistent(
    op: OpSpec,
    sweep: SweepResult,
    pinned: dict[str, Layout],
    env: DimEnv,
    cost: CostModel,
) -> ConfigMeasurement | None:
    """Build the best pin-consistent configuration for a flexible kernel.

    Pinned operands keep their pinned layouts; free operands are tried both
    in the sweep-best layouts and in default layouts (coherence); the
    vectorization and warp-reduce dims are re-optimized under each choice.
    """
    best_cfg = sweep.best.config
    layout_variants: list[tuple[tuple[Layout, ...], tuple[Layout, ...]]] = []
    layout_variants.append(
        (
            tuple(pinned.get(t.name, l) for t, l in zip(op.inputs, best_cfg.input_layouts)),
            tuple(pinned.get(t.name, l) for t, l in zip(op.outputs, best_cfg.output_layouts)),
        )
    )
    layout_variants.append(
        (
            tuple(pinned.get(t.name, Layout(t.dims)) for t in op.inputs),
            tuple(pinned.get(t.name, Layout(t.dims)) for t in op.outputs),
        )
    )
    vec_options: list[str | None] = list(op.ispace.all_dims) or [None]
    warp_options: list[str | None] = list(op.ispace.reduction) or [None]
    best: ConfigMeasurement | None = None
    from repro.layouts.config import OpConfig

    for in_layouts, out_layouts in layout_variants:
        for vec in vec_options:
            for warp in warp_options:
                config = OpConfig(
                    op_name=op.name,
                    input_layouts=in_layouts,
                    output_layouts=out_layouts,
                    vector_dim=vec,
                    warp_reduce_dim=warp,
                )
                kt = cost.time_op(op, config, env)
                if kt is None:
                    continue
                m = ConfigMeasurement(config=config, time=kt)
                if best is None or m.total_us < best.total_us:
                    best = m
    return best
