"""Global configuration selection via SSSP (paper Sec. VI-A, Fig. 6)."""

from .chain import ChainError, ChainStep, primary_chain, project_layout
from .refinement import RefinementResult, refine_selection
from .selector import (
    ChainMatrices,
    FAST_ENV_VAR,
    SelectedConfiguration,
    TransposeInsertion,
    build_chain_matrices,
    build_config_graph,
    select_configurations,
)
from .sssp import (
    ConfigGraph,
    SSSPError,
    shortest_path,
    shortest_path_layered,
    shortest_path_networkx,
)

__all__ = [
    "ChainError",
    "ChainMatrices",
    "FAST_ENV_VAR",
    "RefinementResult",
    "refine_selection",
    "ChainStep",
    "ConfigGraph",
    "SSSPError",
    "SelectedConfiguration",
    "TransposeInsertion",
    "build_chain_matrices",
    "build_config_graph",
    "primary_chain",
    "project_layout",
    "select_configurations",
    "shortest_path",
    "shortest_path_layered",
    "shortest_path_networkx",
]
