"""Single-source shortest path over the configuration DAG.

The configuration graph is a layered DAG (Sec. VI-A: "Because this graph is
a DAG ... SSSP takes linear time asymptotically"), so one topological
relaxation pass suffices.  A networkx Dijkstra cross-check is provided and
the test suite asserts both agree.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

__all__ = ["ConfigGraph", "shortest_path", "shortest_path_networkx", "SSSPError"]


class SSSPError(ValueError):
    """Raised when the target is unreachable or the graph is malformed."""


@dataclass
class ConfigGraph:
    """A weighted DAG with hashable nodes and parallel-edge-minimizing adds."""

    edges: dict[tuple[object, object], float] = field(default_factory=dict)
    succ: dict[object, list[object]] = field(default_factory=dict)
    nodes: set = field(default_factory=set)

    def add_node(self, node) -> None:
        self.nodes.add(node)
        self.succ.setdefault(node, [])

    def add_edge(self, u, v, weight: float) -> None:
        """Add an edge, keeping only the lightest among parallel edges."""
        if weight < 0:
            raise SSSPError(f"negative edge weight {weight} on {u} -> {v}")
        self.add_node(u)
        self.add_node(v)
        key = (u, v)
        if key not in self.edges or weight < self.edges[key]:
            if key not in self.edges:
                self.succ[u].append(v)
            self.edges[key] = weight

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def _topo_order(self) -> list:
        indeg = {n: 0 for n in self.nodes}
        for (_, v) in self.edges:
            indeg[v] += 1
        ready = [n for n, d in indeg.items() if d == 0]
        order = []
        while ready:
            n = ready.pop()
            order.append(n)
            for v in self.succ.get(n, []):
                indeg[v] -= 1
                if indeg[v] == 0:
                    ready.append(v)
        if len(order) != len(self.nodes):
            raise SSSPError("configuration graph contains a cycle")
        return order


def shortest_path(graph: ConfigGraph, source, target) -> tuple[float, list]:
    """DAG shortest path by topological relaxation; returns (cost, path)."""
    if source not in graph.nodes or target not in graph.nodes:
        raise SSSPError("source/target missing from graph")
    dist: dict[object, float] = {n: float("inf") for n in graph.nodes}
    prev: dict[object, object] = {}
    dist[source] = 0.0
    for node in graph._topo_order():
        d = dist[node]
        if d == float("inf"):
            continue
        for v in graph.succ.get(node, []):
            w = graph.edges[(node, v)]
            if d + w < dist[v]:
                dist[v] = d + w
                prev[v] = node
    if dist[target] == float("inf"):
        raise SSSPError("target unreachable in configuration graph")
    path = [target]
    while path[-1] != source:
        path.append(prev[path[-1]])
    path.reverse()
    return dist[target], path


def shortest_path_networkx(graph: ConfigGraph, source, target) -> tuple[float, list]:
    """Cross-check implementation on networkx's Dijkstra."""
    g = nx.DiGraph()
    g.add_nodes_from(graph.nodes)
    for (u, v), w in graph.edges.items():
        g.add_edge(u, v, weight=w)
    try:
        cost, path = nx.single_source_dijkstra(g, source, target, weight="weight")
    except (nx.NetworkXNoPath, nx.NodeNotFound) as exc:
        raise SSSPError(str(exc)) from exc
    return cost, path
