"""Single-source shortest path over the configuration DAG.

The configuration graph is a layered DAG (Sec. VI-A: "Because this graph is
a DAG ... SSSP takes linear time asymptotically"), so one topological
relaxation pass suffices.  Two implementations are provided:

* :func:`shortest_path` — the scalar reference: explicit nodes and edges,
  node-by-node topological relaxation.  Path ties are broken by edge
  *insertion order* (the first in-edge of a node that attains its final
  distance wins), which makes the decoded path a deterministic function of
  the graph alone.
* :func:`shortest_path_layered` — the vectorized fast path: the layers are
  dense min-plus (tropical) cost matrices and each layer is relaxed with a
  single ``dist[:, None] + M`` broadcast.  ``np.argmin`` keeps the first
  (lowest-index) minimizer per column, so when the matrices enumerate the
  same edges in the same order as the scalar graph, cost *and path* are
  identical — additions associate the same way and ties resolve the same
  way.

A networkx Dijkstra cross-check is provided (imported lazily: the
dependency is cross-check-only and must not tax CLI or daemon startup) and
the test suite asserts all three agree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

__all__ = [
    "ConfigGraph",
    "shortest_path",
    "shortest_path_layered",
    "shortest_path_networkx",
    "SSSPError",
]


class SSSPError(ValueError):
    """Raised when the target is unreachable or the graph is malformed."""


@dataclass
class ConfigGraph:
    """A weighted DAG with hashable nodes and parallel-edge-minimizing adds."""

    edges: dict[tuple[object, object], float] = field(default_factory=dict)
    succ: dict[object, list[object]] = field(default_factory=dict)
    pred: dict[object, list[object]] = field(default_factory=dict)
    nodes: set = field(default_factory=set)

    def add_node(self, node) -> None:
        self.nodes.add(node)
        self.succ.setdefault(node, [])
        self.pred.setdefault(node, [])

    def add_edge(self, u, v, weight: float) -> None:
        """Add an edge, keeping only the lightest among parallel edges."""
        if weight < 0:
            raise SSSPError(f"negative edge weight {weight} on {u} -> {v}")
        self.add_node(u)
        self.add_node(v)
        key = (u, v)
        if key not in self.edges or weight < self.edges[key]:
            if key not in self.edges:
                self.succ[u].append(v)
                self.pred[v].append(u)
            self.edges[key] = weight

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def _topo_order(self) -> list:
        indeg = {n: 0 for n in self.nodes}
        for (_, v) in self.edges:
            indeg[v] += 1
        ready = [n for n, d in indeg.items() if d == 0]
        order = []
        while ready:
            n = ready.pop()
            order.append(n)
            for v in self.succ.get(n, []):
                indeg[v] -= 1
                if indeg[v] == 0:
                    ready.append(v)
        if len(order) != len(self.nodes):
            raise SSSPError("configuration graph contains a cycle")
        return order


def shortest_path(graph: ConfigGraph, source, target) -> tuple[float, list]:
    """DAG shortest path by topological relaxation; returns (cost, path).

    The path is decoded by backtracking from the target: at every node the
    first in-edge (in insertion order) that attains the node's distance is
    followed.  This makes equal-cost tie-breaking a property of the graph's
    edge order rather than of the relaxation schedule — the invariant the
    vectorized :func:`shortest_path_layered` reproduces with ``argmin``.
    """
    if source not in graph.nodes or target not in graph.nodes:
        raise SSSPError("source/target missing from graph")
    inf = float("inf")
    dist: dict[object, float] = {n: inf for n in graph.nodes}
    dist[source] = 0.0
    for node in graph._topo_order():
        d = dist[node]
        if d == inf:
            continue
        for v in graph.succ.get(node, []):
            w = graph.edges[(node, v)]
            if d + w < dist[v]:
                dist[v] = d + w
    if dist[target] == inf:
        raise SSSPError("target unreachable in configuration graph")
    path = [target]
    node = target
    while node != source:
        d = dist[node]
        for u in graph.pred.get(node, []):
            if dist[u] + graph.edges[(u, node)] == d:
                node = u
                break
        else:  # pragma: no cover - dist came from one of these very sums
            raise SSSPError("path reconstruction failed")
        path.append(node)
    path.reverse()
    return dist[target], path


def shortest_path_layered(
    matrices: Sequence[np.ndarray],
) -> tuple[float, list[int]]:
    """Min-plus SSSP over a layered DAG given per-layer cost matrices.

    ``matrices[k]`` holds the edge weights from layer ``k`` to layer
    ``k + 1`` — shape ``(n_k, n_{k+1})``, ``np.inf`` for a missing edge.
    Layer 0 is the source (``n_0 == 1``) and the last layer the target
    (``n_L == 1``).  Each layer is relaxed with one broadcast add and one
    argmin::

        dist_next = np.min(dist[:, None] + M, axis=0)

    which performs exactly the per-edge ``dist[u] + w`` additions of the
    scalar relaxation, so distances are bit-identical to
    :func:`shortest_path` on the expanded graph; ``argmin``'s
    first-minimizer rule matches the scalar decoder's first-in-edge rule
    when matrix row order equals edge insertion order.

    Returns ``(cost, nodes)`` where ``nodes[k]`` is the chosen node index
    in layer ``k + 1`` (the final entry is the target, index 0).
    """
    mats = [np.asarray(m, dtype=float) for m in matrices]
    if not mats:
        raise SSSPError("layered graph has no layers")
    if mats[0].ndim != 2 or mats[0].shape[0] != 1:
        raise SSSPError("layer 0 must be a (1, n) source matrix")
    if mats[-1].shape[1] != 1:
        raise SSSPError("final layer must be an (n, 1) target matrix")
    for k, (a, b) in enumerate(zip(mats, mats[1:])):
        if b.ndim != 2 or a.shape[1] != b.shape[0]:
            raise SSSPError(
                f"layer shapes do not chain: {a.shape} then {b.shape} at layer {k}"
            )
    for m in mats:
        if (m < 0).any():
            raise SSSPError("negative edge weight in layered graph")

    dist = np.zeros(1)
    argmins: list[np.ndarray] = []
    for m in mats:
        full = dist[:, None] + m
        argmins.append(np.argmin(full, axis=0))
        dist = np.min(full, axis=0)
    cost = float(dist[0])
    if cost == float("inf"):
        raise SSSPError("target unreachable in configuration graph")

    nodes = [0] * len(mats)
    j = 0
    for k in range(len(mats) - 1, -1, -1):
        nodes[k] = j
        j = int(argmins[k][j])
    return cost, nodes


def shortest_path_networkx(graph: ConfigGraph, source, target) -> tuple[float, list]:
    """Cross-check implementation on networkx's Dijkstra.

    networkx is imported lazily: it is a cross-check-only dependency and
    must not be paid on every CLI or daemon start.
    """
    import networkx as nx

    g = nx.DiGraph()
    g.add_nodes_from(graph.nodes)
    for (u, v), w in graph.edges.items():
        g.add_edge(u, v, weight=w)
    try:
        cost, path = nx.single_source_dijkstra(g, source, target, weight="weight")
    except (nx.NetworkXNoPath, nx.NodeNotFound) as exc:
        raise SSSPError(str(exc)) from exc
    return cost, path
