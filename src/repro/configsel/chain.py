"""Primary-chain extraction for the configuration-selection graph.

The paper builds its SSSP graph "beginning from the input data and
proceeding in the order given by a pre-order depth-first search" over the
forward dataflow (Sec. VI-A) and simplifies by omitting residual
connections and running on forward propagation only.  We implement the
same simplification: the *primary chain* is the path of forward kernels
along the largest activation from the layer input to the layer output;
secondary operands (weights, biases, masks, residual skips) have their
layouts minimized inside each operator's edge weight.

Views (stacked-projection slices, self-attention aliases) do not execute,
but they change the *naming* of the chain tensor between a producer and a
consumer; ``project_layout`` maps a layout across a view by positional
alignment of the trailing dims (all views in the builders are trailing
aligned: ``qkv_lin[c,p,h,b,j] -> qq_lin[p,h,b,j]``, ``x[i,b,j] ->
xk[i,b,k]``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.graph import DataflowGraph
from repro.ir.operator import OpSpec, Stage
from repro.ir.tensor import TensorSpec
from repro.layouts.layout import Layout

__all__ = ["ChainStep", "primary_chain", "project_layout", "ChainError"]


class ChainError(ValueError):
    """Raised when no primary chain can be extracted."""


@dataclass(frozen=True)
class ChainStep:
    """One operator on the primary chain."""

    op_name: str
    in_tensor: str
    in_index: int  # operand slot of ``in_tensor`` in the op's inputs
    out_tensor: str
    out_index: int  # operand slot of ``out_tensor`` in the op's outputs


def project_layout(
    layout: Layout, from_spec: TensorSpec, to_spec: TensorSpec
) -> Layout | None:
    """Map a layout of ``from_spec`` across a view to ``to_spec``.

    The trailing ``len(to_spec.dims)`` dims of the view source align
    positionally with the view's dims; leading (stacking) dims are dropped.
    Returns None when the projection does not yield a full permutation
    (e.g. a stacking dim interleaved between payload dims).
    """
    if from_spec.rank < to_spec.rank:
        return None
    tail = from_spec.dims[from_spec.rank - to_spec.rank :]
    rename = dict(zip(tail, to_spec.dims))
    projected = tuple(rename[d] for d in layout.dims if d in rename)
    if set(projected) != set(to_spec.dims) or len(projected) != to_spec.rank:
        return None
    return Layout(projected)


def _primary_output(graph: DataflowGraph, op: OpSpec) -> tuple[str, int]:
    """The chain output: the output whose forward consumer comes earliest.

    Following the earliest consumer implements the paper's pre-order DFS
    over the forward dataflow (e.g. AIB's chain output is ``qq`` feeding
    QKT, not ``vv`` feeding the later Gamma contraction).  Outputs with no
    forward consumers (saved masks/statistics) rank last.
    """
    topo_index = {o.name: i for i, o in enumerate(graph.ops)}
    big = len(graph.ops) + 1

    def earliest_forward_consumer(tensor: str) -> int:
        best = big
        for c in graph.consumers_of(tensor):
            cop = graph.op(c)
            if cop.stage is not Stage.FORWARD:
                continue
            if cop.is_view:
                for t in cop.outputs:
                    best = min(best, earliest_forward_consumer(t.name))
            else:
                best = min(best, topo_index[c])
        return best

    ranked = sorted(
        (earliest_forward_consumer(t.name), idx, t.name)
        for idx, t in enumerate(op.outputs)
    )
    _, idx, name = ranked[0]
    return name, idx


def _view_leads_forward(graph: DataflowGraph, tensor: str) -> bool:
    for c in graph.consumers_of(tensor):
        op = graph.op(c)
        if op.is_view and op.stage is Stage.FORWARD:
            for t in op.outputs:
                if _has_forward_consumer(graph, t.name) or _view_leads_forward(graph, t.name):
                    return True
    return False


def _has_forward_consumer(graph: DataflowGraph, tensor: str) -> bool:
    return any(
        not graph.op(c).is_view and graph.op(c).stage is Stage.FORWARD
        for c in graph.consumers_of(tensor)
    )


def primary_chain(graph: DataflowGraph, *, source: str = "x") -> list[ChainStep]:
    """Extract the forward primary chain starting at container ``source``."""
    topo_index = {op.name: i for i, op in enumerate(graph.ops)}
    current = source
    steps: list[ChainStep] = []
    visited: set[str] = set()
    while True:
        if current in visited:
            raise ChainError(f"chain revisits tensor {current!r}")
        visited.add(current)
        kernel_consumers = [
            graph.op(c)
            for c in graph.consumers_of(current)
            if not graph.op(c).is_view and graph.op(c).stage is Stage.FORWARD
        ]
        if not kernel_consumers:
            view_consumers = [
                graph.op(c)
                for c in graph.consumers_of(current)
                if graph.op(c).is_view and graph.op(c).stage is Stage.FORWARD
            ]
            if not view_consumers:
                break  # reached the layer output
            view = min(view_consumers, key=lambda o: topo_index[o.name])
            current = view.outputs[0].name
            continue
        op = min(kernel_consumers, key=lambda o: topo_index[o.name])
        in_index = next(i for i, t in enumerate(op.inputs) if t.name == current)
        out_name, out_index = _primary_output(graph, op)
        steps.append(
            ChainStep(
                op_name=op.name,
                in_tensor=current,
                in_index=in_index,
                out_tensor=out_name,
                out_index=out_index,
            )
        )
        current = out_name
    if not steps:
        raise ChainError(f"no forward chain found from {source!r}")
    return steps
