"""Local-search refinement of a selected configuration.

The SSSP pass optimizes the forward chain exactly but infers the remaining
operators greedily in topological order, so early pins are made without
seeing late consumers.  This pass closes part of that gap by coordinate
descent: repeatedly revisit each operator, re-choose its configuration given
*all* current pins, and accept changes that reduce the end-to-end total
(kernel times plus the transposes implied by every layout disagreement).

The paper reports its (also approximate) selection lands within 4% of the
per-operator optimum; refinement moves our assembly toward that bound.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.autotuner.tuner import ConfigMeasurement, SweepResult
from repro.hardware.cost_model import CostModel
from repro.ir.dims import DimEnv
from repro.ir.graph import DataflowGraph
from repro.layouts.layout import Layout

from .selector import SelectedConfiguration, TransposeInsertion

__all__ = ["RefinementResult", "refine_selection"]


@dataclass(frozen=True)
class RefinementResult:
    """Outcome of the coordinate-descent refinement."""

    selection: SelectedConfiguration
    initial_total_us: float
    refined_total_us: float
    rounds: int
    moves: int

    @property
    def improvement(self) -> float:
        """Fractional reduction of total time."""
        if self.initial_total_us == 0:
            return 0.0
        return 1.0 - self.refined_total_us / self.initial_total_us


def _operand_layout_pairs(op, m: ConfigMeasurement):
    yield from zip(op.inputs, m.config.input_layouts)
    yield from zip(op.outputs, m.config.output_layouts)


def _evaluate(
    graph: DataflowGraph,
    chosen: dict[str, ConfigMeasurement],
    env: DimEnv,
    cost: CostModel,
) -> tuple[float, list[TransposeInsertion]]:
    """Total time of an assignment: kernels + transposes for every tensor
    whose producer and a consumer disagree on layout.

    Layout authority belongs to the producer (or the first consumer for
    graph inputs); each disagreeing consumer pays one transpose.
    """
    total = 0.0
    layout_of: dict[str, Layout] = {}
    # Producers claim layouts first.
    for op in graph.ops:
        if op.is_view or op.name not in chosen:
            continue
        m = chosen[op.name]
        total += m.total_us
        for t, l in zip(op.outputs, m.config.output_layouts):
            layout_of[t.name] = l
    transposes: list[TransposeInsertion] = []
    for op in graph.ops:
        if op.is_view or op.name not in chosen:
            continue
        m = chosen[op.name]
        for t, l in zip(op.inputs, m.config.input_layouts):
            owner = layout_of.get(t.name)
            if owner is None:
                layout_of[t.name] = l  # graph input: first consumer decides
            elif owner != l:
                tr = TransposeInsertion(
                    tensor=t.name,
                    from_layout=owner,
                    to_layout=l,
                    time_us=cost.time_transpose(t, env).total_us,
                    before_op=op.name,
                )
                transposes.append(tr)
                total += tr.time_us
    return total, transposes


def refine_selection(
    graph: DataflowGraph,
    selection: SelectedConfiguration,
    sweeps: dict[str, SweepResult],
    env: DimEnv,
    cost: CostModel | None = None,
    *,
    max_rounds: int = 3,
    candidates_per_op: int = 48,
) -> RefinementResult:
    """Coordinate-descent over per-operator configurations.

    For each operator, try its ``candidates_per_op`` fastest sweep points;
    keep the one minimizing the *global* total under the
    producer-authoritative transpose accounting.  Deterministic and
    monotone: the total never increases.
    """
    cost = cost or CostModel()
    chosen = dict(selection.chosen)
    initial_total, _ = _evaluate(graph, chosen, env, cost)
    best_total = initial_total
    moves = 0
    rounds_done = 0
    for _ in range(max_rounds):
        rounds_done += 1
        improved = False
        for op in graph.ops:
            if op.is_view or op.name not in chosen:
                continue
            sweep = sweeps[op.name]
            current = chosen[op.name]
            for m in sweep.measurements[:candidates_per_op]:
                if m.config.key() == current.config.key():
                    continue
                chosen[op.name] = m
                total, _ = _evaluate(graph, chosen, env, cost)
                if total < best_total - 1e-9:
                    best_total = total
                    current = m
                    moves += 1
                    improved = True
                else:
                    chosen[op.name] = current
        if not improved:
            break

    final_total, transposes = _evaluate(graph, chosen, env, cost)
    refined = SelectedConfiguration(
        chain=selection.chain,
        chosen=chosen,
        pinned_layouts=dict(selection.pinned_layouts),
        transposes=transposes,
        chain_cost_us=selection.chain_cost_us,
    )
    return RefinementResult(
        selection=refined,
        initial_total_us=initial_total,
        refined_total_us=final_total,
        rounds=rounds_done,
        moves=moves,
    )
