"""Layer normalization (⬜) with explicit dX / dW backward stages.

LayerNorm normalizes over the embedding dimension ``i`` and applies a learned
scale ``g`` and bias ``b``.  The paper fuses it into ``BDRLN`` forward and
splits its backward into ``BSB`` (scale/bias gradients — a two-dimensional
warp reduction) and ``BLNRD`` (the dX path, fused with the preceding
dropout's backward).

Flop accounting per input element: mean 1, centering 1, variance 2,
normalize+scale 2, bias 0.5 — ~6.5 total, matching Table III's 0.027 Gflop
over the 4.1 Mw activation within rounding.
"""

from __future__ import annotations

import numpy as np

from repro.ir.iteration_space import IterationSpace
from repro.ir.operator import OpClass, OpSpec, Stage
from repro.ir.tensor import TensorSpec

__all__ = [
    "layernorm_spec",
    "layernorm_dx_spec",
    "layernorm_dw_spec",
    "layernorm_forward",
    "layernorm_backward_dx",
    "layernorm_backward_dw",
    "LAYERNORM_FLOP_PER_POINT",
    "LAYERNORM_DX_FLOP_PER_POINT",
    "LAYERNORM_DW_FLOP_PER_POINT",
]

LAYERNORM_FLOP_PER_POINT = 6.5
LAYERNORM_DX_FLOP_PER_POINT = 8.5
LAYERNORM_DW_FLOP_PER_POINT = 4.0


def layernorm_spec(
    name: str,
    x: TensorSpec,
    output_name: str,
    *,
    norm_dim: str = "i",
    scale_name: str | None = None,
    bias_name: str | None = None,
    stage: Stage = Stage.FORWARD,
) -> OpSpec:
    """LayerNorm over ``norm_dim`` with learned scale and bias."""
    if norm_dim not in x.dims:
        raise ValueError(f"norm dim {norm_dim!r} not in input dims {x.dims}")
    independent = tuple(d for d in x.dims if d != norm_dim)
    g = TensorSpec(scale_name or f"{name}_g", (norm_dim,), dtype=x.dtype, is_param=True)
    b = TensorSpec(bias_name or f"{name}_b", (norm_dim,), dtype=x.dtype, is_param=True)
    out = TensorSpec(output_name, x.dims, dtype=x.dtype)
    return OpSpec(
        name=name,
        op_class=OpClass.STAT_NORMALIZATION,
        inputs=(x, g, b),
        outputs=(out,),
        ispace=IterationSpace(independent, (norm_dim,)),
        flop_per_point=LAYERNORM_FLOP_PER_POINT,
        stage=stage,
    )


def layernorm_dx_spec(
    name: str,
    dy: TensorSpec,
    x: TensorSpec,
    scale: TensorSpec,
    output_name: str,
    *,
    norm_dim: str = "i",
) -> OpSpec:
    independent = tuple(d for d in x.dims if d != norm_dim)
    out = TensorSpec(output_name, x.dims, dtype=x.dtype)
    return OpSpec(
        name=name,
        op_class=OpClass.STAT_NORMALIZATION,
        inputs=(dy, x, scale),
        outputs=(out,),
        ispace=IterationSpace(independent, (norm_dim,)),
        flop_per_point=LAYERNORM_DX_FLOP_PER_POINT,
        stage=Stage.BACKWARD_DX,
    )


def layernorm_dw_spec(
    name: str,
    dy: TensorSpec,
    x: TensorSpec,
    *,
    norm_dim: str = "i",
    dscale_name: str | None = None,
    dbias_name: str | None = None,
) -> OpSpec:
    """Scale/bias gradients: reduce over every non-embedding dim (BSB)."""
    reduce_dims = tuple(d for d in x.dims if d != norm_dim)
    dg = TensorSpec(dscale_name or f"{name}_dg", (norm_dim,), dtype=x.dtype)
    db = TensorSpec(dbias_name or f"{name}_db", (norm_dim,), dtype=x.dtype)
    return OpSpec(
        name=name,
        op_class=OpClass.STAT_NORMALIZATION,
        inputs=(dy, x),
        outputs=(dg, db),
        ispace=IterationSpace((norm_dim,), reduce_dims),
        flop_per_point=LAYERNORM_DW_FLOP_PER_POINT,
        stage=Stage.BACKWARD_DW,
    )


def layernorm_forward(
    x: np.ndarray, g: np.ndarray, b: np.ndarray, axis: int = 0, eps: float = 1e-5
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Returns ``(y, mean, inv_std)``; the statistics are saved for backward."""
    mean = x.mean(axis=axis, keepdims=True)
    var = x.var(axis=axis, keepdims=True)
    inv_std = 1.0 / np.sqrt(var + eps)
    xhat = (x - mean) * inv_std
    shape = [1] * x.ndim
    shape[axis] = x.shape[axis]
    y = g.reshape(shape) * xhat + b.reshape(shape)
    return y, mean, inv_std


def layernorm_backward_dx(
    dy: np.ndarray,
    x: np.ndarray,
    g: np.ndarray,
    mean: np.ndarray,
    inv_std: np.ndarray,
    axis: int = 0,
) -> np.ndarray:
    """dX of layernorm using saved statistics.

    ``dx = (g*dy - mean_i(g*dy) - xhat * mean_i(g*dy*xhat)) * inv_std``.
    """
    n = x.shape[axis]
    shape = [1] * x.ndim
    shape[axis] = n
    gdy = dy * g.reshape(shape)
    xhat = (x - mean) * inv_std
    m1 = gdy.sum(axis=axis, keepdims=True) / n
    m2 = (gdy * xhat).sum(axis=axis, keepdims=True) / n
    return (gdy - m1 - xhat * m2) * inv_std


def layernorm_backward_dw(
    dy: np.ndarray, x: np.ndarray, mean: np.ndarray, inv_std: np.ndarray, axis: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """(dg, db): reductions over all non-normalized axes."""
    xhat = (x - mean) * inv_std
    reduce_axes = tuple(i for i in range(x.ndim) if i != axis)
    dg = (dy * xhat).sum(axis=reduce_axes)
    db = dy.sum(axis=reduce_axes)
    return dg, db
