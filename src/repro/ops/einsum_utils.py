"""Einsum specification parsing and differentiation.

Tensor contractions throughout the reproduction are written as Einstein
summations over single-letter named dimensions, exactly as in the paper's
input code (Fig. 1a), e.g. ``"phi,ibj->phbj"``.  This module parses such
specs, derives iteration spaces, computes flop counts, and produces the
einsum specs of gradient contractions.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import prod

from repro.ir.dims import DimEnv
from repro.ir.iteration_space import IterationSpace

__all__ = ["EinsumSpec", "parse_einsum", "grad_einsum"]


@dataclass(frozen=True)
class EinsumSpec:
    """A parsed two-operand (or one-operand) einsum contraction."""

    spec: str
    input_subscripts: tuple[str, ...]
    output_subscript: str

    @property
    def num_inputs(self) -> int:
        return len(self.input_subscripts)

    @property
    def output_dims(self) -> tuple[str, ...]:
        return tuple(self.output_subscript)

    @property
    def reduction_dims(self) -> tuple[str, ...]:
        """Dims appearing in inputs but not the output, in first-seen order."""
        out = set(self.output_subscript)
        seen: list[str] = []
        for sub in self.input_subscripts:
            for d in sub:
                if d not in out and d not in seen:
                    seen.append(d)
        return tuple(seen)

    @property
    def all_dims(self) -> tuple[str, ...]:
        return self.output_dims + self.reduction_dims

    def iteration_space(self) -> IterationSpace:
        """Output dims are independent; contracted dims are reductions."""
        return IterationSpace(self.output_dims, self.reduction_dims)

    def flops(self, env: DimEnv) -> float:
        """2 flop (multiply + add) per point of the full iteration space."""
        return 2.0 * prod(env[d] for d in self.all_dims)

    def operand_dims(self, idx: int) -> tuple[str, ...]:
        return tuple(self.input_subscripts[idx])


def parse_einsum(spec: str) -> EinsumSpec:
    """Parse ``"ab,bc->ac"``-style specs with single-letter dims.

    Restrictions (matching the paper's Sec. III-B simplification to MMM and
    batched MMM): no ellipses, no repeated subscripts within one operand,
    explicit output required.
    """
    if "->" not in spec:
        raise ValueError(f"einsum spec {spec!r} must have an explicit '->' output")
    lhs, out = spec.split("->")
    subs = tuple(s.strip() for s in lhs.split(","))
    if not subs or any(not s for s in subs):
        raise ValueError(f"einsum spec {spec!r} has an empty operand")
    for s in subs + (out,):
        if "." in s:
            raise ValueError("ellipses are not supported")
        if len(set(s)) != len(s):
            raise ValueError(f"repeated subscript within operand {s!r} is not supported")
    in_dims = {d for s in subs for d in s}
    extra = set(out) - in_dims
    if extra:
        raise ValueError(f"output dims {sorted(extra)} missing from inputs in {spec!r}")
    return EinsumSpec(spec=spec, input_subscripts=subs, output_subscript=out.strip())


def grad_einsum(spec: EinsumSpec | str, wrt: int) -> EinsumSpec:
    """The einsum computing the gradient w.r.t. operand ``wrt``.

    For ``C = einsum("ab,bc->ac", A, B)``, the gradient w.r.t. ``A`` is
    ``dA = einsum("ac,bc->ab", dC, B)``.  Valid whenever no operand has
    repeated subscripts and every input dim appears in some other operand
    or the output (true for all contractions in the paper).
    """
    if isinstance(spec, str):
        spec = parse_einsum(spec)
    if not 0 <= wrt < spec.num_inputs:
        raise IndexError(f"operand index {wrt} out of range")
    target = spec.input_subscripts[wrt]
    others = [s for i, s in enumerate(spec.input_subscripts) if i != wrt]
    covered = set(spec.output_subscript) | {d for s in others for d in s}
    missing = set(target) - covered
    if missing:
        raise ValueError(
            f"cannot differentiate {spec.spec!r} w.r.t. operand {wrt}: dims "
            f"{sorted(missing)} appear only in that operand"
        )
    lhs = ",".join([spec.output_subscript] + others)
    return parse_einsum(f"{lhs}->{target}")
