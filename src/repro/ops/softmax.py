"""Softmax (⬜): the statistical-normalization core of attention.

The paper's MHA applies ``dropout(softmax(scaler * beta))`` (Fig. 1a); after
fusion this whole chain is the ``SM`` kernel ("softmax with scaling and
dropout", Sec. IV-A) and its backward is ``BS`` ("backward dropout and
softmax with scaling").

Flop accounting (per element of the attention matrix): scale 1, max-subtract
2 (reduction + subtract), exp 1, sum-normalize 2 (reduction + divide) — 5 for
plain scaled softmax, plus 1 for the dropout multiply, matching Table III's
~0.19 Gflop for the 33.5 Mw attention tensor within rounding.
"""

from __future__ import annotations

import numpy as np

from repro.ir.iteration_space import IterationSpace
from repro.ir.operator import OpClass, OpSpec, Stage
from repro.ir.tensor import TensorSpec

__all__ = [
    "softmax_spec",
    "softmax_forward",
    "softmax_backward",
    "SOFTMAX_FLOP_PER_POINT",
    "SCALED_SOFTMAX_FLOP_PER_POINT",
]

#: max-subtract (2) + exp (1) + sum + divide (2)
SOFTMAX_FLOP_PER_POINT = 5.0
#: plus the scaling multiply
SCALED_SOFTMAX_FLOP_PER_POINT = 6.0


def softmax_spec(
    name: str,
    x: TensorSpec,
    output_name: str,
    *,
    axis_dim: str,
    scaled: bool = True,
    mask: TensorSpec | None = None,
    stage: Stage = Stage.FORWARD,
) -> OpSpec:
    """Scaled softmax normalizing over ``axis_dim`` (``k`` in attention).

    ``mask`` is an optional additive attention mask (e.g. ``[j, k]`` causal
    masking, Sec. II-B1: "MHA may also have a masking step").  The mask adds
    one read per point but no extra flop-of-note (it folds into the scale
    pass of the fused SM kernel).
    """
    if axis_dim not in x.dims:
        raise ValueError(f"softmax axis {axis_dim!r} not in input dims {x.dims}")
    if mask is not None and not set(mask.dims) <= set(x.dims):
        raise ValueError(f"mask dims {mask.dims} not a subset of input dims {x.dims}")
    independent = tuple(d for d in x.dims if d != axis_dim)
    out = TensorSpec(output_name, x.dims, dtype=x.dtype)
    inputs = (x,) if mask is None else (x, mask)
    return OpSpec(
        name=name,
        op_class=OpClass.STAT_NORMALIZATION,
        inputs=inputs,
        outputs=(out,),
        ispace=IterationSpace(independent, (axis_dim,)),
        flop_per_point=SCALED_SOFTMAX_FLOP_PER_POINT if scaled else SOFTMAX_FLOP_PER_POINT,
        stage=stage,
    )


def softmax_forward(
    x: np.ndarray, axis: int = -1, scale: float = 1.0, mask: np.ndarray | None = None
) -> np.ndarray:
    """Numerically-stable scaled softmax: ``softmax(scale * x + mask)``.

    ``mask`` is an additive attention mask (e.g. ``-inf`` on disallowed
    positions for the "seeing the future" prevention of Sec. II-B1).
    """
    z = scale * np.asarray(x, dtype=np.float32)
    if mask is not None:
        z = z + mask
    z = z - z.max(axis=axis, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=axis, keepdims=True)


def softmax_backward(dy: np.ndarray, y: np.ndarray, axis: int = -1, scale: float = 1.0) -> np.ndarray:
    """Backward through scaled softmax given its output ``y``.

    ``dx = scale * y * (dy - sum(dy * y))`` along the normalized axis.
    """
    inner = (dy * y).sum(axis=axis, keepdims=True)
    return scale * y * (dy - inner)
