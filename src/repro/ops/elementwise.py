"""Element-wise operators (○): bias, activations, dropout, residual, scale.

These are the least compute-intensive class (0.03% of flop but 13.5% of
runtime under PyTorch, Table I) — precisely the operators whose cost is
almost pure data movement and which fusion targets first.

Flop accounting follows the paper's Table III conventions:

* bias / residual / dropout-apply: 1 flop per output element;
* ReLU: 0 flop (Table III lists "—");
* the dropout *mask* is an explicit output (Table III counts dropout output
  as value + mask, e.g. 8.3 Mw out for a 4.1 Mw activation).
"""

from __future__ import annotations

import numpy as np

from repro.ir.dtypes import FP16, DType
from repro.ir.iteration_space import IterationSpace
from repro.ir.operator import OpClass, OpSpec, Stage
from repro.ir.tensor import TensorSpec

__all__ = [
    "bias_spec",
    "relu_spec",
    "dropout_spec",
    "residual_spec",
    "bias_forward",
    "bias_grad_param",
    "relu_forward",
    "relu_backward",
    "gelu_forward",
    "gelu_backward",
    "dropout_forward",
    "dropout_backward",
    "residual_forward",
]


# ---------------------------------------------------------------------------
# Spec builders
# ---------------------------------------------------------------------------

def bias_spec(
    name: str,
    x: TensorSpec,
    bias_dims: tuple[str, ...],
    output_name: str,
    *,
    bias_name: str | None = None,
    stage: Stage = Stage.FORWARD,
    dtype: DType = FP16,
) -> OpSpec:
    """``y = x + b`` with ``b`` broadcast over the dims absent from it."""
    extra = set(bias_dims) - set(x.dims)
    if extra:
        raise ValueError(f"bias dims {sorted(extra)} not present in input {x.name!r}")
    bias = TensorSpec(bias_name or f"{name}_b", bias_dims, dtype=dtype, is_param=True)
    out = TensorSpec(output_name, x.dims, dtype=dtype)
    return OpSpec(
        name=name,
        op_class=OpClass.ELEMENTWISE,
        inputs=(x, bias),
        outputs=(out,),
        ispace=IterationSpace(x.dims),
        flop_per_point=1.0,
        stage=stage,
    )


def relu_spec(name: str, x: TensorSpec, output_name: str, *, stage: Stage = Stage.FORWARD) -> OpSpec:
    out = TensorSpec(output_name, x.dims, dtype=x.dtype)
    return OpSpec(
        name=name,
        op_class=OpClass.ELEMENTWISE,
        inputs=(x,),
        outputs=(out,),
        ispace=IterationSpace(x.dims),
        flop_per_point=0.0,  # Table III counts ReLU as flop-free
        stage=stage,
    )


def dropout_spec(
    name: str,
    x: TensorSpec,
    output_name: str,
    *,
    mask_name: str | None = None,
    stage: Stage = Stage.FORWARD,
) -> OpSpec:
    """Dropout producing the scaled output and the saved mask."""
    out = TensorSpec(output_name, x.dims, dtype=x.dtype)
    mask = TensorSpec(mask_name or f"{output_name}_mask", x.dims, dtype=x.dtype)
    return OpSpec(
        name=name,
        op_class=OpClass.ELEMENTWISE,
        inputs=(x,),
        outputs=(out, mask),
        ispace=IterationSpace(x.dims),
        flop_per_point=1.0,
        stage=stage,
    )


def residual_spec(
    name: str,
    x: TensorSpec,
    skip: TensorSpec,
    output_name: str,
    *,
    stage: Stage = Stage.FORWARD,
) -> OpSpec:
    if x.dims != skip.dims:
        raise ValueError(f"residual operands disagree: {x.dims} vs {skip.dims}")
    out = TensorSpec(output_name, x.dims, dtype=x.dtype)
    return OpSpec(
        name=name,
        op_class=OpClass.ELEMENTWISE,
        inputs=(x, skip),
        outputs=(out,),
        ispace=IterationSpace(x.dims),
        flop_per_point=1.0,
        stage=stage,
    )


# ---------------------------------------------------------------------------
# NumPy kernels
# ---------------------------------------------------------------------------

def _broadcast_bias(x_dims: tuple[str, ...], bias_dims: tuple[str, ...], b: np.ndarray) -> np.ndarray:
    """Reshape/transpose ``b`` (logical dims ``bias_dims``) to broadcast over ``x_dims``."""
    if b.ndim != len(bias_dims):
        raise ValueError(f"bias has rank {b.ndim}, dims say {len(bias_dims)}")
    # Bring bias axes into the order they appear within x_dims.
    order = sorted(range(len(bias_dims)), key=lambda i: x_dims.index(bias_dims[i]))
    bt = np.transpose(b, order)
    shape = [1] * len(x_dims)
    for axis_in_bt, i in enumerate(order):
        shape[x_dims.index(bias_dims[i])] = b.shape[i]
    return bt.reshape(shape)


def bias_forward(
    x: np.ndarray, b: np.ndarray, x_dims: tuple[str, ...], bias_dims: tuple[str, ...]
) -> np.ndarray:
    """``y = x + broadcast(b)`` where ``b`` spans a subset of ``x``'s dims."""
    return x + _broadcast_bias(x_dims, bias_dims, b)


def bias_grad_param(
    dy: np.ndarray, x_dims: tuple[str, ...], bias_dims: tuple[str, ...]
) -> np.ndarray:
    """dW stage of a bias: sum grad over the broadcast dims."""
    reduce_axes = tuple(i for i, d in enumerate(x_dims) if d not in bias_dims)
    g = dy.sum(axis=reduce_axes) if reduce_axes else dy.copy()
    # Result axes are in x_dims order restricted to bias dims; permute to bias_dims order.
    kept = [d for d in x_dims if d in bias_dims]
    perm = [kept.index(d) for d in bias_dims]
    return np.transpose(g, perm)


def relu_forward(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def relu_backward(dy: np.ndarray, x: np.ndarray) -> np.ndarray:
    return dy * (x > 0.0)


def gelu_forward(x: np.ndarray) -> np.ndarray:
    """tanh-approximation GELU (used by BERT variants; optional activation)."""
    c = np.sqrt(2.0 / np.pi)
    return 0.5 * x * (1.0 + np.tanh(c * (x + 0.044715 * x**3)))


def gelu_backward(dy: np.ndarray, x: np.ndarray) -> np.ndarray:
    c = np.sqrt(2.0 / np.pi)
    inner = c * (x + 0.044715 * x**3)
    t = np.tanh(inner)
    dinner = c * (1.0 + 3 * 0.044715 * x**2)
    return dy * (0.5 * (1.0 + t) + 0.5 * x * (1.0 - t**2) * dinner)


def dropout_forward(
    x: np.ndarray, p: float, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Inverted dropout: returns ``(y, mask)`` with ``y = x * mask``.

    The mask already includes the ``1/(1-p)`` scale so backward is a single
    multiply, matching the fused kernels' structure.
    """
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    if p == 0.0:
        mask = np.ones_like(x)
    else:
        keep = rng.random(x.shape) >= p
        mask = keep.astype(x.dtype) / (1.0 - p)
    return x * mask, mask


def dropout_backward(dy: np.ndarray, mask: np.ndarray) -> np.ndarray:
    return dy * mask


def residual_forward(x: np.ndarray, skip: np.ndarray) -> np.ndarray:
    return x + skip
