"""Tensor contraction operators (△): spec builders and NumPy kernels.

Contractions are the compute-dominant class (99.8% of flop, Table I).  They
are expressed as einsums and, per Sec. III-B, restricted to shapes mappable
onto (batched) matrix-matrix multiplication; legality of a given mapping is
checked in :mod:`repro.layouts.gemm_mapping`.
"""

from __future__ import annotations

import numpy as np

from repro.ir.dtypes import FP16, DType
from repro.ir.operator import OpClass, OpSpec, Stage
from repro.ir.tensor import TensorSpec

from .einsum_utils import EinsumSpec, grad_einsum, parse_einsum

__all__ = [
    "contraction_spec",
    "contraction_forward",
    "contraction_grads",
    "contraction_grad_specs",
]


def contraction_spec(
    name: str,
    einsum: str,
    input_names: tuple[str, ...],
    output_name: str,
    *,
    dtype: DType = FP16,
    stage: Stage = Stage.FORWARD,
    param_inputs: tuple[int, ...] = (),
) -> OpSpec:
    """Build the OpSpec for a contraction from its einsum string.

    ``param_inputs`` flags which operand indices are learned parameters
    (weights), used for dX/dW stage bookkeeping.
    """
    parsed = parse_einsum(einsum)
    if len(input_names) != parsed.num_inputs:
        raise ValueError(
            f"{name!r}: {len(input_names)} input names for "
            f"{parsed.num_inputs}-operand einsum {einsum!r}"
        )
    inputs = tuple(
        TensorSpec(
            nm, parsed.operand_dims(i), dtype=dtype, is_param=(i in param_inputs)
        )
        for i, nm in enumerate(input_names)
    )
    output = TensorSpec(output_name, parsed.output_dims, dtype=dtype)
    return OpSpec(
        name=name,
        op_class=OpClass.TENSOR_CONTRACTION,
        inputs=inputs,
        outputs=(output,),
        ispace=parsed.iteration_space(),
        flop_per_point=2.0,
        einsum=einsum,
        stage=stage,
    )


def contraction_forward(einsum: str, *operands: np.ndarray) -> np.ndarray:
    """Execute a contraction with float32 accumulation (mixed-precision rule)."""
    parsed = parse_einsum(einsum)
    if len(operands) != parsed.num_inputs:
        raise ValueError(f"expected {parsed.num_inputs} operands, got {len(operands)}")
    out = np.einsum(einsum, *[np.asarray(a, dtype=np.float32) for a in operands])
    return np.ascontiguousarray(out, dtype=np.float32)


def contraction_grad_specs(einsum: str) -> tuple[EinsumSpec, ...]:
    """Gradient einsum specs, one per operand."""
    parsed = parse_einsum(einsum)
    return tuple(grad_einsum(parsed, i) for i in range(parsed.num_inputs))


def contraction_grads(
    einsum: str, grad_out: np.ndarray, *operands: np.ndarray
) -> tuple[np.ndarray, ...]:
    """Gradients of a contraction w.r.t. every operand.

    For ``C = einsum(spec, A, B)``: ``dA = einsum(grad_spec_A, dC, B)`` and
    symmetrically for ``dB``.  This is the dX/dW decomposition of Sec. II-A.
    """
    parsed = parse_einsum(einsum)
    grads: list[np.ndarray] = []
    for i in range(parsed.num_inputs):
        gspec = grad_einsum(parsed, i)
        others = [operands[j] for j in range(parsed.num_inputs) if j != i]
        grads.append(
            contraction_forward(gspec.spec, grad_out, *others)
        )
    return tuple(grads)
