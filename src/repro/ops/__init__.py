"""Operator library: IR spec builders plus NumPy reference kernels.

Each operator provides (a) an :class:`~repro.ir.operator.OpSpec` constructor
for dataflow analysis and (b) forward/backward NumPy kernels used by the
execution engine and correctness tests.
"""

from .contraction import (
    contraction_forward,
    contraction_grad_specs,
    contraction_grads,
    contraction_spec,
)
from .einsum_utils import EinsumSpec, grad_einsum, parse_einsum
from .elementwise import (
    bias_forward,
    bias_grad_param,
    bias_spec,
    dropout_backward,
    dropout_forward,
    dropout_spec,
    gelu_backward,
    gelu_forward,
    relu_backward,
    relu_forward,
    relu_spec,
    residual_forward,
    residual_spec,
)
from .layernorm import (
    layernorm_backward_dw,
    layernorm_backward_dx,
    layernorm_dw_spec,
    layernorm_dx_spec,
    layernorm_forward,
    layernorm_spec,
)
from .softmax import softmax_backward, softmax_forward, softmax_spec

__all__ = [
    "EinsumSpec",
    "bias_forward",
    "bias_grad_param",
    "bias_spec",
    "contraction_forward",
    "contraction_grad_specs",
    "contraction_grads",
    "contraction_spec",
    "dropout_backward",
    "dropout_forward",
    "dropout_spec",
    "gelu_backward",
    "gelu_forward",
    "grad_einsum",
    "layernorm_backward_dw",
    "layernorm_backward_dx",
    "layernorm_dw_spec",
    "layernorm_dx_spec",
    "layernorm_forward",
    "layernorm_spec",
    "parse_einsum",
    "relu_backward",
    "relu_forward",
    "relu_spec",
    "residual_forward",
    "residual_spec",
    "softmax_backward",
    "softmax_forward",
    "softmax_spec",
]
