"""BERT encoder layer: NumPy forward and backward (Fig. 2).

Structure (post-LN BERT):

    x ──► MHA(self) ─► +bias ─► dropout ─► (+x) ─► LN₁ ─► y₁
    y₁ ─► linear₁ ─► +bias ─► ReLU ─► dropout ─► linear₂ ─► +bias
       ─► dropout ─► (+y₁) ─► LN₂ ─► y₂

The backward pass mirrors Table III's backward rows exactly (including the
split of LayerNorm into dX and dW stages and the residual bookkeeping that
the fused BLNRD/EBSB/BEI kernels implement).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ops.elementwise import (
    dropout_backward,
    dropout_forward,
    gelu_backward,
    gelu_forward,
    relu_backward,
    relu_forward,
)
from repro.ops.layernorm import (
    layernorm_backward_dw,
    layernorm_backward_dx,
    layernorm_forward,
)

from .mha import MHAActivations, mha_backward, mha_forward
from .params import EncoderParams

__all__ = ["EncoderActivations", "encoder_forward", "encoder_backward"]


@dataclass
class EncoderActivations:
    """All saved forward intermediates of one encoder layer."""

    x: np.ndarray  # layer input [i,b,j]
    mha: MHAActivations
    attn_drop: np.ndarray
    attn_drop_mask: np.ndarray
    resid1: np.ndarray
    ln1_out: np.ndarray
    ln1_mean: np.ndarray
    ln1_inv_std: np.ndarray
    lin1_out: np.ndarray  # pre-bias [u,b,j]
    lin1_bias_out: np.ndarray
    act: np.ndarray  # post-ReLU
    ffn_drop: np.ndarray
    ffn_drop_mask: np.ndarray
    lin2_out: np.ndarray  # pre-bias [i,b,j]
    lin2_bias_out: np.ndarray
    out_drop: np.ndarray
    out_drop_mask: np.ndarray
    resid2: np.ndarray
    ln2_out: np.ndarray  # layer output y2
    ln2_mean: np.ndarray
    ln2_inv_std: np.ndarray
    #: FFN activation function used ("relu" or "gelu"); backward must match.
    activation: str = "relu"


def encoder_forward(
    params: EncoderParams,
    x: np.ndarray,
    *,
    dropout_p: float = 0.1,
    rng: np.random.Generator | None = None,
    attn_mask: np.ndarray | None = None,
    activation: str = "relu",
) -> EncoderActivations:
    """Forward pass of one encoder layer; input/output are ``[i, b, j]``.

    ``activation`` selects the FFN nonlinearity: BERT's original code uses
    GELU, the paper's analysis uses ReLU (Fig. 2); both are supported.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    if activation not in ("relu", "gelu"):
        raise ValueError(f"unknown activation {activation!r}")

    mha_acts = mha_forward(
        params.mha, x, x, x, dropout_p=dropout_p, rng=rng, attn_mask=attn_mask
    )
    attn_drop, attn_drop_mask = dropout_forward(mha_acts.out, dropout_p, rng)
    resid1 = attn_drop + x
    ln1_out, ln1_mean, ln1_inv_std = layernorm_forward(
        resid1, params.ln1_g, params.ln1_b, axis=0
    )

    lin1_out = np.einsum("ui,ibj->ubj", params.w1, ln1_out)
    lin1_bias_out = lin1_out + params.b1[:, None, None]
    act_fn = relu_forward if activation == "relu" else gelu_forward
    act = act_fn(lin1_bias_out)
    ffn_drop, ffn_drop_mask = dropout_forward(act, dropout_p, rng)

    lin2_out = np.einsum("iu,ubj->ibj", params.w2, ffn_drop)
    lin2_bias_out = lin2_out + params.b2[:, None, None]
    out_drop, out_drop_mask = dropout_forward(lin2_bias_out, dropout_p, rng)
    resid2 = out_drop + ln1_out
    ln2_out, ln2_mean, ln2_inv_std = layernorm_forward(
        resid2, params.ln2_g, params.ln2_b, axis=0
    )

    return EncoderActivations(
        x=x, mha=mha_acts,
        attn_drop=attn_drop, attn_drop_mask=attn_drop_mask,
        resid1=resid1, ln1_out=ln1_out, ln1_mean=ln1_mean, ln1_inv_std=ln1_inv_std,
        lin1_out=lin1_out, lin1_bias_out=lin1_bias_out, act=act,
        ffn_drop=ffn_drop, ffn_drop_mask=ffn_drop_mask,
        lin2_out=lin2_out, lin2_bias_out=lin2_bias_out,
        out_drop=out_drop, out_drop_mask=out_drop_mask,
        resid2=resid2, ln2_out=ln2_out, ln2_mean=ln2_mean, ln2_inv_std=ln2_inv_std,
        activation=activation,
    )


def encoder_backward(
    params: EncoderParams, acts: EncoderActivations, dy: np.ndarray
) -> tuple[EncoderParams, np.ndarray]:
    """Backward pass; returns ``(param_grads, dx)``.

    Comments name the fused backward kernel (Sec. IV-A) implementing each
    group of statements.
    """
    g = params.zeros_like()

    # BSB: LayerNorm-2 scale/bias gradients.
    g.ln2_g, g.ln2_b = layernorm_backward_dw(
        dy, acts.resid2, acts.ln2_mean, acts.ln2_inv_std, axis=0
    )
    # BLNRD: LayerNorm-2 dX + output-dropout dX, saving d_resid2 for the skip.
    d_resid2 = layernorm_backward_dx(
        dy, acts.resid2, params.ln2_g, acts.ln2_mean, acts.ln2_inv_std, axis=0
    )
    d_lin2_bias_out = dropout_backward(d_resid2, acts.out_drop_mask)

    # BDRB part 1: linear-2 bias dW.
    g.b2 = d_lin2_bias_out.sum(axis=(1, 2))
    # Linear+Bias dX / Linear dW for linear-2.
    d_ffn_drop = np.einsum("iu,ibj->ubj", params.w2, d_lin2_bias_out)
    g.w2 = np.einsum("ibj,ubj->iu", d_lin2_bias_out, acts.ffn_drop)

    # BDRB part 2: dropout dX, activation dX, linear-1 bias dW.
    d_act = dropout_backward(d_ffn_drop, acts.ffn_drop_mask)
    act_bwd = relu_backward if acts.activation == "relu" else gelu_backward
    d_lin1_bias_out = act_bwd(d_act, acts.lin1_bias_out)
    g.b1 = d_lin1_bias_out.sum(axis=(1, 2))

    # Linear+Bias dX / Linear dW for linear-1.
    d_ln1_from_ffn = np.einsum("ui,ubj->ibj", params.w1, d_lin1_bias_out)
    g.w1 = np.einsum("ubj,ibj->ui", d_lin1_bias_out, acts.ln1_out)

    # EBSB: residual add (ffn path + saved skip) and LayerNorm-1 dW.
    d_ln1_out = d_ln1_from_ffn + d_resid2
    g.ln1_g, g.ln1_b = layernorm_backward_dw(
        d_ln1_out, acts.resid1, acts.ln1_mean, acts.ln1_inv_std, axis=0
    )
    # BLNRD: LayerNorm-1 dX + attention-output-dropout dX, saving d_resid1.
    d_resid1 = layernorm_backward_dx(
        d_ln1_out, acts.resid1, params.ln1_g, acts.ln1_mean, acts.ln1_inv_std, axis=0
    )
    d_mha_out = dropout_backward(d_resid1, acts.attn_drop_mask)

    # MHA backward (BAOB, Out dX/dW, Gamma, BS, QKT, Q/K/V, BAIB inside).
    mha_grads = mha_backward(params.mha, acts.mha, d_mha_out)
    g.mha = mha_grads.params

    # BEI: encoder-input residual: dx = d(q)+d(k)+d(v) + saved d_resid1 skip.
    dx = mha_grads.dq + mha_grads.dk + mha_grads.dv + d_resid1
    return g, dx
