"""Multi-layer BERT model: stacked encoder layers (Sec. VI-C: "Our
implementation can also be extended to support a full training pipeline by
stacking our optimized layers").

The per-layer optimization is identical for every layer (they share shapes),
so a full-model time estimate is the optimized per-layer schedule scaled by
depth plus the (unoptimized, small) embedding/output components the paper
excludes from its analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .encoder import EncoderActivations, encoder_backward, encoder_forward
from .params import EncoderParams, ModelDims, init_encoder_params

__all__ = ["BertModel", "ModelTimeEstimate", "estimate_model_time"]


class BertModel:
    """A stack of encoder layers sharing one configuration.

    Pure NumPy; forward returns per-layer activations so backward can run
    layer by layer in reverse (standard backprop through the stack).
    """

    def __init__(
        self, dims: ModelDims, num_layers: int, *, rng: np.random.Generator | None = None
    ) -> None:
        if num_layers < 1:
            raise ValueError("need at least one layer")
        rng = rng or np.random.default_rng(0)
        self.dims = dims
        self.layers: list[EncoderParams] = [
            init_encoder_params(dims, rng) for _ in range(num_layers)
        ]

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    def num_parameters(self) -> int:
        return sum(p.num_parameters() for p in self.layers)

    def forward(
        self, x: np.ndarray, *, dropout_p: float = 0.0, seed: int = 0
    ) -> list[EncoderActivations]:
        """Run all layers; activation ``i`` feeds layer ``i+1``."""
        acts: list[EncoderActivations] = []
        h = x
        for i, params in enumerate(self.layers):
            a = encoder_forward(
                params, h, dropout_p=dropout_p, rng=np.random.default_rng((seed, i))
            )
            acts.append(a)
            h = a.ln2_out
        return acts

    def backward(
        self, acts: list[EncoderActivations], dy: np.ndarray
    ) -> tuple[list[EncoderParams], np.ndarray]:
        """Backprop through the stack; returns per-layer grads and dX."""
        if len(acts) != self.num_layers:
            raise ValueError("activation count does not match layer count")
        grads: list[EncoderParams] = [None] * self.num_layers  # type: ignore[list-item]
        d = dy
        for i in reversed(range(self.num_layers)):
            g, d = encoder_backward(self.layers[i], acts[i], d)
            grads[i] = g
        return grads, d


@dataclass(frozen=True)
class ModelTimeEstimate:
    """Per-iteration time decomposition for a stacked model."""

    num_layers: int
    layer_us: float
    #: embeddings + output head, not optimized by the recipe (Sec. III:
    #: "other components ... are not a significant component of the runtime")
    other_us: float

    @property
    def total_us(self) -> float:
        return self.num_layers * self.layer_us + self.other_us

    @property
    def layer_fraction(self) -> float:
        return self.num_layers * self.layer_us / self.total_us


def estimate_model_time(
    layer_us: float, *, num_layers: int = 24, other_fraction: float = 0.05
) -> ModelTimeEstimate:
    """Scale an optimized per-layer time to a full model (BERT-large: 24).

    ``other_fraction`` is the share of total time spent outside encoder
    layers (embedding lookups, the output head, optimizer step).
    """
    if not 0.0 <= other_fraction < 1.0:
        raise ValueError("other_fraction must be in [0, 1)")
    if num_layers < 1:
        raise ValueError("need at least one layer")
    layers_total = num_layers * layer_us
    other = layers_total * other_fraction / (1.0 - other_fraction)
    return ModelTimeEstimate(num_layers=num_layers, layer_us=layer_us, other_us=other)
