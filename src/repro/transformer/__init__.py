"""Transformer models: MHA and BERT encoder (NumPy reference + IR builders)."""

from .encoder import EncoderActivations, encoder_backward, encoder_forward
from .general_attention import (
    KVFusion,
    build_encdec_mha_graph,
    encdec_mha_forward,
)
from .graph_builder import (
    MHA_TENSORS,
    QKVFusion,
    build_encoder_graph,
    build_gpt_decoder_graph,
    build_mha_graph,
)
from .mha import MHAActivations, MHAGrads, mha_backward, mha_forward
from .model import BertModel, ModelTimeEstimate, estimate_model_time
from .params import (
    EncoderParams,
    MHAParams,
    ModelDims,
    init_encoder_params,
    init_mha_params,
)
from .training import (
    AdamState,
    TrainResult,
    adam_step,
    denoising_batch,
    train_denoising,
)

__all__ = [
    "AdamState",
    "BertModel",
    "KVFusion",
    "ModelTimeEstimate",
    "build_encdec_mha_graph",
    "encdec_mha_forward",
    "estimate_model_time",
    "EncoderActivations",
    "EncoderParams",
    "MHAActivations",
    "MHAGrads",
    "MHAParams",
    "MHA_TENSORS",
    "ModelDims",
    "QKVFusion",
    "TrainResult",
    "adam_step",
    "build_encoder_graph",
    "build_gpt_decoder_graph",
    "build_mha_graph",
    "denoising_batch",
    "encoder_backward",
    "encoder_forward",
    "init_encoder_params",
    "init_mha_params",
    "mha_backward",
    "mha_forward",
    "train_denoising",
]
