"""Training substrate: Adam, loss, and a synthetic sequence-denoising task.

The paper's subject is per-iteration performance, but a credible library
must also *train*: this module provides a minimal mixed-precision-flavoured
training loop over the NumPy encoder so the examples can demonstrate
end-to-end learning with the exact forward/backward kernels the analysis
studies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .encoder import encoder_backward, encoder_forward
from .params import EncoderParams, ModelDims, init_encoder_params

__all__ = ["AdamState", "adam_step", "TrainResult", "train_denoising", "denoising_batch"]


@dataclass
class AdamState:
    """First/second-moment estimates, one pair per parameter tensor."""

    m: dict[str, np.ndarray] = field(default_factory=dict)
    v: dict[str, np.ndarray] = field(default_factory=dict)
    t: int = 0


def adam_step(
    params: EncoderParams,
    grads: EncoderParams,
    state: AdamState,
    *,
    lr: float = 1e-3,
    beta1: float = 0.9,
    beta2: float = 0.999,
    eps: float = 1e-8,
) -> None:
    """One Adam update, in place."""
    state.t += 1
    t = state.t
    for (name, p), (_, g) in zip(params.named(), grads.named()):
        if name not in state.m:
            state.m[name] = np.zeros_like(p)
            state.v[name] = np.zeros_like(p)
        m = state.m[name]
        v = state.v[name]
        m *= beta1
        m += (1 - beta1) * g
        v *= beta2
        v += (1 - beta2) * g * g
        mhat = m / (1 - beta1**t)
        vhat = v / (1 - beta2**t)
        p -= lr * mhat / (np.sqrt(vhat) + eps)


def denoising_batch(
    dims: ModelDims, rng: np.random.Generator, noise: float = 0.5
) -> tuple[np.ndarray, np.ndarray]:
    """A synthetic denoising task: recover a clean signal from noisy input.

    The clean signal lives in a low-dimensional subspace of the embedding,
    so the layer must learn to project out the noise — enough structure to
    verify that gradients flow through every kernel.
    """
    i, b, j = dims.embed, dims.batch, dims.seq
    basis = np.linalg.qr(rng.normal(0, 1, (i, 8)))[0]  # fixed by seed
    coeff = rng.normal(0, 1, (8, b, j))
    clean = np.einsum("ir,rbj->ibj", basis, coeff)
    noisy = clean + noise * rng.normal(0, 1, (i, b, j))
    return noisy.astype(np.float64), clean.astype(np.float64)


@dataclass
class TrainResult:
    losses: list[float]
    params: EncoderParams

    @property
    def improved(self) -> bool:
        return self.losses[-1] < self.losses[0]


def train_denoising(
    dims: ModelDims,
    *,
    steps: int = 30,
    lr: float = 1e-3,
    dropout_p: float = 0.0,
    seed: int = 0,
) -> TrainResult:
    """Train one encoder layer on the denoising task; returns the loss curve."""
    rng = np.random.default_rng(seed)
    params = init_encoder_params(dims, rng, std=0.05)
    for name, arr in params.named():
        pass  # params are float32; training math runs in float64 below
    state = AdamState()
    losses: list[float] = []
    data_rng = np.random.default_rng(seed + 1)
    for step in range(steps):
        x, target = denoising_batch(dims, data_rng)
        acts = encoder_forward(params, x, dropout_p=dropout_p,
                               rng=np.random.default_rng((seed, step)))
        diff = acts.ln2_out - target
        loss = float((diff**2).mean())
        losses.append(loss)
        dy = (2.0 / diff.size) * diff
        grads, _ = encoder_backward(params, acts, dy)
        adam_step(params, grads, state, lr=lr)
    return TrainResult(losses=losses, params=params)
