"""Multi-head attention: NumPy forward and backward (Fig. 1a, Sec. II-B1).

The forward pass follows the paper's input code exactly, including the
einsum specs; the backward pass is derived by hand and validated against
finite differences in the test suite.

All activations are embedding-first: queries ``q[i, b, j]``, keys/values
``k[i, b, k]``.  Self-attention passes the same array for all three.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ops.elementwise import dropout_backward, dropout_forward
from repro.ops.softmax import softmax_backward, softmax_forward

from .params import MHAParams

__all__ = ["MHAActivations", "MHAGrads", "mha_forward", "mha_backward"]


@dataclass
class MHAActivations:
    """Saved forward intermediates, named as in Fig. 1."""

    q: np.ndarray  # input queries [i,b,j]
    k: np.ndarray  # input keys    [i,b,k]
    v: np.ndarray  # input values  [i,b,k]
    qq: np.ndarray  # projected queries [p,h,b,j]
    kk: np.ndarray  # projected keys    [p,h,b,k]
    vv: np.ndarray  # projected values  [w,h,b,k]
    alpha_sm: np.ndarray  # softmax output [h,b,j,k]
    alpha_mask: np.ndarray  # dropout mask  [h,b,j,k]
    alpha: np.ndarray  # dropped attention weights [h,b,j,k]
    gamma: np.ndarray  # per-head output [w,h,b,j]
    out: np.ndarray  # final output [i,b,j]
    scaler: float


@dataclass
class MHAGrads:
    """Gradients: parameters plus the three attention inputs."""

    params: MHAParams
    dq: np.ndarray
    dk: np.ndarray
    dv: np.ndarray


def mha_forward(
    params: MHAParams,
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    *,
    scaler: float | None = None,
    dropout_p: float = 0.1,
    rng: np.random.Generator | None = None,
    attn_mask: np.ndarray | None = None,
) -> MHAActivations:
    """Forward propagation of multi-head attention.

    ``attn_mask`` is an optional additive mask broadcastable to
    ``[h, b, j, k]`` (e.g. causal masking, Sec. II-B1).
    """
    if scaler is None:
        scaler = 1.0 / np.sqrt(params.wq.shape[0])
    if rng is None:
        rng = np.random.default_rng(0)

    qq = np.einsum("phi,ibj->phbj", params.wq, q) + params.bq[:, :, None, None]
    kk = np.einsum("phi,ibk->phbk", params.wk, k) + params.bk[:, :, None, None]
    vv = np.einsum("whi,ibk->whbk", params.wv, v) + params.bv[:, :, None, None]
    beta = np.einsum("phbk,phbj->hbjk", kk, qq)
    alpha_sm = softmax_forward(beta, axis=-1, scale=scaler, mask=attn_mask)
    alpha, alpha_mask = dropout_forward(alpha_sm, dropout_p, rng)
    gamma = np.einsum("whbk,hbjk->whbj", vv, alpha)
    out = np.einsum("whi,whbj->ibj", params.wo, gamma) + params.bo[:, None, None]
    return MHAActivations(
        q=q, k=k, v=v, qq=qq, kk=kk, vv=vv,
        alpha_sm=alpha_sm, alpha_mask=alpha_mask, alpha=alpha,
        gamma=gamma, out=out, scaler=scaler,
    )


def mha_backward(params: MHAParams, acts: MHAActivations, dout: np.ndarray) -> MHAGrads:
    """Backpropagation through MHA; mirrors Table III's backward MHA rows."""
    g = params.zeros_like()

    # Output projection (rows: Output bias dW / Out dX / Out dW).
    g.bo = dout.sum(axis=(1, 2))
    dgamma = np.einsum("whi,ibj->whbj", params.wo, dout)
    g.wo = np.einsum("ibj,whbj->whi", dout, acts.gamma)

    # Gamma contraction (rows: Gamma dX1 / Gamma dX2).
    dalpha = np.einsum("whbk,whbj->hbjk", acts.vv, dgamma)
    dvv = np.einsum("whbj,hbjk->whbk", dgamma, acts.alpha)

    # Dropout + scaled softmax (row: Scaled softmax dX, kernel BS).
    dalpha_sm = dropout_backward(dalpha, acts.alpha_mask)
    dbeta = softmax_backward(dalpha_sm, acts.alpha_sm, axis=-1, scale=acts.scaler)

    # QK^T contraction (rows: QKT dX1 / QKT dX2).
    dkk = np.einsum("hbjk,phbj->phbk", dbeta, acts.qq)
    dqq = np.einsum("hbjk,phbk->phbj", dbeta, acts.kk)

    # Input biases (row: Input bias dW, kernel BAIB).
    g.bq = dqq.sum(axis=(2, 3))
    g.bk = dkk.sum(axis=(2, 3))
    g.bv = dvv.sum(axis=(2, 3))

    # Input projections (rows: Q,K,V dX / Q,K,V dW).
    g.wq = np.einsum("phbj,ibj->phi", dqq, acts.q)
    g.wk = np.einsum("phbk,ibk->phi", dkk, acts.k)
    g.wv = np.einsum("whbk,ibk->whi", dvv, acts.v)
    dq = np.einsum("phi,phbj->ibj", params.wq, dqq)
    dk = np.einsum("phi,phbk->ibk", params.wk, dkk)
    dv = np.einsum("whi,whbk->ibk", params.wv, dvv)

    return MHAGrads(params=g, dq=dq, dk=dk, dv=dv)
