"""General and encoder/decoder attention (Sec. II-B1, Sec. IV-D).

The encoder uses *self*-attention (q = k = v).  The paper notes two other
MHA classes: **general** attention (three distinct inputs) and
**encoder/decoder** attention (keys = values, from the encoder output) —
and that algebraic fusion "can also be adapted to fuse keys and values in
encoder/decoder attention": ``[K̃ Ṽ] = [W_K W_V] X_enc``.

This module provides the graph builder and the NumPy execution for both,
including the KV-fused variant with its stacking dim ``d``.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from repro.ir.graph import DataflowGraph
from repro.ir.tensor import TensorSpec
from repro.ir.views import view_spec
from repro.ops.contraction import contraction_spec
from repro.ops.elementwise import bias_spec, dropout_spec
from repro.ops.softmax import softmax_spec

from .mha import MHAActivations, mha_forward
from .params import MHAParams

__all__ = ["KVFusion", "build_encdec_mha_graph", "encdec_mha_forward"]

KVFusion = Literal["unfused", "kv"]


def build_encdec_mha_graph(
    *, kv_fusion: KVFusion = "kv", name: str | None = None
) -> DataflowGraph:
    """Encoder/decoder attention forward graph.

    Queries come from the decoder stream ``xq[i,b,j]``; keys and values both
    come from the encoder output ``xkv[i,b,k]`` — so ``W_K`` and ``W_V`` can
    be stacked into one projection (the paper's KV fusion).
    """
    g = DataflowGraph(name or f"encdec-mha-{kv_fusion}")
    xq = g.add_input(TensorSpec("xq", ("i", "b", "j")))
    xkv = g.add_input(TensorSpec("xkv", ("i", "b", "k")))

    g.add_input(TensorSpec("wq", ("p", "h", "i"), is_param=True))
    g.add_op(
        contraction_spec("q_proj", "phi,ibj->phbj", ("wq", "xq"), "qq_lin",
                         param_inputs=(0,))
    )
    if kv_fusion == "kv":
        g.add_input(TensorSpec("wkv", ("d", "p", "h", "i"), is_param=True))
        g.add_op(
            contraction_spec("kv_proj", "dphi,ibk->dphbk", ("wkv", "xkv"), "kv_lin",
                             param_inputs=(0,))
        )
        kv_lin = g.container("kv_lin")
        g.add_op(view_spec("slice_kk", kv_lin, TensorSpec("kk_lin", ("p", "h", "b", "k"))))
        g.add_op(view_spec("slice_vv", kv_lin, TensorSpec("vv_lin", ("w", "h", "b", "k"))))
    else:
        g.add_input(TensorSpec("wk", ("p", "h", "i"), is_param=True))
        g.add_input(TensorSpec("wv", ("w", "h", "i"), is_param=True))
        g.add_op(
            contraction_spec("k_proj", "phi,ibk->phbk", ("wk", "xkv"), "kk_lin",
                             param_inputs=(0,))
        )
        g.add_op(
            contraction_spec("v_proj", "whi,ibk->whbk", ("wv", "xkv"), "vv_lin",
                             param_inputs=(0,))
        )

    g.add_input(TensorSpec("bq", ("p", "h"), is_param=True))
    g.add_input(TensorSpec("bk", ("p", "h"), is_param=True))
    g.add_input(TensorSpec("bv", ("w", "h"), is_param=True))
    g.add_op(bias_spec("input_bias_q", g.container("qq_lin"), ("p", "h"), "qq",
                       bias_name="bq"))
    g.add_op(bias_spec("input_bias_k", g.container("kk_lin"), ("p", "h"), "kk",
                       bias_name="bk"))
    g.add_op(bias_spec("input_bias_v", g.container("vv_lin"), ("w", "h"), "vv",
                       bias_name="bv"))

    g.add_op(contraction_spec("qkt", "phbk,phbj->hbjk", ("kk", "qq"), "beta"))
    g.add_op(softmax_spec("softmax", g.container("beta"), "alpha_sm", axis_dim="k"))
    g.add_op(dropout_spec("attn_dropout", g.container("alpha_sm"), "alpha",
                          mask_name="alpha_mask"))
    g.add_op(contraction_spec("gamma", "whbk,hbjk->whbj", ("vv", "alpha"), "gamma_out"))

    g.add_input(TensorSpec("wo", ("w", "h", "i"), is_param=True))
    g.add_input(TensorSpec("bo", ("i",), is_param=True))
    g.add_op(contraction_spec("attn_out", "whi,whbj->ibj", ("wo", "gamma_out"),
                              "attn_lin", param_inputs=(0,)))
    g.add_op(bias_spec("attn_out_bias", g.container("attn_lin"), ("i",), "attn_out",
                       bias_name="bo"))
    g.validate()
    return g


def encdec_mha_forward(
    params: MHAParams,
    xq: np.ndarray,
    xkv: np.ndarray,
    *,
    dropout_p: float = 0.1,
    rng: np.random.Generator | None = None,
) -> MHAActivations:
    """Encoder/decoder attention: queries from ``xq``, keys/values from
    ``xkv`` (both projections read the same tensor)."""
    return mha_forward(params, xq, xkv, xkv, dropout_p=dropout_p, rng=rng)
