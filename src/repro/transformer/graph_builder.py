"""Dataflow-graph builders for MHA and the BERT encoder layer.

These construct the *unfused* operator graphs (one logical operator per
node, Figs. 1b and 2) that Step 1 of the recipe analyzes and Steps 2-4
transform.  The builders support the three algebraic-fusion variants of the
Q/K/V input projections (Sec. IV-D):

* ``"unfused"`` — three separate batched MMMs (TensorFlow+XLA's choice);
* ``"qk"``      — ``[W_Q W_K]`` stacked, ``W_V`` separate;
* ``"qkv"``     — ``[W_Q W_K W_V]`` fully stacked (PyTorch's and the
  paper's choice; Table II shows it is fastest).

Stacked projections introduce the stacking dims ``c`` (=3) / ``d`` (=2) and
zero-cost view nodes that slice the stacked result back into ``qq/kk/vv``.
In backward, a zero-cost *pack* view reassembles the stacked gradient — the
real implementation writes the three gradient tensors directly into one
buffer, so no data moves.
"""

from __future__ import annotations

from typing import Literal

from repro.ir.graph import DataflowGraph
from repro.ir.iteration_space import IterationSpace
from repro.ir.operator import OpClass, OpSpec, Stage
from repro.ir.tensor import TensorSpec
from repro.ir.views import view_spec
from repro.ops.contraction import contraction_spec
from repro.ops.elementwise import bias_spec, dropout_spec, relu_spec, residual_spec
from repro.ops.layernorm import layernorm_dw_spec, layernorm_dx_spec, layernorm_spec
from repro.ops.softmax import softmax_spec

__all__ = [
    "MHA_TENSORS",
    "QKVFusion",
    "build_encoder_graph",
    "build_gpt_decoder_graph",
    "build_mha_graph",
]

QKVFusion = Literal["unfused", "qk", "qkv"]

#: Names of the MHA activation containers (for tests and examples).
MHA_TENSORS = (
    "qq", "kk", "vv", "beta", "alpha_sm", "alpha", "gamma_out", "attn_lin", "attn_out",
)


# ---------------------------------------------------------------------------
# Small spec helpers
# ---------------------------------------------------------------------------

def _bias_dw_spec(
    name: str, dy: TensorSpec, bias_dims: tuple[str, ...], out_name: str
) -> OpSpec:
    """dW of a bias: a reduction over the broadcast dims (class ⬜ in Table III)."""
    reduce_dims = tuple(d for d in dy.dims if d not in bias_dims)
    out = TensorSpec(out_name, bias_dims, dtype=dy.dtype)
    return OpSpec(
        name=name,
        op_class=OpClass.STAT_NORMALIZATION,
        inputs=(dy,),
        outputs=(out,),
        ispace=IterationSpace(bias_dims, reduce_dims),
        flop_per_point=1.0,
        stage=Stage.BACKWARD_DW,
    )


def _dropout_dx_spec(name: str, dy: TensorSpec, mask: TensorSpec, out_name: str) -> OpSpec:
    out = TensorSpec(out_name, dy.dims, dtype=dy.dtype)
    return OpSpec(
        name=name,
        op_class=OpClass.ELEMENTWISE,
        inputs=(dy, mask),
        outputs=(out,),
        ispace=IterationSpace(dy.dims),
        flop_per_point=1.0,
        stage=Stage.BACKWARD_DX,
    )


def _relu_dx_spec(name: str, dy: TensorSpec, pre_act: TensorSpec, out_name: str) -> OpSpec:
    out = TensorSpec(out_name, dy.dims, dtype=dy.dtype)
    return OpSpec(
        name=name,
        op_class=OpClass.ELEMENTWISE,
        inputs=(dy, pre_act),
        outputs=(out,),
        ispace=IterationSpace(dy.dims),
        flop_per_point=1.0,
        stage=Stage.BACKWARD_DX,
    )


def _add_spec(
    name: str, terms: tuple[TensorSpec, ...], out_name: str, *, stage: Stage
) -> OpSpec:
    dims = terms[0].dims
    for t in terms:
        if t.dims != dims:
            raise ValueError(f"add operands disagree: {t.dims} vs {dims}")
    out = TensorSpec(out_name, dims, dtype=terms[0].dtype)
    return OpSpec(
        name=name,
        op_class=OpClass.ELEMENTWISE,
        inputs=terms,
        outputs=(out,),
        ispace=IterationSpace(dims),
        flop_per_point=float(len(terms) - 1),
        stage=stage,
    )


def _softmax_dx_spec(name: str, dy: TensorSpec, y: TensorSpec, out_name: str,
                     *, axis_dim: str) -> OpSpec:
    independent = tuple(d for d in dy.dims if d != axis_dim)
    out = TensorSpec(out_name, dy.dims, dtype=dy.dtype)
    return OpSpec(
        name=name,
        op_class=OpClass.STAT_NORMALIZATION,
        inputs=(dy, y),
        outputs=(out,),
        ispace=IterationSpace(independent, (axis_dim,)),
        flop_per_point=5.0,
        stage=Stage.BACKWARD_DX,
    )


# ---------------------------------------------------------------------------
# MHA forward
# ---------------------------------------------------------------------------

def _mha_forward(g: DataflowGraph, qkv_fusion: QKVFusion, *, masked: bool = False) -> None:
    """Append MHA forward ops for self-attention on input ``x[i,b,j]``."""
    x = g.add_input(TensorSpec("x", ("i", "b", "j")))
    xk = TensorSpec("xk", ("i", "b", "k"))
    g.add_op(view_spec("x_as_keys", x, xk))

    if qkv_fusion == "qkv":
        g.add_input(TensorSpec("wqkv", ("c", "p", "h", "i"), is_param=True))
        g.add_op(
            contraction_spec(
                "qkv_proj", "cphi,ibj->cphbj", ("wqkv", "x"), "qkv_lin",
                param_inputs=(0,),
            )
        )
        qkv_lin = g.container("qkv_lin")
        g.add_op(view_spec("slice_qq", qkv_lin, TensorSpec("qq_lin", ("p", "h", "b", "j"))))
        g.add_op(view_spec("slice_kk", qkv_lin, TensorSpec("kk_lin", ("p", "h", "b", "k"))))
        g.add_op(view_spec("slice_vv", qkv_lin, TensorSpec("vv_lin", ("w", "h", "b", "k"))))
    elif qkv_fusion == "qk":
        g.add_input(TensorSpec("wqk", ("d", "p", "h", "i"), is_param=True))
        g.add_input(TensorSpec("wv", ("w", "h", "i"), is_param=True))
        g.add_op(
            contraction_spec(
                "qk_proj", "dphi,ibj->dphbj", ("wqk", "x"), "qk_lin", param_inputs=(0,)
            )
        )
        qk_lin = g.container("qk_lin")
        g.add_op(view_spec("slice_qq", qk_lin, TensorSpec("qq_lin", ("p", "h", "b", "j"))))
        g.add_op(view_spec("slice_kk", qk_lin, TensorSpec("kk_lin", ("p", "h", "b", "k"))))
        g.add_op(
            contraction_spec(
                "v_proj", "whi,ibk->whbk", ("wv", "xk"), "vv_lin", param_inputs=(0,)
            )
        )
    else:  # unfused
        g.add_input(TensorSpec("wq", ("p", "h", "i"), is_param=True))
        g.add_input(TensorSpec("wk", ("p", "h", "i"), is_param=True))
        g.add_input(TensorSpec("wv", ("w", "h", "i"), is_param=True))
        g.add_op(
            contraction_spec("q_proj", "phi,ibj->phbj", ("wq", "x"), "qq_lin",
                             param_inputs=(0,))
        )
        g.add_op(
            contraction_spec("k_proj", "phi,ibk->phbk", ("wk", "xk"), "kk_lin",
                             param_inputs=(0,))
        )
        g.add_op(
            contraction_spec("v_proj", "whi,ibk->whbk", ("wv", "xk"), "vv_lin",
                             param_inputs=(0,))
        )

    # Input biases (fused later into AIB).
    g.add_input(TensorSpec("bq", ("p", "h"), is_param=True))
    g.add_input(TensorSpec("bk", ("p", "h"), is_param=True))
    g.add_input(TensorSpec("bv", ("w", "h"), is_param=True))
    g.add_op(bias_spec("input_bias_q", g.container("qq_lin"), ("p", "h"), "qq",
                       bias_name="bq"))
    g.add_op(bias_spec("input_bias_k", g.container("kk_lin"), ("p", "h"), "kk",
                       bias_name="bk"))
    g.add_op(bias_spec("input_bias_v", g.container("vv_lin"), ("w", "h"), "vv",
                       bias_name="bv"))

    # Attention core.
    g.add_op(contraction_spec("qkt", "phbk,phbj->hbjk", ("kk", "qq"), "beta"))
    mask_spec = None
    if masked:
        mask_spec = g.add_input(TensorSpec("attn_mask", ("j", "k")))
    g.add_op(
        softmax_spec(
            "softmax", g.container("beta"), "alpha_sm", axis_dim="k", mask=mask_spec
        )
    )
    g.add_op(dropout_spec("attn_dropout", g.container("alpha_sm"), "alpha",
                          mask_name="alpha_mask"))
    g.add_op(contraction_spec("gamma", "whbk,hbjk->whbj", ("vv", "alpha"), "gamma_out"))

    # Output projection + bias.
    g.add_input(TensorSpec("wo", ("w", "h", "i"), is_param=True))
    g.add_input(TensorSpec("bo", ("i",), is_param=True))
    g.add_op(contraction_spec("attn_out", "whi,whbj->ibj", ("wo", "gamma_out"),
                              "attn_lin", param_inputs=(0,)))
    g.add_op(bias_spec("attn_out_bias", g.container("attn_lin"), ("i",), "attn_out",
                       bias_name="bo"))


# ---------------------------------------------------------------------------
# MHA backward
# ---------------------------------------------------------------------------

def _mha_backward(g: DataflowGraph, qkv_fusion: QKVFusion, d_out_name: str) -> str:
    """Append MHA backward ops; returns the name of the summed input gradient."""
    d_attn_out = g.container(d_out_name)

    # Output bias dW (BAOB) and output projection backward.
    g.add_op(_bias_dw_spec("attn_out_bias_dw", d_attn_out, ("i",), "d_bo"))
    g.add_op(
        contraction_spec("attn_out_dx", "whi,ibj->whbj", ("wo", d_out_name), "d_gamma",
                         stage=Stage.BACKWARD_DX)
    )
    g.add_op(
        contraction_spec("attn_out_dw", "ibj,whbj->whi", (d_out_name, "gamma_out"),
                         "d_wo", stage=Stage.BACKWARD_DW)
    )

    # Gamma backward.
    g.add_op(
        contraction_spec("gamma_dx1", "whbk,whbj->hbjk", ("vv", "d_gamma"), "d_alpha",
                         stage=Stage.BACKWARD_DX)
    )
    g.add_op(
        contraction_spec("gamma_dx2", "whbj,hbjk->whbk", ("d_gamma", "alpha"), "d_vv",
                         stage=Stage.BACKWARD_DX)
    )

    # Dropout + softmax backward (BS).
    g.add_op(_dropout_dx_spec("attn_dropout_dx", g.container("d_alpha"),
                              g.container("alpha_mask"), "d_alpha_sm"))
    g.add_op(_softmax_dx_spec("softmax_dx", g.container("d_alpha_sm"),
                              g.container("alpha_sm"), "d_beta", axis_dim="k"))

    # QKT backward.
    g.add_op(
        contraction_spec("qkt_dx1", "hbjk,phbj->phbk", ("d_beta", "qq"), "d_kk",
                         stage=Stage.BACKWARD_DX)
    )
    g.add_op(
        contraction_spec("qkt_dx2", "hbjk,phbk->phbj", ("d_beta", "kk"), "d_qq",
                         stage=Stage.BACKWARD_DX)
    )

    # Input bias dW (BAIB).
    g.add_op(_bias_dw_spec("input_bias_q_dw", g.container("d_qq"), ("p", "h"), "d_bq"))
    g.add_op(_bias_dw_spec("input_bias_k_dw", g.container("d_kk"), ("p", "h"), "d_bk"))
    g.add_op(_bias_dw_spec("input_bias_v_dw", g.container("d_vv"), ("w", "h"), "d_bv"))

    # Projection backward, per algebraic-fusion variant.
    if qkv_fusion == "qkv":
        d_qkv = TensorSpec("d_qkv", ("c", "p", "h", "b", "j"))
        pack = OpSpec(
            name="pack_d_qkv",
            op_class=OpClass.ELEMENTWISE,
            inputs=(g.container("d_qq"), g.container("d_kk"), g.container("d_vv")),
            outputs=(d_qkv,),
            ispace=IterationSpace(d_qkv.dims),
            flop_per_point=0.0,
            stage=Stage.BACKWARD_DX,
            is_view=True,
        )
        g.add_op(pack)
        g.add_op(
            contraction_spec("qkv_proj_dx", "cphi,cphbj->ibj", ("wqkv", "d_qkv"),
                             "d_x_proj", stage=Stage.BACKWARD_DX)
        )
        g.add_op(
            contraction_spec("qkv_proj_dw", "cphbj,ibj->cphi", ("d_qkv", "x"),
                             "d_wqkv", stage=Stage.BACKWARD_DW)
        )
        return "d_x_proj"
    if qkv_fusion == "qk":
        d_qk = TensorSpec("d_qk", ("d", "p", "h", "b", "j"))
        g.add_op(
            OpSpec(
                name="pack_d_qk",
                op_class=OpClass.ELEMENTWISE,
                inputs=(g.container("d_qq"), g.container("d_kk")),
                outputs=(d_qk,),
                ispace=IterationSpace(d_qk.dims),
                flop_per_point=0.0,
                stage=Stage.BACKWARD_DX,
                is_view=True,
            )
        )
        g.add_op(
            contraction_spec("qk_proj_dx", "dphi,dphbj->ibj", ("wqk", "d_qk"),
                             "d_x_qk", stage=Stage.BACKWARD_DX)
        )
        g.add_op(
            contraction_spec("qk_proj_dw", "dphbj,ibj->dphi", ("d_qk", "x"),
                             "d_wqk", stage=Stage.BACKWARD_DW)
        )
        g.add_op(
            contraction_spec("v_proj_dx", "whi,whbk->ibk", ("wv", "d_vv"), "d_x_v_k",
                             stage=Stage.BACKWARD_DX)
        )
        g.add_op(
            contraction_spec("v_proj_dw", "whbk,ibk->whi", ("d_vv", "xk"), "d_wv",
                             stage=Stage.BACKWARD_DW)
        )
        g.add_op(view_spec("d_x_v_as_j", g.container("d_x_v_k"),
                           TensorSpec("d_x_v", ("i", "b", "j")),
                           stage=Stage.BACKWARD_DX))
        g.add_op(_add_spec("qk_v_grad_add",
                           (g.container("d_x_qk"), g.container("d_x_v")),
                           "d_x_proj", stage=Stage.BACKWARD_DX))
        return "d_x_proj"

    # unfused
    g.add_op(contraction_spec("q_proj_dx", "phi,phbj->ibj", ("wq", "d_qq"), "d_x_q",
                              stage=Stage.BACKWARD_DX))
    g.add_op(contraction_spec("q_proj_dw", "phbj,ibj->phi", ("d_qq", "x"), "d_wq",
                              stage=Stage.BACKWARD_DW))
    g.add_op(contraction_spec("k_proj_dx", "phi,phbk->ibk", ("wk", "d_kk"), "d_x_k_k",
                              stage=Stage.BACKWARD_DX))
    g.add_op(contraction_spec("k_proj_dw", "phbk,ibk->phi", ("d_kk", "xk"), "d_wk",
                              stage=Stage.BACKWARD_DW))
    g.add_op(contraction_spec("v_proj_dx", "whi,whbk->ibk", ("wv", "d_vv"), "d_x_v_k",
                              stage=Stage.BACKWARD_DX))
    g.add_op(contraction_spec("v_proj_dw", "whbk,ibk->whi", ("d_vv", "xk"), "d_wv",
                              stage=Stage.BACKWARD_DW))
    g.add_op(view_spec("d_x_k_as_j", g.container("d_x_k_k"),
                       TensorSpec("d_x_k", ("i", "b", "j")), stage=Stage.BACKWARD_DX))
    g.add_op(view_spec("d_x_v_as_j", g.container("d_x_v_k"),
                       TensorSpec("d_x_v", ("i", "b", "j")), stage=Stage.BACKWARD_DX))
    g.add_op(_add_spec("qkv_grad_add",
                       (g.container("d_x_q"), g.container("d_x_k"),
                        g.container("d_x_v")),
                       "d_x_proj", stage=Stage.BACKWARD_DX))
    return "d_x_proj"


# ---------------------------------------------------------------------------
# Public builders
# ---------------------------------------------------------------------------

def build_mha_graph(
    *, qkv_fusion: QKVFusion = "unfused", include_backward: bool = True,
    masked: bool = False, name: str | None = None,
) -> DataflowGraph:
    """The multi-head self-attention dataflow graph (Fig. 1b + its backward).

    ``masked=True`` adds an additive attention mask input (``attn_mask[j,k]``,
    e.g. causal masking during training, Sec. II-B1).
    """
    g = DataflowGraph(name or f"mha-{qkv_fusion}")
    _mha_forward(g, qkv_fusion, masked=masked)
    if include_backward:
        g.add_input(TensorSpec("d_attn_out", ("i", "b", "j")))
        d_x_proj = _mha_backward(g, qkv_fusion, "d_attn_out")
        g.add_op(view_spec("d_x_alias", g.container(d_x_proj),
                           TensorSpec("d_x", ("i", "b", "j")),
                           stage=Stage.BACKWARD_DX))
    g.validate()
    return g


def build_encoder_graph(
    *, qkv_fusion: QKVFusion = "qkv", include_backward: bool = True,
    masked: bool = False, name: str | None = None,
) -> DataflowGraph:
    """The full BERT encoder layer dataflow graph (Fig. 2).

    Forward + backward, unfused: one node per logical operator, matching
    Table III's per-operator rows.  ``masked=True`` adds the additive
    attention-mask input.
    """
    g = DataflowGraph(name or f"encoder-{qkv_fusion}")
    _mha_forward(g, qkv_fusion, masked=masked)

    # Post-attention: bias -> dropout -> residual -> layernorm (BDRLN).
    g.add_op(dropout_spec("attn_resid_dropout", g.container("attn_out"), "attn_drop",
                          mask_name="attn_drop_mask"))
    g.add_op(residual_spec("residual1", g.container("attn_drop"), g.container("x"),
                           "resid1"))
    g.add_input(TensorSpec("ln1_g", ("i",), is_param=True))
    g.add_input(TensorSpec("ln1_b", ("i",), is_param=True))
    g.add_op(layernorm_spec("ln1", g.container("resid1"), "ln1_out", norm_dim="i",
                            scale_name="ln1_g", bias_name="ln1_b"))

    # Feed-forward network.
    g.add_input(TensorSpec("w1", ("u", "i"), is_param=True))
    g.add_input(TensorSpec("b1", ("u",), is_param=True))
    g.add_op(contraction_spec("linear1", "ui,ibj->ubj", ("w1", "ln1_out"), "lin1_lin",
                              param_inputs=(0,)))
    g.add_op(bias_spec("linear1_bias", g.container("lin1_lin"), ("u",), "lin1_biased",
                       bias_name="b1"))
    g.add_op(relu_spec("relu", g.container("lin1_biased"), "act"))
    g.add_op(dropout_spec("ffn_dropout", g.container("act"), "ffn_drop",
                          mask_name="ffn_drop_mask"))

    g.add_input(TensorSpec("w2", ("i", "u"), is_param=True))
    g.add_input(TensorSpec("b2", ("i",), is_param=True))
    g.add_op(contraction_spec("linear2", "iu,ubj->ibj", ("w2", "ffn_drop"), "lin2_lin",
                              param_inputs=(0,)))
    g.add_op(bias_spec("linear2_bias", g.container("lin2_lin"), ("i",), "lin2_biased",
                       bias_name="b2"))
    g.add_op(dropout_spec("ffn_resid_dropout", g.container("lin2_biased"), "out_drop",
                          mask_name="out_drop_mask"))
    g.add_op(residual_spec("residual2", g.container("out_drop"),
                           g.container("ln1_out"), "resid2"))
    g.add_input(TensorSpec("ln2_g", ("i",), is_param=True))
    g.add_input(TensorSpec("ln2_b", ("i",), is_param=True))
    g.add_op(layernorm_spec("ln2", g.container("resid2"), "y", norm_dim="i",
                            scale_name="ln2_g", bias_name="ln2_b"))

    if not include_backward:
        g.validate()
        return g

    # ---------------- backward ----------------
    g.add_input(TensorSpec("dy", ("i", "b", "j")))
    dy = g.container("dy")

    # LayerNorm-2 backward (BSB / BLNRD).
    g.add_op(layernorm_dw_spec("ln2_dw", dy, g.container("resid2"), norm_dim="i",
                               dscale_name="d_ln2_g", dbias_name="d_ln2_b"))
    g.add_op(layernorm_dx_spec("ln2_dx", dy, g.container("resid2"),
                               g.container("ln2_g"), "d_resid2", norm_dim="i"))
    g.add_op(_dropout_dx_spec("ffn_resid_dropout_dx", g.container("d_resid2"),
                              g.container("out_drop_mask"), "d_lin2_biased"))

    # Linear-2 backward.
    g.add_op(_bias_dw_spec("linear2_bias_dw", g.container("d_lin2_biased"), ("i",),
                           "d_b2"))
    g.add_op(contraction_spec("linear2_dx", "iu,ibj->ubj", ("w2", "d_lin2_biased"),
                              "d_ffn_drop", stage=Stage.BACKWARD_DX))
    g.add_op(contraction_spec("linear2_dw", "ibj,ubj->iu", ("d_lin2_biased", "ffn_drop"),
                              "d_w2", stage=Stage.BACKWARD_DW))

    # Dropout/ReLU/bias backward (BDRB with linear2_bias_dw and linear1_bias_dw).
    g.add_op(_dropout_dx_spec("ffn_dropout_dx", g.container("d_ffn_drop"),
                              g.container("ffn_drop_mask"), "d_act"))
    g.add_op(_relu_dx_spec("relu_dx", g.container("d_act"), g.container("lin1_biased"),
                           "d_lin1_biased"))
    g.add_op(_bias_dw_spec("linear1_bias_dw", g.container("d_lin1_biased"), ("u",),
                           "d_b1"))

    # Linear-1 backward.
    g.add_op(contraction_spec("linear1_dx", "ui,ubj->ibj", ("w1", "d_lin1_biased"),
                              "d_ln1_ffn", stage=Stage.BACKWARD_DX))
    g.add_op(contraction_spec("linear1_dw", "ubj,ibj->ui", ("d_lin1_biased", "ln1_out"),
                              "d_w1", stage=Stage.BACKWARD_DW))

    # Residual-2 gradient add + LayerNorm-1 dW (EBSB) and dX (BLNRD).
    g.add_op(_add_spec("residual2_grad", (g.container("d_ln1_ffn"),
                                          g.container("d_resid2")),
                       "d_ln1_out", stage=Stage.BACKWARD_DX))
    g.add_op(layernorm_dw_spec("ln1_dw", g.container("d_ln1_out"),
                               g.container("resid1"), norm_dim="i",
                               dscale_name="d_ln1_g", dbias_name="d_ln1_b"))
    g.add_op(layernorm_dx_spec("ln1_dx", g.container("d_ln1_out"),
                               g.container("resid1"), g.container("ln1_g"),
                               "d_resid1", norm_dim="i"))
    g.add_op(_dropout_dx_spec("attn_resid_dropout_dx", g.container("d_resid1"),
                              g.container("attn_drop_mask"), "d_attn_out"))

    # MHA backward.
    d_x_proj = _mha_backward(g, qkv_fusion, "d_attn_out")

    # Encoder-input residual (BEI): dx = projection grads + saved skip grad.
    g.add_op(_add_spec("encoder_input_grad",
                       (g.container(d_x_proj), g.container("d_resid1")),
                       "d_x", stage=Stage.BACKWARD_DX))
    g.validate()
    return g


def build_gpt_decoder_graph(
    *, qkv_fusion: QKVFusion = "qkv", include_backward: bool = True,
    name: str | None = None,
) -> DataflowGraph:
    """A GPT-2/3-style decoder layer (Sec. VIII: "Additional transformer
    networks ... only differ by dimensions and minor aspects").

    Structurally an encoder layer with causally-masked self-attention; the
    whole recipe — fusion, tuning, selection — applies unchanged.
    """
    return build_encoder_graph(
        qkv_fusion=qkv_fusion,
        include_backward=include_backward,
        masked=True,
        name=name or f"gpt-decoder-{qkv_fusion}",
    )
