"""Model configuration and parameter containers for the BERT encoder layer.

Dimension conventions follow the paper (Fig. 1): activations are stored
embedding-first, ``x[i, b, j]``; projection weights are ``w[p, h, i]``
(projection size, heads, embedding).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Iterator

import numpy as np

from repro.ir.dims import DimEnv

__all__ = ["ModelDims", "MHAParams", "EncoderParams", "init_mha_params", "init_encoder_params"]


@dataclass(frozen=True)
class ModelDims:
    """Concrete model dimensions, convertible to a :class:`DimEnv`."""

    batch: int = 8
    seq: int = 512
    heads: int = 16
    proj: int = 64
    ffn_mult: int = 4

    @property
    def embed(self) -> int:
        return self.heads * self.proj

    @property
    def ffn(self) -> int:
        return self.ffn_mult * self.embed

    def env(self) -> DimEnv:
        return DimEnv(
            {
                "b": self.batch,
                "j": self.seq,
                "k": self.seq,
                "h": self.heads,
                "p": self.proj,
                "w": self.proj,
                "i": self.embed,
                "u": self.ffn,
                "c": 3,
                "d": 2,
            }
        )

    @staticmethod
    def bert_large() -> "ModelDims":
        return ModelDims()

    @staticmethod
    def tiny() -> "ModelDims":
        """Gradcheck-friendly sizes."""
        return ModelDims(batch=2, seq=5, heads=2, proj=3, ffn_mult=2)


@dataclass
class MHAParams:
    """Multi-head attention parameters (Fig. 1a's signature)."""

    wq: np.ndarray  # [p, h, i]
    bq: np.ndarray  # [p, h]
    wk: np.ndarray  # [p, h, i]
    bk: np.ndarray  # [p, h]
    wv: np.ndarray  # [w, h, i]
    bv: np.ndarray  # [w, h]
    wo: np.ndarray  # [w, h, i]
    bo: np.ndarray  # [i]

    def named(self) -> Iterator[tuple[str, np.ndarray]]:
        for f in fields(self):
            yield f.name, getattr(self, f.name)

    def zeros_like(self) -> "MHAParams":
        return MHAParams(**{k: np.zeros_like(v) for k, v in self.named()})


@dataclass
class EncoderParams:
    """Full BERT encoder layer parameters: MHA + two LayerNorms + FFN."""

    mha: MHAParams
    ln1_g: np.ndarray  # [i]
    ln1_b: np.ndarray  # [i]
    w1: np.ndarray  # [u, i]
    b1: np.ndarray  # [u]
    w2: np.ndarray  # [i, u]
    b2: np.ndarray  # [i]
    ln2_g: np.ndarray  # [i]
    ln2_b: np.ndarray  # [i]

    def named(self) -> Iterator[tuple[str, np.ndarray]]:
        for name, arr in self.mha.named():
            yield f"mha.{name}", arr
        for f in fields(self):
            if f.name == "mha":
                continue
            yield f.name, getattr(self, f.name)

    def zeros_like(self) -> "EncoderParams":
        return EncoderParams(
            mha=self.mha.zeros_like(),
            **{
                f.name: np.zeros_like(getattr(self, f.name))
                for f in fields(self)
                if f.name != "mha"
            },
        )

    def num_parameters(self) -> int:
        return sum(int(a.size) for _, a in self.named())


def init_mha_params(dims: ModelDims, rng: np.random.Generator, std: float = 0.02) -> MHAParams:
    p, h, i, w = dims.proj, dims.heads, dims.embed, dims.proj
    n = rng.normal
    return MHAParams(
        wq=n(0, std, (p, h, i)).astype(np.float32),
        bq=np.zeros((p, h), dtype=np.float32),
        wk=n(0, std, (p, h, i)).astype(np.float32),
        bk=np.zeros((p, h), dtype=np.float32),
        wv=n(0, std, (w, h, i)).astype(np.float32),
        bv=np.zeros((w, h), dtype=np.float32),
        wo=n(0, std, (w, h, i)).astype(np.float32),
        bo=np.zeros((i,), dtype=np.float32),
    )


def init_encoder_params(
    dims: ModelDims, rng: np.random.Generator, std: float = 0.02
) -> EncoderParams:
    i, u = dims.embed, dims.ffn
    n = rng.normal
    return EncoderParams(
        mha=init_mha_params(dims, rng, std),
        ln1_g=np.ones((i,), dtype=np.float32),
        ln1_b=np.zeros((i,), dtype=np.float32),
        w1=n(0, std, (u, i)).astype(np.float32),
        b1=np.zeros((u,), dtype=np.float32),
        w2=n(0, std, (i, u)).astype(np.float32),
        b2=np.zeros((i,), dtype=np.float32),
        ln2_g=np.ones((i,), dtype=np.float32),
        ln2_b=np.zeros((i,), dtype=np.float32),
    )
