"""Structure-of-arrays enumeration of operator configuration spaces.

The scalar sweep materializes one :class:`~repro.layouts.config.OpConfig`
object per point and re-derives everything (einsum parse, GEMM mapping,
layout factors) inside the per-config loop.  The engine instead enumerates
each operator's space *once* into flat index arrays over small per-knob
choice tables:

* contractions: an array of feasible layout-triple indices crossed with
  tensor-core mode and GEMM algorithm;
* memory-bound kernels: one layout-index column per operand plus columns
  for the vectorization and warp-reduce dimension choices.

Enumeration order is taken verbatim from
:mod:`repro.layouts.configspace` (`contraction_triples`,
`kernel_config_indices`), which is what lets the engine's stable sort
reproduce the reference sweep's tie-breaking exactly.  ``OpConfig`` objects
are only built lazily, on measurement access.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import prod

import numpy as np

from repro.ir.dims import DimEnv
from repro.ir.operator import OpSpec
from repro.layouts.config import NUM_GEMM_ALGORITHMS, OpConfig
from repro.layouts.configspace import (
    contraction_triples,
    kernel_config_indices,
    kernel_space,
)
from repro.layouts.gemm_mapping import GemmShape, _shape_from_structure
from repro.layouts.layout import Layout

__all__ = [
    "ContractionSpace",
    "KernelSpace",
    "enumerate_contraction_space",
    "enumerate_kernel_space",
    "shapes_from_structures",
]


@dataclass
class ContractionSpace:
    """A contraction's config space in structure-of-arrays form."""

    op: OpSpec
    #: Feasible ``(layout_a, layout_b, layout_c, gemm_shape)`` triples.
    triples: list[tuple[Layout, Layout, Layout, GemmShape]]
    #: Per-config index into :attr:`triples`.
    triple_idx: np.ndarray
    #: Per-config requested tensor-core mode.
    tc_flags: np.ndarray
    #: Per-config GEMM algorithm id.
    algos: np.ndarray

    @property
    def num_configs(self) -> int:
        return int(self.triple_idx.shape[0])

    def config_at(self, j: int) -> OpConfig:
        """Materialize the ``j``-th config (enumeration order)."""
        la, lb, lc, _shape = self.triples[int(self.triple_idx[j])]
        return OpConfig(
            op_name=self.op.name,
            input_layouts=(la, lb),
            output_layouts=(lc,),
            algorithm=int(self.algos[j]),
            use_tensor_cores=bool(self.tc_flags[j]),
        )


@dataclass
class KernelSpace:
    """A memory-bound kernel's config space in structure-of-arrays form."""

    op: OpSpec
    #: One layout choice list per operand (inputs then outputs).
    layout_choices: list[list[Layout]]
    vec_choices: list[str | None]
    warp_choices: list[str | None]
    #: ``(num_configs, num_operands + 2)`` knob indices, enumeration order;
    #: the last two columns are the vector and warp-reduce choice.
    idx: np.ndarray

    @property
    def num_configs(self) -> int:
        return int(self.idx.shape[0])

    @property
    def num_operands(self) -> int:
        return len(self.layout_choices)

    def config_at(self, j: int) -> OpConfig:
        """Materialize the ``j``-th config (enumeration order)."""
        row = self.idx[j]
        n_in = len(self.op.inputs)
        layouts = [self.layout_choices[o][int(row[o])] for o in range(self.num_operands)]
        return OpConfig(
            op_name=self.op.name,
            input_layouts=tuple(layouts[:n_in]),
            output_layouts=tuple(layouts[n_in:]),
            vector_dim=self.vec_choices[int(row[-2])],
            warp_reduce_dim=self.warp_choices[int(row[-1])],
        )


def enumerate_contraction_space(op: OpSpec, env: DimEnv) -> ContractionSpace:
    """Enumerate a contraction's feasible configs into arrays.

    The GEMM mapping runs once per layout triple here; the scalar path
    re-runs it for each of the triple's ``2 * NUM_GEMM_ALGORITHMS`` configs.
    """
    triples = list(contraction_triples(op, env))
    t = len(triples)
    per_triple = 2 * NUM_GEMM_ALGORITHMS
    # Order matches contraction_configs: triple-major, then tc in
    # (True, False), then algorithm ascending.
    triple_idx = np.repeat(np.arange(t, dtype=np.int64), per_triple)
    tc_flags = np.tile(
        np.repeat(np.array([True, False]), NUM_GEMM_ALGORITHMS), t
    )
    algos = np.tile(np.arange(NUM_GEMM_ALGORITHMS, dtype=np.int64), 2 * t)
    return ContractionSpace(
        op=op, triples=triples, triple_idx=triple_idx, tc_flags=tc_flags, algos=algos
    )


def shapes_from_structures(structures, env: DimEnv) -> list[GemmShape]:
    """Instantiate persisted GEMM-mapping structures at concrete dim sizes.

    ``structures`` is the JSON round-trip of the size-independent
    ``(m_group, n_group, k_group, batch_group, trans_a, trans_b)`` tuples
    of :func:`repro.layouts.gemm_mapping.feasible_triple_structures` — the
    skeleton a delta re-sweep reuses instead of re-running the rank!^3
    feasibility scan.  Shapes come out identical to a fresh enumeration
    because :func:`_shape_from_structure` is the single instantiation path.
    """
    return [
        _shape_from_structure(
            (tuple(m), tuple(n), tuple(k), tuple(b), bool(ta), bool(tb)), env
        )
        for m, n, k, b, ta, tb in structures
    ]


def enumerate_kernel_space(
    op: OpSpec, env: DimEnv, *, cap: int | None, seed: int
) -> KernelSpace:
    """Enumerate a kernel's (possibly subsampled) configs into arrays."""
    layout_choices, vec_choices, warp_choices = kernel_space(op, env)
    sizes = [len(c) for c in layout_choices] + [len(vec_choices), len(warp_choices)]
    total = prod(sizes)
    if cap is None or total <= cap:
        # Row-major unravel reproduces itertools.product order.
        idx = np.stack(
            np.unravel_index(np.arange(total, dtype=np.int64), sizes), axis=1
        )
    else:
        flats = list(kernel_config_indices(sizes, cap=cap, seed=seed))
        idx = np.array(flats, dtype=np.int64)
    return KernelSpace(
        op=op,
        layout_choices=layout_choices,
        vec_choices=vec_choices,
        warp_choices=warp_choices,
        idx=idx,
    )
