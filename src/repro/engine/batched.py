"""Batched roofline evaluation over structure-of-arrays config spaces.

Evaluates ``launch + max(flop / (peak · eff_c), bytes / (bw · eff_m))`` for
an operator's whole configuration space at once.  Per-(op, env) quantities
— flops, io_bytes, einsum parse, GEMM shapes, layout/algorithm factors,
per-operand access efficiencies — are computed exactly once and broadcast.

**Bit-identity contract.** Every per-element operation here is an IEEE-754
correctly-rounded primitive (multiply, divide, add, min/max) applied in the
same association order as the scalar model in
:mod:`repro.hardware.cost_model` / :mod:`repro.hardware.efficiency`; the
transcendental pieces (saturation exponents, stride decay, wave
quantization) are reused from the scalar helpers verbatim and only ever
computed per *distinct key*, never re-derived in a different form.  NumPy
float64 therefore reproduces the scalar Python floats bit for bit, which
tier-1 pins via ``sweep_op`` vs ``sweep_op_reference``.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.hardware.efficiency import (
    contraction_triple_factors,
    operand_access_eff,
)

# Calibrated scalar-model constants (single source of truth lives in
# repro.hardware.params; the engine must track the *active* value at call
# time, never a frozen import — a promoted calibration candidate changes
# them mid-process).
from repro.hardware.params import EfficiencyParams, active_params
from repro.hardware.spec import GPUSpec
from repro.ir.dims import DimEnv

from .space import ContractionSpace, KernelSpace

__all__ = [
    "BatchedTimes",
    "evaluate_contraction",
    "evaluate_kernel",
    "kernel_jitter_units",
]


@dataclass(frozen=True)
class BatchedTimes:
    """Predicted timings of one operator's whole config space."""

    compute_us: np.ndarray
    memory_us: np.ndarray
    launch_us: float
    total_us: np.ndarray

    @property
    def num_configs(self) -> int:
        return int(self.total_us.shape[0])


def evaluate_contraction(
    space: ContractionSpace,
    env: DimEnv,
    gpu: GPUSpec,
    *,
    layout_units: np.ndarray | None = None,
    params: EfficiencyParams | None = None,
) -> BatchedTimes:
    """Roofline-time every contraction config in one vector pass.

    ``layout_units`` optionally supplies the precomputed (size-independent)
    per-triple layout-factor units of
    :func:`~repro.hardware.efficiency.contraction_layout_units` — e.g. from
    a stored payload on the delta re-sweep path; ``None`` computes them
    here.  ``params`` pins the efficiency constants; ``None`` resolves the
    process-active model at call time.
    """
    p = params if params is not None else active_params()
    op = space.op
    pre_tc, pre_fp, wave, div8, algo_factors, _units = contraction_triple_factors(
        op, space.triples, gpu, layout_units=layout_units, params=p
    )

    ti = space.triple_idx
    tc_legal = space.tc_flags & div8[ti]
    # compute = ((BASE · sat) · layout_factor) · algo_factor, then /= wave,
    # then clamped — the exact scalar association order.
    pre = np.where(tc_legal, pre_tc[ti], pre_fp[ti])
    compute_eff = pre * algo_factors[ti, space.algos]
    compute_eff = compute_eff / wave[ti]
    compute_eff = np.maximum(compute_eff, 1e-4)

    flop = op.flops(env)
    nbytes = op.io_bytes(env)
    peak_tc = gpu.peak_flops(tensor_cores=True)
    peak_fp = gpu.peak_flops(tensor_cores=False)
    peak = np.where(tc_legal, peak_tc, peak_fp)
    if flop > 0:
        compute_us = 1e6 * flop / (peak * compute_eff)
    else:  # pragma: no cover - contractions always have flop
        compute_us = np.zeros(space.num_configs)
    # Contraction memory efficiency is a constant: one scalar division,
    # written exactly as CostModel._time_from_eff spells it.
    memory_const = 1e6 * nbytes / (gpu.mem_bandwidth * p.gemm_mem_eff)
    memory_us = np.full(space.num_configs, memory_const)
    launch = gpu.kernel_launch_us
    total_us = launch + np.maximum(compute_us, memory_us)
    return BatchedTimes(
        compute_us=compute_us, memory_us=memory_us, launch_us=launch, total_us=total_us
    )


def kernel_jitter_units(space: KernelSpace) -> np.ndarray:
    """Deterministic per-config jitter units in [0, 1), evaluation order.

    Keyed by the OpConfig identity string exactly as the scalar model keys
    it (kernel configs carry the default algorithm/tensor-core fields).
    The array depends only on the op name, the layout/vector/warp choice
    strings and the index rows — never on dim *sizes* — so a delta
    re-sweep reuses the persisted array instead of re-hashing every key.
    ``crc32 / 2**32`` is exact in float64, so the round trip through a
    stored payload is bit-identical.
    """
    op = space.op
    idx = space.idx
    in_strs = [
        [str(l) for l in choices] for choices in space.layout_choices[: len(op.inputs)]
    ]
    out_strs = [
        [str(l) for l in choices] for choices in space.layout_choices[len(op.inputs):]
    ]
    vec_strs = [str(v) for v in space.vec_choices]
    warp_strs = [str(w) for w in space.warp_choices]
    name = op.name
    crc32 = zlib.crc32
    units = np.empty(space.num_configs)
    for i, row in enumerate(idx.tolist()):
        ins = "/".join(s[row[o]] for o, s in enumerate(in_strs))
        outs = "/".join(s[row[len(in_strs) + o]] for o, s in enumerate(out_strs))
        key = (
            f"kernel|{name}|in:{ins}|out:{outs}|vec:{vec_strs[row[-2]]}"
            f"|warp:{warp_strs[row[-1]]}|algo:-1|tc:1"
        )
        units[i] = crc32(key.encode())
    return units / 2**32


def evaluate_kernel(
    space: KernelSpace,
    env: DimEnv,
    gpu: GPUSpec,
    *,
    units: np.ndarray | None = None,
    params: EfficiencyParams | None = None,
) -> BatchedTimes:
    """Roofline-time every memory-bound kernel config in one vector pass.

    ``units`` optionally supplies the precomputed jitter units of
    :func:`kernel_jitter_units` (e.g. from a stored payload on the delta
    re-sweep path); ``None`` computes them here.  ``params`` pins the
    efficiency constants; ``None`` resolves the process-active model.
    """
    p = params if params is not None else active_params()
    op = space.op
    idx = space.idx
    n = space.num_configs
    n_ops = space.num_operands
    vec_idx = idx[:, n_ops]
    warp_idx = idx[:, n_ops + 1]
    vec_choices = space.vec_choices
    warp_choices = space.warp_choices

    operands = list(op.inputs) + list(op.outputs)
    # Per-operand access efficiency depends only on (layout, vector dim):
    # tabulate once, gather per config.  The weighted accumulation mirrors
    # kernel_efficiency's running ``weighted += nbytes * eff`` order.
    total_bytes = 0
    weighted = np.zeros(n)
    for o, spec in enumerate(operands):
        nb = spec.nbytes(env)
        total_bytes += nb
        table = np.array(
            [
                [operand_access_eff(layout, v, env, p) for v in vec_choices]
                for layout in space.layout_choices[o]
            ]
        )
        weighted = weighted + float(nb) * table[idx[:, o], vec_idx]
    mem = weighted / total_bytes if total_bytes else np.full(n, 0.5)

    if op.ispace.reduction:
        # warp_choices are the reduction dims (all truthy), so the scalar
        # guard `if op.ispace.reduction and config.warp_reduce_dim` reduces
        # to this branch.
        same = np.array(
            [[v == w for w in warp_choices] for v in vec_choices], dtype=bool
        )[vec_idx, warp_idx]
        narrow = np.array(
            [w is not None and env[w] < 32 for w in warp_choices], dtype=bool
        )[warp_idx]
        mem = np.where(same, np.minimum(0.95, mem * p.register_bonus), mem)
        mem = np.where(narrow, mem * p.narrow_warp_penalty, mem)

    if units is None:
        units = kernel_jitter_units(space)
    jitter = 1.0 + p.jitter * (2.0 * units - 1.0)
    mem = np.minimum(0.95, np.maximum(p.strided_floor / 2, mem * jitter))

    flop = op.flops(env)
    nbytes = op.io_bytes(env)
    peak = gpu.peak_flops(tensor_cores=False)
    compute_const = 1e6 * flop / (peak * p.kernel_compute_eff) if flop > 0 else 0.0
    compute_us = np.full(n, compute_const)
    memory_us = 1e6 * nbytes / (gpu.mem_bandwidth * mem)
    launch = gpu.kernel_launch_us
    total_us = launch + np.maximum(compute_us, memory_us)
    return BatchedTimes(
        compute_us=compute_us, memory_us=memory_us, launch_us=launch, total_us=total_us
    )
