"""Process-level sweep memoization (the L1 tier).

Sweeping is deterministic given ``(operator, dim env, GPU, cost-model
version)`` plus the sampling knobs, so repeated evaluations — the same
graph swept by the tuner, the baselines, the configuration selector and
the sensitivity sweeps — can share one result.  Keys hash the full frozen
IR objects (OpSpec, DimEnv, GPUSpec are all frozen dataclasses), so two
structurally identical ops memo-hit even across separately built graphs.

This memo dies with the interpreter; the persistent content-addressed
store of :mod:`repro.engine.store` sits under it as L2.

``COST_MODEL_VERSION`` is part of every key: bumping it (see
:mod:`repro.hardware.cost_model`) invalidates the whole memo, mirroring how
persisted JSON artifacts are rejected on version mismatch.

Memoized :class:`~repro.autotuner.tuner.SweepResult` objects are shared —
treat them as immutable (every in-repo consumer does).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Hashable

from repro.hardware.params import active_cost_model_version
from repro.hardware.spec import GPUSpec
from repro.ir.dims import DimEnv
from repro.ir.operator import OpClass, OpSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.autotuner.tuner import SweepResult

__all__ = [
    "memo_key",
    "memo_get",
    "memo_put",
    "payload_memo_get",
    "payload_memo_put",
    "clear_sweep_memo",
    "sweep_memo_stats",
]

_MEMO: dict[Hashable, "SweepResult"] = {}
#: Digest-keyed raw payloads, for consumers that read payload arrays
#: directly (e.g. the Fig.-4 tensor-core split) rather than SweepResults.
_PAYLOAD_MEMO: dict[str, dict] = {}
_HITS = 0
_MISSES = 0


def memo_key(
    op: OpSpec, env: DimEnv, gpu: GPUSpec, *, cap: int | None, seed: int
) -> Hashable:
    """Cache key for one sweep.

    Contraction sweeps are exhaustive (``cap``/``seed`` never apply), so
    their keys drop the sampling knobs and hit across different caps.
    """
    if op.op_class is OpClass.TENSOR_CONTRACTION:
        knobs: tuple = ("contraction",)
    else:
        knobs = ("kernel", cap, seed)
    # The *served* version, resolved per call: promoting a calibration
    # candidate changes every key, which is the whole-memo invalidation.
    return (active_cost_model_version(), op, env, gpu, knobs)


def memo_get(key: Hashable) -> "SweepResult | None":
    global _HITS, _MISSES
    sweep = _MEMO.get(key)
    if sweep is None:
        _MISSES += 1
    else:
        _HITS += 1
    return sweep


def memo_put(key: Hashable, sweep: "SweepResult") -> None:
    _MEMO[key] = sweep


def payload_memo_get(digest: str) -> dict | None:
    return _PAYLOAD_MEMO.get(digest)


def payload_memo_put(digest: str, payload: dict) -> None:
    _PAYLOAD_MEMO[digest] = payload


def clear_sweep_memo() -> None:
    """Drop all memoized sweeps and payloads (and reset counters)."""
    global _HITS, _MISSES
    _MEMO.clear()
    _PAYLOAD_MEMO.clear()
    _HITS = 0
    _MISSES = 0


def sweep_memo_stats() -> dict[str, int]:
    """Counters for tests and diagnostics."""
    return {"size": len(_MEMO), "hits": _HITS, "misses": _MISSES}
