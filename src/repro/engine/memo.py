"""Process-level sweep memoization.

Sweeping is deterministic given ``(operator, dim env, GPU, cost-model
version)`` plus the sampling knobs, so repeated evaluations — the same
graph swept by the tuner, the baselines, the configuration selector and
the sensitivity sweeps — can share one result.  Keys hash the full frozen
IR objects (OpSpec, DimEnv, GPUSpec are all frozen dataclasses), so two
structurally identical ops memo-hit even across separately built graphs.

``COST_MODEL_VERSION`` is part of every key: bumping it (see
:mod:`repro.hardware.cost_model`) invalidates the whole memo, mirroring how
persisted JSON artifacts are rejected on version mismatch.

Memoized :class:`~repro.autotuner.tuner.SweepResult` objects are shared —
treat them as immutable (every in-repo consumer does).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Hashable

from repro.hardware.cost_model import COST_MODEL_VERSION
from repro.hardware.spec import GPUSpec
from repro.ir.dims import DimEnv
from repro.ir.operator import OpClass, OpSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.autotuner.tuner import SweepResult

__all__ = ["memo_key", "memo_get", "memo_put", "clear_sweep_memo", "sweep_memo_stats"]

_MEMO: dict[Hashable, "SweepResult"] = {}
_HITS = 0
_MISSES = 0


def memo_key(
    op: OpSpec, env: DimEnv, gpu: GPUSpec, *, cap: int | None, seed: int
) -> Hashable:
    """Cache key for one sweep.

    Contraction sweeps are exhaustive (``cap``/``seed`` never apply), so
    their keys drop the sampling knobs and hit across different caps.
    """
    if op.op_class is OpClass.TENSOR_CONTRACTION:
        knobs: tuple = ("contraction",)
    else:
        knobs = ("kernel", cap, seed)
    return (COST_MODEL_VERSION, op, env, gpu, knobs)


def memo_get(key: Hashable) -> "SweepResult | None":
    global _HITS, _MISSES
    sweep = _MEMO.get(key)
    if sweep is None:
        _MISSES += 1
    else:
        _HITS += 1
    return sweep


def memo_put(key: Hashable, sweep: "SweepResult") -> None:
    _MEMO[key] = sweep


def clear_sweep_memo() -> None:
    """Drop all memoized sweeps (and reset hit/miss counters)."""
    global _HITS, _MISSES
    _MEMO.clear()
    _HITS = 0
    _MISSES = 0


def sweep_memo_stats() -> dict[str, int]:
    """Counters for tests and diagnostics."""
    return {"size": len(_MEMO), "hits": _HITS, "misses": _MISSES}
