"""The batched sweep driver: arrays in, lazily materialized sweeps out.

``sweep_op`` evaluates one operator's whole configuration space with the
batched roofline (:mod:`repro.engine.batched`), stable-sorts the totals,
and wraps the result in the ordinary
:class:`~repro.autotuner.tuner.SweepResult` API.  Individual
:class:`~repro.autotuner.tuner.ConfigMeasurement` objects are only built
when a consumer actually touches them — ``sweep.best`` materializes one
object, a violin summary none at all (it reads the sorted time array).

Evaluation is factored through serializable *payloads*
(:mod:`repro.engine.store`): the same arrays flow from a fresh batched
evaluation, from the on-disk L2 store, or back from a scheduler worker
process, and ``sweep_from_payload`` turns any of them into a sweep — so
every path is bit-identical by construction.

Caching is two-tier: the in-process memo (:mod:`repro.engine.memo`, L1)
in front of the persistent content-addressed store
(:mod:`repro.engine.store`, L2, enabled via ``REPRO_SWEEP_STORE`` or
``set_sweep_store``).  ``memo=False`` bypasses both tiers and recomputes
cold — the pinned "serial, store-free engine path".

Results are bit-identical to :func:`repro.autotuner.tuner.sweep_op_reference`
— same measurements, same order — which tier-1 pins.
"""

from __future__ import annotations

import os
from collections.abc import Sequence
from typing import Callable

import numpy as np

from repro import obs
from repro.autotuner.cache import CacheMismatch
from repro.hardware.cost_model import CostModel, KernelTime
from repro.hardware.spec import GPUSpec
from repro.ir.dims import DimEnv
from repro.ir.operator import OpSpec

from .memo import (
    clear_sweep_memo,
    memo_get,
    memo_key,
    memo_put,
    payload_memo_get,
    payload_memo_put,
    sweep_memo_stats,
)
from .store import (
    SweepStore,
    compute_payload,
    compute_payload_delta,
    get_sweep_store,
    space_from_payload,
    structural_sweep_digest,
    sweep_digest,
)

__all__ = [
    "sweep_op",
    "sweep_from_payload",
    "load_or_compute_payload",
    "delta_payload_from_store",
    "delta_enabled",
    "set_delta_enabled",
    "contraction_time_split",
    "clear_sweep_memo",
    "sweep_memo_stats",
]

#: Environment variable gating the delta re-sweep path ("0"/"false" disables).
DELTA_ENV_VAR = "REPRO_DELTA_SWEEP"

_delta_override: bool | None = None


def set_delta_enabled(enabled: bool | None) -> None:
    """Force the delta re-sweep path on/off; ``None`` re-reads the env var."""
    global _delta_override
    _delta_override = enabled


def delta_enabled() -> bool:
    """Whether structural-twin delta re-sweeps are enabled (default: yes)."""
    if _delta_override is not None:
        return _delta_override
    raw = os.environ.get(DELTA_ENV_VAR, "").strip().lower()
    return raw not in ("0", "false", "no", "off")


def delta_payload_from_store(
    op: OpSpec,
    env: DimEnv,
    gpu: GPUSpec,
    *,
    cap: int | None,
    seed: int,
    store: SweepStore | None,
) -> dict | None:
    """Delta-re-sweep from a structural twin in ``store``, or ``None``.

    Probes the store's structural sidecar for a payload that differs from
    this sweep only in dim sizes and re-evaluates its persisted skeleton at
    the new sizes (:func:`compute_payload_delta`) — bit-identical to a cold
    sweep, minus the enumeration work.  Returns ``None`` when the path is
    disabled, no twin exists, or the twin turns out unusable; the caller
    falls back to a cold sweep.  Does **not** save the result: callers
    persist it under the new exact digest themselves.
    """
    if store is None or not delta_enabled():
        return None
    structural = structural_sweep_digest(op, env, gpu, cap=cap, seed=seed)
    base = store.load_structural(structural)
    if base is None:
        return None
    try:
        payload = compute_payload_delta(
            op, env, gpu, cap=cap, seed=seed, base=base, structural=structural
        )
    except CacheMismatch:
        return None
    store.record_delta_hit()
    return payload


class PreSortedMeasurements(Sequence):
    """A lazily materialized, already-sorted measurement sequence.

    Behaves like the plain ``list[ConfigMeasurement]`` the scalar sweep
    builds, but constructs each measurement object on first access.
    ``SweepResult.__post_init__`` re-sorts its measurements by ``total_us``;
    this sequence is constructed in exactly that order, so :meth:`sort` is
    a no-op rather than a forced materialization.
    """

    __slots__ = ("_n", "_build", "_totals", "_items", "_space", "_order")

    def __init__(
        self,
        n: int,
        build: Callable[[int], object],
        sorted_totals: np.ndarray,
        *,
        space=None,
        order: np.ndarray | None = None,
    ) -> None:
        self._n = n
        self._build = build
        self._totals = sorted_totals
        self._items: list[object | None] = [None] * n
        # The enumerated config space and the stable-sort permutation, kept
        # so array consumers (the configsel fast path) can read per-
        # measurement layouts without materializing measurement objects.
        self._space = space
        self._order = order

    def __len__(self) -> int:
        return self._n

    def __getitem__(self, i):
        if isinstance(i, slice):
            return [self[j] for j in range(*i.indices(self._n))]
        if i < 0:
            i += self._n
        if not 0 <= i < self._n:
            raise IndexError(i)
        item = self._items[i]
        if item is None:
            item = self._items[i] = self._build(i)
        return item

    def sort(self, *args, **kwargs) -> None:
        """No-op: the sequence is constructed sorted by ``total_us``."""

    def times_us(self) -> list[float]:
        """Sorted totals without materializing measurement objects."""
        return self._totals.tolist()

    def totals_array(self) -> np.ndarray:
        """Sorted totals as a float64 array (no copy, no materialization)."""
        return self._totals

    def operand_layout_index(self):
        """Per-operand layout vocabularies and per-measurement layout ids.

        Returns ``(vocabs, ids)`` where ``vocabs[s]`` lists the layout
        choices of operand slot ``s`` (inputs then outputs) and ``ids[s]``
        maps each measurement — in sorted order — to its index in
        ``vocabs[s]``.  Derived straight from the enumerated space plus the
        sort permutation, so no measurement objects are built.  ``None``
        when the sequence was constructed without a space.
        """
        if self._space is None or self._order is None:
            return None
        from .space import ContractionSpace

        space, order = self._space, self._order
        if isinstance(space, ContractionSpace):
            ids = space.triple_idx[order]
            vocabs = [
                [t[0] for t in space.triples],
                [t[1] for t in space.triples],
                [t[2] for t in space.triples],
            ]
            return vocabs, [ids, ids, ids]
        vocabs = [list(choices) for choices in space.layout_choices]
        idx = space.idx
        return vocabs, [idx[order, o] for o in range(space.num_operands)]

    def __eq__(self, other) -> bool:
        if isinstance(other, (PreSortedMeasurements, list)):
            return list(self) == list(other)
        return NotImplemented

    __hash__ = None  # mutable cache inside

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        built = sum(1 for x in self._items if x is not None)
        return f"<PreSortedMeasurements n={self._n} materialized={built}>"


def sweep_from_payload(op: OpSpec, payload: dict):
    """Wrap one evaluated payload as a lazily materialized ``SweepResult``.

    The payload's timing arrays are name-free; configurations materialize
    with ``op``'s name, so one (contraction) payload can serve every
    structurally identical operator.
    """
    from repro.autotuner.tuner import ConfigMeasurement, SweepResult

    space = space_from_payload(op, payload)
    order = payload["order"]
    compute_us = payload["compute_us"]
    memory_us = payload["memory_us"]
    launch_us = float(payload["launch_us"])
    sorted_totals = payload["sorted_totals"]

    def build(i: int):
        j = int(order[i])
        return ConfigMeasurement(
            config=space.config_at(j),
            time=KernelTime(
                compute_us=float(compute_us[j]),
                memory_us=float(memory_us[j]),
                launch_us=launch_us,
            ),
        )

    measurements = PreSortedMeasurements(
        len(order), build, sorted_totals, space=space, order=order
    )
    return SweepResult(op=op, measurements=measurements)


def load_or_compute_payload(
    op: OpSpec,
    env: DimEnv,
    gpu: GPUSpec,
    *,
    cap: int | None,
    seed: int,
    store: SweepStore | None = None,
) -> dict:
    """L2 lookup with delta-re-sweep and compute-and-persist fallbacks.

    Resolution order on an exact miss: first try a structural twin
    (:func:`delta_payload_from_store`), then a cold batched evaluation;
    either result is persisted under the exact digest.  A mismatched or
    corrupt store entry (``CacheMismatch``) is recomputed and overwritten,
    never reused.  With no store configured this is a plain batched
    evaluation.
    """
    store = store if store is not None else get_sweep_store()
    if store is None:
        return compute_payload(op, env, gpu, cap=cap, seed=seed)
    digest = sweep_digest(op, env, gpu, cap=cap, seed=seed)
    with obs.span(
        "engine.payload", op=op.name, digest=digest
    ) as payload_span:
        try:
            payload = store.load(digest)
            tier = "l2"
        except CacheMismatch:
            payload = None
        if payload is None:
            payload = delta_payload_from_store(
                op, env, gpu, cap=cap, seed=seed, store=store
            )
            tier = "delta"
            if payload is None:
                payload = compute_payload(op, env, gpu, cap=cap, seed=seed)
                tier = "computed"
            store.save(digest, payload)
        payload_span.set_attr("resolve.tier", tier)
    return payload


def contraction_time_split(
    op: OpSpec,
    env: DimEnv,
    cost: CostModel | None = None,
    *,
    store: SweepStore | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """A contraction sweep's sorted totals, split by requested TC mode.

    Returns ``(tc_totals_us, fp16_totals_us)``, each ascending — the two
    distributions of a Fig.-4 tile.  Served through the L2 store when one
    is active; the payload-layout knowledge (``sorted_totals`` is permuted
    by ``order``, ``tc_flags`` is in evaluation order) stays inside the
    engine.
    """
    cost = cost or CostModel()
    digest = sweep_digest(op, env, cost.gpu, cap=None, seed=0)
    payload = payload_memo_get(digest)
    if payload is None:
        payload = load_or_compute_payload(
            op, env, cost.gpu, cap=None, seed=0, store=store
        )
        payload_memo_put(digest, payload)
    totals = payload["sorted_totals"]
    tc_mask = payload["tc_flags"][payload["order"]]
    return totals[tc_mask], totals[~tc_mask]


def sweep_op(
    op: OpSpec,
    env: DimEnv,
    cost: CostModel | None = None,
    *,
    cap: int | None = 2000,
    seed: int = 0x5EED,
    memo: bool = True,
    store: SweepStore | None = None,
):
    """Batched equivalent of the scalar exhaustive sweep.

    Bit-identical to :func:`repro.autotuner.tuner.sweep_op_reference`.  With
    ``memo=True`` (default) results are shared process-wide (L1) and, when a
    store is active, persisted across processes (L2); ``memo=False``
    bypasses both tiers.  ``store`` overrides the process-active store for
    this call.
    """
    cost = cost or CostModel()
    if not memo:
        return sweep_from_payload(
            op, compute_payload(op, env, cost.gpu, cap=cap, seed=seed)
        )
    key = memo_key(op, env, cost.gpu, cap=cap, seed=seed)
    sweep = memo_get(key)
    if sweep is None:
        payload = load_or_compute_payload(
            op, env, cost.gpu, cap=cap, seed=seed, store=store
        )
        sweep = sweep_from_payload(op, payload)
        memo_put(key, sweep)
    return sweep
