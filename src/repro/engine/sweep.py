"""The batched sweep driver: arrays in, lazily materialized sweeps out.

``sweep_op`` evaluates one operator's whole configuration space with the
batched roofline (:mod:`repro.engine.batched`), stable-sorts the totals,
and wraps the result in the ordinary
:class:`~repro.autotuner.tuner.SweepResult` API.  Individual
:class:`~repro.autotuner.tuner.ConfigMeasurement` objects are only built
when a consumer actually touches them — ``sweep.best`` materializes one
object, a violin summary none at all (it reads the sorted time array).

Results are bit-identical to :func:`repro.autotuner.tuner.sweep_op_reference`
— same measurements, same order — which tier-1 pins.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Callable

import numpy as np

from repro.hardware.cost_model import CostModel, KernelTime
from repro.ir.dims import DimEnv
from repro.ir.graph import DataflowGraph
from repro.ir.operator import OpClass, OpSpec

from .batched import evaluate_contraction, evaluate_kernel
from .memo import clear_sweep_memo, memo_get, memo_key, memo_put, sweep_memo_stats
from .space import enumerate_contraction_space, enumerate_kernel_space

__all__ = [
    "sweep_op",
    "sweep_graph",
    "clear_sweep_memo",
    "sweep_memo_stats",
]


class PreSortedMeasurements(Sequence):
    """A lazily materialized, already-sorted measurement sequence.

    Behaves like the plain ``list[ConfigMeasurement]`` the scalar sweep
    builds, but constructs each measurement object on first access.
    ``SweepResult.__post_init__`` re-sorts its measurements by ``total_us``;
    this sequence is constructed in exactly that order, so :meth:`sort` is
    a no-op rather than a forced materialization.
    """

    __slots__ = ("_n", "_build", "_totals", "_items")

    def __init__(
        self, n: int, build: Callable[[int], object], sorted_totals: np.ndarray
    ) -> None:
        self._n = n
        self._build = build
        self._totals = sorted_totals
        self._items: list[object | None] = [None] * n

    def __len__(self) -> int:
        return self._n

    def __getitem__(self, i):
        if isinstance(i, slice):
            return [self[j] for j in range(*i.indices(self._n))]
        if i < 0:
            i += self._n
        if not 0 <= i < self._n:
            raise IndexError(i)
        item = self._items[i]
        if item is None:
            item = self._items[i] = self._build(i)
        return item

    def sort(self, *args, **kwargs) -> None:
        """No-op: the sequence is constructed sorted by ``total_us``."""

    def times_us(self) -> list[float]:
        """Sorted totals without materializing measurement objects."""
        return self._totals.tolist()

    def __eq__(self, other) -> bool:
        if isinstance(other, (PreSortedMeasurements, list)):
            return list(self) == list(other)
        return NotImplemented

    __hash__ = None  # mutable cache inside

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        built = sum(1 for x in self._items if x is not None)
        return f"<PreSortedMeasurements n={self._n} materialized={built}>"


def _evaluate(op: OpSpec, env: DimEnv, gpu, *, cap: int | None, seed: int):
    """Enumerate + batch-evaluate one op; returns (space, times)."""
    if op.op_class is OpClass.TENSOR_CONTRACTION:
        space = enumerate_contraction_space(op, env)
        times = evaluate_contraction(space, env, gpu)
    else:
        space = enumerate_kernel_space(op, env, cap=cap, seed=seed)
        times = evaluate_kernel(space, env, gpu)
    return space, times


def _build_sweep(op: OpSpec, env: DimEnv, gpu, *, cap: int | None, seed: int):
    from repro.autotuner.tuner import ConfigMeasurement, SweepResult

    space, times = _evaluate(op, env, gpu, cap=cap, seed=seed)
    order = np.argsort(times.total_us, kind="stable")
    sorted_totals = times.total_us[order]
    compute_us = times.compute_us
    memory_us = times.memory_us
    launch_us = times.launch_us

    def build(i: int):
        j = int(order[i])
        return ConfigMeasurement(
            config=space.config_at(j),
            time=KernelTime(
                compute_us=float(compute_us[j]),
                memory_us=float(memory_us[j]),
                launch_us=launch_us,
            ),
        )

    measurements = PreSortedMeasurements(len(order), build, sorted_totals)
    return SweepResult(op=op, measurements=measurements)


def sweep_op(
    op: OpSpec,
    env: DimEnv,
    cost: CostModel | None = None,
    *,
    cap: int | None = 2000,
    seed: int = 0x5EED,
    memo: bool = True,
):
    """Batched equivalent of the scalar exhaustive sweep.

    Bit-identical to :func:`repro.autotuner.tuner.sweep_op_reference`; with
    ``memo=True`` (default) results are shared process-wide, keyed by
    ``(op, env, gpu, COST_MODEL_VERSION)`` plus the sampling knobs.
    """
    cost = cost or CostModel()
    if not memo:
        return _build_sweep(op, env, cost.gpu, cap=cap, seed=seed)
    key = memo_key(op, env, cost.gpu, cap=cap, seed=seed)
    sweep = memo_get(key)
    if sweep is None:
        sweep = _build_sweep(op, env, cost.gpu, cap=cap, seed=seed)
        memo_put(key, sweep)
    return sweep


def sweep_graph(
    graph: DataflowGraph,
    env: DimEnv,
    cost: CostModel | None = None,
    *,
    cap: int | None = 2000,
    seed: int = 0x5EED,
    memo: bool = True,
):
    """Sweep every non-view operator of a graph; keyed by op name."""
    cost = cost or CostModel()
    return {
        op.name: sweep_op(op, env, cost, cap=cap, seed=seed, memo=memo)
        for op in graph.ops
        if not op.is_view
    }
