"""Persistent sweep store: the on-disk L2 under the in-process memo (L1).

The memo in :mod:`repro.engine.memo` dies with the interpreter, so every
process — the CLI, the examples, the nightly benchmark run — used to start
cold.  This module makes sweeps durable: each evaluated sweep is written to
a content-addressed file whose name is a **stable digest** of everything
that determines the result:

``(canonical op signature, the dim sizes the op reads, GPUSpec,
sampling knobs, COST_MODEL_VERSION)``

Python's built-in ``hash`` is salted per process, so the digest is a
SHA-256 over a canonical JSON serialization instead.  Two properties fall
out of the canonicalization:

* **Structural sharing.**  Contraction times depend only on the einsum,
  operand dims and layouts — never on operator or tensor *names* — so the
  contraction digest is name-free and structurally identical contractions
  (``q_proj`` / ``k_proj`` / ``v_proj``, the same GEMM across graphs) share
  one entry.  Memory-bound kernels keep the op name in the digest because
  the efficiency jitter is keyed by ``OpConfig.key()``, which embeds it.
* **Version invalidation.**  ``COST_MODEL_VERSION`` is part of the digest
  *and* embedded in every payload; bumping it (see the rule in
  :mod:`repro.hardware.cost_model`) orphans every stored entry, exactly as
  it flushes the L1 memo and the JSON artifacts of
  :mod:`repro.autotuner.cache`.

Payloads are ``.npz`` files holding the *evaluation-order* timing arrays,
the stable-sort permutation, and the (name-free) layout choice tables
needed to rebuild configurations lazily — binary float64, so a round-trip
is bit-identical to a fresh :func:`~repro.autotuner.tuner.sweep_op_reference`
run.  A mismatched or corrupt entry raises
:class:`~repro.autotuner.cache.CacheMismatch` and is recomputed (and
overwritten), never silently reused.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
from dataclasses import asdict
from functools import lru_cache
from math import prod
from pathlib import Path

import numpy as np

from repro.autotuner.cache import CacheMismatch
from repro.hardware.cost_model import COST_MODEL_VERSION
from repro.hardware.spec import GPUSpec
from repro.ir.dims import DimEnv
from repro.ir.operator import OpClass, OpSpec
from repro.layouts.config import NUM_GEMM_ALGORITHMS
from repro.layouts.configspace import kernel_space
from repro.layouts.layout import Layout

from .batched import evaluate_contraction, evaluate_kernel
from .space import (
    ContractionSpace,
    KernelSpace,
    enumerate_contraction_space,
    enumerate_kernel_space,
)

__all__ = [
    "PAYLOAD_FORMAT",
    "SweepStore",
    "compute_payload",
    "get_sweep_store",
    "set_sweep_store",
    "space_from_payload",
    "sweep_digest",
    "sweep_store_stats",
]

#: Payload layout version; bump when the npz schema changes.
PAYLOAD_FORMAT = 1

#: Environment variable naming the store directory (CLI: ``--sweep-store``).
STORE_ENV_VAR = "REPRO_SWEEP_STORE"

#: Environment variable bounding the store size in bytes (0/unset: unbounded).
MAX_BYTES_ENV_VAR = "REPRO_SWEEP_STORE_MAX_BYTES"


# ---------------------------------------------------------------------------
# Stable digests
# ---------------------------------------------------------------------------

def _tensor_signature(dims: tuple[str, ...], dtype) -> list:
    return [list(dims), dtype.name, dtype.itemsize]


def _op_signature(op: OpSpec, *, include_name: bool) -> dict:
    """Canonical JSON-able form of everything about ``op`` that times read.

    Tensor names, stage, ``kernel_label`` and ``fused_from`` never reach the
    cost model and are excluded; member ops contribute only their flop
    counts, so members are always serialized name-free.
    """
    sig: dict = {
        "class": op.op_class.value,
        "inputs": [_tensor_signature(t.dims, t.dtype) for t in op.inputs],
        "outputs": [_tensor_signature(t.dims, t.dtype) for t in op.outputs],
        "independent": list(op.ispace.independent),
        "reduction": list(op.ispace.reduction),
        "flop_per_point": op.flop_per_point,
        "einsum": op.einsum,
        "is_view": op.is_view,
        "members": [_op_signature(m, include_name=False) for m in op.members],
    }
    if include_name:
        sig["name"] = op.name
    return sig


def _op_dims(op: OpSpec) -> set[str]:
    dims = set(op.ispace.all_dims)
    for t in op.inputs + op.outputs:
        dims.update(t.dims)
    for m in op.members:
        dims.update(_op_dims(m))
    return dims


@lru_cache(maxsize=4096)
def _kernel_space_size(op: OpSpec, env: DimEnv) -> int:
    """Full (uncapped) kernel config-space size, cached per (op, env).

    Digest computation needs only the size to decide whether ``cap``
    binds; caching it avoids re-enumerating the space that
    ``compute_payload`` enumerates anyway.
    """
    layout_choices, vec_choices, warp_choices = kernel_space(op, env)
    sizes = [len(c) for c in layout_choices] + [len(vec_choices), len(warp_choices)]
    return prod(sizes)


def _effective_knobs(op: OpSpec, env: DimEnv, *, cap: int | None, seed: int) -> list:
    """Sampling knobs as they actually bind.

    Contraction sweeps are exhaustive, and a kernel sweep whose full space
    fits under ``cap`` is too — both are keyed cap/seed-free so runs with
    different caps share entries whenever the results coincide.
    """
    if op.op_class is OpClass.TENSOR_CONTRACTION:
        return ["contraction"]
    if cap is None or _kernel_space_size(op, env) <= cap:
        return ["kernel", "exhaustive"]
    return ["kernel", cap, seed]


def canonical_sweep_key(
    op: OpSpec, env: DimEnv, gpu: GPUSpec, *, cap: int | None, seed: int
) -> dict:
    """The canonical (JSON-able) identity of one sweep."""
    include_name = op.op_class is not OpClass.TENSOR_CONTRACTION
    return {
        "format": PAYLOAD_FORMAT,
        "version": COST_MODEL_VERSION,
        "op": _op_signature(op, include_name=include_name),
        "env": sorted((d, env[d]) for d in _op_dims(op)),
        "gpu": asdict(gpu),
        "knobs": _effective_knobs(op, env, cap=cap, seed=seed),
    }


def sweep_digest(
    op: OpSpec, env: DimEnv, gpu: GPUSpec, *, cap: int | None, seed: int
) -> str:
    """Stable content digest of one sweep (process- and session-independent)."""
    key = canonical_sweep_key(op, env, gpu, cap=cap, seed=seed)
    blob = json.dumps(key, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


# ---------------------------------------------------------------------------
# Payloads: the serialized form of one evaluated sweep
# ---------------------------------------------------------------------------

def compute_payload(
    op: OpSpec, env: DimEnv, gpu: GPUSpec, *, cap: int | None, seed: int
) -> dict:
    """Enumerate and batch-evaluate one sweep into its serializable payload.

    The payload carries the evaluation-order timing arrays, the stable-sort
    permutation, and name-free layout choice tables — everything needed to
    rebuild the sweep lazily for *any* structurally identical operator
    without re-running the roofline.
    """
    if op.op_class is OpClass.TENSOR_CONTRACTION:
        space = enumerate_contraction_space(op, env)
        times = evaluate_contraction(space, env, gpu)
        extra = {
            "kind": "contraction",
            "triples": [
                [list(la.dims), list(lb.dims), list(lc.dims)]
                for la, lb, lc, _shape in space.triples
            ],
            "triple_idx": space.triple_idx,
            "tc_flags": space.tc_flags,
            "algos": space.algos,
        }
    else:
        space = enumerate_kernel_space(op, env, cap=cap, seed=seed)
        times = evaluate_kernel(space, env, gpu)
        extra = {
            "kind": "kernel",
            "layout_choices": [
                [list(l.dims) for l in choices] for choices in space.layout_choices
            ],
            "vec_choices": list(space.vec_choices),
            "warp_choices": list(space.warp_choices),
            "idx": space.idx,
        }
    order = np.argsort(times.total_us, kind="stable")
    payload = {
        "format": PAYLOAD_FORMAT,
        "version": COST_MODEL_VERSION,
        "op_name": op.name,
        "launch_us": times.launch_us,
        "compute_us": times.compute_us,
        "memory_us": times.memory_us,
        "order": order,
        "sorted_totals": times.total_us[order],
    }
    payload.update(extra)
    return payload


@lru_cache(maxsize=4096)
def _layout(dims: tuple[str, ...]) -> Layout:
    """Shared frozen Layout instances (payload tables repeat few layouts)."""
    return Layout(dims)


def space_from_payload(op: OpSpec, payload: dict) -> ContractionSpace | KernelSpace:
    """Rebuild the config-space view of a payload for ``op``.

    Configurations materialize with ``op``'s name, which is how one stored
    contraction payload serves every structurally identical operator.  The
    per-triple ``GemmShape`` is not persisted (``config_at`` never reads
    it), so reconstructed contraction triples carry ``None`` there.
    """
    if payload["kind"] == "contraction":
        return ContractionSpace(
            op=op,
            triples=[
                (_layout(tuple(la)), _layout(tuple(lb)), _layout(tuple(lc)), None)
                for la, lb, lc in payload["triples"]
            ],
            triple_idx=payload["triple_idx"],
            tc_flags=payload["tc_flags"],
            algos=payload["algos"],
        )
    return KernelSpace(
        op=op,
        layout_choices=[
            [_layout(tuple(dims)) for dims in choices]
            for choices in payload["layout_choices"]
        ],
        vec_choices=list(payload["vec_choices"]),
        warp_choices=list(payload["warp_choices"]),
        idx=payload["idx"],
    )


_ARRAY_KEYS = ("compute_us", "memory_us", "order", "sorted_totals")
_CONTRACTION_ARRAYS = ("triple_idx", "tc_flags", "algos")


def _index_in_range(idx: np.ndarray, size: int) -> bool:
    return bool(((idx >= 0) & (idx < size)).all())


def _validate_payload(payload: dict, digest: str | None, path: Path | str) -> None:
    """Structural sanity of a deserialized payload; raises CacheMismatch.

    Every index array is bounds-checked against its choice table so a
    corrupted entry surfaces here — never as a silently wrong (or
    end-relative) configuration at measurement-access time.
    """
    where = f"sweep-store entry {path}"
    if payload.get("format") != PAYLOAD_FORMAT:
        raise CacheMismatch(
            f"{where} uses payload format {payload.get('format')!r}, "
            f"not {PAYLOAD_FORMAT!r}"
        )
    version = payload.get("version")
    if version != COST_MODEL_VERSION:
        raise CacheMismatch(
            f"{where} was measured under cost model version {version!r}, but "
            f"this process runs version {COST_MODEL_VERSION!r}; re-sweep "
            f"instead of reusing it"
        )
    if digest is not None and payload.get("digest") != digest:
        raise CacheMismatch(
            f"{where} declares digest {payload.get('digest')!r}, "
            f"expected {digest!r}"
        )
    n = payload["order"].shape[0]
    for key in _ARRAY_KEYS:
        if payload[key].shape[0] != n:
            raise CacheMismatch(f"{where}: array {key!r} has inconsistent length")
    if not _index_in_range(payload["order"], n or 1):
        raise CacheMismatch(f"{where}: sort permutation out of range")
    if payload["kind"] == "contraction":
        for key in _CONTRACTION_ARRAYS:
            if payload[key].shape[0] != n:
                raise CacheMismatch(f"{where}: array {key!r} has inconsistent length")
        if not _index_in_range(payload["triple_idx"], len(payload["triples"])):
            raise CacheMismatch(f"{where}: triple index out of range")
        if not _index_in_range(payload["algos"], NUM_GEMM_ALGORITHMS):
            raise CacheMismatch(f"{where}: algorithm index out of range")
    elif payload["kind"] == "kernel":
        idx = payload["idx"]
        sizes = [len(c) for c in payload["layout_choices"]] + [
            len(payload["vec_choices"]),
            len(payload["warp_choices"]),
        ]
        if idx.shape[0] != n or idx.shape[1] != len(sizes):
            raise CacheMismatch(f"{where}: array 'idx' has inconsistent shape")
        for col, size in enumerate(sizes):
            if not _index_in_range(idx[:, col], size):
                raise CacheMismatch(f"{where}: knob index column {col} out of range")
    else:
        raise CacheMismatch(f"{where}: unknown payload kind {payload['kind']!r}")


# ---------------------------------------------------------------------------
# The on-disk store
# ---------------------------------------------------------------------------

class SweepStore:
    """A directory of content-addressed ``.npz`` sweep payloads.

    ``max_bytes`` bounds the directory size: after every save, the
    oldest-mtime entries are evicted until the total fits.  Loads refresh
    entry mtimes, so eviction order is least-recently-*used* — the same
    policy the nightly CI prune applies on a 14-day horizon, but enforced
    inline so a long-lived daemon cannot grow the store without bound.
    ``None`` (the default) keeps the historical unbounded behavior.

    Counter updates and eviction hold an internal lock: the tuning daemon
    shares one store across its handler threads.
    """

    def __init__(self, root: str | Path, *, max_bytes: int | None = None) -> None:
        # expanduser: tilde paths arrive unexpanded from CI yaml env blocks,
        # .env files and the like — without this the cache lands in ./~ .
        self.root = Path(root).expanduser()
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("max_bytes must be positive (or None for unbounded)")
        self.max_bytes = max_bytes
        self._lock = threading.Lock()  # counters only: held briefly
        self._evict_lock = threading.Lock()  # serializes budget scans
        self.hits = 0
        self.misses = 0
        self.saves = 0
        self.rejected = 0
        self.evictions = 0

    def path_for(self, digest: str) -> Path:
        return self.root / f"{digest}.npz"

    def __contains__(self, digest: str) -> bool:
        return self.path_for(digest).exists()

    def load(self, digest: str) -> dict | None:
        """Deserialize one payload.

        Returns ``None`` on a clean miss.  A present-but-unusable entry
        (corrupt file, wrong cost-model version, wrong digest, inconsistent
        arrays) raises :class:`CacheMismatch` — callers recompute and
        overwrite, never silently reuse.
        """
        path = self.path_for(digest)
        if not path.exists():
            with self._lock:
                self.misses += 1
            return None
        try:
            payload = self._read(path)
            _validate_payload(payload, digest, path)
        except CacheMismatch:
            with self._lock:
                self.rejected += 1
            raise
        except FileNotFoundError:
            # Evicted (or pruned by another process) between the exists()
            # check and the read: a clean miss, not corruption.
            with self._lock:
                self.misses += 1
            return None
        except Exception as exc:
            with self._lock:
                self.rejected += 1
            raise CacheMismatch(f"corrupt sweep-store entry {path}: {exc}") from exc
        with self._lock:
            self.hits += 1
        try:
            # Refresh mtime so age-based pruning (e.g. nightly CI) tracks
            # last *use*, not last write.
            os.utime(path)
        except OSError:  # pragma: no cover - read-only stores are fine
            pass
        return payload

    def save(self, digest: str, payload: dict) -> Path:
        """Atomically persist one payload under its digest.

        The per-config arrays are packed into one float64 and one int64
        matrix (``F``/``I``) so a load costs two array reads instead of
        seven — zip-member overhead dominates warm-hit latency.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(digest)
        floats = np.vstack(
            [payload["compute_us"], payload["memory_us"], payload["sorted_totals"]]
        )
        if payload["kind"] == "contraction":
            ints = np.vstack(
                [
                    payload["order"],
                    payload["triple_idx"],
                    payload["algos"],
                    payload["tc_flags"].astype(np.int64),
                ]
            )
        else:
            ints = np.vstack([payload["order"], payload["idx"].T])
        meta = {
            k: v for k, v in payload.items() if not isinstance(v, np.ndarray)
        }
        meta["digest"] = digest
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                np.savez(fh, meta=json.dumps(meta), F=floats, I=ints)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        with self._lock:
            self.saves += 1
        if self.max_bytes is not None:
            # Own lock: the O(entries) directory scan must not block the
            # counter updates of concurrent loads.
            with self._evict_lock:
                self._evict_over_budget(keep=path)
        return path

    def _evict_over_budget(self, *, keep: Path) -> None:
        """Delete oldest-mtime entries until the store fits ``max_bytes``.

        Runs under ``self._evict_lock``.  The just-written entry is never evicted
        (even when it alone exceeds the budget): the caller is about to use
        it, and evicting it would turn every save into a
        save-evict-recompute loop.  Entries *newer* than it are skipped for
        the same reason — under concurrent saves they are other threads'
        just-written entries.
        """
        if self.max_bytes is None:
            return
        try:
            keep_mtime = keep.stat().st_mtime
        except OSError:  # pragma: no cover - raced with another process
            keep_mtime = float("inf")
        entries: list[tuple[float, int, Path]] = []
        total = 0
        for path in self.root.glob("*.npz"):
            try:
                st = path.stat()
            except OSError:  # pragma: no cover - raced with another process
                continue
            entries.append((st.st_mtime, st.st_size, path))
            total += st.st_size
        if total <= self.max_bytes:
            return
        entries.sort(key=lambda e: (e[0], e[2].name))
        for mtime, size, path in entries:
            if total <= self.max_bytes:
                break
            if path == keep or mtime > keep_mtime:
                continue
            try:
                path.unlink()
            except OSError:  # pragma: no cover - raced with another process
                continue
            total -= size
            with self._lock:
                self.evictions += 1

    @staticmethod
    def _read(path: Path) -> dict:
        with np.load(path, allow_pickle=False) as z:
            payload = dict(json.loads(str(z["meta"][()])))
            floats = z["F"]
            ints = z["I"]
        payload["compute_us"] = floats[0]
        payload["memory_us"] = floats[1]
        payload["sorted_totals"] = floats[2]
        payload["order"] = ints[0]
        if payload.get("kind") == "contraction":
            payload["triple_idx"] = ints[1]
            payload["algos"] = ints[2]
            payload["tc_flags"] = ints[3] != 0
        else:
            payload["idx"] = ints[1:].T
        return payload

    def stats(self) -> dict[str, int]:
        entries = (
            sum(1 for _ in self.root.glob("*.npz")) if self.root.is_dir() else 0
        )
        return {
            "entries": entries,
            "hits": self.hits,
            "misses": self.misses,
            "saves": self.saves,
            "rejected": self.rejected,
            "evictions": self.evictions,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SweepStore({str(self.root)!r})"


# ---------------------------------------------------------------------------
# The process-active store (L2 under the memo)
# ---------------------------------------------------------------------------

_UNSET = object()
_ACTIVE: SweepStore | None | object = _UNSET


def set_sweep_store(store: SweepStore | str | Path | None) -> SweepStore | None:
    """Install (or disable, with ``None``) the process-active L2 store."""
    global _ACTIVE
    if store is not None and not isinstance(store, SweepStore):
        store = SweepStore(store, max_bytes=_env_max_bytes())
    _ACTIVE = store
    return store


def _env_max_bytes() -> int | None:
    """``REPRO_SWEEP_STORE_MAX_BYTES`` as an eviction budget (None: unbounded)."""
    raw = os.environ.get(MAX_BYTES_ENV_VAR, "").strip()
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"{MAX_BYTES_ENV_VAR} must be an integer byte count, got {raw!r}"
        ) from None
    return value if value > 0 else None


def get_sweep_store() -> SweepStore | None:
    """The active L2 store; first call resolves ``REPRO_SWEEP_STORE``
    (and its eviction budget, ``REPRO_SWEEP_STORE_MAX_BYTES``)."""
    global _ACTIVE
    if _ACTIVE is _UNSET:
        path = os.environ.get(STORE_ENV_VAR, "").strip()
        _ACTIVE = SweepStore(path, max_bytes=_env_max_bytes()) if path else None
    return _ACTIVE  # type: ignore[return-value]


def sweep_store_stats() -> dict[str, int]:
    """Counters of the active store (zeros when no store is configured)."""
    store = get_sweep_store()
    if store is None:
        return {
            "entries": 0,
            "hits": 0,
            "misses": 0,
            "saves": 0,
            "rejected": 0,
            "evictions": 0,
        }
    return store.stats()
