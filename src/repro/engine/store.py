"""Persistent sweep store: the on-disk L2 under the in-process memo (L1).

The memo in :mod:`repro.engine.memo` dies with the interpreter, so every
process — the CLI, the examples, the nightly benchmark run — used to start
cold.  This module makes sweeps durable: each evaluated sweep is written to
a content-addressed file whose name is a **stable digest** of everything
that determines the result:

``(canonical op signature, the dim sizes the op reads, GPUSpec,
sampling knobs, COST_MODEL_VERSION)``

Python's built-in ``hash`` is salted per process, so the digest is a
SHA-256 over a canonical JSON serialization instead.  Two properties fall
out of the canonicalization:

* **Structural sharing.**  Contraction times depend only on the einsum,
  operand dims and layouts — never on operator or tensor *names* — so the
  contraction digest is name-free and structurally identical contractions
  (``q_proj`` / ``k_proj`` / ``v_proj``, the same GEMM across graphs) share
  one entry.  Memory-bound kernels keep the op name in the digest because
  the efficiency jitter is keyed by ``OpConfig.key()``, which embeds it.
* **Version invalidation.**  ``COST_MODEL_VERSION`` is part of the digest
  *and* embedded in every payload; bumping it (see the rule in
  :mod:`repro.hardware.cost_model`) orphans every stored entry, exactly as
  it flushes the L1 memo and the JSON artifacts of
  :mod:`repro.autotuner.cache`.

Payloads are ``.npz`` files holding the *evaluation-order* timing arrays,
the stable-sort permutation, and the (name-free) layout choice tables
needed to rebuild configurations lazily — binary float64, so a round-trip
is bit-identical to a fresh :func:`~repro.autotuner.tuner.sweep_op_reference`
run.  A mismatched or corrupt entry raises
:class:`~repro.autotuner.cache.CacheMismatch` and is recomputed (and
overwritten), never silently reused.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
from dataclasses import asdict
from functools import lru_cache
from math import prod
from pathlib import Path

import numpy as np

from repro import obs
from repro.autotuner.cache import CacheMismatch
from repro.hardware.efficiency import contraction_layout_units
from repro.hardware.params import active_cost_model_version
from repro.hardware.spec import GPUSpec
from repro.ir.dims import DimEnv
from repro.ir.operator import OpClass, OpSpec
from repro.layouts.config import NUM_GEMM_ALGORITHMS
from repro.layouts.configspace import kernel_space
from repro.layouts.gemm_mapping import feasible_triple_structures
from repro.layouts.layout import Layout
from repro.ops.einsum_utils import parse_einsum

from .batched import evaluate_contraction, evaluate_kernel, kernel_jitter_units
from .space import (
    ContractionSpace,
    KernelSpace,
    enumerate_contraction_space,
    enumerate_kernel_space,
    shapes_from_structures,
)

__all__ = [
    "PAYLOAD_FORMAT",
    "SweepStore",
    "compute_payload",
    "compute_payload_delta",
    "get_sweep_store",
    "pack_payload_bytes",
    "read_payload_npz",
    "set_sweep_store",
    "space_from_payload",
    "structural_sweep_digest",
    "sweep_digest",
    "sweep_store_stats",
    "write_payload_npz",
]

#: Payload layout version; bump when the npz schema changes.  Format 2 adds
#: the delta-re-sweep skeleton: the structural digest, the persisted GEMM
#: structures of contraction triples, the kernel jitter units, and int32
#: packing of the index matrix.  Format-1 entries are rejected with
#: :class:`CacheMismatch` and recomputed, exactly like a cost-model bump.
PAYLOAD_FORMAT = 2

#: Environment variable naming the store directory (CLI: ``--sweep-store``).
STORE_ENV_VAR = "REPRO_SWEEP_STORE"

#: Environment variable bounding the store size in bytes (0/unset: unbounded).
MAX_BYTES_ENV_VAR = "REPRO_SWEEP_STORE_MAX_BYTES"


# ---------------------------------------------------------------------------
# Stable digests
# ---------------------------------------------------------------------------

def _tensor_signature(dims: tuple[str, ...], dtype) -> list:
    return [list(dims), dtype.name, dtype.itemsize]


def _op_signature(op: OpSpec, *, include_name: bool) -> dict:
    """Canonical JSON-able form of everything about ``op`` that times read.

    Tensor names, stage, ``kernel_label`` and ``fused_from`` never reach the
    cost model and are excluded; member ops contribute only their flop
    counts, so members are always serialized name-free.
    """
    sig: dict = {
        "class": op.op_class.value,
        "inputs": [_tensor_signature(t.dims, t.dtype) for t in op.inputs],
        "outputs": [_tensor_signature(t.dims, t.dtype) for t in op.outputs],
        "independent": list(op.ispace.independent),
        "reduction": list(op.ispace.reduction),
        "flop_per_point": op.flop_per_point,
        "einsum": op.einsum,
        "is_view": op.is_view,
        "members": [_op_signature(m, include_name=False) for m in op.members],
    }
    if include_name:
        sig["name"] = op.name
    return sig


def _op_dims(op: OpSpec) -> set[str]:
    dims = set(op.ispace.all_dims)
    for t in op.inputs + op.outputs:
        dims.update(t.dims)
    for m in op.members:
        dims.update(_op_dims(m))
    return dims


@lru_cache(maxsize=4096)
def _kernel_space_size(op: OpSpec, env: DimEnv) -> int:
    """Full (uncapped) kernel config-space size, cached per (op, env).

    Digest computation needs only the size to decide whether ``cap``
    binds; caching it avoids re-enumerating the space that
    ``compute_payload`` enumerates anyway.
    """
    layout_choices, vec_choices, warp_choices = kernel_space(op, env)
    sizes = [len(c) for c in layout_choices] + [len(vec_choices), len(warp_choices)]
    return prod(sizes)


def _effective_knobs(op: OpSpec, env: DimEnv, *, cap: int | None, seed: int) -> list:
    """Sampling knobs as they actually bind.

    Contraction sweeps are exhaustive, and a kernel sweep whose full space
    fits under ``cap`` is too — both are keyed cap/seed-free so runs with
    different caps share entries whenever the results coincide.
    """
    if op.op_class is OpClass.TENSOR_CONTRACTION:
        return ["contraction"]
    if cap is None or _kernel_space_size(op, env) <= cap:
        return ["kernel", "exhaustive"]
    return ["kernel", cap, seed]


def canonical_sweep_key(
    op: OpSpec, env: DimEnv, gpu: GPUSpec, *, cap: int | None, seed: int
) -> dict:
    """The canonical (JSON-able) identity of one sweep."""
    include_name = op.op_class is not OpClass.TENSOR_CONTRACTION
    return {
        "format": PAYLOAD_FORMAT,
        "version": active_cost_model_version(),
        "op": _op_signature(op, include_name=include_name),
        "env": sorted((d, env[d]) for d in _op_dims(op)),
        "gpu": asdict(gpu),
        "knobs": _effective_knobs(op, env, cap=cap, seed=seed),
    }


def sweep_digest(
    op: OpSpec, env: DimEnv, gpu: GPUSpec, *, cap: int | None, seed: int
) -> str:
    """Stable content digest of one sweep (process- and session-independent)."""
    key = canonical_sweep_key(op, env, gpu, cap=cap, seed=seed)
    blob = json.dumps(key, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def canonical_structural_key(
    op: OpSpec, env: DimEnv, gpu: GPUSpec, *, cap: int | None, seed: int
) -> dict:
    """The exact sweep key with dim *sizes* abstracted away.

    Two sweeps share a structural key iff they differ only in the sizes
    bound to the op's dims — same op signature, GPU and effective sampling
    knobs.  Everything that shapes the enumerated config space (layout
    choices, feasibility masks, sampled index rows, jitter keys) is a
    function of this key alone, which is what makes the delta re-sweep
    sound: on a structural hit only the size-dependent arrays (flops,
    bytes, times) need recomputing.  The knobs are structural too:
    whether ``cap`` binds depends on the choice-list lengths, never on
    sizes.
    """
    key = canonical_sweep_key(op, env, gpu, cap=cap, seed=seed)
    key["env"] = sorted(_op_dims(op))  # names only; sizes abstracted
    key["structural"] = True
    return key


def structural_sweep_digest(
    op: OpSpec, env: DimEnv, gpu: GPUSpec, *, cap: int | None, seed: int
) -> str:
    """Digest of :func:`canonical_structural_key` (the delta-re-sweep key)."""
    key = canonical_structural_key(op, env, gpu, cap=cap, seed=seed)
    blob = json.dumps(key, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


# ---------------------------------------------------------------------------
# Payloads: the serialized form of one evaluated sweep
# ---------------------------------------------------------------------------

def _contraction_structures(op: OpSpec) -> list[list]:
    """JSON-able GEMM structures of a contraction, enumeration order.

    One entry per feasible layout triple: the size-independent
    ``(m_group, n_group, k_group, batch_group, trans_a, trans_b)`` of the
    mapping.  Reads the cached feasibility scan
    (:func:`feasible_triple_structures`), which is the same generator the
    enumeration itself consumes — so index ``i`` here describes
    ``triples[i]`` of the enumerated space.
    """
    feasible = feasible_triple_structures(
        parse_einsum(op.einsum),
        op.inputs[0].dims,
        op.inputs[1].dims,
        op.outputs[0].dims,
    )
    return [
        [list(m), list(n), list(k), list(b), bool(ta), bool(tb)]
        for _la, _lb, _lc, (m, n, k, b, ta, tb) in feasible
    ]


def _finish_payload(op: OpSpec, times, extra: dict, structural: str) -> dict:
    """Sort and package evaluated times into the serializable payload form."""
    order = np.argsort(times.total_us, kind="stable")
    payload = {
        "format": PAYLOAD_FORMAT,
        "version": active_cost_model_version(),
        "op_name": op.name,
        "structural": structural,
        "launch_us": times.launch_us,
        "compute_us": times.compute_us,
        "memory_us": times.memory_us,
        "order": order,
        "sorted_totals": times.total_us[order],
    }
    payload.update(extra)
    return payload


def compute_payload(
    op: OpSpec, env: DimEnv, gpu: GPUSpec, *, cap: int | None, seed: int
) -> dict:
    """Enumerate and batch-evaluate one sweep into its serializable payload.

    The payload carries the evaluation-order timing arrays, the stable-sort
    permutation, and name-free layout choice tables — everything needed to
    rebuild the sweep lazily for *any* structurally identical operator
    without re-running the roofline.  Format 2 also persists the
    size-independent skeleton (GEMM structures, kernel jitter units, the
    structural digest) so a later sweep of the same op at *different* dim
    sizes can delta-re-sweep instead of starting cold.
    """
    structural = structural_sweep_digest(op, env, gpu, cap=cap, seed=seed)
    if op.op_class is OpClass.TENSOR_CONTRACTION:
        space = enumerate_contraction_space(op, env)
        layout_units = contraction_layout_units(op, space.triples)
        times = evaluate_contraction(space, env, gpu, layout_units=layout_units)
        extra = {
            "kind": "contraction",
            "triples": [
                [list(la.dims), list(lb.dims), list(lc.dims)]
                for la, lb, lc, _shape in space.triples
            ],
            "structures": _contraction_structures(op),
            "triple_idx": space.triple_idx,
            "tc_flags": space.tc_flags,
            "algos": space.algos,
            "layout_units": layout_units,
        }
    else:
        space = enumerate_kernel_space(op, env, cap=cap, seed=seed)
        units = kernel_jitter_units(space)
        times = evaluate_kernel(space, env, gpu, units=units)
        extra = {
            "kind": "kernel",
            "layout_choices": [
                [list(l.dims) for l in choices] for choices in space.layout_choices
            ],
            "vec_choices": list(space.vec_choices),
            "warp_choices": list(space.warp_choices),
            "idx": space.idx,
            "units": units,
        }
    return _finish_payload(op, times, extra, structural)


def compute_payload_delta(
    op: OpSpec,
    env: DimEnv,
    gpu: GPUSpec,
    *,
    cap: int | None,
    seed: int,
    base: dict,
    structural: str | None = None,
) -> dict:
    """Re-evaluate a structural twin's skeleton at new dim sizes.

    ``base`` is a stored payload whose structural digest matches this
    sweep's (same op signature, GPU and knobs — only dim sizes differ).
    The enumerated space is rebuilt from the persisted skeleton — layout
    tables, index rows, GEMM structures, jitter units — and only the
    size-dependent arrays (flops, bytes, times, sort) are recomputed, so
    the result is bit-identical to a cold :func:`compute_payload` while
    skipping the feasibility scan, the sampling loop and the jitter
    hashing.  Raises :class:`CacheMismatch` when ``base`` is not actually
    a usable twin (wrong kind, wrong structural digest, missing skeleton);
    callers fall back to a cold sweep.  ``structural`` optionally passes
    the already-computed structural digest of this sweep.
    """
    if structural is None:
        structural = structural_sweep_digest(op, env, gpu, cap=cap, seed=seed)
    if base.get("structural") != structural:
        raise CacheMismatch(
            f"delta base declares structural digest {base.get('structural')!r}, "
            f"expected {structural!r}"
        )
    if op.op_class is OpClass.TENSOR_CONTRACTION:
        if base.get("kind") != "contraction":
            raise CacheMismatch("delta base is not a contraction payload")
        structures = base.get("structures")
        if structures is None or len(structures) != len(base["triples"]):
            raise CacheMismatch("delta base lacks usable GEMM structures")
        layout_units = base.get("layout_units")
        if layout_units is None or layout_units.shape[0] != len(base["triples"]):
            raise CacheMismatch("delta base lacks usable layout units")
        shapes = shapes_from_structures(structures, env)
        space = ContractionSpace(
            op=op,
            triples=[
                (_layout(tuple(la)), _layout(tuple(lb)), _layout(tuple(lc)), shape)
                for (la, lb, lc), shape in zip(base["triples"], shapes)
            ],
            triple_idx=base["triple_idx"],
            tc_flags=base["tc_flags"],
            algos=base["algos"],
        )
        times = evaluate_contraction(space, env, gpu, layout_units=layout_units)
        extra = {
            "kind": "contraction",
            "triples": base["triples"],
            "structures": structures,
            "triple_idx": base["triple_idx"],
            "tc_flags": base["tc_flags"],
            "algos": base["algos"],
            "layout_units": layout_units,
        }
    else:
        if base.get("kind") != "kernel":
            raise CacheMismatch("delta base is not a kernel payload")
        units = base.get("units")
        if units is None or units.shape[0] != base["order"].shape[0]:
            raise CacheMismatch("delta base lacks usable jitter units")
        space = space_from_payload(op, base)
        times = evaluate_kernel(space, env, gpu, units=units)
        extra = {
            "kind": "kernel",
            "layout_choices": base["layout_choices"],
            "vec_choices": base["vec_choices"],
            "warp_choices": base["warp_choices"],
            "idx": base["idx"],
            "units": units,
        }
    return _finish_payload(op, times, extra, structural)


@lru_cache(maxsize=4096)
def _layout(dims: tuple[str, ...]) -> Layout:
    """Shared frozen Layout instances (payload tables repeat few layouts)."""
    return Layout(dims)


def space_from_payload(op: OpSpec, payload: dict) -> ContractionSpace | KernelSpace:
    """Rebuild the config-space view of a payload for ``op``.

    Configurations materialize with ``op``'s name, which is how one stored
    contraction payload serves every structurally identical operator.  The
    per-triple ``GemmShape`` is not persisted (``config_at`` never reads
    it), so reconstructed contraction triples carry ``None`` there.
    """
    if payload["kind"] == "contraction":
        return ContractionSpace(
            op=op,
            triples=[
                (_layout(tuple(la)), _layout(tuple(lb)), _layout(tuple(lc)), None)
                for la, lb, lc in payload["triples"]
            ],
            triple_idx=payload["triple_idx"],
            tc_flags=payload["tc_flags"],
            algos=payload["algos"],
        )
    return KernelSpace(
        op=op,
        layout_choices=[
            [_layout(tuple(dims)) for dims in choices]
            for choices in payload["layout_choices"]
        ],
        vec_choices=list(payload["vec_choices"]),
        warp_choices=list(payload["warp_choices"]),
        idx=payload["idx"],
    )


_ARRAY_KEYS = ("compute_us", "memory_us", "order", "sorted_totals")
_CONTRACTION_ARRAYS = ("triple_idx", "tc_flags", "algos")


def _index_in_range(idx: np.ndarray, size: int) -> bool:
    return bool(((idx >= 0) & (idx < size)).all())


def _validate_payload(
    payload: dict, digest: str | None, path: Path | str, *, skeleton_only: bool = False
) -> None:
    """Structural sanity of a deserialized payload; raises CacheMismatch.

    Every index array is bounds-checked against its choice table so a
    corrupted entry surfaces here — never as a silently wrong (or
    end-relative) configuration at measurement-access time.
    ``skeleton_only`` validates a payload read without its time matrix
    (see :func:`read_payload_npz`): all skeleton checks still run, the
    time-array ones are skipped.
    """
    where = f"sweep-store entry {path}"
    if payload.get("format") != PAYLOAD_FORMAT:
        raise CacheMismatch(
            f"{where} uses payload format {payload.get('format')!r}, "
            f"not {PAYLOAD_FORMAT!r}"
        )
    version = payload.get("version")
    served = active_cost_model_version()
    if version != served:
        raise CacheMismatch(
            f"{where} was measured under cost model version {version!r}, but "
            f"this process serves version {served!r}; re-sweep "
            f"instead of reusing it"
        )
    if digest is not None and payload.get("digest") != digest:
        raise CacheMismatch(
            f"{where} declares digest {payload.get('digest')!r}, "
            f"expected {digest!r}"
        )
    if not isinstance(payload.get("structural"), str) or not payload["structural"]:
        raise CacheMismatch(f"{where} carries no structural digest")
    n = payload["order"].shape[0]
    for key in _ARRAY_KEYS if not skeleton_only else ("order",):
        if payload[key].shape[0] != n:
            raise CacheMismatch(f"{where}: array {key!r} has inconsistent length")
    if not _index_in_range(payload["order"], n or 1):
        raise CacheMismatch(f"{where}: sort permutation out of range")
    if payload["kind"] == "contraction":
        for key in _CONTRACTION_ARRAYS:
            if payload[key].shape[0] != n:
                raise CacheMismatch(f"{where}: array {key!r} has inconsistent length")
        if not _index_in_range(payload["triple_idx"], len(payload["triples"])):
            raise CacheMismatch(f"{where}: triple index out of range")
        if not _index_in_range(payload["algos"], NUM_GEMM_ALGORITHMS):
            raise CacheMismatch(f"{where}: algorithm index out of range")
        structures = payload.get("structures")
        if not isinstance(structures, list) or len(structures) != len(
            payload["triples"]
        ):
            raise CacheMismatch(f"{where}: GEMM structures inconsistent with triples")
        lu = payload.get("layout_units")
        t = len(payload["triples"])
        if (
            not isinstance(lu, np.ndarray)
            or lu.shape != (t,)
            or (t and not bool(((lu >= 0.0) & (lu < 1.0)).all()))
        ):
            raise CacheMismatch(f"{where}: layout units missing or out of range")
    elif payload["kind"] == "kernel":
        idx = payload["idx"]
        sizes = [len(c) for c in payload["layout_choices"]] + [
            len(payload["vec_choices"]),
            len(payload["warp_choices"]),
        ]
        if idx.shape[0] != n or idx.shape[1] != len(sizes):
            raise CacheMismatch(f"{where}: array 'idx' has inconsistent shape")
        for col, size in enumerate(sizes):
            if not _index_in_range(idx[:, col], size):
                raise CacheMismatch(f"{where}: knob index column {col} out of range")
        units = payload.get("units")
        if (
            not isinstance(units, np.ndarray)
            or units.shape != (n,)
            or (n and not bool(((units >= 0.0) & (units < 1.0)).all()))
        ):
            raise CacheMismatch(f"{where}: jitter units missing or out of range")
    else:
        raise CacheMismatch(f"{where}: unknown payload kind {payload['kind']!r}")


# ---------------------------------------------------------------------------
# The npz serialization (shared by the store and the packed wire path)
# ---------------------------------------------------------------------------

def write_payload_npz(fh, digest: str, payload: dict) -> None:
    """Serialize one payload to an open binary file in the store's format.

    Three array members: the per-config time matrix ``F`` (float64 —
    bit-exactness), the index matrix ``I``, and the size-independent
    skeleton floats ``T`` (layout-factor units per triple for contractions,
    jitter units per config for kernels).  Keeping the skeleton out of
    ``F`` lets a structural (delta-re-sweep) load skip the time matrix
    entirely — the base sweep's times are dead weight there.  ``I`` is
    stored int32 when its values fit (they are indices into small choice
    tables, so they always do in practice): half the bytes on disk and on
    the packed wire, widened back to int64 on read.
    """
    floats = np.vstack(
        [payload["compute_us"], payload["memory_us"], payload["sorted_totals"]]
    )
    if payload["kind"] == "contraction":
        ints = np.vstack(
            [
                payload["order"],
                payload["triple_idx"],
                payload["algos"],
                payload["tc_flags"].astype(np.int64),
            ]
        )
        skeleton = payload["layout_units"]
    else:
        ints = np.vstack([payload["order"], payload["idx"].T])
        skeleton = payload["units"]
    if ints.size == 0 or (
        ints.min() >= np.iinfo(np.int32).min and ints.max() <= np.iinfo(np.int32).max
    ):
        ints = ints.astype(np.int32)
    meta = {k: v for k, v in payload.items() if not isinstance(v, np.ndarray)}
    meta["digest"] = digest
    np.savez(fh, meta=json.dumps(meta), F=floats, I=ints, T=skeleton)


def read_payload_npz(source, *, skeleton_only: bool = False) -> dict:
    """Deserialize one payload from a path or binary file-like object.

    Inverse of :func:`write_payload_npz`; also how a client decodes the
    packed ``/v1/sweep`` response (the wire bytes *are* the stored file).
    ``skeleton_only`` skips the time matrix — a delta re-sweep discards the
    base sweep's times, and ``F`` is the largest member of the file — so
    the returned payload lacks ``compute_us``/``memory_us``/
    ``sorted_totals`` and must not be served as a sweep.
    """
    with np.load(source, allow_pickle=False) as z:
        payload = dict(json.loads(str(z["meta"][()])))
        ints = z["I"].astype(np.int64)
        skeleton = z["T"] if "T" in z.files else None
        if not skeleton_only:
            floats = z["F"]
            payload["compute_us"] = floats[0]
            payload["memory_us"] = floats[1]
            payload["sorted_totals"] = floats[2]
    payload["order"] = ints[0]
    if payload.get("kind") == "contraction":
        payload["triple_idx"] = ints[1]
        payload["algos"] = ints[2]
        payload["tc_flags"] = ints[3] != 0
        if skeleton is not None:
            payload["layout_units"] = skeleton
    else:
        payload["idx"] = ints[1:].T
        if skeleton is not None:
            payload["units"] = skeleton
    return payload


def pack_payload_bytes(digest: str, payload: dict) -> bytes:
    """One payload as in-memory npz bytes (the packed wire fallback when
    the response cannot be streamed straight from a store file)."""
    import io

    buf = io.BytesIO()
    write_payload_npz(buf, digest, payload)
    return buf.getvalue()


# ---------------------------------------------------------------------------
# The on-disk store
# ---------------------------------------------------------------------------

class SweepStore:
    """A directory of content-addressed ``.npz`` sweep payloads.

    ``max_bytes`` bounds the directory size: after every save, the
    oldest-mtime entries are evicted until the total fits.  Loads refresh
    entry mtimes, so eviction order is least-recently-*used* — the same
    policy the nightly CI prune applies on a 14-day horizon, but enforced
    inline so a long-lived daemon cannot grow the store without bound.
    ``None`` (the default) keeps the historical unbounded behavior.

    Counter updates and eviction hold an internal lock: the tuning daemon
    shares one store across its handler threads.

    A sidecar JSON map (``structural.json``) indexes structural digests to
    the exact digest most recently saved under each, so a delta-re-sweep
    lookup never scans the directory.  The index is maintained on every
    save and eviction; a stale entry (its npz pruned externally) is
    self-healing — dropped on the first failed lookup.
    """

    #: Sidecar file mapping structural digest -> exact digest of a twin.
    INDEX_NAME = "structural.json"

    def __init__(self, root: str | Path, *, max_bytes: int | None = None) -> None:
        # expanduser: tilde paths arrive unexpanded from CI yaml env blocks,
        # .env files and the like — without this the cache lands in ./~ .
        self.root = Path(root).expanduser()
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("max_bytes must be positive (or None for unbounded)")
        self.max_bytes = max_bytes
        self._lock = threading.Lock()  # counters only: held briefly
        self._evict_lock = threading.Lock()  # serializes budget scans
        self._index_lock = threading.Lock()  # guards the structural index
        self._index: dict[str, str] | None = None  # lazily loaded sidecar
        self.hits = 0
        self.misses = 0
        self.saves = 0
        self.rejected = 0
        self.evictions = 0
        self.delta_hits = 0

    def path_for(self, digest: str) -> Path:
        return self.root / f"{digest}.npz"

    @property
    def index_path(self) -> Path:
        return self.root / self.INDEX_NAME

    def __contains__(self, digest: str) -> bool:
        return self.path_for(digest).exists()

    def load(self, digest: str) -> dict | None:
        """Deserialize one payload.

        Returns ``None`` on a clean miss.  A present-but-unusable entry
        (corrupt file, wrong cost-model version, wrong digest, inconsistent
        arrays) raises :class:`CacheMismatch` — callers recompute and
        overwrite, never silently reuse.
        """
        path = self.path_for(digest)
        if not path.exists():
            with self._lock:
                self.misses += 1
            obs.add_event("store.miss", digest=digest)
            return None
        try:
            payload = self._read(path)
            _validate_payload(payload, digest, path)
        except CacheMismatch:
            with self._lock:
                self.rejected += 1
            obs.add_event("store.mismatch", digest=digest)
            raise
        except FileNotFoundError:
            # Evicted (or pruned by another process) between the exists()
            # check and the read: a clean miss, not corruption.
            with self._lock:
                self.misses += 1
            obs.add_event("store.miss", digest=digest)
            return None
        except Exception as exc:
            with self._lock:
                self.rejected += 1
            obs.add_event("store.mismatch", digest=digest)
            raise CacheMismatch(f"corrupt sweep-store entry {path}: {exc}") from exc
        with self._lock:
            self.hits += 1
        obs.add_event("store.hit", digest=digest)
        try:
            # Refresh mtime so age-based pruning (e.g. nightly CI) tracks
            # last *use*, not last write.
            os.utime(path)
        except OSError:  # pragma: no cover - read-only stores are fine
            pass
        return payload

    def save(self, digest: str, payload: dict) -> Path:
        """Atomically persist one payload under its digest.

        Serialization lives in :func:`write_payload_npz`; this adds the
        atomic tmp-then-replace dance, counters, the structural sidecar
        update and budget eviction.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(digest)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                write_payload_npz(fh, digest, payload)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        with self._lock:
            self.saves += 1
        structural = payload.get("structural")
        if isinstance(structural, str) and structural:
            with self._index_lock:
                index = self._load_index_locked()
                if index.get(structural) != digest:
                    index[structural] = digest
                    self._persist_index_locked(index)
        if self.max_bytes is not None:
            # Own lock: the O(entries) directory scan must not block the
            # counter updates of concurrent loads.
            with self._evict_lock:
                self._evict_over_budget(keep=path)
        return path

    # -- structural sidecar index ------------------------------------------

    def _load_index_locked(self) -> dict[str, str]:
        """The structural map; lazily read.  Caller holds ``_index_lock``."""
        if self._index is None:
            try:
                raw = json.loads(self.index_path.read_text())
                # A corrupt or foreign file degrades to an empty map — the
                # index is a pure accelerator, npz entries stay canonical.
                self._index = {
                    k: v
                    for k, v in raw.items()
                    if isinstance(k, str) and isinstance(v, str)
                } if isinstance(raw, dict) else {}
            except (OSError, ValueError):
                self._index = {}
        return self._index

    def _persist_index_locked(self, index: dict[str, str]) -> None:
        """Atomically rewrite the sidecar.  Caller holds ``_index_lock``.

        Last-writer-wins across processes: a clobbered mapping merely
        points a structural digest at a different (equally valid) twin,
        and a stale one self-heals in :meth:`load_structural`.
        """
        try:
            fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as fh:
                    json.dump(index, fh, sort_keys=True)
                os.replace(tmp, self.index_path)
            except BaseException:
                if os.path.exists(tmp):
                    os.unlink(tmp)
                raise
        except OSError:  # pragma: no cover - read-only stores are fine
            pass

    def _drop_index_entries(self, exact_digests: set[str]) -> None:
        """Drop sidecar entries pointing at the given exact digests."""
        if not exact_digests:
            return
        with self._index_lock:
            index = self._load_index_locked()
            stale = [k for k, v in index.items() if v in exact_digests]
            if stale:
                for k in stale:
                    del index[k]
                self._persist_index_locked(index)

    def load_structural(self, structural: str) -> dict | None:
        """A validated skeleton payload twin to ``structural``, or None.

        Read in skeleton-only mode: the base sweep's *times* are dead
        weight for a delta re-sweep (they are recomputed at the new dim
        sizes), so the time matrix is never deserialized and the returned
        payload must only feed :func:`compute_payload_delta`.  Any failure
        — missing index entry, pruned npz, corrupt or version-mismatched
        payload, structural-digest mismatch — drops the sidecar entry and
        returns ``None``; the caller falls back to a cold sweep.
        Deliberately does not touch hits/misses: those count exact lookups,
        and a structural probe always follows an exact miss.
        """
        with self._index_lock:
            exact = self._load_index_locked().get(structural)
        if exact is None:
            return None
        path = self.path_for(exact)
        try:
            payload = read_payload_npz(path, skeleton_only=True)
            _validate_payload(payload, exact, path, skeleton_only=True)
            if payload.get("structural") != structural:
                raise CacheMismatch(
                    f"sidecar entry {structural[:12]} points at {path} whose "
                    f"structural digest differs"
                )
        except Exception:
            self._drop_index_entries({exact})
            return None
        try:
            os.utime(path)
        except OSError:  # pragma: no cover - read-only stores are fine
            pass
        return payload

    def record_delta_hit(self) -> None:
        """Count one successful delta re-sweep served from this store."""
        with self._lock:
            self.delta_hits += 1

    def _evict_over_budget(self, *, keep: Path) -> None:
        """Delete oldest-mtime entries until the store fits ``max_bytes``.

        Runs under ``self._evict_lock``.  The just-written entry is never evicted
        (even when it alone exceeds the budget): the caller is about to use
        it, and evicting it would turn every save into a
        save-evict-recompute loop.  Entries *newer* than it are skipped for
        the same reason — under concurrent saves they are other threads'
        just-written entries.
        """
        if self.max_bytes is None:
            return
        try:
            keep_mtime = keep.stat().st_mtime
        except OSError:  # pragma: no cover - raced with another process
            keep_mtime = float("inf")
        entries: list[tuple[float, int, Path]] = []
        total = 0
        for path in self.root.glob("*.npz"):
            try:
                st = path.stat()
            except OSError:  # pragma: no cover - raced with another process
                continue
            entries.append((st.st_mtime, st.st_size, path))
            total += st.st_size
        if total <= self.max_bytes:
            return
        entries.sort(key=lambda e: (e[0], e[2].name))
        evicted: set[str] = set()
        for mtime, size, path in entries:
            if total <= self.max_bytes:
                break
            if path == keep or mtime > keep_mtime:
                continue
            try:
                path.unlink()
            except OSError:  # pragma: no cover - raced with another process
                continue
            total -= size
            evicted.add(path.stem)
            with self._lock:
                self.evictions += 1
            obs.add_event("store.evict", digest=path.stem)
        # Evicting an npz also drops its structural sidecar entry, so a
        # structural lookup never dereferences a digest known to be gone.
        self._drop_index_entries(evicted)

    @staticmethod
    def _read(path: Path) -> dict:
        return read_payload_npz(path)

    def stats(self) -> dict[str, int]:
        entries = (
            sum(1 for _ in self.root.glob("*.npz")) if self.root.is_dir() else 0
        )
        return {
            "entries": entries,
            "hits": self.hits,
            "misses": self.misses,
            "saves": self.saves,
            "rejected": self.rejected,
            "evictions": self.evictions,
            "delta_hits": self.delta_hits,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SweepStore({str(self.root)!r})"


# ---------------------------------------------------------------------------
# The process-active store (L2 under the memo)
# ---------------------------------------------------------------------------

_UNSET = object()
_ACTIVE: SweepStore | None | object = _UNSET


def set_sweep_store(store: SweepStore | str | Path | None) -> SweepStore | None:
    """Install (or disable, with ``None``) the process-active L2 store."""
    global _ACTIVE
    if store is not None and not isinstance(store, SweepStore):
        store = SweepStore(store, max_bytes=_env_max_bytes())
    _ACTIVE = store
    return store


def _env_max_bytes() -> int | None:
    """``REPRO_SWEEP_STORE_MAX_BYTES`` as an eviction budget (None: unbounded)."""
    raw = os.environ.get(MAX_BYTES_ENV_VAR, "").strip()
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"{MAX_BYTES_ENV_VAR} must be an integer byte count, got {raw!r}"
        ) from None
    return value if value > 0 else None


def get_sweep_store() -> SweepStore | None:
    """The active L2 store; first call resolves ``REPRO_SWEEP_STORE``
    (and its eviction budget, ``REPRO_SWEEP_STORE_MAX_BYTES``)."""
    global _ACTIVE
    if _ACTIVE is _UNSET:
        path = os.environ.get(STORE_ENV_VAR, "").strip()
        _ACTIVE = SweepStore(path, max_bytes=_env_max_bytes()) if path else None
    return _ACTIVE  # type: ignore[return-value]


def sweep_store_stats() -> dict[str, int]:
    """Counters of the active store (zeros when no store is configured)."""
    store = get_sweep_store()
    if store is None:
        return {
            "entries": 0,
            "hits": 0,
            "misses": 0,
            "saves": 0,
            "rejected": 0,
            "evictions": 0,
            "delta_hits": 0,
        }
    return store.stats()
