"""Vectorized sweep engine: batched roofline evaluation of config spaces.

The paper's recipe (Sec. V) exhaustively measures every feasible
configuration of every operator; that sweep is the hot path behind the
violin plots, the configuration-selection graph, the framework baselines
and the sensitivity analyses.  This subsystem replaces the per-config
scalar loop with a batched pipeline:

1. :mod:`repro.engine.space` enumerates a config space once into
   structure-of-arrays form (layout indices, vector/warp dims, algorithm,
   tensor-core flags) using the exact enumeration order of
   :mod:`repro.layouts.configspace`;
2. :mod:`repro.engine.batched` evaluates the roofline formula
   ``launch + max(flop/(peak·eff_c), bytes/(bw·eff_m))`` over NumPy arrays,
   hoisting all per-(op, env) work out of the loop while staying
   **bit-identical** to the scalar cost model (tier-1 pins
   ``sweep_op`` == ``sweep_op_reference``);
3. :mod:`repro.engine.sweep` stable-sorts the totals, materializes
   ``ConfigMeasurement`` objects lazily, and caches whole sweeps in two
   tiers: the process-level memo (:mod:`repro.engine.memo`, L1) over a
   persistent content-addressed store (:mod:`repro.engine.store`, L2,
   enabled with ``REPRO_SWEEP_STORE`` / ``--sweep-store``), both keyed by
   ``COST_MODEL_VERSION``;
4. :mod:`repro.engine.scheduler` sweeps whole graphs: structurally
   identical operators are deduplicated up front and cold sweeps fan out
   over a process pool (``jobs`` / ``REPRO_JOBS``), merging byte-for-byte
   equal to the serial path.

All sweep consumers (`repro.autotuner.tuner.sweep_op` / ``sweep_graph``)
route through here; the scalar reference stays available as
``repro.autotuner.tuner.sweep_op_reference``.
"""

from .memo import clear_sweep_memo, memo_key, sweep_memo_stats
from .space import (
    ContractionSpace,
    KernelSpace,
    enumerate_contraction_space,
    enumerate_kernel_space,
)
from .batched import BatchedTimes, evaluate_contraction, evaluate_kernel
from .store import (
    SweepStore,
    compute_payload,
    compute_payload_delta,
    get_sweep_store,
    pack_payload_bytes,
    read_payload_npz,
    set_sweep_store,
    structural_sweep_digest,
    sweep_digest,
    sweep_store_stats,
    write_payload_npz,
)
from .scheduler import resolve_jobs, set_default_jobs, sweep_graph
from .sweep import (
    PreSortedMeasurements,
    contraction_time_split,
    delta_enabled,
    delta_payload_from_store,
    load_or_compute_payload,
    set_delta_enabled,
    sweep_from_payload,
    sweep_op,
)

__all__ = [
    "BatchedTimes",
    "ContractionSpace",
    "KernelSpace",
    "PreSortedMeasurements",
    "SweepStore",
    "clear_sweep_memo",
    "compute_payload",
    "compute_payload_delta",
    "contraction_time_split",
    "delta_enabled",
    "delta_payload_from_store",
    "enumerate_contraction_space",
    "enumerate_kernel_space",
    "evaluate_contraction",
    "evaluate_kernel",
    "get_sweep_store",
    "load_or_compute_payload",
    "memo_key",
    "pack_payload_bytes",
    "read_payload_npz",
    "resolve_jobs",
    "set_default_jobs",
    "set_delta_enabled",
    "set_sweep_store",
    "structural_sweep_digest",
    "sweep_digest",
    "sweep_from_payload",
    "sweep_graph",
    "sweep_memo_stats",
    "sweep_op",
    "sweep_store_stats",
]
