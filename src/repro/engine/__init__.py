"""Vectorized sweep engine: batched roofline evaluation of config spaces.

The paper's recipe (Sec. V) exhaustively measures every feasible
configuration of every operator; that sweep is the hot path behind the
violin plots, the configuration-selection graph, the framework baselines
and the sensitivity analyses.  This subsystem replaces the per-config
scalar loop with a batched pipeline:

1. :mod:`repro.engine.space` enumerates a config space once into
   structure-of-arrays form (layout indices, vector/warp dims, algorithm,
   tensor-core flags) using the exact enumeration order of
   :mod:`repro.layouts.configspace`;
2. :mod:`repro.engine.batched` evaluates the roofline formula
   ``launch + max(flop/(peak·eff_c), bytes/(bw·eff_m))`` over NumPy arrays,
   hoisting all per-(op, env) work out of the loop while staying
   **bit-identical** to the scalar cost model (tier-1 pins
   ``sweep_op`` == ``sweep_op_reference``);
3. :mod:`repro.engine.sweep` stable-sorts the totals, materializes
   ``ConfigMeasurement`` objects lazily, and memoizes whole sweeps
   process-wide keyed by ``(op, env, gpu, COST_MODEL_VERSION)``
   (:mod:`repro.engine.memo`).

All sweep consumers (`repro.autotuner.tuner.sweep_op` / ``sweep_graph``)
route through here; the scalar reference stays available as
``repro.autotuner.tuner.sweep_op_reference``.
"""

from .memo import clear_sweep_memo, memo_key, sweep_memo_stats
from .space import (
    ContractionSpace,
    KernelSpace,
    enumerate_contraction_space,
    enumerate_kernel_space,
)
from .batched import BatchedTimes, evaluate_contraction, evaluate_kernel
from .sweep import PreSortedMeasurements, sweep_graph, sweep_op

__all__ = [
    "BatchedTimes",
    "ContractionSpace",
    "KernelSpace",
    "PreSortedMeasurements",
    "clear_sweep_memo",
    "enumerate_contraction_space",
    "enumerate_kernel_space",
    "evaluate_contraction",
    "evaluate_kernel",
    "memo_key",
    "sweep_graph",
    "sweep_memo_stats",
    "sweep_op",
]
