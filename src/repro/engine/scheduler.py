"""Whole-graph sweep scheduling: dedup, two-tier cache, process fan-out.

``sweep_graph`` is the single entry point every whole-graph consumer (the
tuner/violins, the framework baselines, the configuration selector, the
figure and sensitivity sweeps) routes through.  For each non-view operator
it resolves, in order:

1. **L1** — the in-process memo (:mod:`repro.engine.memo`);
2. **dedup** — operators with the same content digest
   (:func:`repro.engine.store.sweep_digest`) are evaluated once.
   Contraction digests are name-free, so structurally identical GEMMs
   (``q_proj``/``k_proj``/``v_proj``, N stacked encoder layers) pay for a
   single sweep;
3. **L2** — the persistent store, when one is active;
4. **cold evaluation** — remaining digests are batch-evaluated, fanned out
   over a ``ProcessPoolExecutor`` when ``jobs > 1``.

Workers return serializable payloads (the same form the store persists),
and the parent merges them in graph order, so the result is byte-for-byte
equal to the serial path no matter the job count — ``jobs`` changes
wall-clock, never results.  ``jobs=None`` defers to ``set_default_jobs``
(the CLI's ``--jobs``) and then the ``REPRO_JOBS`` environment variable;
``jobs <= 0`` means one worker per CPU.
"""

from __future__ import annotations

import os
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool

from repro import obs
from repro.autotuner.cache import CacheMismatch
from repro.hardware.cost_model import CostModel
from repro.hardware.spec import GPUSpec
from repro.ir.dims import DimEnv
from repro.ir.graph import DataflowGraph
from repro.ir.operator import OpClass, OpSpec

from .memo import memo_get, memo_key, memo_put
from .store import SweepStore, compute_payload, get_sweep_store, sweep_digest
from .sweep import delta_payload_from_store, sweep_from_payload, sweep_op

__all__ = [
    "DISABLE_STORE",
    "graph_sweep_jobs",
    "resolve_jobs",
    "set_default_jobs",
    "sweep_graph",
]

#: Environment variable giving the default worker count (CLI: ``--jobs``).
JOBS_ENV_VAR = "REPRO_JOBS"

#: Sentinel for ``sweep_graph(store=...)``: run store-free even when a
#: process-wide store is active (``store=None`` means "use the active one").
DISABLE_STORE = object()

_DEFAULT_JOBS: int | None = None


def set_default_jobs(jobs: int | None) -> None:
    """Set the process-wide default worker count (``None`` re-enables
    ``REPRO_JOBS`` / serial resolution)."""
    global _DEFAULT_JOBS
    _DEFAULT_JOBS = jobs


def resolve_jobs(jobs: int | None = None) -> int:
    """Resolve an effective worker count.

    Order: explicit argument, :func:`set_default_jobs`, ``REPRO_JOBS``,
    serial.  Zero or negative means one worker per CPU.
    """
    if jobs is None:
        jobs = _DEFAULT_JOBS
    if jobs is None:
        raw = os.environ.get(JOBS_ENV_VAR, "").strip()
        if raw:
            try:
                jobs = int(raw)
            except ValueError:
                raise ValueError(
                    f"{JOBS_ENV_VAR} must be an integer, got {raw!r}"
                ) from None
        else:
            jobs = 1
    jobs = int(jobs)
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return jobs


def _payload_job(args: tuple) -> tuple[dict, list | None]:
    """Worker entry point: evaluate one sweep into its payload.

    ``ctx`` is the parent's serialized trace context: ``None`` means the
    parent isn't tracing and this is the zero-overhead path; a string (a
    ``traceparent`` header value, possibly empty) means the job runs under
    a private tracer whose finished spans — the job span plus everything
    the engine opens beneath it — ship back with the payload for the
    parent to ingest.  Contextvars don't cross process boundaries; this
    explicit re-parenting is how pool workers join the request's tree.
    """
    op, env, gpu, cap, seed, ctx = args
    if ctx is None:
        return compute_payload(op, env, gpu, cap=cap, seed=seed), None
    from repro.obs import trace as _trace

    tracer = _trace.Tracer()
    # Install as the process tracer for the job's duration so nested
    # instrumentation (sweep/store spans and events) lands in the private
    # ring and ships back too; pool workers are reused, so restore.
    previous = _trace.get_tracer()
    _trace._TRACER = tracer
    try:
        with tracer.span(
            "engine.sweep_job", parent=ctx or None, op=op.name
        ):
            payload = compute_payload(op, env, gpu, cap=cap, seed=seed)
    finally:
        _trace._TRACER = previous
    return payload, tracer.finished()


#: Estimated total configs below which a process pool costs more than it
#: saves (pool startup + pickling ≈ hundreds of ms; evaluation runs ≈
#: 7 µs/config, so this is roughly two seconds of serial work).
_MIN_PARALLEL_CONFIGS = 200_000


def _estimated_configs(op: OpSpec, env: DimEnv, cap: int | None) -> int:
    """Cheap size estimate of one op's sweep (drives the pool threshold).

    Uses the cached structural feasibility scan for contractions and the
    cached full-space size for kernels; under the fork start method the
    warmed caches are inherited by the workers, so nothing is recomputed.
    """
    from repro.layouts.config import NUM_GEMM_ALGORITHMS
    from repro.layouts.gemm_mapping import feasible_triple_structures
    from repro.ops.einsum_utils import parse_einsum

    from .store import _kernel_space_size

    if op.op_class is OpClass.TENSOR_CONTRACTION:
        triples = feasible_triple_structures(
            parse_einsum(op.einsum),
            op.inputs[0].dims,
            op.inputs[1].dims,
            op.outputs[0].dims,
        )
        return len(triples) * 2 * NUM_GEMM_ALGORITHMS
    size = _kernel_space_size(op, env)
    return size if cap is None else min(size, cap)


def _compute_payloads(
    ops: list[OpSpec],
    env: DimEnv,
    gpu: GPUSpec,
    *,
    cap: int | None,
    seed: int,
    jobs: int,
) -> list[dict]:
    """Evaluate payloads for ``ops``, in order, optionally in parallel.

    The pool only spins up when the estimated cold work amortizes its
    startup cost — tiny sweeps are faster serial even at ``jobs > 1``.
    """
    if (
        jobs > 1
        and len(ops) > 1
        and sum(_estimated_configs(op, env, cap) for op in ops)
        >= _MIN_PARALLEL_CONFIGS
    ):
        # Serialize the ambient trace context for the workers (None when
        # tracing is off — the workers' zero-overhead path).
        ctx = (
            (obs.current_traceparent() or "")
            if obs.tracing_enabled()
            else None
        )
        args = [(op, env, gpu, cap, seed, ctx) for op in ops]
        try:
            with ProcessPoolExecutor(max_workers=min(jobs, len(ops))) as pool:
                outcomes = list(pool.map(_payload_job, args))
        except (OSError, BrokenProcessPool) as exc:
            # Sandboxes without working process pools degrade to serial;
            # results are identical either way.
            warnings.warn(
                f"sweep scheduler: process pool unavailable ({exc}); "
                "falling back to serial evaluation",
                RuntimeWarning,
                stacklevel=3,
            )
        else:
            shipped = [s for _, spans in outcomes if spans for s in spans]
            if shipped:
                obs.get_tracer().ingest(shipped)
            return [payload for payload, _ in outcomes]
    payloads = []
    for op in ops:
        with obs.span("engine.sweep_job", op=op.name):
            payloads.append(compute_payload(op, env, gpu, cap=cap, seed=seed))
    return payloads


def graph_sweep_jobs(
    graph: DataflowGraph,
    env: DimEnv,
    gpu: GPUSpec,
    *,
    cap: int | None = 2000,
    seed: int = 0x5EED,
) -> tuple[dict[str, str], dict[str, OpSpec]]:
    """Decompose a graph into its deduplicated per-op sweep jobs.

    Returns ``(op_digests, representatives)``: every non-view operator
    mapped to its store digest, and one representative operator per
    distinct digest (in graph order).  This is the same digest-level
    dedup :func:`sweep_graph` performs before evaluating — exposed so the
    fleet coordinator can shard exactly the jobs a local run would have
    evaluated, one wire request per *distinct* digest.
    """
    op_digests: dict[str, str] = {}
    representatives: dict[str, OpSpec] = {}
    for op in graph.ops:
        if op.is_view:
            continue
        digest = sweep_digest(op, env, gpu, cap=cap, seed=seed)
        op_digests[op.name] = digest
        representatives.setdefault(digest, op)
    return op_digests, representatives


def sweep_graph(
    graph: DataflowGraph,
    env: DimEnv,
    cost: CostModel | None = None,
    *,
    cap: int | None = 2000,
    seed: int = 0x5EED,
    memo: bool = True,
    jobs: int | None = None,
    store: SweepStore | None | object = None,
):
    """Sweep every non-view operator of a graph; keyed by op name.

    Byte-for-byte equal to sweeping each operator serially with
    :func:`repro.engine.sweep.sweep_op`, but deduplicated, two-tier cached
    and (for ``jobs > 1``) evaluated in parallel worker processes.
    ``memo=False`` bypasses every cache *and* the dedup/fan-out machinery —
    the pinned serial, store-free path.  ``store=None`` resolves the
    process-active store; pass :data:`DISABLE_STORE` to force a store-free
    run even when one is active.
    """
    cost = cost or CostModel()
    ops = [op for op in graph.ops if not op.is_view]
    if not memo:
        return {
            op.name: sweep_op(op, env, cost, cap=cap, seed=seed, memo=False)
            for op in ops
        }
    gpu = cost.gpu
    if store is DISABLE_STORE:
        store = None
    elif store is None:
        store = get_sweep_store()

    with obs.span("engine.sweep_graph", ops=len(ops)) as graph_span:
        results: dict[str, object] = {}
        groups: dict[str, list[tuple[OpSpec, object]]] = {}  # digest -> members
        for op in ops:
            key = memo_key(op, env, gpu, cap=cap, seed=seed)
            sweep = memo_get(key)
            if sweep is not None:
                results[op.name] = sweep
                continue
            digest = sweep_digest(op, env, gpu, cap=cap, seed=seed)
            groups.setdefault(digest, []).append((op, key))

        payloads: dict[str, dict] = {}
        cold: list[str] = []
        delta_hits = 0
        for digest, members in groups.items():
            payload = None
            if store is not None:
                try:
                    payload = store.load(digest)
                except CacheMismatch:
                    payload = None  # recompute and overwrite below
                if payload is None:
                    # Exact miss: a structural twin (same op, different dim
                    # sizes) still saves the enumeration — delta re-sweep and
                    # persist under the exact digest before cold fan-out.
                    rep = members[0][0]
                    payload = delta_payload_from_store(
                        rep, env, gpu, cap=cap, seed=seed, store=store
                    )
                    if payload is not None:
                        delta_hits += 1
                        store.save(digest, payload)
            if payload is None:
                cold.append(digest)
            else:
                payloads[digest] = payload

        if cold:
            representatives = [groups[d][0][0] for d in cold]
            computed = _compute_payloads(
                representatives, env, gpu, cap=cap, seed=seed,
                jobs=resolve_jobs(jobs),
            )
            for digest, payload in zip(cold, computed):
                payloads[digest] = payload
                if store is not None:
                    store.save(digest, payload)

        graph_span.set_attr("memo_hits", len(results))
        graph_span.set_attr("distinct_digests", len(groups))
        graph_span.set_attr(
            "l2_hits", len(groups) - len(cold) - delta_hits
        )
        graph_span.set_attr("delta_hits", delta_hits)
        graph_span.set_attr("cold", len(cold))

        for digest, members in groups.items():
            payload = payloads[digest]
            for op, key in members:
                sweep = sweep_from_payload(op, payload)
                memo_put(key, sweep)
                results[op.name] = sweep
        return {op.name: results[op.name] for op in ops}
