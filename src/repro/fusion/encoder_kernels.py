"""The paper's named fused kernels for the BERT encoder layer (Sec. IV-A).

Applying ``apply_paper_fusion`` to the unfused encoder graph produces
exactly the kernel set of Table III:

========  ==========================================================
kernel    constituent operators
========  ==========================================================
AIB       attention input biases (q, k, v)
SM        scaled softmax + attention dropout
BDRLN1    attention output bias + dropout + residual + layernorm-1
BRD       FFN bias + ReLU + dropout
BDRLN2    FFN output bias + dropout + residual + layernorm-2
BSB       backward layernorm-2 scale & bias
BLNRD2    backward layernorm-2 dX + dropout dX (saves the skip grad)
BDRB      backward bias dW + dropout dX + ReLU dX + bias dW
EBSB      backward residual add + layernorm-1 scale & bias
BLNRD1    backward layernorm-1 dX + dropout dX
BAOB      backward attention output bias dW
BS        backward attention dropout + scaled softmax
BAIB      backward attention input bias dWs
BEI       backward encoder-input residual add
========  ==========================================================

Single-member "groups" (BSB, BAOB, BEI) only re-label the operator — they
are already one kernel; the label keeps Table III's row grouping intact.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.ir.dims import DimEnv
from repro.ir.graph import DataflowGraph

from .fuser import fuse_ops

__all__ = ["PAPER_KERNELS", "apply_paper_fusion", "FUSED_KERNEL_NAMES"]


@dataclass(frozen=True)
class KernelGroup:
    label: str
    members: tuple[str, ...]
    #: Sibling groups merge dataflow-independent ops; their pairwise
    #: iteration-space check is waived (sizes still match; Sec. IV's
    #: "fewer kernel launches by merging iteration spaces" case).
    sibling: bool = False


#: Order matters: forward kernels first, then backward in Table III order.
PAPER_KERNELS: tuple[KernelGroup, ...] = (
    KernelGroup("AIB", ("input_bias_q", "input_bias_k", "input_bias_v"), sibling=True),
    KernelGroup("SM", ("softmax", "attn_dropout")),
    KernelGroup("BDRLN1", ("attn_out_bias", "attn_resid_dropout", "residual1", "ln1")),
    KernelGroup("BRD", ("linear1_bias", "relu", "ffn_dropout")),
    KernelGroup("BDRLN2", ("linear2_bias", "ffn_resid_dropout", "residual2", "ln2")),
    KernelGroup("BSB", ("ln2_dw",)),
    KernelGroup("BLNRD2", ("ln2_dx", "ffn_resid_dropout_dx")),
    KernelGroup(
        "BDRB",
        ("linear2_bias_dw", "ffn_dropout_dx", "relu_dx", "linear1_bias_dw"),
        sibling=True,
    ),
    KernelGroup("EBSB", ("residual2_grad", "ln1_dw")),
    KernelGroup("BLNRD1", ("ln1_dx", "attn_resid_dropout_dx")),
    KernelGroup("BAOB", ("attn_out_bias_dw",)),
    KernelGroup("BS", ("attn_dropout_dx", "softmax_dx")),
    KernelGroup(
        "BAIB", ("input_bias_q_dw", "input_bias_k_dw", "input_bias_v_dw"), sibling=True
    ),
    KernelGroup("BEI", ("encoder_input_grad",)),
)

FUSED_KERNEL_NAMES = tuple(k.label for k in PAPER_KERNELS)


def apply_paper_fusion(graph: DataflowGraph, env: DimEnv) -> DataflowGraph:
    """Fuse the unfused encoder/MHA graph into the paper's kernel set.

    Groups whose member operators are absent from the graph (e.g. backward
    kernels on a forward-only graph, encoder kernels on an MHA graph) are
    skipped, so the same routine serves every graph variant.
    """
    g = graph
    for group in PAPER_KERNELS:
        present = [m for m in group.members if m in g]
        if not present:
            continue
        if len(present) == 1:
            # Re-label only: already a single kernel.
            op = g.op(present[0])
            relabeled = replace(op, kernel_label=group.label)
            g = g.replace_ops([present[0]], [relabeled])
            continue
        g = fuse_ops(
            g,
            present,
            group.label,
            env=env,
            kernel_label=group.label,
            check_compatibility=not group.sibling,
        )
    g.validate()
    return g
