"""The fusion transformation: merge operator groups into single kernels.

``fuse_ops`` contracts a set of graph nodes into one fused operator whose

* **flop** is the sum over members (same computation, one kernel);
* **IO** omits interior edges — tensors produced and consumed entirely
  within the group stay in registers/shared memory (this is the mechanism
  behind the paper's 22.91% data-movement reduction);
* **iteration space** is the merged space (drives the fused kernel's
  configuration space in Step 3).

``fuse_greedy`` implements the paper's "we attempt to fuse maximally":
repeatedly fuse fusible producer/consumer pairs of non-contraction
operators until no pattern matches.
"""

from __future__ import annotations

from collections import deque

from repro.ir.dims import DimEnv
from repro.ir.graph import DataflowGraph, GraphValidationError
from repro.ir.iteration_space import IterationSpace
from repro.ir.operator import OpClass, OpSpec
from repro.ir.tensor import TensorSpec

from .rules import can_fuse_pair

__all__ = ["fuse_ops", "fuse_greedy", "FusionError"]


class FusionError(ValueError):
    """Raised when a requested fusion is illegal."""


def _merged_space(members: list[OpSpec]) -> IterationSpace:
    independent: list[str] = []
    reduction: list[str] = []
    for op in members:
        for d in op.ispace.independent:
            if d not in independent and d not in reduction:
                independent.append(d)
        for d in op.ispace.reduction:
            if d not in reduction:
                reduction.append(d)
                if d in independent:
                    independent.remove(d)
    return IterationSpace(tuple(independent), tuple(reduction))


def _check_no_outside_path(graph: DataflowGraph, group: set[str]) -> None:
    """Contraction legality: no dataflow path between members leaves the group.

    If some outside op is reachable from a member and a member is reachable
    from that outside op, contracting the group would create a cycle.
    """
    consumers_of_op: dict[str, set[str]] = {}
    for op in graph.ops:
        succ: set[str] = set()
        for t in op.outputs:
            succ.update(graph.consumers_of(t.name))
        consumers_of_op[op.name] = succ

    # Ops reachable from the group via at least one outside hop.
    reachable: set[str] = set()
    frontier = deque()
    for name in group:
        for nxt in consumers_of_op[name]:
            if nxt not in group:
                frontier.append(nxt)
    while frontier:
        cur = frontier.popleft()
        if cur in reachable:
            continue
        reachable.add(cur)
        for nxt in consumers_of_op[cur]:
            if nxt not in reachable:
                frontier.append(nxt)
    # If any reachable outside op feeds a group member, contraction is illegal.
    for name in group:
        op = graph.op(name)
        for t in op.inputs:
            producer = graph.producer_of(t.name)
            if producer is not None and producer in reachable:
                raise FusionError(
                    f"fusing {sorted(group)} would create a cycle through "
                    f"{producer!r}"
                )


def fuse_ops(
    graph: DataflowGraph,
    member_names: list[str],
    fused_name: str,
    *,
    env: DimEnv,
    kernel_label: str = "",
    check_compatibility: bool = True,
) -> DataflowGraph:
    """Return a new graph with ``member_names`` replaced by one fused operator."""
    if len(member_names) < 1:
        raise FusionError("fusion group must be non-empty")
    members = [graph.op(n) for n in member_names]
    for op in members:
        if op.op_class is OpClass.TENSOR_CONTRACTION:
            raise FusionError(f"cannot fuse contraction {op.name!r} (Sec. IV-C)")
        if op.is_view:
            raise FusionError(f"cannot fuse view {op.name!r}")
    group = set(member_names)
    _check_no_outside_path(graph, group)

    if check_compatibility and len(members) > 1:
        # Every member must be size-compatible with at least one other member
        # (the group is built from pairwise-fusible pieces).
        for op in members:
            if not any(
                other is not op and can_fuse_pair(op, other, env) for other in members
            ):
                raise FusionError(
                    f"{op.name!r} is iteration-space incompatible with the rest "
                    f"of group {sorted(group)}"
                )

    produced: dict[str, TensorSpec] = {}
    for op in members:
        for t in op.outputs:
            produced[t.name] = t

    inputs: list[TensorSpec] = []
    seen_in: set[str] = set()
    for op in members:
        for t in op.inputs:
            if t.name in produced or t.name in seen_in:
                continue
            seen_in.add(t.name)
            inputs.append(t)

    outputs: list[TensorSpec] = []
    for op in members:
        for t in op.outputs:
            consumers = set(graph.consumers_of(t.name))
            if consumers and consumers <= group:
                continue  # interior edge: never touches main memory
            outputs.append(t)

    op_class = (
        OpClass.STAT_NORMALIZATION
        if any(m.op_class is OpClass.STAT_NORMALIZATION for m in members)
        else OpClass.ELEMENTWISE
    )
    stage = members[0].stage
    fused = OpSpec(
        name=fused_name,
        op_class=op_class,
        inputs=tuple(inputs),
        outputs=tuple(outputs),
        ispace=_merged_space(members),
        flop_per_point=0.0,  # unused: flop comes from members
        stage=stage,
        fused_from=tuple(member_names),
        kernel_label=kernel_label or fused_name,
        members=tuple(members),
    )
    return _rebuild(graph, group, fused)


def _rebuild(graph: DataflowGraph, removed: set[str], fused: OpSpec) -> DataflowGraph:
    """Rebuild the graph with the group contracted, in a valid topo order."""
    remaining = [op for op in graph.ops if op.name not in removed]
    new_ops = remaining + [fused]

    interior = {
        t.name
        for name in removed
        for t in graph.op(name).outputs
        if t.name not in {o.name for o in fused.outputs}
    }

    produced_by: dict[str, str] = {}
    for op in new_ops:
        for t in op.outputs:
            produced_by[t.name] = op.name
    ops_by_name = {op.name: op for op in new_ops}

    # Kahn's algorithm, stable w.r.t. the original order.
    order_index = {op.name: i for i, op in enumerate(graph.ops)}
    order_index[fused.name] = min(order_index[n] for n in removed)
    indeg: dict[str, int] = {op.name: 0 for op in new_ops}
    dependents: dict[str, list[str]] = {op.name: [] for op in new_ops}
    for op in new_ops:
        deps = set()
        for t in op.inputs:
            if t.name in interior:
                raise GraphValidationError(
                    f"{op.name!r} reads interior tensor {t.name!r} eliminated by fusion"
                )
            p = produced_by.get(t.name)
            if p is not None and p != op.name:
                deps.add(p)
        indeg[op.name] = len(deps)
        for p in deps:
            dependents[p].append(op.name)

    ready = sorted((n for n, d in indeg.items() if d == 0), key=order_index.__getitem__)
    out = DataflowGraph(graph.name)
    for t in graph.graph_inputs:
        out.add_input(t)
    scheduled = 0
    while ready:
        name = ready.pop(0)
        out.add_op(ops_by_name[name])
        scheduled += 1
        became_ready = []
        for nxt in dependents[name]:
            indeg[nxt] -= 1
            if indeg[nxt] == 0:
                became_ready.append(nxt)
        ready.extend(became_ready)
        ready.sort(key=order_index.__getitem__)
    if scheduled != len(new_ops):
        raise GraphValidationError("fusion produced a cyclic graph")
    out.validate()
    return out


def fuse_greedy(graph: DataflowGraph, env: DimEnv) -> DataflowGraph:
    """Fuse maximally: repeatedly merge fusible producer/consumer pairs.

    This is the generic Step-2 pass.  It discovers the chain-shaped kernels
    (SM, BRD, BDRLN, BLNRD, BS, ...) automatically; the curated grouping in
    :mod:`repro.fusion.encoder_kernels` additionally applies the sibling
    merges (AIB, BAIB, BDRB, ...) with the paper's kernel names.
    """
    g = graph
    counter = 0
    changed = True
    while changed:
        changed = False
        for op in g.ops:
            if op.op_class is OpClass.TENSOR_CONTRACTION or op.is_view:
                continue
            for t in op.outputs:
                for consumer_name in g.consumers_of(t.name):
                    consumer = g.op(consumer_name)
                    if not can_fuse_pair(op, consumer, env):
                        continue
                    try:
                        fused_name = f"fused{counter}_{op.name}+{consumer.name}"
                        g = fuse_ops(
                            g, [op.name, consumer.name], fused_name, env=env
                        )
                        counter += 1
                        changed = True
                        break
                    except FusionError:
                        continue
                if changed:
                    break
            if changed:
                break
    return g
