"""Fusion legality rules (Sec. IV).

The paper detects fusion opportunities by iteration-space analysis: "Two
operators can be fused if their iteration space implementations are
compatible: They are either the same or the only difference is that one
operator performs a reduction.  The order and *size* of dimensions ... must
match."  Sizes — not names — decide compatibility, so the key-sequence dim
``k`` and query-sequence dim ``j`` (equal in self-attention) are fusible.

Four structural patterns arise in the encoder graph (Fig. 3):

1. **sibling** — independent operators over size-identical iteration spaces
   reading from related data (fewer kernel launches; e.g. AIB, BAIB);
2. **map chain** — a producer/consumer chain of element-wise maps
   (e.g. bias → dropout → residual inside BDRLN);
3. **reduction-then-map** — a reduction whose result feeds a map over the
   same space (two-loop implementation; e.g. softmax inside SM, layernorm
   inside BDRLN);
4. **map-with-reduction** — an element-wise map fused with a reduction over
   the same points (e.g. the residual add + layernorm-dW pair in EBSB).
"""

from __future__ import annotations

from enum import Enum

from repro.ir.dims import DimEnv
from repro.ir.iteration_space import IterationSpace
from repro.ir.operator import OpClass, OpSpec

__all__ = ["FusionPattern", "shapes_compatible", "can_fuse_pair", "classify_pattern"]


class FusionPattern(Enum):
    SIBLING = "sibling"
    MAP_CHAIN = "map-chain"
    REDUCTION_THEN_MAP = "reduction-then-map"
    MAP_WITH_REDUCTION = "map-with-reduction"


def _ind_shape(space: IterationSpace, env: DimEnv) -> tuple[int, ...]:
    return tuple(env[d] for d in space.independent)


def _red_shape(space: IterationSpace, env: DimEnv) -> tuple[int, ...]:
    return tuple(env[d] for d in space.reduction)


def shapes_compatible(a: IterationSpace, b: IterationSpace, env: DimEnv) -> bool:
    """Size-based iteration-space compatibility (the paper's fusion test).

    Compatible iff the independent extents match (ordered) and the reduction
    extents are equal or one side has none; additionally a pure map over the
    *full* space (independent covering the other's independent+reduction
    extents) is compatible with a reducing op over the same points
    (pattern 4).
    """
    ia, ib = _ind_shape(a, env), _ind_shape(b, env)
    ra, rb = _red_shape(a, env), _red_shape(b, env)
    if ia == ib:
        return not ra or not rb or ra == rb
    # Pattern 4: one op's independent space equals the other's full space.
    if not ra and sorted(ia) == sorted(ib + rb):
        return True
    if not rb and sorted(ib) == sorted(ia + ra):
        return True
    return False


def can_fuse_pair(producer: OpSpec, consumer: OpSpec, env: DimEnv) -> bool:
    """Whether two (chain-adjacent or sibling) operators may fuse.

    Tensor contractions never fuse with this mechanism (Sec. IV-C: only
    trivial scaling folds into cuBLAS calls) and views are free already.
    """
    for op in (producer, consumer):
        if op.op_class is OpClass.TENSOR_CONTRACTION or op.is_view:
            return False
    # Reduction must not be *followed by* an op iterating a different space:
    # "we fuse until either a reduction dimension or iteration space changes".
    return shapes_compatible(producer.ispace, consumer.ispace, env)


def classify_pattern(producer: OpSpec, consumer: OpSpec, env: DimEnv) -> FusionPattern | None:
    """Which Fig. 3 pattern a fusible pair instantiates (None if not fusible)."""
    if not can_fuse_pair(producer, consumer, env):
        return None
    produced = {t.name for t in producer.outputs}
    connected = any(t.name in produced for t in consumer.inputs)
    p_red = producer.ispace.has_reduction
    c_red = consumer.ispace.has_reduction
    if not connected:
        return FusionPattern.SIBLING
    if p_red and not c_red:
        return FusionPattern.REDUCTION_THEN_MAP
    if c_red and not p_red:
        return FusionPattern.MAP_WITH_REDUCTION
    return FusionPattern.MAP_CHAIN
