"""Fusion: data-movement reduction by kernel merging (paper Sec. IV)."""

from .algebraic import (
    AlgebraicFusionResult,
    PROJECTION_OPS,
    measure_variant,
    table2_sweep,
)
from .encoder_kernels import FUSED_KERNEL_NAMES, PAPER_KERNELS, apply_paper_fusion
from .fuser import FusionError, fuse_greedy, fuse_ops
from .rules import FusionPattern, can_fuse_pair, classify_pattern, shapes_compatible

__all__ = [
    "AlgebraicFusionResult",
    "FUSED_KERNEL_NAMES",
    "FusionError",
    "FusionPattern",
    "PAPER_KERNELS",
    "PROJECTION_OPS",
    "apply_paper_fusion",
    "can_fuse_pair",
    "classify_pattern",
    "fuse_greedy",
    "fuse_ops",
    "measure_variant",
    "shapes_compatible",
    "table2_sweep",
]
