"""Algebraic fusion of the Q/K/V input projections (Sec. IV-D, Table II).

For self-attention the three projections read the same input ``X``, so the
weight matrices can be stacked and the three batched MMMs combined:

1. unfused — ``W_Q X``, ``W_K X``, ``W_V X``;
2. QK fused — ``[W_Q W_K] X`` and ``W_V X``;
3. QKV fused — ``[W_Q W_K W_V] X``.

Backward fuses symmetrically: ``X [dQ̃ dK̃ dṼ]`` (dW) and
``[W_Q W_K W_V][dQ̃ dK̃ dṼ]`` (dX).  This module measures the three variants
under the cost model and reproduces Table II.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.cost_model import CostModel
from repro.ir.dims import DimEnv
from repro.ir.operator import OpSpec
from repro.transformer.graph_builder import QKVFusion, build_mha_graph

__all__ = ["PROJECTION_OPS", "AlgebraicFusionResult", "measure_variant", "table2_sweep"]

#: Names of the projection contractions per variant, forward and backward.
#: Table II's "Backward" row covers one backward GEMM set (the dX path —
#: its fused value, 291 µs, matches Table III's single fused backward GEMM,
#: not the ~570 µs sum of dX and dW); the dW path fuses identically and is
#: exposed separately for the ablation benchmarks.
PROJECTION_OPS: dict[QKVFusion, dict[str, tuple[str, ...]]] = {
    "unfused": {
        "forward": ("q_proj", "k_proj", "v_proj"),
        "backward": ("q_proj_dx", "k_proj_dx", "v_proj_dx"),
        "backward_dw": ("q_proj_dw", "k_proj_dw", "v_proj_dw"),
    },
    "qk": {
        "forward": ("qk_proj", "v_proj"),
        "backward": ("qk_proj_dx", "v_proj_dx"),
        "backward_dw": ("qk_proj_dw", "v_proj_dw"),
    },
    "qkv": {
        "forward": ("qkv_proj",),
        "backward": ("qkv_proj_dx",),
        "backward_dw": ("qkv_proj_dw",),
    },
}


@dataclass(frozen=True)
class AlgebraicFusionResult:
    """Projection timings for one variant (Table II's cells)."""

    variant: QKVFusion
    forward_us: float
    backward_us: float
    forward_kernels: int
    backward_kernels: int

    @property
    def total_us(self) -> float:
        return self.forward_us + self.backward_us


def _best_time_us(cost: CostModel, op: OpSpec, env: DimEnv) -> float:
    """Best time over the contraction's configuration space.

    Routes through the batched engine (two-tier cached, bit-identical to
    the scalar per-config minimum): the sweep's measurements arrive sorted,
    so the best time is its head.
    """
    from repro.engine import sweep_op

    sweep = sweep_op(op, env, cost)
    if sweep.num_configs == 0:
        raise RuntimeError(f"no feasible configuration for {op.name!r}")
    return sweep.best.total_us


def measure_variant(
    variant: QKVFusion, env: DimEnv, cost: CostModel | None = None
) -> AlgebraicFusionResult:
    """Time the Q/K/V projections of one algebraic-fusion variant.

    Each projection kernel is timed at its best layout/algorithm
    configuration (the paper's Tab. II uses tuned kernels).
    """
    cost = cost or CostModel()
    graph = build_mha_graph(qkv_fusion=variant, include_backward=True)
    fwd_names = PROJECTION_OPS[variant]["forward"]
    bwd_names = PROJECTION_OPS[variant]["backward"]
    fwd = sum(_best_time_us(cost, graph.op(n), env) for n in fwd_names)
    bwd = sum(_best_time_us(cost, graph.op(n), env) for n in bwd_names)
    return AlgebraicFusionResult(
        variant=variant,
        forward_us=fwd,
        backward_us=bwd,
        forward_kernels=len(fwd_names),
        backward_kernels=len(bwd_names),
    )


def table2_sweep(env: DimEnv, cost: CostModel | None = None) -> dict[QKVFusion, AlgebraicFusionResult]:
    """All three Table II variants."""
    cost = cost or CostModel()
    return {v: measure_variant(v, env, cost) for v in ("unfused", "qk", "qkv")}
