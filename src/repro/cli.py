"""Command-line interface: regenerate any paper table or run the recipe.

Usage::

    python -m repro table1            # operator-class proportions
    python -m repro table2            # algebraic fusion
    python -m repro table3            # per-operator breakdown
    python -m repro table4            # MHA per framework
    python -m repro table5            # encoder per framework
    python -m repro optimize          # the full recipe + summary
    python -m repro optimize --batch 96 --seq 128
    python -m repro movement          # data-movement reduction report

Sweep caching and parallelism::

    python -m repro table5 --sweep-store ~/.cache/repro-sweeps --jobs 4

``--sweep-store DIR`` persists every evaluated sweep on disk (the L2 tier
under the in-process memo), so later invocations skip re-sweeping; the
``REPRO_SWEEP_STORE`` environment variable sets the same default.
``--jobs N`` fans cold whole-graph sweeps over N worker processes
(``REPRO_JOBS`` sets the default; 0 means one per CPU).  Neither option
changes any reported number — results are bit-identical.

Configuration selection runs on the vectorized fast path (layered
min-plus SSSP + batched inference) by default; ``--no-fast-select`` (or
``REPRO_CONFIGSEL_FAST=0``) falls back to the scalar reference.  The two
are bit-identical, so this is a debugging knob, not a results knob.

Tuning as a service::

    python -m repro serve --port 8077 --sweep-store ~/.cache/repro-sweeps
    python -m repro query --url http://127.0.0.1:8077 --model encoder
    python -m repro query --url http://127.0.0.1:8077 --health

``serve`` runs the long-lived layout-recommendation daemon
(:mod:`repro.service`); ``query`` asks a running daemon for a whole-graph
tuned schedule (or its health/metrics).  The daemon shares the L2 sweep
store with every batch command, so anything a nightly run swept is served
warm.  SIGTERM drains gracefully: the daemon stops accepting, finishes
in-flight requests within ``--drain-deadline`` seconds (default
``REPRO_DRAIN_DEADLINE_S`` or 10), and exits 0.

The sharded tuning fleet::

    python -m repro fleet serve --role coordinator --port 8077
    python -m repro fleet serve --role worker --port 0 \
        --coordinator-url http://127.0.0.1:8077
    python -m repro fleet status --url http://127.0.0.1:8077

A coordinator is a full daemon plus ``POST /v1/optimize_batch`` and the
fleet membership endpoints; workers are plain daemons that register and
heartbeat (:mod:`repro.service.fleet`).  Retry/quarantine knobs come from
``REPRO_FLEET_*`` environment variables; ``REPRO_FAULT_SPEC`` arms the
fault-injection harness (see the README's Fleet section).

Distributed tracing::

    python -m repro trace --capture --url http://127.0.0.1:8077 \
        --model mha --export trace.json --top 5
    python -m repro trace --trace-id <32-hex id> --url http://127.0.0.1:8077

``trace --capture`` runs one traced optimize against a daemon (set
``REPRO_TRACE=1`` on the daemon so its spans are retained), prints the
assembled span tree — against a coordinator this merges the worker-side
spans into one connected cross-process tree — and ``--export`` writes
Chrome trace-event JSON loadable in Perfetto (see the README's
Observability section).

Schedule registry::

    python -m repro register --model encoder --cap 400
    python -m repro validate --all
    python -m repro validate --digest <sha256> --deep --registry DIR

``register`` tunes a model graph and persists the schedule as a
content-addressed registry entry (:mod:`repro.registry`); ``validate``
replays the layered validator stack (:mod:`repro.validation`) over one
entry (``--digest``) or every entry (``--all``) and exits non-zero if
any fails.  ``--registry DIR`` overrides the registry location
(default: ``REPRO_SCHEDULE_REGISTRY`` or ``<sweep-store>/registry``).

Calibration & rollout::

    python -m repro report --url http://127.0.0.1:8077
    python -m repro rollout --propose --url http://127.0.0.1:8077
    python -m repro rollout --url http://127.0.0.1:8077

``report`` submits measured kernel timings to a daemon's calibration
feedback store (by default the paper's own Table III measurements);
``rollout`` inspects or drives the staged cost-model rollout — fit and
shadow-gate a candidate (``--propose``), then let canary traffic promote
it (or manually ``--promote`` / ``--rollback``).  See the README's
"Calibration & rollout" section.
"""

from __future__ import annotations

import argparse
import sys

from repro import __version__
from repro.analysis.report import (
    format_framework_table,
    format_table1,
    format_table2,
    format_table3,
)
from repro.hardware.cost_model import COST_MODEL_VERSION, CostModel
from repro.ir.dims import bert_large_dims

__all__ = ["main"]

#: Default bind/connect port of the tuning daemon.
DEFAULT_PORT = 8077


def _env(args: argparse.Namespace):
    return bert_large_dims(batch=args.batch, seq=args.seq)


def _cmd_table1(args) -> None:
    from repro.analysis.tables import table1

    print(format_table1(table1(_env(args), CostModel())))


def _cmd_table2(args) -> None:
    from repro.analysis.tables import table2

    print(format_table2(table2(_env(args), CostModel())))


def _cmd_table3(args) -> None:
    from repro.analysis.tables import table3

    rows, totals = table3(_env(args), CostModel(), cap=args.cap)
    print(format_table3(rows, totals))


def _cmd_table4(args) -> None:
    from repro.analysis.tables import table4

    print(format_framework_table(table4(_env(args), CostModel(), cap=args.cap)))


def _cmd_table5(args) -> None:
    from repro.analysis.tables import table5

    print(format_framework_table(table5(_env(args), CostModel(), cap=args.cap)))


def _cmd_optimize(args) -> None:
    from repro import optimize_encoder

    report = optimize_encoder(_env(args), cap=args.cap)
    print(report.summary())


def _cmd_roofline(args) -> None:
    from repro.hardware.roofline import graph_roofline
    from repro.transformer.graph_builder import build_encoder_graph

    graph = build_encoder_graph(qkv_fusion="qkv")
    print(f"{'operator':<24s} {'class':<26s} {'flop/B':>8s} {'ridge':>7s}  bound")
    for pt in graph_roofline(graph, _env(args)):
        bound = "memory" if pt.memory_bound else "compute"
        print(
            f"{pt.op_name:<24s} {pt.op_class.value:<26s} "
            f"{pt.intensity:8.1f} {pt.ridge:7.1f}  {bound}"
        )


def _cmd_calibrate(args) -> None:
    from repro.analysis.calibration import audit_calibration

    report = audit_calibration(_env(args), CostModel(), cap=args.cap)
    for r in report.rows:
        print(
            f"{r.label:<42s} PT {r.pt_ratio:5.2f}x   Ours {r.ours_ratio:5.2f}x"
        )
    print(
        f"geomean: PT {report.geometric_mean_ratio(side='pt'):.2f}, "
        f"Ours {report.geometric_mean_ratio(side='ours'):.2f}"
    )


def _cmd_movement(args) -> None:
    from repro.analysis.tables import data_movement_reduction_report

    r = data_movement_reduction_report(_env(args))
    print(
        f"unfused {r['unfused_mwords']:.0f} Mw -> fused {r['fused_mwords']:.0f} Mw "
        f"({100 * r['reduction_fraction']:.2f}% reduction)"
    )


def _drain_deadline(args) -> float:
    """``--drain-deadline``, else ``REPRO_DRAIN_DEADLINE_S``, else 10 s."""
    if getattr(args, "drain_deadline", None) is not None:
        return args.drain_deadline
    import os

    raw = os.environ.get("REPRO_DRAIN_DEADLINE_S", "").strip()
    return float(raw) if raw else 10.0


def _serve_until_signaled(
    server, service, *, name: str, drain_deadline_s: float, cleanup=None
) -> None:
    """Serve until SIGINT/SIGTERM, then drain gracefully and exit 0.

    On SIGTERM: readiness flips off (``/readyz`` answers 503, so fleet
    coordinators and load balancers stop routing here), the accept loop
    stops, in-flight requests get ``drain_deadline_s`` to finish, and the
    process prints ``<name>: clean shutdown`` on its way to exit code 0.
    """
    import signal
    import threading

    def _sigterm(signum, frame):  # pragma: no cover - signal plumbing
        # One-shot: a second TERM during the shutdown path must not
        # re-enter and spoil the clean exit code.
        signal.signal(signal.SIGTERM, signal.SIG_IGN)
        service.begin_drain()
        # serve_forever blocks *this* thread; shutdown() must be called
        # from another one or the two deadlock.
        threading.Thread(target=server.shutdown, daemon=True).start()

    signal.signal(signal.SIGTERM, _sigterm)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        service.begin_drain()
    finally:
        drained = server.drain(drain_deadline_s)
        server.server_close()
        if cleanup is not None:
            cleanup()
        if not drained:
            print(
                f"{name}: drain deadline ({drain_deadline_s}s) expired with "
                f"{server.inflight()} request(s) in flight",
                file=sys.stderr,
            )
        print(f"{name}: clean shutdown")


def _cmd_serve(args) -> None:
    """Run the tuning daemon until interrupted (SIGINT/SIGTERM)."""
    from repro.service import TuningService, make_server

    service = TuningService(warm=False)
    service.start_warmup()
    server = make_server(service, args.host, args.port)
    host, port = server.server_address[:2]
    store = service.store
    print(
        f"repro-tuningd {__version__} (cost model v{COST_MODEL_VERSION}) "
        f"listening on http://{host}:{port}"
    )
    print(f"sweep store: {store.root if store is not None else 'disabled'}")
    _serve_until_signaled(
        server,
        service,
        name="repro-tuningd",
        drain_deadline_s=_drain_deadline(args),
    )


def _cmd_query(args) -> None:
    """Query a running daemon: health, metrics, or a tuned schedule."""
    import json

    from repro.service import ServiceError, TuningClient

    client = TuningClient(args.url)
    try:
        if args.health:
            print(json.dumps(client.healthz(), indent=2, sort_keys=True))
            return
        if args.metrics:
            print(json.dumps(client.metrics(), indent=2, sort_keys=True))
            return
        resp = client.optimize(
            model=args.model,
            qkv_fusion=args.qkv_fusion,
            env=_env(args),
            cap=args.cap,
        )
    except ServiceError as exc:
        print(f"repro query: {exc}", file=sys.stderr)
        raise SystemExit(2) from exc
    print(
        f"{resp['graph']}: {resp['num_kernels']} kernels, "
        f"{resp['forward_us']:.1f} us forward + {resp['backward_us']:.1f} us "
        f"backward (cost model v{resp['cost_model_version']})"
    )
    for k in resp["kernels"]:
        label = f" [{k['kernel_label']}]" if k["kernel_label"] else ""
        print(
            f"  {k['op']:<24s}{label:<8s} {k['best']['total_us']:9.2f} us  "
            f"({k['num_configs']} configs swept)"
        )
    sel = resp.get("selection")
    if sel:
        print(
            f"selection: {sel['total_us']:.1f} us end-to-end "
            f"(chain {sel['chain_cost_us']:.1f} us, "
            f"{len(sel['transposes'])} transposes for {sel['transpose_us']:.1f} us)"
        )


def _render_trace_tree(spans: list[dict], out=None) -> None:
    """Print one trace's spans as an indented tree (children by parent_id)."""
    out = out or sys.stdout
    by_id = {s["span_id"]: s for s in spans}
    children: dict[str | None, list[dict]] = {}
    for s in spans:
        parent = s.get("parent_id")
        if parent is not None and parent not in by_id:
            parent = None  # orphan: show at the root rather than dropping it
        children.setdefault(parent, []).append(s)
    for kids in children.values():
        kids.sort(key=lambda s: s.get("start_us", 0))

    def walk(span: dict, depth: int) -> None:
        attrs = span.get("attrs") or {}
        service = attrs.get("service")
        label = f"{span['name']}" + (f" [{service}]" if service else "")
        extras = ", ".join(
            f"{k}={v}" for k, v in sorted(attrs.items()) if k != "service"
        )
        status = "" if span.get("status") == "ok" else f" status={span.get('status')}"
        print(
            f"{'  ' * depth}{label:<{max(40 - 2 * depth, 1)}s}"
            f"{span.get('dur_us', 0) / 1e3:9.2f} ms{status}"
            + (f"  ({extras})" if extras else ""),
            file=out,
        )
        for kid in children.get(span["span_id"], ()):
            walk(kid, depth + 1)

    for root in children.get(None, ()):
        walk(root, 0)


def _cmd_trace(args) -> int:
    """Fetch a distributed trace — or capture one live — and inspect it."""
    import json

    from repro import obs
    from repro.obs.export import slowest_spans, to_chrome_trace, trace_tree
    from repro.service import ServiceError, TuningClient

    client = TuningClient(args.url)
    spans: list[dict] = []
    trace_id = args.trace_id
    if args.capture:
        # Run one traced optimize: the local root span's traceparent rides
        # the request header, so server/worker spans join this trace id.
        obs.set_tracing(True)
        try:
            with obs.span("cli.capture", service="cli") as root:
                trace_id = root.trace_id
                client.optimize(
                    model=args.model,
                    qkv_fusion=args.qkv_fusion,
                    env=_env(args),
                    cap=args.cap,
                )
        except ServiceError as exc:
            print(f"repro trace: capture failed: {exc}", file=sys.stderr)
            return 2
        spans.extend(obs.get_tracer().trace(trace_id))
    if trace_id is None:
        print(
            "repro trace: pass --trace-id ID or --capture", file=sys.stderr
        )
        return 2
    try:
        remote = client.trace(trace_id)
    except ServiceError as exc:
        if not spans:
            print(f"repro trace: {exc}", file=sys.stderr)
            return 2
        print(
            f"repro trace: server has no spans for {trace_id} ({exc}); "
            "showing client-side spans only — is REPRO_TRACE=1 set on the "
            "daemon?",
            file=sys.stderr,
        )
        remote = None
    if remote is not None:
        seen = {s["span_id"] for s in spans}
        spans.extend(
            s for s in remote.get("spans", ()) if s["span_id"] not in seen
        )

    tree = trace_tree(spans)
    print(
        f"trace {trace_id}: {len(spans)} spans, "
        f"{'connected' if tree['connected'] else 'DISCONNECTED'} "
        f"({len(tree['roots'])} roots, {len(tree['orphans'])} orphans)"
    )
    _render_trace_tree(spans)
    if args.top:
        print(f"\nslowest {args.top} spans:")
        for s in slowest_spans(spans, n=args.top):
            print(f"  {s.get('dur_us', 0) / 1e3:9.2f} ms  {s['name']}")
    if args.export is not None:
        with open(args.export, "w", encoding="utf-8") as fh:
            json.dump(to_chrome_trace(spans), fh)
        print(f"\nwrote {args.export} (load in Perfetto / chrome://tracing)")
    return 0


def _cmd_fleet_serve(args) -> None:
    """Run a fleet coordinator or worker daemon until signaled."""
    from repro.service import TuningService, make_server

    if args.role == "coordinator":
        from repro.service.fleet.coordinator import (
            FleetService,
            make_fleet_server,
        )

        service = FleetService(warm=False)
        server = make_fleet_server(service, args.host, args.port)
    else:
        service = TuningService(warm=False)
        server = make_server(service, args.host, args.port)
    service.start_warmup()
    host, port = server.server_address[:2]
    store = service.store
    print(
        f"repro-fleetd {args.role} {__version__} "
        f"(cost model v{COST_MODEL_VERSION}) "
        f"listening on http://{host}:{port}"
    )
    print(f"sweep store: {store.root if store is not None else 'disabled'}")

    agent = None
    if args.role == "worker":
        if args.coordinator_url is None:
            print(
                "repro fleet serve: a worker needs --coordinator-url",
                file=sys.stderr,
            )
            raise SystemExit(2)
        from repro.service.fleet.worker import WorkerAgent

        agent = WorkerAgent(
            args.coordinator_url,
            args.advertise_url or f"http://{host}:{port}",
            worker_id=args.worker_id,
            service=service,
        )
        # Name the worker's spans/metrics after its fleet identity so the
        # coordinator-assembled trace tree shows which member did the work.
        service.service_name = f"worker:{agent.worker_id}"
        agent.start()
        print(f"fleet: registering {agent.worker_id} with {args.coordinator_url}")

    def _cleanup() -> None:
        if agent is not None:
            # Tell the coordinator we are leaving so our keys re-route
            # now instead of after a TTL expiry.
            agent.stop(deregister=True)

    _serve_until_signaled(
        server,
        service,
        name="repro-fleetd",
        drain_deadline_s=_drain_deadline(args),
        cleanup=_cleanup,
    )


def _cmd_fleet_status(args) -> int:
    """Print a coordinator's fleet view: workers, health, quarantines."""
    import json

    from repro.service import ServiceError, TuningClient

    client = TuningClient(args.url, timeout=10.0)
    try:
        status = client.fleet_status()
    except ServiceError as exc:
        print(f"repro fleet status: {exc}", file=sys.stderr)
        return 2
    print(json.dumps(status, indent=2, sort_keys=True))
    counts = status.get("counts", {})
    print(
        f"# {counts.get('ready', 0)}/{counts.get('registered', 0)} workers "
        f"ready ({counts.get('quarantined', 0)} quarantined)",
        file=sys.stderr,
    )
    return 0


def _fleet_main(argv: list[str]) -> int:
    """``repro fleet <serve|status>`` — its own parser, shared options."""
    parser = argparse.ArgumentParser(
        prog="repro fleet",
        description="Run or inspect the sharded tuning fleet.",
    )
    sub = parser.add_subparsers(dest="fleet_command", required=True)

    serve = sub.add_parser(
        "serve", help="run a coordinator or worker daemon"
    )
    serve.add_argument(
        "--role", choices=("coordinator", "worker"), default="coordinator",
        help="what this daemon is (default: coordinator)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=DEFAULT_PORT,
        help=f"bind port (default {DEFAULT_PORT}; 0 = ephemeral)",
    )
    serve.add_argument(
        "--coordinator-url", default=None, metavar="URL",
        help="worker: coordinator to register with (required for workers)",
    )
    serve.add_argument(
        "--worker-id", default=None, metavar="ID",
        help="worker: stable identity on the hash ring "
             "(default: a random worker-<hex> id)",
    )
    serve.add_argument(
        "--advertise-url", default=None, metavar="URL",
        help="worker: URL to announce to the coordinator "
             "(default: the bound http://host:port)",
    )
    serve.add_argument(
        "--sweep-store", default=None, metavar="DIR",
        help="persistent sweep store directory "
             "(default: REPRO_SWEEP_STORE or disabled)",
    )
    serve.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for cold sweeps (default: REPRO_JOBS)",
    )
    serve.add_argument(
        "--drain-deadline", type=float, default=None, metavar="S",
        help="SIGTERM: seconds to let in-flight requests finish "
             "(default: REPRO_DRAIN_DEADLINE_S or 10)",
    )

    status = sub.add_parser(
        "status", help="print a coordinator's fleet state"
    )
    status.add_argument(
        "--url", default=f"http://127.0.0.1:{DEFAULT_PORT}",
        help="base URL of a running coordinator",
    )

    args = parser.parse_args(argv)
    if args.fleet_command == "status":
        return _cmd_fleet_status(args)
    if args.sweep_store is not None:
        from repro.engine import set_sweep_store

        set_sweep_store(args.sweep_store)
    if args.jobs is not None:
        from repro.engine import set_default_jobs

        set_default_jobs(args.jobs)
    _cmd_fleet_serve(args)
    return 0


def _resolve_registry(args):
    """The registry named by ``--registry`` or the process-active one."""
    from repro.registry import ScheduleRegistry, get_schedule_registry

    if args.registry is not None:
        return ScheduleRegistry(args.registry)
    registry = get_schedule_registry()
    if registry is None:
        print(
            "repro: no schedule registry — pass --registry DIR, set "
            "REPRO_SCHEDULE_REGISTRY, or enable a sweep store",
            file=sys.stderr,
        )
        raise SystemExit(2)
    return registry


def _cmd_register(args) -> None:
    """Tune one model graph and persist the schedule in the registry."""
    from repro.configsel.selector import select_configurations
    from repro.hardware.spec import V100
    from repro.service.protocol import OptimizeRequest, build_request_graph

    registry = _resolve_registry(args)
    req = OptimizeRequest(
        model=args.model,
        qkv_fusion=args.qkv_fusion,
        include_backward=not args.forward_only,
        fused=not args.unfused,
        env=_env(args),
        gpu=V100,
        cap=args.cap,
        seed=0x5EED,
    )
    graph = build_request_graph(req)
    sel = select_configurations(
        graph, req.env, CostModel(req.gpu), cap=args.cap, register=registry
    )
    variant = args.qkv_fusion + (", forward-only" if args.forward_only else "")
    print(f"registered {sel.registered_digest}")
    print(
        f"  {args.model} ({variant}): {sel.total_us:.1f} us end-to-end, "
        f"{len(sel.chosen)} kernels, {len(sel.transposes)} transposes"
    )
    print(f"  registry: {registry.root}")


def _cmd_validate(args) -> None:
    """Re-validate registered schedules; exit 1 if any entry fails."""
    from repro.registry import RegistryError
    from repro.validation import validate_entry

    registry = _resolve_registry(args)
    if args.digest is not None:
        digests = [args.digest]
    elif args.all:
        digests = registry.digests()
        if not digests:
            print(f"repro validate: registry at {registry.root} is empty")
            return
    else:
        print(
            "repro validate: pass --digest DIGEST or --all", file=sys.stderr
        )
        raise SystemExit(2)

    failed = 0
    for digest in digests:
        try:
            entry = registry.load(digest)
        except RegistryError as exc:
            print(f"FAIL {digest} (unloadable: {exc})")
            failed += 1
            continue
        if entry is None:
            print(f"FAIL {digest} (not found in {registry.root})")
            failed += 1
            continue
        report = validate_entry(entry, deep=args.deep)
        print(report.summary())
        if not report.ok:
            failed += 1
    print(f"{len(digests) - failed}/{len(digests)} entries valid")
    if failed:
        raise SystemExit(1)


def _cmd_report(args) -> int:
    """Submit measured timings to a daemon's calibration feedback store."""
    import json

    from repro.service import ServiceError, TuningClient

    client = TuningClient(args.url)
    if args.records is not None:
        with open(args.records, encoding="utf-8") as fh:
            records = json.load(fh)
        if not isinstance(records, list):
            print(
                "repro report: --records file must hold a JSON list",
                file=sys.stderr,
            )
            raise SystemExit(2)
    else:
        # Default corpus: the paper's own Table III measurements, stamped
        # with whatever cost-model version the daemon currently serves.
        from repro.calibrate import table3_corpus

        try:
            served = client.healthz().get("cost_model_version")
        except ServiceError as exc:
            print(f"repro report: {exc}", file=sys.stderr)
            raise SystemExit(2) from exc
        records = table3_corpus(served)
    try:
        resp = client.report(records)
    except ServiceError as exc:
        print(f"repro report: {exc}", file=sys.stderr)
        raise SystemExit(2) from exc
    print(
        f"accepted {resp['accepted']} record(s); store holds {resp['total']} "
        f"(corpus {resp['corpus_digest'][:12]}, "
        f"cost model v{resp['cost_model_version']})"
    )
    return 0


def _cmd_rollout(args) -> int:
    """Inspect or drive a daemon's staged cost-model rollout."""
    import json

    from repro.service import ServiceError, TuningClient

    client = TuningClient(args.url)
    try:
        if args.propose:
            params = None
            if args.params is not None:
                with open(args.params, encoding="utf-8") as fh:
                    params = json.load(fh)
            resp = client.calibrate_propose(params=params, force=args.force)
        elif args.promote:
            resp = client.rollout_action("promote")
        elif args.rollback:
            resp = client.rollout_action("rollback")
        else:
            resp = client.rollout_status()
    except ServiceError as exc:
        print(f"repro rollout: {exc}", file=sys.stderr)
        raise SystemExit(2) from exc
    print(json.dumps(resp, indent=2, sort_keys=True))
    return 0


_COMMANDS = {
    "table1": _cmd_table1,
    "table2": _cmd_table2,
    "table3": _cmd_table3,
    "table4": _cmd_table4,
    "table5": _cmd_table5,
    "optimize": _cmd_optimize,
    "movement": _cmd_movement,
    "roofline": _cmd_roofline,
    "calibrate": _cmd_calibrate,
    "serve": _cmd_serve,
    "query": _cmd_query,
    "trace": _cmd_trace,
    "register": _cmd_register,
    "validate": _cmd_validate,
    "report": _cmd_report,
    "rollout": _cmd_rollout,
}


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    # ``fleet`` has subcommands of its own (serve/status), which the flat
    # single-positional parser below cannot express — dispatch it first.
    if argv and argv[0] == "fleet":
        return _fleet_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce 'Data Movement Is All You Need' (MLSys 2021).",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"repro {__version__} (cost model v{COST_MODEL_VERSION})",
    )
    parser.add_argument("command", choices=sorted(_COMMANDS))
    parser.add_argument("--batch", type=int, default=8, help="mini-batch size B")
    parser.add_argument("--seq", type=int, default=512, help="sequence length L")
    parser.add_argument(
        "--cap", type=int, default=400,
        help="sampled-configuration cap for wide kernel sweeps",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for cold whole-graph sweeps "
             "(default: REPRO_JOBS or serial; 0 = one per CPU)",
    )
    parser.add_argument(
        "--sweep-store", default=None, metavar="DIR",
        help="directory of the persistent sweep store "
             "(default: REPRO_SWEEP_STORE or disabled)",
    )
    parser.add_argument(
        "--no-fast-select", action="store_true",
        help="run the scalar reference configuration selection instead of "
             "the vectorized fast path (same results; also "
             "REPRO_CONFIGSEL_FAST=0)",
    )
    parser.add_argument(
        "--no-delta-sweep", action="store_true",
        help="always evaluate cold on an exact-digest store miss instead "
             "of delta re-sweeping from a structural twin (same results; "
             "also REPRO_DELTA_SWEEP=0)",
    )
    service = parser.add_argument_group("tuning service (serve / query)")
    service.add_argument(
        "--host", default="127.0.0.1", help="serve: bind address"
    )
    service.add_argument(
        "--port", type=int, default=DEFAULT_PORT,
        help=f"serve: bind port (default {DEFAULT_PORT}; 0 = ephemeral)",
    )
    service.add_argument(
        "--url", default=f"http://127.0.0.1:{DEFAULT_PORT}",
        help="query: base URL of a running daemon",
    )
    service.add_argument(
        "--drain-deadline", type=float, default=None, metavar="S",
        help="serve: SIGTERM drain — seconds to let in-flight requests "
             "finish (default: REPRO_DRAIN_DEADLINE_S or 10)",
    )
    service.add_argument(
        "--health", action="store_true", help="query: print /healthz and exit"
    )
    service.add_argument(
        "--metrics", action="store_true", help="query: print /metrics and exit"
    )
    service.add_argument(
        "--model", choices=("mha", "encoder", "decoder"), default="encoder",
        help="query: graph to optimize",
    )
    service.add_argument(
        "--qkv-fusion", choices=("unfused", "qk", "qkv"), default="qkv",
        help="query: QKV input-projection fusion variant",
    )
    tracing = parser.add_argument_group("distributed tracing (trace)")
    tracing.add_argument(
        "--trace-id", default=None, metavar="ID",
        help="trace: fetch the stored trace with this 32-hex id",
    )
    tracing.add_argument(
        "--capture", action="store_true",
        help="trace: run one traced optimize against --url and show its "
             "trace (uses --model/--qkv-fusion/--batch/--seq/--cap)",
    )
    tracing.add_argument(
        "--export", default=None, metavar="FILE",
        help="trace: also write the trace as Chrome trace-event JSON "
             "(loadable in Perfetto or chrome://tracing)",
    )
    tracing.add_argument(
        "--top", type=int, default=0, metavar="N",
        help="trace: also list the N slowest spans",
    )
    reg = parser.add_argument_group("schedule registry (register / validate)")
    reg.add_argument(
        "--registry", default=None, metavar="DIR",
        help="directory of the schedule registry "
             "(default: REPRO_SCHEDULE_REGISTRY or <sweep-store>/registry)",
    )
    reg.add_argument(
        "--digest", default=None, metavar="SHA256",
        help="validate: check the one entry with this content digest",
    )
    reg.add_argument(
        "--all", action="store_true",
        help="validate: check every entry in the registry",
    )
    reg.add_argument(
        "--deep", action="store_true",
        help="validate: also re-select configurations through both "
             "pipelines and compare against the stored selection",
    )
    reg.add_argument(
        "--forward-only", action="store_true",
        help="register: tune the forward-only graph",
    )
    reg.add_argument(
        "--unfused", action="store_true",
        help="register: skip the paper's operator fusion",
    )
    cal = parser.add_argument_group("calibration & rollout (report / rollout)")
    cal.add_argument(
        "--records", default=None, metavar="FILE",
        help="report: JSON file with a list of feedback records "
             "(default: submit the paper's Table III corpus)",
    )
    cal.add_argument(
        "--propose", action="store_true",
        help="rollout: fit a candidate from the daemon's feedback store "
             "and shadow-gate it into canary",
    )
    cal.add_argument(
        "--params", default=None, metavar="FILE",
        help="rollout: propose these explicit efficiency params (JSON "
             "object) instead of fitting from feedback",
    )
    cal.add_argument(
        "--force", action="store_true",
        help="rollout: skip the shadow error gate when proposing",
    )
    cal.add_argument(
        "--promote", action="store_true",
        help="rollout: promote the canary candidate immediately",
    )
    cal.add_argument(
        "--rollback", action="store_true",
        help="rollout: abandon the canary candidate",
    )
    args = parser.parse_args(argv)
    if args.no_fast_select:
        import os

        from repro.configsel.selector import FAST_ENV_VAR

        os.environ[FAST_ENV_VAR] = "0"
    if args.no_delta_sweep:
        from repro.engine import set_delta_enabled

        set_delta_enabled(False)
    if args.sweep_store is not None:
        from repro.engine import set_sweep_store

        set_sweep_store(args.sweep_store)
    if args.jobs is not None:
        from repro.engine import set_default_jobs

        set_default_jobs(args.jobs)
    rc = _COMMANDS[args.command](args)
    return int(rc) if rc else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
