"""Trace exports: tree assembly, Chrome trace-event / Perfetto JSON, top-N.

The ring buffer holds flat span records (see ``Span.to_dict``); this
module turns a trace's records into the shapes operators consume:

* :func:`trace_tree` — parent/child nesting plus a connectivity verdict
  (the obs-smoke CI job asserts one *connected* tree per traced batch);
* :func:`to_chrome_trace` — the Chrome trace-event JSON Perfetto and
  ``chrome://tracing`` load directly (``ph:"X"`` complete events, span
  events as ``ph:"i"`` instants);
* :func:`slowest_spans` — what ``repro trace --top`` prints when a p99
  regresses and you need the offending tier in one line.
"""

from __future__ import annotations

__all__ = ["slowest_spans", "to_chrome_trace", "trace_tree"]


def trace_tree(records: list[dict]) -> dict:
    """Assemble flat span records into a parent/child tree.

    Returns ``{"trace_id", "roots", "spans", "connected", "orphans"}``
    where ``roots`` are nested nodes (each a span record plus a
    ``children`` list, children sorted by start time) and ``connected``
    is True when exactly one root exists and every span reaches it —
    the single-connected-tree acceptance criterion.

    Duplicate ``span_id``\\ s (the coordinator scrapes itself *and* its
    workers; a span can arrive twice) are collapsed, keeping the record
    with the longer duration (the finished one wins over a re-ingested
    copy).
    """
    by_id: dict[str, dict] = {}
    for rec in records:
        sid = rec.get("span_id")
        if not sid:
            continue
        prev = by_id.get(sid)
        if prev is None or rec.get("dur_us", 0) >= prev.get("dur_us", 0):
            by_id[sid] = rec

    nodes = {sid: {**rec, "children": []} for sid, rec in by_id.items()}
    roots: list[dict] = []
    orphans: list[str] = []
    for sid, node in nodes.items():
        parent = node.get("parent_id")
        if parent and parent in nodes:
            nodes[parent]["children"].append(node)
        elif parent:
            # Parent span never arrived (aged out of a ring, or a worker
            # died before finishing it): still show the subtree.
            orphans.append(sid)
            roots.append(node)
        else:
            roots.append(node)
    for node in nodes.values():
        node["children"].sort(key=lambda n: n.get("start_us", 0))
    roots.sort(key=lambda n: n.get("start_us", 0))

    trace_ids = {rec.get("trace_id") for rec in by_id.values()}
    return {
        "trace_id": next(iter(trace_ids)) if len(trace_ids) == 1 else None,
        "roots": roots,
        "spans": len(nodes),
        "connected": len(roots) == 1 and not orphans and len(nodes) > 0,
        "orphans": orphans,
    }


def to_chrome_trace(records: list[dict]) -> dict:
    """Chrome trace-event JSON (Perfetto-loadable) for one trace.

    Spans become ``ph:"X"`` complete events on their real pid/tid tracks;
    span events become ``ph:"i"`` thread-scoped instants.  Process/thread
    name metadata rows label coordinator vs. worker tracks in the UI.
    """
    events: list[dict] = []
    seen_procs: dict[int, str] = {}
    seen_threads: set[tuple[int, int]] = set()
    for rec in records:
        pid = rec.get("pid", 0)
        tid = rec.get("tid", 0)
        service = rec.get("attrs", {}).get("service")
        if pid not in seen_procs or (service and seen_procs[pid] == ""):
            seen_procs[pid] = service or seen_procs.get(pid, "")
        if (pid, tid) not in seen_threads:
            seen_threads.add((pid, tid))
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": rec.get("thread", str(tid))},
                }
            )
        args = dict(rec.get("attrs", {}))
        args["span_id"] = rec.get("span_id")
        if rec.get("parent_id"):
            args["parent_id"] = rec["parent_id"]
        if rec.get("status") and rec["status"] != "ok":
            args["status"] = rec["status"]
        events.append(
            {
                "ph": "X",
                "name": rec.get("name", "?"),
                "cat": "repro",
                "pid": pid,
                "tid": tid,
                "ts": rec.get("start_us", 0),
                "dur": max(rec.get("dur_us", 0), 1),
                "args": args,
            }
        )
        for ev in rec.get("events", []):
            events.append(
                {
                    "ph": "i",
                    "s": "t",
                    "name": ev.get("name", "event"),
                    "cat": "repro",
                    "pid": pid,
                    "tid": tid,
                    "ts": ev.get("t_us", rec.get("start_us", 0)),
                    "args": dict(ev.get("attrs", {})),
                }
            )
    for pid, service in seen_procs.items():
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "args": {"name": service or f"pid {pid}"},
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def slowest_spans(records: list[dict], n: int = 10) -> list[dict]:
    """The ``n`` longest spans, each reduced to one triage-ready line."""
    ranked = sorted(records, key=lambda r: r.get("dur_us", 0), reverse=True)
    out = []
    for rec in ranked[:n]:
        out.append(
            {
                "name": rec.get("name"),
                "dur_us": round(rec.get("dur_us", 0), 1),
                "trace_id": rec.get("trace_id"),
                "span_id": rec.get("span_id"),
                "status": rec.get("status"),
                "attrs": dict(rec.get("attrs", {})),
            }
        )
    return out
